package afp

import (
	"math/rand"
	"testing"

	"afp/internal/geom"
	"afp/internal/lp"
	"afp/internal/mipmodel"
	"afp/internal/netlist"
)

// TestWarmColdNodeAgreement is the end-to-end differential gate for the
// warm-started dual simplex on a real floorplanning subproblem (not the
// small synthetic LPs of internal/lp's fuzz): identical random integer
// bound-fix patterns — the exact shape of branch-and-bound node bounds —
// must give the same LP status and objective through the warm
// incremental path and a cold solve. Heights of full floorplans can
// legitimately differ between warm and cold searches (equally-optimal
// vertices among dual-degenerate ties steer later steps differently);
// node-level objectives must not.
func TestWarmColdNodeAgreement(t *testing.T) {
	d := netlist.Random(12, 99)
	spec := &mipmodel.Spec{
		ChipWidth: 80,
		Obstacles: []geom.Rect{
			geom.NewRect(0, 0, 30, 20), geom.NewRect(30, 0, 50, 12), geom.NewRect(30, 12, 20, 9),
		},
	}
	for i := 0; i < 4; i++ {
		spec.New = append(spec.New, mipmodel.NewModule{Index: i, Mod: &d.Modules[i]})
	}
	built, err := mipmodel.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	p := built.Model.P
	ints := built.Model.Ints
	inc, err := lp.NewIncremental(p, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	mismatch := 0
	for trial := 0; trial < 400; trial++ {
		saved := make(map[lp.VarID][2]float64)
		for _, v := range ints {
			lo, hi := p.Bounds(v)
			saved[v] = [2]float64{lo, hi}
			if rng.Intn(2) == 0 {
				val := float64(rng.Intn(2))
				inc.SetBounds(v, val, val)
				p.SetBounds(v, val, val)
			} else {
				inc.SetBounds(v, 0, 1)
				p.SetBounds(v, 0, 1)
			}
		}
		warm, werr := inc.Solve()
		cold, cerr := p.SolveOpts(lp.Options{})
		if werr != nil || cerr != nil {
			t.Fatalf("trial %d: warm err %v cold err %v", trial, werr, cerr)
		}
		if (warm.Status == lp.StatusOptimal) != (cold.Status == lp.StatusOptimal) {
			mismatch++
			t.Errorf("trial %d: warm %v vs cold %v", trial, warm.Status, cold.Status)
		} else if warm.Status == lp.StatusOptimal {
			if diff := warm.Objective - cold.Objective; diff > 1e-6 || diff < -1e-6 {
				mismatch++
				t.Errorf("trial %d: warm obj %.9f cold obj %.9f", trial, warm.Objective, cold.Objective)
			}
		}
		for v, b := range saved {
			inc.SetBounds(v, b[0], b[1])
			p.SetBounds(v, b[0], b[1])
		}
		if mismatch > 5 {
			t.Fatal("too many mismatches")
		}
	}
}
