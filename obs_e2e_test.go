// End-to-end tests of the observability surface: the live SSE progress
// stream and Prometheus exposition of the floorpland service, and the
// floorplantrace analysis of a recorded solver trace.
package afp_test

import (
	"bufio"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"afp/internal/obs"
)

// TestE2EFloorplandSSESolveProgress attaches a live event stream to a
// multi-node MILP solve and checks the stream's contract: node.close and
// progress events arrive, the relative gap never rises within an
// augmentation step, and the stream terminates with an `event: job`
// snapshot once the job completes.
func TestE2EFloorplandSSESolveProgress(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI e2e in -short mode")
	}
	base, _ := startFloorpland(t, "-workers", "1")

	var sub map[string]any
	code := httpJSON(t, "POST", base+"/v1/solve", `{"generate":"rand","n":24,"seed":7}`, &sub)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d: %v", code, sub)
	}
	id, _ := sub["id"].(string)
	if id == "" {
		t.Fatalf("no job id in %v", sub)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content type %q", ct)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var event, data string
	kinds := map[string]int{}
	lastGap := math.Inf(1)
	gapProbes := 0
	var terminal map[string]any
stream:
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		case line == "" && data != "":
			if event == "job" {
				if err := json.Unmarshal([]byte(data), &terminal); err != nil {
					t.Fatalf("terminal frame not JSON: %v\n%s", err, data)
				}
				break stream
			}
			var e map[string]any
			if err := json.Unmarshal([]byte(data), &e); err != nil {
				t.Fatalf("event frame not JSON: %v\n%s", err, data)
			}
			kind, _ := e["kind"].(string)
			kinds[kind]++
			switch kind {
			case "step.start":
				// Each augmentation step restarts the branch-and-bound
				// search, so gap monotonicity holds per step, not globally.
				lastGap = math.Inf(1)
			case "progress":
				obj, _ := e["obj"].(float64)
				gap, _ := e["gap"].(float64)
				if obj != 0 { // probes without an incumbent carry no gap
					if gap > lastGap+1e-6 {
						t.Errorf("gap rose within a step: %g after %g", gap, lastGap)
					}
					lastGap = gap
					gapProbes++
				}
			}
			event, data = "", ""
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream read: %v", err)
	}
	if terminal == nil {
		t.Fatal("stream ended without a terminal job frame")
	}
	if terminal["state"] != "done" {
		t.Fatalf("terminal state %v (%v)", terminal["state"], terminal["error"])
	}
	if kinds["node.close"] == 0 {
		t.Errorf("no node.close events streamed: %v", kinds)
	}
	if kinds["progress"] == 0 || gapProbes == 0 {
		t.Errorf("no incumbent progress probes streamed (kinds %v, probes %d)", kinds, gapProbes)
	}
	if kinds["span.start"] == 0 || kinds["span.end"] == 0 {
		t.Errorf("no span events streamed: %v", kinds)
	}
}

// promSample matches one exposition sample line: name, optional labels,
// numeric value.
var promSample = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (?:[0-9.eE+-]+|\+Inf|NaN)$`)

// TestE2EFloorplandMetricsPrometheus scrapes /metrics with a text/plain
// Accept header after a completed solve and validates the body parses as
// Prometheus text exposition format 0.0.4.
func TestE2EFloorplandMetricsPrometheus(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI e2e in -short mode")
	}
	base, _ := startFloorpland(t, "-workers", "1")

	var sub map[string]any
	if code := httpJSON(t, "POST", base+"/v1/solve", `{"generate":"rand","n":8,"seed":3}`, &sub); code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	if v := pollJob(t, base, sub["id"].(string), 60*time.Second); v["state"] != "done" {
		t.Fatalf("job finished %v", v["state"])
	}

	req, err := http.NewRequest("GET", base+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/plain")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != obs.PrometheusContentType {
		t.Fatalf("content type %q, want %q", ct, obs.PrometheusContentType)
	}

	types := map[string]string{}
	bucketTotals := map[string]string{} // family -> +Inf bucket value
	counts := map[string]string{}       // family -> _count value
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			f := strings.Fields(line)
			if len(f) != 4 || f[1] != "TYPE" || (f[3] != "counter" && f[3] != "gauge" && f[3] != "histogram") {
				t.Fatalf("invalid comment line %q", line)
			}
			types[f[2]] = f[3]
			continue
		}
		if !promSample.MatchString(line) {
			t.Fatalf("invalid sample line %q", line)
		}
		name, value, _ := strings.Cut(line, " ")
		if fam, ok := strings.CutSuffix(name, `_bucket{le="+Inf"}`); ok {
			bucketTotals[fam] = value
		}
		if fam, ok := strings.CutSuffix(name, "_count"); ok {
			counts[fam] = value
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	for name, typ := range map[string]string{
		"jobs_done_total":        "counter",
		"solve_seconds_total":    "counter",
		"pool_workers":           "gauge",
		"worker_utilization_pct": "gauge",
		"lp_solve_us":            "histogram",
		"node_depth":             "histogram",
		"queue_wait_us":          "histogram",
		"http_request_us":        "histogram",
	} {
		if types[name] != typ {
			t.Errorf("family %s: type %q, want %q (all: %v)", name, types[name], typ, types)
		}
	}
	// Histogram invariant: the +Inf bucket equals the series count.
	for fam, typ := range types {
		if typ != "histogram" {
			continue
		}
		if bucketTotals[fam] == "" || bucketTotals[fam] != counts[fam] {
			t.Errorf("histogram %s: +Inf bucket %q != count %q", fam, bucketTotals[fam], counts[fam])
		}
	}
}

// TestE2EFloorplanTraceAmi33RootSpan records an ami33 solve trace with
// the CLI and checks floorplantrace reconstructs it: the span tree's
// root duration must agree with the solve wall time the CLI reports to
// within 5%.
func TestE2EFloorplanTraceAmi33RootSpan(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI e2e in -short mode")
	}
	trace := filepath.Join(t.TempDir(), "ami33.jsonl")
	out := runCLI(t, "floorplan", "", "-design", "ami33", "-trace", trace)

	var wall time.Duration
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "chip ") {
			continue
		}
		fields := strings.Split(strings.TrimSpace(line), ", ")
		d, err := time.ParseDuration(fields[len(fields)-1])
		if err != nil {
			t.Fatalf("parsing solve wall time from %q: %v", line, err)
		}
		wall = d
	}
	if wall == 0 {
		t.Fatalf("no solve summary in CLI output:\n%s", out)
	}

	tout := runCLI(t, "floorplantrace", "", trace)
	m := regexp.MustCompile(`(?m)^\s+solve \(ami33\)\s+(\S+)`).FindStringSubmatch(tout)
	if m == nil {
		t.Fatalf("no ami33 root span in trace output:\n%s", tout)
	}
	root, err := time.ParseDuration(m[1])
	if err != nil {
		t.Fatalf("parsing root duration %q: %v", m[1], err)
	}
	if diff := math.Abs(root.Seconds() - wall.Seconds()); diff > 0.05*wall.Seconds() {
		t.Errorf("root span %v vs solve wall %v: off by %.1f%%, want within 5%%",
			root, wall, 100*diff/wall.Seconds())
	}
	for _, want := range []string{"span tree:", "step 0", "bb", "[lp ", "events by kind:", "node throughput"} {
		if !strings.Contains(tout, want) {
			t.Errorf("trace output missing %q:\n%s", want, tout)
		}
	}
}
