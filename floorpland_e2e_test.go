// End-to-end test of the floorpland service binary: boots the server on
// an ephemeral port, drives the job lifecycle over real HTTP, and shuts
// it down with SIGINT.
package afp_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// captureWriter collects the child's stdout and hands the first line
// (the listen-address announcement) to the test as soon as it appears.
type captureWriter struct {
	mu        sync.Mutex
	buf       bytes.Buffer
	firstLine chan string
	sentFirst bool
}

func newCaptureWriter() *captureWriter {
	return &captureWriter{firstLine: make(chan string, 1)}
}

func (w *captureWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf.Write(p)
	if !w.sentFirst {
		if i := bytes.IndexByte(w.buf.Bytes(), '\n'); i >= 0 {
			w.sentFirst = true
			w.firstLine <- strings.TrimRight(string(w.buf.Bytes()[:i]), "\r")
		}
	}
	return len(p), nil
}

func (w *captureWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// startFloorpland launches the daemon with the given extra flags and
// returns its base URL plus a stop function that SIGINTs the process
// and returns its full stdout.
func startFloorpland(t *testing.T, args ...string) (string, func() string) {
	t.Helper()
	bin := filepath.Join(buildCLIs(t), "floorpland")
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	out := newCaptureWriter()
	cmd.Stdout = out
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// The first stdout line announces the resolved address.
	var line string
	select {
	case line = <-out.firstLine:
	case <-time.After(30 * time.Second):
		_ = cmd.Process.Kill()
		t.Fatal("floorpland printed no listen address")
	}
	addr, ok := strings.CutPrefix(line, "listening on ")
	if !ok {
		_ = cmd.Process.Kill()
		t.Fatalf("unexpected first line %q", line)
	}

	stopped := false
	stop := func() string {
		if stopped {
			return out.String()
		}
		stopped = true
		_ = cmd.Process.Signal(os.Interrupt)
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("floorpland exited with error: %v", err)
			}
		case <-time.After(30 * time.Second):
			_ = cmd.Process.Kill()
			t.Error("floorpland did not exit within 30s of SIGINT")
			<-done
		}
		return out.String()
	}
	t.Cleanup(func() { stop() })
	return "http://" + addr, stop
}

func httpJSON(t *testing.T, method, url string, body string, out any) int {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, url, data, err)
		}
	}
	return resp.StatusCode
}

// pollJob polls until the job is terminal and returns its final state.
func pollJob(t *testing.T, base, id string, timeout time.Duration) map[string]any {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		var v map[string]any
		if code := httpJSON(t, "GET", base+"/v1/jobs/"+id, "", &v); code != http.StatusOK {
			t.Fatalf("job poll status %d", code)
		}
		switch v["state"] {
		case "done", "failed", "cancelled":
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %v after %v", id, v["state"], timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestE2EFloorplandSolveAndTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI e2e in -short mode")
	}
	base, stop := startFloorpland(t, "-workers", "1")

	// Submit, poll to completion, fetch the result.
	var sub map[string]any
	code := httpJSON(t, "POST", base+"/v1/solve", `{"generate":"rand","n":8,"seed":3}`, &sub)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d: %v", code, sub)
	}
	id, _ := sub["id"].(string)
	if id == "" {
		t.Fatalf("no job id in %v", sub)
	}
	v := pollJob(t, base, id, 60*time.Second)
	if v["state"] != "done" {
		t.Fatalf("job finished %v (%v)", v["state"], v["error"])
	}

	var res map[string]any
	if code := httpJSON(t, "GET", base+"/v1/jobs/"+id+"/result", "", &res); code != http.StatusOK {
		t.Fatalf("result status %d", code)
	}
	if res["placed"] != float64(8) {
		t.Fatalf("placed = %v, want 8", res["placed"])
	}

	// The trace endpoint serves the job's solver telemetry as JSONL.
	resp, err := http.Get(base + "/v1/jobs/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	dec := json.NewDecoder(resp.Body)
	kinds := map[string]bool{}
	for dec.More() {
		var e map[string]any
		if err := dec.Decode(&e); err != nil {
			t.Fatalf("trace not valid JSONL: %v", err)
		}
		if k, _ := e["kind"].(string); k != "" {
			kinds[k] = true
		}
	}
	if !kinds["step.done"] || !kinds["search.done"] {
		t.Fatalf("trace missing solver events: %v", kinds)
	}

	// An identical submission is served from the cache.
	var sub2 map[string]any
	if code := httpJSON(t, "POST", base+"/v1/solve", `{"generate":"rand","n":8,"seed":3}`, &sub2); code != http.StatusOK {
		t.Fatalf("cached submit status %d: %v", code, sub2)
	}
	if sub2["cached"] != true {
		t.Fatalf("second submission not cached: %v", sub2)
	}
	var metrics map[string]float64
	httpJSON(t, "GET", base+"/metrics", "", &metrics)
	if metrics["cache_hit"] != 1 {
		t.Fatalf("metrics cache_hit = %v, want 1", metrics["cache_hit"])
	}

	out := stop()
	if !strings.Contains(out, "drained cleanly") {
		t.Fatalf("shutdown output missing drain message:\n%s", out)
	}
}

func TestE2EFloorplandMalformedModelRejected(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI e2e in -short mode")
	}
	base, _ := startFloorpland(t, "-workers", "1")

	// A module wider than the chip is well-formed JSON and a valid design,
	// but its MILP cannot be built: the pre-dispatch model audit must
	// reject it with 422 before any solver time is spent.
	var errResp map[string]any
	code := httpJSON(t, "POST", base+"/v1/solve",
		`{"design":{"modules":[{"name":"a","w":8,"h":4}]},"options":{"chipWidth":4}}`, &errResp)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("malformed submit status %d, want 422: %v", code, errResp)
	}
	msg, _ := errResp["error"].(string)
	if !strings.Contains(msg, "model audit") || !strings.Contains(msg, "cannot fit chip width") {
		t.Fatalf("422 body does not name the audit failure: %q", msg)
	}

	var metrics map[string]float64
	httpJSON(t, "GET", base+"/metrics", "", &metrics)
	if metrics["jobs_malformed"] != 1 {
		t.Fatalf("metrics jobs_malformed = %v, want 1", metrics["jobs_malformed"])
	}
	if metrics["jobs_submitted"] != 0 {
		t.Fatalf("malformed job was counted as submitted: %v", metrics["jobs_submitted"])
	}

	// The same design with a workable chip width sails through.
	var ok map[string]any
	code = httpJSON(t, "POST", base+"/v1/solve",
		`{"design":{"modules":[{"name":"a","w":8,"h":4}]},"options":{"chipWidth":10}}`, &ok)
	if code != http.StatusAccepted {
		t.Fatalf("well-formed submit status %d: %v", code, ok)
	}
	v := pollJob(t, base, ok["id"].(string), 30*time.Second)
	if v["state"] != "done" {
		t.Fatalf("well-formed job finished %v (%v)", v["state"], v["error"])
	}
}

func TestE2EFloorplandCancelFreesWorker(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI e2e in -short mode")
	}
	base, _ := startFloorpland(t, "-workers", "1")

	// Occupy the single worker with a seconds-long solve.
	var long map[string]any
	if code := httpJSON(t, "POST", base+"/v1/solve", `{"generate":"rand","n":24,"seed":7}`, &long); code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	longID, _ := long["id"].(string)
	time.Sleep(100 * time.Millisecond)

	if code := httpJSON(t, "DELETE", base+"/v1/jobs/"+longID, "", nil); code != http.StatusOK {
		t.Fatalf("cancel status %d", code)
	}
	lv := pollJob(t, base, longID, 15*time.Second)
	if lv["state"] != "cancelled" && lv["state"] != "done" {
		t.Fatalf("long job state %v", lv["state"])
	}

	// The freed slot must pick up and finish a quick job.
	var quick map[string]any
	if code := httpJSON(t, "POST", base+"/v1/solve", `{"generate":"rand","n":6,"seed":1}`, &quick); code != http.StatusAccepted {
		t.Fatalf("quick submit status %d", code)
	}
	qv := pollJob(t, base, quick["id"].(string), 60*time.Second)
	if qv["state"] != "done" {
		t.Fatalf("quick job after cancel: %v (%v)", qv["state"], qv["error"])
	}
}

func TestE2EFloorplandDeadlinePartial(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI e2e in -short mode")
	}
	base, _ := startFloorpland(t, "-workers", "1")

	start := time.Now()
	var sub map[string]any
	code := httpJSON(t, "POST", base+"/v1/solve",
		`{"generate":"rand","n":24,"seed":7,"options":{"timeoutMs":100}}`, &sub)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	v := pollJob(t, base, sub["id"].(string), 10*time.Second)
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("deadline job resolved after %v", elapsed)
	}
	if v["state"] == "done" && v["partial"] == true {
		var res map[string]any
		if code := httpJSON(t, "GET", base+"/v1/jobs/"+sub["id"].(string)+"/result", "", &res); code != http.StatusOK {
			t.Fatalf("result status %d", code)
		}
		if res["partial"] != true {
			t.Fatalf("payload not partial: %v", res["partial"])
		}
	}
}

func TestCLIFloorplanTimeoutPartial(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI e2e in -short mode")
	}
	// A 24-module instance takes seconds; a 200ms budget must still
	// produce a summary (possibly partial) and exit zero.
	start := time.Now()
	out := runCLI(t, "floorplan", "", "-design", "rand24", "-seed", "7", "-timeout", "200ms")
	if elapsed := time.Since(start); elapsed > 15*time.Second {
		t.Fatalf("floorplan -timeout took %v", elapsed)
	}
	if !strings.Contains(out, "design rand24") || !strings.Contains(out, "chip ") {
		t.Fatalf("timeout run printed no summary:\n%s", out)
	}
}

func TestCLIMipsolveTimeoutReportsIncumbent(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI e2e in -short mode")
	}
	// A correlated knapsack large enough to outlive a 50ms budget.
	var b strings.Builder
	b.WriteString("maximize\n")
	cap := 0
	for i := 0; i < 40; i++ {
		w := 10 + (i*37)%90
		cap += w
		fmt.Fprintf(&b, "bin x%d %d\n", i, w+10)
	}
	fmt.Fprintf(&b, "con cap <= %d", cap/4)
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&b, " %d x%d", 10+(i*37)%90, i)
	}
	b.WriteString("\n")
	out := runCLI(t, "mipsolve", b.String(), "-timeout", "50ms")
	if !strings.Contains(out, "status:") {
		t.Fatalf("mipsolve -timeout printed no status:\n%s", out)
	}
}
