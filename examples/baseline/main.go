// Baseline comparison: the analytical MILP floorplanner of the paper
// versus the Wong-Liu slicing floorplanner driven by simulated annealing
// (the dominant approach the paper argues against). Both run on the same
// 20-module random design; the comparison reports area, utilization,
// wirelength and time.
package main

import (
	"fmt"
	"log"
	"time"

	"afp/internal/anneal"
	"afp/internal/core"
	"afp/internal/milp"
	"afp/internal/netlist"
	"afp/internal/seqpair"
)

func main() {
	d := netlist.Random(20, 7)
	fmt.Printf("design %s: %d modules, total area %.0f\n\n", d.Name, len(d.Modules), d.TotalArea())

	start := time.Now()
	milpRes, err := core.Floorplan(d, core.Config{
		GroupSize:    3,
		PostOptimize: true,
		MILP:         milp.Options{MaxNodes: 8000, TimeLimit: 10 * time.Second},
	})
	if err != nil {
		log.Fatal(err)
	}
	milpTime := time.Since(start)

	start = time.Now()
	saRes, err := anneal.Floorplan(d, anneal.Config{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	saTime := time.Since(start)

	start = time.Now()
	spRes, err := seqpair.Floorplan(d, seqpair.Config{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	spTime := time.Since(start)

	fmt.Printf("%-28s %10s %8s %10s %10s\n", "method", "area", "util %", "HPWL", "time")
	fmt.Printf("%-28s %10.0f %7.1f%% %10.0f %10v\n",
		"analytical (MILP, paper)", milpRes.ChipArea(), 100*milpRes.Utilization(),
		milpRes.HPWL(), milpTime.Round(time.Millisecond))
	fmt.Printf("%-28s %10.0f %7.1f%% %10.0f %10v\n",
		"slicing SA (Wong-Liu 1986)", saRes.ChipArea(), 100*d.TotalArea()/saRes.ChipArea(),
		saRes.HPWL(), saTime.Round(time.Millisecond))
	fmt.Printf("%-28s %10.0f %7.1f%% %10.0f %10v\n",
		"sequence-pair SA (1995)", spRes.ChipArea(), 100*d.TotalArea()/spRes.ChipArea(),
		spRes.HPWL(), spTime.Round(time.Millisecond))

	fmt.Println("\nNote: the analytical method works with a fixed chip width and")
	fmt.Println("guarantees per-step optimality; the SA baseline explores only")
	fmt.Println("slicing structures but is free to choose any outline.")
}
