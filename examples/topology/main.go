// Fixed-topology optimization (Section 2.5): when the relative positions
// of all modules are already decided, every 0-1 variable disappears and
// floorplan area optimization is a pure linear program. This example
// builds a deliberately loose floorplan by hand and lets the LP compact
// it and reshape the flexible modules.
package main

import (
	"fmt"
	"log"

	"afp/internal/core"
	"afp/internal/geom"
	"afp/internal/netlist"
	"afp/internal/render"
)

func main() {
	d := &netlist.Design{
		Name: "topology",
		Modules: []netlist.Module{
			{Name: "a", Kind: netlist.Rigid, W: 6, H: 4},
			{Name: "b", Kind: netlist.Flexible, Area: 24, MinAspect: 0.5, MaxAspect: 2},
			{Name: "c", Kind: netlist.Rigid, W: 4, H: 4},
			{Name: "d", Kind: netlist.Flexible, Area: 16, MinAspect: 0.5, MaxAspect: 2},
		},
	}

	// A hand-made topology with plenty of slack: a | b on the bottom row,
	// c | d above, everything spread out. Only the relative positions
	// (left-of / below) matter to the LP.
	loose := &core.Result{
		Design:    d,
		ChipWidth: 14,
		Height:    14,
		Placements: []core.Placement{
			{Index: 0, Env: geom.NewRect(0, 0, 6, 4), Mod: geom.NewRect(0, 0, 6, 4)},
			{Index: 1, Env: geom.NewRect(7, 1, 6, 4), Mod: geom.NewRect(7, 1, 6, 4)},
			{Index: 2, Env: geom.NewRect(1, 6, 4, 4), Mod: geom.NewRect(1, 6, 4, 4)},
			{Index: 3, Env: geom.NewRect(7, 7, 4, 4), Mod: geom.NewRect(7, 7, 4, 4)},
		},
	}
	fmt.Printf("loose floorplan: %.1f x %.1f (area %.0f, util %.1f%%)\n",
		loose.ChipWidth, loose.Height, loose.ChipArea(), 100*loose.Utilization())
	fmt.Print(render.ASCII(loose, 56))

	opt, err := core.OptimizeTopology(d, loose, core.Config{ChipWidth: 14})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noptimized (same topology): %.1f x %.1f (area %.0f, util %.1f%%)\n",
		opt.ChipWidth, opt.Height, opt.ChipArea(), 100*opt.Utilization())
	fmt.Print(render.ASCII(opt, 56))

	for _, p := range opt.Placements {
		m := &d.Modules[p.Index]
		if m.Kind == netlist.Flexible {
			fmt.Printf("flexible %s reshaped to %.2f x %.2f (aspect %.2f)\n",
				m.Name, p.Mod.W, p.Mod.H, p.Mod.W/p.Mod.H)
		}
	}
}
