// Quickstart: build a small design in code, floorplan it, and print the
// result. This is the smallest end-to-end use of the library.
package main

import (
	"fmt"
	"log"
	"os"

	"afp/internal/core"
	"afp/internal/netlist"
	"afp/internal/render"
)

func main() {
	// A design mixes rigid modules (fixed dimensions, optionally
	// rotatable) and flexible modules (fixed area, bounded aspect ratio).
	d := &netlist.Design{
		Name: "quickstart",
		Modules: []netlist.Module{
			{Name: "cpu", Kind: netlist.Rigid, W: 8, H: 6, Rotatable: true},
			{Name: "ram", Kind: netlist.Rigid, W: 6, H: 6},
			{Name: "dma", Kind: netlist.Rigid, W: 4, H: 3, Rotatable: true},
			{Name: "rom", Kind: netlist.Flexible, Area: 24, MinAspect: 0.5, MaxAspect: 2},
			{Name: "io", Kind: netlist.Flexible, Area: 18, MinAspect: 0.4, MaxAspect: 2.5},
		},
		Nets: []netlist.Net{
			{Name: "bus", Modules: []int{0, 1, 2}, Weight: 2},
			{Name: "boot", Modules: []int{0, 3}},
			{Name: "pins", Modules: []int{2, 4}, Critical: true},
		},
	}

	// Floorplan with default settings: automatic chip width,
	// connectivity-driven module order, group size 4, and the
	// fixed-topology LP adjustment at the end.
	r, err := core.Floorplan(d, core.Config{PostOptimize: true})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("chip %.1f x %.1f — area %.0f, utilization %.1f%%\n",
		r.ChipWidth, r.Height, r.ChipArea(), 100*r.Utilization())
	for _, p := range r.Placements {
		rot := ""
		if p.Rotated {
			rot = " (rotated)"
		}
		fmt.Printf("  %-4s at (%.1f, %.1f) size %.1f x %.1f%s\n",
			d.Modules[p.Index].Name, p.Mod.X, p.Mod.Y, p.Mod.W, p.Mod.H, rot)
	}
	fmt.Println()
	fmt.Print(render.ASCII(r, 60))

	// Optionally persist the design in the text format for the CLI tools.
	f, err := os.Create("quickstart.netlist")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := d.Write(f); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote quickstart.netlist (try: go run ./cmd/floorplan -input quickstart.netlist -ascii)")
}
