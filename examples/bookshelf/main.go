// Bookshelf interop: export the ami33-style benchmark as a GSRC/UCLA
// bookshelf .blocks/.nets pair, read it back, and floorplan the imported
// design — the round trip a downstream user needs to bring their own MCNC
// or GSRC benchmarks into the library.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"afp/internal/core"
	"afp/internal/milp"
	"afp/internal/netlist"
)

func main() {
	d := netlist.AMI33()

	bf, err := os.Create("ami33.blocks")
	if err != nil {
		log.Fatal(err)
	}
	nf, err := os.Create("ami33.nets")
	if err != nil {
		log.Fatal(err)
	}
	if err := d.WriteBookshelf(bf, nf); err != nil {
		log.Fatal(err)
	}
	bf.Close()
	nf.Close()
	fmt.Println("wrote ami33.blocks and ami33.nets")

	// Read them back the way an external benchmark would arrive.
	br, err := os.Open("ami33.blocks")
	if err != nil {
		log.Fatal(err)
	}
	defer br.Close()
	nr, err := os.Open("ami33.nets")
	if err != nil {
		log.Fatal(err)
	}
	defer nr.Close()
	imported, err := netlist.ParseBookshelf("ami33", br, nr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("imported %d modules, %d nets, total area %.0f\n",
		len(imported.Modules), len(imported.Nets), imported.TotalArea())

	r, err := core.Floorplan(imported, core.Config{
		GroupSize:    3,
		PostOptimize: true,
		MILP:         milp.Options{MaxNodes: 2000, TimeLimit: 4 * time.Second},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("floorplanned: chip %.1f x %.1f, utilization %.1f%%\n",
		r.ChipWidth, r.Height, 100*r.Utilization())
	if v := r.Verify(); len(v) != 0 {
		log.Fatalf("illegal floorplan: %v", v)
	}
	fmt.Println("floorplan verified legal")
}
