// The paper's flagship experiment: floorplan the ami33-style benchmark
// (33 modules, total area 11520) with the chip-area objective and
// connectivity-based linear ordering, then globally route it and report
// the final chip — the flow behind Tables 2 and 3 and Figures 5-6.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"afp/internal/core"
	"afp/internal/milp"
	"afp/internal/netlist"
	"afp/internal/render"
	"afp/internal/route"
)

func main() {
	d := netlist.AMI33()
	fmt.Printf("design %s: %d modules, %d nets, total module area %.0f\n",
		d.Name, len(d.Modules), len(d.Nets), d.TotalArea())

	cfg := core.Config{
		GroupSize:    3,
		Envelopes:    true, // reserve routing space (Section 3.2 envelopes)
		PostOptimize: true,
		MILP:         milp.Options{MaxNodes: 8000, TimeLimit: 10 * time.Second},
	}
	start := time.Now()
	fp, err := core.Floorplan(d, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("placed: chip %.1f x %.1f, area %.0f, utilization %.1f%% in %v\n",
		fp.ChipWidth, fp.Height, fp.ChipArea(), 100*fp.Utilization(),
		time.Since(start).Round(time.Millisecond))
	for _, s := range fp.Steps {
		fmt.Printf("  step %2d: +%d modules, %2d covering rects, %3d binaries, %5d nodes, %v\n",
			s.Step, len(s.Added), s.Obstacles, s.Binaries, s.Nodes, s.Status)
	}

	rt, err := route.Route(fp, route.Config{Algorithm: route.WeightedShortestPath})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("routed: wirelength %.0f, overflow %d\n", rt.Wirelength, rt.Overflow)
	fmt.Printf("final chip after channel adjustment: %.1f x %.1f (area %.0f)\n",
		rt.FinalW, rt.FinalH, rt.FinalArea())

	f, err := os.Create("ami33.svg")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := render.SVGWithRoutes(f, fp, rt); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote ami33.svg")
}
