// Package afp is an open-source reproduction of "An Analytical Approach
// to Floorplan Design and Optimization" (Sutanthavibul, Shragowitz,
// Rosen; DAC 1990): mixed-integer-programming floorplanning by
// successive augmentation, with a pure-Go simplex/branch-and-bound
// solver, covering-rectangle reformulation, flexible-module
// linearization, fixed-topology LP optimization, a graph-based global
// router, and a Wong-Liu slicing simulated-annealing baseline.
//
// The root package carries only documentation; see the packages under
// internal/ (core, mipmodel, milp, lp, geom, netlist, order, route,
// anneal, render, bench), the executables under cmd/, and the runnable
// examples under examples/. DESIGN.md maps every subsystem and every
// table and figure of the paper to the code that reproduces it;
// EXPERIMENTS.md records paper-versus-measured results.
package afp
