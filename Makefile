GO ?= go

.PHONY: all build test ci vet lint lockgraph cover race bench benchall benchcmp serve e2e generate-check clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs the project's custom analyzers (ctxsolve, toleq, obsevent,
# locked, guardedby, lockorder, goroleak — see DESIGN.md sections 11
# and 15) over the whole repository. Any finding fails the target, as
# does drift of the lock-order graph from its committed golden dump.
lint:
	$(GO) run ./cmd/floorplanvet ./...

# lockgraph regenerates the blessed lock-order graph after a reviewed
# ordering change; `make lint` (and therefore `make ci`) fails until
# the committed dump matches what the analyzers observe.
lockgraph:
	$(GO) run ./cmd/floorplanvet -lockgraph internal/analysis/testdata/lockorder.golden ./...

test:
	$(GO) test ./...

# cover prints a per-package coverage summary and enforces a 70% floor on
# the static-analysis, model-builder, observability and portfolio-racing
# packages, whose correctness the rest of the gate leans on.
cover:
	$(GO) test -cover ./internal/... | tee cover.out
	@awk '/^ok/ && ($$2 == "afp/internal/analysis" || $$2 == "afp/internal/mipmodel" || $$2 == "afp/internal/obs" || $$2 == "afp/internal/portfolio") { \
		for (i = 1; i <= NF; i++) if ($$i ~ /^[0-9.]+%$$/) { pct = substr($$i, 1, length($$i)-1) + 0; \
			if (pct < 70) { printf "cover: %s at %s%% is under the 70%% floor\n", $$2, pct; bad = 1 } \
			else printf "cover: %s at %s%% meets the 70%% floor\n", $$2, pct } } \
		END { exit bad }' cover.out
	@rm -f cover.out

# race runs the race detector over the packages with concurrency-sensitive
# instrumentation and concurrency proper: the observability sinks, the
# solvers they observe, the model layer (presolve equivalence properties),
# the width-sweep driver and the HTTP service.
race:
	$(GO) test -race ./internal/obs ./internal/milp ./internal/lp ./internal/mipmodel ./internal/server ./internal/core ./internal/portfolio

# generate-check fails when internal/obs/schema.go is stale: it
# regenerates the event/span/histogram registries to a scratch path and
# byte-compares against the committed file. Run `go generate
# ./internal/obs` to refresh.
generate-check:
	$(GO) run ./internal/obs/schemagen -root . -out internal/obs/.schema_check
	@cmp internal/obs/.schema_check internal/obs/schema.go \
		|| { echo "generate-check: internal/obs/schema.go is stale; run: go generate ./internal/obs"; rm -f internal/obs/.schema_check; exit 1; }
	@rm -f internal/obs/.schema_check

# ci is the gate run before merging: static checks (go vet plus the
# custom analyzer suite), generated-file drift, a full build, and the
# race-instrumented solver tests.
ci: vet lint generate-check build race

# serve runs the HTTP solve service locally (see DESIGN.md section 8).
serve:
	$(GO) run ./cmd/floorpland -addr 127.0.0.1:8080 -verbose

# e2e drives the compiled binaries end to end, including the floorpland
# boot / submit / poll / trace / SIGINT-drain cycle.
e2e:
	$(GO) test -run 'CLI|E2E' -v .

# bench runs the Table 1/Table 3 quick benches (including the serial vs
# Workers=4 pairs) plus the presolve node-count ablation and the portfolio
# race, and persists a machine-readable BENCH_<utc-date>.json snapshot
# (ns/op, util%, LP iters, nodes, portfolio TTFF, speedups) via
# cmd/benchjson.
bench:
	$(GO) test -bench='Table1|Table3|Presolve|Portfolio' -benchtime=1x -run=^$$ . > bench.out
	@cat bench.out
	$(GO) run ./cmd/benchjson -out BENCH_$$(date -u +%Y-%m-%d).json < bench.out
	@rm -f bench.out

# benchall runs every benchmark once without persisting a snapshot.
benchall:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

# benchcmp diffs the two most recent committed BENCH_*.json snapshots
# and fails when a Table1* benchmark's B/op regressed by more than 10%
# (the allocation-regression gate for the paper-reproduction hot path).
benchcmp:
	@set -- $$(ls BENCH_*.json | sort | tail -2); \
	if [ $$# -lt 2 ]; then echo "benchcmp: need at least two BENCH_*.json snapshots"; exit 1; fi; \
	$(GO) run ./cmd/benchjson -diff -gate 10 $$1 $$2

clean:
	$(GO) clean ./...
