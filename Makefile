GO ?= go

.PHONY: all build test ci vet race bench benchall benchcmp serve e2e clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race runs the race detector over the packages with concurrency-sensitive
# instrumentation and concurrency proper: the observability sinks, the
# solvers they observe, the model layer (presolve equivalence properties),
# the width-sweep driver and the HTTP service.
race:
	$(GO) test -race ./internal/obs ./internal/milp ./internal/lp ./internal/mipmodel ./internal/server ./internal/core

# ci is the gate run before merging: static checks, a full build, and the
# race-instrumented solver tests.
ci: vet build race

# serve runs the HTTP solve service locally (see DESIGN.md section 8).
serve:
	$(GO) run ./cmd/floorpland -addr 127.0.0.1:8080 -verbose

# e2e drives the compiled binaries end to end, including the floorpland
# boot / submit / poll / trace / SIGINT-drain cycle.
e2e:
	$(GO) test -run 'CLI|E2E' -v .

# bench runs the Table 1/Table 3 quick benches (including the serial vs
# Workers=4 pairs) plus the presolve node-count ablation, and persists a
# machine-readable BENCH_<utc-date>.json snapshot (ns/op, util%, LP
# iters, nodes, speedups) via cmd/benchjson.
bench:
	$(GO) test -bench='Table1|Table3|Presolve' -benchtime=1x -run=^$$ . > bench.out
	@cat bench.out
	$(GO) run ./cmd/benchjson -out BENCH_$$(date -u +%Y-%m-%d).json < bench.out
	@rm -f bench.out

# benchall runs every benchmark once without persisting a snapshot.
benchall:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

# benchcmp diffs the two most recent committed BENCH_*.json snapshots.
benchcmp:
	@set -- $$(ls BENCH_*.json | sort | tail -2); \
	if [ $$# -lt 2 ]; then echo "benchcmp: need at least two BENCH_*.json snapshots"; exit 1; fi; \
	$(GO) run ./cmd/benchjson -diff $$1 $$2

clean:
	$(GO) clean ./...
