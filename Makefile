GO ?= go

.PHONY: all build test ci vet race bench clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race runs the race detector over the packages with concurrency-sensitive
# instrumentation (the observability sinks and the solvers they observe).
race:
	$(GO) test -race ./internal/obs ./internal/milp ./internal/lp

# ci is the gate run before merging: static checks, a full build, and the
# race-instrumented solver tests.
ci: vet build race

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

clean:
	$(GO) clean ./...
