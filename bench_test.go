// Benchmarks regenerating the paper's evaluation (one benchmark per
// table row family and figure; see DESIGN.md section 4) plus the
// ablation benches for the design choices called out in DESIGN.md
// section 5. All run in Quick mode so `go test -bench=.` finishes in
// minutes; cmd/experiments runs the Full-mode versions.
package afp_test

import (
	"context"
	"testing"
	"time"

	"afp/internal/anneal"
	"afp/internal/bench"
	"afp/internal/core"
	"afp/internal/geom"
	"afp/internal/lp"
	"afp/internal/milp"
	"afp/internal/mipmodel"
	"afp/internal/netlist"
	"afp/internal/portfolio"
	"afp/internal/route"
)

func quickMILP() milp.Options {
	return milp.Options{MaxNodes: 600, TimeLimit: 2 * time.Second}
}

// --- Table 1: execution time vs problem size -----------------------------

func benchFloorplanSize(b *testing.B, d *netlist.Design) {
	benchFloorplanWorkers(b, d, 0)
}

// benchFloorplanWorkers runs a Table 1 row at a fixed branch-and-bound
// worker count (0 = library default). The util%, lpiters, dualpivots and
// refactors metrics land in the BENCH_*.json snapshots next to ns/op
// (see cmd/benchjson).
func benchFloorplanWorkers(b *testing.B, d *netlist.Design, workers int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := core.Floorplan(d, core.Config{GroupSize: 3, MILP: quickMILP(), Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		iters, pivots, refactors := 0, 0, 0
		for _, s := range r.Steps {
			iters += s.LPIters
			pivots += s.DualPivots
			refactors += s.Refactors
		}
		b.ReportMetric(100*r.Utilization(), "util%")
		b.ReportMetric(float64(iters), "lpiters")
		b.ReportMetric(float64(pivots), "dualpivots")
		b.ReportMetric(float64(refactors), "refactors")
	}
}

func BenchmarkTable1Size15(b *testing.B) { benchFloorplanSize(b, netlist.Random(15, 1501)) }
func BenchmarkTable1Size20(b *testing.B) { benchFloorplanSize(b, netlist.Random(20, 2001)) }
func BenchmarkTable1Size25(b *testing.B) { benchFloorplanSize(b, netlist.Random(25, 2501)) }
func BenchmarkTable1AMI33(b *testing.B)  { benchFloorplanSize(b, netlist.AMI33()) }

// Serial vs parallel tree search on Table 1 rows. cmd/benchjson pairs a
// WorkersN bench with its Workers1 sibling and reports the speedup; on a
// single-core host the two collapse to similar times.
func BenchmarkTable1Size15Workers1(b *testing.B) {
	benchFloorplanWorkers(b, netlist.Random(15, 1501), 1)
}
func BenchmarkTable1Size15Workers4(b *testing.B) {
	benchFloorplanWorkers(b, netlist.Random(15, 1501), 4)
}
func BenchmarkTable1Size25Workers1(b *testing.B) {
	benchFloorplanWorkers(b, netlist.Random(25, 2501), 1)
}
func BenchmarkTable1Size25Workers4(b *testing.B) {
	benchFloorplanWorkers(b, netlist.Random(25, 2501), 4)
}

// --- Table 2: objective x ordering on ami33 ------------------------------

func benchTable2(b *testing.B, obj mipmodel.Objective, random bool) {
	d := netlist.AMI33()
	cfg := core.Config{GroupSize: 3, MILP: quickMILP(), Objective: obj, WireWeight: 0.02, PostOptimize: true}
	if random {
		cfg.Ordering = orderRandom(d)
	}
	for i := 0; i < b.N; i++ {
		r, err := core.Floorplan(d, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.Utilization(), "util%")
		b.ReportMetric(r.HPWL(), "hpwl")
	}
}

func orderRandom(d *netlist.Design) []int {
	// package order is imported indirectly through core; rebuild a local
	// deterministic shuffle to keep this file self-contained.
	ord := make([]int, len(d.Modules))
	for i := range ord {
		ord[i] = i
	}
	s := int64(42)
	for i := len(ord) - 1; i > 0; i-- {
		s = s*6364136223846793005 + 1442695040888963407
		j := int((s >> 33) % int64(i+1))
		if j < 0 {
			j = -j
		}
		ord[i], ord[j] = ord[j], ord[i]
	}
	return ord
}

func BenchmarkTable2AreaLinear(b *testing.B) { benchTable2(b, mipmodel.AreaOnly, false) }
func BenchmarkTable2AreaRandom(b *testing.B) { benchTable2(b, mipmodel.AreaOnly, true) }
func BenchmarkTable2WireLinear(b *testing.B) { benchTable2(b, mipmodel.AreaWire, false) }
func BenchmarkTable2WireRandom(b *testing.B) { benchTable2(b, mipmodel.AreaWire, true) }

// --- Table 3: envelopes x routing algorithm on ami33 ---------------------

func benchTable3(b *testing.B, envelopes bool, alg route.Algorithm) {
	d := netlist.AMI33()
	cfg := core.Config{GroupSize: 3, MILP: quickMILP(), Envelopes: envelopes, PostOptimize: true}
	fp, err := core.Floorplan(d, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rr, err := route.Route(fp, route.Config{Algorithm: alg})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rr.FinalArea(), "finalArea")
		b.ReportMetric(rr.Wirelength, "wirelen")
	}
}

func BenchmarkTable3BareShortest(b *testing.B) { benchTable3(b, false, route.ShortestPath) }
func BenchmarkTable3BareWeighted(b *testing.B) { benchTable3(b, false, route.WeightedShortestPath) }
func BenchmarkTable3EnvShortest(b *testing.B)  { benchTable3(b, true, route.ShortestPath) }
func BenchmarkTable3EnvWeighted(b *testing.B)  { benchTable3(b, true, route.WeightedShortestPath) }

// --- Figures --------------------------------------------------------------

func BenchmarkFigure1Linearization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := bench.Figure1(100, 0.25, 4, 64)
		if len(pts) != 64 {
			b.Fatal("bad sample count")
		}
	}
}

func BenchmarkFigure4CoveringRects(b *testing.B) {
	mods := bench.Figure4().Modules
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		covers := geom.CoveringRectangles(mods)
		if len(covers) >= len(mods) {
			b.Fatal("covering failed to reduce")
		}
	}
}

// BenchmarkFigure2Trace exercises the successive-augmentation trace run
// behind Figures 2/3 (and 5/6 via render).
func BenchmarkFigure2Trace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Figure2(bench.Quick)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Steps) == 0 {
			b.Fatal("no steps")
		}
	}
}

// --- Ablations (DESIGN.md section 5) --------------------------------------

func benchGroupSize(b *testing.B, gs int) {
	d := netlist.Random(15, 1501)
	for i := 0; i < b.N; i++ {
		r, err := core.Floorplan(d, core.Config{GroupSize: gs, MILP: quickMILP()})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.Utilization(), "util%")
	}
}

func BenchmarkAblationGroupSize2(b *testing.B) { benchGroupSize(b, 2) }
func BenchmarkAblationGroupSize3(b *testing.B) { benchGroupSize(b, 3) }
func BenchmarkAblationGroupSize5(b *testing.B) { benchGroupSize(b, 5) }

func benchCoveringRects(b *testing.B, disable bool) {
	d := netlist.Random(15, 1501)
	binaries := 0
	for i := 0; i < b.N; i++ {
		r, err := core.Floorplan(d, core.Config{GroupSize: 3, MILP: quickMILP(), NoCoveringRects: disable})
		if err != nil {
			b.Fatal(err)
		}
		binaries = 0
		for _, s := range r.Steps {
			binaries += s.Binaries
		}
	}
	b.ReportMetric(float64(binaries), "binaries")
}

func BenchmarkAblationCoveringRectsOverlapping(b *testing.B) {
	d := netlist.Random(15, 1501)
	binaries := 0
	for i := 0; i < b.N; i++ {
		r, err := core.Floorplan(d, core.Config{GroupSize: 3, MILP: quickMILP(), OverlappingCovers: true})
		if err != nil {
			b.Fatal(err)
		}
		binaries = 0
		for _, s := range r.Steps {
			binaries += s.Binaries
		}
	}
	b.ReportMetric(float64(binaries), "binaries")
}

func BenchmarkAblationCoveringRectsOn(b *testing.B)  { benchCoveringRects(b, false) }
func BenchmarkAblationCoveringRectsOff(b *testing.B) { benchCoveringRects(b, true) }

func benchBranching(b *testing.B, rule milp.Branching) {
	// A fixed augmentation subproblem: 4 modules over 3 obstacles.
	d := netlist.Random(12, 99)
	spec := &mipmodel.Spec{
		ChipWidth: 80,
		Obstacles: []geom.Rect{
			geom.NewRect(0, 0, 30, 20), geom.NewRect(30, 0, 50, 12), geom.NewRect(30, 12, 20, 9),
		},
	}
	for i := 0; i < 4; i++ {
		spec.New = append(spec.New, mipmodel.NewModule{Index: i, Mod: &d.Modules[i]})
	}
	built, err := mipmodel.Build(spec)
	if err != nil {
		b.Fatal(err)
	}
	nodes := 0
	for i := 0; i < b.N; i++ {
		res := milp.Solve(built.Model, milp.Options{Branching: rule, MaxNodes: 50000})
		if res.X == nil {
			b.Fatal("no solution")
		}
		nodes = res.Nodes
	}
	b.ReportMetric(float64(nodes), "nodes")
}

func BenchmarkAblationBranchMostFractional(b *testing.B) { benchBranching(b, milp.MostFractional) }
func BenchmarkAblationBranchPseudoCost(b *testing.B)     { benchBranching(b, milp.PseudoCost) }

func benchLinearization(b *testing.B, mode mipmodel.Linearization) {
	// Flexible-heavy design: linearization choice matters most here.
	d := &netlist.Design{Name: "flex"}
	for i := 0; i < 9; i++ {
		d.Modules = append(d.Modules, netlist.Module{
			Name: string(rune('a' + i)), Kind: netlist.Flexible,
			Area: 40 + 10*float64(i%3), MinAspect: 0.4, MaxAspect: 2.5,
		})
	}
	for i := 0; i < b.N; i++ {
		r, err := core.Floorplan(d, core.Config{GroupSize: 3, MILP: quickMILP(), Linearize: mode, PostOptimize: true})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.Utilization(), "util%")
	}
}

func BenchmarkAblationLinearizeSecant(b *testing.B)  { benchLinearization(b, mipmodel.Secant) }
func BenchmarkAblationLinearizeTangent(b *testing.B) { benchLinearization(b, mipmodel.Tangent) }

// Presolve ablation on the 9-module flexible design: tightened big-M
// coefficients plus the model/bound presolve against the textbook blanket
// formulation. Workers is pinned to 1 so the node counts are
// deterministic and comparable across runs; steps solve to optimality
// (node budget far above what either variant needs), so the heights of
// the two variants must agree.
func benchPresolve(b *testing.B, off bool) {
	d := &netlist.Design{Name: "flex"}
	for i := 0; i < 9; i++ {
		d.Modules = append(d.Modules, netlist.Module{
			Name: string(rune('a' + i)), Kind: netlist.Flexible,
			Area: 40 + 10*float64(i%3), MinAspect: 0.4, MaxAspect: 2.5,
		})
	}
	cfg := core.Config{
		GroupSize:  3,
		MILP:       milp.Options{MaxNodes: 50000, TimeLimit: 30 * time.Second},
		Workers:    1,
		NoPresolve: off,
	}
	for i := 0; i < b.N; i++ {
		r, err := core.Floorplan(d, cfg)
		if err != nil {
			b.Fatal(err)
		}
		nodes := 0
		for _, s := range r.Steps {
			nodes += s.Nodes
		}
		b.ReportMetric(float64(nodes), "nodes")
		b.ReportMetric(r.Height, "height")
	}
}

func BenchmarkPresolveOn(b *testing.B)  { benchPresolve(b, false) }
func BenchmarkPresolveOff(b *testing.B) { benchPresolve(b, true) }

// --- Portfolio race (DESIGN.md section 13) --------------------------------

// flex9Bench is the 9-module all-flexible presolve/linearize instance,
// reused as the portfolio acceptance design.
func flex9Bench() *netlist.Design {
	d := &netlist.Design{Name: "flex"}
	for i := 0; i < 9; i++ {
		d.Modules = append(d.Modules, netlist.Module{
			Name: string(rune('a' + i)), Kind: netlist.Flexible,
			Area: 40 + 10*float64(i%3), MinAspect: 0.4, MaxAspect: 2.5,
		})
	}
	return d
}

func benchPortfolio(b *testing.B, backends []string) {
	d := flex9Bench()
	cfg := core.Config{
		GroupSize: 3,
		MILP:      milp.Options{MaxNodes: 50000, TimeLimit: 30 * time.Second},
		Workers:   1,
	}
	for i := 0; i < b.N; i++ {
		res, err := portfolio.Solve(context.Background(), d, cfg, portfolio.Options{
			Seed: int64(i + 1), Backends: backends,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.TTFF.Microseconds())/1000, "portfolio_ttff_ms")
		b.ReportMetric(res.Height, "height")
		for _, bk := range res.Backends {
			if bk.Name == "milp" {
				// Racing node count; compare with BenchmarkPresolveOn's cold
				// solve of the same design to see the incumbent pruning.
				b.ReportMetric(float64(bk.Nodes), "nodes")
			}
		}
	}
}

// The full race versus an anneal-alone control: the acceptance criterion
// is that the race reaches first-feasible no later than anneal by itself
// (the heuristics run unchanged inside the race) while finishing at the
// milp-alone optimal height.
func BenchmarkPortfolioRaceFlex9(b *testing.B)        { benchPortfolio(b, nil) }
func BenchmarkPortfolioAnnealAloneFlex9(b *testing.B) { benchPortfolio(b, []string{"anneal"}) }

// Exact (Section 2.3 single MILP) versus successive augmentation on a
// small design: quantifies the suboptimality of the greedy decomposition.
func benchExactVsAug(b *testing.B, exact bool) {
	d := netlist.Random(6, 66)
	for i := 0; i < b.N; i++ {
		var r *core.Result
		var err error
		if exact {
			r, err = core.FloorplanExact(d, core.Config{ChipWidth: 50, MILP: quickMILP()})
		} else {
			r, err = core.Floorplan(d, core.Config{ChipWidth: 50, GroupSize: 2, MILP: quickMILP()})
		}
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Height, "height")
	}
}

func BenchmarkAblationExact(b *testing.B)        { benchExactVsAug(b, true) }
func BenchmarkAblationAugmentation(b *testing.B) { benchExactVsAug(b, false) }

// Scaling extension beyond the paper's Table 1: the 49-module synthetic
// ami49 stand-in.
func BenchmarkExtensionAMI49(b *testing.B) { benchFloorplanSize(b, netlist.AMI49()) }

// Warm-started dual simplex vs cold two-phase primal in branch and bound
// (same fixed subproblem as the branching ablation).
func benchWarmStart(b *testing.B, warm bool) {
	d := netlist.Random(12, 99)
	spec := &mipmodel.Spec{
		ChipWidth: 80,
		Obstacles: []geom.Rect{
			geom.NewRect(0, 0, 30, 20), geom.NewRect(30, 0, 50, 12), geom.NewRect(30, 12, 20, 9),
		},
	}
	for i := 0; i < 4; i++ {
		spec.New = append(spec.New, mipmodel.NewModule{Index: i, Mod: &d.Modules[i]})
	}
	built, err := mipmodel.Build(spec)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res := milp.Solve(built.Model, milp.Options{ColdStart: !warm, MaxNodes: 50000})
		if res.X == nil {
			b.Fatal("no solution")
		}
		b.ReportMetric(float64(res.LPIters), "lpiters")
		if warm {
			b.ReportMetric(float64(res.DualPivots), "dualpivots")
			b.ReportMetric(float64(res.Refactorizations), "refactors")
		}
	}
}

func BenchmarkAblationWarmStartOn(b *testing.B)  { benchWarmStart(b, true) }
func BenchmarkAblationWarmStartOff(b *testing.B) { benchWarmStart(b, false) }

// --- Substrate micro-benchmarks -------------------------------------------

func BenchmarkLPSolveMedium(b *testing.B) {
	// A representative LP: 40 vars, 60 rows.
	build := func() *lp.Problem {
		p := lp.NewProblem()
		vars := make([]lp.VarID, 40)
		for i := range vars {
			vars[i] = p.AddVariable("v", 0, 10, float64(i%7)-3)
		}
		for r := 0; r < 60; r++ {
			var terms []lp.Term
			for j := 0; j < 40; j += (r % 5) + 1 {
				terms = append(terms, lp.Term{Var: vars[j], Coef: float64((r+j)%9) - 4})
			}
			op := lp.LE
			if r%3 == 0 {
				op = lp.GE
			}
			p.AddConstraint("c", terms, op, float64(r%11)-2)
		}
		return p
	}
	p := build()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMILPKnapsack(b *testing.B) {
	p := lp.NewProblem()
	p.SetMaximize(true)
	m := milp.NewModel(p)
	var terms []lp.Term
	for i := 0; i < 16; i++ {
		v := m.AddBinary("b", float64(3+i*7%13))
		terms = append(terms, lp.Term{Var: v, Coef: float64(2 + i*5%11)})
	}
	p.AddConstraint("cap", terms, lp.LE, 30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := milp.Solve(m, milp.Options{})
		if res.Status != milp.StatusOptimal {
			b.Fatal(res.Status)
		}
	}
}

func BenchmarkAnnealAMI33(b *testing.B) {
	d := netlist.AMI33()
	for i := 0; i < b.N; i++ {
		r, err := anneal.Floorplan(d, anneal.Config{Seed: 1, MovesPerTemp: 60})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*d.TotalArea()/r.ChipArea(), "util%")
	}
}

func BenchmarkRouteAMI33(b *testing.B) {
	d := netlist.AMI33()
	fp, err := core.Floorplan(d, core.Config{GroupSize: 3, MILP: quickMILP()})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rr, err := route.Route(fp, route.Config{Algorithm: route.WeightedShortestPath})
		if err != nil {
			b.Fatal(err)
		}
		if rr.Wirelength <= 0 {
			b.Fatal("no wirelength")
		}
	}
}
