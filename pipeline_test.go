// Integration tests: the full pipeline (floorplan -> verify -> route ->
// render -> serialize) across designs, configurations and seeds.
package afp_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"afp/internal/anneal"
	"afp/internal/core"
	"afp/internal/milp"
	"afp/internal/mipmodel"
	"afp/internal/netlist"
	"afp/internal/render"
	"afp/internal/route"
)

func fastMILP() milp.Options {
	return milp.Options{MaxNodes: 400, TimeLimit: 2 * time.Second}
}

func TestPipelineAcrossConfigurations(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline integration in -short mode")
	}
	cases := []struct {
		name string
		d    *netlist.Design
		cfg  core.Config
	}{
		{"plain", netlist.Random(8, 1), core.Config{GroupSize: 3, MILP: fastMILP()}},
		{"post-optimized", netlist.Random(8, 2), core.Config{GroupSize: 3, PostOptimize: true, AdjustIterations: 2, MILP: fastMILP()}},
		{"envelopes", netlist.Random(8, 3), core.Config{GroupSize: 3, Envelopes: true, PitchH: 0.2, PitchV: 0.2, MILP: fastMILP()}},
		{"wire-objective", netlist.Random(8, 4), core.Config{GroupSize: 3, Objective: mipmodel.AreaWire, WireWeight: 0.03, MILP: fastMILP()}},
		{"overlapping-covers", netlist.Random(8, 5), core.Config{GroupSize: 3, OverlappingCovers: true, MILP: fastMILP()}},
		{"cold-start", netlist.Random(8, 6), core.Config{GroupSize: 3, MILP: milp.Options{MaxNodes: 400, TimeLimit: 2 * time.Second, ColdStart: true}}},
		{"tangent", netlist.Random(8, 7), core.Config{GroupSize: 3, Linearize: mipmodel.Tangent, PostOptimize: true, MILP: fastMILP()}},
		{"critical", withCritical(netlist.Random(8, 8)), core.Config{GroupSize: 3, CriticalMaxLen: 30, MILP: fastMILP()}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			fp, err := core.Floorplan(tc.d, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Legality. The tangent mode may produce envelope-vs-module
			// mismatches by design; everything else must be fully legal.
			viol := fp.Verify()
			for _, v := range viol {
				if tc.name == "tangent" && v.Kind == "envelope" {
					continue
				}
				t.Errorf("violation: %v", v)
			}

			// Route.
			rt, err := route.Route(fp, route.Config{Algorithm: route.WeightedShortestPath})
			if err != nil {
				t.Fatal(err)
			}
			if rt.Wirelength <= 0 && len(tc.d.Nets) > 0 {
				t.Error("no wirelength for a netted design")
			}
			if rt.FinalArea() < fp.ChipArea()-1e-6 {
				t.Errorf("final area %v below placed %v", rt.FinalArea(), fp.ChipArea())
			}

			// Render.
			var svg bytes.Buffer
			if err := render.SVGWithRoutes(&svg, fp, rt); err != nil {
				t.Fatal(err)
			}
			if !strings.HasPrefix(svg.String(), "<svg") {
				t.Error("bad SVG output")
			}
			if a := render.ASCII(fp, 40); !strings.Contains(a, "utilization") {
				t.Error("bad ASCII output")
			}

			// Serialize round trip.
			var buf bytes.Buffer
			if err := fp.SaveJSON(&buf); err != nil {
				t.Fatal(err)
			}
			loaded, err := core.LoadJSON(tc.d, &buf)
			if err != nil {
				t.Fatal(err)
			}
			if len(loaded.Placements) != len(fp.Placements) {
				t.Errorf("JSON round trip lost placements: %d != %d",
					len(loaded.Placements), len(fp.Placements))
			}
		})
	}
}

func withCritical(d *netlist.Design) *netlist.Design {
	if len(d.Nets) > 0 {
		d.Nets[0].Critical = true
	}
	return d
}

// Determinism of the whole pipeline: identical inputs produce identical
// floorplans, routes and renders.
func TestPipelineDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline integration in -short mode")
	}
	run := func() (string, error) {
		d := netlist.Random(9, 77)
		fp, err := core.Floorplan(d, core.Config{GroupSize: 3, PostOptimize: true, MILP: fastMILP()})
		if err != nil {
			return "", err
		}
		rt, err := route.Route(fp, route.Config{})
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%.6f %.6f %.6f %d", fp.ChipArea(), fp.HPWL(), rt.Wirelength, rt.Overflow), nil
	}
	a, err := run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := run()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("pipeline not deterministic:\n%s\n%s", a, b)
	}
}

// SA baseline floorplans flow through the same downstream pipeline.
func TestPipelineSABaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline integration in -short mode")
	}
	d := netlist.Random(10, 21)
	fp, err := anneal.Floorplan(d, anneal.Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if v := fp.Verify(); len(v) != 0 {
		t.Fatalf("SA floorplan illegal: %v", v)
	}
	rt, err := route.Route(fp, route.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Wirelength <= 0 {
		t.Fatal("SA floorplan unroutable")
	}
}
