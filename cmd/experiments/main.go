// Command experiments regenerates the tables and figures of the paper's
// evaluation (Section 4). See DESIGN.md for the experiment index and
// EXPERIMENTS.md for recorded results.
//
// Usage:
//
//	experiments -table all            # Tables 1-3 plus the baseline
//	experiments -table 2 -mode quick
//	experiments -figure 5 -out ./figs # writes figs/figure5.svg
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"afp/internal/bench"
	"afp/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		table   = flag.String("table", "", "table to regenerate: 1, 2, 3, baseline or all")
		figure  = flag.String("figure", "", "figure to regenerate: 1, 2, 4, 5, 6 or all")
		mode    = flag.String("mode", "full", "effort: full or quick")
		outDir  = flag.String("out", ".", "directory for SVG figure output")
		metrics = flag.String("metrics", "", "write a per-row timing/counter metrics JSON sidecar to this file")
	)
	flag.Parse()

	if *metrics != "" {
		m := new(obs.Metrics)
		bench.SetMetrics(m)
		defer func() {
			f, err := os.Create(*metrics)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments: metrics:", err)
				return
			}
			defer f.Close()
			if err := m.WriteJSON(f); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: metrics:", err)
			}
		}()
	}
	if *table == "" && *figure == "" {
		*table = "all"
		*figure = "all"
	}

	m := bench.Full
	if *mode == "quick" {
		m = bench.Quick
	}

	w := os.Stdout
	runTable := func(which string) error {
		switch which {
		case "1":
			rows, err := bench.Table1(m)
			if err != nil {
				return err
			}
			bench.WriteTable1(w, rows)
		case "2":
			rows, err := bench.Table2(m)
			if err != nil {
				return err
			}
			bench.WriteTable2(w, rows)
		case "3":
			rows, err := bench.Table3(m)
			if err != nil {
				return err
			}
			bench.WriteTable3(w, rows)
		case "baseline":
			rows, err := bench.Baseline(m)
			if err != nil {
				return err
			}
			bench.WriteBaseline(w, rows)
		default:
			return fmt.Errorf("unknown table %q", which)
		}
		fmt.Fprintln(w)
		return nil
	}
	runFigure := func(which string) error {
		switch which {
		case "1":
			bench.WriteFigure1(w, bench.Figure1(100, 0.25, 4, 13))
		case "2":
			r, err := bench.Figure2(m)
			if err != nil {
				return err
			}
			bench.WriteFigure2(w, r)
		case "4":
			bench.WriteFigure4(w, bench.Figure4())
		case "5":
			f, err := os.Create(filepath.Join(*outDir, "figure5.svg"))
			if err != nil {
				return err
			}
			defer f.Close()
			if err := bench.Figure5(w, m, f); err != nil {
				return err
			}
			fmt.Fprintf(w, "wrote %s\n", f.Name())
		case "6":
			f, err := os.Create(filepath.Join(*outDir, "figure6.svg"))
			if err != nil {
				return err
			}
			defer f.Close()
			if err := bench.Figure6(w, m, f); err != nil {
				return err
			}
			fmt.Fprintf(w, "wrote %s\n", f.Name())
		default:
			return fmt.Errorf("unknown figure %q", which)
		}
		fmt.Fprintln(w)
		return nil
	}

	tables := []string{*table}
	if *table == "all" {
		tables = []string{"1", "2", "3", "baseline"}
	} else if *table == "" {
		tables = nil
	}
	for _, t := range tables {
		if err := runTable(t); err != nil {
			return err
		}
	}
	figures := []string{*figure}
	if *figure == "all" {
		figures = []string{"1", "2", "4", "5", "6"}
	} else if *figure == "" {
		figures = nil
	}
	for _, f := range figures {
		if err := runFigure(f); err != nil {
			return err
		}
	}
	return nil
}
