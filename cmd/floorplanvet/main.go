// Command floorplanvet runs the project's custom static analyzers over
// the repository — the offline stand-in for a go/analysis multichecker.
// It loads the named packages (default ./...) with full type
// information, applies every analyzer, prints one line per finding and
// exits non-zero when any finding survives its //vet:allow
// suppressions. See DESIGN.md section 11 for the rules enforced.
//
// Usage:
//
//	floorplanvet [packages]
package main

import (
	"flag"
	"fmt"
	"os"

	"afp/internal/analysis"
	"afp/internal/obs"
)

func main() {
	os.Exit(run())
}

func run() int {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: floorplanvet [packages]")
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := analysis.Load(analysis.LoadConfig{}, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "floorplanvet:", err)
		return 2
	}
	broken := false
	for _, p := range pkgs {
		for _, te := range p.TypeErrors {
			fmt.Fprintf(os.Stderr, "floorplanvet: %s: %v\n", p.Path, te)
			broken = true
		}
	}
	if broken {
		return 2
	}

	analyzers := []*analysis.Analyzer{
		analysis.CtxSolve,
		analysis.TolEq,
		analysis.NewObsEvent(obs.Schema, obs.SpanNames, obs.HistogramNames),
		analysis.Locked,
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "floorplanvet:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Println(d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "floorplanvet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
