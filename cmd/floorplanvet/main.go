// Command floorplanvet runs the project's custom static analyzers over
// the repository — the offline stand-in for a go/analysis multichecker.
// It loads the named packages (default ./...) with full type
// information, applies every analyzer, prints one line per finding and
// exits non-zero when any finding survives its //vet:allow
// suppressions. See DESIGN.md sections 11 and 15 for the rules
// enforced.
//
// Beyond per-package findings, the run accumulates the cross-package
// lock-acquisition graph (the lockorder analyzer). With -lockgraph the
// graph is written to the named file; otherwise it is compared against
// the committed golden dump so any new lock ordering is a reviewed
// diff — regenerate with `make lockgraph`.
//
// Usage:
//
//	floorplanvet [-json] [-lockgraph file] [-golden file] [packages]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"afp/internal/analysis"
	"afp/internal/obs"
)

// defaultGolden is where the blessed lock-order graph lives when the
// tool runs from the repository root (make lint / make ci). When the
// file does not exist — fixture trees, other working directories — the
// comparison is skipped.
const defaultGolden = "internal/analysis/testdata/lockorder.golden"

func main() {
	os.Exit(run())
}

func run() int {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	lockgraph := flag.String("lockgraph", "", "write the lock-order graph dump to this file (regenerates the golden)")
	golden := flag.String("golden", defaultGolden, "golden lock-order graph to compare against (skipped when absent, unless set explicitly)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: floorplanvet [-json] [-lockgraph file] [-golden file] [packages]")
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := analysis.Load(analysis.LoadConfig{}, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "floorplanvet:", err)
		return 2
	}
	broken := false
	for _, p := range pkgs {
		for _, te := range p.TypeErrors {
			fmt.Fprintf(os.Stderr, "floorplanvet: %s: %v\n", p.Path, te)
			broken = true
		}
	}
	if broken {
		return 2
	}

	lockOrder := analysis.NewLockOrder()
	analyzers := []*analysis.Analyzer{
		analysis.CtxSolve,
		analysis.TolEq,
		analysis.NewObsEvent(obs.Schema, obs.SpanNames, obs.HistogramNames),
		analysis.Locked,
		analysis.GuardedBy,
		lockOrder.Analyzer(),
		analysis.GoroLeak,
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "floorplanvet:", err)
		return 2
	}

	if *lockgraph != "" {
		if err := os.WriteFile(*lockgraph, []byte(lockOrder.Dump()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "floorplanvet:", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "floorplanvet: lock-order graph written to %s\n", *lockgraph)
	}

	drift := 0
	if *lockgraph == "" {
		drift = compareGolden(*golden, lockOrder.Dump(), explicitFlag("golden"))
		if drift < 0 {
			return 2
		}
	}

	if *jsonOut {
		if err := writeJSON(os.Stdout, diags); err != nil {
			fmt.Fprintln(os.Stderr, "floorplanvet:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(d.String())
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "floorplanvet: %d finding(s)\n", len(diags))
	}
	if len(diags) > 0 || drift > 0 {
		return 1
	}
	return 0
}

// explicitFlag reports whether the named flag was set on the command
// line (as opposed to resting at its default).
func explicitFlag(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// compareGolden diffs the accumulated lock-order dump against the
// committed golden file, printing one line per added or removed edge.
// Returns the number of drifted edges, or -1 on a hard error (an
// explicitly named golden that cannot be read).
func compareGolden(path, dump string, explicit bool) int {
	want, err := os.ReadFile(path)
	if err != nil {
		if explicit {
			fmt.Fprintf(os.Stderr, "floorplanvet: %v\n", err)
			return -1
		}
		return 0 // default golden absent: not running from the repo root
	}
	if string(want) == dump {
		return 0
	}
	wantSet := edgeSet(string(want))
	gotSet := edgeSet(dump)
	var lines []string
	for e := range gotSet {
		if !wantSet[e] {
			lines = append(lines, fmt.Sprintf("floorplanvet: lock-order drift: new edge %q", e))
		}
	}
	for e := range wantSet {
		if !gotSet[e] {
			lines = append(lines, fmt.Sprintf("floorplanvet: lock-order drift: removed edge %q", e))
		}
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Fprintln(os.Stderr, l)
	}
	n := len(lines)
	if n == 0 {
		n = 1 // byte-level difference only (ordering/whitespace); still drift
	}
	fmt.Fprintf(os.Stderr, "floorplanvet: lock-order graph drifted from %s; review and run `make lockgraph` to regenerate\n", path)
	return n
}

func edgeSet(dump string) map[string]bool {
	set := map[string]bool{}
	for _, line := range strings.Split(dump, "\n") {
		if line = strings.TrimSpace(line); line != "" {
			set[line] = true
		}
	}
	return set
}

// jsonFinding is the -json wire shape, one object per diagnostic.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func writeJSON(w *os.File, diags []analysis.Diagnostic) error {
	findings := make([]jsonFinding, 0, len(diags))
	for _, d := range diags {
		findings = append(findings, jsonFinding{
			File:     d.Position.Filename,
			Line:     d.Position.Line,
			Column:   d.Position.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(findings)
}
