// Command mipsolve is a standalone mixed integer linear program solver
// built on the lp/milp packages — the LINDO stand-in, exposed directly.
//
// Input format (stdin or -input FILE), one directive per line:
//
//	# comment
//	maximize                     (default is minimize)
//	var  NAME LO HI COST         continuous variable, HI may be "inf"
//	int  NAME LO HI COST         integer variable
//	bin  NAME COST               binary variable
//	con  NAME OP RHS COEF VAR [COEF VAR ...]   with OP one of <= >= ==
//
// Example (a knapsack):
//
//	maximize
//	bin a 10
//	bin b 13
//	con cap <= 6  3 a  4 b
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"afp/internal/lp"
	"afp/internal/milp"
	"afp/internal/mipmodel/modelcheck"
	"afp/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mipsolve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		input     = flag.String("input", "", "model file; empty reads stdin")
		maxNodes  = flag.Int("nodes", 200000, "branch-and-bound node limit")
		workers   = flag.Int("workers", 0, "branch-and-bound workers (0 = one per CPU, 1 = serial)")
		timeout   = flag.Duration("timeout", time.Minute, "solve time limit")
		presolve  = flag.Bool("presolve", true, "propagate variable bounds through the rows before branch-and-bound")
		traceOut  = flag.String("trace", "", "write a JSONL event trace (lp.solve, node.*) to this file")
		verbose   = flag.Bool("verbose", false, "log branch-and-bound progress to stderr")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		audit     = flag.Bool("audit", false, "statically audit the model (dangling variables, non-finite data) before solving; findings abort the solve")
	)
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "mipsolve: pprof:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "pprof listening on http://%s/debug/pprof/\n", *pprofAddr)
	}

	var sinks []obs.Sink
	closeTrace := func() error { return nil }
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		w := obs.NewJSONLWriter(f)
		sinks = append(sinks, w)
		closeTrace = func() error {
			if err := w.Err(); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		}
	}
	if *verbose {
		sinks = append(sinks, obs.NewLogSink(os.Stderr))
	}
	observer := obs.New(obs.Multi(sinks...))

	var r io.Reader = os.Stdin
	if *input != "" {
		f, err := os.Open(*input)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	m, names, err := parseModel(r)
	if err != nil {
		return err
	}
	if *audit {
		findings := modelcheck.AuditModel(m)
		for _, f := range findings {
			fmt.Fprintln(os.Stderr, "mipsolve: audit:", f)
		}
		if len(findings) > 0 {
			return fmt.Errorf("audit: %d finding(s)", len(findings))
		}
		fmt.Fprintln(os.Stderr, "mipsolve: audit: model is clean")
	}

	// The deadline and Ctrl-C both flow through the context, enforced
	// down in the simplex pivot loop; an interrupted search still reports
	// its best incumbent and proven bound below.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	opts := milp.Options{MaxNodes: *maxNodes, Workers: *workers, Presolve: *presolve, Obs: observer}
	opts.LP.Obs = observer
	res := milp.SolveCtx(ctx, m, opts)
	if err := ctx.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "mipsolve: search stopped early:", err)
	}
	fmt.Println(res.String())
	if err := closeTrace(); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if res.X == nil {
		return nil
	}
	for i, name := range names {
		fmt.Printf("  %s = %g\n", name, res.X[i])
	}
	return nil
}

func parseModel(r io.Reader) (*milp.Model, []string, error) {
	p := lp.NewProblem()
	m := milp.NewModel(p)
	vars := map[string]lp.VarID{}
	var names []string

	addVar := func(name string, lo, hi, cost float64, integer bool) error {
		if _, dup := vars[name]; dup {
			return fmt.Errorf("duplicate variable %q", name)
		}
		v := p.AddVariable(name, lo, hi, cost)
		if integer {
			m.MarkInteger(v)
		}
		vars[name] = v
		names = append(names, name)
		return nil
	}

	parseF := func(s string) (float64, error) {
		if s == "inf" || s == "+inf" {
			return math.Inf(1), nil
		}
		return strconv.ParseFloat(s, 64)
	}

	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		fail := func(msg string) error { return fmt.Errorf("line %d: %s", lineNo, msg) }
		switch f[0] {
		case "maximize":
			p.SetMaximize(true)
		case "minimize":
			p.SetMaximize(false)
		case "var", "int":
			if len(f) != 5 {
				return nil, nil, fail(f[0] + " needs NAME LO HI COST")
			}
			lo, err1 := parseF(f[2])
			hi, err2 := parseF(f[3])
			cost, err3 := parseF(f[4])
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, nil, fail("bad number")
			}
			if err := addVar(f[1], lo, hi, cost, f[0] == "int"); err != nil {
				return nil, nil, fail(err.Error())
			}
		case "bin":
			if len(f) != 3 {
				return nil, nil, fail("bin needs NAME COST")
			}
			cost, err := parseF(f[2])
			if err != nil {
				return nil, nil, fail("bad cost")
			}
			if err := addVar(f[1], 0, 1, cost, true); err != nil {
				return nil, nil, fail(err.Error())
			}
		case "con":
			if len(f) < 6 || (len(f)-4)%2 != 0 {
				return nil, nil, fail("con needs NAME OP RHS then COEF VAR pairs")
			}
			var op lp.Op
			switch f[2] {
			case "<=":
				op = lp.LE
			case ">=":
				op = lp.GE
			case "==", "=":
				op = lp.EQ
			default:
				return nil, nil, fail("bad operator " + f[2])
			}
			rhs, err := parseF(f[3])
			if err != nil {
				return nil, nil, fail("bad rhs")
			}
			var terms []lp.Term
			for i := 4; i < len(f); i += 2 {
				coef, err := parseF(f[i])
				if err != nil {
					return nil, nil, fail("bad coefficient " + f[i])
				}
				v, ok := vars[f[i+1]]
				if !ok {
					return nil, nil, fail("unknown variable " + f[i+1])
				}
				terms = append(terms, lp.Term{Var: v, Coef: coef})
			}
			p.AddConstraint(f[1], terms, op, rhs)
		default:
			return nil, nil, fail("unknown directive " + f[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if len(names) == 0 {
		return nil, nil, fmt.Errorf("model has no variables")
	}
	return m, names, nil
}
