package main

import (
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: afp
BenchmarkTable1Size15-8              	       2	 500000000 ns/op	      1024 B/op	      10 allocs/op	        85.00 util%	     12000 lpiters
BenchmarkTable1Size15Workers1-8      	       2	 600000000 ns/op	        84.00 util%	     11000 lpiters
BenchmarkTable1Size15Workers4-8      	       2	 300000000 ns/op	        84.50 util%	     13000 lpiters
BenchmarkTable3BareShortest          	       1	  90000000 ns/op	    123456 finalArea	      789 wirelen
PASS
ok  	afp	12.3s
`

func TestParse(t *testing.T) {
	snap, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(snap.Benchmarks))
	}
	b := snap.Benchmarks[0]
	if b.Name != "Table1Size15" || b.Procs != 8 || b.Iterations != 2 {
		t.Fatalf("first bench = %+v", b)
	}
	for unit, want := range map[string]float64{
		"ns/op": 5e8, "B/op": 1024, "allocs/op": 10, "util%": 85, "lpiters": 12000,
	} {
		if got := b.Metrics[unit]; got != want {
			t.Errorf("metric %q = %v, want %v", unit, got, want)
		}
	}
	// No -procs suffix is accepted.
	if b3 := snap.Benchmarks[3]; b3.Name != "Table3BareShortest" || b3.Procs != 0 {
		t.Fatalf("bench without procs suffix = %+v", b3)
	}
	// Workers4 vs Workers1 speedup: 600ms / 300ms = 2x.
	got, ok := snap.Speedups["Table1Size15Workers4"]
	if !ok || math.Abs(got-2) > 1e-9 {
		t.Fatalf("speedup = %v (present %v), want 2", got, ok)
	}
	if _, ok := snap.Speedups["Table1Size15"]; ok {
		t.Error("non-workers bench acquired a speedup entry")
	}
}

func TestParseEmpty(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\nok afp 1s\n")); err == nil {
		t.Fatal("expected error on input without benchmarks")
	}
}

func TestRunDiff(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	oldPath := write("BENCH_old.json", `{
		"date": "2026-08-01",
		"benchmarks": [
			{"name": "PresolveOn", "iterations": 1, "metrics": {"ns/op": 200, "nodes": 800, "legacy": 4}},
			{"name": "Gone", "iterations": 1, "metrics": {"ns/op": 5}}
		]
	}`)
	newPath := write("BENCH_new.json", `{
		"date": "2026-08-05",
		"benchmarks": [
			{"name": "PresolveOn", "iterations": 1, "metrics": {"ns/op": 100, "nodes": 200, "dualpivots": 42}},
			{"name": "Fresh", "iterations": 1, "metrics": {"ns/op": 7}}
		]
	}`)
	var buf strings.Builder
	if err := runDiff(&buf, oldPath, newPath, 0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"2026-08-01", "2026-08-05",
		"-50.0%",   // ns/op 200 -> 100
		"-75.0%",   // nodes 800 -> 200
		"added",    // Fresh
		"removed",  // Gone
		"new-only", // dualpivots only in the new snapshot
		"old-only", // legacy only in the old snapshot
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("diff output missing %q:\n%s", want, out)
		}
	}
	if err := runDiff(io.Discard, oldPath, filepath.Join(dir, "missing.json"), 0); err == nil {
		t.Fatal("expected error for a missing snapshot file")
	}
}

func TestRunDiffGate(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	oldPath := write("BENCH_old.json", `{
		"date": "2026-08-01",
		"benchmarks": [
			{"name": "Table1Size15", "iterations": 1, "metrics": {"ns/op": 100, "B/op": 1000}},
			{"name": "Table1Size20", "iterations": 1, "metrics": {"ns/op": 100, "B/op": 1000}},
			{"name": "Other", "iterations": 1, "metrics": {"B/op": 10}}
		]
	}`)
	newPath := write("BENCH_new.json", `{
		"date": "2026-08-05",
		"benchmarks": [
			{"name": "Table1Size15", "iterations": 1, "metrics": {"ns/op": 90, "B/op": 1050}},
			{"name": "Table1Size20", "iterations": 1, "metrics": {"ns/op": 90, "B/op": 1300}},
			{"name": "Other", "iterations": 1, "metrics": {"B/op": 500}}
		]
	}`)
	// Size20's B/op grew 30% — over a 10% gate; Size15's 5% is within it,
	// and Other is not a Table1 benchmark so its 50x growth is ignored.
	err := runDiff(io.Discard, oldPath, newPath, 10)
	if err == nil {
		t.Fatal("expected gate failure")
	}
	if !strings.Contains(err.Error(), "Table1Size20") || strings.Contains(err.Error(), "Table1Size15") {
		t.Fatalf("gate error = %v, want Size20 only", err)
	}
	if strings.Contains(err.Error(), "Other") {
		t.Fatalf("gate error includes non-Table1 benchmark: %v", err)
	}
	// A generous gate passes.
	if err := runDiff(io.Discard, oldPath, newPath, 50); err != nil {
		t.Fatalf("50%% gate failed: %v", err)
	}
	// gate 0 disables.
	if err := runDiff(io.Discard, oldPath, newPath, 0); err != nil {
		t.Fatalf("disabled gate failed: %v", err)
	}
}
