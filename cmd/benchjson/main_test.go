package main

import (
	"math"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: afp
BenchmarkTable1Size15-8              	       2	 500000000 ns/op	      1024 B/op	      10 allocs/op	        85.00 util%	     12000 lpiters
BenchmarkTable1Size15Workers1-8      	       2	 600000000 ns/op	        84.00 util%	     11000 lpiters
BenchmarkTable1Size15Workers4-8      	       2	 300000000 ns/op	        84.50 util%	     13000 lpiters
BenchmarkTable3BareShortest          	       1	  90000000 ns/op	    123456 finalArea	      789 wirelen
PASS
ok  	afp	12.3s
`

func TestParse(t *testing.T) {
	snap, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(snap.Benchmarks))
	}
	b := snap.Benchmarks[0]
	if b.Name != "Table1Size15" || b.Procs != 8 || b.Iterations != 2 {
		t.Fatalf("first bench = %+v", b)
	}
	for unit, want := range map[string]float64{
		"ns/op": 5e8, "B/op": 1024, "allocs/op": 10, "util%": 85, "lpiters": 12000,
	} {
		if got := b.Metrics[unit]; got != want {
			t.Errorf("metric %q = %v, want %v", unit, got, want)
		}
	}
	// No -procs suffix is accepted.
	if b3 := snap.Benchmarks[3]; b3.Name != "Table3BareShortest" || b3.Procs != 0 {
		t.Fatalf("bench without procs suffix = %+v", b3)
	}
	// Workers4 vs Workers1 speedup: 600ms / 300ms = 2x.
	got, ok := snap.Speedups["Table1Size15Workers4"]
	if !ok || math.Abs(got-2) > 1e-9 {
		t.Fatalf("speedup = %v (present %v), want 2", got, ok)
	}
	if _, ok := snap.Speedups["Table1Size15"]; ok {
		t.Error("non-workers bench acquired a speedup entry")
	}
}

func TestParseEmpty(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\nok afp 1s\n")); err == nil {
		t.Fatal("expected error on input without benchmarks")
	}
}
