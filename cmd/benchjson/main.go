// Command benchjson converts `go test -bench` text output (stdin) into a
// machine-readable JSON snapshot, so the repository can commit dated
// BENCH_<utc-date>.json files and track the performance trajectory. Every
// reported metric survives — ns/op, B/op, allocs/op and custom
// b.ReportMetric units like util% and lpiters — and benchmarks named
// `<base>Workers<N>` are paired with their `<base>Workers1` sibling to
// derive wall-clock speedups. `make bench` wires it up.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix of the benchmark name (the "-8" of
	// "BenchmarkFoo-8"); 0 when absent.
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Snapshot is the whole file.
type Snapshot struct {
	Date       string      `json:"date"`
	GoVersion  string      `json:"go"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	CPUs       int         `json:"cpus"`
	Benchmarks []Benchmark `json:"benchmarks"`
	// Speedups maps a WorkersN benchmark to its ns/op ratio versus the
	// matching Workers1 run: >1 means the parallel search is faster.
	Speedups map[string]float64 `json:"speedups,omitempty"`
}

var benchLine = regexp.MustCompile(`^Benchmark(\S+?)(-(\d+))?\s+(\d+)\s+(.*)$`)

func main() {
	out := flag.String("out", "", "output file (empty = stdout)")
	date := flag.String("date", "", "snapshot date (default: today, UTC)")
	flag.Parse()

	snap, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	snap.Date = *date
	if snap.Date == "" {
		snap.Date = time.Now().UTC().Format("2006-01-02")
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(snap.Benchmarks), *out)
	}
}

// parse consumes `go test -bench` output and keeps every metric of every
// Benchmark line. Non-benchmark lines (PASS, ok, goos headers) are
// skipped, so piping the whole test output through is fine.
func parse(r io.Reader) (*Snapshot, error) {
	snap := &Snapshot{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[4], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("line %q: %v", sc.Text(), err)
		}
		b := Benchmark{Name: m[1], Iterations: iters, Metrics: map[string]float64{}}
		if m[3] != "" {
			b.Procs, _ = strconv.Atoi(m[3])
		}
		fields := strings.Fields(m[5])
		if len(fields)%2 != 0 {
			return nil, fmt.Errorf("line %q: odd metric fields", sc.Text())
		}
		for i := 0; i < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %q: metric %q: %v", sc.Text(), fields[i+1], err)
			}
			b.Metrics[fields[i+1]] = v
		}
		snap.Benchmarks = append(snap.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(snap.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines on stdin")
	}
	snap.Speedups = speedups(snap.Benchmarks)
	return snap, nil
}

var workersName = regexp.MustCompile(`^(.*)Workers(\d+)$`)

// speedups pairs every <base>WorkersN benchmark (N > 1) with its
// <base>Workers1 sibling by ns/op.
func speedups(bs []Benchmark) map[string]float64 {
	nsop := make(map[string]float64, len(bs))
	for _, b := range bs {
		nsop[b.Name] = b.Metrics["ns/op"]
	}
	out := map[string]float64{}
	for _, b := range bs {
		m := workersName.FindStringSubmatch(b.Name)
		if m == nil || m[2] == "1" {
			continue
		}
		serial, ok := nsop[m[1]+"Workers1"]
		par := b.Metrics["ns/op"]
		if !ok || serial <= 0 || par <= 0 {
			continue
		}
		out[b.Name] = serial / par
	}
	return out
}
