// Command benchjson converts `go test -bench` text output (stdin) into a
// machine-readable JSON snapshot, so the repository can commit dated
// BENCH_<utc-date>.json files and track the performance trajectory. Every
// reported metric survives — ns/op, B/op, allocs/op and custom
// b.ReportMetric units like util% and lpiters — and benchmarks named
// `<base>Workers<N>` are paired with their `<base>Workers1` sibling to
// derive wall-clock speedups. `make bench` wires it up.
//
// With -diff OLD.json NEW.json it instead compares two snapshots,
// printing the relative change of every shared metric plus any
// benchmarks added or removed — metrics present on only one side are
// called out as old-only/new-only rather than silently skipped;
// `make benchcmp` diffs the two most recent snapshots. Adding
// -gate <pct> turns the diff into a regression gate: the exit status is
// nonzero when any Table1* benchmark's B/op grew by more than pct
// percent, so allocation regressions on the paper-reproduction hot path
// fail CI instead of drifting in.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix of the benchmark name (the "-8" of
	// "BenchmarkFoo-8"); 0 when absent.
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Snapshot is the whole file.
type Snapshot struct {
	Date       string      `json:"date"`
	GoVersion  string      `json:"go"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	CPUs       int         `json:"cpus"`
	Benchmarks []Benchmark `json:"benchmarks"`
	// Speedups maps a WorkersN benchmark to its ns/op ratio versus the
	// matching Workers1 run: >1 means the parallel search is faster.
	Speedups map[string]float64 `json:"speedups,omitempty"`
	// PortfolioTTFF collects the portfolio_ttff_ms metric (time to first
	// verified feasible incumbent of a portfolio race, in milliseconds)
	// across benchmarks, so snapshots track racing latency as a named
	// series beside the per-benchmark metrics.
	PortfolioTTFF map[string]float64 `json:"portfolio_ttff_ms,omitempty"`
}

var benchLine = regexp.MustCompile(`^Benchmark(\S+?)(-(\d+))?\s+(\d+)\s+(.*)$`)

func main() {
	out := flag.String("out", "", "output file (empty = stdout)")
	date := flag.String("date", "", "snapshot date (default: today, UTC)")
	diff := flag.Bool("diff", false, "compare two snapshot files: benchjson -diff OLD.json NEW.json")
	gate := flag.Float64("gate", 0, "with -diff: fail when a Table1* benchmark's B/op regresses by more than this percentage (0 disables)")
	flag.Parse()

	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -diff needs exactly two snapshot files")
			os.Exit(1)
		}
		if err := runDiff(os.Stdout, flag.Arg(0), flag.Arg(1), *gate); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}

	snap, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	snap.Date = *date
	if snap.Date == "" {
		snap.Date = time.Now().UTC().Format("2006-01-02")
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(snap.Benchmarks), *out)
	}
}

// parse consumes `go test -bench` output and keeps every metric of every
// Benchmark line. Non-benchmark lines (PASS, ok, goos headers) are
// skipped, so piping the whole test output through is fine.
func parse(r io.Reader) (*Snapshot, error) {
	snap := &Snapshot{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[4], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("line %q: %v", sc.Text(), err)
		}
		b := Benchmark{Name: m[1], Iterations: iters, Metrics: map[string]float64{}}
		if m[3] != "" {
			b.Procs, _ = strconv.Atoi(m[3])
		}
		fields := strings.Fields(m[5])
		if len(fields)%2 != 0 {
			return nil, fmt.Errorf("line %q: odd metric fields", sc.Text())
		}
		for i := 0; i < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %q: metric %q: %v", sc.Text(), fields[i+1], err)
			}
			b.Metrics[fields[i+1]] = v
		}
		snap.Benchmarks = append(snap.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(snap.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines on stdin")
	}
	snap.Speedups = speedups(snap.Benchmarks)
	snap.PortfolioTTFF = ttffSeries(snap.Benchmarks)
	return snap, nil
}

// ttffSeries extracts the portfolio_ttff_ms metric by benchmark name.
func ttffSeries(bs []Benchmark) map[string]float64 {
	out := map[string]float64{}
	for _, b := range bs {
		if v, ok := b.Metrics["portfolio_ttff_ms"]; ok {
			out[b.Name] = v
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

var workersName = regexp.MustCompile(`^(.*)Workers(\d+)$`)

// speedups pairs every <base>WorkersN benchmark (N > 1) with its
// <base>Workers1 sibling by ns/op.
func speedups(bs []Benchmark) map[string]float64 {
	nsop := make(map[string]float64, len(bs))
	for _, b := range bs {
		nsop[b.Name] = b.Metrics["ns/op"]
	}
	out := map[string]float64{}
	for _, b := range bs {
		m := workersName.FindStringSubmatch(b.Name)
		if m == nil || m[2] == "1" {
			continue
		}
		serial, ok := nsop[m[1]+"Workers1"]
		par := b.Metrics["ns/op"]
		if !ok || serial <= 0 || par <= 0 {
			continue
		}
		out[b.Name] = serial / par
	}
	return out
}

// loadSnapshot reads one committed BENCH_*.json file.
func loadSnapshot(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var s Snapshot
	if err := json.NewDecoder(f).Decode(&s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &s, nil
}

// runDiff prints the relative change of every metric shared by the two
// snapshots, one line per benchmark/metric pair, plus benchmarks that
// appear in only one of them. Metrics present on only one side of a
// shared benchmark are reported as old-only/new-only: a metric silently
// vanishing from the snapshot (a dropped b.ReportMetric, a renamed
// unit) should be visible in the diff, not elided. With gatePct > 0 the
// diff fails when any Table1* benchmark's B/op regressed by more than
// that percentage.
func runDiff(w io.Writer, oldPath, newPath string, gatePct float64) error {
	oldS, err := loadSnapshot(oldPath)
	if err != nil {
		return err
	}
	newS, err := loadSnapshot(newPath)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s (%s) -> %s (%s)\n", oldPath, oldS.Date, newPath, newS.Date)
	oldBy := make(map[string]Benchmark, len(oldS.Benchmarks))
	for _, b := range oldS.Benchmarks {
		oldBy[b.Name] = b
	}
	var regressions []string
	seen := make(map[string]bool, len(newS.Benchmarks))
	for _, nb := range newS.Benchmarks {
		seen[nb.Name] = true
		ob, ok := oldBy[nb.Name]
		if !ok {
			fmt.Fprintf(w, "%-40s  added\n", nb.Name)
			continue
		}
		keys := make([]string, 0, len(nb.Metrics)+len(ob.Metrics))
		for k := range nb.Metrics {
			keys = append(keys, k)
		}
		for k := range ob.Metrics {
			if _, shared := nb.Metrics[k]; !shared {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		for _, k := range keys {
			ov, inOld := ob.Metrics[k]
			nv, inNew := nb.Metrics[k]
			switch {
			case !inOld:
				fmt.Fprintf(w, "%-40s  %-10s  %12s -> %-12.4g  new-only\n", nb.Name, k, "(none)", nv)
				continue
			case !inNew:
				fmt.Fprintf(w, "%-40s  %-10s  %12.4g -> %-12s  old-only\n", nb.Name, k, ov, "(none)")
				continue
			}
			fmt.Fprintf(w, "%-40s  %-10s  %12.4g -> %-12.4g", nb.Name, k, ov, nv)
			if ov != 0 {
				pct := 100 * (nv - ov) / ov
				fmt.Fprintf(w, "  %+.1f%%", pct)
				if gatePct > 0 && k == "B/op" && strings.HasPrefix(nb.Name, "Table1") && pct > gatePct {
					regressions = append(regressions,
						fmt.Sprintf("%s B/op %+.1f%% (gate %g%%)", nb.Name, pct, gatePct))
				}
			}
			fmt.Fprintln(w)
		}
	}
	for _, ob := range oldS.Benchmarks {
		if !seen[ob.Name] {
			fmt.Fprintf(w, "%-40s  removed\n", ob.Name)
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("allocation regression gate failed: %s", strings.Join(regressions, "; "))
	}
	return nil
}
