// Command floorpland serves the floorplanner as an HTTP/JSON API (see
// internal/server): asynchronous solve jobs over a bounded worker pool,
// per-job deadlines and cancellation, an LRU result cache, live SSE
// progress streams and /metrics (JSON or Prometheus exposition by
// content negotiation).
//
// Usage:
//
//	floorpland [flags]
//
// The resolved listen address is printed on stdout once the listener is
// up ("listening on 127.0.0.1:8080"), so scripts can pass -addr :0 and
// scrape the assigned port. SIGINT/SIGTERM starts a graceful drain:
// running solves get -drain to finish (recording partial results when
// cut off), then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"afp/internal/obs"
	"afp/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "floorpland:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
		workers  = flag.Int("workers", 2, "concurrent solve workers")
		queue    = flag.Int("queue", 64, "queued-job limit (full queue rejects with 429)")
		cache    = flag.Int("cache", 128, "result-cache capacity (-1 disables)")
		maxJobs  = flag.Int("maxjobs", 1024, "retained job history")
		traceCap = flag.Int("traceevents", 10000, "per-job telemetry events retained")
		drain    = flag.Duration("drain", 30*time.Second, "graceful-shutdown grace period for running solves")
		traceOut = flag.String("trace", "", "mirror all job telemetry to this JSONL file")
		verbose  = flag.Bool("verbose", false, "log solver telemetry to stderr")
		sseHB    = flag.Duration("sse-heartbeat", 15*time.Second, "comment-frame interval keeping idle /v1/jobs/{id}/events streams alive")
	)
	flag.Parse()

	var sinks []obs.Sink
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		sinks = append(sinks, obs.NewJSONLWriter(f))
	}
	if *verbose {
		sinks = append(sinks, obs.NewLogSink(os.Stderr))
	}

	svc := server.New(server.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		CacheSize:    *cache,
		MaxJobs:      *maxJobs,
		TraceEvents:  *traceCap,
		Sink:         obs.Multi(sinks...),
		SSEHeartbeat: *sseHB,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("listening on %s\n", ln.Addr())

	httpSrv := &http.Server{Handler: svc.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way

	fmt.Printf("shutting down: draining for up to %v\n", *drain)
	grace, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Stop accepting first, then drain the solve pool.
	if err := httpSrv.Shutdown(grace); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "floorpland: http shutdown:", err)
	}
	if err := svc.Shutdown(grace); err != nil {
		fmt.Printf("drain expired; running solves were cancelled\n")
	} else {
		fmt.Printf("drained cleanly\n")
	}
	snap := svc.Metrics().Snapshot()
	fmt.Printf("served %d jobs (%g done, %g cache hits)\n",
		int(snap["jobs_submitted"]), snap["jobs_done"], snap["cache_hit"])
	return nil
}
