package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"afp/internal/obs"
)

// writeTrace records a small synthetic solve through the real observer
// so the fixture exercises the same encoder the solvers use.
func writeTrace(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	o := obs.New(obs.NewJSONLWriter(f))
	ctx, root := o.StartSpanAttrs(context.Background(), "solve", obs.SpanAttrs{Detail: "fixture"})
	stepCtx, step := o.StartSpanAttrs(ctx, "step", obs.SpanAttrs{Step: 0})
	o.Emit(obs.Event{Kind: obs.KindLPSolve, Span: obs.SpanID(stepCtx), Iters: 5, DurUS: 40})
	o.Emit(obs.Event{Kind: obs.KindNodeClose, Node: 1, Depth: 1})
	o.Emit(obs.Event{Kind: obs.KindNodeClose, Node: 2, Depth: 2})
	o.Emit(obs.Event{Kind: obs.KindProgress, Nodes: 2, Obj: 12, Bound: 10, Gap: 0.2})
	o.Emit(obs.Event{Kind: obs.KindProgress, Nodes: 4, Obj: 11, Bound: 10.5, Gap: 0.05})
	step.End()
	// A span deliberately left open: error paths and truncated traces
	// produce these, and the tree must tolerate them.
	o.StartSpan(ctx, "bb")
	root.End()
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSingleTrace(t *testing.T) {
	path := writeTrace(t)
	var sb strings.Builder
	if err := run(&sb, []string{path}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"span tree:",
		"solve (fixture)",
		"step 0",
		"(open)", // the un-ended bb span
		"[lp 1 x 40us]",
		"events by kind:",
		"node.close",
		"gap vs time (2 probes):",
		"20%",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunDiff(t *testing.T) {
	a := writeTrace(t)
	b := writeTrace(t)
	var sb strings.Builder
	if err := run(&sb, []string{"-diff", a, b}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"events by kind:", "span time by name:", "solve", "delta"} {
		if !strings.Contains(out, want) {
			t.Errorf("diff output missing %q:\n%s", want, out)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, []string{}); err == nil {
		t.Error("no args: want error")
	}
	if err := run(&sb, []string{"/does/not/exist.jsonl"}); err == nil {
		t.Error("missing file: want error")
	}
	if err := run(&sb, []string{"-diff", "only-one.jsonl"}); err == nil {
		t.Error("-diff with one file: want error")
	}
}

func TestBuildTreeParentsAndAttribution(t *testing.T) {
	events := []obs.Event{
		{Kind: obs.KindSpanStart, Span: 1, Name: "solve"},
		{Kind: obs.KindSpanStart, Span: 2, Parent: 1, Name: "step"},
		{Kind: obs.KindLPSolve, Span: 2, DurUS: 100},
		{Kind: obs.KindLPSolve, Span: 2, DurUS: 50},
		{Kind: obs.KindSpanEnd, Span: 2, Parent: 1, Name: "step", DurUS: 300},
		{Kind: obs.KindSpanEnd, Span: 1, Name: "solve", DurUS: 400},
		// Parent 99 is missing from the trace: surfaces as a root.
		{Kind: obs.KindSpanStart, Span: 3, Parent: 99, Name: "orphan"},
	}
	roots := buildTree(events)
	if len(roots) != 2 {
		t.Fatalf("roots = %d, want 2", len(roots))
	}
	solve := roots[0]
	if solve.name != "solve" || solve.durUS != 400 || len(solve.children) != 1 {
		t.Fatalf("bad solve root: %+v", solve)
	}
	step := solve.children[0]
	if step.lpCount != 2 || step.lpUS != 150 {
		t.Errorf("step lp attribution = %d solves / %dus, want 2 / 150us", step.lpCount, step.lpUS)
	}
	if roots[1].name != "orphan" || roots[1].durUS != -1 {
		t.Errorf("orphan root: %+v", roots[1])
	}
}
