// Command floorplantrace analyzes a JSONL telemetry trace recorded by
// the -trace flag of the CLIs or fetched from GET /v1/jobs/{id}/trace:
// it reconstructs the span timing tree (solve → step → bb → worker),
// tabulates per-kind event counts, derives node throughput and
// gap-vs-time convergence tables, and diffs two traces.
//
// Usage:
//
//	floorplantrace [flags] trace.jsonl
//	floorplantrace -diff old.jsonl new.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"

	"afp/internal/obs"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "floorplantrace:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("floorplantrace", flag.ContinueOnError)
	var (
		diff   = fs.Bool("diff", false, "compare two traces: floorplantrace -diff old.jsonl new.jsonl")
		slices = fs.Int("slices", 10, "time slices of the node-throughput table")
		tree   = fs.Bool("tree", true, "print the span timing tree")
		kinds  = fs.Bool("kinds", true, "print per-kind event counts")
		rate   = fs.Bool("rate", true, "print the node-throughput table")
		gap    = fs.Bool("gap", true, "print the gap-vs-time table")
		pf     = fs.Bool("portfolio", true, "print the portfolio race table (win rates, incumbents, TTFF)")
	)
	fs.SetOutput(os.Stderr)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *diff {
		if fs.NArg() != 2 {
			return fmt.Errorf("-diff needs exactly two trace files, got %d", fs.NArg())
		}
		a, err := readTrace(fs.Arg(0))
		if err != nil {
			return err
		}
		b, err := readTrace(fs.Arg(1))
		if err != nil {
			return err
		}
		printDiff(w, fs.Arg(0), a, fs.Arg(1), b)
		return nil
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("need exactly one trace file (or -diff with two), got %d", fs.NArg())
	}
	events, err := readTrace(fs.Arg(0))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "trace %s: %d events over %s\n", fs.Arg(0), len(events), fmtUS(traceSpanUS(events)))
	if *tree {
		printTree(w, events)
	}
	if *kinds {
		printKinds(w, events)
	}
	if *rate {
		printThroughput(w, events, *slices)
	}
	if *gap {
		printGap(w, events)
	}
	if *pf {
		printPortfolio(w, events)
	}
	return nil
}

// printPortfolio tabulates portfolio races: per-backend win rates from
// portfolio.win events, and the incumbent improvement timeline (who
// published which height when, time to first feasible) from
// portfolio.incumbent events. Traces without races print nothing.
func printPortfolio(w io.Writer, events []obs.Event) {
	type stat struct {
		wins       int
		incumbents int
		firsts     int
		best       float64
	}
	stats := map[string]*stat{}
	get := func(name string) *stat {
		s := stats[name]
		if s == nil {
			s = &stat{best: math.Inf(1)}
			stats[name] = s
		}
		return s
	}
	races, ttffN := 0, 0
	var ttffUS int64
	var incumbents []obs.Event
	for _, e := range events {
		switch e.Kind {
		case obs.KindPortfolioWin:
			get(e.Detail).wins++
			races++
		case obs.KindPortfolioIncumbent:
			s := get(e.Detail)
			s.incumbents++
			if e.Height < s.best {
				s.best = e.Height
			}
			if e.First {
				s.firsts++
				ttffUS += e.DurUS
				ttffN++
			}
			incumbents = append(incumbents, e)
		}
	}
	if len(stats) == 0 {
		return
	}
	fmt.Fprintf(w, "\nportfolio races (%d):\n", races)
	fmt.Fprintf(w, "  %-10s %8s %8s %11s %6s %10s\n", "backend", "wins", "winrate", "incumbents", "first", "best")
	for _, name := range sortedKeys(stats) {
		s := stats[name]
		rate := "-"
		if races > 0 {
			rate = fmt.Sprintf("%.0f%%", 100*float64(s.wins)/float64(races))
		}
		best := "-"
		if !math.IsInf(s.best, 1) {
			best = fmt.Sprintf("%.4g", s.best)
		}
		fmt.Fprintf(w, "  %-10s %8d %8s %11d %6d %10s\n", name, s.wins, rate, s.incumbents, s.firsts, best)
	}
	if ttffN > 0 {
		fmt.Fprintf(w, "  time to first feasible: %s mean over %d race(s)\n", fmtUS(ttffUS/int64(ttffN)), ttffN)
	}
	fmt.Fprintf(w, "\nincumbent timeline:\n")
	for _, e := range incumbents {
		mark := ""
		if e.First {
			mark = "  (first feasible)"
		}
		fmt.Fprintf(w, "  %10s  %-10s height %-10.4g bound %.4g%s\n", fmtUS(e.DurUS), e.Detail, e.Height, e.Bound, mark)
	}
}

func readTrace(path string) ([]obs.Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return obs.ReadJSONL(f)
}

// traceSpanUS is the trace's wall-clock extent: the largest event
// timestamp (the trace clock starts at the observer's birth).
func traceSpanUS(events []obs.Event) int64 {
	var max int64
	for _, e := range events {
		if e.T > max {
			max = e.T
		}
	}
	return max
}

// span is one reconstructed timing-tree node.
type span struct {
	id, parent int64
	name       string
	detail     string
	step       int
	worker     int
	startUS    int64
	durUS      int64 // -1 while open (no span.end seen)
	children   []*span
	lpCount    int   // lp.solve events linked to this span
	lpUS       int64 // their cumulative duration
}

// buildTree reconstructs the span forest of a trace. Spans without a
// span.end (error paths, truncated traces) stay open with durUS -1;
// spans whose parent is missing from the trace surface as roots.
func buildTree(events []obs.Event) []*span {
	byID := map[int64]*span{}
	var order []*span
	for _, e := range events {
		switch e.Kind {
		case obs.KindSpanStart:
			sp := &span{
				id: e.Span, parent: e.Parent, name: e.Name, detail: e.Detail,
				step: e.Step, worker: e.Worker, startUS: e.T, durUS: -1,
			}
			byID[e.Span] = sp
			order = append(order, sp)
		case obs.KindSpanEnd:
			if sp := byID[e.Span]; sp != nil {
				sp.durUS = e.DurUS
			}
		case obs.KindLPSolve:
			if sp := byID[e.Span]; sp != nil {
				sp.lpCount++
				sp.lpUS += e.DurUS
			}
		}
	}
	var roots []*span
	for _, sp := range order {
		if parent := byID[sp.parent]; parent != nil {
			parent.children = append(parent.children, sp)
		} else {
			roots = append(roots, sp)
		}
	}
	return roots
}

func (sp *span) label() string {
	var b strings.Builder
	b.WriteString(sp.name)
	switch {
	case sp.detail != "":
		fmt.Fprintf(&b, " (%s)", sp.detail)
	case sp.name == "step" || sp.name == "adjust":
		fmt.Fprintf(&b, " %d", sp.step)
	}
	if sp.worker > 0 && sp.name != "bb" {
		fmt.Fprintf(&b, " #%d", sp.worker)
	}
	return b.String()
}

func printTree(w io.Writer, events []obs.Event) {
	roots := buildTree(events)
	fmt.Fprintf(w, "\nspan tree:\n")
	if len(roots) == 0 {
		fmt.Fprintln(w, "  (no spans in trace)")
		return
	}
	var walk func(sp *span, depth int)
	walk = func(sp *span, depth int) {
		dur := "(open)"
		if sp.durUS >= 0 {
			dur = fmtUS(sp.durUS)
		}
		line := fmt.Sprintf("%s%-*s %10s", strings.Repeat("  ", depth+1), 36-2*depth, sp.label(), dur)
		if sp.lpCount > 0 {
			line += fmt.Sprintf("   [lp %d x %s]", sp.lpCount, fmtUS(sp.lpUS/int64(sp.lpCount)))
		}
		fmt.Fprintln(w, line)
		sort.Slice(sp.children, func(i, j int) bool { return sp.children[i].startUS < sp.children[j].startUS })
		for _, c := range sp.children {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
}

func printKinds(w io.Writer, events []obs.Event) {
	counts := kindCounts(events)
	durs := map[string]int64{}
	for _, e := range events {
		if e.DurUS > 0 && e.Kind != obs.KindSpanEnd {
			durs[string(e.Kind)] += e.DurUS
		}
	}
	fmt.Fprintf(w, "\nevents by kind:\n")
	for _, k := range sortedKeys(counts) {
		line := fmt.Sprintf("  %-18s %8d", k, counts[k])
		if d := durs[k]; d > 0 {
			line += fmt.Sprintf("   total %s", fmtUS(d))
		}
		fmt.Fprintln(w, line)
	}
}

func kindCounts(events []obs.Event) map[string]int {
	counts := map[string]int{}
	for _, e := range events {
		counts[string(e.Kind)]++
	}
	return counts
}

// printThroughput slices the trace extent and counts node.close events
// per slice, exposing search stalls (a slice with near-zero closes while
// LP time accumulates) at a glance.
func printThroughput(w io.Writer, events []obs.Event, slices int) {
	if slices < 1 {
		slices = 10
	}
	extent := traceSpanUS(events)
	if extent == 0 {
		return
	}
	closes := make([]int, slices)
	total := 0
	for _, e := range events {
		if e.Kind != obs.KindNodeClose {
			continue
		}
		i := int(e.T * int64(slices) / (extent + 1))
		closes[i]++
		total++
	}
	if total == 0 {
		return
	}
	fmt.Fprintf(w, "\nnode throughput (%d closes):\n", total)
	sliceUS := extent / int64(slices)
	for i, n := range closes {
		rate := float64(n) / (float64(sliceUS) / 1e6)
		fmt.Fprintf(w, "  %10s  %6d nodes  %8.0f/s\n", fmtUS(int64(i)*sliceUS), n, rate)
	}
}

// printGap tabulates bound convergence from progress events: the
// incumbent objective, proven bound and relative gap over trace time.
func printGap(w io.Writer, events []obs.Event) {
	var rows []obs.Event
	for _, e := range events {
		if e.Kind == obs.KindProgress {
			rows = append(rows, e)
		}
	}
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "\ngap vs time (%d probes):\n", len(rows))
	fmt.Fprintf(w, "  %10s %10s %14s %14s %9s\n", "t", "nodes", "incumbent", "bound", "gap")
	for _, e := range rows {
		inc := "-"
		if e.Obj != 0 {
			inc = fmt.Sprintf("%.4g", e.Obj)
		}
		g := "-"
		if e.Obj != 0 && !math.IsInf(e.Gap, 0) && !math.IsNaN(e.Gap) {
			g = fmt.Sprintf("%.3g%%", 100*e.Gap)
		}
		fmt.Fprintf(w, "  %10s %10d %14s %14.6g %9s\n", fmtUS(e.T), e.Nodes, inc, e.Bound, g)
	}
}

// printDiff compares two traces: per-kind event counts and per-span-name
// aggregate durations, with relative deltas.
func printDiff(w io.Writer, nameA string, a []obs.Event, nameB string, b []obs.Event) {
	fmt.Fprintf(w, "diff %s (%d events, %s) -> %s (%d events, %s)\n",
		nameA, len(a), fmtUS(traceSpanUS(a)), nameB, len(b), fmtUS(traceSpanUS(b)))

	ca, cb := kindCounts(a), kindCounts(b)
	fmt.Fprintf(w, "\nevents by kind:\n")
	fmt.Fprintf(w, "  %-18s %10s %10s %9s\n", "kind", "old", "new", "delta")
	for _, k := range sortedKeys(merged(ca, cb)) {
		fmt.Fprintf(w, "  %-18s %10d %10d %9s\n", k, ca[k], cb[k], deltaPct(float64(ca[k]), float64(cb[k])))
	}

	da, db := spanDurations(a), spanDurations(b)
	if len(da)+len(db) == 0 {
		return
	}
	fmt.Fprintf(w, "\nspan time by name:\n")
	fmt.Fprintf(w, "  %-18s %10s %10s %9s\n", "span", "old", "new", "delta")
	for _, k := range sortedKeys(merged(da, db)) {
		fmt.Fprintf(w, "  %-18s %10s %10s %9s\n", k, fmtUS(da[k]), fmtUS(db[k]), deltaPct(float64(da[k]), float64(db[k])))
	}
}

// spanDurations aggregates closed-span time by span name.
func spanDurations(events []obs.Event) map[string]int64 {
	out := map[string]int64{}
	for _, e := range events {
		if e.Kind == obs.KindSpanEnd {
			out[e.Name] += e.DurUS
		}
	}
	return out
}

func merged[V any](a, b map[string]V) map[string]bool {
	out := map[string]bool{}
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func deltaPct(old, new float64) string {
	switch {
	case old == 0 && new == 0:
		return "-"
	case old == 0:
		return "+inf%"
	}
	return fmt.Sprintf("%+.1f%%", 100*(new-old)/old)
}

// fmtUS renders a microsecond duration with a unit fitting its size.
func fmtUS(us int64) string {
	switch {
	case us >= 10_000_000:
		return fmt.Sprintf("%.2fs", float64(us)/1e6)
	case us >= 10_000:
		return fmt.Sprintf("%.1fms", float64(us)/1e3)
	default:
		return fmt.Sprintf("%dus", us)
	}
}
