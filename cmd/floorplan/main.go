// Command floorplan runs the analytical floorplanner on a design and
// reports the resulting chip, optionally routing it and rendering SVG or
// ASCII output.
//
// Usage:
//
//	floorplan [flags]
//
// The design comes from -input (netlist text format, see
// internal/netlist), or from the built-in generators via -design ami33 or
// -design randN (e.g. rand20).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"afp/internal/anneal"
	"afp/internal/core"
	"afp/internal/milp"
	"afp/internal/mipmodel"
	"afp/internal/netlist"
	"afp/internal/obs"
	"afp/internal/order"
	"afp/internal/portfolio"
	"afp/internal/render"
	"afp/internal/route"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "floorplan:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		input     = flag.String("input", "", "netlist file (see internal/netlist format); empty uses -design")
		blocks    = flag.String("blocks", "", "bookshelf .blocks file (use with -nets)")
		netsFile  = flag.String("nets", "", "bookshelf .nets file (use with -blocks)")
		method    = flag.String("method", "milp", "floorplanner: milp (the paper) or sa (Wong-Liu slicing baseline)")
		design    = flag.String("design", "ami33", "built-in design: ami33 or rand<N> (e.g. rand20)")
		seed      = flag.Int64("seed", 1, "seed for rand<N> designs and random ordering")
		width     = flag.Float64("width", 0, "chip width W (0 = automatic)")
		group     = flag.Int("group", 3, "successive-augmentation group size")
		objective = flag.String("objective", "area", "objective: area or area+wire")
		ordering  = flag.String("order", "linear", "module selection order: linear or random")
		envelopes = flag.Bool("envelopes", false, "reserve routing envelopes around modules")
		post      = flag.Bool("post", true, "run the fixed-topology LP adjustment after placement")
		doRoute   = flag.Bool("route", false, "globally route the result")
		weighted  = flag.Bool("weighted", true, "use weighted shortest path when routing")
		nodes     = flag.Int("nodes", 8000, "branch-and-bound node limit per step")
		stepTime  = flag.Duration("steptime", 10*time.Second, "time limit per augmentation step")
		svgOut    = flag.String("svg", "", "write the floorplan as SVG to this file")
		placeOut  = flag.String("placement", "", "write the floorplan as JSON to this file")
		ascii     = flag.Bool("ascii", false, "print an ASCII rendering")
		traceOut  = flag.String("trace", "", "write a JSONL event trace (lp.solve, node.*, step.*) to this file")
		verbose   = flag.Bool("verbose", false, "log solver progress to stderr and print per-step traces")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		sweep     = flag.Bool("sweep", false, "try several chip widths and keep the best floorplan")
		workers   = flag.Int("workers", 0, "branch-and-bound workers per MILP step (0 = one per CPU, 1 = serial)")
		sweepWork = flag.Int("sweepworkers", 0, "concurrent width trials with -sweep (0 = all at once)")
		timeout   = flag.Duration("timeout", 0, "overall solve deadline (0 = none); the partial floorplan is still reported")
		presolve  = flag.Bool("presolve", true, "tighten big-M coefficients and fix forced binaries before branch-and-bound")
		verify    = flag.Bool("verify", false, "check the final floorplan for legality and exit non-zero on violations")
		audit     = flag.Bool("audit", false, "statically audit every step's MILP before solving (defaults to the -verify setting)")
		backend   = flag.String("backend", "", "solution paradigm: milp (default), portfolio (race all paradigms), anneal, seqpair or project")
		race      = flag.String("portfolio", "", "comma-separated portfolio contestants to race (implies -backend=portfolio), e.g. milp,anneal,project")
	)
	flag.Parse()
	// -audit follows -verify unless set explicitly: verified runs get the
	// model-level checks for free, and either can still be toggled alone.
	auditSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "audit" {
			auditSet = true
		}
	})
	if !auditSet {
		*audit = *verify
	}

	// -timeout and Ctrl-C both cancel through the context, down to the
	// simplex pivot loop; the floorplan built so far is still printed.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancelT context.CancelFunc
		ctx, cancelT = context.WithTimeout(ctx, *timeout)
		defer cancelT()
	}

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "floorplan: pprof:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "pprof listening on http://%s/debug/pprof/\n", *pprofAddr)
	}
	observer, closeTrace, err := setupObserver(*traceOut, *verbose)
	if err != nil {
		return err
	}
	defer func() {
		if err := closeTrace(); err != nil {
			fmt.Fprintln(os.Stderr, "floorplan: trace:", err)
		}
	}()

	d, err := loadDesign(*input, *blocks, *netsFile, *design, *seed)
	if err != nil {
		return err
	}

	if *method == "sa" {
		start := time.Now()
		r, err := anneal.FloorplanCtx(ctx, d, anneal.Config{Seed: *seed, Obs: observer})
		if err != nil {
			if r == nil || !isCtxErr(err) {
				return err
			}
			fmt.Fprintf(os.Stderr, "floorplan: annealing stopped early (%v); best incumbent follows\n", err)
		}
		fmt.Printf("design %s: %d modules, total area %.0f\n", d.Name, len(d.Modules), d.TotalArea())
		fmt.Printf("SA slicing: chip %.1f x %.1f, area %.0f, utilization %.1f%%, HPWL %.0f, %v\n",
			r.ChipWidth, r.Height, r.ChipArea(), 100*d.TotalArea()/r.ChipArea(), r.HPWL(),
			time.Since(start).Round(time.Millisecond))
		if *ascii {
			fmt.Print(render.ASCII(r, 78))
		}
		if *svgOut != "" {
			return writeSVG(*svgOut, r, nil)
		}
		return nil
	}
	if *method != "milp" {
		return fmt.Errorf("unknown method %q", *method)
	}

	cfg := core.Config{
		ChipWidth:    *width,
		GroupSize:    *group,
		Envelopes:    *envelopes,
		PostOptimize: *post,
		NoPresolve:   !*presolve,
		Audit:        *audit,
		MILP:         milp.Options{MaxNodes: *nodes, TimeLimit: *stepTime},
		Workers:      *workers,
		SweepWorkers: *sweepWork,
		Obs:          observer,
	}
	switch *objective {
	case "area":
		cfg.Objective = mipmodel.AreaOnly
	case "area+wire", "wire":
		cfg.Objective = mipmodel.AreaWire
		cfg.WireWeight = 0.02
	default:
		return fmt.Errorf("unknown objective %q", *objective)
	}
	switch *ordering {
	case "linear":
		cfg.Ordering = order.Linear(d)
	case "random":
		cfg.Ordering = order.Random(d, *seed)
	default:
		return fmt.Errorf("unknown ordering %q", *ordering)
	}

	if *race != "" && *backend == "" {
		*backend = "portfolio"
	}

	start := time.Now()
	var r *core.Result
	partial := false
	switch {
	case *backend != "" && *backend != "milp":
		if *sweep {
			return fmt.Errorf("-sweep is incompatible with -backend=%s", *backend)
		}
		cfg.Backend = *backend
		cfg.BackendSeed = *seed
		if *backend == "portfolio" {
			// Drive the race directly so the per-backend outcome table can
			// be reported alongside the winning floorplan.
			popts := portfolio.Options{Seed: *seed, Obs: observer}
			if *race != "" {
				popts.Backends = strings.Split(*race, ",")
			}
			var pres *portfolio.Result
			pres, err = portfolio.Solve(ctx, d, cfg, popts)
			if err != nil {
				if pres == nil || pres.Result == nil || !isCtxErr(err) {
					return err
				}
				partial = true
				fmt.Fprintf(os.Stderr, "floorplan: race stopped early (%v); best incumbent follows\n", err)
			}
			r = pres.Result
			fmt.Printf("portfolio: winner %s, TTFF %v, proven bound %.2f (%s), %d incumbents, %d rejected\n",
				pres.Winner, pres.TTFF.Round(time.Microsecond), pres.Bound, pres.BoundSource,
				len(pres.Incumbents), pres.Rejected)
			for _, b := range pres.Backends {
				h := "-"
				if b.Published > 0 {
					h = fmt.Sprintf("%.2f", b.Height)
				}
				fmt.Printf("  %-8s %-9s height %-8s published %-3d nodes %-6d wall %v\n",
					b.Name, b.Outcome, h, b.Published, b.Nodes, b.Wall.Round(time.Millisecond))
			}
			break
		}
		r, err = core.FloorplanCtx(ctx, d, cfg)
		if err != nil {
			if r == nil || !isCtxErr(err) {
				return err
			}
			partial = true
			fmt.Fprintf(os.Stderr, "floorplan: stopped early (%v); best incumbent follows\n", err)
		}
	case *sweep:
		var trials []core.SweepResult
		r, trials, err = core.FloorplanBestWidthCtx(ctx, d, cfg, []float64{0.85, 0.95, 1.05, 1.15})
		if err != nil {
			return err
		}
		for _, tr := range trials {
			if tr.Err != nil {
				fmt.Printf("  width %.1f: %v\n", tr.Width, tr.Err)
				continue
			}
			fmt.Printf("  width %.1f: area %.0f (util %.1f%%)\n",
				tr.Width, tr.Result.ChipArea(), 100*tr.Result.Utilization())
		}
	default:
		r, err = core.FloorplanCtx(ctx, d, cfg)
		if err != nil {
			if r == nil || !isCtxErr(err) {
				return err
			}
			// Deadline or Ctrl-C mid-solve: report the partial floorplan
			// (the best incumbent of the completed augmentation steps).
			partial = true
			fmt.Fprintf(os.Stderr, "floorplan: stopped early (%v); %d of %d modules placed\n",
				err, len(r.Placements), len(d.Modules))
		}
	}
	fmt.Printf("design %s: %d modules, total area %.0f\n", d.Name, len(d.Modules), d.TotalArea())
	if partial {
		fmt.Printf("PARTIAL floorplan (%d/%d modules placed):\n", len(r.Placements), len(d.Modules))
	}
	fmt.Printf("chip %.1f x %.1f, area %.0f, utilization %.1f%%, HPWL %.0f, %v\n",
		r.ChipWidth, r.Height, r.ChipArea(), 100*r.Utilization(), r.HPWL(),
		time.Since(start).Round(time.Millisecond))

	if *verbose {
		for _, s := range r.Steps {
			src := ""
			if s.IncumbentSource != "" && s.IncumbentSource != "bb" {
				src = ", incumbent " + s.IncumbentSource
			}
			fmt.Printf("  step %d: +%d modules, %d obstacles, %d binaries, %d nodes, %v, height %.1f (%v)%s\n",
				s.Step, len(s.Added), s.Obstacles, s.Binaries, s.Nodes, s.Status, s.Height, s.Elapsed.Round(time.Millisecond), src)
		}
	}

	var verifyErr error
	if *verify {
		violations := r.Verify()
		if partial {
			// A partial floorplan legitimately misses the unplaced modules;
			// only geometric defects of what WAS placed count against it.
			kept := violations[:0]
			for _, v := range violations {
				if v.Kind != "missing" {
					kept = append(kept, v)
				}
			}
			violations = kept
		}
		if len(violations) > 0 {
			for _, v := range violations {
				fmt.Fprintln(os.Stderr, "floorplan: violation:", v)
			}
			verifyErr = fmt.Errorf("verification failed: %d violation(s)", len(violations))
		} else if r.Source != "" {
			fmt.Printf("verified: floorplan is legal (source %s)\n", r.Source)
		} else {
			fmt.Println("verified: floorplan is legal")
		}
	}

	var rt *route.Result
	if *doRoute && partial {
		fmt.Fprintln(os.Stderr, "floorplan: skipping routing of a partial floorplan")
	}
	if *doRoute && !partial {
		alg := route.ShortestPath
		if *weighted {
			alg = route.WeightedShortestPath
		}
		rt, err = route.Route(r, route.Config{Algorithm: alg})
		if err != nil {
			return err
		}
		fmt.Printf("routed: wirelength %.0f, overflow %d, final chip %.1f x %.1f (area %.0f)\n",
			rt.Wirelength, rt.Overflow, rt.FinalW, rt.FinalH, rt.FinalArea())
	}

	if *ascii {
		fmt.Print(render.ASCII(r, 78))
	}
	if *placeOut != "" {
		f, err := os.Create(*placeOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := r.SaveJSON(f); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *placeOut)
	}
	if *svgOut != "" {
		if err := writeSVG(*svgOut, r, rt); err != nil {
			return err
		}
	}
	return verifyErr
}

// isCtxErr reports whether err stems from cancellation or a deadline —
// the cases where a partial result is expected and worth printing.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// setupObserver builds the shared observer from the -trace and -verbose
// flags: a JSONL writer on the trace file, a human-readable log on stderr,
// or both. The returned close function flushes and closes the trace file
// and reports any write error retained by the JSONL encoder.
func setupObserver(tracePath string, verbose bool) (*obs.Observer, func() error, error) {
	var sinks []obs.Sink
	closeFn := func() error { return nil }
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return nil, closeFn, err
		}
		w := obs.NewJSONLWriter(f)
		sinks = append(sinks, w)
		closeFn = func() error {
			if err := w.Err(); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		}
	}
	if verbose {
		sinks = append(sinks, obs.NewLogSink(os.Stderr))
	}
	return obs.New(obs.Multi(sinks...)), closeFn, nil
}

func writeSVG(path string, r *core.Result, rt *route.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := render.SVGWithRoutes(f, r, rt); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

func loadDesign(input, blocks, nets, name string, seed int64) (*netlist.Design, error) {
	if blocks != "" {
		bf, err := os.Open(blocks)
		if err != nil {
			return nil, err
		}
		defer bf.Close()
		var nr *os.File
		if nets != "" {
			nr, err = os.Open(nets)
			if err != nil {
				return nil, err
			}
			defer nr.Close()
		}
		base := strings.TrimSuffix(filepath.Base(blocks), filepath.Ext(blocks))
		if nr != nil {
			return netlist.ParseBookshelf(base, bf, nr)
		}
		return netlist.ParseBookshelf(base, bf, nil)
	}
	if input != "" {
		f, err := os.Open(input)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return netlist.Parse(f)
	}
	if name == "ami33" {
		return netlist.AMI33(), nil
	}
	if strings.HasPrefix(name, "rand") {
		n, err := strconv.Atoi(strings.TrimPrefix(name, "rand"))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad design name %q", name)
		}
		return netlist.Random(n, seed), nil
	}
	return nil, fmt.Errorf("unknown design %q", name)
}
