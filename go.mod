module afp

go 1.22
