// End-to-end tests of the command-line tools: each binary is compiled
// once into a temp dir and driven through its primary flows.
package afp_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"afp/internal/obs"
)

var (
	buildOnce sync.Once
	binDir    string
	buildErr  error
)

func buildCLIs(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		binDir, buildErr = os.MkdirTemp("", "afp-bin")
		if buildErr != nil {
			return
		}
		for _, tool := range []string{"floorplan", "experiments", "mipsolve", "floorpland", "floorplantrace"} {
			cmd := exec.Command("go", "build", "-o", filepath.Join(binDir, tool), "./cmd/"+tool)
			out, err := cmd.CombinedOutput()
			if err != nil {
				buildErr = err
				println(string(out))
				return
			}
		}
	})
	if buildErr != nil {
		t.Fatalf("building CLIs: %v", buildErr)
	}
	return binDir
}

func runCLI(t *testing.T, name string, stdin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(filepath.Join(buildCLIs(t), name), args...)
	if stdin != "" {
		cmd.Stdin = strings.NewReader(stdin)
	}
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v failed: %v\n%s", name, args, err, out)
	}
	return string(out)
}

func TestCLIFloorplanRandomDesign(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI e2e in -short mode")
	}
	dir := t.TempDir()
	svg := filepath.Join(dir, "out.svg")
	trace := filepath.Join(dir, "out.jsonl")
	out := runCLI(t, "floorplan", "",
		"-design", "rand8", "-group", "3", "-nodes", "500",
		"-ascii", "-verbose", "-trace", trace, "-route", "-svg", svg)
	for _, want := range []string{"utilization", "step 0", "routed:", "wrote"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	data, err := os.ReadFile(svg)
	if err != nil || !strings.HasPrefix(string(data), "<svg") {
		t.Fatalf("SVG not written: %v", err)
	}

	// The trace must be valid JSONL covering the whole solve: step-level
	// events, branch-and-bound node lifecycles and timed LP solves.
	tf, err := os.Open(trace)
	if err != nil {
		t.Fatalf("trace not written: %v", err)
	}
	defer tf.Close()
	events, err := obs.ReadJSONL(tf)
	if err != nil {
		t.Fatalf("trace not valid JSONL: %v", err)
	}
	rec := &obs.Recorder{}
	for _, e := range events {
		rec.Emit(e)
	}
	for _, k := range []obs.Kind{obs.KindStepStart, obs.KindStepDone, obs.KindNodeOpen, obs.KindLPSolve, obs.KindSearchDone} {
		if rec.CountKind(k) == 0 {
			t.Errorf("trace has no %s events (%d total)", k, len(events))
		}
	}
	if e, ok := rec.LastKind(obs.KindLPSolve); ok && e.DurUS < 0 {
		t.Errorf("lp.solve event has negative duration: %+v", e)
	}
}

func TestCLIFloorplanSAMethod(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI e2e in -short mode")
	}
	out := runCLI(t, "floorplan", "", "-design", "rand10", "-method", "sa")
	if !strings.Contains(out, "SA slicing") {
		t.Fatalf("SA output missing:\n%s", out)
	}
}

func TestCLIFloorplanNetlistFile(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI e2e in -short mode")
	}
	dir := t.TempDir()
	nl := filepath.Join(dir, "d.netlist")
	src := `design clitest
module a rigid 4 3 rot
module b flexible 12 0.5 2
module c rigid 2 5
net n1 a b
net n2 b c
`
	if err := os.WriteFile(nl, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out := runCLI(t, "floorplan", "", "-input", nl, "-nodes", "500")
	if !strings.Contains(out, "design clitest: 3 modules") {
		t.Fatalf("netlist input not honored:\n%s", out)
	}
}

func TestCLIFloorplanBookshelf(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI e2e in -short mode")
	}
	dir := t.TempDir()
	blocks := filepath.Join(dir, "d.blocks")
	nets := filepath.Join(dir, "d.nets")
	if err := os.WriteFile(blocks, []byte(`UCSC blocks 1.0
NumSoftRectangularBlocks : 1
NumHardRectilinearBlocks : 2
NumTerminals : 0
sb0 softrectangular 12 0.5 2.0
bk1 hardrectilinear 4 (0, 0) (0, 3) (4, 3) (4, 0)
bk2 hardrectilinear 4 (0, 0) (0, 5) (2, 5) (2, 0)
`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(nets, []byte(`UCLA nets 1.0
NumNets : 1
NumPins : 2
NetDegree : 2
sb0 B
bk1 B
`), 0o644); err != nil {
		t.Fatal(err)
	}
	out := runCLI(t, "floorplan", "", "-blocks", blocks, "-nets", nets, "-nodes", "500")
	if !strings.Contains(out, "3 modules") {
		t.Fatalf("bookshelf input not honored:\n%s", out)
	}
}

func TestCLIMipsolve(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI e2e in -short mode")
	}
	model := `maximize
bin a 10
bin b 13
bin c 7
bin d 5
con cap <= 6 3 a 4 b 2 c 1 d
`
	out := runCLI(t, "mipsolve", model)
	if !strings.Contains(out, "status: optimal") || !strings.Contains(out, "objective: 22") {
		t.Fatalf("mipsolve output wrong:\n%s", out)
	}
}

func TestCLIExperimentsFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI e2e in -short mode")
	}
	out := runCLI(t, "experiments", "", "-figure", "1")
	if !strings.Contains(out, "h tangent") {
		t.Fatalf("figure 1 output wrong:\n%s", out)
	}
	out = runCLI(t, "experiments", "", "-figure", "4")
	if !strings.Contains(out, "covering rectangles") {
		t.Fatalf("figure 4 output wrong:\n%s", out)
	}
}
