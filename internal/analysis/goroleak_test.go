package analysis_test

import (
	"testing"

	"afp/internal/analysis"
)

func TestGoroLeak(t *testing.T) {
	analysis.RunTest(t, "testdata", "afp/internal/goroleak", analysis.GoroLeak)
}
