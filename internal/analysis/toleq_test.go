package analysis_test

import (
	"testing"

	"afp/internal/analysis"
)

func TestTolEq(t *testing.T) {
	analysis.RunTest(t, "testdata", "afp/toleq", analysis.TolEq)
}
