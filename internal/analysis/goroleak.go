package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GoroLeak demands a provable join path for every `go` statement in
// internal packages: the spawned body (or the call that launches it)
// must exhibit at least one piece of lifetime-bounding evidence —
//
//   - it references a context.Context (plumbed in, selected on, or
//     passed onward), or
//   - it calls Done on a sync.WaitGroup, or
//   - it synchronizes on a channel: a receive (including range and
//     select receive cases), a send, or a close.
//
// A goroutine with none of these has no mechanism by which the spawner
// — or a job cancellation — can observe or bound its lifetime, which is
// how SSE followers and portfolio contestants would silently outlive
// their job. The check is evidence-based, not a proof of termination:
// it accepts any of the repo's three join idioms and rejects bodies
// with no join vocabulary at all. Goroutines whose body is statically
// unresolvable (a function value) are judged by their launch arguments
// alone. Scope is packages under an internal/ path segment; cmd
// binaries may legitimately spawn fire-and-forget helpers.
var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc:  "go statements in internal packages have a provable join path (context, WaitGroup.Done, or channel)",
	Run:  runGoroLeak,
}

func runGoroLeak(pass *Pass) error {
	if !strings.Contains(pass.Pkg.Path()+"/", "/internal/") &&
		!strings.HasPrefix(pass.Pkg.Path(), "internal/") {
		return nil
	}
	// Bodies of same-package functions, for resolving `go f()` launches.
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					decls[obj] = fd
				}
			}
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !goStmtJoins(pass, gs, decls) {
				pass.Reportf(gs.Pos(), "goroutine has no provable join path: plumb a context.Context, call WaitGroup.Done, or synchronize on a channel")
			}
			return true
		})
	}
	return nil
}

// goStmtJoins looks for join evidence in the launch call's arguments,
// then in the spawned body when it is statically known.
func goStmtJoins(pass *Pass, gs *ast.GoStmt, decls map[*types.Func]*ast.FuncDecl) bool {
	for _, arg := range gs.Call.Args {
		if tv, ok := pass.TypesInfo.Types[arg]; ok && isJoinCarrier(tv.Type) {
			return true
		}
	}
	switch fun := gs.Call.Fun.(type) {
	case *ast.FuncLit:
		return joinEvidence(pass, fun.Body)
	default:
		if callee := calleeFunc(pass, gs.Call); callee != nil {
			if fd, ok := decls[callee]; ok {
				return joinEvidence(pass, fd.Body)
			}
			// A bound method value like wg.Done or cancel-adjacent
			// helpers: the receiver may itself carry the join.
			if sel, ok := fun.(*ast.SelectorExpr); ok {
				if tv, ok := pass.TypesInfo.Types[sel.X]; ok && isJoinCarrier(tv.Type) {
					return true
				}
			}
		}
	}
	return false
}

// isJoinCarrier reports whether a value of type t can bound a
// goroutine's lifetime from outside: a context, a channel, or a
// WaitGroup.
func isJoinCarrier(t types.Type) bool {
	if t == nil {
		return false
	}
	if isContextType(t) {
		return true
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	return isWaitGroup(t)
}

func isWaitGroup(t types.Type) bool {
	named := namedOf(t)
	return named != nil && named.Obj().Name() == "WaitGroup" &&
		named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync"
}

// joinEvidence scans a spawned body (including its nested literals —
// a deferred closure calling wg.Done counts) for any join vocabulary.
func joinEvidence(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if e, ok := n.(ast.Expr); ok {
			if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Type != nil && isContextType(tv.Type) {
				found = true
				return false
			}
		}
		switch x := n.(type) {
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				found = true
			}
		case *ast.SendStmt:
			found = true
		case *ast.RangeStmt:
			if tv, ok := pass.TypesInfo.Types[x.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			if id, ok := x.Fun.(*ast.Ident); ok {
				if b, isB := pass.TypesInfo.Uses[id].(*types.Builtin); isB && b.Name() == "close" {
					found = true
				}
			}
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				if f := calleeFunc(pass, x); f != nil {
					if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil && isWaitGroup(sig.Recv().Type()) {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}
