package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// NewObsEvent builds the obsevent analyzer around an event registry:
// kind string -> the field names emit sites may populate for that kind.
// cmd/floorplanvet instantiates it with the generated obs.Schema, so a
// typo'd event kind or a field never produced for that kind fails vet
// instead of silently fragmenting the trace schema.
//
// The analyzer checks every composite literal of the obs Event type:
// the Kind value (when it is a compile-time constant) must be a
// registered kind, and every field set in the literal must appear in
// that kind's registry entry. T and Kind themselves are always legal.
func NewObsEvent(schema map[string][]string) *Analyzer {
	fields := make(map[string]map[string]bool, len(schema))
	for kind, fs := range schema {
		m := map[string]bool{"T": true, "Kind": true}
		for _, f := range fs {
			m[f] = true
		}
		fields[kind] = m
	}
	return &Analyzer{
		Name: "obsevent",
		Doc:  "obs.Event kinds and fields must appear in the generated registry (internal/obs/schema.go)",
		Run: func(pass *Pass) error {
			return runObsEvent(pass, fields)
		},
	}
}

func runObsEvent(pass *Pass, schema map[string]map[string]bool) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			cl, ok := n.(*ast.CompositeLit)
			if !ok || !isObsEventType(pass, cl) {
				return true
			}
			kind, known := literalKind(pass, cl)
			if !known {
				return true // Kind omitted or non-constant: nothing checkable
			}
			allowed, ok := schema[kind]
			if !ok {
				pass.Reportf(cl.Pos(), "unknown obs event kind %q (regenerate internal/obs/schema.go or fix the kind)", kind)
				return true
			}
			for _, elt := range cl.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				if !allowed[key.Name] {
					pass.Reportf(kv.Pos(), "field %s is not in the registered schema for obs event kind %q", key.Name, kind)
				}
			}
			return true
		})
	}
	return nil
}

// isObsEventType reports whether the composite literal builds the obs
// telemetry Event struct (matched by type name and package path suffix,
// so fixture stubs under testdata qualify too).
func isObsEventType(pass *Pass, cl *ast.CompositeLit) bool {
	tv, ok := pass.TypesInfo.Types[cl]
	if !ok {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Event" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/obs")
}

// literalKind extracts the constant string value of the literal's Kind
// field, if present and constant.
func literalKind(pass *Pass, cl *ast.CompositeLit) (string, bool) {
	for _, elt := range cl.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || key.Name != "Kind" {
			continue
		}
		tv, ok := pass.TypesInfo.Types[kv.Value]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			return "", false
		}
		return constant.StringVal(tv.Value), true
	}
	return "", false
}
