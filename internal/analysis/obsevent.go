package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// NewObsEvent builds the obsevent analyzer around the generated
// registries: the event schema (kind string -> the field names emit
// sites may populate for that kind), the span-name registry and the
// histogram-name registry. cmd/floorplanvet instantiates it with the
// generated obs.Schema / obs.SpanNames / obs.HistogramNames, so a typo'd
// event kind, a field never produced for that kind, an unregistered span
// name or an unregistered histogram name fails vet instead of silently
// fragmenting the trace schema. Nil span/histogram registries disable
// those checks.
//
// The analyzer checks every composite literal of the obs Event type:
// the Kind value (when it is a compile-time constant) must be a
// registered kind, and every field set in the literal must appear in
// that kind's registry entry. T and Kind themselves are always legal.
// It also checks every Observer.StartSpan / StartSpanAttrs / Do call
// whose name argument is a compile-time constant against the span
// registry, and every Metrics.Observe call against the histogram
// registry; dynamic names pass unchecked.
func NewObsEvent(schema map[string][]string, spans, hists map[string]bool) *Analyzer {
	fields := make(map[string]map[string]bool, len(schema))
	for kind, fs := range schema {
		m := map[string]bool{"T": true, "Kind": true}
		for _, f := range fs {
			m[f] = true
		}
		fields[kind] = m
	}
	return &Analyzer{
		Name: "obsevent",
		Doc:  "obs.Event kinds/fields, span names and histogram names must appear in the generated registry (internal/obs/schema.go)",
		Run: func(pass *Pass) error {
			return runObsEvent(pass, fields, spans, hists)
		},
	}
}

func runObsEvent(pass *Pass, schema map[string]map[string]bool, spans, hists map[string]bool) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				checkObsCall(pass, call, spans, hists)
				return true
			}
			cl, ok := n.(*ast.CompositeLit)
			if !ok || !isObsEventType(pass, cl) {
				return true
			}
			kind, known := literalKind(pass, cl)
			if !known {
				return true // Kind omitted or non-constant: nothing checkable
			}
			allowed, ok := schema[kind]
			if !ok {
				pass.Reportf(cl.Pos(), "unknown obs event kind %q (regenerate internal/obs/schema.go or fix the kind)", kind)
				return true
			}
			for _, elt := range cl.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				if !allowed[key.Name] {
					pass.Reportf(kv.Pos(), "field %s is not in the registered schema for obs event kind %q", key.Name, kind)
				}
			}
			return true
		})
	}
	return nil
}

// checkObsCall vets span-open and histogram-observe call sites whose
// name argument is a compile-time constant string.
func checkObsCall(pass *Pass, call *ast.CallExpr, spans, hists map[string]bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	recv, ok := obsReceiver(pass, sel)
	if !ok {
		return
	}
	switch {
	case recv == "Observer" && spans != nil &&
		(sel.Sel.Name == "StartSpan" || sel.Sel.Name == "StartSpanAttrs" || sel.Sel.Name == "Do"):
		if len(call.Args) < 2 {
			return
		}
		if name, ok := constString(pass, call.Args[1]); ok && !spans[name] {
			pass.Reportf(call.Args[1].Pos(), "span name %q is not in the generated span registry (regenerate internal/obs/schema.go or fix the name)", name)
		}
	case recv == "Metrics" && hists != nil && sel.Sel.Name == "Observe":
		if len(call.Args) != 2 {
			return
		}
		if name, ok := constString(pass, call.Args[0]); ok && !hists[name] {
			pass.Reportf(call.Args[0].Pos(), "histogram name %q is not in the generated histogram registry (regenerate internal/obs/schema.go or fix the name)", name)
		}
	}
}

// obsReceiver resolves a method selector's receiver to a named type of
// the obs package (matched by path suffix, so fixture stubs under
// testdata qualify too) and returns the type name.
func obsReceiver(pass *Pass, sel *ast.SelectorExpr) (string, bool) {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return "", false
	}
	t := s.Recv()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !strings.HasSuffix(obj.Pkg().Path(), "internal/obs") {
		return "", false
	}
	return obj.Name(), true
}

// constString extracts a compile-time constant string value.
func constString(pass *Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// isObsEventType reports whether the composite literal builds the obs
// telemetry Event struct (matched by type name and package path suffix,
// so fixture stubs under testdata qualify too).
func isObsEventType(pass *Pass, cl *ast.CompositeLit) bool {
	tv, ok := pass.TypesInfo.Types[cl]
	if !ok {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Event" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/obs")
}

// literalKind extracts the constant string value of the literal's Kind
// field, if present and constant.
func literalKind(pass *Pass, cl *ast.CompositeLit) (string, bool) {
	for _, elt := range cl.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || key.Name != "Kind" {
			continue
		}
		tv, ok := pass.TypesInfo.Types[kv.Value]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			return "", false
		}
		return constant.StringVal(tv.Value), true
	}
	return "", false
}
