package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package ready for analysis. Only
// the package's own non-test files are parsed; dependencies contribute
// type information through their compiled export data.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// TypeErrors holds any type-checking problems. Analyzers still run
	// on a partially-checked package, but drivers should surface these.
	TypeErrors []error
}

// LoadConfig selects where and how packages are resolved.
type LoadConfig struct {
	// Dir is the working directory for `go list` (the module root for
	// module-mode loads, a fixture tree for GOPATH-mode loads). Empty
	// means the current directory.
	Dir string
	// Env entries are appended to the inherited environment, e.g.
	// GOPATH=... and GO111MODULE=off for testdata fixtures.
	Env []string
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load resolves the patterns with `go list -e -export -deps -json`,
// parses each matched package's source and type-checks it against the
// export data of its dependencies. This recovers the same information
// golang.org/x/tools/go/packages.Load(NeedTypes|NeedSyntax) provides,
// using only the standard toolchain, and therefore works without any
// module downloads.
func Load(cfg LoadConfig, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = cfg.Dir
	cmd.Env = append(os.Environ(), cfg.Env...)
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list: %v\n%s", err, errb.String())
	}

	exports := map[string]string{}
	var targets []listPackage
	dec := json.NewDecoder(&out)
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.Error != nil && !p.DepOnly {
			return nil, fmt.Errorf("analysis: %s: %s", p.ImportPath, p.Error.Err)
		}
		if !p.DepOnly && !p.Standard && len(p.GoFiles) > 0 {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, t := range targets {
		pkg := &Package{Path: t.ImportPath, Fset: fset}
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("analysis: %v", err)
			}
			pkg.Files = append(pkg.Files, f)
		}
		pkg.Info = &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		conf := types.Config{
			Importer: imp,
			Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
		}
		tp, err := conf.Check(t.ImportPath, fset, pkg.Files, pkg.Info)
		if err != nil && len(pkg.TypeErrors) == 0 {
			pkg.TypeErrors = append(pkg.TypeErrors, err)
		}
		pkg.Types = tp
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}
