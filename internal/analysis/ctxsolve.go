package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxSolve enforces the context discipline introduced with the solver
// service: every solver entry point has a Ctx variant, and code that
// already holds a context.Context must use it.
//
// Two rules:
//
//  1. A function holding a context.Context parameter must not call a
//     function or method F when a sibling FCtx (same package scope, or
//     same receiver type) taking a context.Context exists — the ctx in
//     hand must be threaded through.
//  2. context.Background() and context.TODO() may appear only in
//     package main, in tests, or inside the designated non-Ctx bridge:
//     a function F whose sibling FCtx exists (Solve calling
//     SolveCtx(context.Background(), ...) is the one legitimate place a
//     fresh root context is minted).
//
// Suppress intentional root contexts (e.g. a server's base context)
// with //vet:allow ctxsolve.
var CtxSolve = &Analyzer{
	Name: "ctxsolve",
	Doc:  "calls through Ctx solver variants when a context is in hand; no stray context.Background()",
	Run:  runCtxSolve,
}

func runCtxSolve(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			hasCtx := funcHasCtxParam(pass, fd)
			isBridge := ctxSibling(pass, fd) != nil
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeFunc(pass, call)
				if callee == nil {
					return true
				}
				if isContextRoot(callee) {
					if pass.Pkg.Name() != "main" && !hasCtx && !isBridge {
						pass.Reportf(call.Pos(), "context.%s outside main or a Ctx bridge; thread a context.Context instead", callee.Name())
					}
					if hasCtx {
						pass.Reportf(call.Pos(), "context.%s in a function that already has a context.Context parameter", callee.Name())
					}
					return true
				}
				if !hasCtx {
					return true
				}
				if sib := ctxVariantOf(callee); sib != nil {
					pass.Reportf(call.Pos(), "call %s and pass the context in hand instead of %s", sib.Name(), callee.Name())
				}
				return true
			})
		}
	}
	return nil
}

// funcHasCtxParam reports whether the declared function takes a
// context.Context parameter.
func funcHasCtxParam(pass *Pass, fd *ast.FuncDecl) bool {
	obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := obj.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// calleeFunc resolves the called function or method, if statically known.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		f, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// isContextRoot reports whether f is context.Background or context.TODO.
func isContextRoot(f *types.Func) bool {
	return f.Pkg() != nil && f.Pkg().Path() == "context" &&
		(f.Name() == "Background" || f.Name() == "TODO")
}

// ctxSibling returns the FCtx sibling of the declared function, if any.
func ctxSibling(pass *Pass, fd *ast.FuncDecl) *types.Func {
	obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return nil
	}
	return ctxVariantOf(obj)
}

// ctxVariantOf returns the function FCtx matching F: same package scope
// for plain functions, same receiver base type for methods. The variant
// must itself take a context.Context to count.
func ctxVariantOf(f *types.Func) *types.Func {
	name := f.Name()
	if strings.HasSuffix(name, "Ctx") {
		return nil
	}
	want := name + "Ctx"
	sig, ok := f.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var cand types.Object
	if recv := sig.Recv(); recv != nil {
		named := namedOf(recv.Type())
		if named == nil {
			return nil
		}
		for i := 0; i < named.NumMethods(); i++ {
			if named.Method(i).Name() == want {
				cand = named.Method(i)
				break
			}
		}
	} else if f.Pkg() != nil {
		cand = f.Pkg().Scope().Lookup(want)
	}
	cf, ok := cand.(*types.Func)
	if !ok {
		return nil
	}
	csig := cf.Type().(*types.Signature)
	for i := 0; i < csig.Params().Len(); i++ {
		if isContextType(csig.Params().At(i).Type()) {
			return cf
		}
	}
	return nil
}

// namedOf unwraps pointers to the named receiver type.
func namedOf(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}
