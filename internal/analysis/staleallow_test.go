package analysis_test

import (
	"testing"

	"afp/internal/analysis"
)

// TestStaleAllow exercises the stale-suppression pseudo-analyzer: the
// fixture carries one live //vet:allow (whose finding must stay
// suppressed), one stale one (reported), and one naming an analyzer
// outside the run set (ignored).
func TestStaleAllow(t *testing.T) {
	analysis.RunTest(t, "testdata", "afp/staleallow", analysis.TolEq)
}
