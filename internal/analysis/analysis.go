// Package analysis is a small, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects one
// type-checked package through a Pass and reports Diagnostics. It exists
// because this repository builds offline against the standard library
// only; the loader (see load.go) recovers full type information without
// x/tools by combining `go list -export` with the gc export-data
// importer of go/importer.
//
// The project's analyzers live in this package too (ctxsolve, toleq,
// obsevent, locked) and are driven by cmd/floorplanvet; see DESIGN.md
// section 11 for what each one enforces.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one static check. Run is invoked once per loaded package
// and reports findings through the Pass.
type Analyzer struct {
	// Name identifies the analyzer in reports and in //vet:allow
	// suppression comments.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run inspects one package. Diagnostics are reported via
	// Pass.Report/Reportf; the error return is reserved for analyzer
	// failures (not findings).
	Run func(*Pass) error
	// Finish, if non-nil, runs once after every package has been
	// analyzed. Analyzers that accumulate cross-package state (the
	// lock-order graph) report whole-program findings here; the
	// returned diagnostics must carry Pos and Position already
	// resolved, since no single Pass is in scope.
	Finish func() []Diagnostic
}

// Pass carries one package's syntax and types to an analyzer, mirroring
// golang.org/x/tools/go/analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Report records one diagnostic.
func (p *Pass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer.Name
	d.Position = p.Fset.Position(d.Pos)
	p.report(d)
}

// Reportf records one diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Position token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Position, d.Analyzer, d.Message)
}
