package analysis_test

import (
	"testing"

	"afp/internal/analysis"
)

func TestCtxSolve(t *testing.T) {
	analysis.RunTest(t, "testdata", "afp/ctxsolve", analysis.CtxSolve)
}
