package analysis

import (
	"go/ast"
	"go/types"
)

// Locked enforces mutex-annotation discipline: a function whose doc
// comment carries one or more machine-readable lines
//
//	// locked: <spec>
//
// may only be called with the named mutex held. The spec grammar
// (DESIGN.md section 15) generalizes the original receiver-only form:
//
//	// locked: ps.mu           the receiver's mutex — call sites must
//	                           hold <receiver expression>.mu
//	// locked: b.mu            a parameter's mutex, matched the same way
//	                           against the corresponding argument
//	// locked: backendMu       a package-level mutex in the same package
//	// locked: obs.Metrics.mu  an identity: any lock whose canonical
//	                           name is pkg.Type.field, whoever owns it
//
// A call site satisfies the contract when either the calling scope
// carries a matching annotation itself, or the body lexically holds the
// required lock at the call: an <expr>.Lock() (or RLock) before it with
// no non-deferred Unlock in between. Receiver and parameter forms match
// by expression text, so holding other.mu never satisfies p.mu; the
// identity form matches by canonical name, which is what lets
// histogram.observe demand obs.Metrics.mu from another file.
//
// The check is lexical within one function body — it does not build a
// cross-procedural lockset (DESIGN.md sections 9 and 11). Annotations
// are matched per package; annotations on exported functions called
// from other packages are not visible there, so locked helpers should
// stay unexported.
var Locked = &Analyzer{
	Name: "locked",
	Doc:  "functions annotated '// locked: <spec>' are only called with the annotated mutex held",
	Run:  runLocked,
}

func runLocked(pass *Pass) error {
	annotated := map[*types.Func][]lockedReq{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			_, reqs := lockedAnnotations(pass, fd)
			if len(reqs) == 0 {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			for _, req := range reqs {
				if req.kind == reqPkgVar && req.id == "" {
					pass.Reportf(fd.Pos(), "malformed locked annotation %q: no package-level variable %q (want recv.field, param.field, a package mutex, or pkg.Type.field)",
						req.spec, req.spec)
					continue
				}
				annotated[obj] = append(annotated[obj], req)
			}
		}
	}
	if len(annotated) == 0 {
		return nil
	}

	for _, scope := range collectLockScopes(pass) {
		checkLockedCalls(pass, scope, annotated)
	}
	return nil
}

// checkLockedCalls validates every call to an annotated function inside
// one scope.
func checkLockedCalls(pass *Pass, scope *lockScope, annotated map[*types.Func][]lockedReq) {
	walkSkipping(scope.body, scope.skip, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		callee := calleeFunc(pass, call)
		if callee == nil {
			return
		}
		for _, req := range annotated[callee] {
			required, byIdentity := requiredLock(call, req)
			if byIdentity {
				if scope.heldIDAt(required, call.Pos()) {
					continue
				}
				pass.Reportf(call.Pos(), "call to %s requires a lock with identity %s held (annotate the caller '// locked: %s' or take the lock first)",
					callee.Name(), required, required)
				continue
			}
			if scope.heldExprAt(required, call.Pos()) {
				continue
			}
			if req.id != "" && annotationHoldsID(scope, req.id) {
				// The caller's own precondition names the same lock
				// class through a different spelling (e.g. an identity
				// annotation covering a receiver-form requirement).
				continue
			}
			pass.Reportf(call.Pos(), "call to %s requires %s held (annotate the caller '// locked: %s' or take the lock first)",
				callee.Name(), required, required)
		}
	})
}

// requiredLock renders req at one call site: the lock expression the
// caller must hold (in the caller's naming), or an identity when the
// requirement is instance-blind.
func requiredLock(call *ast.CallExpr, req lockedReq) (string, bool) {
	switch req.kind {
	case reqRecv:
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			return types.ExprString(sel.X) + "." + req.path, false
		}
		return req.spec, false
	case reqParam:
		if req.argIdx < len(call.Args) {
			return types.ExprString(call.Args[req.argIdx]) + "." + req.path, false
		}
		return req.spec, false
	case reqPkgVar:
		return req.spec, false
	default:
		return req.id, true
	}
}

// annotationHoldsID reports whether one of the scope's own locked:
// preconditions names the identity id.
func annotationHoldsID(scope *lockScope, id string) bool {
	for _, h := range scope.ann {
		if h.id == id && id != "" {
			return true
		}
	}
	return false
}

// recvName returns the name of fd's receiver, or "" for plain functions.
func recvName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}
