package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Locked enforces mutex-annotation discipline: a function whose doc
// comment carries a machine-readable line
//
//	// locked: ps.mu
//
// (where ps is the function's receiver) may only be called with that
// mutex held. A call site satisfies the contract when either
//
//   - the calling function carries the same annotation for the same
//     lock expression, or
//   - the caller's body contains an <expr>.Lock() on the required lock
//     before the call, with no non-deferred <expr>.Unlock() in between
//     (the classic mu.Lock(); defer mu.Unlock() pattern, or an explicit
//     Lock/call/Unlock bracket).
//
// The check is lexical within one function body — it does not build a
// cross-procedural lockset — which is exactly the discipline the
// parallel branch-and-bound pool relies on for its
// opened == closed + pruned + open trace invariant (DESIGN.md sections
// 9 and 11). Annotated functions are matched per package; annotations
// on exported functions called from other packages are not visible
// there, so locked helpers should stay unexported.
var Locked = &Analyzer{
	Name: "locked",
	Doc:  "functions annotated '// locked: x.mu' are only called with the annotated mutex held",
	Run:  runLocked,
}

// lockedAnnotation records one annotated function: the receiver name it
// states the lock in terms of, and the field path after it ("mu").
type lockedAnnotation struct {
	recv string // annotated receiver name, e.g. "ps"
	path string // lock member path, e.g. "mu"
}

func runLocked(pass *Pass) error {
	annotated := map[*types.Func]lockedAnnotation{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			spec := ""
			for _, c := range fd.Doc.List {
				if rest, ok := strings.CutPrefix(c.Text, "// locked:"); ok {
					spec = strings.TrimSpace(rest)
				}
			}
			if spec == "" {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			recv, path, ok := strings.Cut(spec, ".")
			if !ok {
				pass.Reportf(fd.Pos(), "malformed locked annotation %q (want receiver.field, e.g. ps.mu)", spec)
				continue
			}
			if rn := recvName(fd); rn != recv {
				pass.Reportf(fd.Pos(), "locked annotation %q does not start with the receiver name %q", spec, rn)
				continue
			}
			annotated[obj] = lockedAnnotation{recv: recv, path: path}
		}
	}
	if len(annotated) == 0 {
		return nil
	}

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLockedCalls(pass, fd, annotated)
		}
	}
	return nil
}

// checkLockedCalls validates every call to an annotated function inside
// fd's body.
func checkLockedCalls(pass *Pass, fd *ast.FuncDecl, annotated map[*types.Func]lockedAnnotation) {
	// The caller's own annotation, if any, rendered as a lock expression
	// string in the caller's naming ("ps.mu").
	callerLock := ""
	if fd.Doc != nil {
		for _, c := range fd.Doc.List {
			if rest, ok := strings.CutPrefix(c.Text, "// locked:"); ok {
				callerLock = strings.TrimSpace(rest)
			}
		}
	}

	// Deferred calls are exempt from the "unlock releases the lock"
	// bookkeeping: defer mu.Unlock() runs at return, after every call in
	// the body.
	deferred := map[*ast.CallExpr]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if ds, ok := n.(*ast.DeferStmt); ok {
			deferred[ds.Call] = true
		}
		return true
	})

	// All Lock/Unlock events in the body, keyed by the text of the mutex
	// expression they act on.
	type lockEvent struct {
		pos  token.Pos
		lock bool
	}
	events := map[string][]lockEvent{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Lock":
			mu := types.ExprString(sel.X)
			events[mu] = append(events[mu], lockEvent{pos: call.Pos(), lock: true})
		case "Unlock":
			if !deferred[call] {
				mu := types.ExprString(sel.X)
				events[mu] = append(events[mu], lockEvent{pos: call.Pos(), lock: false})
			}
		}
		return true
	})
	heldAt := func(mu string, pos token.Pos) bool {
		held := false
		for _, ev := range events[mu] {
			if ev.pos >= pos {
				break
			}
			held = ev.lock
		}
		return held
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(pass, call)
		if callee == nil {
			return true
		}
		ann, ok := annotated[callee]
		if !ok {
			return true
		}
		// The lock the callee requires, in the caller's naming: the
		// callee's receiver is whatever expression the call selects on.
		required := ann.recv + "." + ann.path
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			required = types.ExprString(sel.X) + "." + ann.path
		}
		if callerLock == required {
			return true
		}
		if heldAt(required, call.Pos()) {
			return true
		}
		pass.Reportf(call.Pos(), "call to %s requires %s held (annotate the caller '// locked: %s' or take the lock first)",
			callee.Name(), required, required)
		return true
	})
}

// recvName returns the name of fd's receiver, or "" for plain functions.
func recvName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}
