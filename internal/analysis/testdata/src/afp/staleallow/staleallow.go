// Package staleallow is the golden fixture for stale //vet:allow
// detection: a directive that suppresses nothing is itself a finding.
package staleallow

func compare(a, b float64) bool {
	//vet:allow toleq -- fixture: intentionally suppressed finding
	return a == b
}

func clean(a, b float64) bool {
	//vet:allow toleq -- fixture: nothing to suppress // want `//vet:allow suppresses no findings`
	return a < b
}

func unrelated(a, b float64) bool {
	//vet:allow ctxsolve -- fixture: that analyzer is not in this run, so staleness is unknowable
	return a < b
}
