// Package obs is a reduced stub of the repository's telemetry package,
// just enough for the obsevent analyzer fixtures: the analyzer matches
// the Event type by name and by the internal/obs path suffix, so this
// stub exercises exactly the production matching logic.
package obs

// Kind identifies the event type.
type Kind string

// Stub event kinds.
const (
	KindLPSolve  Kind = "lp.solve"
	KindNodeOpen Kind = "node.open"
)

// Event is the flat telemetry record.
type Event struct {
	T     int64
	Kind  Kind
	Node  int
	Iters int
	Obj   float64
	Gap   float64
}

// Observer forwards events.
type Observer struct{}

// Emit consumes one event.
func (o *Observer) Emit(e Event) {}
