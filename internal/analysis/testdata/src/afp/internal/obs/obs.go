// Package obs is a reduced stub of the repository's telemetry package,
// just enough for the obsevent analyzer fixtures: the analyzer matches
// the Event type by name and by the internal/obs path suffix, so this
// stub exercises exactly the production matching logic.
package obs

// Kind identifies the event type.
type Kind string

// Stub event kinds.
const (
	KindLPSolve  Kind = "lp.solve"
	KindNodeOpen Kind = "node.open"
)

// Event is the flat telemetry record.
type Event struct {
	T     int64
	Kind  Kind
	Node  int
	Iters int
	Obj   float64
	Gap   float64
}

// Observer forwards events.
type Observer struct{}

// Emit consumes one event.
func (o *Observer) Emit(e Event) {}

// SpanAttrs are optional span attributes.
type SpanAttrs struct {
	Step   int
	Worker int
	Detail string
}

// Span is a stub span.
type Span struct{}

// End closes the span.
func (sp *Span) End() {}

// StartSpan opens a span (ctx is stubbed as any).
func (o *Observer) StartSpan(ctx any, name string) (any, *Span) { return ctx, nil }

// StartSpanAttrs is StartSpan with attributes.
func (o *Observer) StartSpanAttrs(ctx any, name string, a SpanAttrs) (any, *Span) { return ctx, nil }

// Do runs f inside a span.
func (o *Observer) Do(ctx any, name string, a SpanAttrs, f func(any)) {}

// Metrics is a stub metrics registry.
type Metrics struct{}

// Observe records one histogram observation.
func (m *Metrics) Observe(name string, v float64) {}
