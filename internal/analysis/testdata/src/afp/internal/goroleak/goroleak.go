// Package goroleak is the golden fixture for the goroleak analyzer;
// it lives under an internal/ path segment because that is the
// analyzer's scope.
package goroleak

import (
	"context"
	"sync"
)

func leak() {
	go func() { // want `goroutine has no provable join path`
		println("orphan")
	}()
}

func withContext(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

func withWaitGroup(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		println("worker")
	}()
}

func withCloseSignal(done chan struct{}, work chan int) {
	go func() {
		for {
			select {
			case <-done:
				return
			case v := <-work:
				_ = v
			}
		}
	}()
}

func viaArgs(ctx context.Context) {
	go run(ctx)
}

func run(ctx context.Context) { <-ctx.Done() }

func namedLeak() {
	go orphan() // want `goroutine has no provable join path`
}

func orphan() { println("nobody joins") }

func rangeJoin(jobs chan int) {
	go func() {
		for j := range jobs {
			_ = j
		}
	}()
}

func closer(done chan struct{}) {
	go func() {
		close(done)
	}()
}
