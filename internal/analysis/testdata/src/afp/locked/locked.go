// Package locked is the golden fixture for the locked analyzer.
package locked

import "sync"

type pool struct {
	mu sync.Mutex
	n  int
}

// commit applies one node-count delta to the shared tally.
// locked: p.mu
func (p *pool) commit(d int) { p.n += d }

// relay forwards to commit while itself running under the lock.
// locked: p.mu
func (p *pool) relay() { p.commit(3) } // ok: caller carries the same annotation

func (p *pool) deferred() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.commit(1) // ok: lock taken above, unlock deferred
}

func (p *pool) bracket() {
	p.mu.Lock()
	p.commit(1) // ok: inside the Lock/Unlock bracket
	p.mu.Unlock()
	p.commit(2) // want `call to commit requires p.mu held`
}

func (p *pool) bad() {
	p.commit(4) // want `call to commit requires p.mu held`
	p.relay()   // want `call to relay requires p.mu held`
}

func (p *pool) wrongLock(other *pool) {
	other.mu.Lock()
	defer other.mu.Unlock()
	p.commit(5) // want `call to commit requires p.mu held`
}
