// Package locked is the golden fixture for the locked analyzer.
package locked

import "sync"

type pool struct {
	mu sync.Mutex
	n  int
}

// commit applies one node-count delta to the shared tally.
// locked: p.mu
func (p *pool) commit(d int) { p.n += d }

// relay forwards to commit while itself running under the lock.
// locked: p.mu
func (p *pool) relay() { p.commit(3) } // ok: caller carries the same annotation

func (p *pool) deferred() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.commit(1) // ok: lock taken above, unlock deferred
}

func (p *pool) bracket() {
	p.mu.Lock()
	p.commit(1) // ok: inside the Lock/Unlock bracket
	p.mu.Unlock()
	p.commit(2) // want `call to commit requires p.mu held`
}

func (p *pool) bad() {
	p.commit(4) // want `call to commit requires p.mu held`
	p.relay()   // want `call to relay requires p.mu held`
}

func (p *pool) wrongLock(other *pool) {
	other.mu.Lock()
	defer other.mu.Unlock()
	p.commit(5) // want `call to commit requires p.mu held`
}

// drain zeroes the tally of the pool passed in; the annotation names a
// parameter instead of a receiver.
// locked: q.mu
func drain(q *pool) { q.n = 0 }

func callsDrain(p *pool) {
	drain(p) // want `call to drain requires p.mu held`
	p.mu.Lock()
	drain(p) // ok: the argument's lock is held
	p.mu.Unlock()
}

var regMu sync.Mutex

// flush assumes the package-level registry mutex.
// locked: regMu
func flush() {}

func callsFlush() {
	flush() // want `call to flush requires regMu held`
	regMu.Lock()
	flush() // ok: the package mutex is held
	regMu.Unlock()
}

// audit demands any lock of the pool class, whichever instance.
// locked: locked.pool.mu
func audit() {}

func callsAudit(p *pool) {
	audit() // want `call to audit requires a lock with identity locked.pool.mu held`
	p.mu.Lock()
	audit() // ok: p.mu carries the identity locked.pool.mu
	p.mu.Unlock()
}
