// Package toleq is the golden fixture for the toleq analyzer.
package toleq

import "math"

const half = 0.5

func compare(a, b float64, n int) bool {
	if a == b { // want `exact float64 == comparison; use geom.Eq or justify with //vet:allow toleq`
		return true
	}
	if a != b*2 { // want `exact float64 != comparison`
		return false
	}
	if float64(n) == a { // want `exact float64 == comparison`
		return false
	}
	if a == 0 { // ok: constant comparand is exact by construction
		return false
	}
	if b != half { // ok: named constant
		return false
	}
	if a == math.Inf(1) { // ok: infinity sentinel
		return false
	}
	if a == b { //vet:allow toleq -- fixture for the suppression mechanism
		return true
	}
	return a < b // ok: ordering comparisons are not flagged
}
