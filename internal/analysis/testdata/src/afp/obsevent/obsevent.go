// Package obsevent is the golden fixture for the obsevent analyzer. The
// test instantiates the analyzer with a registry containing lp.solve
// (Iters, Obj) and node.open (Node).
package obsevent

import "afp/internal/obs"

func emit(o *obs.Observer) {
	o.Emit(obs.Event{Kind: obs.KindLPSolve, Iters: 3, Obj: 1.5}) // ok: registered kind and fields
	o.Emit(obs.Event{Kind: obs.KindNodeOpen, Node: 1})           // ok
	o.Emit(obs.Event{Kind: "node.opne", Node: 1})                // want `unknown obs event kind "node.opne"`
	o.Emit(obs.Event{Kind: obs.KindLPSolve, Node: 1})            // want `field Node is not in the registered schema for obs event kind "lp.solve"`
	o.Emit(obs.Event{Iters: 9})                                  // ok: no constant kind to check against
}

func spansAndHists(o *obs.Observer, m *obs.Metrics) {
	o.StartSpan(nil, "solve")                                 // ok: registered span
	o.StartSpanAttrs(nil, "step", obs.SpanAttrs{Step: 1})     // ok
	o.Do(nil, "bb", obs.SpanAttrs{}, func(any) {})            // ok
	o.StartSpan(nil, "slove")                                 // want `span name "slove" is not in the generated span registry`
	o.Do(nil, "bbb", obs.SpanAttrs{}, func(any) {})           // want `span name "bbb" is not in the generated span registry`
	m.Observe("lp_solve_us", 12)                              // ok: registered histogram
	m.Observe("lp_solve_ms", 12)                              // want `histogram name "lp_solve_ms" is not in the generated histogram registry`
	name := dynamicName()
	o.StartSpan(nil, name) // ok: dynamic names pass unchecked
	m.Observe(name, 1)     // ok: dynamic names pass unchecked
}

func dynamicName() string { return "x" }
