// Package obsevent is the golden fixture for the obsevent analyzer. The
// test instantiates the analyzer with a registry containing lp.solve
// (Iters, Obj) and node.open (Node).
package obsevent

import "afp/internal/obs"

func emit(o *obs.Observer) {
	o.Emit(obs.Event{Kind: obs.KindLPSolve, Iters: 3, Obj: 1.5}) // ok: registered kind and fields
	o.Emit(obs.Event{Kind: obs.KindNodeOpen, Node: 1})           // ok
	o.Emit(obs.Event{Kind: "node.opne", Node: 1})                // want `unknown obs event kind "node.opne"`
	o.Emit(obs.Event{Kind: obs.KindLPSolve, Node: 1})            // want `field Node is not in the registered schema for obs event kind "lp.solve"`
	o.Emit(obs.Event{Iters: 9})                                  // ok: no constant kind to check against
}
