// Package guardedby is the golden fixture for the guardedby analyzer.
package guardedby

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
	s  string
}

type registry struct {
	mu   sync.RWMutex
	m    map[string]int // guarded by mu
	lost int            // guarded by guardedby.counter.mu
}

var (
	tableMu sync.Mutex
	table   = map[string]int{} // guarded by tableMu
)

func (c *counter) bracket() {
	c.mu.Lock()
	c.n++ // ok: inside the Lock/Unlock bracket
	c.mu.Unlock()
	c.n-- // want `access to c.n requires c.mu held`
}

func (c *counter) deferred() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n // ok: lock taken above, unlock deferred
}

func (c *counter) free() {
	c.s = "x" // ok: s is not guarded
	c.n = 1   // want `access to c.n requires c.mu held`
}

// precondition documents its lock contract instead of taking the lock.
// locked: c.mu
func (c *counter) precondition() int { return c.n } // ok: annotation holds the guard

func (c *counter) wrongInstance(o *counter) {
	o.mu.Lock()
	defer o.mu.Unlock()
	c.n++ // want `access to c.n requires c.mu held`
	o.n++ // ok: o.mu is held and n was selected from o
}

func (r *registry) rlocked(k string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.m[k] // ok: a read lock counts as held
}

func (r *registry) external(c *counter) {
	c.mu.Lock()
	r.lost++ // ok: a lock with identity guardedby.counter.mu is held
	c.mu.Unlock()
	r.lost-- // want `access to r.lost requires a lock with identity guardedby.counter.mu held`
}

func (c *counter) earlyExit(limit int) int {
	c.mu.Lock()
	if c.n > limit {
		c.mu.Unlock()
		return limit
	}
	v := c.n // ok: the early-exit unlock left this path still locked
	c.mu.Unlock()
	return v
}

func newCounter() *counter {
	c := &counter{}
	c.n = 7 // ok: constructor hatch, c has not escaped yet
	return c
}

func leakyConstructor(sink chan<- *counter) {
	c := &counter{}
	sink <- c
	c.n = 9 // want `access to c.n requires c.mu held`
}

var initOnce sync.Once

func (c *counter) lazyInit() {
	initOnce.Do(func() {
		c.n = 1 // ok: once.Do provides the happens-before
	})
}

func (c *counter) spawn() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.n++ // want `access to c.n requires c.mu held`
	}()
}

func global() {
	tableMu.Lock()
	table["a"] = 1 // ok: the package mutex is held
	tableMu.Unlock()
	table["b"] = 2 // want `access to table requires tableMu held`
}
