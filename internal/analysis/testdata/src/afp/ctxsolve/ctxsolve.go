// Package ctxsolve is the golden fixture for the ctxsolve analyzer.
package ctxsolve

import "context"

// Solver has the Solve/SolveCtx sibling pair the analyzer looks for.
type Solver struct{}

// Solve is the designated non-Ctx bridge: minting a root context here
// is the one legitimate place outside main.
func (s *Solver) Solve() int { return s.SolveCtx(context.Background()) }

// SolveCtx is the context-threading variant.
func (s *Solver) SolveCtx(ctx context.Context) int {
	_ = ctx
	return 0
}

// Run and RunCtx are a package-level sibling pair.
func Run() int { return 0 }

// RunCtx is the context-threading variant of Run.
func RunCtx(ctx context.Context) int {
	_ = ctx
	return 0
}

func useHeld(ctx context.Context, s *Solver) {
	_ = s.Solve()               // want `call SolveCtx and pass the context in hand instead of Solve`
	_ = Run()                   // want `call RunCtx and pass the context in hand instead of Run`
	_ = context.Background()    // want `context.Background in a function that already has a context.Context parameter`
	_ = s.SolveCtx(ctx)         // ok: the context is threaded
	_ = RunCtx(context.TODO())  // want `context.TODO in a function that already has a context.Context parameter`
}

func noCtx(s *Solver) {
	_ = context.TODO() // want `context.TODO outside main or a Ctx bridge; thread a context.Context instead`
	_ = s.Solve()      // ok: no context in hand here
}

func allowedRoot() context.Context {
	return context.Background() //vet:allow ctxsolve -- fixture for the suppression mechanism
}
