// Package lockorder is the golden fixture for the lockorder analyzer:
// it seeds a two-lock cycle, a double lock, a summary-propagated edge
// and a declared edge.
package lockorder

import "sync"

type a struct {
	mu sync.Mutex
}

type b struct {
	mu sync.Mutex
}

type c struct {
	mu sync.Mutex
}

func forward(x *a, y *b) {
	x.mu.Lock()
	defer x.mu.Unlock()
	y.mu.Lock() // want `lock-order cycle: lockorder.a.mu -> lockorder.b.mu -> lockorder.a.mu`
	y.mu.Unlock()
}

func backward(x *a, y *b) {
	y.mu.Lock()
	defer y.mu.Unlock()
	x.mu.Lock()
	x.mu.Unlock()
}

func double(x *a) {
	x.mu.Lock()
	x.mu.Lock() // want `lock x.mu acquired while already held \(double lock\)`
	x.mu.Unlock()
	x.mu.Unlock()
}

// helper's lock footprint flows into viaCall's summary-based edge.
func (v *c) helper() {
	v.mu.Lock()
	v.mu.Unlock()
}

func viaCall(x *a, v *c) {
	x.mu.Lock()
	v.helper() // records lockorder.a.mu -> lockorder.c.mu through the summary
	x.mu.Unlock()
}

// lockorder: lockorder.c.mu -> lockorder.b.mu -- declared edge for the dump test
