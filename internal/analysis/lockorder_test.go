package analysis_test

import (
	"strings"
	"testing"

	"afp/internal/analysis"
)

func TestLockOrder(t *testing.T) {
	lo := analysis.NewLockOrder()
	analysis.RunTest(t, "testdata", "afp/lockorder", lo.Analyzer())

	dump := lo.Dump()
	for _, edge := range []string{
		"lockorder.a.mu -> lockorder.b.mu",
		"lockorder.b.mu -> lockorder.a.mu",
		"lockorder.a.mu -> lockorder.c.mu",             // via the helper summary
		"lockorder.c.mu -> lockorder.b.mu  (declared)", // from the comment
	} {
		if !strings.Contains(dump, edge) {
			t.Errorf("Dump missing edge %q:\n%s", edge, dump)
		}
	}
}

func TestLockOrderDumpDeterministic(t *testing.T) {
	var dumps [2]string
	for i := range dumps {
		lo := analysis.NewLockOrder()
		analysis.RunTest(t, "testdata", "afp/lockorder", lo.Analyzer())
		dumps[i] = lo.Dump()
	}
	if dumps[0] != dumps[1] {
		t.Errorf("Dump is not deterministic:\n%s\nvs\n%s", dumps[0], dumps[1])
	}
}
