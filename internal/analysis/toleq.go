package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// TolEq flags exact == and != comparisons between float64 expressions.
// Solver output carries simplex rounding noise, so exact float equality
// is almost always a latent bug; comparisons must go through the geom
// tolerance helpers (geom.Eq and friends, built on geom.Tol).
//
// Two comparisons stay legal without suppression because they are exact
// by construction:
//
//   - comparisons against a constant (x == 0 skips a structurally zero
//     coefficient; branch-and-bound compares bounds it assigned itself
//     to literal integers), and
//   - comparisons against math.Inf(...), since infinities are exact
//     sentinel values, not computed quantities.
//
// Everything else needs either a geom helper or an explicit
// //vet:allow toleq -- reason (e.g. tie-breaking a sort on values that
// were never arithmetically derived).
//
// Raw < and <= ordering comparisons are deliberately not flagged: an
// ordering between two noisy floats is well-defined (at worst the
// outcome near a tie is arbitrary, which a tolerance cannot fix either),
// and the simplex pivot loops legitimately manage their own explicit
// epsilons. See DESIGN.md section 11.
var TolEq = &Analyzer{
	Name: "toleq",
	Doc:  "no exact ==/!= between computed float64 expressions; use geom.Tol helpers",
	Run:  runTolEq,
}

func runTolEq(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isComputedFloat(pass, be.X) || !isComputedFloat(pass, be.Y) {
				return true
			}
			pass.Reportf(be.Pos(), "exact float64 %s comparison; use geom.Eq or justify with //vet:allow toleq", be.Op)
			return true
		})
	}
	return nil
}

// isComputedFloat reports whether e is a float64-typed expression that
// is neither a compile-time constant nor an infinity sentinel.
func isComputedFloat(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value != nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	if !ok || basic.Kind() != types.Float64 {
		return false
	}
	return !isInfCall(pass, e)
}

// isInfCall reports whether e is a call to math.Inf.
func isInfCall(pass *Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	f, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return ok && f.Pkg() != nil && f.Pkg().Path() == "math" && f.Name() == "Inf"
}
