package analysis

import (
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// allowRe matches suppression comments. A finding is suppressed when the
// line it is reported on, or the line directly above it, carries a
// comment of the form
//
//	//vet:allow <analyzer>[,<analyzer>...] -- reason
//
// The reason is mandatory by convention (reviewed, not enforced); the
// analyzer list is matched by name. The comment must start with the
// directive — mentioning //vet:allow mid-comment does not suppress.
var allowRe = regexp.MustCompile(`^//vet:allow\s+([A-Za-z0-9_,]+)`)

// StaleAllowName is the pseudo-analyzer name under which unused
// //vet:allow comments are reported. It is not itself suppressible: a
// stale allow is by definition dead text, so the only fix is removal.
const StaleAllowName = "staleallow"

// allowComment is one //vet:allow directive, tracked across the whole
// run so that directives which suppress nothing can be reported stale.
type allowComment struct {
	pos      token.Pos
	position token.Position
	names    map[string]bool
	used     bool
}

func (c *allowComment) covers(analyzer string) bool {
	return c.names[analyzer] || c.names["all"]
}

// Run applies every analyzer to every package and returns the surviving
// diagnostics sorted by position. Suppressed findings are dropped;
// packages with type errors are analyzed anyway (the caller decides
// whether type errors are fatal). Packages must arrive in dependency
// order (dependencies before dependents), which is how Load returns
// them; stateful analyzers with a Finish hook rely on it.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	allowed := suppressions(pkgs)
	suppress := func(d Diagnostic) bool {
		for _, line := range []int{d.Position.Line - 1, d.Position.Line} {
			for _, c := range allowed[posKey{d.Position.Filename, line}] {
				if c.covers(d.Analyzer) {
					c.used = true
					return true
				}
			}
		}
		return false
	}

	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			pass.report = func(d Diagnostic) {
				if !suppress(d) {
					diags = append(diags, d)
				}
			}
			if err := a.Run(pass); err != nil {
				return nil, err
			}
		}
	}
	for _, a := range analyzers {
		if a.Finish == nil {
			continue
		}
		for _, d := range a.Finish() {
			d.Analyzer = a.Name
			if !suppress(d) {
				diags = append(diags, d)
			}
		}
	}

	// Stale-suppression pass: an allow comment whose analyzers all ran
	// yet which suppressed nothing is itself a finding, so swept fixes
	// cannot leave dead allows behind.
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	for _, comments := range allowed {
		for _, c := range comments {
			if c.used {
				continue
			}
			checkable := true
			for n := range c.names {
				if n != "all" && !ran[n] {
					checkable = false
				}
			}
			if !checkable {
				continue
			}
			diags = append(diags, Diagnostic{
				Pos:      c.pos,
				Position: c.position,
				Analyzer: StaleAllowName,
				Message:  "//vet:allow suppresses no findings; remove the stale directive",
			})
		}
	}

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Position, diags[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

type posKey struct {
	file string
	line int
}

// suppressions indexes every //vet:allow comment by source line. A
// comment on line L suppresses findings on L and on L+1, so both
// trailing and preceding placements work; the index is keyed by the
// comment's own line and consulted for both.
func suppressions(pkgs []*Package) map[posKey][]*allowComment {
	out := map[posKey][]*allowComment{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := allowRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					names := map[string]bool{}
					for _, n := range strings.Split(m[1], ",") {
						names[strings.TrimSpace(n)] = true
					}
					ac := &allowComment{
						pos:      c.Pos(),
						position: pkg.Fset.Position(c.Pos()),
						names:    names,
					}
					k := posKey{ac.position.Filename, ac.position.Line}
					out[k] = append(out[k], ac)
				}
			}
		}
	}
	return out
}
