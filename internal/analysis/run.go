package analysis

import (
	"regexp"
	"sort"
	"strings"
)

// allowRe matches suppression comments. A finding is suppressed when the
// line it is reported on, or the line directly above it, carries a
// comment of the form
//
//	//vet:allow <analyzer>[,<analyzer>...] -- reason
//
// The reason is mandatory by convention (reviewed, not enforced); the
// analyzer list is matched by name. The comment must start with the
// directive — mentioning //vet:allow mid-comment does not suppress.
var allowRe = regexp.MustCompile(`^//vet:allow\s+([A-Za-z0-9_,]+)`)

// Run applies every analyzer to every package and returns the surviving
// diagnostics sorted by position. Suppressed findings are dropped;
// packages with type errors are analyzed anyway (the caller decides
// whether type errors are fatal).
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		allowed := suppressions(pkg)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			pass.report = func(d Diagnostic) {
				if names, ok := allowed[posKey{d.Position.Filename, d.Position.Line}]; ok {
					if names[a.Name] || names["all"] {
						return
					}
				}
				diags = append(diags, d)
			}
			if err := a.Run(pass); err != nil {
				return nil, err
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Position, diags[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

type posKey struct {
	file string
	line int
}

// suppressions maps source lines to the analyzer names allowed there. A
// comment on line L suppresses findings on L and on L+1, so both
// trailing and preceding placements work.
func suppressions(pkg *Package) map[posKey]map[string]bool {
	out := map[posKey]map[string]bool{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				names := map[string]bool{}
				for _, n := range strings.Split(m[1], ",") {
					names[strings.TrimSpace(n)] = true
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, line := range []int{pos.Line, pos.Line + 1} {
					k := posKey{pos.Filename, line}
					if out[k] == nil {
						out[k] = map[string]bool{}
					}
					for n := range names {
						out[k][n] = true
					}
				}
			}
		}
	}
	return out
}
