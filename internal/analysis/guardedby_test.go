package analysis_test

import (
	"testing"

	"afp/internal/analysis"
)

func TestGuardedBy(t *testing.T) {
	analysis.RunTest(t, "testdata", "afp/guardedby", analysis.GuardedBy)
}
