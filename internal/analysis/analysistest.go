package analysis

import (
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// RunTest is the golden-test driver, mirroring
// golang.org/x/tools/go/analysis/analysistest.Run: it loads pkgPath from
// the GOPATH-shaped fixture tree rooted at gopath (sources under
// gopath/src/...), applies the analyzers, and matches the resulting
// diagnostics against `// want "regexp"` comments in the fixture source.
// Each want comment expects one diagnostic on its own line whose message
// matches the (Go-quoted or backquoted) regular expression; several
// expectations may share a line. Unmatched expectations and unexpected
// diagnostics both fail the test.
func RunTest(t *testing.T, gopath string, pkgPath string, analyzers ...*Analyzer) {
	t.Helper()
	abs, err := filepath.Abs(gopath)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	cfg := LoadConfig{
		Dir: filepath.Join(abs, "src", pkgPath),
		Env: []string{"GOPATH=" + abs, "GO111MODULE=off", "GOFLAGS="},
	}
	pkgs, err := Load(cfg, pkgPath)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("analysistest: fixture does not type-check: %v", terr)
		}
	}
	if t.Failed() {
		return
	}

	diags, err := Run(pkgs, analyzers)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}

	expects := wantComments(t, pkgs)
	matched := make([]bool, len(expects))
	for _, d := range diags {
		ok := false
		for i, e := range expects {
			if matched[i] || e.file != d.Position.Filename || e.line != d.Position.Line {
				continue
			}
			if e.re.MatchString(d.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for i, e := range expects {
		if !matched[i] {
			t.Errorf("%s:%d: no diagnostic matching %q", e.file, e.line, e.re)
		}
	}
}

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
}

var wantRe = regexp.MustCompile(`// want (.*)$`)

// wantComments extracts the `// want` expectations from fixture source.
func wantComments(t *testing.T, pkgs []*Package) []expectation {
	t.Helper()
	var out []expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					for _, pat := range splitQuoted(t, pos, m[1]) {
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
						}
						out = append(out, expectation{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}
	return out
}

// splitQuoted parses a sequence of Go-quoted strings: `"a" "b"`.
func splitQuoted(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		quote := s[0]
		if quote != '"' && quote != '`' {
			t.Fatalf("%s: want expectation must be a quoted string, got %q", pos, s)
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			t.Fatalf("%s: unterminated want pattern %q", pos, s)
		}
		lit := s[:end+2]
		unq, err := strconv.Unquote(lit)
		if err != nil {
			t.Fatalf("%s: bad want pattern %s: %v", pos, lit, err)
		}
		out = append(out, unq)
		s = strings.TrimSpace(s[end+2:])
	}
	if len(out) == 0 {
		t.Fatalf("%s: want comment with no patterns", pos)
	}
	return out
}
