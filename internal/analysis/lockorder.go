package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// LockOrder builds the static lock-acquisition graph across every
// analyzed package and fails on cycles. A directed edge A -> B (by
// canonical lock identity, see lockstate.go) is recorded when
//
//   - a body lexically acquires lock B while lock A is held (taken in
//     the body, or a `// locked:` precondition), or
//
//   - a body calls, while holding A, a function whose transitive
//     summary says it acquires B — summaries are keyed by the callee's
//     full name and accumulated in package dependency order, which is
//     how cross-package edges like server.store.mu -> server.Job.mu
//     surface without whole-program pointer analysis, or
//
//   - a source comment declares the edge explicitly:
//
//     // lockorder: milp.psolver.mu -> portfolio.Board.mu -- reason
//
//     for orderings routed through function values or interfaces the
//     static summaries cannot see (e.g. obs.Observer sinks).
//
// Re-acquiring the lexically identical lock expression is reported
// immediately as a double lock. Cycles — including self-edges, which
// mean two instances of one lock class nest — are reported from the
// Finish hook once every package has contributed. The blessed graph is
// committed as a golden dump (internal/analysis/testdata/
// lockorder.golden); cmd/floorplanvet compares Dump() against it so a
// new edge is always a reviewed diff. Regenerate with `make lockgraph`.
//
// Use NewLockOrder for each run: the analyzer accumulates state across
// passes and is not reusable.
type LockOrder struct {
	edges     map[[2]string]*lockEdge
	summaries map[string][]string // func full name -> acquired identities
}

// lockEdge records where one ordered pair was first observed.
type lockEdge struct {
	from, to string
	pos      token.Pos
	position token.Position
	declared bool
}

// NewLockOrder returns a fresh lock-order analyzer instance.
func NewLockOrder() *LockOrder {
	return &LockOrder{
		edges:     map[[2]string]*lockEdge{},
		summaries: map[string][]string{},
	}
}

// Analyzer exposes the instance as a driver-runnable Analyzer.
func (lo *LockOrder) Analyzer() *Analyzer {
	return &Analyzer{
		Name:   "lockorder",
		Doc:    "the cross-package lock-acquisition graph is acyclic; identical locks are never re-acquired",
		Run:    lo.run,
		Finish: lo.finish,
	}
}

// declaredEdgeRe matches explicit edge declarations; the justification
// after " -- " is mandatory by convention, like //vet:allow reasons.
var declaredEdgeRe = regexp.MustCompile(`^// lockorder: (\S+) -> (\S+)(?: -- .+)?$`)

func (lo *LockOrder) run(pass *Pass) error {
	for _, file := range pass.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				m := declaredEdgeRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				if m[1] == m[2] {
					pass.Reportf(c.Pos(), "declared lock-order edge %s -> %s is a self-loop", m[1], m[2])
					continue
				}
				lo.addEdge(pass, m[1], m[2], c.Pos(), true)
			}
		}
	}

	scopes := collectLockScopes(pass)
	lo.summarize(pass, scopes)
	for _, scope := range scopes {
		lo.scanScope(pass, scope)
	}
	return nil
}

// summarize computes, for every function declared in this package, the
// set of lock identities it may acquire transitively, and publishes
// them under the function's full name. Cross-package callees resolve
// against summaries from already-analyzed packages (Load returns
// dependencies first); unknown callees contribute nothing. Goroutine
// literals are excluded — a spawned goroutine's acquisitions do not
// happen while the caller runs.
func (lo *LockOrder) summarize(pass *Pass, scopes []*lockScope) {
	var fns []*fnData
	local := map[string]*fnData{}
	for _, scope := range scopes {
		if scope.decl == nil || scope.goLit {
			continue
		}
		obj, ok := pass.TypesInfo.Defs[scope.decl.Name].(*types.Func)
		if !ok {
			continue
		}
		fn := &fnData{name: obj.FullName(), acquires: map[string]bool{}}
		for _, ev := range scope.events {
			if ev.acquire && ev.id != "" {
				fn.acquires[ev.id] = true
			}
		}
		walkSkipping(scope.body, scope.skip, func(n ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			if callee := calleeFunc(pass, call); callee != nil {
				fn.callees = append(fn.callees, callee.FullName())
			}
		})
		fns = append(fns, fn)
		local[fn.name] = fn
	}
	// Fixpoint within the package (mutual recursion converges in a few
	// rounds); external callees are already final in lo.summaries.
	for changed := true; changed; {
		changed = false
		for _, fn := range fns {
			for _, callee := range fn.callees {
				for _, id := range lo.lookupSummary(callee, local) {
					if !fn.acquires[id] {
						fn.acquires[id] = true
						changed = true
					}
				}
			}
		}
	}
	for _, fn := range fns {
		ids := make([]string, 0, len(fn.acquires))
		for id := range fn.acquires {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		lo.summaries[fn.name] = ids
	}
}

// fnData is one declared function's direct lock footprint while the
// package-local fixpoint runs.
type fnData struct {
	name     string
	acquires map[string]bool
	callees  []string
}

func (lo *LockOrder) lookupSummary(name string, local map[string]*fnData) []string {
	if fn, ok := local[name]; ok {
		ids := make([]string, 0, len(fn.acquires))
		for id := range fn.acquires {
			ids = append(ids, id)
		}
		return ids
	}
	return lo.summaries[name]
}

// scanScope replays one body's lock events and call sites in source
// order, recording edges from every held lock to every newly acquired
// one and flagging same-expression re-acquisition.
func (lo *LockOrder) scanScope(pass *Pass, scope *lockScope) {
	type site struct {
		pos    token.Pos
		callee string
	}
	var calls []site
	walkSkipping(scope.body, scope.skip, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		if callee := calleeFunc(pass, call); callee != nil {
			calls = append(calls, site{pos: call.Pos(), callee: callee.FullName()})
		}
	})
	sort.Slice(calls, func(i, j int) bool { return calls[i].pos < calls[j].pos })

	events := scope.events // already position-ordered by the AST walk
	ci := 0
	held := append([]heldLock(nil), scope.ann...)
	heldExpr := map[string]int{} // expr -> index in held, for releases
	for i, h := range held {
		if h.expr != "" {
			heldExpr[h.expr] = i
		}
	}
	flush := func(upto token.Pos) {
		for ci < len(calls) && calls[ci].pos < upto {
			c := calls[ci]
			ci++
			for _, acquired := range lo.summaries[c.callee] {
				for _, h := range held {
					if h.id != "" && h.id != acquired {
						lo.addEdge(pass, h.id, acquired, c.pos, false)
					}
				}
			}
		}
	}
	for _, ev := range events {
		flush(ev.pos)
		if ev.acquire {
			for _, h := range held {
				if h.expr == ev.expr && ev.expr != "" {
					pass.Reportf(ev.pos, "lock %s acquired while already held (double lock)", ev.expr)
				} else if h.id != "" && ev.id != "" {
					lo.addEdge(pass, h.id, ev.id, ev.pos, false)
				}
			}
			if _, dup := heldExpr[ev.expr]; !dup {
				heldExpr[ev.expr] = len(held)
				held = append(held, heldLock{expr: ev.expr, id: ev.id})
			}
		} else if idx, ok := heldExpr[ev.expr]; ok {
			// Release: drop the expression (annotation preconditions
			// are index < len(scope.ann) and stay).
			if idx >= len(scope.ann) {
				held = append(held[:idx], held[idx+1:]...)
				delete(heldExpr, ev.expr)
				for e, j := range heldExpr {
					if j > idx {
						heldExpr[e] = j - 1
					}
				}
			}
		}
	}
	flush(token.Pos(1 << 60))
}

// addEdge records one ordered pair, keeping the first position seen.
// Self-edges (two instances of one class nesting) are kept: they are
// cycles of length one and surface in finish.
func (lo *LockOrder) addEdge(pass *Pass, from, to string, pos token.Pos, declared bool) {
	key := [2]string{from, to}
	if e, ok := lo.edges[key]; ok {
		// A declared edge supersedes nothing; keep the earliest record,
		// but remember that the pair is auto-observed too.
		if declared {
			return
		}
		if e.declared {
			e.declared = false // observed in code as well; report positions from code
			e.pos = pos
			e.position = pass.Fset.Position(pos)
		}
		return
	}
	lo.edges[key] = &lockEdge{
		from:     from,
		to:       to,
		pos:      pos,
		position: pass.Fset.Position(pos),
		declared: declared,
	}
}

// finish reports cycles in the accumulated graph, one diagnostic per
// distinct cycle, positioned at the first recorded edge on the cycle.
func (lo *LockOrder) finish() []Diagnostic {
	adj := map[string][]string{}
	nodes := map[string]bool{}
	for key := range lo.edges {
		adj[key[0]] = append(adj[key[0]], key[1])
		nodes[key[0]], nodes[key[1]] = true, true
	}
	for _, succ := range adj {
		sort.Strings(succ)
	}
	var order []string
	for n := range nodes {
		order = append(order, n)
	}
	sort.Strings(order)

	var diags []Diagnostic
	seen := map[string]bool{}
	report := func(cycle []string) {
		canon := canonicalCycle(cycle)
		if seen[canon] {
			return
		}
		seen[canon] = true
		e := lo.edges[[2]string{cycle[0], cycle[1]}]
		for i := 0; i+1 < len(cycle); i++ {
			if c := lo.edges[[2]string{cycle[i], cycle[i+1]}]; c.pos < e.pos {
				e = c
			}
		}
		diags = append(diags, Diagnostic{
			Pos:      e.pos,
			Position: e.position,
			Message:  fmt.Sprintf("lock-order cycle: %s", strings.Join(cycle, " -> ")),
		})
	}

	state := map[string]int{} // 0 unvisited, 1 on stack, 2 done
	var stack []string
	var dfs func(n string)
	dfs = func(n string) {
		state[n] = 1
		stack = append(stack, n)
		for _, m := range adj[n] {
			switch state[m] {
			case 0:
				dfs(m)
			case 1:
				// Back edge: the cycle is the stack suffix from m.
				for i := len(stack) - 1; i >= 0; i-- {
					if stack[i] == m {
						cycle := append(append([]string(nil), stack[i:]...), m)
						report(cycle)
						break
					}
				}
			}
		}
		stack = stack[:len(stack)-1]
		state[n] = 2
	}
	for _, n := range order {
		if state[n] == 0 {
			dfs(n)
		}
	}
	return diags
}

// canonicalCycle rotates a closed walk (first == last) to start at its
// smallest node so equivalent cycles dedupe.
func canonicalCycle(cycle []string) string {
	body := cycle[:len(cycle)-1]
	min := 0
	for i := range body {
		if body[i] < body[min] {
			min = i
		}
	}
	rotated := append(append([]string(nil), body[min:]...), body[:min]...)
	return strings.Join(rotated, " -> ")
}

// Dump renders the accumulated graph as sorted "A -> B" lines, the
// format of the committed golden file. Declared edges are marked so
// reviewers can tell blessed-by-comment orderings from observed ones.
func (lo *LockOrder) Dump() string {
	var lines []string
	for _, e := range lo.edges {
		line := e.from + " -> " + e.to
		if e.declared {
			line += "  (declared)"
		}
		lines = append(lines, line)
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}
