package analysis_test

import (
	"testing"

	"afp/internal/analysis"
)

func TestLocked(t *testing.T) {
	analysis.RunTest(t, "testdata", "afp/locked", analysis.Locked)
}
