package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// GuardedBy enforces field-level mutex discipline: a struct field (or
// package-level variable) annotated with a trailing or doc comment
//
//	// guarded by mu
//
// may only be read or written while the named mutex is held. Three
// annotation forms (DESIGN.md section 15):
//
//	x int // guarded by mu                  sibling form: the mutex is a
//	                                        field of the same struct; an
//	                                        access v.x requires v.mu held
//	                                        (expression-precise — holding
//	                                        other.mu never covers v.x)
//	lost int // guarded by server.traceBuffer.mu
//	                                        external form: the guard is
//	                                        another type's lock, matched
//	                                        by canonical identity
//	var reg = map[...]B{} // guarded by regMu
//	                                        package-var form: reg may only
//	                                        be touched under the package
//	                                        mutex regMu
//
// Holding is established lexically per function body — Lock/RLock
// before the access with no non-deferred Unlock in between, or a
// `// locked:` precondition on the enclosing function. Two escape
// hatches keep initialization honest without suppressions: accesses
// through a local bound to a freshly constructed value (composite
// literal, new, or zero-value var) are exempt until the value first
// escapes the constructing function, and bodies of function literals
// passed to sync.Once.Do are exempt (Once provides the happens-before).
// Goroutine literals are separate scopes: they start with nothing held
// no matter what the spawner held at the go statement.
var GuardedBy = &Analyzer{
	Name: "guardedby",
	Doc:  "fields annotated '// guarded by mu' are only accessed with the named mutex held",
	Run:  runGuardedBy,
}

// guardedRe matches the annotation. The comment must start with the
// directive; extra prose is allowed after a semicolon ("// guarded by
// mu; drain flag"). Prose mentioning "guarded by" mid-sentence does
// not annotate.
var guardedRe = regexp.MustCompile(`^// guarded by ([A-Za-z_][A-Za-z0-9_]*(?:\.[A-Za-z_][A-Za-z0-9_]*)*)\.?(?:; .*)?$`)

// guardSpec is one parsed annotation.
type guardSpec struct {
	external bool   // spec was dotted: match by identity
	lock     string // sibling field / package var name, or the identity
}

func runGuardedBy(pass *Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	for _, scope := range collectLockScopes(pass) {
		checkGuardedScope(pass, scope, guards)
	}
	return nil
}

// collectGuards maps annotated field and variable objects to their
// guard specs. Struct fields are collected from every struct type
// declared in the package; package-level vars from their value specs.
func collectGuards(pass *Pass) map[*types.Var]guardSpec {
	guards := map[*types.Var]guardSpec{}
	addField := func(names []*ast.Ident, spec guardSpec) {
		for _, name := range names {
			if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
				guards[v] = spec
			}
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				spec, ok := guardAnnotation(field.Doc, field.Comment)
				if !ok {
					continue
				}
				if len(field.Names) == 0 {
					pass.Reportf(field.Pos(), "guarded by annotation on an embedded field is not supported")
					continue
				}
				addField(field.Names, spec)
			}
			return true
		})
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, s := range gd.Specs {
				vs, ok := s.(*ast.ValueSpec)
				if !ok {
					continue
				}
				spec, ok := guardAnnotation(vs.Doc, vs.Comment)
				if !ok {
					continue
				}
				addField(vs.Names, spec)
			}
		}
	}
	return guards
}

// guardAnnotation extracts the guard spec from a doc or trailing
// comment group.
func guardAnnotation(groups ...*ast.CommentGroup) (guardSpec, bool) {
	for _, cg := range groups {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			m := guardedRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			return guardSpec{external: strings.Contains(m[1], "."), lock: m[1]}, true
		}
	}
	return guardSpec{}, false
}

// checkGuardedScope walks one scope and reports guarded accesses made
// without the guard held.
func checkGuardedScope(pass *Pass, scope *lockScope, guards map[*types.Var]guardSpec) {
	fresh := freshLocals(pass, scope)
	var walk func(n ast.Node, exempt bool)
	walk = func(node ast.Node, exempt bool) {
		ast.Inspect(node, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncLit:
				if scope.skip[x.Body] {
					return false // a goroutine scope of its own
				}
				return true
			case *ast.CallExpr:
				if !exempt && isOnceDo(pass, x) {
					for _, arg := range x.Args {
						if lit, ok := arg.(*ast.FuncLit); ok && !scope.skip[lit.Body] {
							walk(lit.Body, true)
						}
					}
					// Still visit the call's non-literal parts normally.
					walk(x.Fun, exempt)
					for _, arg := range x.Args {
						if _, ok := arg.(*ast.FuncLit); !ok {
							walk(arg, exempt)
						}
					}
					return false
				}
				return true
			case *ast.SelectorExpr:
				sel, ok := pass.TypesInfo.Selections[x]
				if !ok || sel.Kind() != types.FieldVal {
					return true
				}
				field, ok := sel.Obj().(*types.Var)
				if !ok {
					return true
				}
				spec, guarded := guards[field]
				if !guarded || exempt {
					return true
				}
				checkFieldAccess(pass, scope, fresh, x, field, spec)
				return true
			case *ast.Ident:
				v, ok := pass.TypesInfo.Uses[x].(*types.Var)
				if !ok || !isPackageLevel(v) {
					return true
				}
				spec, guarded := guards[v]
				if !guarded || exempt {
					return true
				}
				if spec.external {
					if !scope.heldIDAt(spec.lock, x.Pos()) {
						pass.Reportf(x.Pos(), "access to %s requires a lock with identity %s held (guarded by annotation)", v.Name(), spec.lock)
					}
					return true
				}
				if !scope.heldExprAt(spec.lock, x.Pos()) && !scope.heldIDAt(pkgShort(v.Pkg())+"."+spec.lock, x.Pos()) {
					pass.Reportf(x.Pos(), "access to %s requires %s held (guarded by annotation)", v.Name(), spec.lock)
				}
				return true
			}
			return true
		})
	}
	walk(scope.body, false)
}

// checkFieldAccess validates one guarded field selection.
func checkFieldAccess(pass *Pass, scope *lockScope, fresh map[types.Object]token.Pos, x *ast.SelectorExpr, field *types.Var, spec guardSpec) {
	if spec.external {
		if !scope.heldIDAt(spec.lock, x.Pos()) {
			pass.Reportf(x.Pos(), "access to %s requires a lock with identity %s held (guarded by annotation)",
				types.ExprString(x), spec.lock)
		}
		return
	}
	// Sibling form: the guard lives on the same instance the field was
	// selected from.
	base := x.X
	required := types.ExprString(base) + "." + spec.lock
	if scope.heldExprAt(required, x.Pos()) {
		return
	}
	// Identity fallback: a `// locked:` identity precondition naming
	// this struct's lock class covers its fields too.
	if named := namedOf(baseRecv(pass, x)); named != nil && named.Obj().Pkg() != nil {
		id := pkgShort(named.Obj().Pkg()) + "." + named.Obj().Name() + "." + spec.lock
		if annotationHoldsID(scope, id) {
			return
		}
	}
	// Constructor hatch: accesses through a still-local fresh value.
	if id, ok := rootIdent(base); ok {
		if escape, isFresh := fresh[pass.TypesInfo.Uses[id]]; isFresh && x.Pos() < escape {
			return
		}
	}
	pass.Reportf(x.Pos(), "access to %s requires %s held (guarded by annotation)",
		types.ExprString(x), required)
}

// baseRecv returns the type the selection's field was selected from.
func baseRecv(pass *Pass, x *ast.SelectorExpr) types.Type {
	if sel, ok := pass.TypesInfo.Selections[x]; ok {
		return sel.Recv()
	}
	return nil
}

// rootIdent unwraps a selector chain (a.b.c → a) to its base identifier.
func rootIdent(e ast.Expr) (*ast.Ident, bool) {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x, true
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil, false
		}
	}
}

// freshLocals finds locals bound to freshly constructed values — b :=
// &T{...}, v := new(T), var v T — and the position at which each first
// escapes (any use that is not the base of a selector chain: being
// returned, passed, assigned elsewhere, or captured). Accesses before
// the escape position are constructor initialization and exempt from
// guard checking; neverEscapes means no escaping use was found.
func freshLocals(pass *Pass, scope *lockScope) map[types.Object]token.Pos {
	const neverEscapes = token.Pos(1 << 60)
	fresh := map[types.Object]token.Pos{}
	note := func(name *ast.Ident, rhs ast.Expr) {
		if name.Name == "_" {
			return
		}
		if !isFreshExpr(rhs) {
			return
		}
		if obj := pass.TypesInfo.Defs[name]; obj != nil {
			fresh[obj] = neverEscapes
		}
	}
	walkSkipping(scope.body, scope.skip, func(n ast.Node) {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if x.Tok != token.DEFINE || len(x.Lhs) != len(x.Rhs) {
				return
			}
			for i := range x.Lhs {
				if id, ok := x.Lhs[i].(*ast.Ident); ok {
					note(id, x.Rhs[i])
				}
			}
		case *ast.DeclStmt:
			gd, ok := x.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				return
			}
			for _, s := range gd.Specs {
				vs, ok := s.(*ast.ValueSpec)
				if !ok {
					continue
				}
				if len(vs.Values) == 0 {
					// Zero value: fresh by construction.
					for _, name := range vs.Names {
						if obj := pass.TypesInfo.Defs[name]; obj != nil && name.Name != "_" {
							fresh[obj] = neverEscapes
						}
					}
					continue
				}
				if len(vs.Values) == len(vs.Names) {
					for i, name := range vs.Names {
						note(name, vs.Values[i])
					}
				}
			}
		}
	})
	if len(fresh) == 0 {
		return fresh
	}
	// Selector bases do not escape; any other use does.
	selBase := map[*ast.Ident]bool{}
	walkSkipping(scope.body, scope.skip, func(n ast.Node) {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if id, ok := rootIdent(sel.X); ok {
				selBase[id] = true
			}
		}
	})
	walkSkipping(scope.body, scope.skip, func(n ast.Node) {
		id, ok := n.(*ast.Ident)
		if !ok || selBase[id] {
			return
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			return
		}
		if escape, isFresh := fresh[obj]; isFresh && id.Pos() < escape {
			fresh[obj] = id.Pos()
		}
	})
	return fresh
}

// isFreshExpr reports whether e constructs a brand-new value: &T{...},
// T{...}, or new(T).
func isFreshExpr(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			_, ok := x.X.(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "new" {
			return true
		}
	}
	return false
}

// isOnceDo reports whether call is (*sync.Once).Do.
func isOnceDo(pass *Pass, call *ast.CallExpr) bool {
	f := calleeFunc(pass, call)
	if f == nil || f.Name() != "Do" {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	named := namedOf(sig.Recv().Type())
	return named != nil && named.Obj().Name() == "Once" &&
		named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync"
}
