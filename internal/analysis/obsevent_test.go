package analysis_test

import (
	"testing"

	"afp/internal/analysis"
)

func TestObsEvent(t *testing.T) {
	schema := map[string][]string{
		"lp.solve":  {"Iters", "Obj"},
		"node.open": {"Node"},
	}
	spans := map[string]bool{"solve": true, "step": true, "bb": true}
	hists := map[string]bool{"lp_solve_us": true}
	analysis.RunTest(t, "testdata", "afp/obsevent", analysis.NewObsEvent(schema, spans, hists))
}
