package analysis_test

import (
	"testing"

	"afp/internal/analysis"
)

func TestObsEvent(t *testing.T) {
	schema := map[string][]string{
		"lp.solve":  {"Iters", "Obj"},
		"node.open": {"Node"},
	}
	analysis.RunTest(t, "testdata", "afp/obsevent", analysis.NewObsEvent(schema))
}
