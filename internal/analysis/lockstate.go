package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"sort"
	"strings"
)

// This file is the shared lock-state model behind the locked, guardedby
// and lockorder analyzers: lexical Lock/Unlock event replay per function
// body, canonical lock identities, and the generalized `// locked:`
// annotation grammar. See DESIGN.md section 15.
//
// Locks are named two ways:
//
//   - by expression, the source text of the mutex operand ("ps.mu",
//     "backendMu") — instance-precise within one function body;
//   - by identity, a canonical cross-package string — "pkg.Type.field"
//     for a mutex struct field (e.g. "milp.psolver.mu") or "pkg.var"
//     for a package-level mutex (e.g. "core.backendMu"). Identity names
//     the lock *class*, not the instance.
//
// RLock/RUnlock are treated like Lock/Unlock: the analyzers check that
// *a* hold exists, not its mode. The replay is lexical — conditionals
// and loops are not path-sensitive — matching the discipline the
// parallel pool has relied on since PR 5 (DESIGN.md section 11).

// heldLock is one lock known to be held: by expression, by identity, or
// both (either string may be empty when unresolvable).
type heldLock struct {
	expr string
	id   string
}

// lockEvent is one Lock/RLock (acquire) or non-deferred Unlock/RUnlock
// (release) call in a function body.
type lockEvent struct {
	pos     token.Pos
	expr    string
	id      string
	acquire bool
	rlock   bool
}

// lockScope is one independently analyzed function body: a FuncDecl's
// body, or the body of a function literal launched by a `go` statement
// (which starts with nothing held, whatever the spawner holds).
// Non-goroutine literals stay part of their enclosing scope: a
// sort.Slice comparator or a once.Do body runs on the caller's
// goroutine and inherits its lexical lock state.
type lockScope struct {
	decl  *ast.FuncDecl  // enclosing declaration (nil for orphan literals)
	body  *ast.BlockStmt // the scope's body
	goLit bool           // body of a go-statement function literal

	ann    []heldLock              // preconditions from `// locked:` annotations
	events []lockEvent             // lexical lock events, position-ordered
	skip   map[*ast.BlockStmt]bool // nested go-literal bodies, excluded
}

// collectLockScopes builds the scope list for one package: every
// declared function body plus every go-launched literal body, with
// go-literal bodies excluded from their parents.
func collectLockScopes(pass *Pass) []*lockScope {
	goBodies := map[*ast.BlockStmt]bool{}
	var scopes []*lockScope
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
					goBodies[lit.Body] = true
				}
				return true
			})
			scopes = append(scopes, &lockScope{decl: fd, body: fd.Body})
		}
	}
	var all []*lockScope
	for _, s := range scopes {
		s.skip = goBodies
		s.ann, _ = lockedAnnotations(pass, s.decl)
		s.events = scanLockEvents(pass, s.body, goBodies)
		all = append(all, s)
	}
	// Each go-literal body is its own scope with an empty initial held
	// set; its nested go literals are in goBodies too, so they exclude
	// each other correctly.
	for body := range goBodies {
		inner := map[*ast.BlockStmt]bool{}
		for b := range goBodies {
			if b != body {
				inner[b] = true
			}
		}
		all = append(all, &lockScope{
			body:   body,
			goLit:  true,
			skip:   inner,
			events: scanLockEvents(pass, body, inner),
		})
	}
	return all
}

// scanLockEvents collects the Lock/RLock/Unlock/RUnlock calls under
// root, position-ordered, skipping the excluded bodies. Deferred
// unlocks are not release events: defer mu.Unlock() runs at return,
// after everything in the body.
//
// Control flow is approximated by terminating-region compensation: a
// statement list ending in a return never falls through, so every lock
// event inside it is inverted at the region's end. That makes both
// early-exit idioms replay correctly —
//
//	mu.Lock()
//	if done { mu.Unlock(); return }   // fall-through still holds mu
//	...
//	if bad { mu.Lock(); x++; mu.Unlock(); return }
//	y++                               // fall-through never held mu
func scanLockEvents(pass *Pass, root ast.Node, skip map[*ast.BlockStmt]bool) []lockEvent {
	deferred := map[*ast.CallExpr]bool{}
	type region struct{ pos, end token.Pos }
	var regions []region
	walkSkipping(root, skip, func(n ast.Node) {
		if ds, ok := n.(*ast.DeferStmt); ok {
			deferred[ds.Call] = true
		}
		var stmts []ast.Stmt
		switch b := n.(type) {
		case *ast.BlockStmt:
			stmts = b.List
		case *ast.CaseClause:
			stmts = b.Body
		case *ast.CommClause:
			stmts = b.Body
		}
		if len(stmts) == 0 {
			return
		}
		if _, isReturn := stmts[len(stmts)-1].(*ast.ReturnStmt); isReturn {
			regions = append(regions, region{pos: stmts[0].Pos(), end: n.End()})
		}
	})

	var events []lockEvent
	walkSkipping(root, skip, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return
		}
		switch sel.Sel.Name {
		case "Lock", "RLock":
			events = append(events, lockEvent{
				pos:     call.Pos(),
				expr:    types.ExprString(sel.X),
				id:      lockIdentity(pass, sel.X),
				acquire: true,
				rlock:   sel.Sel.Name == "RLock",
			})
		case "Unlock", "RUnlock":
			if !deferred[call] {
				events = append(events, lockEvent{
					pos:  call.Pos(),
					expr: types.ExprString(sel.X),
					id:   lockIdentity(pass, sel.X),
				})
			}
		}
	})
	sort.SliceStable(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	// Innermost regions first, so an outer region inverts the inner
	// region's compensations along with its real events.
	sort.Slice(regions, func(i, j int) bool {
		return regions[i].end-regions[i].pos < regions[j].end-regions[j].pos
	})
	for _, r := range regions {
		var comps []lockEvent
		for _, ev := range events {
			if ev.pos >= r.pos && ev.pos < r.end {
				inv := ev
				inv.pos = r.end
				inv.acquire = !ev.acquire
				comps = append(comps, inv)
			}
		}
		// Invert in reverse order: the last action undone first.
		for i := len(comps) - 1; i >= 0; i-- {
			events = append(events, comps[i])
		}
		sort.SliceStable(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	}
	return events
}

// walkSkipping inspects root, not descending into function-literal
// bodies listed in skip.
func walkSkipping(root ast.Node, skip map[*ast.BlockStmt]bool, fn func(ast.Node)) {
	ast.Inspect(root, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && skip[lit.Body] {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

// heldAt replays the scope's lock events and returns everything held at
// pos: the annotation preconditions plus every expression whose last
// lexical event before pos is an acquire.
func (s *lockScope) heldAt(pos token.Pos) []heldLock {
	held := append([]heldLock(nil), s.ann...)
	last := map[string]lockEvent{}
	var order []string
	for _, ev := range s.events {
		if ev.pos >= pos {
			break
		}
		if _, seen := last[ev.expr]; !seen {
			order = append(order, ev.expr)
		}
		last[ev.expr] = ev
	}
	for _, expr := range order {
		if ev := last[expr]; ev.acquire {
			held = append(held, heldLock{expr: ev.expr, id: ev.id})
		}
	}
	return held
}

// heldExprAt reports whether the lock named by expression expr is held
// at pos.
func (s *lockScope) heldExprAt(expr string, pos token.Pos) bool {
	for _, h := range s.heldAt(pos) {
		if h.expr == expr && expr != "" {
			return true
		}
	}
	return false
}

// heldIDAt reports whether some lock with canonical identity id is held
// at pos.
func (s *lockScope) heldIDAt(id string, pos token.Pos) bool {
	for _, h := range s.heldAt(pos) {
		if h.id == id && id != "" {
			return true
		}
	}
	return false
}

// lockIdentity canonicalizes the mutex operand expression: a struct
// field selection yields "pkg.Type.field", a package-level variable
// yields "pkg.var", anything else (locals, anonymous structs) yields "".
func lockIdentity(pass *Pass, e ast.Expr) string {
	switch x := e.(type) {
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[x]; ok && sel.Kind() == types.FieldVal {
			named := namedOf(sel.Recv())
			if named == nil || named.Obj().Pkg() == nil {
				return ""
			}
			return pkgShort(named.Obj().Pkg()) + "." + named.Obj().Name() + "." + x.Sel.Name
		}
		// Qualified package-level var: pkg.Var.
		if v, ok := pass.TypesInfo.Uses[x.Sel].(*types.Var); ok && isPackageLevel(v) {
			return pkgShort(v.Pkg()) + "." + v.Name()
		}
	case *ast.Ident:
		if v, ok := pass.TypesInfo.Uses[x].(*types.Var); ok && isPackageLevel(v) {
			return pkgShort(v.Pkg()) + "." + v.Name()
		}
	}
	return ""
}

func isPackageLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// pkgShort is the identity namespace for a package: the last element of
// its import path ("afp/internal/milp" → "milp").
func pkgShort(pkg *types.Package) string {
	return path.Base(pkg.Path())
}

// lockedReq is one parsed `// locked:` precondition on a function.
type lockedReq struct {
	kind   int    // one of the req* constants
	argIdx int    // parameter index, for reqParam
	path   string // member path after the binding ("mu"), for reqRecv/reqParam
	spec   string // the raw annotation text, for messages
	id     string // canonical identity when resolvable
}

const (
	reqRecv     = iota // "<recv>.<path>": the receiver's lock, instance-precise
	reqParam           // "<param>.<path>": a parameter's lock, instance-precise
	reqPkgVar          // "<var>": a package-level mutex in the same package
	reqIdentity        // "<pkg>.<Type>.<field>": any lock of that identity
)

// lockedAnnotations parses the `// locked:` lines in fd's doc comment
// into held-lock preconditions (for the function's own body) and
// structured requirements (for its call sites). The grammar, resolved
// against the declaration:
//
//	// locked: ps.mu          receiver form — call sites must hold <recv expr>.mu
//	// locked: b.mu           parameter form, when b names a parameter
//	// locked: backendMu      package-var form, resolved in package scope
//	// locked: obs.Metrics.mu identity form — any lock of that identity
//
// Malformed specs are returned in diags rather than dropped.
func lockedAnnotations(pass *Pass, fd *ast.FuncDecl) ([]heldLock, []lockedReq) {
	if fd == nil || fd.Doc == nil {
		return nil, nil
	}
	var held []heldLock
	var reqs []lockedReq
	for _, c := range fd.Doc.List {
		rest, ok := strings.CutPrefix(c.Text, "// locked:")
		if !ok {
			continue
		}
		spec := strings.TrimSpace(rest)
		if spec == "" {
			continue
		}
		req := resolveLockedSpec(pass, fd, spec)
		reqs = append(reqs, req)
		switch req.kind {
		case reqIdentity:
			held = append(held, heldLock{id: req.id})
		default:
			held = append(held, heldLock{expr: spec, id: req.id})
		}
	}
	return held, reqs
}

// resolveLockedSpec classifies one locked: spec against fd's receiver,
// parameters and package scope.
func resolveLockedSpec(pass *Pass, fd *ast.FuncDecl, spec string) lockedReq {
	first, path, hasDot := strings.Cut(spec, ".")
	if hasDot {
		if fd.Recv != nil && recvName(fd) == first {
			var id string
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				if recv := obj.Type().(*types.Signature).Recv(); recv != nil {
					id = fieldPathIdentity(recv.Type(), path)
				}
			}
			return lockedReq{kind: reqRecv, path: path, spec: spec, id: id}
		}
		if idx, t := paramByName(pass, fd, first); idx >= 0 {
			return lockedReq{kind: reqParam, argIdx: idx, path: path, spec: spec, id: fieldPathIdentity(t, path)}
		}
		// Not a binding of this function: a cross-package identity.
		return lockedReq{kind: reqIdentity, spec: spec, id: spec}
	}
	// Bare name: a package-level mutex variable.
	id := ""
	if obj, ok := pass.Pkg.Scope().Lookup(spec).(*types.Var); ok {
		id = pkgShort(obj.Pkg()) + "." + obj.Name()
	}
	return lockedReq{kind: reqPkgVar, spec: spec, id: id}
}

// paramByName finds the named parameter's index and type, or -1.
func paramByName(pass *Pass, fd *ast.FuncDecl, name string) (int, types.Type) {
	if fd.Type.Params == nil {
		return -1, nil
	}
	idx := 0
	for _, field := range fd.Type.Params.List {
		if len(field.Names) == 0 {
			idx++
			continue
		}
		for _, n := range field.Names {
			if n.Name == name {
				if tv, ok := pass.TypesInfo.Types[field.Type]; ok {
					return idx, tv.Type
				}
				return idx, nil
			}
			idx++
		}
	}
	return -1, nil
}

// fieldPathIdentity walks a dotted field path from t and returns the
// canonical identity of the final field ("pkg.Type.field"), or "" when
// the walk fails.
func fieldPathIdentity(t types.Type, path string) string {
	segs := strings.Split(path, ".")
	cur := t
	for i, seg := range segs {
		named := namedOf(cur)
		if named == nil {
			return ""
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			return ""
		}
		var field *types.Var
		for j := 0; j < st.NumFields(); j++ {
			if st.Field(j).Name() == seg {
				field = st.Field(j)
				break
			}
		}
		if field == nil {
			return ""
		}
		if i == len(segs)-1 {
			if named.Obj().Pkg() == nil {
				return ""
			}
			return pkgShort(named.Obj().Pkg()) + "." + named.Obj().Name() + "." + seg
		}
		cur = field.Type()
	}
	return ""
}
