// Package route implements the graph-based global router of Section 3.2
// of Sutanthavibul, Shragowitz and Rosen (DAC 1990): a channel-position
// graph is derived from the floorplan, each module exposes one
// generalized pin per side, nets are routed by (optionally weighted)
// shortest paths with timing-critical nets first, and channel widths are
// adjusted afterwards to compute the final chip area.
package route

import (
	"math"
	"sort"

	"afp/internal/geom"
)

// Graph is the channel-position graph of a floorplan: nodes are channel
// intersections on the grid induced by module edges, edges are channel
// segments with estimated track capacities.
type Graph struct {
	Xs, Ys []float64 // grid lines
	Nodes  []Node
	Edges  []Edge

	nodeAt  map[[2]int]int // (xi, yi) -> node index
	adj     [][]int        // node -> incident edge indices
	meanLen float64        // mean edge length, scales congestion penalties
}

// Node is one channel intersection.
type Node struct {
	X, Y   float64
	XI, YI int // indices into Xs, Ys
}

// Edge is one channel segment between adjacent intersections.
type Edge struct {
	A, B       int // node indices
	Len        float64
	Cap        int  // estimated track capacity
	Util       int  // routed tracks (updated during routing)
	Horizontal bool // orientation of the segment
}

// buildGraph constructs the channel graph for module envelopes placed on
// a chip of the given dimensions. pitchH and pitchV convert clearances
// into track capacities.
func buildGraph(envs []geom.Rect, chipW, chipH, pitchH, pitchV float64) *Graph {
	xs := []float64{0, chipW}
	ys := []float64{0, chipH}
	for _, r := range envs {
		xs = append(xs, r.X, r.X2())
		ys = append(ys, r.Y, r.Y2())
	}
	sort.Float64s(xs)
	sort.Float64s(ys)
	xs = dedup(xs)
	ys = dedup(ys)

	g := &Graph{Xs: xs, Ys: ys, nodeAt: make(map[[2]int]int)}

	inside := func(x, y float64) bool {
		for _, r := range envs {
			if x > r.X+geom.Eps && x < r.X2()-geom.Eps &&
				y > r.Y+geom.Eps && y < r.Y2()-geom.Eps {
				return true
			}
		}
		return false
	}
	for xi, x := range xs {
		for yi, y := range ys {
			if x < -geom.Eps || x > chipW+geom.Eps || y < -geom.Eps || y > chipH+geom.Eps {
				continue
			}
			if inside(x, y) {
				continue
			}
			g.nodeAt[[2]int{xi, yi}] = len(g.Nodes)
			g.Nodes = append(g.Nodes, Node{X: x, Y: y, XI: xi, YI: yi})
		}
	}

	// blockedH reports whether the open horizontal segment
	// (x1, x2) x {y} passes through a module interior.
	blockedH := func(x1, x2, y float64) bool {
		for _, r := range envs {
			if y > r.Y+geom.Eps && y < r.Y2()-geom.Eps &&
				x1 >= r.X-geom.Eps && x2 <= r.X2()+geom.Eps {
				return true
			}
		}
		return false
	}
	blockedV := func(y1, y2, x float64) bool {
		for _, r := range envs {
			if x > r.X+geom.Eps && x < r.X2()-geom.Eps &&
				y1 >= r.Y-geom.Eps && y2 <= r.Y2()+geom.Eps {
				return true
			}
		}
		return false
	}

	addEdge := func(a, b int, l float64, cp int, horiz bool) {
		g.Edges = append(g.Edges, Edge{A: a, B: b, Len: l, Cap: cp, Horizontal: horiz})
	}

	// Horizontal edges.
	for yi, y := range ys {
		for xi := 0; xi+1 < len(xs); xi++ {
			a, okA := g.nodeAt[[2]int{xi, yi}]
			b, okB := g.nodeAt[[2]int{xi + 1, yi}]
			if !okA || !okB {
				continue
			}
			if blockedH(xs[xi], xs[xi+1], y) {
				continue
			}
			gap := corridorH(envs, xs[xi], xs[xi+1], y, chipH)
			cp := capFromGap(gap, pitchH)
			addEdge(a, b, xs[xi+1]-xs[xi], cp, true)
		}
	}
	// Vertical edges.
	for xi, x := range xs {
		for yi := 0; yi+1 < len(ys); yi++ {
			a, okA := g.nodeAt[[2]int{xi, yi}]
			b, okB := g.nodeAt[[2]int{xi, yi + 1}]
			if !okA || !okB {
				continue
			}
			if blockedV(ys[yi], ys[yi+1], x) {
				continue
			}
			gap := corridorV(envs, ys[yi], ys[yi+1], x, chipW)
			cp := capFromGap(gap, pitchV)
			addEdge(a, b, ys[yi+1]-ys[yi], cp, false)
		}
	}

	g.adj = make([][]int, len(g.Nodes))
	for ei, e := range g.Edges {
		g.adj[e.A] = append(g.adj[e.A], ei)
		g.adj[e.B] = append(g.adj[e.B], ei)
		g.meanLen += e.Len
	}
	if len(g.Edges) > 0 {
		g.meanLen /= float64(len(g.Edges))
	}
	return g
}

// corridorH estimates the free vertical extent of the channel containing
// the horizontal segment (x1, x2) x {y}: distance to the nearest blocking
// module edge below plus above (or the chip boundary).
func corridorH(envs []geom.Rect, x1, x2, y, chipH float64) float64 {
	up := chipH - y
	down := y
	for _, r := range envs {
		if r.X2() <= x1+geom.Eps || r.X >= x2-geom.Eps {
			continue // no x-overlap with the segment
		}
		if r.Y >= y-geom.Eps { // module above (or starting at) the line
			if d := r.Y - y; d < up {
				up = d
			}
		}
		if r.Y2() <= y+geom.Eps { // module below (or ending at) the line
			if d := y - r.Y2(); d < down {
				down = d
			}
		}
	}
	return up + down
}

func corridorV(envs []geom.Rect, y1, y2, x, chipW float64) float64 {
	right := chipW - x
	left := x
	for _, r := range envs {
		if r.Y2() <= y1+geom.Eps || r.Y >= y2-geom.Eps {
			continue
		}
		if r.X >= x-geom.Eps {
			if d := r.X - x; d < right {
				right = d
			}
		}
		if r.X2() <= x+geom.Eps {
			if d := x - r.X2(); d < left {
				left = d
			}
		}
	}
	return left + right
}

// capFromGap converts a free corridor extent into a track capacity. Every
// existing channel carries at least one track; abutting modules leave a
// zero-width channel that can still be routed over at high cost.
func capFromGap(gap, pitch float64) int {
	if pitch <= 0 {
		pitch = 0.1
	}
	c := int(math.Floor(gap / pitch))
	if c < 1 {
		c = 1
	}
	return c
}

// Other returns the endpoint of edge e that is not n.
func (e *Edge) Other(n int) int {
	if e.A == n {
		return e.B
	}
	return e.A
}

// NearestNode returns the node closest (L1) to the given point.
func (g *Graph) NearestNode(x, y float64) int {
	best, bestD := -1, math.Inf(1)
	for i, n := range g.Nodes {
		d := math.Abs(n.X-x) + math.Abs(n.Y-y)
		if d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// Overflow returns the total routed demand exceeding edge capacities.
func (g *Graph) Overflow() int {
	var o int
	for _, e := range g.Edges {
		if e.Util > e.Cap {
			o += e.Util - e.Cap
		}
	}
	return o
}

func dedup(xs []float64) []float64 {
	out := xs[:1]
	for _, x := range xs[1:] {
		if x-out[len(out)-1] > geom.Eps {
			out = append(out, x)
		}
	}
	return out
}
