package route

import (
	"fmt"
	"io"
	"sort"
)

// CongestionStats summarizes channel usage after routing.
type CongestionStats struct {
	UsedEdges      int     // edges carrying at least one track
	OverflowEdges  int     // edges beyond capacity
	MaxUtilization float64 // max Util/Cap over used edges
	AvgUtilization float64 // mean Util/Cap over used edges
}

// Stats computes congestion statistics for the routed graph.
func (r *Result) Stats() CongestionStats {
	var st CongestionStats
	var sum float64
	for _, e := range r.Graph.Edges {
		if e.Util == 0 {
			continue
		}
		st.UsedEdges++
		u := float64(e.Util) / float64(e.Cap)
		sum += u
		if u > st.MaxUtilization {
			st.MaxUtilization = u
		}
		if e.Util > e.Cap {
			st.OverflowEdges++
		}
	}
	if st.UsedEdges > 0 {
		st.AvgUtilization = sum / float64(st.UsedEdges)
	}
	return st
}

// CongestionReport writes a human-readable congestion summary: aggregate
// statistics plus the topN most overloaded channel segments.
func (r *Result) CongestionReport(w io.Writer, topN int) {
	st := r.Stats()
	fmt.Fprintf(w, "routing: %d nets, wirelength %.1f, overflow %d\n",
		len(r.Nets), r.Wirelength, r.Overflow)
	fmt.Fprintf(w, "channels: %d used, %d overflowed, max util %.2f, avg util %.2f\n",
		st.UsedEdges, st.OverflowEdges, st.MaxUtilization, st.AvgUtilization)
	if topN <= 0 {
		return
	}
	type hot struct {
		idx  int
		over int
	}
	var hots []hot
	for i, e := range r.Graph.Edges {
		if e.Util > e.Cap {
			hots = append(hots, hot{i, e.Util - e.Cap})
		}
	}
	sort.Slice(hots, func(a, b int) bool {
		if hots[a].over != hots[b].over {
			return hots[a].over > hots[b].over
		}
		return hots[a].idx < hots[b].idx
	})
	if len(hots) > topN {
		hots = hots[:topN]
	}
	for _, h := range hots {
		e := r.Graph.Edges[h.idx]
		a, b := r.Graph.Nodes[e.A], r.Graph.Nodes[e.B]
		dir := "V"
		if e.Horizontal {
			dir = "H"
		}
		fmt.Fprintf(w, "  %s channel (%.1f,%.1f)-(%.1f,%.1f): %d/%d tracks (+%d)\n",
			dir, a.X, a.Y, b.X, b.Y, e.Util, e.Cap, h.over)
	}
}
