package route

import (
	"reflect"
	"testing"

	"afp/internal/netlist"
)

// Net weights that differ only by float noise must not decide routing
// priority: nets within the geometric tolerance tie-break by index.
func TestNetOrderIgnoresFloatNoise(t *testing.T) {
	d := &netlist.Design{
		Modules: []netlist.Module{
			{Name: "a", Kind: netlist.Rigid, W: 2, H: 2},
			{Name: "b", Kind: netlist.Rigid, W: 2, H: 2},
		},
		Nets: []netlist.Net{
			{Name: "n0", Modules: []int{0, 1}, Weight: 0.3},
			// 0.1+0.2 differs from 0.3 by one ulp-scale noise term.
			{Name: "n1", Modules: []int{0, 1}, Weight: 0.1 + 0.2},
			{Name: "crit", Modules: []int{0, 1}, Weight: 0.1, Critical: true},
			{Name: "heavy", Modules: []int{0, 1}, Weight: 5},
		},
	}
	got := netOrder(d)
	// Critical first, then weight 5, then the two noise-equal nets in
	// index order (n1's slightly larger float must not promote it).
	want := []int{2, 3, 0, 1}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("netOrder = %v, want %v", got, want)
	}
}
