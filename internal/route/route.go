package route

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"afp/internal/core"
	"afp/internal/geom"
	"afp/internal/netlist"
	"afp/internal/track"
)

// Algorithm selects the edge-cost model, matching the two routing
// algorithms of Table 3.
type Algorithm int

// Routing algorithms.
const (
	// ShortestPath routes every connection along the geometrically
	// shortest channel path, ignoring congestion.
	ShortestPath Algorithm = iota
	// WeightedShortestPath penalizes channels routed beyond their
	// preliminary capacity, spreading congestion (Section 3.2).
	WeightedShortestPath
)

func (a Algorithm) String() string {
	if a == ShortestPath {
		return "shortest-path"
	}
	return "weighted-shortest-path"
}

// Config tunes the global router.
type Config struct {
	// PitchH and PitchV are the per-track routing pitches (metal width
	// plus spacing) in the horizontal and vertical direction. Zero
	// defaults to 0.1 layout units.
	PitchH, PitchV float64
	// Algorithm selects the edge-cost model.
	Algorithm Algorithm
	// Penalty multiplies the over-capacity cost of WeightedShortestPath.
	// Zero defaults to 4.
	Penalty float64
}

// NetRoute is the routed realization of one net.
type NetRoute struct {
	Net      int     // index into Design.Nets
	Length   float64 // total routed channel length
	Edges    []int   // edge indices into Graph.Edges
	Critical bool
}

// Result is the outcome of global routing.
type Result struct {
	Graph      *Graph
	Nets       []NetRoute
	Wirelength float64 // total routed length over all nets
	Overflow   int     // total demand beyond channel capacities

	// Final chip dimensions after channel-width adjustment (Section 3.2
	// last step / Table 3): the placed chip grown to accommodate the
	// routed track demand that does not fit the existing channels.
	FinalW, FinalH float64
}

// FinalArea returns the routed chip area after channel adjustment.
func (r *Result) FinalArea() float64 { return r.FinalW * r.FinalH }

// Route globally routes all nets of the floorplan fp.
func Route(fp *core.Result, cfg Config) (*Result, error) {
	if cfg.PitchH <= 0 {
		cfg.PitchH = 0.1
	}
	if cfg.PitchV <= 0 {
		cfg.PitchV = 0.1
	}
	if cfg.Penalty <= 0 {
		cfg.Penalty = 4
	}
	d := fp.Design
	// Blockages are the module bodies, not the envelopes: the envelope
	// padding of Section 3.2 exists precisely to reserve routable channel
	// space next to each module, so the router must be allowed to use it.
	// Without envelopes Mod == Env and nothing changes.
	envs := make([]geom.Rect, len(fp.Placements))
	for i, p := range fp.Placements {
		envs[i] = p.Mod
	}
	chipW, chipH := fp.ChipWidth, fp.Height
	if chipH <= 0 {
		chipH = 1
	}
	g := buildGraph(envs, chipW, chipH, cfg.PitchH, cfg.PitchV)
	if len(g.Nodes) == 0 {
		return nil, fmt.Errorf("route: empty channel graph")
	}

	// Generalized pins: one per module side, at the midpoint of the
	// envelope edge (Section 3.2: four generalized pins per module).
	pinNodes := make(map[int][4]int, len(fp.Placements))
	for _, p := range fp.Placements {
		e := p.Mod
		var pn [4]int
		pn[netlist.North] = g.NearestNode(e.CenterX(), e.Y2())
		pn[netlist.East] = g.NearestNode(e.X2(), e.CenterY())
		pn[netlist.South] = g.NearestNode(e.CenterX(), e.Y)
		pn[netlist.West] = g.NearestNode(e.X, e.CenterY())
		pinNodes[p.Index] = pn
	}

	orderIdx := netOrder(d)

	res := &Result{Graph: g}
	for _, ni := range orderIdx {
		net := &d.Nets[ni]
		terms := netTerminals(fp, g, pinNodes, net)
		if len(terms) < 2 {
			continue
		}
		nr := NetRoute{Net: ni, Critical: net.Critical}
		// Decompose the multi-pin net into a spanning star built by
		// Prim-style nearest-terminal connection over the channel graph.
		connected := map[int]bool{terms[0]: true}
		remaining := terms[1:]
		for len(remaining) > 0 {
			srcs := make([]int, 0, len(connected))
			for n := range connected {
				srcs = append(srcs, n)
			}
			sort.Ints(srcs)
			dist, prevEdge := g.dijkstra(srcs, cfg)
			// Pick the cheapest remaining terminal.
			bi, bd := -1, math.Inf(1)
			for k, t := range remaining {
				if dist[t] < bd {
					bi, bd = k, dist[t]
				}
			}
			if bi < 0 || math.IsInf(bd, 1) {
				return nil, fmt.Errorf("route: net %q unroutable", net.Name)
			}
			t := remaining[bi]
			remaining = append(remaining[:bi], remaining[bi+1:]...)
			// Walk back, committing edges.
			for n := t; prevEdge[n] >= 0; {
				ei := prevEdge[n]
				e := &g.Edges[ei]
				e.Util++
				nr.Edges = append(nr.Edges, ei)
				nr.Length += e.Len
				connected[n] = true
				n = e.Other(n)
			}
			connected[t] = true
		}
		res.Wirelength += nr.Length
		res.Nets = append(res.Nets, nr)
	}

	res.Overflow = g.Overflow()
	res.FinalW, res.FinalH = adjustChannels(g, res.Nets, envs, chipW, chipH, cfg)
	return res, nil
}

// netTerminals picks one generalized pin per module of the net: the pin
// node nearest to the centroid of the net's module centers.
// netOrder returns the routing priority: timing-critical nets first
// [YOU89], then by descending weight, then by index for determinism.
// Weights within the geometric tolerance tie-break by index rather than
// by float noise, so routing priority is stable under benign
// reformulations of the weights.
func netOrder(d *netlist.Design) []int {
	orderIdx := make([]int, len(d.Nets))
	for i := range orderIdx {
		orderIdx[i] = i
	}
	sort.SliceStable(orderIdx, func(a, b int) bool {
		na, nb := &d.Nets[orderIdx[a]], &d.Nets[orderIdx[b]]
		if na.Critical != nb.Critical {
			return na.Critical
		}
		wa, wb := na.Weight, nb.Weight
		if !geom.Eq(wa, wb) {
			return wa > wb
		}
		return orderIdx[a] < orderIdx[b]
	})
	return orderIdx
}

func netTerminals(fp *core.Result, g *Graph, pinNodes map[int][4]int, net *netlist.Net) []int {
	var cx, cy float64
	var cnt int
	for _, mi := range net.Modules {
		if p := fp.PlacementOf(mi); p != nil {
			cx += p.Mod.CenterX()
			cy += p.Mod.CenterY()
			cnt++
		}
	}
	if cnt == 0 {
		return nil
	}
	cx /= float64(cnt)
	cy /= float64(cnt)
	var terms []int
	seen := map[int]bool{}
	for _, mi := range net.Modules {
		pn, ok := pinNodes[mi]
		if !ok {
			continue
		}
		best, bestD := pn[0], math.Inf(1)
		for _, n := range pn {
			nd := g.Nodes[n]
			d := math.Abs(nd.X-cx) + math.Abs(nd.Y-cy)
			if d < bestD {
				best, bestD = n, d
			}
		}
		if !seen[best] {
			seen[best] = true
			terms = append(terms, best)
		}
	}
	return terms
}

// dijkstra computes cheapest paths from the source set under the
// configured cost model. It returns per-node distance and the edge used
// to reach each node (-1 for sources/unreached).
func (g *Graph) dijkstra(sources []int, cfg Config) (dist []float64, prevEdge []int) {
	n := len(g.Nodes)
	dist = make([]float64, n)
	prevEdge = make([]int, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prevEdge[i] = -1
	}
	pq := &nodeHeap{}
	for _, s := range sources {
		dist[s] = 0
		heap.Push(pq, nodeDist{s, 0})
	}
	for pq.Len() > 0 {
		nd := heap.Pop(pq).(nodeDist)
		if nd.d > dist[nd.n]+1e-12 {
			continue
		}
		for _, ei := range g.adj[nd.n] {
			e := &g.Edges[ei]
			c := g.edgeCost(e, cfg)
			o := e.Other(nd.n)
			if nd.d+c < dist[o]-1e-12 {
				dist[o] = nd.d + c
				prevEdge[o] = ei
				heap.Push(pq, nodeDist{o, dist[o]})
			}
		}
	}
	return dist, prevEdge
}

// edgeCost is the routing cost of adding one more track to edge e.
func (g *Graph) edgeCost(e *Edge, cfg Config) float64 {
	if cfg.Algorithm == ShortestPath {
		return e.Len + 1e-9 // epsilon keeps zero-length paths acyclic
	}
	// Weighted: every track beyond capacity adds a length-independent
	// penalty scaled by the mean channel length, so the marginal cost of
	// one overflow unit is uniform across long and short channels. (A
	// length-proportional penalty makes short saturated channels nearly
	// free to cross; detours then chain many short over-capacity
	// channels, each adding a full overflow unit, and the weighted
	// router produces more overflow than plain shortest path.)
	over := e.Util + 1 - e.Cap
	if over <= 0 {
		return e.Len + 1e-9
	}
	return e.Len + cfg.Penalty*float64(over)*g.meanLen + 1e-9
}

type nodeDist struct {
	n int
	d float64
}

type nodeHeap []nodeDist

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(nodeDist)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// adjustChannels grows the chip to fit routed demand that exceeds the
// existing channel slack: for every vertical grid line the routed net
// segments on that line are packed into tracks by the left-edge algorithm
// (package track), the track count is converted to required width and
// compared to the free corridor at that line, and the deficits are summed
// (and likewise for horizontal lines). With routing envelopes enabled the
// corridors already reserve pin-proportional space, so the deficits
// shrink — the effect Table 3 demonstrates.
func adjustChannels(g *Graph, nets []NetRoute, envs []geom.Rect, chipW, chipH float64, cfg Config) (finalW, finalH float64) {
	// Bucket each net's edges by the grid line they run along.
	vIntervals := make(map[int][]track.Interval) // XI -> segments along that vertical line
	hIntervals := make(map[int][]track.Interval) // YI -> segments along that horizontal line
	for netSeq, nr := range nets {
		for _, ei := range nr.Edges {
			e := g.Edges[ei]
			a, b := g.Nodes[e.A], g.Nodes[e.B]
			if e.Horizontal {
				lo, hi := a.X, b.X
				if lo > hi {
					lo, hi = hi, lo
				}
				hIntervals[a.YI] = append(hIntervals[a.YI], track.Interval{Net: netSeq, Lo: lo, Hi: hi})
			} else {
				lo, hi := a.Y, b.Y
				if lo > hi {
					lo, hi = hi, lo
				}
				vIntervals[a.XI] = append(vIntervals[a.XI], track.Interval{Net: netSeq, Lo: lo, Hi: hi})
			}
		}
	}

	extraW := 0.0
	for xi, x := range g.Xs {
		ivs := vIntervals[xi]
		if len(ivs) == 0 {
			continue
		}
		tracks := track.LeftEdge(track.MergePerNet(ivs)).Tracks
		need := float64(tracks) * cfg.PitchV
		minGap := math.Inf(1)
		for _, iv := range ivs {
			gap := corridorV(envs, iv.Lo, iv.Hi, x, chipW)
			if gap < minGap {
				minGap = gap
			}
		}
		if math.IsInf(minGap, 1) {
			minGap = 0
		}
		if need > minGap {
			extraW += need - minGap
		}
	}
	extraH := 0.0
	for yi, y := range g.Ys {
		ivs := hIntervals[yi]
		if len(ivs) == 0 {
			continue
		}
		tracks := track.LeftEdge(track.MergePerNet(ivs)).Tracks
		need := float64(tracks) * cfg.PitchH
		minGap := math.Inf(1)
		for _, iv := range ivs {
			gap := corridorH(envs, iv.Lo, iv.Hi, y, chipH)
			if gap < minGap {
				minGap = gap
			}
		}
		if math.IsInf(minGap, 1) {
			minGap = 0
		}
		if need > minGap {
			extraH += need - minGap
		}
	}
	return chipW + extraW, chipH + extraH
}
