package route

import (
	"math"
	"testing"

	"afp/internal/core"
	"afp/internal/geom"
	"afp/internal/netlist"
)

// twoBlockPlan builds a minimal floorplan by hand: two 4x4 modules side
// by side with a 2-unit channel between them on a 10x4 chip.
func twoBlockPlan() *core.Result {
	d := &netlist.Design{
		Name: "two",
		Modules: []netlist.Module{
			{Name: "a", Kind: netlist.Rigid, W: 4, H: 4, Pins: [4]int{1, 1, 1, 1}},
			{Name: "b", Kind: netlist.Rigid, W: 4, H: 4, Pins: [4]int{1, 1, 1, 1}},
		},
		Nets: []netlist.Net{{Name: "n1", Modules: []int{0, 1}, Weight: 1}},
	}
	return &core.Result{
		Design:    d,
		ChipWidth: 10,
		Height:    4,
		Placements: []core.Placement{
			{Index: 0, Env: geom.NewRect(0, 0, 4, 4), Mod: geom.NewRect(0, 0, 4, 4)},
			{Index: 1, Env: geom.NewRect(6, 0, 4, 4), Mod: geom.NewRect(6, 0, 4, 4)},
		},
	}
}

func TestGraphConstruction(t *testing.T) {
	fp := twoBlockPlan()
	g := buildGraph(fp.Envelopes(), fp.ChipWidth, fp.Height, 0.1, 0.1)
	if len(g.Nodes) == 0 || len(g.Edges) == 0 {
		t.Fatalf("empty graph: %d nodes, %d edges", len(g.Nodes), len(g.Edges))
	}
	// No node may lie strictly inside a module.
	for _, n := range g.Nodes {
		for _, r := range fp.Envelopes() {
			if n.X > r.X+1e-9 && n.X < r.X2()-1e-9 && n.Y > r.Y+1e-9 && n.Y < r.Y2()-1e-9 {
				t.Fatalf("node (%v,%v) inside module %v", n.X, n.Y, r)
			}
		}
	}
	// No edge may cross a module interior: check midpoints.
	for _, e := range g.Edges {
		mx := (g.Nodes[e.A].X + g.Nodes[e.B].X) / 2
		my := (g.Nodes[e.A].Y + g.Nodes[e.B].Y) / 2
		for _, r := range fp.Envelopes() {
			if mx > r.X+1e-9 && mx < r.X2()-1e-9 && my > r.Y+1e-9 && my < r.Y2()-1e-9 {
				t.Fatalf("edge through module: (%v,%v)", mx, my)
			}
		}
	}
	// Capacities must be positive.
	for _, e := range g.Edges {
		if e.Cap < 1 {
			t.Fatalf("edge with capacity %d", e.Cap)
		}
	}
}

func TestRouteTwoBlocks(t *testing.T) {
	fp := twoBlockPlan()
	res, err := Route(fp, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nets) != 1 {
		t.Fatalf("routed %d nets, want 1", len(res.Nets))
	}
	// The two facing pins are 6 apart (east of a at x=4, west of b at
	// x=6, both at y=2, channel between) -> length should be small, at
	// most going around: sanity bound 2..14.
	if res.Wirelength < 1 || res.Wirelength > 14 {
		t.Fatalf("wirelength = %v out of sane range", res.Wirelength)
	}
	if res.FinalW < fp.ChipWidth || res.FinalH < fp.Height {
		t.Fatalf("final chip %vx%v smaller than placed %vx%v",
			res.FinalW, res.FinalH, fp.ChipWidth, fp.Height)
	}
}

func TestRouteDeterministic(t *testing.T) {
	fp := twoBlockPlan()
	r1, err := Route(fp, Config{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Route(fp, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Wirelength != r2.Wirelength || r1.Overflow != r2.Overflow {
		t.Fatal("routing not deterministic")
	}
}

// congestedPlan: two columns of modules forming a single narrow middle
// channel, with many nets crossing it.
func congestedPlan(nNets int) *core.Result {
	d := &netlist.Design{Name: "congested"}
	d.Modules = []netlist.Module{
		{Name: "a", Kind: netlist.Rigid, W: 4, H: 8, Pins: [4]int{1, 1, 1, 1}},
		{Name: "b", Kind: netlist.Rigid, W: 4, H: 8, Pins: [4]int{1, 1, 1, 1}},
	}
	for i := 0; i < nNets; i++ {
		d.Nets = append(d.Nets, netlist.Net{Name: "n", Modules: []int{0, 1}, Weight: 1})
	}
	return &core.Result{
		Design:    d,
		ChipWidth: 8.5,
		Height:    8,
		Placements: []core.Placement{
			{Index: 0, Env: geom.NewRect(0, 0, 4, 8), Mod: geom.NewRect(0, 0, 4, 8)},
			{Index: 1, Env: geom.NewRect(4.5, 0, 4, 8), Mod: geom.NewRect(4.5, 0, 4, 8)},
		},
	}
}

func TestWeightedSpreadsCongestion(t *testing.T) {
	fp := congestedPlan(12)
	sp, err := Route(fp, Config{Algorithm: ShortestPath, PitchH: 0.25, PitchV: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	wp, err := Route(fp, Config{Algorithm: WeightedShortestPath, PitchH: 0.25, PitchV: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	// Weighted routing trades length for congestion: overflow must not
	// increase, wirelength must not decrease.
	if wp.Overflow > sp.Overflow {
		t.Fatalf("weighted overflow %d > shortest %d", wp.Overflow, sp.Overflow)
	}
	if wp.Wirelength < sp.Wirelength-1e-9 {
		t.Fatalf("weighted wirelength %v < shortest %v", wp.Wirelength, sp.Wirelength)
	}
}

func TestCriticalNetsRoutedFirst(t *testing.T) {
	fp := congestedPlan(6)
	fp.Design.Nets[5].Critical = true
	res, err := Route(fp, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nets) != 6 {
		t.Fatalf("routed %d nets", len(res.Nets))
	}
	if res.Nets[0].Net != 5 || !res.Nets[0].Critical {
		t.Fatalf("critical net routed at position != 0: first is net %d", res.Nets[0].Net)
	}
	// Critical net gets the cheapest (uncongested) path.
	for _, nr := range res.Nets[1:] {
		if nr.Length+1e-9 < res.Nets[0].Length {
			// Others may be shorter only if congestion did not matter; with
			// ShortestPath all paths are equal-length, so this must not happen.
			t.Fatalf("critical net longer (%v) than later net (%v)", res.Nets[0].Length, nr.Length)
		}
	}
}

func TestChannelSlackReducesExpansion(t *testing.T) {
	// The Table 3 mechanism in isolation: the same two modules and nets,
	// once packed with zero channel slack (abutting) and once with a
	// reserved 1-unit channel (what envelopes provide). The tight plan
	// must expand more during channel adjustment.
	build := func(gap float64) *core.Result {
		d := &netlist.Design{Name: "slack"}
		d.Modules = []netlist.Module{
			{Name: "a", Kind: netlist.Rigid, W: 4, H: 8, Pins: [4]int{1, 1, 1, 1}},
			{Name: "b", Kind: netlist.Rigid, W: 4, H: 8, Pins: [4]int{1, 1, 1, 1}},
		}
		for i := 0; i < 8; i++ {
			d.Nets = append(d.Nets, netlist.Net{Name: "n", Modules: []int{0, 1}, Weight: 1})
		}
		return &core.Result{
			Design:    d,
			ChipWidth: 8 + gap,
			Height:    8,
			Placements: []core.Placement{
				{Index: 0, Env: geom.NewRect(0, 0, 4, 8), Mod: geom.NewRect(0, 0, 4, 8)},
				{Index: 1, Env: geom.NewRect(4+gap, 0, 4, 8), Mod: geom.NewRect(4+gap, 0, 4, 8)},
			},
		}
	}
	tight, err := Route(build(0), Config{PitchH: 0.2, PitchV: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	slack, err := Route(build(1), Config{PitchH: 0.2, PitchV: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	expandTight := tight.FinalW - 8
	expandSlack := slack.FinalW - 9
	if expandSlack >= expandTight {
		t.Fatalf("slack expansion %v not below tight expansion %v", expandSlack, expandTight)
	}
}

func TestRouteAMI33Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("ami33 routing in -short mode")
	}
	d := netlist.AMI33()
	// Only the first 12 modules to keep the test fast.
	d.Modules = d.Modules[:12]
	var nets []netlist.Net
	for _, n := range d.Nets {
		ok := true
		for _, m := range n.Modules {
			if m >= 12 {
				ok = false
				break
			}
		}
		if ok {
			nets = append(nets, n)
		}
	}
	d.Nets = nets
	fp, err := core.Floorplan(d, core.Config{GroupSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Route(fp, Config{Algorithm: WeightedShortestPath})
	if err != nil {
		t.Fatal(err)
	}
	if res.Wirelength <= 0 {
		t.Fatalf("wirelength = %v", res.Wirelength)
	}
	if res.FinalArea() < fp.ChipArea() {
		t.Fatalf("final area %v below placed area %v", res.FinalArea(), fp.ChipArea())
	}
}

func TestCapFromGap(t *testing.T) {
	if c := capFromGap(1.0, 0.1); c != 10 {
		t.Fatalf("capFromGap(1, .1) = %d", c)
	}
	if c := capFromGap(0, 0.1); c != 1 {
		t.Fatalf("zero gap cap = %d, want 1", c)
	}
	if c := capFromGap(0.5, 0); c < 1 {
		t.Fatalf("default pitch cap = %d", c)
	}
}

func TestCorridors(t *testing.T) {
	envs := []geom.Rect{geom.NewRect(0, 0, 4, 4), geom.NewRect(0, 6, 4, 4)}
	// Horizontal line at y=5 between the two blocks: corridor = 2.
	if g := corridorH(envs, 0, 4, 5, 10); math.Abs(g-2) > 1e-9 {
		t.Fatalf("corridorH = %v, want 2", g)
	}
	// At y=5 outside the blocks' x-range: full chip height.
	if g := corridorH(envs, 5, 8, 5, 10); math.Abs(g-10) > 1e-9 {
		t.Fatalf("corridorH open = %v, want 10", g)
	}
	// Vertical line at x=5, right of both blocks (chip width 12): gap from
	// block edge (4) to chip edge (12) = 8.
	if g := corridorV(envs, 0, 4, 5, 12); math.Abs(g-8) > 1e-9 {
		t.Fatalf("corridorV = %v, want 8", g)
	}
}

func TestAlgorithmStrings(t *testing.T) {
	if ShortestPath.String() != "shortest-path" || WeightedShortestPath.String() != "weighted-shortest-path" {
		t.Fatal("Algorithm strings")
	}
}
