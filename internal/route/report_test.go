package route

import (
	"bytes"
	"strings"
	"testing"
)

func TestStatsAndCongestionReport(t *testing.T) {
	fp := congestedPlan(10)
	res, err := Route(fp, Config{Algorithm: ShortestPath, PitchH: 0.5, PitchV: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats()
	if st.UsedEdges == 0 {
		t.Fatal("no used edges")
	}
	if st.MaxUtilization < st.AvgUtilization {
		t.Fatalf("max util %v below avg %v", st.MaxUtilization, st.AvgUtilization)
	}
	if (st.OverflowEdges > 0) != (res.Overflow > 0) {
		t.Fatalf("overflow stats inconsistent: edges=%d total=%d", st.OverflowEdges, res.Overflow)
	}

	var buf bytes.Buffer
	res.CongestionReport(&buf, 5)
	out := buf.String()
	if !strings.Contains(out, "channels:") || !strings.Contains(out, "wirelength") {
		t.Fatalf("report incomplete:\n%s", out)
	}
	if res.Overflow > 0 && !strings.Contains(out, "tracks (+") {
		t.Fatalf("expected hot channel lines:\n%s", out)
	}

	// topN = 0 suppresses the hot list.
	buf.Reset()
	res.CongestionReport(&buf, 0)
	if strings.Contains(buf.String(), "tracks (+") {
		t.Fatal("hot list printed despite topN=0")
	}
}
