package core

import (
	"testing"

	"afp/internal/obs"
)

// TestRecordedEventsMatchSchema round-trips a full augmentation trace —
// step, presolve, search and adjust events — through the generated obs
// registry.
func TestRecordedEventsMatchSchema(t *testing.T) {
	rec := &obs.Recorder{}
	d := tinyDesign()
	if _, err := Floorplan(d, Config{PostOptimize: true, Obs: obs.New(rec)}); err != nil {
		t.Fatal(err)
	}
	events := rec.Events()
	if len(events) == 0 {
		t.Fatal("no events recorded")
	}
	for _, e := range events {
		if err := obs.ValidateEvent(e); err != nil {
			t.Errorf("recorded event fails schema: %v", err)
		}
	}
	for _, kind := range []obs.Kind{obs.KindStepStart, obs.KindStepDone} {
		if rec.CountKind(kind) == 0 {
			t.Errorf("no %s events in the trace", kind)
		}
	}
}
