package core

import (
	"testing"

	"afp/internal/geom"
	"afp/internal/milp"
	"afp/internal/netlist"
)

func TestVerifyLegalFloorplan(t *testing.T) {
	d := tinyDesign()
	r, err := Floorplan(d, Config{ChipWidth: 6, GroupSize: 2, PostOptimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if v := r.Verify(); len(v) != 0 {
		t.Fatalf("legal floorplan reported violations: %v", v)
	}
}

func TestVerifyDetectsDefects(t *testing.T) {
	d := &netlist.Design{
		Modules: []netlist.Module{
			{Name: "a", Kind: netlist.Rigid, W: 2, H: 2},
			{Name: "b", Kind: netlist.Rigid, W: 2, H: 2},
			{Name: "f", Kind: netlist.Flexible, Area: 8, MinAspect: 0.5, MaxAspect: 2},
		},
	}
	base := func() *Result {
		return &Result{
			Design:    d,
			ChipWidth: 8,
			Height:    4,
			Placements: []Placement{
				{Index: 0, Env: geom.NewRect(0, 0, 2, 2), Mod: geom.NewRect(0, 0, 2, 2)},
				{Index: 1, Env: geom.NewRect(2, 0, 2, 2), Mod: geom.NewRect(2, 0, 2, 2)},
				{Index: 2, Env: geom.NewRect(4, 0, 4, 2), Mod: geom.NewRect(4, 0, 4, 2)},
			},
		}
	}
	if v := base().Verify(); len(v) != 0 {
		t.Fatalf("baseline should be legal: %v", v)
	}

	cases := []struct {
		name string
		mut  func(*Result)
		kind string
	}{
		{"overlap", func(r *Result) {
			r.Placements[1].Env = geom.NewRect(1, 0, 2, 2)
			r.Placements[1].Mod = r.Placements[1].Env
		}, "overlap"},
		{"out of bounds", func(r *Result) { r.Placements[0].Env = geom.NewRect(-1, 0, 2, 2) }, "out-of-bounds"},
		{"above chip", func(r *Result) {
			r.Placements[0].Env = geom.NewRect(0, 3, 2, 2)
			r.Placements[0].Mod = r.Placements[0].Env
		}, "out-of-bounds"},
		{"module outside envelope", func(r *Result) { r.Placements[0].Mod = geom.NewRect(1, 0, 2, 2) }, "envelope"},
		{"wrong rigid dims", func(r *Result) { r.Placements[0].Mod = geom.NewRect(0, 0, 1, 2) }, "dims"},
		{"rotated dims ok", nil, ""},
		{"flexible area", func(r *Result) { r.Placements[2].Mod = geom.NewRect(4, 0, 3, 2) }, "area"},
		{"flexible aspect", func(r *Result) {
			// 8 = 8 * 1 keeps the area but aspect 8 violates [0.5, 2].
			r.Placements[2].Env = geom.NewRect(0, 2, 8, 1)
			r.Placements[2].Mod = geom.NewRect(0, 2, 8, 1)
		}, "aspect"},
		{"missing module", func(r *Result) { r.Placements = r.Placements[:2] }, "missing"},
		{"duplicate module", func(r *Result) { r.Placements[1].Index = 0; r.Placements[1].Env = geom.NewRect(2, 0, 2, 2) }, "duplicate"},
	}
	for _, tc := range cases {
		if tc.mut == nil {
			// Rotation control: swapping dims with Rotated set stays legal.
			r := base()
			r.Placements[0].Rotated = true
			if v := r.Verify(); len(v) != 0 {
				t.Errorf("%s: square rotation flagged: %v", tc.name, v)
			}
			continue
		}
		r := base()
		tc.mut(r)
		v := r.Verify()
		found := false
		for _, viol := range v {
			if viol.Kind == tc.kind {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: expected %q violation, got %v", tc.name, tc.kind, v)
		}
	}
}

func TestFloorplanExactSmall(t *testing.T) {
	d := tinyDesign()
	exact, err := FloorplanExact(d, Config{ChipWidth: 6})
	if err != nil {
		t.Fatal(err)
	}
	if v := exact.Verify(); len(v) != 0 {
		t.Fatalf("exact floorplan illegal: %v", v)
	}
	if exact.Steps[0].Status != milp.StatusOptimal {
		t.Fatalf("exact status = %v", exact.Steps[0].Status)
	}
	// The exact optimum is no worse than successive augmentation.
	aug, err := Floorplan(d, Config{ChipWidth: 6, GroupSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if exact.Height > aug.Height+1e-6 {
		t.Fatalf("exact height %v worse than augmentation %v", exact.Height, aug.Height)
	}
}

func TestFloorplanExactEmpty(t *testing.T) {
	r, err := FloorplanExact(&netlist.Design{}, Config{ChipWidth: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Placements) != 0 {
		t.Fatal("empty design placed modules")
	}
}

func TestFloorplanExactWithPostOptimize(t *testing.T) {
	d := tinyDesign()
	r, err := FloorplanExact(d, Config{ChipWidth: 6, PostOptimize: true, AdjustIterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	if v := r.Verify(); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
}
