package core

import (
	"math"
	"sort"

	"afp/internal/geom"
)

// bottomLeft greedily places boxes of the given dimensions above the
// existing obstacles using a skyline bottom-left rule: each box goes to
// the position with the lowest feasible top edge (ties broken leftward).
// It returns one rectangle per input box. The result is used only as a
// branch-and-bound incumbent seed, so simplicity beats optimality here.
func bottomLeft(obstacles []geom.Rect, ws, hs []float64, chipW float64) []geom.Rect {
	placed := append([]geom.Rect(nil), obstacles...)
	out := make([]geom.Rect, len(ws))
	for k := range ws {
		w, h := ws[k], hs[k]
		if w > chipW {
			w = chipW // degenerate guard; Build rejects this case upstream
		}
		// Candidate x positions: 0 and the left/right edges of everything
		// placed so far.
		xs := []float64{0}
		for _, r := range placed {
			xs = append(xs, r.X, r.X2())
		}
		sort.Float64s(xs)
		bestX, bestY := 0.0, math.Inf(1)
		for _, x := range xs {
			if x < 0 || x+w > chipW+1e-9 {
				continue
			}
			y := supportHeight(placed, x, x+w)
			if y < bestY-1e-12 {
				bestX, bestY = x, y
			}
		}
		if math.IsInf(bestY, 1) {
			// No candidate fit (extremely narrow chip); stack on top of
			// everything at x = 0.
			bestX, bestY = 0, supportHeight(placed, 0, w)
		}
		r := geom.NewRect(bestX, bestY, w, h)
		placed = append(placed, r)
		out[k] = r
	}
	return out
}

// supportHeight returns the lowest y at which a box spanning [x1, x2) can
// rest given the placed rectangles: the maximum top edge among rectangles
// intersecting that x-range.
func supportHeight(placed []geom.Rect, x1, x2 float64) float64 {
	y := 0.0
	for _, r := range placed {
		if r.X < x2-1e-9 && x1 < r.X2()-1e-9 {
			if t := r.Y2(); t > y {
				y = t
			}
		}
	}
	return y
}
