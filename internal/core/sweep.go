package core

import (
	"context"
	"fmt"
	"sync"

	"afp/internal/netlist"
	"afp/internal/obs"
)

// SweepResult is the outcome of one width trial of FloorplanBestWidth.
type SweepResult struct {
	Factor float64
	Width  float64
	Result *Result
	Err    error
}

// FloorplanBestWidth runs the floorplanner at several chip widths —
// cfg.ChipWidth (or the automatic width) scaled by each factor — and
// returns the floorplan with the smallest final chip area, together with
// all per-trial outcomes. The paper fixes one chip dimension and
// minimizes the other (constraints (3)); since the best fixed width is
// not known in advance, sweeping a few candidates and keeping the best is
// the natural outer loop. Trials run concurrently; the selection is
// deterministic (ties break toward the smaller factor).
func FloorplanBestWidth(d *netlist.Design, cfg Config, factors []float64) (*Result, []SweepResult, error) {
	return FloorplanBestWidthCtx(context.Background(), d, cfg, factors)
}

// FloorplanBestWidthCtx is FloorplanBestWidth under a context: every
// width trial shares the context, so one cancellation stops them all.
// Trials cut off mid-augmentation carry their partial result and
// ctx.Err(); the best completed trial still wins when one exists,
// otherwise the context error is surfaced.
func FloorplanBestWidthCtx(ctx context.Context, d *netlist.Design, cfg Config, factors []float64) (res *Result, trials []SweepResult, err error) {
	cfg.Obs.Do(ctx, "sweep", obs.SpanAttrs{Detail: d.Name}, func(ctx context.Context) {
		res, trials, err = bestWidthCtx(ctx, d, cfg, factors)
	})
	return res, trials, err
}

// bestWidthCtx is the sweep proper, running inside the "sweep" span.
func bestWidthCtx(ctx context.Context, d *netlist.Design, cfg Config, factors []float64) (*Result, []SweepResult, error) {
	if len(factors) == 0 {
		factors = []float64{0.9, 1.0, 1.1}
	}
	base := cfg.ChipWidth
	if base <= 0 {
		c := cfg.withDefaults(d)
		base = c.ChipWidth
	}

	trials := make([]SweepResult, len(factors))
	var wg sync.WaitGroup
	// cfg.SweepWorkers > 0 bounds trial concurrency with a semaphore so
	// sweep-level and search-level parallelism compose without
	// oversubscribing the host.
	var sem chan struct{}
	if cfg.SweepWorkers > 0 && cfg.SweepWorkers < len(factors) {
		sem = make(chan struct{}, cfg.SweepWorkers)
	}
	for i, f := range factors {
		wg.Add(1)
		go func(i int, f float64) {
			defer wg.Done()
			if sem != nil {
				sem <- struct{}{}
				defer func() { <-sem }()
			}
			c := cfg
			c.ChipWidth = base * f
			cfg.Obs.Do(ctx, "trial", obs.SpanAttrs{Worker: i + 1, Detail: fmt.Sprintf("w=%.4g", c.ChipWidth)}, func(ctx context.Context) {
				r, err := FloorplanCtx(ctx, d, c)
				trials[i] = SweepResult{Factor: f, Width: c.ChipWidth, Result: r, Err: err}
			})
		}(i, f)
	}
	wg.Wait()

	best := -1
	for i, tr := range trials {
		if tr.Err != nil || tr.Result == nil {
			continue
		}
		if best < 0 || tr.Result.ChipArea() < trials[best].Result.ChipArea()-1e-9 {
			best = i
		}
	}
	if best < 0 {
		// Surface the first error.
		for _, tr := range trials {
			if tr.Err != nil {
				return nil, trials, fmt.Errorf("core: width sweep: %w", tr.Err)
			}
		}
		return nil, trials, fmt.Errorf("core: width sweep produced no floorplan")
	}
	return trials[best].Result, trials, nil
}
