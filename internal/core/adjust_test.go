package core

import (
	"math"
	"testing"

	"afp/internal/geom"
	"afp/internal/netlist"
)

// flexChain builds a design of alternating flexible and rigid modules
// whose quality depends strongly on the flexible shapes.
func flexChain() *netlist.Design {
	d := &netlist.Design{Name: "flexchain"}
	for i := 0; i < 6; i++ {
		if i%2 == 0 {
			d.Modules = append(d.Modules, netlist.Module{
				Name: string(rune('a' + i)), Kind: netlist.Flexible,
				Area: 18, MinAspect: 0.3, MaxAspect: 3,
			})
		} else {
			d.Modules = append(d.Modules, netlist.Module{
				Name: string(rune('a' + i)), Kind: netlist.Rigid, W: 5, H: 3, Rotatable: true,
			})
		}
	}
	return d
}

func TestAdjustFloorplanImprovesMonotonically(t *testing.T) {
	d := flexChain()
	base, err := Floorplan(d, Config{ChipWidth: 14, GroupSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	prevArea := base.ChipArea()
	cur := base
	for it := 1; it <= 4; it++ {
		opt, err := AdjustFloorplan(d, base, Config{ChipWidth: 14}, it)
		if err != nil {
			t.Fatalf("iters=%d: %v", it, err)
		}
		checkValid(t, d, opt)
		if opt.ChipArea() > prevArea+1e-6 {
			t.Fatalf("iters=%d: area %v worse than previous %v", it, opt.ChipArea(), prevArea)
		}
		prevArea = opt.ChipArea()
		cur = opt
	}
	if cur.ChipArea() > base.ChipArea()+1e-9 {
		t.Fatalf("adjustment worsened the floorplan: %v -> %v", base.ChipArea(), cur.ChipArea())
	}
}

func TestAdjustFloorplanShrinksSecantWaste(t *testing.T) {
	// One flexible module alone: the secant model reserves extra height at
	// interior widths; iterating must converge the reserved box to the true
	// module shape (zero waste), i.e. envelope ~= module.
	d := &netlist.Design{
		Modules: []netlist.Module{
			{Name: "f", Kind: netlist.Flexible, Area: 36, MinAspect: 0.25, MaxAspect: 4},
			{Name: "r", Kind: netlist.Rigid, W: 9, H: 2},
		},
	}
	start := &Result{
		Design:    d,
		ChipWidth: 9,
		Height:    8,
		Placements: []Placement{
			{Index: 0, Env: geom.NewRect(0, 0, 6, 6), Mod: geom.NewRect(0, 0, 6, 6)},
			{Index: 1, Env: geom.NewRect(0, 6, 9, 2), Mod: geom.NewRect(0, 6, 9, 2)},
		},
	}
	opt, err := AdjustFloorplan(d, start, Config{ChipWidth: 9}, 6)
	if err != nil {
		t.Fatal(err)
	}
	// The flexible should widen to 9 (height 4) and stack under the rigid:
	// total height 6. With full convergence the envelope waste vanishes.
	fp := opt.PlacementOf(0)
	waste := fp.Env.Area() - fp.Mod.Area()
	if waste > 0.5 {
		t.Fatalf("residual linearization waste %v after 6 rounds (env %v, mod %v)",
			waste, fp.Env, fp.Mod)
	}
	if opt.Height > 6.6 {
		t.Fatalf("height = %v, want close to 6", opt.Height)
	}
}

func TestOptimizeTopologyShrinksWidth(t *testing.T) {
	// Two 2x2 modules stacked on a width-10 chip: phase 2 must report the
	// bounding width 2, not the configured 10.
	d := &netlist.Design{
		Modules: []netlist.Module{
			{Name: "a", Kind: netlist.Rigid, W: 2, H: 2},
			{Name: "b", Kind: netlist.Rigid, W: 2, H: 2},
		},
	}
	loose := &Result{
		Design:    d,
		ChipWidth: 10,
		Height:    4,
		Placements: []Placement{
			{Index: 0, Env: geom.NewRect(3, 0, 2, 2), Mod: geom.NewRect(3, 0, 2, 2)},
			{Index: 1, Env: geom.NewRect(3, 2, 2, 2), Mod: geom.NewRect(3, 2, 2, 2)},
		},
	}
	opt, err := OptimizeTopology(d, loose, Config{ChipWidth: 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(opt.ChipWidth-2) > 1e-6 {
		t.Fatalf("ChipWidth = %v, want 2 (bounding width)", opt.ChipWidth)
	}
	if math.Abs(opt.Height-4) > 1e-6 {
		t.Fatalf("Height = %v, want 4", opt.Height)
	}
	if u := opt.Utilization(); math.Abs(u-1) > 1e-6 {
		t.Fatalf("utilization = %v, want 1.0", u)
	}
}

func TestFloorplanCriticalNets(t *testing.T) {
	// Modules 0 and 3 share a critical net; with a tight bound their
	// centers must stay close (or the step must be flagged relaxed).
	d := tinyDesign()
	d.Nets = append(d.Nets, netlist.Net{Name: "crit", Modules: []int{0, 3}, Critical: true})
	r, err := Floorplan(d, Config{ChipWidth: 8, GroupSize: 2, CriticalMaxLen: 5})
	if err != nil {
		t.Fatal(err)
	}
	checkValid(t, d, r)
	p0, p3 := r.PlacementOf(0), r.PlacementOf(3)
	dist := math.Abs(p0.Mod.CenterX()-p3.Mod.CenterX()) + math.Abs(p0.Mod.CenterY()-p3.Mod.CenterY())
	anyRelaxed := false
	for _, s := range r.Steps {
		if s.Relaxed {
			anyRelaxed = true
		}
	}
	if dist > 5+1e-6 && !anyRelaxed {
		t.Fatalf("critical pair %v apart with bound 5 and no relaxed step", dist)
	}
}

func TestFloorplanCriticalNetsInfeasibleRelaxes(t *testing.T) {
	// An impossible bound (0.1) must not fail the floorplan; the affected
	// steps are relaxed instead.
	d := tinyDesign()
	d.Nets = append(d.Nets, netlist.Net{Name: "crit", Modules: []int{0, 1}, Critical: true})
	r, err := Floorplan(d, Config{ChipWidth: 8, GroupSize: 2, CriticalMaxLen: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	checkValid(t, d, r)
	relaxed := false
	for _, s := range r.Steps {
		relaxed = relaxed || s.Relaxed
	}
	if !relaxed {
		t.Fatal("expected at least one relaxed step for an impossible bound")
	}
}
