package core

import (
	"context"
	"fmt"

	"afp/internal/geom"
	"afp/internal/lp"
	"afp/internal/mipmodel"
	"afp/internal/netlist"
	"afp/internal/obs"
)

// OptimizeTopology implements Section 2.5 of the paper: with the chip
// topology given (here: derived from an existing floorplan), all 0-1
// variables disappear — for every pair of modules one of the four
// relations of disjunction (2) is already known — and the floorplan
// collapses to a pure linear program over module positions and flexible
// module shapes. The LP re-optimizes positions and shapes under the fixed
// relations; the result is never worse than the input floorplan. A second
// lexicographic phase then minimizes the bounding width at the optimal
// height, so the returned ChipWidth may shrink.
//
// Orientations of rigid modules are kept as placed. Flexible modules keep
// their linearized shape model (cfg.Linearize) and may change width.
func OptimizeTopology(d *netlist.Design, prev *Result, cfg Config) (*Result, error) {
	return OptimizeTopologyCtx(context.Background(), d, prev, cfg)
}

// OptimizeTopologyCtx is OptimizeTopology under a context; cancellation
// aborts the running LP and surfaces as ctx.Err().
func OptimizeTopologyCtx(ctx context.Context, d *netlist.Design, prev *Result, cfg Config) (*Result, error) {
	return optimizeTopologyRanges(ctx, d, prev, cfg, nil)
}

// AdjustFloorplan runs the fixed-topology LP iters times, each round
// narrowing every flexible module's width interval around its current
// optimum and re-linearizing h = S/w over the narrower interval — a
// trust-region variant of the paper's Figure 1 linearization and its
// final "adjust floorplan" step. Because the secant chord always lies on
// or above the hyperbola, every intermediate floorplan stays overlap-free
// while the approximation error contracts geometrically.
func AdjustFloorplan(d *netlist.Design, prev *Result, cfg Config, iters int) (*Result, error) {
	return AdjustFloorplanCtx(context.Background(), d, prev, cfg, iters)
}

// AdjustFloorplanCtx is AdjustFloorplan under a context; cancellation
// aborts the running LP and surfaces as ctx.Err().
func AdjustFloorplanCtx(ctx context.Context, d *netlist.Design, prev *Result, cfg Config, iters int) (*Result, error) {
	cur := prev
	var ranges map[int][2]float64
	for it := 0; it < iters; it++ {
		opt, err := optimizeTopologyRanges(ctx, d, cur, cfg, ranges)
		if err != nil {
			return nil, err
		}
		cur = opt
		cfg.Obs.Emit(obs.Event{
			Kind: obs.KindAdjust, Step: it, Height: opt.Height, Obj: opt.ChipWidth,
		})
		// Narrow each flexible interval around the chosen width; the span
		// halves every iteration.
		ranges = make(map[int][2]float64)
		for _, p := range cur.Placements {
			m := &d.Modules[p.Index]
			if m.Kind != netlist.Flexible {
				continue
			}
			wmin, wmax := m.WidthRange()
			span := (wmax - wmin) / float64(int(2)<<it)
			w := p.Mod.W
			lo, hi := w-span, w+span
			if lo < wmin {
				lo = wmin
			}
			if hi > wmax {
				hi = wmax
			}
			if hi-lo < 1e-9 {
				lo, hi = w, w
			}
			ranges[p.Index] = [2]float64{lo, hi}
		}
	}
	return cur, nil
}

// optimizeTopologyRanges is OptimizeTopology with optional per-module
// width-interval overrides for flexible modules (keyed by design index).
func optimizeTopologyRanges(ctx context.Context, d *netlist.Design, prev *Result, cfg Config, widthRanges map[int][2]float64) (*Result, error) {
	if len(prev.Placements) == 0 {
		return prev, nil
	}
	c := cfg.withDefaults(d)
	// Preserve the chip width the floorplan was built for.
	if cfg.ChipWidth <= 0 {
		c.ChipWidth = prev.ChipWidth
	}
	W := c.ChipWidth
	n := len(prev.Placements)

	p := lp.NewProblem()

	// Dimension model per placement: rigid modules use their placed
	// envelope dimensions (orientation fixed); flexible modules get a
	// width-decrease variable dw with the configured linearization.
	type item struct {
		x, y, dw       lp.VarID
		wConst, hConst float64
		hSlope, dwMax  float64
		flexible       bool
		pl             *Placement
	}
	items := make([]item, n)
	var hBound float64
	for i := range prev.Placements {
		pl := &prev.Placements[i]
		m := &d.Modules[pl.Index]
		it := item{pl: pl, dw: -1}
		padW, padH := c.pads(m)
		if m.Kind == netlist.Flexible {
			wmin, wmax := m.WidthRange()
			if r, ok := widthRanges[pl.Index]; ok {
				wmin, wmax = r[0], r[1]
			}
			if wmax-wmin > 1e-12 {
				it.flexible = true
				it.wConst = wmax + padW
				it.hConst = m.HeightFor(wmax) + padH
				it.dwMax = wmax - wmin
				if c.Linearize == mipmodel.Tangent {
					it.hSlope = m.Area / (wmax * wmax)
				} else {
					it.hSlope = (m.HeightFor(wmin) - m.HeightFor(wmax)) / (wmax - wmin)
				}
				it.dw = p.AddVariable(fmt.Sprintf("dw.%s", m.Name), 0, it.dwMax, 0)
			} else {
				it.wConst = wmin + padW
				it.hConst = m.HeightFor(wmin) + padH
			}
		} else {
			// Envelope dimensions as placed (rotation already applied).
			it.wConst = pl.Env.W
			it.hConst = pl.Env.H
		}
		hBound += it.hConst + it.hSlope*it.dwMax
		items[i] = it
	}
	for i := range items {
		m := &d.Modules[items[i].pl.Index]
		xHi := W - (items[i].wConst - items[i].dwMax) // minimum effective width
		if xHi < 0 {
			return nil, fmt.Errorf("core: module %q cannot fit chip width %g", m.Name, W)
		}
		items[i].x = p.AddVariable(fmt.Sprintf("x.%s", m.Name), 0, xHi, 0)
		items[i].y = p.AddVariable(fmt.Sprintf("y.%s", m.Name), 0, hBound, 0)
	}
	height := p.AddVariable("chip.height", 0, hBound, 1)

	weff := func(i int, scale float64) ([]lp.Term, float64) {
		it := items[i]
		var terms []lp.Term
		if it.flexible {
			terms = append(terms, lp.Term{Var: it.dw, Coef: -scale})
		}
		return terms, it.wConst * scale
	}
	heffF := func(i int, scale float64) ([]lp.Term, float64) {
		it := items[i]
		var terms []lp.Term
		if it.flexible {
			terms = append(terms, lp.Term{Var: it.dw, Coef: it.hSlope * scale})
		}
		return terms, it.hConst * scale
	}

	// Chip width variable: the paper defines the optimal floorplan as the
	// minimal covering rectangle (Section 2.2), so after minimizing the
	// height a second lexicographic phase shrinks the bounding width too.
	widthV := p.AddVariable("chip.width", 0, W, 0)
	phase1 := []lp.Term{{Var: height, Coef: 1}} // phase-1 objective terms

	// Fit and height rows.
	for i := range items {
		wt, wc := weff(i, 1)
		fit := append([]lp.Term{{Var: items[i].x, Coef: 1}, {Var: widthV, Coef: -1}}, wt...)
		p.AddConstraint("fit", fit, lp.LE, -wc)
		ht, hc := heffF(i, 1)
		row := []lp.Term{{Var: height, Coef: 1}, {Var: items[i].y, Coef: -1}}
		for _, t := range ht {
			row = append(row, lp.Term{Var: t.Var, Coef: -t.Coef})
		}
		p.AddConstraint("height", row, lp.GE, hc)
	}

	// One relation per pair, read off the existing floorplan. This is the
	// collapse of disjunction (2) to a single inequality described in
	// Section 2.5.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			a, b := items[i].pl.Env, items[j].pl.Env
			switch rel := relationOf(a, b); rel {
			case relLeft, relRight:
				lo, hi := i, j
				if rel == relRight {
					lo, hi = j, i
				}
				wt, wc := weff(lo, 1)
				row := append([]lp.Term{{Var: items[lo].x, Coef: 1}, {Var: items[hi].x, Coef: -1}}, wt...)
				p.AddConstraint("rel.h", row, lp.LE, -wc)
			default:
				lo, hi := i, j
				if rel == relAbove {
					lo, hi = j, i
				}
				ht, hc := heffF(lo, 1)
				row := append([]lp.Term{{Var: items[lo].y, Coef: 1}, {Var: items[hi].y, Coef: -1}}, ht...)
				p.AddConstraint("rel.v", row, lp.LE, -hc)
			}
		}
	}

	// Optional wirelength term over all connected pairs.
	if c.Objective == mipmodel.AreaWire {
		lambda := c.WireWeight
		if lambda <= 0 {
			lambda = 0.05
		}
		conn := d.Connectivity()
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				cw := conn[items[i].pl.Index][items[j].pl.Index]
				if cw <= 0 {
					continue
				}
				dx := p.AddVariable("dx", 0, W, lambda*cw)
				dy := p.AddVariable("dy", 0, hBound, lambda*cw)
				phase1 = append(phase1,
					lp.Term{Var: dx, Coef: lambda * cw}, lp.Term{Var: dy, Coef: lambda * cw})
				cxa, cca := weff(i, 0.5)
				cxa = append(cxa, lp.Term{Var: items[i].x, Coef: 1})
				cxb, ccb := weff(j, 0.5)
				cxb = append(cxb, lp.Term{Var: items[j].x, Coef: 1})
				addAbs(p, dx, cxa, cca, cxb, ccb)
				cya, hca := heffF(i, 0.5)
				cya = append(cya, lp.Term{Var: items[i].y, Coef: 1})
				cyb, hcb := heffF(j, 0.5)
				cyb = append(cyb, lp.Term{Var: items[j].y, Coef: 1})
				addAbs(p, dy, cya, hca, cyb, hcb)
			}
		}
	}

	sol, err := p.SolveCtx(ctx, lp.Options{MaxIter: 200000, Obs: c.Obs})
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.StatusOptimal {
		return nil, fmt.Errorf("core: topology LP %v", sol.Status)
	}

	// Phase 2: freeze the phase-1 objective at its optimum (within a tiny
	// relative tolerance) and minimize the bounding width.
	obj1 := sol.Objective
	p.AddConstraint("phase1.freeze", phase1, lp.LE, obj1+1e-7*(1+obj1))
	for _, t := range phase1 {
		p.SetObjectiveCoef(t.Var, 0)
	}
	p.SetObjectiveCoef(widthV, 1)
	sol2, err := p.SolveCtx(ctx, lp.Options{MaxIter: 200000, Obs: c.Obs})
	if err != nil {
		return nil, err
	}
	if sol2.Status == lp.StatusOptimal {
		sol = sol2
	}

	out := &Result{Design: d, ChipWidth: sol.X[widthV], Height: sol.X[height]}
	for i := range items {
		it := items[i]
		m := &d.Modules[it.pl.Index]
		dw := 0.0
		if it.dw >= 0 {
			dw = sol.X[it.dw]
		}
		envW := it.wConst - dw
		envH := it.hConst + it.hSlope*dw
		env := geom.NewRect(sol.X[it.x], sol.X[it.y], envW, envH)
		padW, padH := c.pads(m)
		if it.pl.Rotated {
			padW, padH = padH, padW
		}
		var mod geom.Rect
		if m.Kind == netlist.Flexible {
			mw := envW - padW
			mod = geom.NewRect(env.X+padW/2, env.Y+padH/2, mw, m.Area/mw)
		} else {
			mod = geom.NewRect(env.X+padW/2, env.Y+padH/2, envW-padW, envH-padH)
		}
		out.Placements = append(out.Placements, Placement{
			Index: it.pl.Index, Env: env, Mod: mod, Rotated: it.pl.Rotated,
		})
	}
	return out, nil
}

type relation int

const (
	relLeft relation = iota
	relRight
	relBelow
	relAbove
)

// relationOf picks the satisfied relation of disjunction (2) for two
// non-overlapping rectangles, preferring horizontal separations.
func relationOf(a, b geom.Rect) relation {
	const eps = 1e-7
	switch {
	case a.X2() <= b.X+eps:
		return relLeft
	case b.X2() <= a.X+eps:
		return relRight
	case a.Y2() <= b.Y+eps:
		return relBelow
	default:
		return relAbove
	}
}

// addAbs adds d >= |(exprA+ca) - (exprB+cb)| rows.
func addAbs(p *lp.Problem, d lp.VarID, exprA []lp.Term, ca float64, exprB []lp.Term, cb float64) {
	row1 := []lp.Term{{Var: d, Coef: 1}}
	for _, t := range exprA {
		row1 = append(row1, lp.Term{Var: t.Var, Coef: -t.Coef})
	}
	for _, t := range exprB {
		row1 = append(row1, lp.Term{Var: t.Var, Coef: t.Coef})
	}
	p.AddConstraint("abs+", row1, lp.GE, ca-cb)
	row2 := []lp.Term{{Var: d, Coef: 1}}
	for _, t := range exprA {
		row2 = append(row2, lp.Term{Var: t.Var, Coef: t.Coef})
	}
	for _, t := range exprB {
		row2 = append(row2, lp.Term{Var: t.Var, Coef: -t.Coef})
	}
	p.AddConstraint("abs-", row2, lp.GE, cb-ca)
}
