package core

import (
	"bytes"
	"strings"
	"testing"
)

func TestSaveLoadJSONRoundTrip(t *testing.T) {
	d := tinyDesign()
	r, err := Floorplan(d, Config{ChipWidth: 6, GroupSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadJSON(d, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.ChipWidth != r.ChipWidth || loaded.Height != r.Height {
		t.Fatalf("chip %vx%v != %vx%v", loaded.ChipWidth, loaded.Height, r.ChipWidth, r.Height)
	}
	if len(loaded.Placements) != len(r.Placements) {
		t.Fatalf("placements %d != %d", len(loaded.Placements), len(r.Placements))
	}
	for i := range r.Placements {
		if loaded.Placements[i] != r.Placements[i] {
			t.Fatalf("placement %d differs: %+v vs %+v", i, loaded.Placements[i], r.Placements[i])
		}
	}
	if v := loaded.Verify(); len(v) != 0 {
		t.Fatalf("loaded floorplan illegal: %v", v)
	}
}

func TestLoadJSONByName(t *testing.T) {
	// Names take precedence over stored indices, so a module reorder in
	// the design still resolves correctly.
	d := tinyDesign()
	src := `{
	  "design": "tiny", "chipWidth": 6, "height": 4,
	  "placements": [
	    {"index": 99, "name": "b", "envX": 0, "envY": 0, "envW": 2, "envH": 2,
	     "modX": 0, "modY": 0, "modW": 2, "modH": 2}
	  ]
	}`
	r, err := LoadJSON(d, strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if r.Placements[0].Index != d.ModuleIndex("b") {
		t.Fatalf("resolved index %d, want %d", r.Placements[0].Index, d.ModuleIndex("b"))
	}
}

func TestLoadJSONErrors(t *testing.T) {
	d := tinyDesign()
	if _, err := LoadJSON(d, strings.NewReader("{broken")); err == nil {
		t.Fatal("expected decode error")
	}
	unknown := `{"design":"x","chipWidth":1,"height":1,
	  "placements":[{"index": 99, "name": "nope"}]}`
	if _, err := LoadJSON(d, strings.NewReader(unknown)); err == nil {
		t.Fatal("expected unknown module error")
	}
}
