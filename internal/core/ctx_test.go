package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"afp/internal/netlist"
)

func TestFloorplanCtxCancelledReturnsPartial(t *testing.T) {
	d := netlist.AMI33()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := FloorplanCtx(ctx, d, Config{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancelled solve returned nil partial result")
	}
	if res.Design != d {
		t.Fatal("partial result missing design")
	}
}

func TestFloorplanCtxDeadlineMidSolve(t *testing.T) {
	d := netlist.Random(24, 7)
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := FloorplanCtx(ctx, d, Config{GroupSize: 4})
	elapsed := time.Since(start)
	if err == nil {
		t.Skip("instance finished inside the deadline; nothing to assert")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if res == nil {
		t.Fatal("deadline solve returned nil partial result")
	}
	// The abort must be prompt: one LP poll window past the deadline, not
	// the full solve. Generous bound to stay robust under -race.
	if elapsed > 3*time.Second {
		t.Fatalf("deadline solve took %v", elapsed)
	}
	// Placed modules in the partial result must still be disjoint.
	for i := 0; i < len(res.Placements); i++ {
		for j := i + 1; j < len(res.Placements); j++ {
			a, b := res.Placements[i].Mod, res.Placements[j].Mod
			if a.X < b.X2()-1e-9 && b.X < a.X2()-1e-9 && a.Y < b.Y2()-1e-9 && b.Y < a.Y2()-1e-9 {
				t.Fatalf("partial placements %d and %d overlap", i, j)
			}
		}
	}
}

func TestFloorplanBestWidthCtxCancelled(t *testing.T) {
	d := netlist.AMI33()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, trials, err := FloorplanBestWidthCtx(ctx, d, Config{}, []float64{1.0})
	if err == nil {
		t.Fatal("want error from cancelled sweep")
	}
	if len(trials) != 1 {
		t.Fatalf("trials = %d, want 1", len(trials))
	}
	if !errors.Is(trials[0].Err, context.Canceled) {
		t.Fatalf("trial err = %v, want context.Canceled", trials[0].Err)
	}
}
