package core

import (
	"encoding/json"
	"fmt"
	"io"

	"afp/internal/geom"
	"afp/internal/netlist"
)

// resultJSON is the on-disk schema of a floorplan result.
type resultJSON struct {
	Design     string          `json:"design"`
	ChipWidth  float64         `json:"chipWidth"`
	Height     float64         `json:"height"`
	Placements []placementJSON `json:"placements"`
}

type placementJSON struct {
	Index   int     `json:"index"`
	Name    string  `json:"name"`
	EnvX    float64 `json:"envX"`
	EnvY    float64 `json:"envY"`
	EnvW    float64 `json:"envW"`
	EnvH    float64 `json:"envH"`
	ModX    float64 `json:"modX"`
	ModY    float64 `json:"modY"`
	ModW    float64 `json:"modW"`
	ModH    float64 `json:"modH"`
	Rotated bool    `json:"rotated,omitempty"`
}

// SaveJSON writes the floorplan to w as JSON, suitable for archiving a
// placement or handing it to external tooling.
func (r *Result) SaveJSON(w io.Writer) error {
	out := resultJSON{
		Design:    r.Design.Name,
		ChipWidth: r.ChipWidth,
		Height:    r.Height,
	}
	for _, p := range r.Placements {
		name := ""
		if p.Index >= 0 && p.Index < len(r.Design.Modules) {
			name = r.Design.Modules[p.Index].Name
		}
		out.Placements = append(out.Placements, placementJSON{
			Index: p.Index, Name: name,
			EnvX: p.Env.X, EnvY: p.Env.Y, EnvW: p.Env.W, EnvH: p.Env.H,
			ModX: p.Mod.X, ModY: p.Mod.Y, ModW: p.Mod.W, ModH: p.Mod.H,
			Rotated: p.Rotated,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// LoadJSON reads a floorplan previously written by SaveJSON and binds it
// to the given design. Modules are matched by name (falling back to the
// stored index when the name is absent), and the reconstructed result is
// verified structurally (every referenced module must exist).
func LoadJSON(d *netlist.Design, r io.Reader) (*Result, error) {
	var in resultJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("core: decoding floorplan JSON: %w", err)
	}
	out := &Result{Design: d, ChipWidth: in.ChipWidth, Height: in.Height}
	for i, pj := range in.Placements {
		idx := -1
		if pj.Name != "" {
			idx = d.ModuleIndex(pj.Name)
		}
		if idx < 0 && pj.Index >= 0 && pj.Index < len(d.Modules) {
			idx = pj.Index
		}
		if idx < 0 {
			return nil, fmt.Errorf("core: placement %d references unknown module %q (index %d)",
				i, pj.Name, pj.Index)
		}
		out.Placements = append(out.Placements, Placement{
			Index:   idx,
			Env:     geom.NewRect(pj.EnvX, pj.EnvY, pj.EnvW, pj.EnvH),
			Mod:     geom.NewRect(pj.ModX, pj.ModY, pj.ModW, pj.ModH),
			Rotated: pj.Rotated,
		})
	}
	return out, nil
}
