package core

import (
	"testing"

	"afp/internal/netlist"
)

func TestFloorplanParallelWorkers(t *testing.T) {
	// A parallel tree search inside each augmentation step must still
	// deliver a complete, valid floorplan. Placements may differ from the
	// serial run (ties among optimal placements break nondeterministically
	// at Workers > 1), so validity — not equality — is the contract.
	d := netlist.Random(9, 14)
	serial, err := Floorplan(d, Config{GroupSize: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Floorplan(d, Config{GroupSize: 3, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	checkValid(t, d, par)
	if len(par.Placements) != len(serial.Placements) {
		t.Fatalf("parallel run placed %d modules, serial %d", len(par.Placements), len(serial.Placements))
	}
	if len(par.Steps) != len(serial.Steps) {
		t.Fatalf("parallel run took %d steps, serial %d", len(par.Steps), len(serial.Steps))
	}
}

func TestFloorplanBestWidthSweepWorkers(t *testing.T) {
	// Bounding sweep concurrency must not change any trial's outcome:
	// with the serial search pinned, a SweepWorkers=1 sweep reproduces the
	// unbounded sweep trial for trial.
	d := netlist.Random(6, 12)
	factors := []float64{0.9, 1.0, 1.1}
	bAll, trialsAll, err := FloorplanBestWidth(d, Config{GroupSize: 3, Workers: 1}, factors)
	if err != nil {
		t.Fatal(err)
	}
	bOne, trialsOne, err := FloorplanBestWidth(d, Config{GroupSize: 3, Workers: 1, SweepWorkers: 1}, factors)
	if err != nil {
		t.Fatal(err)
	}
	if bAll.ChipArea() != bOne.ChipArea() || bAll.ChipWidth != bOne.ChipWidth {
		t.Fatalf("bounded sweep winner differs: area %v/%v width %v/%v",
			bAll.ChipArea(), bOne.ChipArea(), bAll.ChipWidth, bOne.ChipWidth)
	}
	for i := range trialsAll {
		ra, ro := trialsAll[i].Result, trialsOne[i].Result
		if (ra == nil) != (ro == nil) {
			t.Fatalf("trial %d presence differs", i)
		}
		if ra != nil && ra.ChipArea() != ro.ChipArea() {
			t.Fatalf("trial %d area differs: %v vs %v", i, ra.ChipArea(), ro.ChipArea())
		}
	}
}
