package core_test

import (
	"fmt"

	"afp/internal/core"
	"afp/internal/geom"
	"afp/internal/netlist"
)

func rect(x, y, w, h float64) geom.Rect { return geom.NewRect(x, y, w, h) }

// ExampleFloorplan shows the minimal flow: define a design, run
// successive augmentation, inspect the result.
func ExampleFloorplan() {
	d := &netlist.Design{
		Name: "example",
		Modules: []netlist.Module{
			{Name: "a", Kind: netlist.Rigid, W: 4, H: 2},
			{Name: "b", Kind: netlist.Rigid, W: 2, H: 2},
			{Name: "c", Kind: netlist.Rigid, W: 2, H: 2},
		},
	}
	r, err := core.Floorplan(d, core.Config{ChipWidth: 4, GroupSize: 3})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("chip %.0f x %.0f, utilization %.0f%%\n",
		r.ChipWidth, r.Height, 100*r.Utilization())
	fmt.Println("legal:", len(r.Verify()) == 0)
	// Output:
	// chip 4 x 4, utilization 100%
	// legal: true
}

// ExampleOptimizeTopology shows the Section 2.5 LP: fixed relative
// positions, re-optimized coordinates.
func ExampleOptimizeTopology() {
	d := &netlist.Design{
		Modules: []netlist.Module{
			{Name: "a", Kind: netlist.Rigid, W: 2, H: 2},
			{Name: "b", Kind: netlist.Rigid, W: 2, H: 2},
		},
	}
	loose := &core.Result{
		Design:    d,
		ChipWidth: 4,
		Height:    9,
		Placements: []core.Placement{
			{Index: 0, Env: rect(0, 0, 2, 2), Mod: rect(0, 0, 2, 2)},
			{Index: 1, Env: rect(0, 7, 2, 2), Mod: rect(0, 7, 2, 2)}, // floats high
		},
	}
	opt, err := core.OptimizeTopology(d, loose, core.Config{ChipWidth: 4})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("height %.0f -> %.0f, width %.0f -> %.0f\n",
		loose.Height, opt.Height, loose.ChipWidth, opt.ChipWidth)
	// Output:
	// height 9 -> 4, width 4 -> 2
}
