package core

import (
	"fmt"
	"math"

	"afp/internal/geom"
	"afp/internal/netlist"
)

// Violation describes one legality defect of a floorplan.
type Violation struct {
	Kind   string // "overlap", "out-of-bounds", "dims", "area", "aspect", "envelope", "missing", "duplicate"
	Module int    // design index of the offending module (-1 when pairwise)
	Other  int    // second module for pairwise violations (-1 otherwise)
	Detail string
	Excess float64 // magnitude of the violation where meaningful
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: %s", v.Kind, v.Detail)
}

// Verify checks the floorplan for legality against its design and
// returns every violation found (nil for a legal floorplan):
//
//   - every module placed exactly once;
//   - no two envelopes overlap;
//   - every envelope inside the chip W x H box;
//   - every module inside its envelope;
//   - rigid modules keep their dimensions (modulo rotation);
//   - flexible modules conserve area and respect their aspect bounds.
func (r *Result) Verify() []Violation {
	// The shared solver tolerance: presolve, decode and the build-time fit
	// checks all agree with verification on what "touching" means.
	const tol = geom.Tol
	var out []Violation
	d := r.Design

	seen := make(map[int]int)
	for i, p := range r.Placements {
		if p.Index < 0 || p.Index >= len(d.Modules) {
			out = append(out, Violation{Kind: "missing", Module: p.Index, Other: -1,
				Detail: fmt.Sprintf("placement %d references module %d outside the design", i, p.Index)})
			continue
		}
		if prev, dup := seen[p.Index]; dup {
			out = append(out, Violation{Kind: "duplicate", Module: p.Index, Other: -1,
				Detail: fmt.Sprintf("module %d placed at positions %d and %d", p.Index, prev, i)})
		}
		seen[p.Index] = i
	}
	for mi := range d.Modules {
		if _, ok := seen[mi]; !ok {
			out = append(out, Violation{Kind: "missing", Module: mi, Other: -1,
				Detail: fmt.Sprintf("module %q never placed", d.Modules[mi].Name)})
		}
	}

	for i := range r.Placements {
		for j := i + 1; j < len(r.Placements); j++ {
			a, b := &r.Placements[i], &r.Placements[j]
			if a.Env.OverlapsTol(b.Env, tol) {
				in, _ := a.Env.Intersect(b.Env)
				out = append(out, Violation{Kind: "overlap", Module: a.Index, Other: b.Index,
					Detail: fmt.Sprintf("envelopes of %d and %d overlap by area %.4g", a.Index, b.Index, in.Area()),
					Excess: in.Area()})
			}
		}
	}

	for _, p := range r.Placements {
		if p.Index < 0 || p.Index >= len(d.Modules) {
			continue
		}
		m := &d.Modules[p.Index]
		if p.Env.X < -tol || p.Env.Y < -tol || p.Env.X2() > r.ChipWidth+tol || p.Env.Y2() > r.Height+tol {
			out = append(out, Violation{Kind: "out-of-bounds", Module: p.Index, Other: -1,
				Detail: fmt.Sprintf("envelope %v outside chip %.4g x %.4g", p.Env, r.ChipWidth, r.Height)})
		}
		if !p.Env.ContainsRect(p.Mod) {
			out = append(out, Violation{Kind: "envelope", Module: p.Index, Other: -1,
				Detail: fmt.Sprintf("module box %v outside its envelope %v", p.Mod, p.Env)})
		}
		switch m.Kind {
		case netlist.Rigid:
			w, h := m.W, m.H
			if p.Rotated {
				w, h = h, w
			}
			if math.Abs(p.Mod.W-w) > tol || math.Abs(p.Mod.H-h) > tol {
				out = append(out, Violation{Kind: "dims", Module: p.Index, Other: -1,
					Detail: fmt.Sprintf("rigid %q placed %.4g x %.4g, expected %.4g x %.4g",
						m.Name, p.Mod.W, p.Mod.H, w, h)})
			}
		case netlist.Flexible:
			if diff := math.Abs(p.Mod.Area() - m.Area); diff > tol*(1+m.Area) {
				out = append(out, Violation{Kind: "area", Module: p.Index, Other: -1,
					Detail: fmt.Sprintf("flexible %q area %.6g, expected %.6g", m.Name, p.Mod.Area(), m.Area),
					Excess: diff})
			}
			ar := p.Mod.W / p.Mod.H
			if ar < m.MinAspect-tol || ar > m.MaxAspect+tol {
				out = append(out, Violation{Kind: "aspect", Module: p.Index, Other: -1,
					Detail: fmt.Sprintf("flexible %q aspect %.4g outside [%.4g, %.4g]",
						m.Name, ar, m.MinAspect, m.MaxAspect)})
			}
		}
	}
	return out
}
