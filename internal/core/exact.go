package core

import (
	"context"
	"fmt"
	"time"

	"afp/internal/geom"
	"afp/internal/milp"
	"afp/internal/mipmodel"
	"afp/internal/netlist"
	"afp/internal/obs"
)

// FloorplanExact solves the paper's initial formulation (Section 2.3): a
// single mixed integer program over all K modules at once, with K(K-1)
// 0-1 variables. The paper shows this is practical only for small K
// (LINDO capped out around 10-12 modules) — which is exactly why
// successive augmentation exists — but for those sizes it yields the true
// optimum and quantifies the suboptimality of the greedy decomposition
// (see BenchmarkExactVsAugmentation).
//
// The result's Steps slice holds a single trace entry for the one solve.
func FloorplanExact(d *netlist.Design, cfg Config) (*Result, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	c := cfg.withDefaults(d)
	n := len(d.Modules)
	res := &Result{Design: d, ChipWidth: c.ChipWidth}
	if n == 0 {
		return res, nil
	}

	spec := c.exactSpec(d)

	built, err := mipmodel.Build(spec)
	if err != nil {
		return nil, fmt.Errorf("core: exact: %w", err)
	}
	//vet:allow ctxsolve -- FloorplanExact is the context-free entry point; the presolve span roots here
	c.presolve(context.Background(), built, 0)
	if err := c.auditStep(built, 0); err != nil {
		return nil, fmt.Errorf("core: exact: %w", err)
	}
	hintEnvs, rotated, dws := bottomLeftHint(spec, nil)
	opts := c.MILP
	opts.Incumbent = built.Hint(hintEnvs, rotated, dws)
	opts.Presolve = !c.NoPresolve
	opts.Obs = c.Obs
	opts.LP.Obs = c.Obs
	c.Obs.Emit(obs.Event{
		Kind: obs.KindStepStart, Binaries: len(built.Model.Ints),
	})
	mres := milp.Solve(built.Model, opts)
	if mres.X == nil {
		return nil, fmt.Errorf("core: exact: %v", mres.Status)
	}

	var envs []geom.Rect
	for _, p := range built.Decode(mres.X) {
		res.Placements = append(res.Placements, Placement{
			Index: p.Index, Env: p.Env, Mod: p.Mod, Rotated: p.Rotated,
		})
		envs = append(envs, p.Env)
	}
	res.Height = geom.NewSkyline(envs).MaxHeight()
	res.Steps = []StepTrace{{
		Added:    allIndices(n),
		Binaries: len(built.Model.Ints),
		Nodes:      mres.Nodes,
		LPIters:    mres.LPIters,
		DualPivots: mres.DualPivots,
		Refactors:  mres.Refactorizations,
		Status:     mres.Status,
		Height:   res.Height,
		Elapsed:  time.Since(start),
	}}
	res.Elapsed = time.Since(start)
	c.Obs.Emit(obs.Event{
		Kind: obs.KindStepDone, Status: mres.Status.String(), Modules: n,
		Nodes: mres.Nodes, Iters: mres.LPIters, Obj: mres.Objective,
		Height: res.Height, DurUS: time.Since(start).Microseconds(),
	})

	if c.PostOptimize {
		iters := c.AdjustIterations
		if iters < 1 {
			iters = 1
		}
		opt, err := AdjustFloorplan(d, res, c, iters)
		if err != nil {
			return nil, fmt.Errorf("core: exact post-optimize: %w", err)
		}
		opt.Steps = res.Steps
		opt.Elapsed = time.Since(start)
		return opt, nil
	}
	return res, nil
}

// exactSpec builds the single-subproblem spec covering the whole design:
// the paper's initial formulation, also the model AuditDesign verifies.
func (c *Config) exactSpec(d *netlist.Design) *mipmodel.Spec {
	spec := &mipmodel.Spec{
		ChipWidth:  c.ChipWidth,
		Objective:  c.Objective,
		WireWeight: c.WireWeight,
		Linearize:  c.Linearize,
		BlanketM:   c.NoPresolve,
	}
	for i := range d.Modules {
		m := &d.Modules[i]
		padW, padH := c.pads(m)
		spec.New = append(spec.New, mipmodel.NewModule{Index: i, Mod: m, PadW: padW, PadH: padH})
	}
	if c.Objective == mipmodel.AreaWire {
		conn := d.Connectivity()
		spec.Conn = func(a, b int) float64 { return conn[a][b] }
	}
	if c.CriticalMaxLen > 0 {
		for _, net := range d.Nets {
			if !net.Critical {
				continue
			}
			for a := 0; a < len(net.Modules); a++ {
				for b := a + 1; b < len(net.Modules); b++ {
					spec.Critical = append(spec.Critical, mipmodel.CriticalPair{
						A: net.Modules[a], B: net.Modules[b], MaxLen: c.CriticalMaxLen,
					})
				}
			}
		}
	}
	return spec
}

func allIndices(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
