package core

import (
	"context"
	"fmt"
	"math"
	"strings"
	"time"

	"afp/internal/geom"
	"afp/internal/milp"
	"afp/internal/mipmodel"
	"afp/internal/netlist"
	"afp/internal/obs"
	"afp/internal/order"
)

// Config tunes the successive-augmentation floorplanner.
type Config struct {
	// ChipWidth fixes the chip width W (constraints (3)). Zero selects a
	// width automatically from the total module area.
	ChipWidth float64
	// GroupSize is the number of modules e added per augmentation step.
	// Zero defaults to 4. The paper recommends keeping each subproblem at
	// 10-12 placeable objects including covering rectangles.
	GroupSize int
	// SeedSize is the size of the first group (the "seed" of Figure 3).
	// Zero defaults to GroupSize.
	SeedSize int
	// Objective selects chip area or chip area plus wirelength (Table 2).
	Objective mipmodel.Objective
	// WireWeight is the wirelength lambda for the AreaWire objective.
	WireWeight float64
	// Ordering optionally fixes the module selection order; nil uses the
	// connectivity-based linear ordering of package order.
	Ordering []int
	// Envelopes enables routing envelopes (Section 3.2): each module is
	// padded per side proportionally to its pin count.
	Envelopes bool
	// PitchH and PitchV are the per-track routing pitches used for
	// envelope padding. Zero defaults to 0.1 layout units.
	PitchH, PitchV float64
	// Linearize selects the flexible-module approximation (default Secant,
	// which guarantees overlap-free results; see mipmodel).
	Linearize mipmodel.Linearization
	// MILP tunes the per-step branch-and-bound solver. Zero values select
	// defaults (30000 nodes, 20s per step).
	MILP milp.Options
	// Workers sets the branch-and-bound worker count of every MILP
	// subproblem (see milp.Options.Workers): 0 leaves the milp default
	// (one worker per CPU), 1 forces the exact serial search, and values
	// above 1 parallelize each step's tree search. A non-zero
	// MILP.Workers takes precedence.
	Workers int
	// SweepWorkers bounds how many width trials FloorplanBestWidth runs
	// concurrently. 0 (the default) runs every factor at once; note each
	// trial multiplies by the per-solve Workers, so bounded sweeps keep
	// sweep×search from oversubscribing the host.
	SweepWorkers int
	// PostOptimize runs the Section 2.5 fixed-topology LP after the last
	// augmentation step ("adjust floorplan" of Figure 3).
	PostOptimize bool
	// AdjustIterations is the number of trust-region re-linearization
	// rounds of the post-optimization (see AdjustFloorplan). Values below
	// 1 default to 1 (a single fixed-topology LP); designs with flexible
	// modules benefit from 3-4 rounds.
	AdjustIterations int
	// NoCoveringRects disables the covering-rectangle reformulation and
	// presents every already-placed module to the subproblem individually.
	// This exists for the ablation benchmarks only: it reproduces the
	// naive formulation whose 0-1 variable count grows with the number of
	// placed modules, which Section 3.1 is designed to avoid.
	NoCoveringRects bool
	// OverlappingCovers uses the overlapping covering-rectangle variant
	// suggested at the end of Section 3.1, which usually summarizes the
	// partial floorplan with fewer (grounded, mutually overlapping)
	// rectangles than the disjoint edge-cut partition, further reducing
	// the 0-1 variable count per step.
	OverlappingCovers bool
	// CriticalMaxLen, when positive, bounds the center-to-center Manhattan
	// length of every pair of modules sharing a timing-critical net (the
	// "additional constraints on the length of critical nets" of Section
	// 2.2). Steps whose constraints turn out infeasible are retried
	// without them and flagged Relaxed in the trace.
	CriticalMaxLen float64
	// NoPresolve disables the formulation strengthening of every step's
	// MILP: the per-row tightened big-M coefficients (mipmodel.Spec.
	// BlanketM), the geometric presolve pass (mipmodel.Built.Presolve) and
	// the branch-and-bound bound propagation (milp.Options.Presolve). The
	// optimum is identical either way — presolve only prunes the search —
	// so this is an escape hatch for debugging and A/B measurement.
	NoPresolve bool
	// Audit statically verifies every step's MILP with
	// mipmodel/modelcheck after presolve and before branch and bound,
	// failing the floorplan on any finding. The audit proves the pair
	// coverage, big-M redundancy and linearization-direction invariants of
	// the formulation (see DESIGN.md section 11); it costs a few
	// milliseconds per step and exists to catch formulation regressions,
	// so CLIs enable it together with -verify.
	Audit bool
	// Backend selects the solution paradigm. "" and "milp" run the
	// paper's successive augmentation (the default); any other name
	// dispatches to a backend registered via RegisterBackend — importing
	// internal/portfolio provides "portfolio" (race every paradigm with a
	// shared incumbent board) plus standalone "anneal", "seqpair" and
	// "project".
	Backend string
	// BackendBudget caps the wall time of individual portfolio
	// contestants by backend name; zero or missing entries mean no
	// per-backend cap beyond the surrounding context.
	BackendBudget map[string]time.Duration
	// BackendSeed seeds the stochastic backends (anneal, seqpair,
	// project).
	BackendSeed int64
	// ExternalBound, when set under the AreaOnly objective (whose step
	// MILPs minimize the chip height directly), supplies an
	// externally-verified feasible chip height and its producer label.
	// Every step's branch and bound polls it and prunes nodes whose LP
	// bound cannot beat it — sound because partial heights never decrease
	// across augmentation steps, so a step node at or above the external
	// height can only lead to floorplans no better than the external one.
	// A step proven dominated stops the run with ErrDominated.
	ExternalBound func() (height float64, source string, ok bool)
	// Obs receives augmentation telemetry (step.start/step.done events)
	// and is threaded into the MILP and LP layers so a single sink sees
	// the whole solve. Nil (the default) disables instrumentation at no
	// cost.
	Obs *obs.Observer
}

func (c *Config) withDefaults(d *netlist.Design) Config {
	cfg := *c
	if cfg.GroupSize <= 0 {
		cfg.GroupSize = 4
	}
	if cfg.SeedSize <= 0 {
		cfg.SeedSize = cfg.GroupSize
	}
	if cfg.PitchH <= 0 {
		cfg.PitchH = 0.1
	}
	if cfg.PitchV <= 0 {
		cfg.PitchV = 0.1
	}
	if cfg.MILP.MaxNodes <= 0 {
		cfg.MILP.MaxNodes = 30000
	}
	if cfg.MILP.TimeLimit <= 0 {
		cfg.MILP.TimeLimit = 20 * time.Second
	}
	if cfg.MILP.Workers == 0 {
		cfg.MILP.Workers = cfg.Workers
	}
	if cfg.ChipWidth <= 0 {
		cfg.ChipWidth = autoWidth(d, &cfg)
	}
	return cfg
}

// pads returns the envelope paddings of module i under cfg.
func (c *Config) pads(m *netlist.Module) (padW, padH float64) {
	if !c.Envelopes {
		return 0, 0
	}
	padW = c.PitchV * float64(m.Pins[netlist.East]+m.Pins[netlist.West])
	padH = c.PitchH * float64(m.Pins[netlist.North]+m.Pins[netlist.South])
	return padW, padH
}

// autoWidth picks a chip width: slightly above the square-root of the
// total padded module area, but never below the widest module's minimal
// width.
func autoWidth(d *netlist.Design, cfg *Config) float64 {
	var area, minW float64
	for i := range d.Modules {
		m := &d.Modules[i]
		padW, padH := cfg.pads(m)
		wmin, wmax := m.WidthRange()
		h := m.HeightFor(wmax)
		area += (wmax + padW) * (h + padH)
		if w := wmin + padW; w > minW {
			minW = w
		}
	}
	w := math.Sqrt(area) * 1.05
	if w < minW {
		w = minW
	}
	return w
}

// Floorplan runs the successive-augmentation algorithm of Figure 3 on the
// design and returns the resulting floorplan.
func Floorplan(d *netlist.Design, cfg Config) (*Result, error) {
	return FloorplanCtx(context.Background(), d, cfg)
}

// FloorplanCtx is Floorplan under a context. Cancellation (or a context
// deadline) stops the augmentation between steps and aborts the running
// step's branch and bound, which itself returns its best incumbent. On
// cancellation the partial floorplan built so far — every module placed
// before the cut, including the interrupted step's incumbent when one
// was found — is returned TOGETHER with ctx.Err(), so callers can serve
// partial results against deadlines; callers that need an all-or-nothing
// answer should discard the result when err != nil.
func FloorplanCtx(ctx context.Context, d *netlist.Design, cfg Config) (res *Result, err error) {
	if name := cfg.Backend; name != "" && name != "milp" {
		fn := lookupBackend(name)
		if fn == nil {
			return nil, fmt.Errorf("core: unknown backend %q (have: %s)", name, strings.Join(Backends(), ", "))
		}
		return fn(ctx, d, cfg)
	}
	cfg.Obs.Do(ctx, "solve", obs.SpanAttrs{Detail: d.Name}, func(ctx context.Context) {
		res, err = floorplanCtx(ctx, d, cfg)
	})
	return res, err
}

// floorplanCtx is the augmentation loop proper, running inside
// FloorplanCtx's root "solve" span.
func floorplanCtx(ctx context.Context, d *netlist.Design, cfg Config) (*Result, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	c := cfg.withDefaults(d)
	n := len(d.Modules)
	res := &Result{Design: d, ChipWidth: c.ChipWidth, Source: "bb"}
	if n == 0 {
		return res, nil
	}

	ord := c.Ordering
	if ord == nil {
		ord = order.Linear(d)
	}
	if len(ord) != n {
		return nil, fmt.Errorf("core: ordering has %d entries for %d modules", len(ord), n)
	}

	var connMat [][]float64
	if c.Objective == mipmodel.AreaWire {
		connMat = d.Connectivity()
	}

	// Critical-pair list per module pair, derived once from the critical
	// nets (Section 2.2 timing constraints).
	var critPairs [][2]int
	if c.CriticalMaxLen > 0 {
		seen := map[[2]int]bool{}
		for _, net := range d.Nets {
			if !net.Critical {
				continue
			}
			for a := 0; a < len(net.Modules); a++ {
				for b := a + 1; b < len(net.Modules); b++ {
					i, j := net.Modules[a], net.Modules[b]
					if i > j {
						i, j = j, i
					}
					if !seen[[2]int{i, j}] {
						seen[[2]int{i, j}] = true
						critPairs = append(critPairs, [2]int{i, j})
					}
				}
			}
		}
	}

	// partial finalizes the result placed so far; it is what cancellation
	// returns alongside ctx.Err().
	var envs []geom.Rect // placed envelopes, in placement order
	partial := func() *Result {
		res.Height = geom.NewSkyline(envs).MaxHeight()
		res.Elapsed = time.Since(start)
		return res
	}

	pos := 0
	step := 0
	for pos < n {
		if err := ctx.Err(); err != nil {
			return partial(), err
		}
		e := c.GroupSize
		if step == 0 {
			e = c.SeedSize
		}
		if pos+e > n {
			e = n - pos
		}
		group := ord[pos : pos+e]

		// Each step runs inside its own "step" span (a child of the solve
		// span), so traces and CPU profiles segment per augmentation step.
		var stepRes *Result
		var stepErr error
		stop := false
		c.Obs.Do(ctx, "step", obs.SpanAttrs{Step: step}, func(ctx context.Context) {
			obstacles := geom.CoveringRectangles(envs)
			if c.OverlappingCovers {
				obstacles = geom.CoveringRectanglesOverlapping(envs)
			}
			if c.NoCoveringRects {
				obstacles = append([]geom.Rect(nil), envs...)
			}
			spec := &mipmodel.Spec{
				ChipWidth:  c.ChipWidth,
				Objective:  c.Objective,
				WireWeight: c.WireWeight,
				Linearize:  c.Linearize,
				Obstacles:  obstacles,
				BlanketM:   c.NoPresolve,
			}
			for _, mi := range group {
				m := &d.Modules[mi]
				padW, padH := c.pads(m)
				spec.New = append(spec.New, mipmodel.NewModule{Index: mi, Mod: m, PadW: padW, PadH: padH})
			}
			inGroup := make(map[int]bool, len(group))
			for _, mi := range group {
				inGroup[mi] = true
			}

			// Critical pairs touching the group; also collect the placed modules
			// those pairs need as anchors.
			needAnchor := map[int]bool{}
			for _, cp := range critPairs {
				i, j := cp[0], cp[1]
				if inGroup[i] || inGroup[j] {
					spec.Critical = append(spec.Critical,
						mipmodel.CriticalPair{A: i, B: j, MaxLen: c.CriticalMaxLen})
					if !inGroup[i] {
						needAnchor[i] = true
					}
					if !inGroup[j] {
						needAnchor[j] = true
					}
				}
			}

			if c.Objective == mipmodel.AreaWire {
				spec.Conn = func(a, b int) float64 { return connMat[a][b] }
				// Anchor every placed module that connects to the group.
				for _, p := range res.Placements {
					for _, mi := range group {
						if connMat[p.Index][mi] > 0 {
							needAnchor[p.Index] = true
							break
						}
					}
				}
			}
			for _, p := range res.Placements {
				if needAnchor[p.Index] {
					spec.Anchors = append(spec.Anchors,
						mipmodel.Anchor{Index: p.Index, X: p.Mod.CenterX(), Y: p.Mod.CenterY()})
				}
			}

			built, err := mipmodel.Build(spec)
			if err != nil {
				stepRes, stepErr = nil, fmt.Errorf("core: step %d: %w", step, err)
				stop = true
				return
			}
			c.presolve(ctx, built, step)
			if err := c.auditStep(built, step); err != nil {
				stepRes, stepErr = nil, fmt.Errorf("core: %w", err)
				stop = true
				return
			}

			// Seed branch and bound with a bottom-left packing of the group
			// (after presolve, so Hint sees the symmetry pinning).
			hintEnvs, rotated, dws := bottomLeftHint(spec, obstacles)
			opts := c.MILP
			opts.Incumbent = built.Hint(hintEnvs, rotated, dws)
			opts.Presolve = !c.NoPresolve
			opts.Obs = c.Obs
			opts.LP.Obs = c.Obs
			if c.ExternalBound != nil && c.Objective == mipmodel.AreaOnly {
				// The AreaOnly step objective IS the partial chip height, so
				// an external full-floorplan height is a valid cutoff.
				opts.External = c.ExternalBound
			}

			c.Obs.Emit(obs.Event{
				Kind: obs.KindStepStart, Step: step, Modules: pos,
				Covers: len(obstacles), Binaries: len(built.Model.Ints),
			})
			stepStart := time.Now()
			mres := milp.SolveCtx(ctx, built.Model, opts)
			relaxed := false
			if mres.X == nil && ctx.Err() != nil {
				stepRes, stepErr = partial(), ctx.Err()
				stop = true
				return
			}
			if mres.Status == milp.StatusDominated {
				// The externally-shared incumbent beats everything this
				// trajectory can still reach: concede instead of placing on.
				// The partial floorplan rides along (like cancellation) so
				// racers can still account for the steps already solved.
				stepRes, stepErr = partial(), fmt.Errorf("core: step %d: %w", step, ErrDominated)
				stop = true
				return
			}
			if mres.X == nil && len(spec.Critical) > 0 {
				// The timing bounds made this step infeasible (e.g. the partner
				// module was placed too far away in an earlier step): retry
				// without them, as the paper's method degrades these constraints
				// to objectives rather than failing the floorplan.
				relaxed = true
				spec.Critical = nil
				built, err = mipmodel.Build(spec)
				if err != nil {
					stepRes, stepErr = nil, fmt.Errorf("core: step %d: %w", step, err)
					stop = true
					return
				}
				c.presolve(ctx, built, step)
				if err := c.auditStep(built, step); err != nil {
					stepRes, stepErr = nil, fmt.Errorf("core: %w", err)
					stop = true
					return
				}
				opts.Incumbent = built.Hint(hintEnvs, rotated, dws)
				mres = milp.SolveCtx(ctx, built.Model, opts)
			}
			if mres.X == nil {
				if err := ctx.Err(); err != nil {
					stepRes, stepErr = partial(), err
					stop = true
					return
				}
				stepRes, stepErr = nil, fmt.Errorf("core: step %d: subproblem %v (status %v)", step, spec, mres.Status)
				stop = true
				return
			}

			pls := built.Decode(mres.X)
			for _, p := range pls {
				res.Placements = append(res.Placements, Placement{
					Index: p.Index, Env: p.Env, Mod: p.Mod, Rotated: p.Rotated,
				})
				envs = append(envs, p.Env)
			}
			stepHeight := geom.NewSkyline(envs).MaxHeight()
			res.Steps = append(res.Steps, StepTrace{
				Step:            step,
				Added:           append([]int(nil), group...),
				Obstacles:       len(obstacles),
				Modules:         pos,
				Binaries:        len(built.Model.Ints),
				Nodes:           mres.Nodes,
				LPIters:         mres.LPIters,
				DualPivots:      mres.DualPivots,
				Refactors:       mres.Refactorizations,
				Status:          mres.Status,
				IncumbentSource: mres.IncumbentSource,
				Gap:             mres.Gap(),
				Height:          stepHeight,
				Elapsed:         time.Since(stepStart),
				Relaxed:         relaxed,
			})
			c.Obs.Emit(obs.Event{
				Kind: obs.KindStepDone, Step: step, Status: mres.Status.String(),
				Modules: e, Nodes: mres.Nodes, Iters: mres.LPIters,
				Obj: mres.Objective, Height: stepHeight, Relaxed: relaxed,
				DurUS: time.Since(stepStart).Microseconds(),
			})
		})
		if stop {
			return stepRes, stepErr
		}
		pos += e
		step++
	}

	res.Height = geom.NewSkyline(envs).MaxHeight()
	res.Elapsed = time.Since(start)

	if c.PostOptimize {
		iters := c.AdjustIterations
		if iters < 1 {
			iters = 1
		}
		var opt *Result
		var err error
		c.Obs.Do(ctx, "adjust", obs.SpanAttrs{Step: iters}, func(ctx context.Context) {
			opt, err = AdjustFloorplanCtx(ctx, d, res, c, iters)
		})
		if err != nil {
			if ctx.Err() != nil {
				// The adjustment LP was cut off: the un-adjusted floorplan is
				// complete and valid, so serve it as the partial result.
				return res, ctx.Err()
			}
			return nil, fmt.Errorf("core: post-optimize: %w", err)
		}
		opt.Steps = res.Steps
		opt.Source = res.Source
		opt.Elapsed = time.Since(start)
		return opt, nil
	}
	return res, nil
}

// presolve runs the geometric presolve pass on a built subproblem unless
// disabled, reporting the reductions through the observer.
func (c *Config) presolve(ctx context.Context, built *mipmodel.Built, step int) {
	if c.NoPresolve {
		return
	}
	var st mipmodel.PresolveStats
	c.Obs.Do(ctx, "presolve", obs.SpanAttrs{Step: step, Detail: "model"}, func(context.Context) {
		st = built.Presolve()
	})
	if c.Obs.Enabled() {
		c.Obs.Emit(obs.Event{
			Kind: obs.KindPresolve, Detail: "model", Step: step,
			Fixed: st.FixedBinaries, Tightened: st.TightenedBounds,
			MReduction: st.MReduction,
		})
	}
}

// bottomLeftHint builds a feasible packing of the group above the
// obstacles: modules in their default orientation, flexible modules at
// maximum width (dw = 0).
func bottomLeftHint(spec *mipmodel.Spec, obstacles []geom.Rect) (envsOut []geom.Rect, rotated []bool, dws []float64) {
	ws := make([]float64, len(spec.New))
	hs := make([]float64, len(spec.New))
	rotated = make([]bool, len(spec.New))
	dws = make([]float64, len(spec.New))
	for i := range spec.New {
		m := spec.New[i].Mod
		padW, padH := spec.New[i].PadW, spec.New[i].PadH
		switch m.Kind {
		case netlist.Flexible:
			// Maximum width (dw = 0), matching the model's default point.
			_, wmax := m.WidthRange()
			ws[i] = wmax + padW
			hs[i] = m.HeightFor(wmax) + padH
		default:
			ws[i] = m.W + padW
			hs[i] = m.H + padH
			if ws[i] > spec.ChipWidth && m.Rotatable {
				// Default orientation does not fit the chip: hint it rotated.
				rotated[i] = true
				ws[i], hs[i] = m.H+padH, m.W+padW
			}
		}
	}
	envsOut = bottomLeft(obstacles, ws, hs, spec.ChipWidth)
	return envsOut, rotated, dws
}
