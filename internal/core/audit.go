package core

import (
	"fmt"
	"strings"

	"afp/internal/mipmodel"
	"afp/internal/mipmodel/modelcheck"
	"afp/internal/netlist"
)

// auditStep runs the static model audit on a built subproblem when
// Config.Audit is set, turning findings into a hard error: a model that
// fails its own structural invariants must not be handed to the solver.
func (c *Config) auditStep(built *mipmodel.Built, step int) error {
	if !c.Audit {
		return nil
	}
	if fs := modelcheck.Audit(built); len(fs) > 0 {
		return fmt.Errorf("step %d: model audit failed: %s", step, joinFindings(fs))
	}
	return nil
}

// AuditDesign statically audits the design's MILP formulation without
// solving anything: it builds the single whole-design model of Section
// 2.3 under the given configuration and runs the modelcheck audit on it.
// The floorplan service calls it on every solve request before dispatch,
// so malformed instances (a module wider than the chip, a formulation
// bug) are rejected up front rather than burning solver time.
func AuditDesign(d *netlist.Design, cfg Config) error {
	if err := d.Validate(); err != nil {
		return err
	}
	c := cfg.withDefaults(d)
	if len(d.Modules) == 0 {
		return nil
	}
	built, err := mipmodel.Build(c.exactSpec(d))
	if err != nil {
		return fmt.Errorf("core: audit: %w", err)
	}
	if fs := modelcheck.Audit(built); len(fs) > 0 {
		return fmt.Errorf("core: audit: %s", joinFindings(fs))
	}
	return nil
}

func joinFindings(fs []modelcheck.Finding) string {
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = f.String()
	}
	return strings.Join(parts, "; ")
}
