package core

import (
	"context"
	"errors"
	"sort"
	"sync"

	"afp/internal/geom"
	"afp/internal/netlist"
)

// ErrDominated reports that a step's branch and bound exhausted under an
// externally-shared incumbent (Config.ExternalBound) without beating it:
// the external floorplan is at least as good as anything this
// augmentation trajectory can still reach, so the run concedes early
// instead of finishing a provably-worse placement. Portfolio racers
// treat it as a successful concession, not a failure; test with
// errors.Is.
var ErrDominated = errors.New("dominated by external incumbent")

// BackendFunc solves a whole design end to end under a context. It is
// the contract alternative solution paradigms implement to become
// selectable through Config.Backend: the function receives the same
// Config the augmentation path would and returns a decoded Result (or a
// partial result alongside ctx.Err() on cancellation, matching
// FloorplanCtx's convention).
type BackendFunc func(ctx context.Context, d *netlist.Design, cfg Config) (*Result, error)

var (
	backendMu  sync.RWMutex
	backendReg = map[string]BackendFunc{} // guarded by backendMu
)

// RegisterBackend makes fn selectable through Config.Backend under the
// given name; "" and "milp" are reserved for the built-in successive
// augmentation. Registration happens in package init functions —
// importing internal/portfolio registers "portfolio", "anneal",
// "seqpair" and "project" — and a later registration of a name replaces
// the earlier one.
func RegisterBackend(name string, fn BackendFunc) {
	backendMu.Lock()
	defer backendMu.Unlock()
	backendReg[name] = fn
}

// Backends returns the selectable backend names, sorted, including the
// built-in "milp".
func Backends() []string {
	backendMu.RLock()
	names := make([]string, 0, len(backendReg)+1)
	for name := range backendReg {
		names = append(names, name)
	}
	backendMu.RUnlock()
	names = append(names, "milp")
	sort.Strings(names)
	return names
}

func lookupBackend(name string) BackendFunc {
	backendMu.RLock()
	defer backendMu.RUnlock()
	return backendReg[name]
}

// ChipWidthFor resolves the chip width a solve of d under cfg will use:
// cfg.ChipWidth when positive, otherwise the automatic width derived
// from the total padded module area. Racing backends call it up front so
// every contestant solves the same fixed-width instance and their
// heights are comparable.
func ChipWidthFor(d *netlist.Design, cfg Config) float64 {
	c := cfg.withDefaults(d)
	return c.ChipWidth
}

// PackBottomLeft packs axis-aligned boxes of the given dimensions into a
// chip of width chipW with the skyline bottom-left heuristic used to
// seed every MILP step, in slice order, and returns their placements.
// Heuristic backends (the portfolio's projection backend) use it to
// legalize near-feasible layouts: the packing never overlaps and never
// exceeds the chip width as long as each ws[i] <= chipW.
func PackBottomLeft(ws, hs []float64, chipW float64) []geom.Rect {
	return bottomLeft(nil, ws, hs, chipW)
}
