// Package core implements the paper's primary contribution: floorplan
// design by successive augmentation of mixed-integer-programming
// subproblems (Figure 3 of Sutanthavibul, Shragowitz and Rosen, DAC 1990),
// plus the fixed-topology linear-programming optimizer of Section 2.5.
package core

import (
	"time"

	"afp/internal/geom"
	"afp/internal/milp"
	"afp/internal/netlist"
)

// Placement is the final position of one module.
type Placement struct {
	// Index is the module index in the design.
	Index int
	// Env is the occupied box including the routing envelope; all
	// non-overlap guarantees apply to Env.
	Env geom.Rect
	// Mod is the module proper inside Env.
	Mod geom.Rect
	// Rotated reports a 90-degree rotation of a rigid module.
	Rotated bool
}

// StepTrace records one successive-augmentation step for analysis and for
// the Figure 2/3 reproduction.
type StepTrace struct {
	Step      int
	Added     []int // design indices placed in this step
	Obstacles int   // covering rectangles (d) representing the partial floorplan
	Modules   int   // total modules represented by those rectangles
	Binaries  int   // 0-1 variables in the subproblem
	Nodes     int   // branch-and-bound nodes
	LPIters   int   // simplex iterations across all of the step's node solves
	// DualPivots and Refactors attribute the step's LP effort to the
	// sparse engine: warm-started dual simplex pivots and basis
	// refactorizations across all node solves. Zero when every solve
	// took the dense primal path.
	DualPivots int
	Refactors  int
	Status     milp.Status
	// IncumbentSource names who owned the step's best solution: "bb" for
	// the branch and bound itself (or its bottom-left hint), or a
	// portfolio label like "portfolio:anneal" when an externally-shared
	// incumbent dominated the step.
	IncumbentSource string
	// Gap is the step subproblem's relative MIP gap (+Inf when the step
	// stopped without a proven bound); nonzero gaps identify steps whose
	// node or time budget ran out before optimality.
	Gap     float64
	Height  float64 // partial floorplan height after the step
	Elapsed time.Duration
	// Relaxed reports that the step's critical-net length constraints were
	// dropped because they made the subproblem infeasible.
	Relaxed bool
}

// Result is a complete floorplan.
type Result struct {
	Design     *netlist.Design
	ChipWidth  float64
	Height     float64
	Placements []Placement // one per module, in placement order
	Steps      []StepTrace
	Elapsed    time.Duration
	// Source names the solution paradigm that produced the floorplan:
	// "bb" for the successive-augmentation branch and bound, "anneal",
	// "seqpair" or "project" for the standalone heuristics, and
	// "portfolio:<backend>" for a portfolio race's winning contestant.
	Source string
}

// ChipArea returns the chip area W*H.
func (r *Result) ChipArea() float64 { return r.ChipWidth * r.Height }

// Utilization returns total module area divided by chip area, the "area
// utilization" percentage of Tables 1 and 2.
func (r *Result) Utilization() float64 {
	a := r.ChipArea()
	if a <= 0 {
		return 0
	}
	return r.Design.TotalArea() / a
}

// PlacementOf returns the placement of the module with the given design
// index, or nil.
func (r *Result) PlacementOf(index int) *Placement {
	for i := range r.Placements {
		if r.Placements[i].Index == index {
			return &r.Placements[i]
		}
	}
	return nil
}

// Envelopes returns the envelope rectangles of all placements.
func (r *Result) Envelopes() []geom.Rect {
	out := make([]geom.Rect, len(r.Placements))
	for i, p := range r.Placements {
		out[i] = p.Env
	}
	return out
}

// HPWL returns the total half-perimeter wirelength over all nets, using
// module centers as pin positions and net weights as multipliers. It is
// the placement-level wirelength estimate used by the Table 2 experiments
// (the global router of package route refines it).
func (r *Result) HPWL() float64 {
	pos := make(map[int][2]float64, len(r.Placements))
	for _, p := range r.Placements {
		pos[p.Index] = [2]float64{p.Mod.CenterX(), p.Mod.CenterY()}
	}
	var total float64
	for _, net := range r.Design.Nets {
		w := net.Weight
		if w == 0 {
			w = 1
		}
		first := true
		var minX, maxX, minY, maxY float64
		for _, mi := range net.Modules {
			c, ok := pos[mi]
			if !ok {
				continue
			}
			if first {
				minX, maxX, minY, maxY = c[0], c[0], c[1], c[1]
				first = false
				continue
			}
			if c[0] < minX {
				minX = c[0]
			}
			if c[0] > maxX {
				maxX = c[0]
			}
			if c[1] < minY {
				minY = c[1]
			}
			if c[1] > maxY {
				maxY = c[1]
			}
		}
		if !first {
			total += w * ((maxX - minX) + (maxY - minY))
		}
	}
	return total
}

// Overlaps reports whether any pair of placed envelopes overlaps by more
// than the solver tolerance; a valid floorplan returns false.
func (r *Result) Overlaps() bool {
	_, _, bad := geom.AnyOverlapTol(r.Envelopes(), geom.Tol)
	return bad
}
