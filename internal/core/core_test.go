package core

import (
	"math"
	"testing"
	"time"

	"afp/internal/geom"
	"afp/internal/milp"
	"afp/internal/mipmodel"
	"afp/internal/netlist"
)

func tinyDesign() *netlist.Design {
	return &netlist.Design{
		Name: "tiny",
		Modules: []netlist.Module{
			{Name: "a", Kind: netlist.Rigid, W: 4, H: 2, Rotatable: true},
			{Name: "b", Kind: netlist.Rigid, W: 2, H: 2},
			{Name: "c", Kind: netlist.Flexible, Area: 8, MinAspect: 0.5, MaxAspect: 2},
			{Name: "d", Kind: netlist.Rigid, W: 2, H: 4, Rotatable: true},
		},
		Nets: []netlist.Net{
			{Name: "n1", Modules: []int{0, 1}, Weight: 1},
			{Name: "n2", Modules: []int{1, 2}, Weight: 1},
			{Name: "n3", Modules: []int{2, 3}, Weight: 1},
		},
	}
}

func checkValid(t *testing.T, d *netlist.Design, r *Result) {
	t.Helper()
	if len(r.Placements) != len(d.Modules) {
		t.Fatalf("placed %d of %d modules", len(r.Placements), len(d.Modules))
	}
	if r.Overlaps() {
		t.Fatalf("floorplan has overlapping envelopes: %v", r.Envelopes())
	}
	for _, p := range r.Placements {
		if p.Env.X < -1e-6 || p.Env.Y < -1e-6 {
			t.Fatalf("module %d outside chip (negative): %v", p.Index, p.Env)
		}
		if p.Env.X2() > r.ChipWidth+1e-6 {
			t.Fatalf("module %d crosses right edge: %v (W=%v)", p.Index, p.Env, r.ChipWidth)
		}
		if p.Env.Y2() > r.Height+1e-6 {
			t.Fatalf("module %d above chip height %v: %v", p.Index, r.Height, p.Env)
		}
		if !p.Env.ContainsRect(p.Mod) {
			t.Fatalf("module %d not inside its envelope: %v vs %v", p.Index, p.Mod, p.Env)
		}
	}
	// Flexible modules conserve area; rigid keep their dimensions.
	for _, p := range r.Placements {
		m := &d.Modules[p.Index]
		switch m.Kind {
		case netlist.Flexible:
			if math.Abs(p.Mod.Area()-m.Area) > 1e-6 {
				t.Fatalf("flexible %q area %v, want %v", m.Name, p.Mod.Area(), m.Area)
			}
			ar := p.Mod.W / p.Mod.H
			if ar < m.MinAspect-1e-6 || ar > m.MaxAspect+1e-6 {
				t.Fatalf("flexible %q aspect %v outside [%v, %v]", m.Name, ar, m.MinAspect, m.MaxAspect)
			}
		default:
			w, h := m.W, m.H
			if p.Rotated {
				w, h = h, w
			}
			if math.Abs(p.Mod.W-w) > 1e-6 || math.Abs(p.Mod.H-h) > 1e-6 {
				t.Fatalf("rigid %q placed as %vx%v, want %vx%v", m.Name, p.Mod.W, p.Mod.H, w, h)
			}
		}
	}
}

func TestFloorplanTiny(t *testing.T) {
	d := tinyDesign()
	r, err := Floorplan(d, Config{ChipWidth: 6, GroupSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	checkValid(t, d, r)
	// Total module area 8+4+8+8 = 28; chip 6 wide. A decent packing should
	// land well under height 10 (utilization > 46%).
	if r.Height > 10 {
		t.Fatalf("height = %v, too loose", r.Height)
	}
	if u := r.Utilization(); u < 0.4 || u > 1.0+1e-9 {
		t.Fatalf("utilization = %v", u)
	}
	if len(r.Steps) != 2 {
		t.Fatalf("steps = %d, want 2", len(r.Steps))
	}
}

func TestFloorplanSingleGroupIsOptimal(t *testing.T) {
	// With all modules in one group the subproblem is solved to proven
	// optimality; for this instance the optimum height on a width-6 chip
	// is 5 (28 area units cannot beat ceil(28/6)=4.67, and discreteness
	// pushes it to at most 6; assert the solver proves optimality and
	// beats the trivial stacking).
	d := tinyDesign()
	r, err := Floorplan(d, Config{ChipWidth: 6, GroupSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	checkValid(t, d, r)
	if r.Steps[0].Status != milp.StatusOptimal {
		t.Fatalf("step status = %v, want optimal", r.Steps[0].Status)
	}
	if r.Height > 6+1e-6 {
		t.Fatalf("height = %v, want <= 6", r.Height)
	}
	if r.Height < 28.0/6-1e-6 {
		t.Fatalf("height = %v below area lower bound", r.Height)
	}
}

func TestFloorplanAutoWidth(t *testing.T) {
	d := tinyDesign()
	r, err := Floorplan(d, Config{GroupSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	checkValid(t, d, r)
	if r.ChipWidth <= 0 {
		t.Fatalf("auto width = %v", r.ChipWidth)
	}
}

func TestFloorplanMedium(t *testing.T) {
	if testing.Short() {
		t.Skip("medium floorplan in -short mode")
	}
	d := netlist.Random(10, 5)
	r, err := Floorplan(d, Config{GroupSize: 3, MILP: milp.Options{MaxNodes: 3000, TimeLimit: 5 * time.Second}})
	if err != nil {
		t.Fatal(err)
	}
	checkValid(t, d, r)
	if u := r.Utilization(); u < 0.5 {
		t.Fatalf("utilization = %v, suspiciously low", u)
	}
}

func TestFloorplanWireObjective(t *testing.T) {
	d := tinyDesign()
	r, err := Floorplan(d, Config{ChipWidth: 6, GroupSize: 2, Objective: mipmodel.AreaWire, WireWeight: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	checkValid(t, d, r)
	if r.HPWL() <= 0 {
		t.Fatalf("HPWL = %v", r.HPWL())
	}
}

func TestFloorplanEnvelopes(t *testing.T) {
	d := tinyDesign()
	for i := range d.Modules {
		d.Modules[i].Pins = [4]int{2, 2, 2, 2}
	}
	r, err := Floorplan(d, Config{ChipWidth: 8, GroupSize: 2, Envelopes: true, PitchH: 0.25, PitchV: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	checkValid(t, d, r)
	// Envelopes must be strictly larger than modules.
	for _, p := range r.Placements {
		if p.Env.W <= p.Mod.W || p.Env.H <= p.Mod.H {
			t.Fatalf("envelope %v not larger than module %v", p.Env, p.Mod)
		}
	}
}

func TestFloorplanDeterministic(t *testing.T) {
	d := tinyDesign()
	// Workers: 1 pins the serial search: at Workers > 1 each step still
	// proves the same objective but may pick a different optimal
	// placement, which run-to-run comparison cannot tolerate.
	r1, err := Floorplan(d, Config{ChipWidth: 6, GroupSize: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Floorplan(d, Config{ChipWidth: 6, GroupSize: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Height != r2.Height || len(r1.Placements) != len(r2.Placements) {
		t.Fatal("floorplanner not deterministic")
	}
	for i := range r1.Placements {
		if r1.Placements[i].Env != r2.Placements[i].Env {
			t.Fatalf("placement %d differs: %v vs %v", i, r1.Placements[i].Env, r2.Placements[i].Env)
		}
	}
}

func TestFloorplanEmptyDesign(t *testing.T) {
	r, err := Floorplan(&netlist.Design{}, Config{ChipWidth: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Placements) != 0 || r.Height != 0 {
		t.Fatalf("empty design result: %+v", r)
	}
}

func TestFloorplanBadOrdering(t *testing.T) {
	d := tinyDesign()
	if _, err := Floorplan(d, Config{ChipWidth: 6, Ordering: []int{0, 1}}); err == nil {
		t.Fatal("expected error for short ordering")
	}
}

func TestFloorplanInvalidDesign(t *testing.T) {
	d := &netlist.Design{Modules: []netlist.Module{{Name: "", Kind: netlist.Rigid, W: 1, H: 1}}}
	if _, err := Floorplan(d, Config{ChipWidth: 5}); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestOptimizeTopologyNeverWorse(t *testing.T) {
	d := tinyDesign()
	r, err := Floorplan(d, Config{ChipWidth: 6, GroupSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := OptimizeTopology(d, r, Config{ChipWidth: 6})
	if err != nil {
		t.Fatal(err)
	}
	checkValid(t, d, opt)
	if opt.Height > r.Height+1e-6 {
		t.Fatalf("topology LP worsened height: %v -> %v", r.Height, opt.Height)
	}
}

func TestOptimizeTopologyCompactsSlack(t *testing.T) {
	// Hand-build a deliberately loose floorplan: two 2x2 modules with a
	// gap; the LP must close the vertical slack.
	d := &netlist.Design{
		Modules: []netlist.Module{
			{Name: "a", Kind: netlist.Rigid, W: 2, H: 2},
			{Name: "b", Kind: netlist.Rigid, W: 2, H: 2},
		},
	}
	loose := &Result{
		Design:    d,
		ChipWidth: 4,
		Height:    7,
		Placements: []Placement{
			{Index: 0, Env: geom.NewRect(0, 0, 2, 2), Mod: geom.NewRect(0, 0, 2, 2)},
			{Index: 1, Env: geom.NewRect(0, 5, 2, 2), Mod: geom.NewRect(0, 5, 2, 2)},
		},
	}
	opt, err := OptimizeTopology(d, loose, Config{ChipWidth: 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(opt.Height-4) > 1e-6 {
		t.Fatalf("height = %v, want 4 (stacked tight)", opt.Height)
	}
	if opt.Overlaps() {
		t.Fatal("optimized floorplan overlaps")
	}
}

func TestOptimizeTopologyReshapesFlexible(t *testing.T) {
	// A flexible module (area 8, aspect 0.5..2) placed at width 2 (height
	// 4) beside a 2x2 rigid on a width-6 chip: widening the flexible to 4
	// (height 2) reduces the chip height from 4 to 2.
	d := &netlist.Design{
		Modules: []netlist.Module{
			{Name: "f", Kind: netlist.Flexible, Area: 8, MinAspect: 0.5, MaxAspect: 2},
			{Name: "r", Kind: netlist.Rigid, W: 2, H: 2},
		},
	}
	start := &Result{
		Design:    d,
		ChipWidth: 6,
		Height:    4,
		Placements: []Placement{
			{Index: 0, Env: geom.NewRect(0, 0, 2, 4), Mod: geom.NewRect(0, 0, 2, 4)},
			{Index: 1, Env: geom.NewRect(2, 0, 2, 2), Mod: geom.NewRect(2, 0, 2, 2)},
		},
	}
	opt, err := OptimizeTopology(d, start, Config{ChipWidth: 6})
	if err != nil {
		t.Fatal(err)
	}
	if opt.Height > 4+1e-9 {
		t.Fatalf("height = %v, must not exceed input", opt.Height)
	}
	// With the secant model height 2 is reachable only approximately; at
	// minimum the LP should improve on 4.
	if opt.Height >= 4-1e-9 {
		t.Fatalf("height = %v, expected improvement below 4", opt.Height)
	}
	checkValid(t, d, opt)
}

func TestPostOptimizeFlag(t *testing.T) {
	d := tinyDesign()
	r, err := Floorplan(d, Config{ChipWidth: 6, GroupSize: 2, PostOptimize: true})
	if err != nil {
		t.Fatal(err)
	}
	checkValid(t, d, r)
	if len(r.Steps) == 0 {
		t.Fatal("steps lost by post-optimize")
	}
}

func TestBottomLeftPacksTightly(t *testing.T) {
	rects := bottomLeft(nil, []float64{2, 2, 2}, []float64{2, 2, 2}, 6)
	if len(rects) != 3 {
		t.Fatalf("placed %d", len(rects))
	}
	for _, r := range rects {
		if r.Y != 0 {
			t.Fatalf("expected ground placement, got %v", rects)
		}
	}
	if i, j, bad := geom.AnyOverlap(rects); bad {
		t.Fatalf("hint overlap %d/%d: %v", i, j, rects)
	}
}

func TestBottomLeftStacksWhenNarrow(t *testing.T) {
	rects := bottomLeft(nil, []float64{3, 3}, []float64{1, 1}, 4)
	if rects[1].Y == 0 {
		t.Fatalf("second box should stack: %v", rects)
	}
}

func TestSupportHeight(t *testing.T) {
	placed := []geom.Rect{geom.NewRect(0, 0, 2, 3), geom.NewRect(2, 0, 2, 1)}
	if h := supportHeight(placed, 0, 2); h != 3 {
		t.Fatalf("support over tall = %v", h)
	}
	if h := supportHeight(placed, 2, 4); h != 1 {
		t.Fatalf("support over short = %v", h)
	}
	if h := supportHeight(placed, 4, 6); h != 0 {
		t.Fatalf("support over empty = %v", h)
	}
	// Boundary touch does not count.
	if h := supportHeight(placed, 2, 2); h != 0 {
		t.Fatalf("zero-width span = %v", h)
	}
}
