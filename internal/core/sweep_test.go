package core

import (
	"testing"

	"afp/internal/netlist"
)

func TestFloorplanBestWidth(t *testing.T) {
	d := tinyDesign()
	best, trials, err := FloorplanBestWidth(d, Config{ChipWidth: 6, GroupSize: 2},
		[]float64{0.8, 1.0, 1.3})
	if err != nil {
		t.Fatal(err)
	}
	if len(trials) != 3 {
		t.Fatalf("trials = %d", len(trials))
	}
	checkValid(t, d, best)
	// Best is no worse than any individual trial.
	for _, tr := range trials {
		if tr.Err != nil {
			continue
		}
		if best.ChipArea() > tr.Result.ChipArea()+1e-9 {
			t.Fatalf("best area %v worse than trial %v (factor %v)",
				best.ChipArea(), tr.Result.ChipArea(), tr.Factor)
		}
	}
}

func TestFloorplanBestWidthDefaults(t *testing.T) {
	d := tinyDesign()
	best, trials, err := FloorplanBestWidth(d, Config{GroupSize: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(trials) != 3 {
		t.Fatalf("default factors = %d trials", len(trials))
	}
	checkValid(t, d, best)
}

func TestFloorplanBestWidthDeterministic(t *testing.T) {
	d := netlist.Random(6, 12)
	// Workers: 1 pins the serial search; see TestFloorplanDeterministic.
	b1, _, err := FloorplanBestWidth(d, Config{GroupSize: 3, Workers: 1}, []float64{0.9, 1.1})
	if err != nil {
		t.Fatal(err)
	}
	b2, _, err := FloorplanBestWidth(d, Config{GroupSize: 3, Workers: 1}, []float64{0.9, 1.1})
	if err != nil {
		t.Fatal(err)
	}
	if b1.ChipArea() != b2.ChipArea() || b1.ChipWidth != b2.ChipWidth {
		t.Fatal("width sweep not deterministic")
	}
}

func TestFloorplanBestWidthAllFail(t *testing.T) {
	// A module wider than every candidate chip width fails all trials.
	d := &netlist.Design{Modules: []netlist.Module{
		{Name: "wide", Kind: netlist.Rigid, W: 100, H: 1},
	}}
	_, _, err := FloorplanBestWidth(d, Config{ChipWidth: 5, GroupSize: 1}, []float64{1})
	if err == nil {
		t.Fatal("expected sweep failure")
	}
}
