// Package server exposes the floorplanner as a long-running HTTP/JSON
// service: asynchronous solve jobs over a bounded worker pool, per-job
// cancellation and deadlines threaded down to the simplex pivot loop,
// an LRU result cache keyed by a canonical instance hash, and the obs
// telemetry layer surfaced as per-job JSONL traces and a /metrics
// endpoint. cmd/floorpland is the thin binary around it.
package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"afp/internal/core"
	"afp/internal/mipmodel"
	"afp/internal/netlist"
)

// SolveRequest is the body of POST /v1/solve. Exactly one of Design and
// Generate must be set: Design carries the instance inline, Generate
// names a built-in benchmark generator ("ami33", "ami49", "rand" with N
// and Seed). Generated designs are expanded before hashing, so a
// generated request and the equivalent inline design share a cache key.
type SolveRequest struct {
	Design   *DesignSpec `json:"design,omitempty"`
	Generate string      `json:"generate,omitempty"`
	// N is the module count for the "rand" generator.
	N int `json:"n,omitempty"`
	// Seed drives the "rand" generator.
	Seed    int64        `json:"seed,omitempty"`
	Options SolveOptions `json:"options"`
}

// SolveOptions selects and tunes the solver. The zero value means: the
// successive-augmentation solver, automatic chip width, area objective,
// library defaults everywhere, no deadline.
type SolveOptions struct {
	// Solver is "augment" (successive augmentation, the default) or
	// "anneal" (the Wong-Liu slicing baseline).
	Solver string `json:"solver,omitempty"`
	// Backend selects the solution paradigm of an "augment" job: ""
	// or "milp" for the paper's successive augmentation, "portfolio" to
	// race every paradigm with a shared incumbent board, or a standalone
	// contestant ("anneal", "seqpair", "project"). Unlike TimeoutMS and
	// Workers, the backend changes which floorplan comes back, so it is
	// part of the cache key.
	Backend string `json:"backend,omitempty"`
	// ChipWidth fixes the chip width; 0 selects it from the module area.
	ChipWidth float64 `json:"chipWidth,omitempty"`
	// GroupSize is the augmentation group size e; 0 means 4.
	GroupSize int `json:"groupSize,omitempty"`
	// Objective is "area" (default) or "areawire".
	Objective string `json:"objective,omitempty"`
	// WireWeight is the wirelength lambda of the areawire objective.
	WireWeight float64 `json:"wireWeight,omitempty"`
	// PostOptimize runs the Section 2.5 fixed-topology LP afterwards.
	PostOptimize bool `json:"postOptimize,omitempty"`
	// AnnealSeed seeds the annealing baseline.
	AnnealSeed int64 `json:"annealSeed,omitempty"`
	// TimeoutMS is the per-job solve deadline in milliseconds; 0 means
	// none. Deadlines are enforced down in the pivot loops, and a job cut
	// off mid-solve reports its best partial floorplan. The deadline is
	// deliberately NOT part of the cache key: only complete results are
	// cached, and a complete result is valid under any deadline.
	TimeoutMS int64 `json:"timeoutMs,omitempty"`
	// Workers is the branch-and-bound worker count inside this job's MILP
	// subproblems. 0 (the default) means serial: the pool already runs
	// jobs concurrently, so jobs don't claim extra cores unless asked.
	// The server caps the value so pool×workers never oversubscribes the
	// host. Like the deadline, Workers is an execution knob, not part of
	// the problem, and is excluded from the cache key — any worker count
	// proves the same optimum.
	Workers int `json:"workers,omitempty"`
	// NoPresolve disables the model presolve (tightened big-M coefficients,
	// forced-binary fixing, bound propagation) for this job. Presolve never
	// changes the optimum — it only prunes the search — so, like TimeoutMS
	// and Workers, the knob is an execution detail excluded from the cache
	// key.
	NoPresolve bool `json:"noPresolve,omitempty"`
}

// DesignSpec is the inline JSON form of a netlist.Design.
type DesignSpec struct {
	Name    string       `json:"name,omitempty"`
	Modules []ModuleSpec `json:"modules"`
	Nets    []NetSpec    `json:"nets,omitempty"`
}

// ModuleSpec is one module of an inline design.
type ModuleSpec struct {
	Name string `json:"name"`
	// Kind is "rigid" (default) or "flexible".
	Kind      string  `json:"kind,omitempty"`
	W         float64 `json:"w,omitempty"`
	H         float64 `json:"h,omitempty"`
	Rotatable bool    `json:"rotatable,omitempty"`
	Area      float64 `json:"area,omitempty"`
	MinAspect float64 `json:"minAspect,omitempty"`
	MaxAspect float64 `json:"maxAspect,omitempty"`
	// Pins are the per-side pin counts in north, east, south, west order.
	Pins [4]int `json:"pins,omitempty"`
}

// NetSpec is one net of an inline design; modules are named.
type NetSpec struct {
	Name     string   `json:"name,omitempty"`
	Modules  []string `json:"modules"`
	Weight   float64  `json:"weight,omitempty"`
	Critical bool     `json:"critical,omitempty"`
}

// Instance is a fully resolved, validated solve request: the concrete
// design plus normalized options, ready to hash and to solve.
type Instance struct {
	Design *netlist.Design
	Opts   SolveOptions
}

// Resolve expands and validates a request into an Instance. Generator
// references are expanded to concrete designs and option defaults are
// filled in, so that every request equivalent to this one resolves to a
// byte-identical canonical form.
func Resolve(req *SolveRequest) (*Instance, error) {
	if (req.Design == nil) == (req.Generate == "") {
		return nil, fmt.Errorf("exactly one of design and generate must be set")
	}
	var d *netlist.Design
	switch {
	case req.Design != nil:
		var err error
		d, err = req.Design.toDesign()
		if err != nil {
			return nil, err
		}
	default:
		switch strings.ToLower(req.Generate) {
		case "ami33":
			d = netlist.AMI33()
		case "ami49":
			d = netlist.AMI49()
		case "rand":
			if req.N <= 0 {
				return nil, fmt.Errorf("generate %q requires n > 0", req.Generate)
			}
			d = netlist.Random(req.N, req.Seed)
		default:
			return nil, fmt.Errorf("unknown generator %q (want ami33, ami49 or rand)", req.Generate)
		}
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("invalid design: %w", err)
	}

	opts := req.Options
	switch opts.Solver {
	case "", "augment":
		opts.Solver = "augment"
	case "anneal":
	default:
		return nil, fmt.Errorf("unknown solver %q (want augment or anneal)", opts.Solver)
	}
	switch opts.Backend {
	case "", "milp":
		// Normalize: "milp" and "" are the same built-in augmentation
		// path, so equivalent requests hash equal.
		opts.Backend = ""
	case "portfolio", "anneal", "seqpair", "project":
		if opts.Solver != "augment" {
			return nil, fmt.Errorf("backend %q requires the augment solver", opts.Backend)
		}
	default:
		return nil, fmt.Errorf("unknown backend %q (want milp, portfolio, anneal, seqpair or project)", opts.Backend)
	}
	switch opts.Objective {
	case "", "area":
		opts.Objective = "area"
	case "areawire":
	default:
		return nil, fmt.Errorf("unknown objective %q (want area or areawire)", opts.Objective)
	}
	if opts.GroupSize <= 0 {
		opts.GroupSize = 4
	}
	if opts.TimeoutMS < 0 {
		return nil, fmt.Errorf("timeoutMs must be >= 0")
	}
	if opts.Workers < 0 {
		return nil, fmt.Errorf("workers must be >= 0")
	}
	return &Instance{Design: d, Opts: opts}, nil
}

// toDesign converts the inline spec, resolving net members by name.
func (s *DesignSpec) toDesign() (*netlist.Design, error) {
	d := &netlist.Design{Name: s.Name}
	if d.Name == "" {
		d.Name = "inline"
	}
	byName := make(map[string]int, len(s.Modules))
	for i, ms := range s.Modules {
		if ms.Name == "" {
			return nil, fmt.Errorf("module %d: missing name", i)
		}
		if _, dup := byName[ms.Name]; dup {
			return nil, fmt.Errorf("duplicate module %q", ms.Name)
		}
		byName[ms.Name] = i
		m := netlist.Module{Name: ms.Name, Pins: ms.Pins}
		switch strings.ToLower(ms.Kind) {
		case "", "rigid":
			m.Kind = netlist.Rigid
			m.W, m.H, m.Rotatable = ms.W, ms.H, ms.Rotatable
		case "flexible":
			m.Kind = netlist.Flexible
			m.Area, m.MinAspect, m.MaxAspect = ms.Area, ms.MinAspect, ms.MaxAspect
		default:
			return nil, fmt.Errorf("module %q: unknown kind %q", ms.Name, ms.Kind)
		}
		d.Modules = append(d.Modules, m)
	}
	for i, ns := range s.Nets {
		n := netlist.Net{Name: ns.Name, Weight: ns.Weight, Critical: ns.Critical}
		if n.Name == "" {
			n.Name = fmt.Sprintf("n%d", i)
		}
		for _, name := range ns.Modules {
			mi, ok := byName[name]
			if !ok {
				return nil, fmt.Errorf("net %q references unknown module %q", n.Name, name)
			}
			n.Modules = append(n.Modules, mi)
		}
		d.Nets = append(d.Nets, n)
	}
	return d, nil
}

// canonicalInstance is the hashed form. Every field that changes the
// solve outcome appears here; the deadline and the worker count do not
// (see SolveOptions.TimeoutMS and SolveOptions.Workers).
type canonicalInstance struct {
	Modules []netlist.Module
	Nets    []canonicalNet
	Solver  string
	Backend string
	Width   float64
	Group   int
	Obj     string
	Lambda  float64
	Post    bool
	Seed    int64
}

type canonicalNet struct {
	Modules  []int
	Weight   float64
	Critical bool
}

// Key returns the canonical cache key: a sha256 over the normalized
// instance. Names are excluded (renaming a module does not change the
// floorplan), net order is normalized, and generator requests hash the
// generated design itself.
func (in *Instance) Key() string {
	c := canonicalInstance{
		Modules: in.Design.Modules,
		Solver:  in.Opts.Solver,
		Backend: in.Opts.Backend,
		Width:   in.Opts.ChipWidth,
		Group:   in.Opts.GroupSize,
		Obj:     in.Opts.Objective,
		Lambda:  in.Opts.WireWeight,
		Post:    in.Opts.PostOptimize,
		Seed:    in.Opts.AnnealSeed,
	}
	// Strip names so that renamings hash equal.
	c.Modules = append([]netlist.Module(nil), c.Modules...)
	for i := range c.Modules {
		c.Modules[i].Name = ""
	}
	for _, n := range in.Design.Nets {
		mods := append([]int(nil), n.Modules...)
		sort.Ints(mods)
		c.Nets = append(c.Nets, canonicalNet{Modules: mods, Weight: n.Weight, Critical: n.Critical})
	}
	sort.Slice(c.Nets, func(i, j int) bool {
		a, b := c.Nets[i], c.Nets[j]
		for k := 0; k < len(a.Modules) && k < len(b.Modules); k++ {
			if a.Modules[k] != b.Modules[k] {
				return a.Modules[k] < b.Modules[k]
			}
		}
		if len(a.Modules) != len(b.Modules) {
			return len(a.Modules) < len(b.Modules)
		}
		//vet:allow toleq -- the canonical cache-key ordering must be exact and total
		if a.Weight != b.Weight {
			return a.Weight < b.Weight
		}
		return !a.Critical && b.Critical
	})
	blob, err := json.Marshal(&c)
	if err != nil {
		// Marshal of plain structs cannot fail; keep the panic loud if the
		// schema ever grows an unmarshalable field.
		panic(fmt.Sprintf("server: canonical marshal: %v", err))
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:])
}

// coreConfig maps the normalized options onto the augmentation solver.
func (in *Instance) coreConfig() core.Config {
	cfg := core.Config{
		ChipWidth:    in.Opts.ChipWidth,
		GroupSize:    in.Opts.GroupSize,
		WireWeight:   in.Opts.WireWeight,
		PostOptimize: in.Opts.PostOptimize,
		NoPresolve:   in.Opts.NoPresolve,
		Backend:      in.Opts.Backend,
		BackendSeed:  in.Opts.AnnealSeed,
	}
	if in.Opts.Objective == "areawire" {
		cfg.Objective = mipmodel.AreaWire
	}
	return cfg
}
