package server

import (
	"container/list"
	"sync"
)

// resultCache is a concurrency-safe LRU over canonical instance keys.
// Only complete (non-partial) results are stored, so a hit is valid for
// any requested deadline. Values are *ResultPayload treated as immutable
// after insertion: hits hand out the shared pointer.
type resultCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List               // guarded by mu; front = most recently used; values are *cacheEntry
	byKey map[string]*list.Element // guarded by mu
}

type cacheEntry struct {
	key string
	val *ResultPayload // guarded by server.resultCache.mu
}

// newResultCache returns a cache holding up to capacity results;
// capacity <= 0 disables caching (every lookup misses, puts are
// dropped).
func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:   capacity,
		order: list.New(),
		byKey: make(map[string]*list.Element),
	}
}

// get returns the cached result for key and refreshes its recency.
func (c *resultCache) get(key string) (*ResultPayload, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// put stores a result, evicting the least recently used entry when the
// cache is full.
func (c *resultCache) put(key string, val *ResultPayload) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.order.MoveToFront(el)
		return
	}
	c.byKey[key] = c.order.PushFront(&cacheEntry{key: key, val: val})
	for c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.byKey, last.Value.(*cacheEntry).key)
	}
}

// len reports the number of cached results.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
