package server

import (
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestBackendValidation(t *testing.T) {
	req := smallRequest()
	req.Options.Backend = "warp"
	if _, err := Resolve(req); err == nil || !strings.Contains(err.Error(), "unknown backend") {
		t.Fatalf("unknown backend error = %v", err)
	}
	req = smallRequest()
	req.Options.Solver = "anneal"
	req.Options.Backend = "portfolio"
	if _, err := Resolve(req); err == nil || !strings.Contains(err.Error(), "augment") {
		t.Fatalf("backend+anneal-solver error = %v", err)
	}
}

// The backend changes which floorplan comes back, so it must be part of
// the cache key — and "milp" must normalize to the default so the two
// spellings share a key.
func TestBackendInCacheKey(t *testing.T) {
	key := func(backend string) string {
		req := smallRequest()
		req.Options.Backend = backend
		in, err := Resolve(req)
		if err != nil {
			t.Fatalf("backend %q: %v", backend, err)
		}
		return in.Key()
	}
	if key("") != key("milp") {
		t.Fatal("backend milp and default hash differently")
	}
	base := key("")
	seen := map[string]string{"": base}
	for _, b := range []string{"portfolio", "anneal", "seqpair", "project"} {
		k := key(b)
		for prev, pk := range seen {
			if k == pk {
				t.Fatalf("backend %q and %q share a cache key", b, prev)
			}
		}
		seen[b] = k
	}
}

// A portfolio job runs end to end through the service: the result names
// the winning backend, the floorplan is legal, and — the loser-release
// regression — the pool accounting returns to idle once the race's
// cancelled contestants unwind.
func TestPortfolioJobReleasesPool(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 1})
	m := ts.Metrics()

	req := smallRequest()
	req.Options.Backend = "portfolio"
	req.Options.TimeoutMS = 30000
	sr := ts.submit(t, req, http.StatusAccepted)
	v := ts.await(t, sr.ID, 30*time.Second)
	if v.State != StateDone {
		t.Fatalf("portfolio job state = %s (%s)", v.State, v.Error)
	}

	var res ResultPayload
	ts.do(t, "GET", "/v1/jobs/"+sr.ID+"/result", nil, http.StatusOK, &res)
	if !strings.HasPrefix(res.Source, "portfolio:") {
		t.Fatalf("result source = %q, want portfolio:<backend>", res.Source)
	}
	if len(res.Violations) > 0 {
		t.Fatalf("portfolio result has violations: %v", res.Violations)
	}
	if res.Placed != res.Modules {
		t.Fatalf("portfolio result partial: %d/%d", res.Placed, res.Modules)
	}

	// Cancelled losers must free their workers: both pool gauges drain to
	// zero after the job completes.
	idle := false
	for deadline := time.Now().Add(2 * time.Second); time.Now().Before(deadline); {
		if m.Gauge("running_jobs") == 0 && m.Gauge("queue_depth") == 0 {
			idle = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !idle {
		t.Fatalf("pool did not return to idle: running_jobs=%v queue_depth=%v",
			m.Gauge("running_jobs"), m.Gauge("queue_depth"))
	}

	// A second identical submission is a cache hit: complete verified
	// portfolio results are cacheable like any other.
	sr2 := ts.submit(t, req, http.StatusOK)
	if !sr2.Cached {
		t.Fatalf("second portfolio submission not served from cache: %+v", sr2)
	}
}

// The augment path stamps who owned each step's incumbent; without a
// portfolio race that is the branch and bound itself.
func TestStepSourceInPayload(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 1})
	sr := ts.submit(t, smallRequest(), http.StatusAccepted)
	v := ts.await(t, sr.ID, 30*time.Second)
	if v.State != StateDone {
		t.Fatalf("job state = %s", v.State)
	}
	var res ResultPayload
	ts.do(t, "GET", "/v1/jobs/"+sr.ID+"/result", nil, http.StatusOK, &res)
	if res.Source != "bb" {
		t.Fatalf("augment result source = %q, want bb", res.Source)
	}
	if len(res.Steps) == 0 {
		t.Fatal("no steps in payload")
	}
	for _, st := range res.Steps {
		if st.Source != "bb" {
			t.Fatalf("step %d source = %q, want bb", st.Step, st.Source)
		}
	}
}
