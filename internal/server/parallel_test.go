package server

import (
	"context"
	"net/http"
	"runtime"
	"sync"
	"testing"
	"time"
)

func TestWorkersExcludedFromCacheKey(t *testing.T) {
	// Workers is an execution knob like the deadline: any worker count
	// proves the same optimum, so it must not fragment the cache.
	a, err := Resolve(&SolveRequest{Generate: "rand", N: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Resolve(&SolveRequest{Generate: "rand", N: 6, Seed: 1, Options: SolveOptions{Workers: 4, TimeoutMS: 500}})
	if err != nil {
		t.Fatal(err)
	}
	if a.Key() != b.Key() {
		t.Fatalf("workers/deadline changed the cache key: %s vs %s", a.Key(), b.Key())
	}
	if _, err := Resolve(&SolveRequest{Generate: "rand", N: 6, Seed: 1, Options: SolveOptions{Workers: -1}}); err == nil {
		t.Fatal("negative workers accepted")
	}
}

func TestJobWorkersCap(t *testing.T) {
	s := New(Config{Workers: 2})
	defer func() { _ = s.Shutdown(context.Background()) }()
	if got := s.jobWorkers(0); got != 1 {
		t.Errorf("jobWorkers(0) = %d, want 1 (unset stays serial)", got)
	}
	maxPer := runtime.GOMAXPROCS(0) / 2
	if maxPer < 1 {
		maxPer = 1
	}
	if got := s.jobWorkers(64); got != maxPer {
		t.Errorf("jobWorkers(64) = %d, want cap %d", got, maxPer)
	}
	if got := s.jobWorkers(1); got != 1 {
		t.Errorf("jobWorkers(1) = %d, want 1", got)
	}
}

func TestGaugeLifecycle(t *testing.T) {
	// queue_depth and running_jobs must rise while a job occupies the
	// single worker and another waits, and fall back to zero when both
	// terminate.
	ts := newTestServer(t, Config{Workers: 1})
	m := ts.Metrics()

	running := ts.submit(t, hardRequest(1500), http.StatusAccepted)
	queued := ts.submit(t, &SolveRequest{
		Generate: "rand", N: 24, Seed: 8,
		Options: SolveOptions{TimeoutMS: 1500},
	}, http.StatusAccepted)

	rose := false
	for deadline := time.Now().Add(2 * time.Second); time.Now().Before(deadline); {
		if m.Gauge("running_jobs") == 1 && m.Gauge("queue_depth") == 1 {
			rose = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !rose {
		t.Fatalf("gauges never rose: running_jobs=%v queue_depth=%v",
			m.Gauge("running_jobs"), m.Gauge("queue_depth"))
	}

	ts.await(t, running.ID, 10*time.Second)
	ts.await(t, queued.ID, 10*time.Second)
	// The terminal job state is published before the deferred gauge
	// decrement runs; give the worker goroutine a beat to unwind.
	for deadline := time.Now().Add(2 * time.Second); time.Now().Before(deadline); {
		if m.Gauge("running_jobs") == 0 && m.Gauge("queue_depth") == 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if rj, qd := m.Gauge("running_jobs"), m.Gauge("queue_depth"); rj != 0 || qd != 0 {
		t.Fatalf("gauges did not fall: running_jobs=%v queue_depth=%v", rj, qd)
	}

	// The metrics endpoint reports the gauges and the derived utilization.
	var snap map[string]float64
	ts.do(t, "GET", "/metrics", nil, http.StatusOK, &snap)
	for _, k := range []string{"running_jobs", "queue_depth", "pool_workers", "worker_utilization_pct"} {
		if _, ok := snap[k]; !ok {
			t.Errorf("/metrics missing %q: %v", k, snap)
		}
	}
	if snap["worker_utilization_pct"] <= 0 {
		t.Errorf("worker_utilization_pct = %v after two solves, want > 0", snap["worker_utilization_pct"])
	}
}

func TestParallelSolveRaceStress(t *testing.T) {
	// A 9-module instance solved with a parallel tree search (workers: 4)
	// while cache hits and /metrics reads hammer the server concurrently.
	// Run under -race via `make race`, this exercises the node pool, the
	// shared incumbent, gauge updates and the cache lock together.
	// No deadline: only complete results enter the cache, and under the
	// race detector's slowdown a deadline would make the seed job partial
	// and defeat the cache-hit half of the test.
	ts := newTestServer(t, Config{Workers: 2})
	req := &SolveRequest{
		Generate: "rand", N: 9, Seed: 3,
		Options: SolveOptions{Workers: 4},
	}
	first := ts.submit(t, req, http.StatusAccepted)
	if v := ts.await(t, first.ID, 3*time.Minute); v.State != StateDone {
		t.Fatalf("seed job state = %s (%s)", v.State, v.Error)
	}

	second := ts.submit(t, &SolveRequest{
		Generate: "rand", N: 9, Seed: 4,
		Options: SolveOptions{Workers: 4},
	}, http.StatusAccepted)

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sr := ts.submit(t, req, http.StatusOK) // cache hit: terminal at submit
			if !sr.Cached {
				t.Errorf("expected cache hit, got %+v", sr)
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			var snap map[string]float64
			ts.do(t, "GET", "/metrics", nil, http.StatusOK, &snap)
		}()
	}
	wg.Wait()
	if v := ts.await(t, second.ID, 3*time.Minute); v.State != StateDone {
		t.Fatalf("concurrent job state = %s (%s)", v.State, v.Error)
	}
}
