package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// smallRequest is a 5-module inline instance that solves in well under a
// second.
func smallRequest() *SolveRequest {
	return &SolveRequest{
		Design: &DesignSpec{
			Name: "tiny",
			Modules: []ModuleSpec{
				{Name: "a", W: 2, H: 3},
				{Name: "b", W: 3, H: 2, Rotatable: true},
				{Name: "c", W: 1, H: 2},
				{Name: "d", Kind: "flexible", Area: 4, MinAspect: 0.5, MaxAspect: 2},
				{Name: "e", W: 2, H: 2},
			},
			Nets: []NetSpec{
				{Modules: []string{"a", "b"}},
				{Modules: []string{"b", "c", "d"}, Weight: 2},
			},
		},
	}
}

// hardRequest is a generated instance that takes seconds to solve, for
// deadline and cancellation tests.
func hardRequest(timeoutMS int64) *SolveRequest {
	return &SolveRequest{
		Generate: "rand", N: 24, Seed: 7,
		Options: SolveOptions{TimeoutMS: timeoutMS},
	}
}

type testServer struct {
	*Server
	http *httptest.Server
}

func newTestServer(t *testing.T, cfg Config) *testServer {
	t.Helper()
	s := New(cfg)
	h := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		h.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return &testServer{Server: s, http: h}
}

func (ts *testServer) do(t *testing.T, method, path string, body any, wantCode int, out any) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, ts.http.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantCode {
		t.Fatalf("%s %s: status %d, want %d; body: %s", method, path, resp.StatusCode, wantCode, data)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, path, data, err)
		}
	}
}

// submit posts a request and returns the submit response.
func (ts *testServer) submit(t *testing.T, req *SolveRequest, wantCode int) submitResponse {
	t.Helper()
	var sr submitResponse
	ts.do(t, "POST", "/v1/solve", req, wantCode, &sr)
	return sr
}

// await polls the job until it is terminal, failing the test on timeout.
func (ts *testServer) await(t *testing.T, id string, timeout time.Duration) JobView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		var v JobView
		ts.do(t, "GET", "/v1/jobs/"+id, nil, http.StatusOK, &v)
		if v.State.Terminal() {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %v", id, v.State, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestSolveLifecycle(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 2})
	sr := ts.submit(t, smallRequest(), http.StatusAccepted)
	if sr.ID == "" || sr.Key == "" || sr.State != StateQueued {
		t.Fatalf("submit response: %+v", sr)
	}

	v := ts.await(t, sr.ID, 30*time.Second)
	if v.State != StateDone {
		t.Fatalf("state = %s (err %q), want done", v.State, v.Error)
	}
	if v.Partial {
		t.Fatal("complete solve marked partial")
	}
	if v.TraceEvents == 0 {
		t.Fatal("no telemetry captured")
	}

	var res ResultPayload
	ts.do(t, "GET", "/v1/jobs/"+sr.ID+"/result", nil, http.StatusOK, &res)
	if res.Placed != 5 || res.Modules != 5 {
		t.Fatalf("placed %d/%d, want 5/5", res.Placed, res.Modules)
	}
	if res.ChipWidth <= 0 || res.Height <= 0 {
		t.Fatalf("degenerate chip %gx%g", res.ChipWidth, res.Height)
	}
	if len(res.Steps) == 0 {
		t.Fatal("no step statistics")
	}
	if res.Gap != 0 {
		t.Fatalf("gap = %g on an instance solved to optimality", res.Gap)
	}
}

func TestResultBeforeDoneIs202(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 1})
	sr := ts.submit(t, hardRequest(0), http.StatusAccepted)
	var v JobView
	ts.do(t, "GET", "/v1/jobs/"+sr.ID+"/result", nil, http.StatusAccepted, &v)
	if v.State.Terminal() {
		t.Skipf("solve finished instantly; cannot observe in-flight state")
	}
	ts.do(t, "DELETE", "/v1/jobs/"+sr.ID, nil, http.StatusOK, nil)
}

func TestUnknownJob404(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 1})
	ts.do(t, "GET", "/v1/jobs/nope", nil, http.StatusNotFound, nil)
	ts.do(t, "GET", "/v1/jobs/nope/result", nil, http.StatusNotFound, nil)
	ts.do(t, "DELETE", "/v1/jobs/nope", nil, http.StatusNotFound, nil)
}

func TestBadRequests(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 1})
	for name, req := range map[string]*SolveRequest{
		"neither":        {},
		"both":           {Design: smallRequest().Design, Generate: "ami33"},
		"bad generator":  {Generate: "mystery"},
		"bad solver":     {Generate: "ami33", Options: SolveOptions{Solver: "quantum"}},
		"rand without n": {Generate: "rand"},
	} {
		if _, err := Resolve(req); err == nil {
			t.Errorf("%s: Resolve accepted invalid request", name)
		}
		ts.submit(t, req, http.StatusBadRequest)
	}
}

func TestCacheHitServesSecondSubmission(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 2})
	first := ts.submit(t, smallRequest(), http.StatusAccepted)
	ts.await(t, first.ID, 30*time.Second)

	// Identical submission: served from cache, never queued.
	second := ts.submit(t, smallRequest(), http.StatusOK)
	if !second.Cached || second.State != StateDone {
		t.Fatalf("second submission not cache-served: %+v", second)
	}
	if second.Key != first.Key {
		t.Fatalf("keys differ: %s vs %s", first.Key, second.Key)
	}

	var a, b ResultPayload
	ts.do(t, "GET", "/v1/jobs/"+first.ID+"/result", nil, http.StatusOK, &a)
	ts.do(t, "GET", "/v1/jobs/"+second.ID+"/result", nil, http.StatusOK, &b)
	if a.Area != b.Area || a.HPWL != b.HPWL {
		t.Fatalf("cached result differs: %g/%g vs %g/%g", a.Area, a.HPWL, b.Area, b.HPWL)
	}

	// The hit is visible in /metrics.
	var m map[string]float64
	ts.do(t, "GET", "/metrics", nil, http.StatusOK, &m)
	if m["cache_hit"] != 1 || m["cache_miss"] != 1 || m["jobs_done"] != 1 {
		t.Fatalf("metrics = %v, want cache_hit=1 cache_miss=1 jobs_done=1", m)
	}
}

func TestDeadlineReturnsPartialPromptly(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 1})
	const deadlineMS = 100
	sr := ts.submit(t, hardRequest(deadlineMS), http.StatusAccepted)
	start := time.Now()
	v := ts.await(t, sr.ID, 10*time.Second)
	elapsed := time.Since(start)

	// The job must resolve near its deadline, not after the full solve.
	// ~2x deadline plus polling slack and one LP cancellation window.
	if elapsed > 2*time.Second {
		t.Fatalf("deadline job resolved after %v", elapsed)
	}
	switch v.State {
	case StateDone:
		if !v.Partial {
			t.Skip("instance finished inside the deadline")
		}
		var res ResultPayload
		ts.do(t, "GET", "/v1/jobs/"+sr.ID+"/result", nil, http.StatusOK, &res)
		if !res.Partial {
			t.Fatal("payload not marked partial")
		}
		if res.Placed == 0 {
			t.Fatal("partial result has no incumbent placements")
		}
		if len(res.Steps) == 0 {
			t.Fatal("partial result has no step stats (gap unavailable)")
		}
	case StateFailed:
		if v.Error == "" {
			t.Fatal("failed job without error")
		}
	default:
		t.Fatalf("state = %s", v.State)
	}
}

func TestCancelFreesWorkerSlot(t *testing.T) {
	// One worker: a long-running job occupies it; cancelling must free
	// the slot so a subsequent quick job completes.
	ts := newTestServer(t, Config{Workers: 1})
	long := ts.submit(t, hardRequest(0), http.StatusAccepted)

	// Give the long job time to start solving.
	time.Sleep(50 * time.Millisecond)
	ts.do(t, "DELETE", "/v1/jobs/"+long.ID, nil, http.StatusOK, nil)
	v := ts.await(t, long.ID, 5*time.Second)
	if v.State != StateCancelled && v.State != StateDone {
		t.Fatalf("long job state = %s", v.State)
	}

	quick := ts.submit(t, smallRequest(), http.StatusAccepted)
	qv := ts.await(t, quick.ID, 30*time.Second)
	if qv.State != StateDone {
		t.Fatalf("quick job after cancel: state = %s (err %q)", qv.State, qv.Error)
	}
}

func TestCancelQueuedJobNeverRuns(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 1})
	// Occupy the only worker, then queue a second job and cancel it.
	long := ts.submit(t, hardRequest(0), http.StatusAccepted)
	queued := ts.submit(t, hardRequest(0), http.StatusAccepted)

	var v JobView
	ts.do(t, "DELETE", "/v1/jobs/"+queued.ID, nil, http.StatusOK, &v)
	if v.State != StateCancelled {
		t.Fatalf("queued job after cancel: %s", v.State)
	}
	if v.StartedAt != "" {
		t.Fatal("cancelled queued job reports a start time")
	}
	ts.do(t, "DELETE", "/v1/jobs/"+long.ID, nil, http.StatusOK, nil)
	ts.await(t, long.ID, 5*time.Second)
}

func TestQueueFullRejects(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	a := ts.submit(t, hardRequest(0), http.StatusAccepted) // occupies worker (eventually)
	// Saturate: the queue holds 1; keep submitting distinct instances
	// until one bounces with 429.
	rejected := false
	var ids []string
	for seed := int64(100); seed < 110; seed++ {
		req := &SolveRequest{Generate: "rand", N: 24, Seed: seed}
		b, _ := json.Marshal(req)
		resp, err := http.Post(ts.http.URL+"/v1/solve", "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		var sr submitResponse
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			rejected = true
			break
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("status %d: %s", resp.StatusCode, data)
		}
		_ = json.Unmarshal(data, &sr)
		ids = append(ids, sr.ID)
	}
	if !rejected {
		t.Fatal("queue never rejected despite depth 1")
	}
	for _, id := range append(ids, a.ID) {
		ts.do(t, "DELETE", "/v1/jobs/"+id, nil, http.StatusOK, nil)
	}
}

func TestTraceIsValidJSONL(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 1})
	sr := ts.submit(t, smallRequest(), http.StatusAccepted)
	ts.await(t, sr.ID, 30*time.Second)

	resp, err := http.Get(ts.http.URL + "/v1/jobs/" + sr.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status %d", resp.StatusCode)
	}
	dec := json.NewDecoder(resp.Body)
	var kinds = map[string]int{}
	for dec.More() {
		var obj map[string]any
		if err := dec.Decode(&obj); err != nil {
			t.Fatalf("invalid JSONL: %v", err)
		}
		kind, _ := obj["kind"].(string)
		if kind == "" {
			t.Fatalf("event without kind: %v", obj)
		}
		kinds[kind]++
	}
	for _, want := range []string{"step.start", "step.done", "search.done"} {
		if kinds[want] == 0 {
			t.Fatalf("trace missing %q events; got %v", want, kinds)
		}
	}
}

func TestHealthAndDraining(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 1})
	var h map[string]any
	ts.do(t, "GET", "/healthz", nil, http.StatusOK, &h)
	if h["status"] != "ok" {
		t.Fatalf("health = %v", h)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := ts.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	ts.do(t, "GET", "/healthz", nil, http.StatusServiceUnavailable, &h)
	if h["status"] != "draining" {
		t.Fatalf("health while draining = %v", h)
	}
	ts.submit(t, smallRequest(), http.StatusServiceUnavailable)
}

func TestShutdownCancelsRunningSolves(t *testing.T) {
	s := New(Config{Workers: 1})
	h := httptest.NewServer(s.Handler())
	defer h.Close()

	b, _ := json.Marshal(hardRequest(0))
	resp, err := http.Post(h.URL+"/v1/solve", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	var sr submitResponse
	_ = json.NewDecoder(resp.Body).Decode(&sr)
	resp.Body.Close()
	time.Sleep(50 * time.Millisecond) // let it start

	// A zero-grace shutdown must abort the solve and return promptly.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = s.Shutdown(ctx)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("shutdown took %v", elapsed)
	}
	if err == nil {
		t.Log("solve drained inside the grace period")
	}
	j, ok := s.store.get(sr.ID)
	if !ok {
		t.Fatal("job vanished")
	}
	if st := j.State(); !st.Terminal() {
		t.Fatalf("job state after shutdown = %s", st)
	}
}

func TestConcurrentSubmissions(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 4, QueueDepth: 32})
	var ids []string
	for i := 0; i < 8; i++ {
		req := smallRequest()
		req.Design.Name = fmt.Sprintf("d%d", i)
		req.Design.Modules[0].W = 2 + float64(i)*0.25 // distinct instances
		ids = append(ids, ts.submit(t, req, http.StatusAccepted).ID)
	}
	for _, id := range ids {
		if v := ts.await(t, id, 60*time.Second); v.State != StateDone {
			t.Fatalf("job %s: %s (%s)", id, v.State, v.Error)
		}
	}
}
