package server

import (
	"encoding/json"
	"io"
	"sync"

	"afp/internal/obs"
)

// traceBuffer is an obs.Sink retaining a bounded prefix of a job's
// telemetry in memory so it can be served back as JSONL. Once the cap is
// reached further events are counted but dropped — a runaway solve must
// not grow server memory without bound — and the truncation is made
// visible by a final synthetic "trace.truncated" line on output.
//
// It doubles as the fan-out point for live SSE followers: subscribe
// atomically snapshots the retained prefix and registers a channel that
// receives every later event, so a follower sees each event exactly once
// (no gap, no duplicate) regardless of when it attaches. Live fan-out is
// not subject to the retention cap: a follower of a runaway solve still
// sees the events the buffer drops.
type traceBuffer struct {
	mu      sync.Mutex
	max     int
	maxSubs int
	events  []obs.Event            // guarded by mu
	dropped int64                  // guarded by mu
	subs    map[*traceSub]struct{} // guarded by mu
}

// traceSub is one live follower of a job's trace. Events are delivered
// on ch with nonblocking sends: a follower that cannot keep up loses
// events (counted in lost) instead of stalling the solver.
type traceSub struct {
	ch   chan obs.Event
	lost int64 // guarded by server.traceBuffer.mu; the owning buffer's lock
}

// kindTruncated marks the synthetic closing event of a truncated trace;
// its Nodes field carries the dropped-event count.
const kindTruncated obs.Kind = "trace.truncated"

// defaultMaxSubs bounds concurrent SSE followers per job.
const defaultMaxSubs = 32

func newTraceBuffer(max int) *traceBuffer {
	if max <= 0 {
		max = 10000
	}
	return &traceBuffer{max: max, maxSubs: defaultMaxSubs}
}

// Emit implements obs.Sink. The solver's progress path reaches here
// with its pool lock held (the trace buffer is one of the job's fanned-
// out sinks), which the analyzer cannot see through the obs.Sink
// interface; declare the edge so the golden graph records it.
// lockorder: milp.psolver.mu -> server.traceBuffer.mu -- emitProgressLocked fans out to the job's trace buffer through obs.Multi
func (b *traceBuffer) Emit(e obs.Event) {
	b.mu.Lock()
	if len(b.events) < b.max {
		b.events = append(b.events, e)
	} else {
		b.dropped++
	}
	structural := isStructuralKind(e.Kind)
	for sub := range b.subs {
		select {
		case sub.ch <- e:
		default:
			if !structural {
				sub.lost++
				continue
			}
			// Structural frames (step/search boundaries) carry the state
			// the stream's per-step contracts hang on — e.g. the SSE gap
			// monotonicity reset. Evict the oldest queued event instead of
			// dropping the boundary, so a slow follower loses data probes
			// but never a step marker.
			select {
			case <-sub.ch:
				sub.lost++
			default:
			}
			select {
			case sub.ch <- e:
			default:
				sub.lost++
			}
		}
	}
	b.mu.Unlock()
}

// isStructuralKind reports whether an event delimits the solve's
// structure rather than sampling its progress; these are rare (a handful
// per solve) and live followers must not lose them to back-pressure.
func isStructuralKind(k obs.Kind) bool {
	switch k {
	case obs.KindStepStart, obs.KindStepDone, obs.KindSearchDone, obs.KindSearchParallel:
		return true
	}
	return false
}

// subscribe atomically snapshots the retained events and registers a
// live follower with a buffered delivery channel, so replay-then-follow
// over the pair misses nothing emitted in between. It fails when the
// per-job follower cap is reached.
func (b *traceBuffer) subscribe(buf int) ([]obs.Event, *traceSub, bool) {
	if buf <= 0 {
		buf = 256
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.subs) >= b.maxSubs {
		return nil, nil, false
	}
	replay := make([]obs.Event, len(b.events))
	copy(replay, b.events)
	sub := &traceSub{ch: make(chan obs.Event, buf)}
	if b.subs == nil {
		b.subs = make(map[*traceSub]struct{})
	}
	b.subs[sub] = struct{}{}
	return replay, sub, true
}

// unsubscribe detaches a follower; its channel is no longer written to
// once unsubscribe returns. Returns how many events the follower lost
// to back-pressure.
func (b *traceBuffer) unsubscribe(sub *traceSub) int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.subs, sub)
	return sub.lost
}

// WriteJSONL writes the retained events as one JSON object per line,
// matching the obs.JSONLWriter format byte for byte (including its
// non-finite-float handling), so traces fetched over the API and traces
// written by the CLI -trace flag are interchangeable.
func (b *traceBuffer) WriteJSONL(w io.Writer) error {
	b.mu.Lock()
	events := b.events
	dropped := b.dropped
	b.mu.Unlock()

	jw := obs.NewJSONLWriter(w)
	for _, e := range events {
		jw.Emit(e)
	}
	if dropped > 0 {
		jw.Emit(obs.Event{Kind: kindTruncated, Nodes: int(dropped)})
	}
	return jw.Err()
}

// Len reports the number of retained events (for tests and /v1/jobs).
func (b *traceBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.events)
}

// lines decodes the buffered trace back into generic JSON objects; test
// helper for validating the JSONL framing.
func (b *traceBuffer) lines() ([]map[string]any, error) {
	var sb jsonlCollector
	if err := b.WriteJSONL(&sb); err != nil {
		return nil, err
	}
	return sb.objs, sb.err
}

// jsonlCollector incrementally decodes written JSONL, line by line.
type jsonlCollector struct {
	buf  []byte
	objs []map[string]any
	err  error
}

func (c *jsonlCollector) Write(p []byte) (int, error) {
	c.buf = append(c.buf, p...)
	for {
		i := -1
		for j, ch := range c.buf {
			if ch == '\n' {
				i = j
				break
			}
		}
		if i < 0 {
			return len(p), nil
		}
		line := c.buf[:i]
		c.buf = c.buf[i+1:]
		if len(line) == 0 {
			continue
		}
		var obj map[string]any
		if err := json.Unmarshal(line, &obj); err != nil && c.err == nil {
			c.err = err
		} else {
			c.objs = append(c.objs, obj)
		}
	}
}
