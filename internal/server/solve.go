package server

import (
	"context"
	"errors"
	"math"
	"runtime"
	"time"

	"afp/internal/anneal"
	"afp/internal/core"
	"afp/internal/obs"
)

// ResultPayload is the body of GET /v1/jobs/{id}/result. It is a
// self-contained snapshot: geometry, quality numbers and per-step solver
// statistics, so a client never needs a second round trip to judge a
// solution.
type ResultPayload struct {
	Design string `json:"design"`
	Solver string `json:"solver"`
	// Source names the solution paradigm that produced the floorplan:
	// "bb" for the branch and bound, "anneal"/"seqpair"/"project" for a
	// standalone heuristic, "portfolio:<backend>" for a race's winner.
	Source    string  `json:"source,omitempty"`
	ChipWidth float64 `json:"chipWidth"`
	Height    float64 `json:"height"`
	Area      float64 `json:"area"`
	// Utilization is module area over chip area.
	Utilization float64 `json:"utilization"`
	HPWL        float64 `json:"hpwl"`
	// Placed counts placed modules; on a partial result it is smaller
	// than Modules.
	Placed  int `json:"placed"`
	Modules int `json:"modules"`
	// Partial marks a result cut off by deadline or cancellation: the
	// best incumbent floorplan of the completed augmentation steps.
	Partial bool `json:"partial,omitempty"`
	// Gap is the relative MIP gap of the last completed augmentation step
	// (0 when every step closed optimally, absent for the annealer).
	Gap        float64         `json:"gap"`
	ElapsedMS  int64           `json:"elapsedMs"`
	Placements []PlacementView `json:"placements"`
	Steps      []StepView      `json:"steps,omitempty"`
	// Violations lists legality defects found by the always-on post-solve
	// verification of complete results (empty for a legal floorplan). A
	// result with violations is reported but never cached.
	Violations []string `json:"violations,omitempty"`
}

// PlacementView is one placed module, envelope and module proper.
type PlacementView struct {
	Index   int     `json:"index"`
	Name    string  `json:"name"`
	EnvX    float64 `json:"envX"`
	EnvY    float64 `json:"envY"`
	EnvW    float64 `json:"envW"`
	EnvH    float64 `json:"envH"`
	ModX    float64 `json:"modX"`
	ModY    float64 `json:"modY"`
	ModW    float64 `json:"modW"`
	ModH    float64 `json:"modH"`
	Rotated bool    `json:"rotated,omitempty"`
}

// StepView is one successive-augmentation step's statistics.
type StepView struct {
	Step     int    `json:"step"`
	Added    int    `json:"added"`
	Binaries int    `json:"binaries"`
	Nodes    int    `json:"nodes"`
	LPIters  int    `json:"lpIters"`
	Status   string `json:"status"`
	// Source names who owned the step's best solution: "bb", or a
	// portfolio label when an externally-shared incumbent dominated it.
	Source  string  `json:"source,omitempty"`
	Gap     float64 `json:"gap"`
	Height  float64 `json:"height"`
	Relaxed bool    `json:"relaxed,omitempty"`
}

// runJob executes one dequeued job end to end: start, solve under the
// job deadline with telemetry captured into the job's trace buffer,
// classify the outcome and publish the terminal state. Complete results
// are inserted into the cache.
func (s *Server) runJob(j *Job) {
	// Dequeued: off the queue-depth gauge whatever happens next.
	s.metrics.GaugeAdd("queue_depth", -1)
	ctx, cancel := context.WithCancel(s.baseCtx)
	if !j.tryStart(cancel) {
		// Cancelled while queued: release the slot without solving.
		cancel()
		s.metrics.Count("jobs_skipped", 1)
		return
	}
	defer cancel()
	s.metrics.GaugeAdd("running_jobs", 1)
	defer s.metrics.GaugeAdd("running_jobs", -1)
	if ms := j.Instance.Opts.TimeoutMS; ms > 0 {
		var cancelT context.CancelFunc
		ctx, cancelT = context.WithTimeout(ctx, time.Duration(ms)*time.Millisecond)
		defer cancelT()
	}

	startedAt, _ := j.runningSince()
	s.metrics.Observe("queue_wait_us", float64(startedAt.Sub(j.created).Microseconds()))

	start := time.Now()
	// The job's fan-out: the per-job trace buffer (replayed over SSE), the
	// server-wide sink, and the histogram deriver feeding /metrics.
	o := obs.New(obs.Multi(j.trace, s.sink, obs.MetricsSink{M: s.metrics}))
	var res *core.Result
	var err error
	o.Do(ctx, "job", obs.SpanAttrs{Detail: j.Instance.Design.Name}, func(ctx context.Context) {
		res, err = solveInstance(ctx, j.Instance, s.jobWorkers(j.Instance.Opts.Workers), o)
	})
	dur := time.Since(start)
	s.metrics.Time("solve", dur)

	payload := buildPayload(j.Instance, res, dur)
	switch {
	case err == nil:
		// Always verify a complete floorplan before publishing it. A result
		// with violations is still returned to the client — the violations
		// travel with it — but it must never enter the cache, where it would
		// be served as authoritative to every later equivalent request.
		if payload != nil && res != nil && len(res.Placements) == len(j.Instance.Design.Modules) {
			for _, v := range res.Verify() {
				payload.Violations = append(payload.Violations, v.String())
			}
		}
		j.finish(StateDone, payload, false, "")
		s.metrics.Count("jobs_done", 1)
		if payload == nil || len(payload.Violations) == 0 {
			s.cache.put(j.Key, payload)
		} else {
			s.metrics.Count("jobs_invalid", 1)
		}
	case errors.Is(err, context.Canceled):
		// Explicit cancellation (DELETE, or server shutdown): keep the
		// partial incumbent available but report the job cancelled.
		if payload != nil {
			payload.Partial = true
		}
		j.finish(StateCancelled, payload, payload != nil, err.Error())
		s.metrics.Count("jobs_cancelled", 1)
	case errors.Is(err, context.DeadlineExceeded):
		// Deadline: a usable incumbent makes this a done-partial result;
		// otherwise the job failed.
		if payload != nil && payload.Placed > 0 {
			payload.Partial = true
			j.finish(StateDone, payload, true, err.Error())
		} else {
			j.finish(StateFailed, payload, payload != nil, err.Error())
		}
		s.metrics.Count("jobs_deadline", 1)
	default:
		j.finish(StateFailed, nil, false, err.Error())
		s.metrics.Count("jobs_failed", 1)
	}
}

// jobWorkers caps a job's requested branch-and-bound worker count so
// that pool.Workers × per-job workers never exceeds the host's CPUs.
// Unset (0) requests stay serial: pool-level concurrency is the
// server's primary parallelism.
func (s *Server) jobWorkers(requested int) int {
	if requested < 1 {
		return 1
	}
	maxPer := runtime.GOMAXPROCS(0) / s.cfg.Workers
	if maxPer < 1 {
		maxPer = 1
	}
	if requested > maxPer {
		return maxPer
	}
	return requested
}

// solveInstance dispatches to the selected solver. workers is the
// already-capped branch-and-bound worker count (>= 1).
func solveInstance(ctx context.Context, in *Instance, workers int, o *obs.Observer) (*core.Result, error) {
	switch in.Opts.Solver {
	case "anneal":
		cfg := anneal.Config{
			Seed:   in.Opts.AnnealSeed,
			Lambda: in.Opts.WireWeight,
			Obs:    o,
		}
		return anneal.FloorplanCtx(ctx, in.Design, cfg)
	default:
		cfg := in.coreConfig()
		cfg.Workers = workers
		cfg.Obs = o
		if cfg.MILP.ProgressEvery == 0 {
			// Service solves stream progress over SSE: probe the gap often
			// enough that watchers see bound convergence within a node batch.
			cfg.MILP.ProgressEvery = 128
		}
		return core.FloorplanCtx(ctx, in.Design, cfg)
	}
}

// buildPayload converts a (possibly partial, possibly nil) core result.
func buildPayload(in *Instance, res *core.Result, dur time.Duration) *ResultPayload {
	if res == nil {
		return nil
	}
	p := &ResultPayload{
		Design:      in.Design.Name,
		Solver:      in.Opts.Solver,
		Source:      res.Source,
		ChipWidth:   res.ChipWidth,
		Height:      res.Height,
		Area:        res.ChipArea(),
		Utilization: res.Utilization(),
		HPWL:        res.HPWL(),
		Placed:      len(res.Placements),
		Modules:     len(in.Design.Modules),
		ElapsedMS:   dur.Milliseconds(),
	}
	for _, pl := range res.Placements {
		name := ""
		if pl.Index >= 0 && pl.Index < len(in.Design.Modules) {
			name = in.Design.Modules[pl.Index].Name
		}
		p.Placements = append(p.Placements, PlacementView{
			Index: pl.Index, Name: name,
			EnvX: pl.Env.X, EnvY: pl.Env.Y, EnvW: pl.Env.W, EnvH: pl.Env.H,
			ModX: pl.Mod.X, ModY: pl.Mod.Y, ModW: pl.Mod.W, ModH: pl.Mod.H,
			Rotated: pl.Rotated,
		})
	}
	for _, st := range res.Steps {
		gap := st.Gap
		if math.IsInf(gap, 0) || math.IsNaN(gap) {
			gap = -1 // JSON cannot carry +Inf; -1 means "no proven bound"
		}
		p.Steps = append(p.Steps, StepView{
			Step: st.Step, Added: len(st.Added), Binaries: st.Binaries,
			Nodes: st.Nodes, LPIters: st.LPIters, Status: st.Status.String(),
			Source: st.IncumbentSource,
			Gap:    gap, Height: st.Height, Relaxed: st.Relaxed,
		})
		p.Gap = gap
	}
	return p
}
