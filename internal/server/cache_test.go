package server

import (
	"fmt"
	"sync"
	"testing"

	"afp/internal/obs"
)

func TestResultCacheLRUEviction(t *testing.T) {
	c := newResultCache(2)
	r := func(i int) *ResultPayload { return &ResultPayload{Area: float64(i)} }
	c.put("a", r(1))
	c.put("b", r(2))
	if _, ok := c.get("a"); !ok { // refresh a; b becomes LRU
		t.Fatal("a missing")
	}
	c.put("c", r(3))
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a evicted despite being recently used")
	}
	if _, ok := c.get("c"); !ok {
		t.Fatal("c missing")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d", c.len())
	}
}

func TestResultCacheUpdateInPlace(t *testing.T) {
	c := newResultCache(2)
	c.put("k", &ResultPayload{Area: 1})
	c.put("k", &ResultPayload{Area: 2})
	got, ok := c.get("k")
	if !ok || got.Area != 2 {
		t.Fatalf("got %+v", got)
	}
	if c.len() != 1 {
		t.Fatalf("len = %d after double put", c.len())
	}
}

func TestResultCacheDisabled(t *testing.T) {
	c := newResultCache(0)
	c.put("k", &ResultPayload{})
	if _, ok := c.get("k"); ok {
		t.Fatal("disabled cache stored a value")
	}
}

func TestResultCacheConcurrent(t *testing.T) {
	c := newResultCache(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("k%d", (g+i)%16)
				c.put(k, &ResultPayload{Area: float64(i)})
				c.get(k)
			}
		}(g)
	}
	wg.Wait()
	if c.len() > 8 {
		t.Fatalf("len = %d exceeds capacity", c.len())
	}
}

func TestTraceBufferCapsAndMarksTruncation(t *testing.T) {
	b := newTraceBuffer(3)
	for i := 0; i < 10; i++ {
		b.Emit(obs.Event{Kind: obs.KindLPSolve, Iters: i})
	}
	if b.Len() != 3 {
		t.Fatalf("retained %d events, want 3", b.Len())
	}
	objs, err := b.lines()
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 4 { // 3 events + truncation marker
		t.Fatalf("wrote %d lines, want 4", len(objs))
	}
	last := objs[3]
	if last["kind"] != string(kindTruncated) {
		t.Fatalf("last line = %v", last)
	}
	if last["nodes"] != float64(7) {
		t.Fatalf("dropped count = %v, want 7", last["nodes"])
	}
}
