package server

import (
	"testing"
)

func TestKeyStableAcrossEquivalentRequests(t *testing.T) {
	base, err := Resolve(smallRequest())
	if err != nil {
		t.Fatal(err)
	}

	// Renaming modules and nets must not change the key.
	renamed := smallRequest()
	renamed.Design.Name = "other"
	for i := range renamed.Design.Modules {
		old := renamed.Design.Modules[i].Name
		renamed.Design.Modules[i].Name = "m_" + old
		for j := range renamed.Design.Nets {
			for k, n := range renamed.Design.Nets[j].Modules {
				if n == old {
					renamed.Design.Nets[j].Modules[k] = "m_" + old
				}
			}
		}
	}
	for j := range renamed.Design.Nets {
		renamed.Design.Nets[j].Name = "net_x"
	}
	rin, err := Resolve(renamed)
	if err != nil {
		t.Fatal(err)
	}
	if rin.Key() != base.Key() {
		t.Fatal("renaming modules changed the cache key")
	}

	// Net order must not change the key.
	reordered := smallRequest()
	reordered.Design.Nets[0], reordered.Design.Nets[1] = reordered.Design.Nets[1], reordered.Design.Nets[0]
	oin, err := Resolve(reordered)
	if err != nil {
		t.Fatal(err)
	}
	if oin.Key() != base.Key() {
		t.Fatal("net order changed the cache key")
	}

	// Defaulted options must hash like explicit defaults.
	explicit := smallRequest()
	explicit.Options.Solver = "augment"
	explicit.Options.Objective = "area"
	explicit.Options.GroupSize = 4
	ein, err := Resolve(explicit)
	if err != nil {
		t.Fatal(err)
	}
	if ein.Key() != base.Key() {
		t.Fatal("explicit default options changed the cache key")
	}

	// The deadline is not part of the key: a cached complete result is
	// valid under any timeout.
	timed := smallRequest()
	timed.Options.TimeoutMS = 123
	tin, err := Resolve(timed)
	if err != nil {
		t.Fatal(err)
	}
	if tin.Key() != base.Key() {
		t.Fatal("timeout changed the cache key")
	}
}

func TestKeyChangesWithInstance(t *testing.T) {
	base, _ := Resolve(smallRequest())

	grown := smallRequest()
	grown.Design.Modules[0].W = 7
	g, err := Resolve(grown)
	if err != nil {
		t.Fatal(err)
	}
	if g.Key() == base.Key() {
		t.Fatal("module geometry change did not change the key")
	}

	opt := smallRequest()
	opt.Options.Objective = "areawire"
	opt.Options.WireWeight = 0.1
	o, err := Resolve(opt)
	if err != nil {
		t.Fatal(err)
	}
	if o.Key() == base.Key() {
		t.Fatal("objective change did not change the key")
	}

	weighted := smallRequest()
	weighted.Design.Nets[1].Weight = 9
	wn, err := Resolve(weighted)
	if err != nil {
		t.Fatal(err)
	}
	if wn.Key() == base.Key() {
		t.Fatal("net weight change did not change the key")
	}
}

func TestGeneratedDesignsHashByContent(t *testing.T) {
	a, err := Resolve(&SolveRequest{Generate: "rand", N: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Resolve(&SolveRequest{Generate: "rand", N: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.Key() != b.Key() {
		t.Fatal("identical generator requests hash differently")
	}
	c, err := Resolve(&SolveRequest{Generate: "rand", N: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if c.Key() == a.Key() {
		t.Fatal("different generator seeds hash equal")
	}
}

func TestResolveInlineDesign(t *testing.T) {
	in, err := Resolve(smallRequest())
	if err != nil {
		t.Fatal(err)
	}
	d := in.Design
	if len(d.Modules) != 5 || len(d.Nets) != 2 {
		t.Fatalf("resolved %d modules, %d nets", len(d.Modules), len(d.Nets))
	}
	if got := d.Nets[1].Modules; len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("net members = %v", got)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}

	bad := smallRequest()
	bad.Design.Nets[0].Modules = []string{"a", "ghost"}
	if _, err := Resolve(bad); err == nil {
		t.Fatal("unknown net member accepted")
	}
	dup := smallRequest()
	dup.Design.Modules[1].Name = "a"
	if _, err := Resolve(dup); err == nil {
		t.Fatal("duplicate module name accepted")
	}
}
