package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"afp/internal/core"
	"afp/internal/obs"

	// Register the portfolio, anneal, seqpair and project backends with
	// core.Config.Backend so jobs can select them by name.
	_ "afp/internal/portfolio"
)

// Config sizes the service.
type Config struct {
	// Workers is the number of concurrent solves; 0 means 2.
	Workers int
	// QueueDepth bounds jobs waiting for a worker; 0 means 64. A full
	// queue rejects submissions with 429 rather than queueing unboundedly.
	QueueDepth int
	// CacheSize is the LRU result-cache capacity; 0 means 128, negative
	// disables caching.
	CacheSize int
	// MaxJobs bounds retained job history; 0 means 1024.
	MaxJobs int
	// TraceEvents caps the per-job telemetry buffer; 0 means 10000.
	TraceEvents int
	// Sink optionally mirrors every job's telemetry to a shared sink
	// (e.g. a server-wide JSONL trace or stderr log).
	Sink obs.Sink
	// SSEHeartbeat is the comment-frame interval keeping idle
	// /v1/jobs/{id}/events streams alive; 0 means 15s.
	SSEHeartbeat time.Duration
}

// Server is the floorplan solver service. Create with New, mount
// Handler on an http.Server, and call Shutdown to drain.
type Server struct {
	cfg     Config
	store   *store
	cache   *resultCache
	pool    *pool
	metrics *obs.Metrics
	sink    obs.Sink

	// baseCtx parents every job context; cancelling it aborts all
	// running solves at once (hard shutdown).
	baseCtx     context.Context
	cancelBase  context.CancelFunc
	mu          sync.Mutex
	draining    bool // guarded by mu
	started     time.Time
	shutdownOne sync.Once
}

// New starts the worker pool and returns a ready server.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	cacheSize := cfg.CacheSize
	switch {
	case cacheSize == 0:
		cacheSize = 128
	case cacheSize < 0:
		cacheSize = 0
	}
	//vet:allow ctxsolve -- the service root context, cancelled by Shutdown
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		store:      newStore(cfg.MaxJobs),
		cache:      newResultCache(cacheSize),
		metrics:    &obs.Metrics{},
		sink:       cfg.Sink,
		baseCtx:    ctx,
		cancelBase: cancel,
		started:    time.Now(),
	}
	s.pool = newPool(cfg.Workers, cfg.QueueDepth, s.runJob)
	s.metrics.SetGauge("pool_workers", float64(cfg.Workers))
	return s
}

// Metrics exposes the server's counters (for the binary and tests).
func (s *Server) Metrics() *obs.Metrics { return s.metrics }

// Handler returns the route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", s.handleSolve)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s.observeRequests(mux)
}

// observeRequests records every request's wall time into the
// http_request_us histogram. Long-lived SSE streams land in the overflow
// bucket by design — the histogram answers "how slow are the control
// endpoints", and streams are visible separately via sse_clients.
func (s *Server) observeRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		s.metrics.Observe("http_request_us", float64(time.Since(start).Microseconds()))
	})
}

// Shutdown drains the service: new submissions are rejected, queued and
// running jobs are given until ctx expires to finish, then every
// remaining solve is cancelled (each still records its best incumbent
// as a partial result). Always returns with the pool stopped.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()

	var err error
	s.shutdownOne.Do(func() {
		drained := make(chan struct{})
		go func() {
			s.pool.close() // waits for queue drain + running jobs
			close(drained)
		}()
		select {
		case <-drained:
		case <-ctx.Done():
			// Grace period over: abort every in-flight solve and wait for
			// the workers to unwind (fast — cancellation is polled in the
			// pivot loops).
			s.cancelBase()
			<-drained
			err = ctx.Err()
		}
		s.cancelBase()
	})
	return err
}

// submitResponse is the body of POST /v1/solve.
type submitResponse struct {
	ID     string `json:"id"`
	State  State  `json:"state"`
	Key    string `json:"key"`
	Cached bool   `json:"cached,omitempty"`
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		httpError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}

	var req SolveRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	in, err := Resolve(&req)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Static model audit before any solver time is spent: a request that
	// is well-formed JSON but yields a malformed MILP (a module wider than
	// the chip, a formulation invariant broken) is rejected here, not
	// discovered mid-solve. The annealing solver and the pure-heuristic
	// backends never build the MILP; a portfolio race does.
	if in.Opts.Solver == "augment" && (in.Opts.Backend == "" || in.Opts.Backend == "portfolio") {
		if err := core.AuditDesign(in.Design, in.coreConfig()); err != nil {
			s.metrics.Count("jobs_malformed", 1)
			httpError(w, http.StatusUnprocessableEntity, "model audit: %v", err)
			return
		}
	}
	key := in.Key()
	s.metrics.Count("jobs_submitted", 1)

	j := newJob(s.store.newID(), in, key, s.cfg.TraceEvents)
	if cached, ok := s.cache.get(key); ok {
		// Served from cache: the job is terminal immediately and never
		// consumes a worker slot.
		s.metrics.Count("cache_hit", 1)
		j.completeCached(cached)
		s.store.add(j)
		writeJSON(w, http.StatusOK, submitResponse{ID: j.ID, State: j.State(), Key: key, Cached: true})
		return
	}
	s.metrics.Count("cache_miss", 1)
	s.store.add(j)
	if !s.pool.submit(j) {
		j.finish(StateFailed, nil, false, "queue full")
		s.metrics.Count("jobs_rejected", 1)
		httpError(w, http.StatusTooManyRequests, "solve queue is full")
		return
	}
	// Balanced by the decrement at the top of runJob, which every
	// submitted job reaches (the pool drains its queue on close).
	s.metrics.GaugeAdd("queue_depth", 1)
	writeJSON(w, http.StatusAccepted, submitResponse{ID: j.ID, State: j.State(), Key: key})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.store.get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j.View())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.store.get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	res, terminal, errMsg := j.Result()
	if !terminal {
		// Not ready yet; 202 tells the client to keep polling.
		writeJSON(w, http.StatusAccepted, j.View())
		return
	}
	if res == nil {
		httpError(w, http.StatusConflict, "job %s: no result (%s)", j.ID, errMsg)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.store.get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	w.Header().Set("Content-Type", "application/jsonl")
	w.WriteHeader(http.StatusOK)
	// Errors past the header are write failures to a gone client; there
	// is nothing useful to do with them.
	_ = j.trace.WriteJSONL(w)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.store.get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	if j.requestCancel() {
		s.metrics.Count("cancel_requests", 1)
	}
	writeJSON(w, http.StatusOK, j.View())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	status := "ok"
	code := http.StatusOK
	if draining {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":   status,
		"uptimeMs": time.Since(s.started).Milliseconds(),
		"workers":  s.cfg.Workers,
		"cached":   s.cache.len(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.metrics.SetGauge("worker_utilization_pct", s.utilizationPct(time.Now()))
	if wantsPrometheus(r) {
		w.Header().Set("Content-Type", obs.PrometheusContentType)
		w.WriteHeader(http.StatusOK)
		_ = s.metrics.WritePrometheus(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = s.metrics.WriteJSON(w)
}

// utilizationPct is aggregate worker utilization as a percentage of the
// pool's capacity over the server's uptime: busy time is the cumulative
// wall-clock of finished solves (the solve timer) plus the elapsed time
// of every solve still running, so a server saturated by one long job
// reports ~100/Workers% rather than 0. Clamped to [0,100] — the timer
// granularity and the race between sampling now and the running set can
// otherwise push a saturated pool epsilon over capacity.
func (s *Server) utilizationPct(now time.Time) float64 {
	capacity := now.Sub(s.started).Seconds() * float64(s.cfg.Workers)
	if capacity <= 0 {
		return 0
	}
	busy := s.metrics.Snapshot()["solve_ms"] / 1000
	for _, j := range s.store.active() {
		if since, running := j.runningSince(); running {
			busy += now.Sub(since).Seconds()
		}
	}
	pct := 100 * busy / capacity
	if pct < 0 {
		return 0
	}
	if pct > 100 {
		return 100
	}
	return pct
}

// wantsPrometheus selects the text exposition format when the Accept
// header asks for text/plain (as Prometheus scrapers do) and JSON stays
// the default otherwise, so pre-existing JSON consumers are unaffected.
func wantsPrometheus(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept"), ",") {
		mt := strings.TrimSpace(part)
		if i := strings.IndexByte(mt, ';'); i >= 0 {
			mt = strings.TrimSpace(mt[:i])
		}
		if mt == "text/plain" {
			return true
		}
	}
	return false
}

// errorBody is the uniform error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
