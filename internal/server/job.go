package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"time"
)

// State is the lifecycle phase of a job. Transitions are
// queued -> running -> {done, failed}, with cancelled reachable from
// queued and running. Terminal states never change.
type State string

// Job states.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Job is one asynchronous solve. All mutable fields are guarded by mu;
// the immutable identity fields (ID, Key, Instance, trace) are set
// before the job is published.
type Job struct {
	ID       string
	Key      string
	Instance *Instance
	trace    *traceBuffer

	mu       sync.Mutex
	state    State              // guarded by mu
	err      string             // guarded by mu
	partial  bool               // guarded by mu
	cached   bool               // guarded by mu
	result   *ResultPayload     // guarded by mu
	created  time.Time          // immutable after newJob
	started  time.Time          // guarded by mu
	finished time.Time          // guarded by mu
	cancel   context.CancelFunc // guarded by mu
	done     chan struct{}      // immutable; closed exactly once under mu
}

// JobView is the externally visible snapshot of a job, the body of
// GET /v1/jobs/{id}.
type JobView struct {
	ID      string `json:"id"`
	State   State  `json:"state"`
	Design  string `json:"design"`
	Key     string `json:"key"`
	Error   string `json:"error,omitempty"`
	Partial bool   `json:"partial,omitempty"`
	Cached  bool   `json:"cached,omitempty"`
	// TraceEvents is the number of telemetry events retained for the job.
	TraceEvents int    `json:"traceEvents"`
	CreatedAt   string `json:"createdAt"`
	StartedAt   string `json:"startedAt,omitempty"`
	FinishedAt  string `json:"finishedAt,omitempty"`
	// ElapsedMS is wall time from start to finish (or to now while
	// running).
	ElapsedMS int64 `json:"elapsedMs,omitempty"`
}

func newJob(id string, in *Instance, key string, traceCap int) *Job {
	return &Job{
		ID:       id,
		Key:      key,
		Instance: in,
		trace:    newTraceBuffer(traceCap),
		state:    StateQueued,
		created:  time.Now(),
		done:     make(chan struct{}),
	}
}

// View snapshots the job.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:          j.ID,
		State:       j.state,
		Design:      j.Instance.Design.Name,
		Key:         j.Key,
		Error:       j.err,
		Partial:     j.partial,
		Cached:      j.cached,
		TraceEvents: j.trace.Len(),
		CreatedAt:   j.created.UTC().Format(time.RFC3339Nano),
	}
	if !j.started.IsZero() {
		v.StartedAt = j.started.UTC().Format(time.RFC3339Nano)
		end := j.finished
		if end.IsZero() {
			end = time.Now()
		}
		v.ElapsedMS = end.Sub(j.started).Milliseconds()
	}
	if !j.finished.IsZero() {
		v.FinishedAt = j.finished.UTC().Format(time.RFC3339Nano)
	}
	return v
}

// State returns the current state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Result returns the result payload, whether the job is terminal, and
// the recorded error string.
func (j *Job) Result() (*ResultPayload, bool, string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.state.Terminal(), j.err
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// tryStart moves queued -> running and installs the cancel func; it
// fails when the job was cancelled while waiting in the queue.
func (j *Job) tryStart(cancel context.CancelFunc) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	j.cancel = cancel
	return true
}

// finish records a terminal state. It is a no-op when the job is
// already terminal (a cancel that raced the solve's own completion).
func (j *Job) finish(state State, res *ResultPayload, partial bool, errMsg string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return false
	}
	j.state = state
	j.result = res
	j.partial = partial
	j.err = errMsg
	j.finished = time.Now()
	close(j.done)
	return true
}

// completeCached marks a cache-served job done without it ever entering
// the queue.
func (j *Job) completeCached(res *ResultPayload) {
	j.mu.Lock()
	j.cached = true
	j.started = j.created
	j.mu.Unlock()
	j.finish(StateDone, res, false, "")
}

// requestCancel asks the job to stop. A queued job is cancelled
// immediately (the pool will skip it); a running job gets its context
// cancelled and transitions when the solver unwinds. Returns false for
// jobs already terminal.
func (j *Job) requestCancel() bool {
	j.mu.Lock()
	switch {
	case j.state == StateQueued:
		j.state = StateCancelled
		j.finished = time.Now()
		close(j.done)
		j.mu.Unlock()
		return true
	case j.state == StateRunning:
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return true
	default:
		j.mu.Unlock()
		return false
	}
}

// store holds jobs by ID, evicting the oldest terminal jobs beyond a
// retention cap so a long-lived server does not accumulate history
// forever.
type store struct {
	mu     sync.Mutex
	max    int
	jobs   map[string]*Job // guarded by mu
	order  []string        // guarded by mu; insertion order, for eviction
	serial uint64          // guarded by mu
}

func newStore(maxJobs int) *store {
	if maxJobs <= 0 {
		maxJobs = 1024
	}
	return &store{max: maxJobs, jobs: make(map[string]*Job)}
}

// newID returns a job id: a monotonic serial plus random suffix, so ids
// are unguessable-ish yet sort by submission order.
func (s *store) newID() string {
	var buf [4]byte
	if _, err := rand.Read(buf[:]); err != nil {
		// crypto/rand only fails on a broken platform; serial alone is
		// still unique.
		copy(buf[:], []byte{0xde, 0xad, 0xbe, 0xef})
	}
	s.mu.Lock()
	s.serial++
	n := s.serial
	s.mu.Unlock()
	return fmt.Sprintf("j%06d-%s", n, hex.EncodeToString(buf[:]))
}

// add publishes a job, evicting old terminal jobs when over cap.
func (s *store) add(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	if len(s.jobs) <= s.max {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		old := s.jobs[id]
		if old != nil && len(s.jobs) > s.max && old.State().Terminal() && id != j.ID {
			delete(s.jobs, id)
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// get looks a job up by id.
func (s *store) get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// active returns all non-terminal jobs.
func (s *store) active() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*Job
	for _, id := range s.order {
		if j := s.jobs[id]; j != nil && !j.State().Terminal() {
			out = append(out, j)
		}
	}
	return out
}

// runningSince returns when the job started running, and whether it is
// currently running (started and not yet terminal). Utilization
// accounting uses it to credit in-flight solve time.
func (j *Job) runningSince() (time.Time, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.started, j.state == StateRunning
}
