package server

import "sync"

// pool is a bounded worker pool: a fixed number of workers draining a
// fixed-depth queue. Submission never blocks — a full queue is reported
// to the caller (the HTTP layer turns it into 429) instead of stalling
// the accept loop.
type pool struct {
	mu     sync.Mutex
	closed bool // guarded by mu
	queue  chan *Job
	wg     sync.WaitGroup
}

// newPool starts `workers` goroutines running run on each dequeued job.
func newPool(workers, depth int, run func(*Job)) *pool {
	if workers <= 0 {
		workers = 1
	}
	if depth <= 0 {
		depth = 64
	}
	p := &pool{queue: make(chan *Job, depth)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for j := range p.queue {
				run(j)
			}
		}()
	}
	return p
}

// submit enqueues a job; false means the queue is full or the pool is
// shut down.
func (p *pool) submit(j *Job) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	select {
	case p.queue <- j:
		return true
	default:
		return false
	}
}

// close stops intake and waits for the workers to drain the queue and
// finish their current jobs.
func (p *pool) close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.queue)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
