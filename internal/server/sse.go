package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"afp/internal/obs"
)

// handleEvents serves GET /v1/jobs/{id}/events: the job's telemetry as
// a Server-Sent Events stream. The stream replays every retained trace
// event and then follows the live feed, so a client attaching at any
// point sees each event exactly once; comment heartbeats keep idle
// connections alive through proxies. The stream closes with a terminal
// `event: job` frame carrying the job snapshot once the job reaches a
// terminal state (done, failed or cancelled), or silently when the
// client disconnects. Each trace frame's data is the same JSON object a
// JSONL trace line carries, so SSE consumers and trace files share one
// decoder.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.store.get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusNotImplemented, "streaming unsupported")
		return
	}
	replay, sub, ok := j.trace.subscribe(0)
	if !ok {
		httpError(w, http.StatusTooManyRequests, "too many followers for job %s", j.ID)
		return
	}
	defer j.trace.unsubscribe(sub)
	s.metrics.Count("sse_streams", 1)
	s.metrics.GaugeAdd("sse_clients", 1)
	defer s.metrics.GaugeAdd("sse_clients", -1)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	// Write failures mean the client is gone; r.Context() observes the
	// disconnect on the next select turn, so frame errors are not fatal
	// here and the deferred unsubscribe cleans up either way.
	for _, e := range replay {
		writeSSEEvent(w, e)
	}
	fl.Flush()

	hb := s.cfg.SSEHeartbeat
	if hb <= 0 {
		hb = 15 * time.Second
	}
	ticker := time.NewTicker(hb)
	defer ticker.Stop()

	for {
		select {
		case e := <-sub.ch:
			writeSSEEvent(w, e)
			// Batch whatever else is already queued into one flush.
			for {
				select {
				case e := <-sub.ch:
					writeSSEEvent(w, e)
					continue
				default:
				}
				break
			}
			fl.Flush()
		case <-ticker.C:
			fmt.Fprint(w, ": hb\n\n")
			fl.Flush()
		case <-j.Done():
			// The solver emitted its last event before the job turned
			// terminal, so after detaching the subscription the channel
			// drains to a complete stream.
			lost := j.trace.unsubscribe(sub)
			for {
				select {
				case e := <-sub.ch:
					writeSSEEvent(w, e)
					continue
				default:
				}
				break
			}
			if lost > 0 {
				fmt.Fprintf(w, ": lost %d events to back-pressure\n\n", lost)
			}
			writeSSETerminal(w, j)
			fl.Flush()
			return
		case <-r.Context().Done():
			return
		}
	}
}

// writeSSEEvent frames one trace event: a default-type SSE message whose
// data line is the event's JSONL encoding (shared with obs.JSONLWriter).
func writeSSEEvent(w http.ResponseWriter, e obs.Event) {
	data, err := obs.MarshalEvent(e)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "data: %s\n\n", data)
}

// writeSSETerminal frames the closing `event: job` message with the
// job's terminal snapshot.
func writeSSETerminal(w http.ResponseWriter, j *Job) {
	view, err := json.Marshal(j.View())
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: job\ndata: %s\n\n", view)
}
