package server

import (
	"bufio"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"

	"afp/internal/obs"
)

// makeIdleJob publishes a job in the running state that is not driven by
// the worker pool, so tests control its trace and lifecycle directly.
func makeIdleJob(t *testing.T, s *Server) *Job {
	t.Helper()
	in, err := Resolve(smallRequest())
	if err != nil {
		t.Fatal(err)
	}
	j := newJob(s.store.newID(), in, "test-key", 0)
	if !j.tryStart(func() {}) {
		t.Fatal("tryStart failed")
	}
	s.store.add(j)
	return j
}

// sseFrame is one parsed server-sent event.
type sseFrame struct {
	event string // empty for default-type frames
	data  string
}

// nextFrame reads one SSE frame, skipping comment lines (heartbeats).
func nextFrame(t *testing.T, sc *bufio.Scanner) sseFrame {
	t.Helper()
	var f sseFrame
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			f.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			f.data = strings.TrimPrefix(line, "data: ")
		case line == "" && f.data != "":
			return f
		}
	}
	t.Fatalf("SSE stream ended mid-frame: %v", sc.Err())
	return f
}

func TestSSEReplayThenFollowAndTerminalFrame(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 1, SSEHeartbeat: time.Hour})
	j := makeIdleJob(t, ts.Server)

	// Events emitted before the client attaches must be replayed.
	j.trace.Emit(obs.Event{Kind: obs.KindNodeOpen, Node: 1})
	j.trace.Emit(obs.Event{Kind: obs.KindNodeClose, Node: 1, Depth: 1})

	resp, err := http.Get(ts.http.URL + "/v1/jobs/" + j.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	sc := bufio.NewScanner(resp.Body)
	for i, wantKind := range []string{"node.open", "node.close"} {
		f := nextFrame(t, sc)
		if f.event != "" || !strings.Contains(f.data, wantKind) {
			t.Fatalf("replay frame %d = %+v, want kind %s", i, f, wantKind)
		}
	}

	// An event emitted while attached arrives live.
	j.trace.Emit(obs.Event{Kind: obs.KindProgress, Nodes: 5, Obj: 12, Bound: 10, Gap: 0.2})
	if f := nextFrame(t, sc); !strings.Contains(f.data, "progress") {
		t.Fatalf("live frame = %+v, want progress", f)
	}

	// Terminal state closes the stream with an `event: job` snapshot.
	j.finish(StateDone, nil, false, "")
	f := nextFrame(t, sc)
	if f.event != "job" {
		t.Fatalf("terminal frame = %+v, want event job", f)
	}
	var view JobView
	if err := json.Unmarshal([]byte(f.data), &view); err != nil {
		t.Fatalf("terminal data not a job view: %v\n%s", err, f.data)
	}
	if view.ID != j.ID || view.State != StateDone {
		t.Fatalf("terminal view = %+v", view)
	}
	if sc.Scan() {
		t.Fatalf("stream continued past the terminal frame: %q", sc.Text())
	}
}

func TestSSEUnknownJob404(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 1})
	ts.do(t, "GET", "/v1/jobs/nope/events", nil, http.StatusNotFound, nil)
}

func TestSSEFollowerCapReturns429(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 1})
	j := makeIdleJob(t, ts.Server)
	j.trace.maxSubs = 0 // exhaust the cap without opening 32 sockets
	resp, err := http.Get(ts.http.URL + "/v1/jobs/" + j.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
}

func TestSSEHeartbeat(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 1, SSEHeartbeat: 20 * time.Millisecond})
	j := makeIdleJob(t, ts.Server)
	resp, err := http.Get(ts.http.URL + "/v1/jobs/" + j.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), ": hb") {
			return // idle stream stayed alive via comment frames
		}
	}
	t.Fatalf("no heartbeat before stream ended: %v", sc.Err())
}

func TestTraceBufferSubscribeCap(t *testing.T) {
	b := newTraceBuffer(10)
	var subs []*traceSub
	for i := 0; i < defaultMaxSubs; i++ {
		_, sub, ok := b.subscribe(1)
		if !ok {
			t.Fatalf("subscribe %d refused below cap", i)
		}
		subs = append(subs, sub)
	}
	if _, _, ok := b.subscribe(1); ok {
		t.Fatal("subscribe above cap succeeded")
	}
	b.unsubscribe(subs[0])
	if _, sub, ok := b.subscribe(1); !ok {
		t.Fatal("unsubscribe did not free a follower slot")
	} else {
		b.unsubscribe(sub)
	}
}

func TestTraceBufferReplayAndBackPressure(t *testing.T) {
	b := newTraceBuffer(10)
	b.Emit(obs.Event{Kind: obs.KindNodeOpen, Node: 1})
	b.Emit(obs.Event{Kind: obs.KindNodeOpen, Node: 2})

	// The replay snapshot holds exactly the pre-subscription events.
	replay, slow, ok := b.subscribe(1)
	if !ok || len(replay) != 2 {
		t.Fatalf("replay = %d events, ok=%v; want 2", len(replay), ok)
	}

	// A follower with a full channel loses events instead of blocking
	// Emit; the loss is counted and reported at unsubscribe.
	for n := 3; n <= 5; n++ {
		b.Emit(obs.Event{Kind: obs.KindNodeOpen, Node: n})
	}
	if got := (<-slow.ch).Node; got != 3 {
		t.Fatalf("buffered live event node = %d, want 3", got)
	}
	if lost := b.unsubscribe(slow); lost != 2 {
		t.Fatalf("lost = %d, want 2", lost)
	}
}

// TestWorkerUtilizationPct pins the utilization formula: busy time is
// completed solve wall-clock plus in-flight elapsed, over uptime times
// pool size, clamped to [0,100]. (The previous implementation divided by
// uptime alone, so any multi-worker server could report over 100%.)
func TestWorkerUtilizationPct(t *testing.T) {
	s := New(Config{Workers: 2})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	now := time.Now()
	s.started = now.Add(-10 * time.Second) // capacity: 20 worker-seconds

	if got := s.utilizationPct(s.started); got != 0 {
		t.Errorf("zero-uptime utilization = %v, want 0", got)
	}
	if got := s.utilizationPct(now); got != 0 {
		t.Errorf("idle utilization = %v, want 0", got)
	}

	// 5s of completed solve time over 20 worker-seconds.
	s.metrics.Time("solve", 5*time.Second)
	if got := s.utilizationPct(now); math.Abs(got-25) > 0.01 {
		t.Errorf("utilization = %v, want 25", got)
	}

	// An in-flight solve 4s old adds 4 busy seconds.
	j := makeIdleJob(t, s)
	j.mu.Lock()
	j.started = now.Add(-4 * time.Second)
	j.mu.Unlock()
	if got := s.utilizationPct(now); math.Abs(got-45) > 0.01 {
		t.Errorf("utilization with running job = %v, want 45", got)
	}

	// A terminal job stops accruing in-flight time.
	j.finish(StateDone, nil, false, "")
	if got := s.utilizationPct(now); math.Abs(got-25) > 0.01 {
		t.Errorf("utilization after finish = %v, want 25", got)
	}

	// Saturation clamps at 100 instead of overflowing.
	s.metrics.Time("solve", time.Hour)
	if got := s.utilizationPct(now); got != 100 {
		t.Errorf("saturated utilization = %v, want 100", got)
	}
}

// expositionLine matches one Prometheus sample: a metric name with
// optional labels and a numeric value.
var expositionLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (?:[0-9.eE+-]+|\+Inf|NaN)$`)

func TestMetricsContentNegotiation(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 1})

	// Default (no Accept) stays JSON for existing consumers.
	var m map[string]float64
	ts.do(t, "GET", "/metrics", nil, http.StatusOK, &m)
	if m["pool_workers"] != 1 {
		t.Fatalf("JSON metrics missing pool_workers: %v", m)
	}
	u, ok := m["worker_utilization_pct"]
	if !ok || u < 0 || u > 100 {
		t.Fatalf("worker_utilization_pct = %v (present %v), want within [0,100]", u, ok)
	}

	// Accept: text/plain (with parameters, in a list) selects the
	// Prometheus text exposition.
	for _, accept := range []string{
		"text/plain",
		"application/json;q=0.9, text/plain;version=0.0.4;q=0.5",
	} {
		req, err := http.NewRequest("GET", ts.http.URL+"/metrics", nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Accept", accept)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body := new(strings.Builder)
		sc := bufio.NewScanner(resp.Body)
		var samples int
		for sc.Scan() {
			line := sc.Text()
			body.WriteString(line + "\n")
			if line == "" {
				continue
			}
			if strings.HasPrefix(line, "#") {
				if !strings.HasPrefix(line, "# TYPE ") {
					t.Errorf("unexpected comment line %q", line)
				}
				continue
			}
			if !expositionLine.MatchString(line) {
				t.Errorf("line %q is not valid exposition format", line)
			}
			samples++
		}
		resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != obs.PrometheusContentType {
			t.Fatalf("Accept %q: content type %q, want %q", accept, ct, obs.PrometheusContentType)
		}
		out := body.String()
		if !strings.Contains(out, "# TYPE pool_workers gauge") || !strings.Contains(out, "pool_workers 1") {
			t.Fatalf("Accept %q: exposition missing pool_workers gauge:\n%s", accept, out)
		}
		if !strings.Contains(out, "worker_utilization_pct ") {
			t.Fatalf("Accept %q: exposition missing worker_utilization_pct:\n%s", accept, out)
		}
		if samples == 0 {
			t.Fatalf("Accept %q: no samples in exposition", accept)
		}
	}

	// An explicit JSON Accept keeps JSON.
	req, err := http.NewRequest("GET", ts.http.URL+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("JSON Accept got content type %q", ct)
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("JSON Accept body not JSON: %v", err)
	}
}
