package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilObserverAllocationFree pins the hot-path contract: emitting to
// a disabled (nil) observer performs no heap allocations, so leaving
// instrumentation enabled in solver code is free when no sink is set.
func TestNilObserverAllocationFree(t *testing.T) {
	var o *Observer
	allocs := testing.AllocsPerRun(1000, func() {
		o.Emit(Event{
			Kind: KindLPSolve, Status: "optimal", Obj: 12.5,
			Iters: 42, Phase1Iters: 7, Degenerate: 3, BoundFlips: 2,
			DurUS: 1234, Warm: true,
		})
		if o.Enabled() {
			t.Fatal("nil observer reports enabled")
		}
	})
	if allocs != 0 {
		t.Fatalf("nil-observer Emit allocates %v times per call, want 0", allocs)
	}
	if New(nil) != nil {
		t.Fatal("New(nil) should return the nil observer")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	o := New(w)
	if !o.Enabled() {
		t.Fatal("observer with sink not enabled")
	}
	want := []Event{
		{Kind: KindStepStart, Step: 2, Modules: 6, Covers: 3, Binaries: 24},
		{Kind: KindLPSolve, Status: "optimal", Obj: -1.5, Iters: 17, Phase1Iters: 4,
			Degenerate: 1, BoundFlips: 2, DurUS: 100, Phase1US: 40, Warm: true},
		{Kind: KindNodeClose, Node: 3, Depth: 2, Detail: "integer", Obj: 9},
		{Kind: KindSearchDone, Status: "optimal", Obj: 9, Bound: 9, Nodes: 5,
			Iters: 80, Gap: 0},
		{Kind: KindStepDone, Step: 2, Height: 10.25, Relaxed: true, DurUS: 2500},
	}
	for _, e := range want {
		o.Emit(e)
	}
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != len(want) {
		t.Fatalf("trace has %d lines, want %d", lines, len(want))
	}

	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d events, want %d", len(got), len(want))
	}
	for i := range want {
		// The observer stamps T; compare everything else.
		if got[i].T < 0 {
			t.Fatalf("event %d has negative timestamp %d", i, got[i].T)
		}
		g := got[i]
		g.T = want[i].T
		if !reflect.DeepEqual(g, want[i]) {
			t.Fatalf("event %d round-trip mismatch:\n got %+v\nwant %+v", i, g, want[i])
		}
	}
}

func TestReadJSONLBadInput(t *testing.T) {
	_, err := ReadJSONL(strings.NewReader("{\"kind\":\"x\"}\nnot-json\n"))
	if err == nil {
		t.Fatal("expected decode error")
	}
	// The error must locate the offending line (1-based) and excerpt it.
	if !strings.Contains(err.Error(), "line 2") || !strings.Contains(err.Error(), "not-json") {
		t.Fatalf("error lacks position/excerpt: %v", err)
	}

	longLine := "{" + strings.Repeat("x", 200)
	_, err = ReadJSONL(strings.NewReader(longLine + "\n"))
	if err == nil {
		t.Fatal("expected decode error")
	}
	if !strings.Contains(err.Error(), "...") || len(err.Error()) > 200 {
		t.Fatalf("long line not truncated in error: %v", err)
	}
}

func TestReadJSONLSkipsBlankLines(t *testing.T) {
	in := "\n{\"kind\":\"node.open\",\"node\":1}\n   \n\n{\"kind\":\"node.close\",\"node\":1}\n\n"
	got, err := ReadJSONL(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Kind != KindNodeOpen || got[1].Kind != KindNodeClose {
		t.Fatalf("decoded %+v, want the two events with blanks skipped", got)
	}
}

func TestRecorder(t *testing.T) {
	rec := &Recorder{}
	o := New(rec)
	o.Emit(Event{Kind: KindNodeOpen, Node: 1})
	o.Emit(Event{Kind: KindNodeClose, Node: 1, Detail: "branched"})
	o.Emit(Event{Kind: KindNodeOpen, Node: 2})
	if got := rec.CountKind(KindNodeOpen); got != 2 {
		t.Fatalf("CountKind(open) = %d, want 2", got)
	}
	last, ok := rec.LastKind(KindNodeOpen)
	if !ok || last.Node != 2 {
		t.Fatalf("LastKind(open) = %+v, %v", last, ok)
	}
	if _, ok := rec.LastKind(KindIncumbent); ok {
		t.Fatal("LastKind on absent kind should report false")
	}
	evs := rec.Events()
	evs[0].Node = 99 // returned slice must be a copy
	if rec.Events()[0].Node != 1 {
		t.Fatal("Events() exposed internal storage")
	}
}

func TestRecorderConcurrent(t *testing.T) {
	rec := &Recorder{}
	o := New(rec)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				o.Emit(Event{Kind: KindProgress, Nodes: i})
			}
		}()
	}
	wg.Wait()
	if got := rec.CountKind(KindProgress); got != 800 {
		t.Fatalf("recorded %d events, want 800", got)
	}
}

func TestMultiAndLogSink(t *testing.T) {
	var buf bytes.Buffer
	rec := &Recorder{}
	o := New(Multi(nil, rec, NewLogSink(&buf)))
	o.Emit(Event{Kind: KindNodeOpen, Node: 1})                                 // suppressed by LogSink
	o.Emit(Event{Kind: KindStepDone, Step: 1, Status: "optimal", Height: 8.5}) //nolint
	o.Emit(Event{Kind: KindAnnealTemp, Temp: 2.5, Accepted: 3, Attempted: 9})
	if rec.CountKind(KindNodeOpen) != 1 {
		t.Fatal("recorder missed fanned-out event")
	}
	out := buf.String()
	if strings.Contains(out, "node.open") {
		t.Fatalf("log sink printed suppressed node event:\n%s", out)
	}
	for _, want := range []string{"step 1", "optimal", "anneal T=2.5", "3/9"} {
		if !strings.Contains(out, want) {
			t.Fatalf("log output missing %q:\n%s", want, out)
		}
	}
	if Multi() != nil {
		t.Fatal("empty Multi should be nil")
	}
	if Multi(rec) != Sink(rec) {
		t.Fatal("single-sink Multi should unwrap")
	}
}

func TestMetrics(t *testing.T) {
	var m Metrics
	m.Count("nodes", 5)
	m.Count("nodes", 7)
	m.Time("solve", 1500*time.Microsecond)
	m.Timed("solve", func() {})
	if got := m.Counter("nodes"); got != 12 {
		t.Fatalf("counter = %d, want 12", got)
	}
	snap := m.Snapshot()
	if snap["nodes"] != 12 {
		t.Fatalf("snapshot nodes = %v", snap["nodes"])
	}
	if snap["solve_ms"] < 1.5 {
		t.Fatalf("snapshot solve_ms = %v, want >= 1.5", snap["solve_ms"])
	}
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]float64
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("metrics JSON invalid: %v\n%s", err, buf.String())
	}
	if decoded["nodes"] != 12 {
		t.Fatalf("decoded nodes = %v", decoded["nodes"])
	}

	// Nil metrics are usable no-ops.
	var nilM *Metrics
	nilM.Count("x", 1)
	nilM.Time("y", time.Second)
	nilM.Timed("z", func() {})
	if len(nilM.Snapshot()) != 0 || nilM.Counter("x") != 0 {
		t.Fatal("nil metrics should be empty")
	}
}

func TestMetricsConcurrent(t *testing.T) {
	var m Metrics
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.Count("n", 1)
				m.Time("t", time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if m.Counter("n") != 8000 {
		t.Fatalf("counter = %d, want 8000", m.Counter("n"))
	}
}
