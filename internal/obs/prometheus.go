package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// PrometheusContentType is the Content-Type of the text exposition
// format version 0.0.4 written by WritePrometheus.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): counters as <name>_total, accumulated timers
// as <name>_seconds_total, gauges under their own name and histograms
// with the standard cumulative _bucket{le="..."} / _sum / _count series.
// Families are emitted in sorted exposition-name order with one # TYPE
// line each, so the output is deterministic and diffable.
func (m *Metrics) WritePrometheus(w io.Writer) error {
	type family struct {
		name string
		typ  string
		body func(io.Writer, string) error
	}
	var fams []family

	if m != nil {
		m.mu.Lock()
		for k, v := range m.counters {
			v := v
			fams = append(fams, family{promName(k) + "_total", "counter", func(w io.Writer, n string) error {
				_, err := fmt.Fprintf(w, "%s %s\n", n, promFloat(float64(v)))
				return err
			}})
		}
		for k, v := range m.timers {
			secs := v.Seconds()
			fams = append(fams, family{promName(k) + "_seconds_total", "counter", func(w io.Writer, n string) error {
				_, err := fmt.Fprintf(w, "%s %s\n", n, promFloat(secs))
				return err
			}})
		}
		for k, v := range m.gauges {
			v := v
			fams = append(fams, family{promName(k), "gauge", func(w io.Writer, n string) error {
				_, err := fmt.Fprintf(w, "%s %s\n", n, promFloat(v))
				return err
			}})
		}
		for k, h := range m.hists {
			snap := HistogramSnapshot{
				Buckets: h.buckets,
				Counts:  append([]int64(nil), h.counts...),
				Count:   h.count,
				Sum:     h.sum,
			}
			fams = append(fams, family{promName(k), "histogram", func(w io.Writer, n string) error {
				var cum int64
				for i, ub := range snap.Buckets {
					cum += snap.Counts[i]
					if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", n, promFloat(ub), cum); err != nil {
						return err
					}
				}
				cum += snap.Counts[len(snap.Buckets)]
				if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", n, cum); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_sum %s\n", n, promFloat(snap.Sum)); err != nil {
					return err
				}
				_, err := fmt.Fprintf(w, "%s_count %d\n", n, snap.Count)
				return err
			}})
		}
		m.mu.Unlock()
	}

	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		if err := f.body(w, f.name); err != nil {
			return err
		}
	}
	return nil
}

// promName sanitizes a metric name into the Prometheus charset
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			r = '_'
		}
		b.WriteRune(r)
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// promFloat formats a sample value; the exposition format uses Go's
// shortest-round-trip decimal form.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
