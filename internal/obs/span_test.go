package obs

import (
	"context"
	"testing"
)

func TestSpanTreeEmission(t *testing.T) {
	rec := &Recorder{}
	o := New(rec)
	ctx := context.Background()

	rootCtx, root := o.StartSpanAttrs(ctx, "solve", SpanAttrs{Detail: "ami33"})
	if root == nil || root.ID() == 0 {
		t.Fatal("root span not created")
	}
	if SpanID(rootCtx) != root.ID() {
		t.Fatal("context does not carry the root span")
	}
	childCtx, child := o.StartSpanAttrs(rootCtx, "step", SpanAttrs{Step: 3})
	if SpanFromContext(childCtx) != child {
		t.Fatal("context does not carry the child span")
	}
	child.End()
	child.End() // idempotent: must not emit a second span.end
	root.End()

	starts := rec.Events()
	var open, closed []Event
	for _, e := range starts {
		switch e.Kind {
		case KindSpanStart:
			open = append(open, e)
		case KindSpanEnd:
			closed = append(closed, e)
		}
	}
	if len(open) != 2 || len(closed) != 2 {
		t.Fatalf("got %d span.start / %d span.end, want 2/2", len(open), len(closed))
	}
	if open[0].Name != "solve" || open[0].Parent != 0 || open[0].Detail != "ami33" {
		t.Errorf("root start: %+v", open[0])
	}
	if open[1].Name != "step" || open[1].Parent != root.ID() || open[1].Step != 3 {
		t.Errorf("child start: %+v", open[1])
	}
	if closed[0].Name != "step" || closed[0].Span != child.ID() || closed[0].DurUS < 0 {
		t.Errorf("child end: %+v", closed[0])
	}
	if closed[1].Name != "solve" {
		t.Errorf("root end: %+v", closed[1])
	}
}

func TestSpanNilSafety(t *testing.T) {
	var o *Observer
	ctx := context.Background()
	gotCtx, sp := o.StartSpan(ctx, "solve")
	if sp != nil || gotCtx != ctx {
		t.Fatal("disabled observer must return nil span and the original ctx")
	}
	sp.End() // no-op on nil
	if SpanID(ctx) != 0 {
		t.Fatal("empty context must report span id 0")
	}
	if ContextWithSpan(ctx, nil) != ctx {
		t.Fatal("ContextWithSpan(nil) must return ctx unchanged")
	}

	ran := false
	o.Do(ctx, "solve", SpanAttrs{}, func(inner context.Context) {
		ran = true
		if inner != ctx {
			t.Error("disabled Do must pass ctx through unchanged")
		}
	})
	if !ran {
		t.Fatal("disabled Do did not run f")
	}
}

func TestObserverDo(t *testing.T) {
	rec := &Recorder{}
	o := New(rec)
	var innerID int64
	o.Do(context.Background(), "bb", SpanAttrs{Worker: 2}, func(ctx context.Context) {
		innerID = SpanID(ctx)
		if innerID == 0 {
			t.Error("Do must run f under its span")
		}
	})
	if rec.CountKind(KindSpanStart) != 1 || rec.CountKind(KindSpanEnd) != 1 {
		t.Fatalf("Do emitted %d starts / %d ends, want 1/1",
			rec.CountKind(KindSpanStart), rec.CountKind(KindSpanEnd))
	}
	end, _ := rec.LastKind(KindSpanEnd)
	if end.Span != innerID || end.Name != "bb" {
		t.Errorf("span.end = %+v, want span %d name bb", end, innerID)
	}
	start, _ := rec.LastKind(KindSpanStart)
	if start.Worker != 2 {
		t.Errorf("span.start worker = %d, want 2", start.Worker)
	}
}

// TestSpanEventsValidate pins the generated registry covering the span
// kinds: a span emitted by the real implementation must pass the same
// runtime validation solver events do.
func TestSpanEventsValidate(t *testing.T) {
	rec := &Recorder{}
	o := New(rec)
	ctx, sp := o.StartSpanAttrs(context.Background(), "solve", SpanAttrs{Step: 1, Worker: 2, Detail: "d"})
	_, child := o.StartSpan(ctx, "step")
	child.End()
	sp.End()
	for _, e := range rec.Events() {
		if err := ValidateEvent(e); err != nil {
			t.Errorf("span event fails schema: %v (%+v)", err, e)
		}
	}
}
