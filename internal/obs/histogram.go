package obs

import "math"

// DefaultBuckets is the fixed bucket ladder shared by every histogram: a
// 1-2.5-5 decade ladder from 1 to 1e7, which covers microsecond-scale
// latencies (1µs .. 10s), branch-and-bound node depths and queue waits
// with one schema. Fixed buckets keep Observe allocation-free after the
// first observation of a name and make snapshots mergeable across
// processes.
var DefaultBuckets = []float64{
	1, 2.5, 5, 10, 25, 50, 100, 250, 500,
	1000, 2500, 5000, 10000, 25000, 50000, 100000, 250000, 500000,
	1e6, 2.5e6, 5e6, 1e7,
}

// histogram is a fixed-bucket distribution: counts[i] holds observations
// with v <= buckets[i] and v > buckets[i-1]; the final extra slot is the
// +Inf overflow bucket.
// histogram instances live in Metrics.hists and are only reached with
// the registry lock held, so Metrics.mu guards the mutable fields.
type histogram struct {
	buckets []float64 // immutable after newHistogram
	counts  []int64   // guarded by obs.Metrics.mu
	count   int64     // guarded by obs.Metrics.mu
	sum     float64   // guarded by obs.Metrics.mu
}

func newHistogram(buckets []float64) *histogram {
	return &histogram{buckets: buckets, counts: make([]int64, len(buckets)+1)}
}

// locked: obs.Metrics.mu
func (h *histogram) observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	idx := len(h.buckets) // +Inf overflow by default
	for i, ub := range h.buckets {
		if v <= ub {
			idx = i
			break
		}
	}
	h.counts[idx]++
	h.count++
	h.sum += v
}

// HistogramSnapshot is a point-in-time copy of one histogram. Counts are
// per-bucket (non-cumulative), aligned with Buckets, with one trailing
// +Inf overflow slot.
type HistogramSnapshot struct {
	Buckets []float64
	Counts  []int64
	Count   int64
	Sum     float64
}

// Quantile estimates the q-quantile (0..1) by linear interpolation
// within the bucket containing it, the usual Prometheus-style estimate.
// It returns 0 on an empty histogram and the largest finite bucket bound
// when the quantile lands in the overflow bucket.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	rank := q * float64(h.Count)
	var cum int64
	for i, c := range h.Counts {
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(h.Buckets) {
			return h.Buckets[len(h.Buckets)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.Buckets[i-1]
		}
		if c == 0 {
			return h.Buckets[i]
		}
		frac := (rank - float64(cum-c)) / float64(c)
		return lo + frac*(h.Buckets[i]-lo)
	}
	return h.Buckets[len(h.Buckets)-1]
}

// Observe records one value into the named histogram (latency in
// microseconds, node depth, queue wait — any nonnegative scalar fits the
// shared DefaultBuckets ladder). NaN observations are dropped. Safe (and
// a no-op) on nil.
func (m *Metrics) Observe(name string, v float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	if m.hists == nil {
		m.hists = make(map[string]*histogram)
	}
	h := m.hists[name]
	if h == nil {
		h = newHistogram(DefaultBuckets)
		m.hists[name] = h
	}
	h.observe(v)
	m.mu.Unlock()
}

// Histograms returns a snapshot of every histogram by name.
func (m *Metrics) Histograms() map[string]HistogramSnapshot {
	out := make(map[string]HistogramSnapshot)
	if m == nil {
		return out
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for name, h := range m.hists {
		out[name] = HistogramSnapshot{
			Buckets: h.buckets,
			Counts:  append([]int64(nil), h.counts...),
			Count:   h.count,
			Sum:     h.sum,
		}
	}
	return out
}

// MetricsSink is an obs.Sink deriving histogram distributions from the
// event stream, so a service can aggregate latency distributions across
// jobs without threading a Metrics handle through every solver option:
// lp.solve durations land in lp_solve_us, node.close depths in
// node_depth, step.done durations in step_us.
type MetricsSink struct {
	M *Metrics
}

// Emit implements Sink.
func (s MetricsSink) Emit(e Event) {
	switch e.Kind {
	case KindLPSolve:
		s.M.Observe("lp_solve_us", float64(e.DurUS))
	case KindNodeClose:
		s.M.Observe("node_depth", float64(e.Depth))
	case KindStepDone:
		s.M.Observe("step_us", float64(e.DurUS))
	case KindPortfolioIncumbent:
		if e.First {
			// Time-to-first-feasible of the whole race, one sample per solve.
			s.M.Observe("portfolio_ttff_us", float64(e.DurUS))
		}
	case KindPortfolioWin:
		// Per-backend win counters back the /metrics win-rate series.
		s.M.Count("portfolio_wins_"+e.Detail, 1)
	}
}
