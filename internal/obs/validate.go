package obs

import (
	"fmt"
	"reflect"
	"sort"
)

// KnownKind reports whether k is registered in the generated Schema.
func KnownKind(k Kind) bool {
	_, ok := Schema[string(k)]
	return ok
}

// ValidateEvent checks an event against the generated Schema: its kind
// must be registered and every populated (non-zero) field must belong to
// the kind's registered field set. T and Kind are always allowed. It is
// the runtime counterpart of the obsevent analyzer and lets tests assert
// that recorded traces round-trip through the registry.
func ValidateEvent(e Event) error {
	allowed, ok := Schema[string(e.Kind)]
	if !ok {
		return fmt.Errorf("obs: unknown event kind %q", e.Kind)
	}
	set := map[string]bool{"T": true, "Kind": true}
	for _, f := range allowed {
		set[f] = true
	}
	v := reflect.ValueOf(e)
	t := v.Type()
	var bad []string
	for i := 0; i < t.NumField(); i++ {
		if v.Field(i).IsZero() || set[t.Field(i).Name] {
			continue
		}
		bad = append(bad, t.Field(i).Name)
	}
	if len(bad) > 0 {
		sort.Strings(bad)
		return fmt.Errorf("obs: event kind %q populates unregistered fields %v", e.Kind, bad)
	}
	return nil
}
