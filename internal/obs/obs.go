// Package obs is the solver telemetry layer: structured events, sinks
// and lightweight metrics shared by the LP, MILP, augmentation and
// annealing layers. It exists so that formulation and search-strategy
// experiments (branching rules, warm starts, covering-rectangle
// variants) can be compared on per-node and per-iteration behavior
// rather than wall-clock alone.
//
// The design center is the nil-safe no-op: an *Observer is threaded
// through solver options as a pointer, and every method on a nil
// Observer returns immediately without allocating, so disabled
// instrumentation costs one predictable branch on the hot path.
// Enabled observers forward flat, schema-stable Event values to a Sink
// (a JSONL trace writer, an in-memory recorder, a human-readable log,
// or any combination).
//
// schema.go is generated from the repository's emit sites; regenerate it
// after adding or changing an event emission.
//
//go:generate go run afp/internal/obs/schemagen -root ../.. -out schema.go
package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Kind identifies the event type. Kinds are namespaced by the emitting
// layer: "lp.*" for simplex solves, "node.*" and "search.*" for branch
// and bound, "step.*" and "adjust" for successive augmentation,
// "anneal.*" for the simulated-annealing baseline.
type Kind string

// Event kinds emitted by the solver layers.
const (
	// KindLPSolve summarizes one simplex solve: iteration, degenerate-pivot
	// and bound-flip counts plus phase timings.
	KindLPSolve Kind = "lp.solve"
	// KindNodeOpen marks a branch-and-bound node entering the tree (the
	// root, or a child created by branching).
	KindNodeOpen Kind = "node.open"
	// KindNodeClose marks a node fully processed after its LP solve;
	// Detail records the resolution (integer, infeasible, bound, branched,
	// unbounded, iterlimit, lperror, cancelled).
	KindNodeClose Kind = "node.close"
	// KindNodePrune marks a node discarded by its parent bound before
	// paying for an LP solve.
	KindNodePrune Kind = "node.prune"
	// KindIncumbent marks an improved integer-feasible solution.
	KindIncumbent Kind = "incumbent"
	// KindProgress is a periodic branch-and-bound probe: nodes explored,
	// open count, incumbent, best bound and relative gap.
	KindProgress Kind = "progress"
	// KindSearchDone summarizes a finished branch-and-bound search.
	KindSearchDone Kind = "search.done"
	// KindSearchParallel summarizes the parallel branch-and-bound run that
	// preceded a search.done event: worker count, shared-pool steal count
	// and cumulative worker idle time. Emitted only at Workers > 1.
	KindSearchParallel Kind = "search.parallel"
	// KindStepStart opens one successive-augmentation step: group
	// composition, covering-rectangle count and 0-1 variable count.
	KindStepStart Kind = "step.start"
	// KindStepDone closes an augmentation step with the solver cost and
	// resulting partial floorplan height.
	KindStepDone Kind = "step.done"
	// KindAdjust reports one fixed-topology LP adjustment round.
	KindAdjust Kind = "adjust"
	// KindAnnealTemp reports per-move acceptance statistics for one
	// temperature of the simulated-annealing baseline.
	KindAnnealTemp Kind = "anneal.temp"
	// KindPresolve summarizes one presolve pass: fixed binaries, tightened
	// bounds and (for the formulation-level pass) the big-M reduction.
	// Detail distinguishes the pass ("model" for mipmodel's geometric
	// presolve, "propagate" for milp's bound propagation).
	KindPresolve Kind = "presolve.done"
	// KindPortfolioIncumbent marks a verified feasible floorplan
	// published to a portfolio race's shared incumbent board. Detail
	// names the publishing backend, Height/Bound carry the published
	// height and the board's proven height bound, DurUS is the offset
	// from race start, and First flags the race's first feasible
	// incumbent (the time-to-first-feasible sample).
	KindPortfolioIncumbent Kind = "portfolio.incumbent"
	// KindPortfolioWin closes a portfolio race: Detail names the winning
	// backend, Status its outcome, Height the final height and DurUS the
	// race wall time.
	KindPortfolioWin Kind = "portfolio.win"
)

// Event is one structured telemetry record. The struct is flat and
// kind-discriminated: each Kind populates the subset of fields that
// apply to it and leaves the rest at their zero values, which the JSONL
// encoding omits. Fields are value types only, so constructing an Event
// never allocates and emitting to a nil Observer is free.
type Event struct {
	// T is the event time in microseconds since the observer started.
	T int64 `json:"t,omitempty"`
	// Kind discriminates the event type.
	Kind Kind `json:"kind"`

	// Step is the successive-augmentation step index.
	Step int `json:"step,omitempty"`
	// Node is the branch-and-bound node id (order of creation, root = 1).
	Node int `json:"node,omitempty"`
	// Depth is the node depth in the branch-and-bound tree.
	Depth int `json:"depth,omitempty"`
	// BranchVar is the index (into the model's integer set) of the
	// variable branched on.
	BranchVar int `json:"branch_var,omitempty"`
	// Status is a solver status string (lp.Status or milp.Status).
	Status string `json:"status,omitempty"`
	// Detail carries a kind-specific discriminator, e.g. a node.close
	// resolution.
	Detail string `json:"detail,omitempty"`

	// Obj is an objective value: LP objective, incumbent objective or
	// per-step subproblem objective, in the caller's objective sense.
	Obj float64 `json:"obj,omitempty"`
	// Bound is the proven bound paired with Obj.
	Bound float64 `json:"bound,omitempty"`
	// Gap is the relative MIP gap |Obj-Bound| / max(1e-10, |Obj|).
	Gap float64 `json:"gap,omitempty"`
	// Height is the (partial) floorplan height after a step.
	Height float64 `json:"height,omitempty"`
	// Temp is the annealing temperature.
	Temp float64 `json:"temp,omitempty"`

	// Iters counts simplex iterations (total across phases for lp.solve;
	// cumulative across node solves for search-level events).
	Iters int `json:"iters,omitempty"`
	// Phase1Iters counts phase-1 iterations of a two-phase solve.
	Phase1Iters int `json:"phase1_iters,omitempty"`
	// Degenerate counts degenerate pivots (zero step length).
	Degenerate int `json:"degenerate,omitempty"`
	// BoundFlips counts nonbasic bound flips (pivots without a basis
	// change).
	BoundFlips int `json:"bound_flips,omitempty"`
	// DualPivots counts dual simplex pivots (per solve for lp.solve;
	// cumulative across node solves for search-level events).
	DualPivots int `json:"dual_pivots,omitempty"`
	// Refactors counts basis LU refactorizations of the sparse revised
	// simplex (per solve for lp.solve; cumulative for search events).
	Refactors int `json:"refactors,omitempty"`
	// Nodes counts branch-and-bound nodes explored so far.
	Nodes int `json:"nodes,omitempty"`
	// Open counts open (unexplored) nodes.
	Open int `json:"open,omitempty"`
	// Pruned counts nodes discarded without an LP solve.
	Pruned int `json:"pruned,omitempty"`
	// Covers is the covering-rectangle count d presented as obstacles.
	Covers int `json:"covers,omitempty"`
	// Binaries is the 0-1 variable count of a subproblem.
	Binaries int `json:"binaries,omitempty"`
	// Modules counts modules: already placed for step.start, added for
	// step.done.
	Modules int `json:"modules,omitempty"`
	// Accepted / Attempted are per-temperature annealing move counts.
	Accepted  int `json:"accepted,omitempty"`
	Attempted int `json:"attempted,omitempty"`

	// Fixed counts integer variables fixed by a presolve pass.
	Fixed int `json:"fixed,omitempty"`
	// Tightened counts variable bounds tightened by a presolve pass.
	Tightened int `json:"tightened,omitempty"`
	// MReduction is the fraction of disjunctive big-M mass removed by the
	// tightened formulation relative to the blanket one.
	MReduction float64 `json:"m_reduction,omitempty"`

	// Worker is the 1-based branch-and-bound worker id that produced a
	// node.* event; 0 (omitted) for the serial search.
	Worker int `json:"worker,omitempty"`
	// Workers is the worker count of a search.parallel summary.
	Workers int `json:"workers,omitempty"`
	// Steals counts nodes a worker pulled from the shared pool that were
	// created by a different worker.
	Steals int `json:"steals,omitempty"`
	// IdleUS is the cumulative time workers spent waiting for work, in
	// microseconds, summed across workers.
	IdleUS int64 `json:"idle_us,omitempty"`

	// DurUS is the duration of the traced unit in microseconds.
	DurUS int64 `json:"dur_us,omitempty"`
	// Phase1US is the phase-1 share of DurUS for lp.solve events.
	Phase1US int64 `json:"phase1_us,omitempty"`

	// Warm marks a warm-started (dual simplex repair) LP solve.
	Warm bool `json:"warm,omitempty"`
	// Relaxed marks a step whose critical-net constraints were dropped.
	Relaxed bool `json:"relaxed,omitempty"`
	// First marks the first feasible incumbent of a portfolio race.
	First bool `json:"first,omitempty"`

	// Span is the span id: the span itself for span.start/span.end, the
	// enclosing span for leaf events stamped with one (lp.solve).
	Span int64 `json:"span,omitempty"`
	// Parent is the parent span id of a span.start/span.end event; 0
	// marks a root span.
	Parent int64 `json:"parent,omitempty"`
	// Name is the span name of a span.start/span.end event.
	Name string `json:"name,omitempty"`
}

// Sink consumes events. Implementations must be safe for concurrent
// use: solver layers may emit from multiple goroutines (width sweeps,
// future parallel branch and bound).
type Sink interface {
	Emit(Event)
}

// Observer stamps events with a monotonic trace clock and forwards them
// to a sink. The zero pointer is the disabled observer: every method on
// a nil *Observer is a cheap no-op, so solver code calls methods
// unconditionally.
type Observer struct {
	sink    Sink
	start   time.Time
	spanSeq atomic.Int64 // span-id allocator (see span.go)
}

// New returns an observer forwarding to sink, or nil when sink is nil
// (so callers can write obs.New(maybeNilSink) and get the no-op).
func New(sink Sink) *Observer {
	if sink == nil {
		return nil
	}
	return &Observer{sink: sink, start: time.Now()}
}

// Enabled reports whether events are being consumed. Hot paths use it
// to skip even the construction of an Event.
func (o *Observer) Enabled() bool { return o != nil && o.sink != nil }

// Emit stamps and forwards one event. Safe (and free) on nil.
func (o *Observer) Emit(e Event) {
	if o == nil || o.sink == nil {
		return
	}
	e.T = time.Since(o.start).Microseconds()
	o.sink.Emit(e)
}

// JSONLWriter is a Sink writing one JSON object per line. It is safe
// for concurrent use; the first encoding or write error is retained and
// reported by Err, after which further events are dropped.
type JSONLWriter struct {
	mu  sync.Mutex
	enc *json.Encoder // immutable after NewJSONLWriter
	err error         // guarded by mu
}

// NewJSONLWriter returns a JSONL sink over w. The caller retains
// ownership of w and closes it after the last event.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	return &JSONLWriter{enc: json.NewEncoder(w)}
}

// Emit writes one event as a JSON line. Non-finite float fields (e.g. a
// root node's -Inf parent bound) are not representable in JSON and are
// written as 0, i.e. omitted.
func (s *JSONLWriter) Emit(e Event) {
	e = sanitizeEvent(e)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	s.err = s.enc.Encode(&e)
}

func finiteOrZero(x float64) float64 {
	if math.IsInf(x, 0) || math.IsNaN(x) {
		return 0
	}
	return x
}

// sanitizeEvent zeroes the non-finite float fields JSON cannot carry.
func sanitizeEvent(e Event) Event {
	e.Obj = finiteOrZero(e.Obj)
	e.Bound = finiteOrZero(e.Bound)
	e.Gap = finiteOrZero(e.Gap)
	e.Height = finiteOrZero(e.Height)
	e.Temp = finiteOrZero(e.Temp)
	return e
}

// MarshalEvent encodes one event as a single JSON object (no trailing
// newline) with the same non-finite-float handling as JSONLWriter, so
// SSE frames and JSONL trace lines decode identically.
func MarshalEvent(e Event) ([]byte, error) {
	e = sanitizeEvent(e)
	return json.Marshal(&e)
}

// Err returns the first write error, if any.
func (s *JSONLWriter) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// ReadJSONL decodes a JSONL trace produced by JSONLWriter. Blank lines
// are skipped; a malformed line fails with its 1-based line number and a
// truncated excerpt, so a corrupt multi-megabyte trace points at the
// offending line instead of a byte offset.
func ReadJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 8<<20)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(raw, &e); err != nil {
			return out, fmt.Errorf("obs: trace line %d: %w (line: %s)", line, err, lineExcerpt(raw))
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return out, fmt.Errorf("obs: reading trace after line %d: %w", line, err)
	}
	return out, nil
}

// lineExcerpt truncates a trace line for error messages.
func lineExcerpt(b []byte) string {
	const max = 80
	if len(b) <= max {
		return string(b)
	}
	return string(b[:max-3]) + "..."
}

// Recorder is an in-memory Sink for tests and programmatic analysis.
type Recorder struct {
	mu     sync.Mutex
	events []Event // guarded by mu
}

// Emit appends the event.
func (r *Recorder) Emit(e Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// Events returns a copy of the recorded events in emission order.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// CountKind returns the number of recorded events of kind k.
func (r *Recorder) CountKind(k Kind) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, e := range r.events {
		if e.Kind == k {
			n++
		}
	}
	return n
}

// LastKind returns the most recent event of kind k and whether one
// exists.
func (r *Recorder) LastKind(k Kind) (Event, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := len(r.events) - 1; i >= 0; i-- {
		if r.events[i].Kind == k {
			return r.events[i], true
		}
	}
	return Event{}, false
}

// LogSink is a Sink printing human-readable one-liners, used by the
// CLIs' -verbose flags. By default the per-node and per-LP-solve firehose
// is suppressed and only search- and step-level events are shown; set
// All for everything.
type LogSink struct {
	mu sync.Mutex
	w  io.Writer
	// All disables the default suppression of node.* and lp.solve events.
	All bool
}

// NewLogSink returns a log sink over w (typically os.Stderr).
func NewLogSink(w io.Writer) *LogSink { return &LogSink{w: w} }

// Emit formats one event.
func (s *LogSink) Emit(e Event) {
	if !s.All {
		switch e.Kind {
		case KindNodeOpen, KindNodeClose, KindNodePrune, KindLPSolve,
			KindSpanStart, KindSpanEnd:
			return
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch e.Kind {
	case KindStepStart:
		fmt.Fprintf(s.w, "[%8.3fs] step %d: %d placed as %d covers, %d binaries\n",
			sec(e.T), e.Step, e.Modules, e.Covers, e.Binaries)
	case KindStepDone:
		fmt.Fprintf(s.w, "[%8.3fs] step %d: %s, +%d modules, %d nodes, %d lp iters, height %.1f (%.0fms)%s\n",
			sec(e.T), e.Step, e.Status, e.Modules, e.Nodes, e.Iters, e.Height,
			float64(e.DurUS)/1e3, relaxedSuffix(e.Relaxed))
	case KindProgress:
		fmt.Fprintf(s.w, "[%8.3fs] b&b: %d nodes, %d open, incumbent %.4g, bound %.4g, gap %.2f%%\n",
			sec(e.T), e.Nodes, e.Open, e.Obj, e.Bound, 100*e.Gap)
	case KindIncumbent:
		fmt.Fprintf(s.w, "[%8.3fs] incumbent %.6g at node %d\n", sec(e.T), e.Obj, e.Node)
	case KindSearchDone:
		fmt.Fprintf(s.w, "[%8.3fs] b&b done: %s, obj %.6g, bound %.6g, gap %.2f%%, %d nodes, %d lp iters\n",
			sec(e.T), e.Status, e.Obj, e.Bound, 100*e.Gap, e.Nodes, e.Iters)
	case KindSearchParallel:
		fmt.Fprintf(s.w, "[%8.3fs] b&b parallel: %d workers, %d steals, %.0fms idle\n",
			sec(e.T), e.Workers, e.Steals, float64(e.IdleUS)/1e3)
	case KindAdjust:
		fmt.Fprintf(s.w, "[%8.3fs] adjust %d: chip %.2f x %.2f\n",
			sec(e.T), e.Step, e.Obj, e.Height)
	case KindAnnealTemp:
		fmt.Fprintf(s.w, "[%8.3fs] anneal T=%.4g: %d/%d accepted, cost %.4g, best %.4g\n",
			sec(e.T), e.Temp, e.Accepted, e.Attempted, e.Obj, e.Bound)
	case KindPresolve:
		fmt.Fprintf(s.w, "[%8.3fs] presolve (%s): %d binaries fixed, %d bounds tightened, big-M -%.0f%%\n",
			sec(e.T), e.Detail, e.Fixed, e.Tightened, 100*e.MReduction)
	case KindPortfolioIncumbent:
		fmt.Fprintf(s.w, "[%8.3fs] portfolio incumbent (%s): height %.4g, bound %.4g%s\n",
			sec(e.T), e.Detail, e.Height, e.Bound, firstSuffix(e.First))
	case KindPortfolioWin:
		fmt.Fprintf(s.w, "[%8.3fs] portfolio win: %s (%s), height %.4g (%.0fms)\n",
			sec(e.T), e.Detail, e.Status, e.Height, float64(e.DurUS)/1e3)
	default:
		fmt.Fprintf(s.w, "[%8.3fs] %s %+v\n", sec(e.T), e.Kind, e)
	}
}

func sec(us int64) float64 { return float64(us) / 1e6 }

func relaxedSuffix(r bool) string {
	if r {
		return " [relaxed]"
	}
	return ""
}

func firstSuffix(f bool) string {
	if f {
		return " [first]"
	}
	return ""
}

// Multi fans events out to every sink.
func Multi(sinks ...Sink) Sink {
	// Drop nils so callers can pass optional sinks unconditionally.
	var live []Sink
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return multiSink(live)
}

type multiSink []Sink

func (m multiSink) Emit(e Event) {
	for _, s := range m {
		s.Emit(e)
	}
}

// Metrics is a concurrency-safe registry of named counters and
// accumulated timers, JSON-serializable as a flat object. It backs the
// metrics sidecars written by cmd/experiments and the benchmark
// harness. The zero value and the nil pointer are both usable; nil is
// a no-op.
type Metrics struct {
	mu       sync.Mutex
	counters map[string]int64         // guarded by mu
	timers   map[string]time.Duration // guarded by mu
	gauges   map[string]float64       // guarded by mu
	hists    map[string]*histogram    // guarded by mu
}

// Count adds n to the named counter.
func (m *Metrics) Count(name string, n int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	if m.counters == nil {
		m.counters = make(map[string]int64)
	}
	m.counters[name] += n
	m.mu.Unlock()
}

// Time accumulates d under the named timer.
func (m *Metrics) Time(name string, d time.Duration) {
	if m == nil {
		return
	}
	m.mu.Lock()
	if m.timers == nil {
		m.timers = make(map[string]time.Duration)
	}
	m.timers[name] += d
	m.mu.Unlock()
}

// Timed runs f and accumulates its duration under the named timer.
func (m *Metrics) Timed(name string, f func()) {
	start := time.Now()
	f()
	m.Time(name, time.Since(start))
}

// GaugeAdd shifts the named gauge by delta. Unlike counters, gauges are
// level values that rise and fall (queue depth, running jobs); they are
// reported in the snapshot under their plain name.
func (m *Metrics) GaugeAdd(name string, delta float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	if m.gauges == nil {
		m.gauges = make(map[string]float64)
	}
	m.gauges[name] += delta
	m.mu.Unlock()
}

// SetGauge sets the named gauge to an absolute value.
func (m *Metrics) SetGauge(name string, v float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	if m.gauges == nil {
		m.gauges = make(map[string]float64)
	}
	m.gauges[name] = v
	m.mu.Unlock()
}

// Gauge returns the current value of the named gauge.
func (m *Metrics) Gauge(name string) float64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.gauges[name]
}

// Counter returns the current value of the named counter.
func (m *Metrics) Counter(name string) int64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counters[name]
}

// Snapshot returns a stable, flat view: counters and gauges under their
// own names, timers as "<name>_ms" in milliseconds, histograms as
// "<name>_count" / "<name>_sum" / "<name>_p50" / "<name>_p99" summary
// scalars (the full bucket vectors are served by Histograms and the
// Prometheus writer).
func (m *Metrics) Snapshot() map[string]float64 {
	out := make(map[string]float64)
	if m == nil {
		return out
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for k, v := range m.counters {
		out[k] = float64(v)
	}
	for k, v := range m.timers {
		out[k+"_ms"] = float64(v) / float64(time.Millisecond)
	}
	for k, v := range m.gauges {
		out[k] = v
	}
	for k, h := range m.hists {
		snap := HistogramSnapshot{Buckets: h.buckets, Counts: h.counts, Count: h.count, Sum: h.sum}
		out[k+"_count"] = float64(h.count)
		out[k+"_sum"] = h.sum
		out[k+"_p50"] = snap.Quantile(0.50)
		out[k+"_p99"] = snap.Quantile(0.99)
	}
	return out
}

// WriteJSON writes the snapshot as indented JSON with sorted keys.
func (m *Metrics) WriteJSON(w io.Writer) error {
	snap := m.Snapshot()
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	// Hand-roll the object to keep keys ordered (encoding/json sorts map
	// keys too, but ordering explicitly keeps the format obvious).
	if _, err := fmt.Fprintln(w, "{"); err != nil {
		return err
	}
	for i, k := range keys {
		comma := ","
		if i == len(keys)-1 {
			comma = ""
		}
		kb, _ := json.Marshal(k)
		if _, err := fmt.Fprintf(w, "  %s: %g%s\n", kb, snap[k], comma); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
