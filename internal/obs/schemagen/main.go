// Schemagen generates internal/obs/schema.go: the registry of every
// event kind the repository emits and the fields its emitters populate.
// It is a purely syntactic scan — go/parser over every non-test source
// file — so it needs no build and works offline:
//
//   - constants of type Kind (or obs.Kind) with an explicit string value
//     name the kinds, wherever they are declared;
//   - composite literals of obs.Event record the populated fields; when
//     the literal seeds a local variable, later `v.Field = ...`
//     assignments in the same function are folded in.
//
// The obsevent analyzer (internal/analysis) then checks every emit site
// against the generated registry at vet time, and obs.ValidateEvent
// checks events against it at run time.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/format"
	"go/parser"
	"go/token"
	"io/fs"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

func main() {
	root := flag.String("root", "../..", "module root to scan")
	out := flag.String("out", "schema.go", "output file (package obs)")
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("schemagen: ")

	files, err := sourceFiles(*root)
	if err != nil {
		log.Fatal(err)
	}
	fset := token.NewFileSet()
	var parsed []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, 0)
		if err != nil {
			log.Fatal(err)
		}
		parsed = append(parsed, af)
	}

	kinds := kindConstants(parsed)
	schema := map[string]map[string]bool{}
	spans := map[string]bool{}
	hists := map[string]bool{}
	for _, af := range parsed {
		scanFile(af, kinds, schema)
		scanNames(af, spans, hists)
	}
	if len(schema) == 0 {
		log.Fatal("no obs.Event emit sites found")
	}
	if err := os.WriteFile(*out, render(schema, spans, hists), 0o644); err != nil {
		log.Fatal(err)
	}
}

// sourceFiles lists every non-test, non-generated .go file under root,
// skipping testdata trees and this generator's own output.
func sourceFiles(root string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if name == "testdata" || strings.HasPrefix(name, ".") && name != "." && name != ".." {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") || name == "schema.go" {
			return nil
		}
		out = append(out, path)
		return nil
	})
	sort.Strings(out)
	return out, err
}

// kindConstants maps constant names to kind strings: every const of
// declared type Kind or obs.Kind with a string literal value.
func kindConstants(files []*ast.File) map[string]string {
	out := map[string]string{}
	for _, af := range files {
		for _, decl := range af.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || !isKindType(vs.Type) || len(vs.Names) != len(vs.Values) {
					continue
				}
				for i, name := range vs.Names {
					if s, ok := stringLit(vs.Values[i]); ok {
						out[name.Name] = s
					}
				}
			}
		}
	}
	return out
}

func isKindType(e ast.Expr) bool {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name == "Kind"
	case *ast.SelectorExpr:
		return t.Sel.Name == "Kind"
	}
	return false
}

func stringLit(e ast.Expr) (string, bool) {
	bl, ok := e.(*ast.BasicLit)
	if !ok || bl.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(bl.Value)
	return s, err == nil
}

// scanFile records every obs.Event composite literal of the file into
// schema, folding in later assignments to the literal's variable.
func scanFile(af *ast.File, kinds map[string]string, schema map[string]map[string]bool) {
	ast.Inspect(af, func(n ast.Node) bool {
		fn, ok := n.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			return true
		}
		scanFunc(fn.Body, kinds, schema)
		return true
	})
}

func scanFunc(body *ast.BlockStmt, kinds map[string]string, schema map[string]map[string]bool) {
	// varKinds maps local variable names seeded from an Event literal to
	// the literal's kind, so `e.Gap = ...` extends that kind's fields.
	varKinds := map[string]string{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			if !isEventType(n.Type) {
				return true
			}
			kind, fields := literalInfo(n, kinds)
			if kind == "" {
				return true
			}
			addFields(schema, kind, fields)
		case *ast.AssignStmt:
			if len(n.Lhs) != 1 || len(n.Rhs) != 1 {
				return true
			}
			if lit, ok := n.Rhs[0].(*ast.CompositeLit); ok && isEventType(lit.Type) {
				if id, ok := n.Lhs[0].(*ast.Ident); ok {
					if kind, _ := literalInfo(lit, kinds); kind != "" {
						varKinds[id.Name] = kind
					}
				}
				return true
			}
			sel, ok := n.Lhs[0].(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if id, ok := sel.X.(*ast.Ident); ok {
				if kind, tracked := varKinds[id.Name]; tracked {
					addFields(schema, kind, []string{sel.Sel.Name})
				}
			}
		}
		return true
	})
}

// scanNames collects the span names opened anywhere in the repository
// (StartSpan / StartSpanAttrs / Do call sites with a literal name) and
// the histogram names observed (Metrics.Observe call sites with a
// literal name). Like the Event scan this is syntactic: the method name
// and arity identify the call, the string literal identifies the name.
// pprof.Do and sync.Once.Do are skipped naturally — their argument at
// the name position is not a string literal.
func scanNames(af *ast.File, spans, hists map[string]bool) {
	ast.Inspect(af, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "StartSpan", "StartSpanAttrs", "Do":
			if len(call.Args) >= 2 {
				if s, ok := stringLit(call.Args[1]); ok {
					spans[s] = true
				}
			}
		case "Observe":
			if len(call.Args) == 2 {
				if s, ok := stringLit(call.Args[0]); ok {
					hists[s] = true
				}
			}
		}
		return true
	})
}

func isEventType(e ast.Expr) bool {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name == "Event"
	case *ast.SelectorExpr:
		return t.Sel.Name == "Event"
	}
	return false
}

// literalInfo resolves the literal's kind string and lists its other
// populated field names. A literal without a resolvable constant kind
// (dynamic or empty) contributes nothing.
func literalInfo(lit *ast.CompositeLit, kinds map[string]string) (string, []string) {
	kind := ""
	var fields []string
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		if key.Name == "Kind" {
			switch v := kv.Value.(type) {
			case *ast.Ident:
				kind = kinds[v.Name]
			case *ast.SelectorExpr:
				kind = kinds[v.Sel.Name]
			case *ast.BasicLit:
				kind, _ = stringLit(v)
			}
			continue
		}
		fields = append(fields, key.Name)
	}
	return kind, fields
}

func addFields(schema map[string]map[string]bool, kind string, fields []string) {
	if schema[kind] == nil {
		schema[kind] = map[string]bool{}
	}
	for _, f := range fields {
		schema[kind][f] = true
	}
}

func render(schema map[string]map[string]bool, spans, hists map[string]bool) []byte {
	kinds := make([]string, 0, len(schema))
	for k := range schema {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)

	var buf bytes.Buffer
	buf.WriteString("// Code generated by schemagen; run go generate ./internal/obs. DO NOT EDIT.\n\n")
	buf.WriteString("package obs\n\n")
	buf.WriteString("// Schema maps every event kind emitted anywhere in the repository to\n")
	buf.WriteString("// the Event fields its emitters populate. The obsevent analyzer checks\n")
	buf.WriteString("// emit sites against it at vet time; ValidateEvent checks events\n")
	buf.WriteString("// against it at run time.\n")
	buf.WriteString("var Schema = map[string][]string{\n")
	for _, k := range kinds {
		fields := make([]string, 0, len(schema[k]))
		for f := range schema[k] {
			fields = append(fields, f)
		}
		sort.Strings(fields)
		fmt.Fprintf(&buf, "\t%q: {", k)
		for i, f := range fields {
			if i > 0 {
				buf.WriteString(", ")
			}
			fmt.Fprintf(&buf, "%q", f)
		}
		buf.WriteString("},\n")
	}
	buf.WriteString("}\n\n")

	buf.WriteString("// SpanNames is the registry of span names opened anywhere in the\n")
	buf.WriteString("// repository (StartSpan / StartSpanAttrs / Observer.Do sites with a\n")
	buf.WriteString("// literal name). The obsevent analyzer checks span-open sites against\n")
	buf.WriteString("// it at vet time.\n")
	buf.WriteString("var SpanNames = map[string]bool{\n")
	for _, s := range sortedKeys(spans) {
		fmt.Fprintf(&buf, "\t%q: true,\n", s)
	}
	buf.WriteString("}\n\n")

	buf.WriteString("// HistogramNames is the registry of histogram metric names observed\n")
	buf.WriteString("// anywhere in the repository (Metrics.Observe sites with a literal\n")
	buf.WriteString("// name). The obsevent analyzer checks Observe sites against it.\n")
	buf.WriteString("var HistogramNames = map[string]bool{\n")
	for _, s := range sortedKeys(hists) {
		fmt.Fprintf(&buf, "\t%q: true,\n", s)
	}
	buf.WriteString("}\n")
	src, err := format.Source(buf.Bytes())
	if err != nil {
		log.Fatalf("formatting generated schema: %v", err)
	}
	return src
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
