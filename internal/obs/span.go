package obs

import (
	"context"
	"runtime/pprof"
	"sync/atomic"
	"time"
)

// Span kinds. A span is a timed region of a solve, emitted as a paired
// span.start / span.end so a flat JSONL trace reconstructs into a timing
// tree (solve → step → bb → bb.worker), with lp.solve events linked to
// their enclosing span through the Event.Span field.
const (
	// KindSpanStart opens a span: Name is the span name, Span its id
	// (unique within one Observer), Parent the enclosing span's id (0 for
	// a root span). Step/Worker/Detail carry optional attributes.
	KindSpanStart Kind = "span.start"
	// KindSpanEnd closes a span; DurUS is its duration.
	KindSpanEnd Kind = "span.end"
)

// Span is one timed region of a solve. Spans form a tree: a span started
// while another span's context is active becomes its child. Spans are
// created by Observer.StartSpan (or the Do wrapper) and closed exactly
// once by End; the nil *Span is a no-op, so span calls need no guards on
// disabled observers.
type Span struct {
	o      *Observer
	id     int64
	parent int64
	name   string
	start  time.Time
	ended  atomic.Bool
}

// SpanAttrs are the optional attributes of a span.start event.
type SpanAttrs struct {
	// Step is the augmentation step the span belongs to.
	Step int
	// Worker is the 1-based branch-and-bound worker running the span.
	Worker int
	// Detail is a free-form discriminator (design name, presolve pass).
	Detail string
}

// spanKey keys the active span in a context.
type spanKey struct{}

// ContextWithSpan returns ctx carrying sp as the active span. A nil span
// returns ctx unchanged.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, sp)
}

// SpanFromContext returns the active span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// SpanID returns the id of the active span carried by ctx, or 0 when no
// span is active. Solver layers stamp it onto their leaf events (e.g.
// lp.solve) so trace analysis can attribute leaf time to the tree.
func SpanID(ctx context.Context) int64 {
	return SpanFromContext(ctx).ID()
}

// ID returns the span's id; 0 on nil.
func (sp *Span) ID() int64 {
	if sp == nil {
		return 0
	}
	return sp.id
}

// StartSpan opens a span named name as a child of the span active in
// ctx, emits its span.start event and returns ctx with the new span
// active. On a disabled observer it returns ctx unchanged and a nil span.
func (o *Observer) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return o.StartSpanAttrs(ctx, name, SpanAttrs{})
}

// StartSpanAttrs is StartSpan with attributes on the span.start event.
func (o *Observer) StartSpanAttrs(ctx context.Context, name string, a SpanAttrs) (context.Context, *Span) {
	if o == nil || o.sink == nil {
		return ctx, nil
	}
	sp := &Span{o: o, id: o.spanSeq.Add(1), name: name, start: time.Now()}
	sp.parent = SpanFromContext(ctx).ID()
	o.Emit(Event{
		Kind: KindSpanStart, Name: name, Span: sp.id, Parent: sp.parent,
		Step: a.Step, Worker: a.Worker, Detail: a.Detail,
	})
	return ContextWithSpan(ctx, sp), sp
}

// End closes the span, emitting its span.end event with the measured
// duration. End is idempotent and safe on nil, so callers may defer it
// unconditionally.
func (sp *Span) End() {
	if sp == nil || !sp.ended.CompareAndSwap(false, true) {
		return
	}
	sp.o.Emit(Event{
		Kind: KindSpanEnd, Name: sp.name, Span: sp.id, Parent: sp.parent,
		DurUS: time.Since(sp.start).Microseconds(),
	})
}

// Do runs f inside a span named name and a pprof label span=name
// (runtime/pprof.Do), so CPU profiles segment by solve phase exactly
// where traces do. On a disabled observer f runs directly: no span, no
// labels, no allocation.
func (o *Observer) Do(ctx context.Context, name string, a SpanAttrs, f func(context.Context)) {
	if o == nil || o.sink == nil {
		f(ctx)
		return
	}
	ctx, sp := o.StartSpanAttrs(ctx, name, a)
	defer sp.End()
	pprof.Do(ctx, pprof.Labels("span", name), f)
}
