package obs

import (
	"strings"
	"testing"
)

// TestSchemaCoversAllKinds pins the generated registry to the declared
// kind constants: a kind with no emit site (or an emit site the
// generator stopped seeing) fails here, prompting a go generate run.
func TestSchemaCoversAllKinds(t *testing.T) {
	kinds := []Kind{
		KindLPSolve, KindNodeOpen, KindNodeClose, KindNodePrune,
		KindIncumbent, KindProgress, KindSearchDone, KindSearchParallel,
		KindStepStart, KindStepDone, KindAdjust, KindAnnealTemp,
		KindPresolve, KindPortfolioIncumbent, KindPortfolioWin,
	}
	for _, k := range kinds {
		if !KnownKind(k) {
			t.Errorf("kind %q is not in the generated Schema", k)
		}
	}
}

func TestValidateEvent(t *testing.T) {
	if err := ValidateEvent(Event{Kind: KindProgress, Nodes: 3, Bound: 1.5}); err != nil {
		t.Errorf("valid progress event rejected: %v", err)
	}
	if err := ValidateEvent(Event{Kind: "node.opne"}); err == nil || !strings.Contains(err.Error(), "unknown event kind") {
		t.Errorf("typo'd kind not rejected: %v", err)
	}
	if err := ValidateEvent(Event{Kind: KindProgress, Temp: 4}); err == nil || !strings.Contains(err.Error(), "Temp") {
		t.Errorf("unregistered field not rejected: %v", err)
	}
}
