package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramObserve(t *testing.T) {
	var m Metrics
	m.Observe("lat", 0.5)        // first bucket (<= 1)
	m.Observe("lat", 3)          // <= 5
	m.Observe("lat", 2e7)        // overflow
	m.Observe("lat", math.NaN()) // dropped
	h, ok := m.Histograms()["lat"]
	if !ok {
		t.Fatal("histogram not created")
	}
	if h.Count != 3 {
		t.Fatalf("count = %d, want 3 (NaN dropped)", h.Count)
	}
	if h.Sum != 0.5+3+2e7 {
		t.Fatalf("sum = %v", h.Sum)
	}
	if h.Counts[0] != 1 || h.Counts[2] != 1 || h.Counts[len(h.Counts)-1] != 1 {
		t.Fatalf("bucket placement wrong: %v", h.Counts)
	}

	var nilM *Metrics
	nilM.Observe("x", 1) // no-op, no panic
	if len(nilM.Histograms()) != 0 {
		t.Fatal("nil metrics should have no histograms")
	}
}

func TestHistogramQuantile(t *testing.T) {
	var m Metrics
	for i := 0; i < 100; i++ {
		m.Observe("lat", 100) // all in the (50, 100] bucket
	}
	h := m.Histograms()["lat"]
	p50 := h.Quantile(0.5)
	if p50 < 50 || p50 > 100 {
		t.Errorf("p50 = %v, want within (50, 100]", p50)
	}
	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
	// Overflow-bucket quantile clamps to the largest finite bound.
	var over Metrics
	over.Observe("x", 9e9)
	if got := over.Histograms()["x"].Quantile(0.99); got != DefaultBuckets[len(DefaultBuckets)-1] {
		t.Errorf("overflow quantile = %v, want %v", got, DefaultBuckets[len(DefaultBuckets)-1])
	}
}

func TestSnapshotIncludesHistogramSeries(t *testing.T) {
	var m Metrics
	m.Observe("lat", 10)
	m.Observe("lat", 20)
	snap := m.Snapshot()
	if snap["lat_count"] != 2 || snap["lat_sum"] != 30 {
		t.Fatalf("snapshot missing histogram series: %v", snap)
	}
	if _, ok := snap["lat_p50"]; !ok {
		t.Fatal("snapshot missing p50")
	}
	if _, ok := snap["lat_p99"]; !ok {
		t.Fatal("snapshot missing p99")
	}
}

func TestMetricsSink(t *testing.T) {
	var m Metrics
	s := MetricsSink{M: &m}
	s.Emit(Event{Kind: KindLPSolve, DurUS: 120})
	s.Emit(Event{Kind: KindNodeClose, Depth: 7})
	s.Emit(Event{Kind: KindStepDone, DurUS: 5000})
	s.Emit(Event{Kind: KindNodeOpen}) // ignored
	hists := m.Histograms()
	if hists["lp_solve_us"].Count != 1 || hists["lp_solve_us"].Sum != 120 {
		t.Errorf("lp_solve_us: %+v", hists["lp_solve_us"])
	}
	if hists["node_depth"].Count != 1 || hists["node_depth"].Sum != 7 {
		t.Errorf("node_depth: %+v", hists["node_depth"])
	}
	if hists["step_us"].Count != 1 {
		t.Errorf("step_us: %+v", hists["step_us"])
	}
	if len(hists) != 3 {
		t.Errorf("unexpected histograms: %v", hists)
	}
}

func TestWritePrometheus(t *testing.T) {
	var m Metrics
	m.Count("jobs_done", 3)
	m.Time("solve", 1500*time.Millisecond)
	m.SetGauge("pool_workers", 4)
	m.Observe("lp_solve_us", 40)
	m.Observe("lp_solve_us", 2e8) // overflow bucket

	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE jobs_done_total counter",
		"jobs_done_total 3",
		"# TYPE solve_seconds_total counter",
		"solve_seconds_total 1.5",
		"# TYPE pool_workers gauge",
		"pool_workers 4",
		"# TYPE lp_solve_us histogram",
		`lp_solve_us_bucket{le="25"} 0`,
		`lp_solve_us_bucket{le="50"} 1`,
		`lp_solve_us_bucket{le="+Inf"} 2`,
		"lp_solve_us_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Cumulative buckets must be monotone.
	last := -1
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "lp_solve_us_bucket") {
			continue
		}
		var n int
		if _, err := fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &n); err != nil {
			t.Fatalf("unparsable bucket line %q", line)
		}
		if n < last {
			t.Fatalf("bucket counts not cumulative: %q after %d", line, last)
		}
		last = n
	}

	// Nil metrics produce an empty (valid) exposition.
	var nilM *Metrics
	buf.Reset()
	if err := nilM.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil exposition: err=%v len=%d", err, buf.Len())
	}
}

// TestWritersEmitSortedNames pins determinism: both the JSON snapshot
// and the Prometheus exposition emit names in sorted order regardless of
// insertion order, so scrapes and golden files are diffable.
func TestWritersEmitSortedNames(t *testing.T) {
	var m Metrics
	for _, name := range []string{"zeta", "alpha", "mid"} {
		m.Count(name, 1)
		m.Observe(name+"_h", 1)
	}

	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
	var jsonKeys []string
	if tok, err := dec.Token(); err != nil || tok != json.Delim('{') {
		t.Fatalf("bad JSON open: %v %v", tok, err)
	}
	for dec.More() {
		tok, err := dec.Token()
		if err != nil {
			t.Fatal(err)
		}
		if key, ok := tok.(string); ok {
			jsonKeys = append(jsonKeys, key)
		}
		var v any
		if err := dec.Decode(&v); err != nil {
			t.Fatal(err)
		}
	}
	if !sort.StringsAreSorted(jsonKeys) {
		t.Errorf("WriteJSON keys not sorted: %v", jsonKeys)
	}

	buf.Reset()
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	var promFamilies []string
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			promFamilies = append(promFamilies, strings.Fields(line)[2])
		}
	}
	if len(promFamilies) < 6 {
		t.Fatalf("expected >= 6 families, got %v", promFamilies)
	}
	if !sort.StringsAreSorted(promFamilies) {
		t.Errorf("Prometheus families not sorted: %v", promFamilies)
	}
}

func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"lp_solve_us": "lp_solve_us",
		"solve.p99":   "solve_p99",
		"9lives":      "_lives",
		"":            "_",
		"a:b":         "a:b",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestMetricsRace hammers every Metrics entry point concurrently; run
// under -race this pins the locking discipline of counters, gauges,
// histograms and both writers.
func TestMetricsRace(t *testing.T) {
	var m Metrics
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				m.Count("n", 1)
				m.Observe("lat", float64(i))
				m.GaugeAdd("g", 1)
				m.GaugeAdd("g", -1)
				if i%100 == 0 {
					m.Snapshot()
					m.Histograms()
					m.WritePrometheus(&bytes.Buffer{})
					m.WriteJSON(&bytes.Buffer{})
				}
			}
		}(g)
	}
	wg.Wait()
	if m.Counter("n") != 4000 {
		t.Fatalf("counter = %d, want 4000", m.Counter("n"))
	}
	if h := m.Histograms()["lat"]; h.Count != 4000 {
		t.Fatalf("histogram count = %d, want 4000", h.Count)
	}
}
