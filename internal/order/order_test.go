package order

import (
	"reflect"
	"sort"
	"testing"

	"afp/internal/netlist"
)

func chain(n int) *netlist.Design {
	// A chain design: m0-m1, m1-m2, ..., so linear ordering should emit a
	// contiguous walk.
	d := &netlist.Design{Modules: make([]netlist.Module, n)}
	for i := range d.Modules {
		d.Modules[i] = netlist.Module{Name: string(rune('a' + i)), Kind: netlist.Rigid, W: 1, H: 1}
	}
	for i := 0; i+1 < n; i++ {
		d.Nets = append(d.Nets, netlist.Net{Name: "n", Modules: []int{i, i + 1}, Weight: 1})
	}
	return d
}

func isPermutation(order []int, n int) bool {
	if len(order) != n {
		return false
	}
	s := append([]int(nil), order...)
	sort.Ints(s)
	for i, v := range s {
		if v != i {
			return false
		}
	}
	return true
}

func TestLinearIsPermutation(t *testing.T) {
	d := netlist.AMI33()
	ord := Linear(d)
	if !isPermutation(ord, len(d.Modules)) {
		t.Fatalf("not a permutation: %v", ord)
	}
}

func TestLinearChainIsContiguous(t *testing.T) {
	d := chain(7)
	ord := Linear(d)
	if !isPermutation(ord, 7) {
		t.Fatalf("not a permutation: %v", ord)
	}
	// Every prefix of the ordering must induce a connected subchain: the
	// newly added module is adjacent to the placed interval.
	lo, hi := ord[0], ord[0]
	for _, m := range ord[1:] {
		if m != lo-1 && m != hi+1 {
			t.Fatalf("module %d not adjacent to placed interval [%d,%d] in %v", m, lo, hi, ord)
		}
		if m < lo {
			lo = m
		}
		if m > hi {
			hi = m
		}
	}
}

func TestLinearDeterministic(t *testing.T) {
	d := netlist.AMI33()
	if !reflect.DeepEqual(Linear(d), Linear(d)) {
		t.Fatal("Linear not deterministic")
	}
}

func TestLinearEmptyAndSingle(t *testing.T) {
	if got := Linear(&netlist.Design{}); got != nil {
		t.Fatalf("empty design order = %v", got)
	}
	d := &netlist.Design{Modules: []netlist.Module{{Name: "a", Kind: netlist.Rigid, W: 1, H: 1}}}
	if got := Linear(d); len(got) != 1 || got[0] != 0 {
		t.Fatalf("single module order = %v", got)
	}
}

func TestLinearNoNets(t *testing.T) {
	d := &netlist.Design{Modules: make([]netlist.Module, 5)}
	ord := Linear(d)
	if !isPermutation(ord, 5) {
		t.Fatalf("not a permutation: %v", ord)
	}
}

func TestRandomPermutation(t *testing.T) {
	d := netlist.AMI33()
	o1 := Random(d, 1)
	o2 := Random(d, 1)
	o3 := Random(d, 2)
	if !isPermutation(o1, 33) {
		t.Fatalf("not a permutation: %v", o1)
	}
	if !reflect.DeepEqual(o1, o2) {
		t.Fatal("Random not deterministic for equal seeds")
	}
	if reflect.DeepEqual(o1, o3) {
		t.Fatal("Random identical across seeds")
	}
}

// Linear ordering should beat random ordering on the metric it optimizes:
// the total connectivity "cut" between each prefix and its complement,
// summed over prefixes (smaller is better for successive augmentation).
func TestLinearBeatsRandomOnPrefixCut(t *testing.T) {
	d := netlist.AMI33()
	c := d.Connectivity()
	cutSum := func(ord []int) float64 {
		n := len(ord)
		inPrefix := make([]bool, n)
		var total, cut float64
		for _, m := range ord {
			// Adding m to the prefix: edges from m to unplaced join the cut,
			// edges from m to placed leave it.
			inPrefix[m] = true
			for j := 0; j < n; j++ {
				if j == m {
					continue
				}
				if inPrefix[j] {
					cut -= c[m][j]
				} else {
					cut += c[m][j]
				}
			}
			total += cut
		}
		return total
	}
	lin := cutSum(Linear(d))
	worseCount := 0
	const trials = 10
	for s := int64(0); s < trials; s++ {
		if cutSum(Random(d, s)) <= lin {
			worseCount++
		}
	}
	if worseCount > 2 {
		t.Fatalf("linear ordering (cut %v) beaten by %d/%d random orders", lin, worseCount, trials)
	}
}

// Attractions that differ only by float noise count as a tie, so the
// documented tie-break (smaller outside connectivity, then index) decides
// the order rather than summation noise.
func TestLinearTieIgnoresFloatNoise(t *testing.T) {
	d := &netlist.Design{
		Modules: []netlist.Module{
			{Name: "s", Kind: netlist.Rigid, W: 1, H: 1},
			{Name: "b", Kind: netlist.Rigid, W: 1, H: 1},
			{Name: "a", Kind: netlist.Rigid, W: 1, H: 1},
		},
		Nets: []netlist.Net{
			{Name: "sb", Modules: []int{0, 1}, Weight: 0.3},
			// 0.1+0.2 exceeds 0.3 by one noise ulp; module 2's attraction
			// must still tie with module 1's.
			{Name: "sa1", Modules: []int{0, 2}, Weight: 0.1},
			{Name: "sa2", Modules: []int{0, 2}, Weight: 0.2},
		},
	}
	got := Linear(d)
	// Seed s, then the tie resolves by index: b before a.
	want := []int{0, 1, 2}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Linear = %v, want %v", got, want)
	}
}
