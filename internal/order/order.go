// Package order provides the module-selection orders used by successive
// augmentation (Section 4, Series 2 of the paper): a connectivity-driven
// linear ordering in the spirit of Kang's linear ordering [KAN83], and a
// seeded random ordering used as the baseline selection rule.
package order

import (
	"math/rand"

	"afp/internal/geom"
	"afp/internal/netlist"
)

// Linear computes a connectivity-based linear ordering of the design's
// modules: it seeds with the most-connected module and greedily appends
// the unplaced module with the strongest attraction to the already-placed
// set, breaking ties toward modules with smaller remaining (outside)
// connectivity and then by index for determinism. This is the "linear
// ordering based on connectivity" selection algorithm of Table 2.
func Linear(d *netlist.Design) []int {
	n := len(d.Modules)
	if n == 0 {
		return nil
	}
	c := d.Connectivity()
	total := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			total[i] += c[i][j]
		}
	}

	// Seed: the module with maximum total connectivity.
	seed := 0
	for i := 1; i < n; i++ {
		if total[i] > total[seed] {
			seed = i
		}
	}

	placed := make([]bool, n)
	attract := make([]float64, n) // connectivity to placed set
	order := make([]int, 0, n)
	place := func(i int) {
		placed[i] = true
		order = append(order, i)
		for j := 0; j < n; j++ {
			if !placed[j] {
				attract[j] += c[i][j]
			}
		}
	}
	place(seed)
	for len(order) < n {
		best := -1
		for j := 0; j < n; j++ {
			if placed[j] {
				continue
			}
			if best < 0 {
				best = j
				continue
			}
			switch {
			// Attractions equal within the geometric tolerance count as a
			// tie, so accumulated float noise cannot decide the order.
			case geom.Eq(attract[j], attract[best]):
				// Tie-break: prefer the module whose remaining outside
				// connectivity is smaller (it is "finished" sooner), then the
				// lower index.
				outJ := total[j] - attract[j]
				outB := total[best] - attract[best]
				if outJ < outB {
					best = j
				}
			case attract[j] > attract[best]:
				best = j
			}
		}
		place(best)
	}
	return order
}

// Random returns a seeded uniformly random permutation of the module
// indices — the "random" selection algorithm of Table 2.
func Random(d *netlist.Design, seed int64) []int {
	n := len(d.Modules)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
	return order
}
