package geom

import "sort"

// Skyline is the upper profile of a partial floorplan: a piecewise-constant
// function y = height(x) over [X[0], X[len(X)-1]]. X holds the breakpoints
// in strictly increasing order and H[i] is the height over the interval
// [X[i], X[i+1]); len(H) == len(X)-1.
//
// The partial floorplans produced by successive augmentation always have a
// flat bottom at y = 0 and grow only from the top (the "open side of the
// chip"), so the region below the skyline — with holes ignored, as in
// Section 3.1 of the paper — fully describes the placed area.
type Skyline struct {
	X []float64
	H []float64
}

// NewSkyline computes the skyline of a set of placed rectangles. The height
// over a point x is the maximum top edge among rectangles whose x-extent
// covers x; holes underneath overhanging modules are ignored, exactly as
// the covering-polygon construction of the paper ignores holes at the
// bottom of the polygon.
func NewSkyline(rects []Rect) Skyline {
	if len(rects) == 0 {
		return Skyline{}
	}
	// Coordinate-compress all vertical edges.
	xs := make([]float64, 0, 2*len(rects))
	for _, r := range rects {
		if r.Empty() {
			continue
		}
		xs = append(xs, r.X, r.X2())
	}
	if len(xs) == 0 {
		return Skyline{}
	}
	sort.Float64s(xs)
	xs = dedupFloats(xs)

	h := make([]float64, len(xs)-1)
	for _, r := range rects {
		if r.Empty() {
			continue
		}
		for i := 0; i+1 < len(xs); i++ {
			mid := (xs[i] + xs[i+1]) / 2
			if mid > r.X && mid < r.X2() && r.Y2() > h[i] {
				h[i] = r.Y2()
			}
		}
	}
	sl := Skyline{X: xs, H: h}
	sl.compact()
	return sl
}

// compact merges adjacent intervals with equal height.
func (s *Skyline) compact() {
	if len(s.H) == 0 {
		return
	}
	nx := s.X[:1]
	var nh []float64
	for i := range s.H {
		if len(nh) > 0 && almostEq(nh[len(nh)-1], s.H[i]) {
			nx[len(nx)-1] = s.X[i+1]
			continue
		}
		nh = append(nh, s.H[i])
		nx = append(nx, s.X[i+1])
	}
	s.X, s.H = nx, nh
}

// HeightAt returns the skyline height at x. Points outside the profile
// extent have height 0.
func (s Skyline) HeightAt(x float64) float64 {
	for i := range s.H {
		if x >= s.X[i]-Eps && x < s.X[i+1]-Eps {
			return s.H[i]
		}
	}
	return 0
}

// MaxHeight returns the maximum height of the skyline (the height of the
// partial floorplan).
func (s Skyline) MaxHeight() float64 {
	var m float64
	for _, h := range s.H {
		if h > m {
			m = h
		}
	}
	return m
}

// Area returns the area under the skyline, i.e. the area of the covering
// polygon with bottom holes filled.
func (s Skyline) Area() float64 {
	var a float64
	for i, h := range s.H {
		a += h * (s.X[i+1] - s.X[i])
	}
	return a
}

// HorizontalEdges returns the number of maximal horizontal edges of the
// covering polygon, counting the (possibly multi-segment) bottom edge(s)
// at y = 0. Theorem 1 of the paper bounds this by N+1 for N modules placed
// bottom-up without floating gaps.
func (s Skyline) HorizontalEdges() int {
	n := 0
	for _, h := range s.H {
		if h > Eps {
			n++ // one top edge per maximal constant-height run
		}
	}
	// Bottom edges: one per maximal run of positive height.
	inRun := false
	for _, h := range s.H {
		if h > Eps && !inRun {
			n++
			inRun = true
		} else if h <= Eps {
			inRun = false
		}
	}
	return n
}

// Outline returns the rectilinear outline of the region under the skyline
// as a closed polyline (first point repeated at the end), traversed
// counter-clockwise starting from the leftmost bottom corner of the first
// positive-height run. Zero-height gaps split the region; only the outline
// of the first connected component is returned, which suffices for the
// rendering of Figures 4-6 where the partial floorplan is connected.
func (s Skyline) Outline() []Point {
	// Find first positive run.
	start := -1
	for i, h := range s.H {
		if h > Eps {
			start = i
			break
		}
	}
	if start < 0 {
		return nil
	}
	end := start
	for end < len(s.H) && s.H[end] > Eps {
		end++
	}
	pts := []Point{{s.X[start], 0}}
	// Bottom edge left-to-right.
	pts = append(pts, Point{s.X[end], 0})
	// Right side and top, right-to-left.
	for i := end - 1; i >= start; i-- {
		p := pts[len(pts)-1]
		if !almostEq(p.Y, s.H[i]) {
			pts = append(pts, Point{p.X, s.H[i]})
		}
		pts = append(pts, Point{s.X[i], s.H[i]})
	}
	// Close down the left side.
	last := pts[len(pts)-1]
	if !almostEq(last.Y, 0) {
		pts = append(pts, Point{last.X, 0})
	}
	return pts
}

// Point is a 2-D point.
type Point struct {
	X, Y float64
}

func dedupFloats(xs []float64) []float64 {
	out := xs[:1]
	for _, x := range xs[1:] {
		if !almostEq(out[len(out)-1], x) {
			out = append(out, x)
		}
	}
	return out
}
