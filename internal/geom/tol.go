package geom

// This file holds the shared tolerance-aware float comparisons. The
// toleq analyzer (see DESIGN.md section 11) forbids exact float64
// ==/!= in internal packages; code compares through these helpers (or
// carries a //vet:allow toleq justification) instead.

// Eq reports whether a and b are equal within Eps, the geometric
// coincidence tolerance.
func Eq(a, b float64) bool { return Within(a, b, Eps) }

// EqTol reports whether a and b are equal within Tol, the looser
// solver-facing feasibility tolerance.
func EqTol(a, b float64) bool { return Within(a, b, Tol) }

// Within reports whether a and b differ by at most tol.
func Within(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

// Less reports whether a is less than b by more than Eps — a strict
// comparison that treats Eps-coincident values as equal.
func Less(a, b float64) bool { return a < b-Eps }

// LessEq reports whether a is less than or Eps-equal to b.
func LessEq(a, b float64) bool { return a <= b+Eps }
