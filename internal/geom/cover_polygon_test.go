package geom

import (
	"math/rand"
	"testing"
)

// randomPolygonProfile builds a randomized hole-free covering polygon
// with a flat bottom — the exact input class of Section 3.1 — as a
// contiguous row of grounded columns with random widths and heights.
// The columns double as the N "modules" of Theorems 1 and 2.
func randomPolygonProfile(rng *rand.Rand, n int) []Rect {
	cols := make([]Rect, 0, n)
	x := 0.0
	for i := 0; i < n; i++ {
		w := 1 + float64(rng.Intn(6))
		h := 1 + float64(rng.Intn(8))
		cols = append(cols, NewRect(x, 0, w, h))
		x += w
	}
	return cols
}

// skylinesEqual compares two skylines segment by segment.
func skylinesEqual(a, b Skyline) bool {
	if len(a.X) != len(b.X) || len(a.H) != len(b.H) {
		return false
	}
	for i := range a.X {
		if !almostEq(a.X[i], b.X[i]) {
			return false
		}
	}
	for i := range a.H {
		if !almostEq(a.H[i], b.H[i]) {
			return false
		}
	}
	return true
}

// TestCoverSkylineTheorems is the randomized Theorems 1-2 check on
// hole-free polygons, driven through CoveringRectanglesOfSkyline (the
// polygon entry point, as in the Figure 4 reproduction):
//
//   - Theorem 1: the polygon of N bottom-up modules has n <= N+1
//     horizontal edges;
//   - Theorem 2: the edge-cut partition uses N* <= n-1 rectangles;
//   - corollary: N* <= N, so replacing modules by covers never grows
//     the subproblem.
func TestCoverSkylineTheorems(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(14)
		cols := randomPolygonProfile(rng, n)
		sl := NewSkyline(cols)
		covers := CoveringRectanglesOfSkyline(sl)

		edges := sl.HorizontalEdges()
		if edges > n+1 {
			t.Fatalf("trial %d: Theorem 1 violated: n = %d > N+1 = %d\ncols: %v",
				trial, edges, n+1, cols)
		}
		if len(covers) > edges-1 {
			t.Fatalf("trial %d: Theorem 2 violated: N* = %d > n-1 = %d\ncols: %v\ncovers: %v",
				trial, len(covers), edges-1, cols, covers)
		}
		if len(covers) > n {
			t.Fatalf("trial %d: corollary violated: N* = %d > N = %d", trial, len(covers), n)
		}
		if err := CoverInvariants(cols, covers); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Region equality: the covers must rebuild the exact same profile,
		// not merely match in area.
		if !skylinesEqual(sl, NewSkyline(covers)) {
			t.Fatalf("trial %d: covers change the polygon:\nwant %v\ngot  %v",
				trial, sl, NewSkyline(covers))
		}
	}
}

// TestCoverSkylineMatchesRectEntryPoint pins the polygon entry point to
// the rectangle entry point: both must produce identical partitions for
// the same region.
func TestCoverSkylineMatchesRectEntryPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 100; trial++ {
		mods := randomStaircase(rng, 1+rng.Intn(10))
		fromRects := CoveringRectangles(mods)
		fromSkyline := CoveringRectanglesOfSkyline(NewSkyline(mods))
		if len(fromRects) != len(fromSkyline) {
			t.Fatalf("trial %d: %d covers from rects, %d from skyline",
				trial, len(fromRects), len(fromSkyline))
		}
		for i := range fromRects {
			if fromRects[i] != fromSkyline[i] {
				t.Fatalf("trial %d: cover %d differs: %v vs %v",
					trial, i, fromRects[i], fromSkyline[i])
			}
		}
	}
}

// TestCoverSkylinePlateau checks that equal-height neighbors merge into
// one cover: a plateau has 2 horizontal edges regardless of how many
// columns form it, and the partition must hit the n-1 bound exactly.
func TestCoverSkylinePlateau(t *testing.T) {
	cols := []Rect{
		NewRect(0, 0, 2, 4), NewRect(2, 0, 3, 4), NewRect(5, 0, 1, 4),
	}
	sl := NewSkyline(cols)
	if got := sl.HorizontalEdges(); got != 2 {
		t.Fatalf("plateau edges = %d, want 2", got)
	}
	covers := CoveringRectanglesOfSkyline(sl)
	if len(covers) != 1 || covers[0] != NewRect(0, 0, 6, 4) {
		t.Fatalf("plateau covers = %v, want one 6x4 rect", covers)
	}
}

// TestCoverSkylineStrictStaircase pins the worst case of Theorem 2: a
// strictly monotone staircase of N distinct levels has n = N+1 edges
// and needs exactly N covers after stack-merging.
func TestCoverSkylineStrictStaircase(t *testing.T) {
	const n = 6
	var cols []Rect
	for i := 0; i < n; i++ {
		cols = append(cols, NewRect(float64(i), 0, 1, float64(i+1)))
	}
	sl := NewSkyline(cols)
	if got := sl.HorizontalEdges(); got != n+1 {
		t.Fatalf("staircase edges = %d, want %d", got, n+1)
	}
	covers := CoveringRectanglesOfSkyline(sl)
	if len(covers) != n {
		t.Fatalf("staircase covers = %d, want %d: %v", len(covers), n, covers)
	}
	if err := CoverInvariants(cols, covers); err != nil {
		t.Fatal(err)
	}
}

// TestCoverSkylineZeroHeightSegments feeds a skyline that contains
// explicit zero-height gaps (a disconnected profile). The partition must
// still be valid per component; the Theorem 2 bound holds with one extra
// rectangle allowed per gap, as noted in the CoveringRectangles doc.
func TestCoverSkylineZeroHeightSegments(t *testing.T) {
	sl := Skyline{
		X: []float64{0, 2, 4, 6},
		H: []float64{3, 0, 5},
	}
	covers := CoveringRectanglesOfSkyline(sl)
	if len(covers) != 2 {
		t.Fatalf("two-component profile covers = %v, want 2 rects", covers)
	}
	if _, _, bad := AnyOverlap(covers); bad {
		t.Fatalf("covers overlap: %v", covers)
	}
	if !almostEqTol(TotalArea(covers), sl.Area(), 1e-9) {
		t.Fatalf("area %v != %v", TotalArea(covers), sl.Area())
	}
}
