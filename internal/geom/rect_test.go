package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRectAccessors(t *testing.T) {
	r := NewRect(1, 2, 3, 4)
	if r.X2() != 4 || r.Y2() != 6 {
		t.Fatalf("X2/Y2 = %v/%v, want 4/6", r.X2(), r.Y2())
	}
	if r.Area() != 12 {
		t.Fatalf("Area = %v, want 12", r.Area())
	}
	if r.CenterX() != 2.5 || r.CenterY() != 4 {
		t.Fatalf("center = (%v,%v), want (2.5,4)", r.CenterX(), r.CenterY())
	}
}

func TestRectEmpty(t *testing.T) {
	if !(Rect{}).Empty() {
		t.Fatal("zero rect should be empty")
	}
	if NewRect(0, 0, 1, 0).Empty() == false {
		t.Fatal("zero-height rect should be empty")
	}
	if NewRect(0, 0, 1, 1).Empty() {
		t.Fatal("unit rect should not be empty")
	}
}

func TestRectContains(t *testing.T) {
	r := NewRect(0, 0, 10, 5)
	cases := []struct {
		x, y float64
		want bool
	}{
		{5, 2, true},
		{0, 0, true},  // corner on boundary
		{10, 5, true}, // opposite corner
		{10.1, 5, false},
		{-1, 2, false},
		{5, 6, false},
	}
	for _, c := range cases {
		if got := r.Contains(c.x, c.y); got != c.want {
			t.Errorf("Contains(%v,%v) = %v, want %v", c.x, c.y, got, c.want)
		}
	}
}

func TestRectOverlaps(t *testing.T) {
	a := NewRect(0, 0, 4, 4)
	if !a.Overlaps(NewRect(2, 2, 4, 4)) {
		t.Error("expected overlap for intersecting rects")
	}
	if a.Overlaps(NewRect(4, 0, 4, 4)) {
		t.Error("abutting rects must not count as overlapping")
	}
	if a.Overlaps(NewRect(4, 4, 1, 1)) {
		t.Error("corner-touching rects must not count as overlapping")
	}
	if a.Overlaps(NewRect(10, 10, 1, 1)) {
		t.Error("disjoint rects must not overlap")
	}
}

func TestRectIntersect(t *testing.T) {
	a := NewRect(0, 0, 4, 4)
	got, ok := a.Intersect(NewRect(2, 1, 4, 4))
	if !ok {
		t.Fatal("expected non-empty intersection")
	}
	want := NewRect(2, 1, 2, 3)
	if got != want {
		t.Fatalf("Intersect = %v, want %v", got, want)
	}
	if _, ok := a.Intersect(NewRect(4, 0, 1, 1)); ok {
		t.Fatal("edge-touching rects must have empty intersection")
	}
}

func TestRectUnion(t *testing.T) {
	a := NewRect(0, 0, 1, 1)
	b := NewRect(3, 4, 1, 2)
	u := a.Union(b)
	want := NewRect(0, 0, 4, 6)
	if u != want {
		t.Fatalf("Union = %v, want %v", u, want)
	}
	if got := (Rect{}).Union(b); got != b {
		t.Fatalf("union with empty = %v, want %v", got, b)
	}
	if got := a.Union(Rect{}); got != a {
		t.Fatalf("union with empty = %v, want %v", got, a)
	}
}

func TestRectInflateRotateTranslate(t *testing.T) {
	r := NewRect(2, 3, 4, 5)
	in := r.Inflate(1, 2, 3, 4)
	want := NewRect(1, 0, 7, 12)
	if in != want {
		t.Fatalf("Inflate = %v, want %v", in, want)
	}
	if rot := r.Rotate90(); rot != NewRect(2, 3, 5, 4) {
		t.Fatalf("Rotate90 = %v", rot)
	}
	if tr := r.Translate(-2, -3); tr != NewRect(0, 0, 4, 5) {
		t.Fatalf("Translate = %v", tr)
	}
}

func TestBoundingBox(t *testing.T) {
	if bb := BoundingBox(nil); bb != (Rect{}) {
		t.Fatalf("empty bounding box = %v", bb)
	}
	bb := BoundingBox([]Rect{NewRect(1, 1, 2, 2), NewRect(0, 4, 1, 1), NewRect(5, 0, 1, 3)})
	if bb != NewRect(0, 0, 6, 5) {
		t.Fatalf("BoundingBox = %v", bb)
	}
}

func TestAnyOverlap(t *testing.T) {
	rs := []Rect{NewRect(0, 0, 2, 2), NewRect(2, 0, 2, 2), NewRect(1, 1, 2, 2)}
	i, j, ok := AnyOverlap(rs)
	if !ok || i != 0 || j != 2 {
		t.Fatalf("AnyOverlap = %d,%d,%v; want 0,2,true", i, j, ok)
	}
	if _, _, ok := AnyOverlap(rs[:2]); ok {
		t.Fatal("abutting rects reported as overlapping")
	}
}

func TestUnionArea(t *testing.T) {
	if a := UnionArea(nil); a != 0 {
		t.Fatalf("empty union area = %v", a)
	}
	// Two overlapping 4x4 squares offset by 2: union = 16+16-4 = 28.
	a := UnionArea([]Rect{NewRect(0, 0, 4, 4), NewRect(2, 2, 4, 4)})
	if math.Abs(a-28) > 1e-9 {
		t.Fatalf("union area = %v, want 28", a)
	}
	// Disjoint: sums.
	a = UnionArea([]Rect{NewRect(0, 0, 2, 2), NewRect(5, 5, 3, 1)})
	if math.Abs(a-7) > 1e-9 {
		t.Fatalf("disjoint union area = %v, want 7", a)
	}
	// Nested: inner disappears.
	a = UnionArea([]Rect{NewRect(0, 0, 10, 10), NewRect(2, 2, 3, 3)})
	if math.Abs(a-100) > 1e-9 {
		t.Fatalf("nested union area = %v, want 100", a)
	}
}

// Property: UnionArea between max single area and sum of areas; equals
// skyline area for grounded rectangles.
func TestUnionAreaProperties(t *testing.T) {
	f := func(seeds [5]uint8) bool {
		var rects []Rect
		for i, s := range seeds {
			rects = append(rects, NewRect(float64(s%9), 0, float64(s%5)+1, float64(s%7)+1))
			_ = i
		}
		ua := UnionArea(rects)
		var maxA, sum float64
		for _, r := range rects {
			sum += r.Area()
			if r.Area() > maxA {
				maxA = r.Area()
			}
		}
		if ua < maxA-1e-9 || ua > sum+1e-9 {
			return false
		}
		// All rects grounded at y=0: union = region under skyline.
		return math.Abs(ua-NewSkyline(rects).Area()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: union is commutative and contains both operands.
func TestUnionProperties(t *testing.T) {
	f := func(ax, ay, bx, by uint8, aw, ah, bw, bh uint8) bool {
		a := NewRect(float64(ax), float64(ay), float64(aw)+1, float64(ah)+1)
		b := NewRect(float64(bx), float64(by), float64(bw)+1, float64(bh)+1)
		u1, u2 := a.Union(b), b.Union(a)
		return u1 == u2 && u1.ContainsRect(a) && u1.ContainsRect(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: intersection area <= min area, and Overlaps agrees with
// Intersect having positive area.
func TestIntersectProperties(t *testing.T) {
	f := func(ax, ay, bx, by uint8, aw, ah, bw, bh uint8) bool {
		a := NewRect(float64(ax), float64(ay), float64(aw)+1, float64(ah)+1)
		b := NewRect(float64(bx), float64(by), float64(bw)+1, float64(bh)+1)
		in, ok := a.Intersect(b)
		if ok != a.Overlaps(b) {
			return false
		}
		if !ok {
			return true
		}
		return in.Area() <= math.Min(a.Area(), b.Area())+Eps &&
			a.ContainsRect(in) && b.ContainsRect(in)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
