// Package geom provides the geometric substrate for the analytical
// floorplanner: axis-aligned rectangles, skyline profiles of partial
// floorplans, and the covering-rectangle decomposition (horizontal
// edge-cut partitioning) described in Section 3.1 and Figure 4 of
// Sutanthavibul, Shragowitz and Rosen, DAC 1990.
package geom

import (
	"fmt"
	"math"
	"sort"
)

// Eps is the geometric comparison tolerance used throughout the package.
// Coordinates are in abstract layout units; anything closer than Eps is
// treated as coincident.
const Eps = 1e-9

// Tol is the solver-facing feasibility tolerance shared by the MILP
// builder's fit checks, the presolve pass, solution decoding and
// floorplan verification. It is deliberately looser than Eps: simplex
// solutions carry accumulated rounding on the order of 1e-7 on
// floorplanning instances, so "touching" at the solver level means
// within Tol, while Eps remains the exact-geometry coincidence
// threshold for constructions like covering rectangles.
const Tol = 1e-6

// Rect is an axis-aligned rectangle identified by its lower-left corner
// (X, Y) and its extent (W, H). The floorplanning formulation of the paper
// positions every module by its lower-left corner, so the same convention
// is used here.
type Rect struct {
	X, Y, W, H float64
}

// NewRect returns the rectangle with lower-left corner (x, y), width w and
// height h.
func NewRect(x, y, w, h float64) Rect { return Rect{X: x, Y: y, W: w, H: h} }

// X2 returns the x-coordinate of the right edge.
func (r Rect) X2() float64 { return r.X + r.W }

// Y2 returns the y-coordinate of the top edge.
func (r Rect) Y2() float64 { return r.Y + r.H }

// Area returns the area of the rectangle.
func (r Rect) Area() float64 { return r.W * r.H }

// CenterX returns the x-coordinate of the rectangle's center.
func (r Rect) CenterX() float64 { return r.X + r.W/2 }

// CenterY returns the y-coordinate of the rectangle's center.
func (r Rect) CenterY() float64 { return r.Y + r.H/2 }

// Empty reports whether the rectangle has (numerically) zero area.
func (r Rect) Empty() bool { return r.W < Eps || r.H < Eps }

// Contains reports whether the point (x, y) lies inside or on the boundary
// of the rectangle.
func (r Rect) Contains(x, y float64) bool {
	return x >= r.X-Eps && x <= r.X2()+Eps && y >= r.Y-Eps && y <= r.Y2()+Eps
}

// ContainsRect reports whether s lies entirely inside r (boundaries may
// touch).
func (r Rect) ContainsRect(s Rect) bool {
	return s.X >= r.X-Eps && s.X2() <= r.X2()+Eps &&
		s.Y >= r.Y-Eps && s.Y2() <= r.Y2()+Eps
}

// Overlaps reports whether r and s share interior area. Rectangles that
// merely touch along an edge or corner do not overlap; this matches the
// non-overlap constraints (2) of the paper, which permit abutting modules.
func (r Rect) Overlaps(s Rect) bool {
	return r.X < s.X2()-Eps && s.X < r.X2()-Eps &&
		r.Y < s.Y2()-Eps && s.Y < r.Y2()-Eps
}

// OverlapsTol reports whether r and s share interior area when edges
// closer than tol are considered touching. Verification and presolve use
// it with Tol so that solver output carrying simplex rounding noise is
// not flagged as overlapping.
func (r Rect) OverlapsTol(s Rect, tol float64) bool {
	return r.X < s.X2()-tol && s.X < r.X2()-tol &&
		r.Y < s.Y2()-tol && s.Y < r.Y2()-tol
}

// Intersect returns the intersection of r and s and whether it is
// non-empty (has positive area).
func (r Rect) Intersect(s Rect) (Rect, bool) {
	x1 := math.Max(r.X, s.X)
	y1 := math.Max(r.Y, s.Y)
	x2 := math.Min(r.X2(), s.X2())
	y2 := math.Min(r.Y2(), s.Y2())
	if x2-x1 < Eps || y2-y1 < Eps {
		return Rect{}, false
	}
	return Rect{X: x1, Y: y1, W: x2 - x1, H: y2 - y1}, true
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	x1 := math.Min(r.X, s.X)
	y1 := math.Min(r.Y, s.Y)
	x2 := math.Max(r.X2(), s.X2())
	y2 := math.Max(r.Y2(), s.Y2())
	return Rect{X: x1, Y: y1, W: x2 - x1, H: y2 - y1}
}

// Inflate returns the rectangle grown by dl, dr, db, dt on the left,
// right, bottom and top sides respectively. It is used to build the
// routing "envelopes" of Section 3.2: each side of a module is pushed out
// proportionally to the number of pins on that side.
func (r Rect) Inflate(dl, dr, db, dt float64) Rect {
	return Rect{X: r.X - dl, Y: r.Y - db, W: r.W + dl + dr, H: r.H + db + dt}
}

// Translate returns the rectangle moved by (dx, dy).
func (r Rect) Translate(dx, dy float64) Rect {
	return Rect{X: r.X + dx, Y: r.Y + dy, W: r.W, H: r.H}
}

// Rotate90 returns the rectangle with width and height exchanged, keeping
// the lower-left corner fixed. This models the 90-degree rotation of rigid
// modules permitted by constraints (4)-(5) of the paper.
func (r Rect) Rotate90() Rect {
	return Rect{X: r.X, Y: r.Y, W: r.H, H: r.W}
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%.3g,%.3g %.3gx%.3g]", r.X, r.Y, r.W, r.H)
}

// BoundingBox returns the smallest rectangle containing all rects. It
// returns the zero Rect when rects is empty.
func BoundingBox(rects []Rect) Rect {
	if len(rects) == 0 {
		return Rect{}
	}
	bb := rects[0]
	for _, r := range rects[1:] {
		bb = bb.Union(r)
	}
	return bb
}

// TotalArea returns the sum of the areas of rects. Overlapping area is
// counted multiply; the floorplanner only calls this on non-overlapping
// sets.
func TotalArea(rects []Rect) float64 {
	var s float64
	for _, r := range rects {
		s += r.Area()
	}
	return s
}

// UnionArea returns the exact area of the union of rects, counting
// overlapping regions once. It uses coordinate compression over the
// elementary grid, which is ample for the few dozen rectangles a partial
// floorplan produces.
func UnionArea(rects []Rect) float64 {
	var xs, ys []float64
	for _, r := range rects {
		if r.Empty() {
			continue
		}
		xs = append(xs, r.X, r.X2())
		ys = append(ys, r.Y, r.Y2())
	}
	if len(xs) == 0 {
		return 0
	}
	sort.Float64s(xs)
	sort.Float64s(ys)
	xs = dedupFloats(xs)
	ys = dedupFloats(ys)
	var area float64
	for i := 0; i+1 < len(xs); i++ {
		for j := 0; j+1 < len(ys); j++ {
			cx := (xs[i] + xs[i+1]) / 2
			cy := (ys[j] + ys[j+1]) / 2
			for _, r := range rects {
				if cx > r.X && cx < r.X2() && cy > r.Y && cy < r.Y2() {
					area += (xs[i+1] - xs[i]) * (ys[j+1] - ys[j])
					break
				}
			}
		}
	}
	return area
}

// AnyOverlap reports whether any pair of rectangles in rects shares
// interior area, and returns the indices of the first offending pair.
func AnyOverlap(rects []Rect) (i, j int, ok bool) {
	for a := range rects {
		for b := a + 1; b < len(rects); b++ {
			if rects[a].Overlaps(rects[b]) {
				return a, b, true
			}
		}
	}
	return 0, 0, false
}

// AnyOverlapTol is AnyOverlap with an explicit touching tolerance.
func AnyOverlapTol(rects []Rect, tol float64) (i, j int, ok bool) {
	for a := range rects {
		for b := a + 1; b < len(rects); b++ {
			if rects[a].OverlapsTol(rects[b], tol) {
				return a, b, true
			}
		}
	}
	return 0, 0, false
}

// almostEq reports whether a and b are within Eps of each other.
func almostEq(a, b float64) bool { return math.Abs(a-b) < Eps }
