package geom

import (
	"math"
	"testing"
)

func TestEqWithinEps(t *testing.T) {
	cases := []struct {
		a, b float64
		want bool
	}{
		{1, 1, true},
		{1, 1 + 1e-10, true}, // inside Eps
		{1, 1 + 1e-6, false}, // outside Eps
		{-2, -2 - 1e-10, true},
		{0, 1e-8, false},
		{math.Inf(1), math.Inf(1), false}, // Inf-Inf is NaN: Eq is for finite values
	}
	for _, c := range cases {
		if got := Eq(c.a, c.b); got != c.want {
			t.Errorf("Eq(%g, %g) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestEqTolLooserThanEq(t *testing.T) {
	a, b := 1.0, 1.0+1e-7 // between Eps (1e-9) and Tol (1e-6)
	if Eq(a, b) {
		t.Fatalf("Eq(%g, %g) should fail at Eps", a, b)
	}
	if !EqTol(a, b) {
		t.Fatalf("EqTol(%g, %g) should pass at Tol", a, b)
	}
}

func TestWithin(t *testing.T) {
	if !Within(3, 3.4, 0.5) || Within(3, 3.6, 0.5) {
		t.Fatal("Within misclassifies at a 0.5 tolerance")
	}
	if !Within(5, 5, 0) {
		t.Fatal("Within(5, 5, 0) should hold")
	}
}

func TestLessTreatsEpsAsEqual(t *testing.T) {
	if Less(1, 1+1e-10) {
		t.Fatal("Less must not separate Eps-coincident values")
	}
	if !Less(1, 1.001) {
		t.Fatal("Less(1, 1.001) should hold")
	}
	if !LessEq(1+1e-10, 1) {
		t.Fatal("LessEq must accept Eps-coincident values")
	}
	if LessEq(1.001, 1) {
		t.Fatal("LessEq(1.001, 1) should not hold")
	}
}
