package geom

import "sort"

// CoveringRectangles implements the horizontal edge-cut partitioning of
// Section 3.1 / Figure 4 of the paper: the placed modules of a partial
// floorplan are replaced by a small set of covering rectangles so that the
// next mixed-integer subproblem sees d <= N fixed obstacles instead of N
// fixed modules, keeping the number of 0-1 variables per step near a
// constant.
//
// The construction follows the paper exactly:
//
//  1. The placed modules form a hole-free covering polygon with a flat
//     bottom (holes at the bottom are ignored because new modules are
//     added only from the open, top side of the chip). This polygon is the
//     region under the Skyline of the placed rectangles.
//  2. The polygon is partitioned in the horizontal direction: the
//     procedure PartitioningPolygon sweeps the distinct horizontal edge
//     levels bottom-up and cuts one slab of rectangles per level.
//  3. Vertically stacked rectangles with identical x-extents are merged,
//     which is what makes the bound of Theorem 2 (N* <= n-1) attainable.
//
// For the staircase floorplans produced by bottom-up successive
// augmentation the corollary N* <= N holds (see the property-based tests);
// disconnected profiles with ground-level gaps may exceed the bound by the
// number of gaps, which the floorplanner never produces because every
// group is packed against the partial floorplan.
func CoveringRectangles(rects []Rect) []Rect {
	sl := NewSkyline(rects)
	return coverSkyline(sl)
}

// CoveringRectanglesOfSkyline partitions the region under an explicit
// skyline. It is exported for tests and for the Figure 4 reproduction,
// which starts from a polygon rather than from module rectangles.
func CoveringRectanglesOfSkyline(sl Skyline) []Rect {
	return coverSkyline(sl)
}

func coverSkyline(sl Skyline) []Rect {
	if len(sl.H) == 0 {
		return nil
	}
	// Distinct positive height levels, ascending: these are the y-coordinates
	// of the horizontal edge-cuts.
	levels := make([]float64, 0, len(sl.H))
	for _, h := range sl.H {
		if h > Eps {
			levels = append(levels, h)
		}
	}
	if len(levels) == 0 {
		return nil
	}
	sort.Float64s(levels)
	levels = dedupFloats(levels)

	var out []Rect
	prev := 0.0
	for _, lv := range levels {
		// Horizontal band (prev, lv]: covered where skyline height >= lv.
		// Each maximal covered x-interval contributes one rectangle.
		runStart := -1.0
		flush := func(end float64) {
			if runStart >= 0 && end-runStart > Eps {
				out = append(out, Rect{X: runStart, Y: prev, W: end - runStart, H: lv - prev})
			}
			runStart = -1
		}
		for i, h := range sl.H {
			if h >= lv-Eps {
				if runStart < 0 {
					runStart = sl.X[i]
				}
			} else {
				flush(sl.X[i])
			}
		}
		flush(sl.X[len(sl.X)-1])
		prev = lv
	}
	return mergeStacked(out)
}

// CoveringRectanglesOverlapping implements the refinement suggested at
// the end of Section 3.1: "a further reduction can be achieved if a set
// of overlapping partitions is used instead of the nonoverlapping
// partitions". Because the covering polygon has a flat bottom, every
// maximal x-interval with skyline height >= lv can be covered by one
// rectangle reaching all the way down to y = 0; rectangles of lower
// levels whose interval is contained in a taller cover become redundant
// and are dropped. The result covers exactly the same region with at most
// as many rectangles as the edge-cut partition, usually fewer.
func CoveringRectanglesOverlapping(rects []Rect) []Rect {
	sl := NewSkyline(rects)
	if len(sl.H) == 0 {
		return nil
	}
	levels := make([]float64, 0, len(sl.H))
	for _, h := range sl.H {
		if h > Eps {
			levels = append(levels, h)
		}
	}
	if len(levels) == 0 {
		return nil
	}
	sort.Float64s(levels)
	levels = dedupFloats(levels)

	var out []Rect
	for _, lv := range levels {
		runStart := -1.0
		flush := func(end float64) {
			if runStart >= 0 && end-runStart > Eps {
				out = append(out, Rect{X: runStart, Y: 0, W: end - runStart, H: lv})
			}
			runStart = -1
		}
		for i, h := range sl.H {
			if h >= lv-Eps {
				if runStart < 0 {
					runStart = sl.X[i]
				}
			} else {
				flush(sl.X[i])
			}
		}
		flush(sl.X[len(sl.X)-1])
	}
	// Drop covers dominated by a taller cover spanning the same x-range.
	var keep []Rect
	for i, r := range out {
		dominated := false
		for j, s := range out {
			if i == j {
				continue
			}
			if s.H >= r.H-Eps && s.X <= r.X+Eps && s.X2() >= r.X2()-Eps &&
				(s.H > r.H+Eps || s.W > r.W+Eps || j < i) {
				dominated = true
				break
			}
		}
		if !dominated {
			keep = append(keep, r)
		}
	}
	return keep
}

// mergeStacked merges vertically adjacent rectangles that share the same
// x-extent into single taller rectangles.
func mergeStacked(rects []Rect) []Rect {
	if len(rects) <= 1 {
		return rects
	}
	sort.Slice(rects, func(i, j int) bool {
		if !almostEq(rects[i].X, rects[j].X) {
			return rects[i].X < rects[j].X
		}
		if !almostEq(rects[i].W, rects[j].W) {
			return rects[i].W < rects[j].W
		}
		return rects[i].Y < rects[j].Y
	})
	out := rects[:0]
	for _, r := range rects {
		if len(out) > 0 {
			p := &out[len(out)-1]
			if almostEq(p.X, r.X) && almostEq(p.W, r.W) && almostEq(p.Y2(), r.Y) {
				p.H += r.H
				continue
			}
		}
		out = append(out, r)
	}
	return out
}

// CoverInvariants checks the defining properties of a covering-rectangle
// decomposition against the original placement and returns a non-nil error
// describing the first violation, or nil if all hold:
//
//   - the covering rectangles are pairwise non-overlapping;
//   - every original module is contained in the union of the covers
//     (each point of a module is inside some cover);
//   - the total covered area equals the area under the skyline.
func CoverInvariants(modules, covers []Rect) error {
	if i, j, bad := AnyOverlap(covers); bad {
		return &CoverError{Kind: "overlap", A: covers[i], B: covers[j]}
	}
	sl := NewSkyline(modules)
	want := sl.Area()
	got := TotalArea(covers)
	if !almostEqTol(want, got, 1e-6*(1+want)) {
		return &CoverError{Kind: "area", Want: want, Got: got}
	}
	for _, m := range modules {
		if m.Empty() {
			continue
		}
		// Sample the module on a grid of interior points; every point must be
		// inside some cover. Edge-cut covers are axis-aligned unions, so a
		// modest grid suffices to certify containment given the area check
		// above.
		const k = 4
		for ix := 0; ix < k; ix++ {
			for iy := 0; iy < k; iy++ {
				px := m.X + m.W*(float64(ix)+0.5)/k
				py := m.Y + m.H*(float64(iy)+0.5)/k
				if !pointCovered(px, py, covers) {
					return &CoverError{Kind: "uncovered", A: m, Px: px, Py: py}
				}
			}
		}
	}
	return nil
}

func pointCovered(x, y float64, covers []Rect) bool {
	for _, c := range covers {
		if c.Contains(x, y) {
			return true
		}
	}
	return false
}

func almostEqTol(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

// CoverError reports a violated covering invariant.
type CoverError struct {
	Kind      string
	A, B      Rect
	Px, Py    float64
	Want, Got float64
}

func (e *CoverError) Error() string {
	switch e.Kind {
	case "overlap":
		return "geom: covering rectangles overlap: " + e.A.String() + " and " + e.B.String()
	case "area":
		return "geom: covered area mismatch"
	default:
		return "geom: module " + e.A.String() + " not covered"
	}
}
