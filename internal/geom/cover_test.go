package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// figure4Modules reproduces the six-module staircase partial floorplan of
// Figure 4(a) in the paper: modules placed on the bottom line of the chip
// or on top of other modules, forming a hole-free polygon with a flat
// bottom.
func figure4Modules() []Rect {
	return []Rect{
		NewRect(0, 0, 4, 3), // m1 on the chip bottom
		NewRect(4, 0, 3, 5), // m2 on the chip bottom, taller
		NewRect(7, 0, 5, 2), // m3 on the chip bottom, short and wide
		NewRect(0, 3, 4, 4), // m4 on top of m1
		NewRect(7, 2, 3, 4), // m5 on top of m3
		NewRect(4, 5, 3, 3), // m6 on top of m2
	}
}

func TestSkylineBasic(t *testing.T) {
	sl := NewSkyline([]Rect{NewRect(0, 0, 2, 3), NewRect(2, 0, 2, 1)})
	if got := sl.HeightAt(1); got != 3 {
		t.Fatalf("HeightAt(1) = %v, want 3", got)
	}
	if got := sl.HeightAt(3); got != 1 {
		t.Fatalf("HeightAt(3) = %v, want 1", got)
	}
	if got := sl.HeightAt(10); got != 0 {
		t.Fatalf("HeightAt(10) = %v, want 0", got)
	}
	if got := sl.MaxHeight(); got != 3 {
		t.Fatalf("MaxHeight = %v, want 3", got)
	}
	if got := sl.Area(); got != 8 {
		t.Fatalf("Area = %v, want 8", got)
	}
}

func TestSkylineMergesEqualHeights(t *testing.T) {
	sl := NewSkyline([]Rect{NewRect(0, 0, 2, 2), NewRect(2, 0, 2, 2)})
	if len(sl.H) != 1 {
		t.Fatalf("expected single interval, got %d (%v)", len(sl.H), sl)
	}
	if sl.H[0] != 2 || sl.X[0] != 0 || sl.X[1] != 4 {
		t.Fatalf("unexpected skyline %v", sl)
	}
}

func TestSkylineIgnoresBottomHoles(t *testing.T) {
	// Overhanging module: hole underneath must be absorbed, per Section 3.1.
	sl := NewSkyline([]Rect{NewRect(0, 0, 2, 2), NewRect(0, 2, 4, 1)})
	if got := sl.HeightAt(3); got != 3 {
		t.Fatalf("HeightAt(3) = %v, want 3 (hole ignored)", got)
	}
	if got := sl.Area(); got != 12 {
		t.Fatalf("Area = %v, want 12 (hole filled)", got)
	}
}

func TestSkylineEmpty(t *testing.T) {
	sl := NewSkyline(nil)
	if len(sl.H) != 0 || sl.MaxHeight() != 0 || sl.Area() != 0 {
		t.Fatalf("empty skyline not empty: %v", sl)
	}
	if out := sl.Outline(); out != nil {
		t.Fatalf("empty outline = %v", out)
	}
}

func TestCoveringRectanglesFigure4(t *testing.T) {
	mods := figure4Modules()
	covers := CoveringRectangles(mods)
	// Figure 4(d) of the paper shows the six-module polygon covered by
	// strictly fewer rectangles than modules. Our staircase decomposes into
	// 4 covers; the corollary to Theorems 1-2 (N* <= N) must hold and the
	// reduction must be strict for a multi-level staircase.
	if len(covers) >= len(mods) {
		t.Fatalf("N* = %d not below N = %d", len(covers), len(mods))
	}
	if len(covers) != 4 {
		t.Errorf("expected 4 covering rectangles for this staircase, got %d: %v", len(covers), covers)
	}
	if err := CoverInvariants(mods, covers); err != nil {
		t.Fatal(err)
	}
}

func TestCoveringRectanglesSingle(t *testing.T) {
	m := []Rect{NewRect(1, 0, 3, 2)}
	covers := CoveringRectangles(m)
	if len(covers) != 1 || covers[0] != m[0] {
		t.Fatalf("cover of single module = %v", covers)
	}
}

func TestCoveringRectanglesFlat(t *testing.T) {
	// A flat row of k equal-height modules must collapse to one cover.
	m := []Rect{NewRect(0, 0, 1, 2), NewRect(1, 0, 2, 2), NewRect(3, 0, 1, 2)}
	covers := CoveringRectangles(m)
	if len(covers) != 1 {
		t.Fatalf("flat row covers = %v, want 1 rect", covers)
	}
	if covers[0] != NewRect(0, 0, 4, 2) {
		t.Fatalf("cover = %v", covers[0])
	}
}

func TestCoveringRectanglesTower(t *testing.T) {
	// A vertical stack must also collapse to one cover (mergeStacked).
	m := []Rect{NewRect(0, 0, 2, 1), NewRect(0, 1, 2, 3), NewRect(0, 4, 2, 2)}
	covers := CoveringRectangles(m)
	if len(covers) != 1 || covers[0] != NewRect(0, 0, 2, 6) {
		t.Fatalf("tower covers = %v", covers)
	}
}

func TestCoveringRectanglesEmpty(t *testing.T) {
	if c := CoveringRectangles(nil); c != nil {
		t.Fatalf("covers of empty placement = %v", c)
	}
}

func TestHorizontalEdgesTheorem1(t *testing.T) {
	// Theorem 1: n <= N+1 for bottom-up placements.
	mods := figure4Modules()
	sl := NewSkyline(mods)
	if n := sl.HorizontalEdges(); n > len(mods)+1 {
		t.Fatalf("n = %d > N+1 = %d", n, len(mods)+1)
	}
}

// randomStaircase builds a random bottom-up placement the way successive
// augmentation does: every module sits either on the chip bottom or
// directly on top of the current skyline, with no ground-level gaps.
func randomStaircase(rng *rand.Rand, n int) []Rect {
	var placed []Rect
	x := 0.0
	// First build a contiguous bottom row.
	bottom := 1 + rng.Intn(n)
	for i := 0; i < bottom; i++ {
		w := 1 + float64(rng.Intn(5))
		h := 1 + float64(rng.Intn(5))
		placed = append(placed, NewRect(x, 0, w, h))
		x += w
	}
	// Stack the remaining modules on top of random placed modules.
	for i := bottom; i < n; i++ {
		base := placed[rng.Intn(len(placed))]
		sl := NewSkyline(placed)
		y := sl.HeightAt(base.CenterX())
		w := 1 + float64(rng.Intn(int(base.W)+1))
		if w > base.W {
			w = base.W
		}
		h := 1 + float64(rng.Intn(5))
		placed = append(placed, NewRect(base.X, y, w, h))
	}
	return placed
}

// Property test for the corollary of Theorems 1-2: for bottom-up
// staircase placements, the number of covering rectangles never exceeds
// the number of modules, and the covering invariants hold.
func TestCoveringRectanglesPropertyStaircase(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(12)
		mods := randomStaircase(rng, n)
		covers := CoveringRectangles(mods)
		if len(covers) > len(mods) {
			t.Fatalf("trial %d: N* = %d > N = %d\nmods: %v\ncovers: %v",
				trial, len(covers), len(mods), mods, covers)
		}
		if err := CoverInvariants(mods, covers); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		sl := NewSkyline(mods)
		if nEdges := sl.HorizontalEdges(); len(covers) > nEdges {
			t.Fatalf("trial %d: N* = %d > n = %d violates Theorem 2 slack",
				trial, len(covers), nEdges)
		}
	}
}

func TestCoveringRectanglesOverlapping(t *testing.T) {
	mods := figure4Modules()
	overlapping := CoveringRectanglesOverlapping(mods)
	disjoint := CoveringRectangles(mods)
	if len(overlapping) > len(disjoint) {
		t.Fatalf("overlapping covers %d > disjoint %d", len(overlapping), len(disjoint))
	}
	// The union must equal the region under the skyline: same skyline.
	slMods := NewSkyline(mods)
	slCov := NewSkyline(overlapping)
	if !almostEqTol(slMods.Area(), slCov.Area(), 1e-9) {
		t.Fatalf("cover area %v != region area %v", slCov.Area(), slMods.Area())
	}
	if slMods.MaxHeight() != slCov.MaxHeight() {
		t.Fatalf("cover height %v != region height %v", slCov.MaxHeight(), slMods.MaxHeight())
	}
	// Every cover stands on the chip bottom (the flat-bottom property the
	// construction exploits).
	for _, c := range overlapping {
		if c.Y != 0 {
			t.Fatalf("overlapping cover %v not grounded", c)
		}
	}
}

func TestCoveringRectanglesOverlappingProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	for trial := 0; trial < 200; trial++ {
		mods := randomStaircase(rng, 1+rng.Intn(12))
		overlapping := CoveringRectanglesOverlapping(mods)
		disjoint := CoveringRectangles(mods)
		if len(overlapping) > len(disjoint) {
			t.Fatalf("trial %d: overlapping %d > disjoint %d", trial, len(overlapping), len(disjoint))
		}
		slMods := NewSkyline(mods)
		slCov := NewSkyline(overlapping)
		if !almostEqTol(slMods.Area(), slCov.Area(), 1e-6) {
			t.Fatalf("trial %d: areas differ: %v vs %v", trial, slCov.Area(), slMods.Area())
		}
		// Every module point must be covered.
		for _, m := range mods {
			if !pointCovered(m.CenterX(), m.CenterY(), overlapping) {
				t.Fatalf("trial %d: module %v center uncovered", trial, m)
			}
		}
	}
}

func TestCoveringRectanglesOverlappingEmpty(t *testing.T) {
	if c := CoveringRectanglesOverlapping(nil); c != nil {
		t.Fatalf("covers of empty placement = %v", c)
	}
}

// Property: covering preserves area under the skyline for arbitrary
// (possibly overlapping) rectangle sets.
func TestCoverAreaProperty(t *testing.T) {
	f := func(seeds [6]uint8) bool {
		var mods []Rect
		for i, s := range seeds {
			w := float64(s%7) + 1
			h := float64((s/7)%7) + 1
			x := float64(i) * 2
			mods = append(mods, NewRect(x, 0, w, h))
		}
		covers := CoveringRectangles(mods)
		sl := NewSkyline(mods)
		return almostEqTol(TotalArea(covers), sl.Area(), 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestOutlineClosedAndRectilinear(t *testing.T) {
	mods := figure4Modules()
	sl := NewSkyline(mods)
	pts := sl.Outline()
	if len(pts) < 4 {
		t.Fatalf("outline too short: %v", pts)
	}
	for i := 1; i < len(pts); i++ {
		dx := pts[i].X - pts[i-1].X
		dy := pts[i].Y - pts[i-1].Y
		if dx != 0 && dy != 0 {
			t.Fatalf("outline segment %d not rectilinear: %v -> %v", i, pts[i-1], pts[i])
		}
	}
	first, last := pts[0], pts[len(pts)-1]
	if first.Y != 0 || last.Y != 0 {
		t.Fatalf("outline must start and end on the chip bottom: %v ... %v", first, last)
	}
}

func TestCoverInvariantsDetectsViolations(t *testing.T) {
	mods := []Rect{NewRect(0, 0, 4, 4)}
	// Overlapping covers.
	bad := []Rect{NewRect(0, 0, 3, 4), NewRect(2, 0, 2, 4)}
	if err := CoverInvariants(mods, bad); err == nil {
		t.Fatal("expected overlap violation")
	}
	// Missing area.
	if err := CoverInvariants(mods, []Rect{NewRect(0, 0, 2, 4)}); err == nil {
		t.Fatal("expected area violation")
	}
}
