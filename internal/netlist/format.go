package netlist

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The text format is line-oriented:
//
//	# comment
//	design NAME
//	module NAME rigid W H [rot] [pins N E S W]
//	module NAME flexible AREA MIN_ASPECT MAX_ASPECT [pins N E S W]
//	net NAME [critical] [weight X] MODULE MODULE...
//
// Module references in net lines are by name and must appear after the
// modules they mention.

// Parse reads a design from r.
func Parse(r io.Reader) (*Design, error) {
	d := &Design{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "design":
			if len(fields) != 2 {
				return nil, parseErr(lineNo, "design line needs exactly one name")
			}
			d.Name = fields[1]
		case "module":
			m, err := parseModule(fields[1:])
			if err != nil {
				return nil, parseErr(lineNo, err.Error())
			}
			d.Modules = append(d.Modules, m)
		case "net":
			n, err := parseNet(fields[1:], d)
			if err != nil {
				return nil, parseErr(lineNo, err.Error())
			}
			d.Nets = append(d.Nets, n)
		default:
			return nil, parseErr(lineNo, fmt.Sprintf("unknown directive %q", fields[0]))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

func parseErr(line int, msg string) error {
	return fmt.Errorf("netlist: line %d: %s", line, msg)
}

func parseModule(f []string) (Module, error) {
	var m Module
	if len(f) < 2 {
		return m, fmt.Errorf("module line too short")
	}
	m.Name = f[0]
	rest := f[2:]
	switch f[1] {
	case "rigid":
		m.Kind = Rigid
		if len(rest) < 2 {
			return m, fmt.Errorf("rigid module needs W H")
		}
		var err error
		if m.W, err = strconv.ParseFloat(rest[0], 64); err != nil {
			return m, fmt.Errorf("bad width %q", rest[0])
		}
		if m.H, err = strconv.ParseFloat(rest[1], 64); err != nil {
			return m, fmt.Errorf("bad height %q", rest[1])
		}
		rest = rest[2:]
		if len(rest) > 0 && rest[0] == "rot" {
			m.Rotatable = true
			rest = rest[1:]
		}
	case "flexible":
		m.Kind = Flexible
		if len(rest) < 3 {
			return m, fmt.Errorf("flexible module needs AREA MIN_ASPECT MAX_ASPECT")
		}
		var err error
		if m.Area, err = strconv.ParseFloat(rest[0], 64); err != nil {
			return m, fmt.Errorf("bad area %q", rest[0])
		}
		if m.MinAspect, err = strconv.ParseFloat(rest[1], 64); err != nil {
			return m, fmt.Errorf("bad min aspect %q", rest[1])
		}
		if m.MaxAspect, err = strconv.ParseFloat(rest[2], 64); err != nil {
			return m, fmt.Errorf("bad max aspect %q", rest[2])
		}
		rest = rest[3:]
	default:
		return m, fmt.Errorf("unknown module kind %q", f[1])
	}
	if len(rest) > 0 {
		if rest[0] != "pins" || len(rest) != 5 {
			return m, fmt.Errorf("trailing fields must be: pins N E S W")
		}
		for i := 0; i < 4; i++ {
			p, err := strconv.Atoi(rest[1+i])
			if err != nil || p < 0 {
				return m, fmt.Errorf("bad pin count %q", rest[1+i])
			}
			m.Pins[i] = p
		}
	}
	return m, nil
}

func parseNet(f []string, d *Design) (Net, error) {
	var n Net
	if len(f) < 1 {
		return n, fmt.Errorf("net line too short")
	}
	n.Name = f[0]
	n.Weight = 1
	rest := f[1:]
	for len(rest) > 0 {
		switch rest[0] {
		case "critical":
			n.Critical = true
			rest = rest[1:]
		case "weight":
			if len(rest) < 2 {
				return n, fmt.Errorf("weight needs a value")
			}
			w, err := strconv.ParseFloat(rest[1], 64)
			if err != nil {
				return n, fmt.Errorf("bad weight %q", rest[1])
			}
			n.Weight = w
			rest = rest[2:]
		default:
			idx := d.ModuleIndex(rest[0])
			if idx < 0 {
				return n, fmt.Errorf("net %q references unknown module %q", n.Name, rest[0])
			}
			n.Modules = append(n.Modules, idx)
			rest = rest[1:]
		}
	}
	return n, nil
}

// Write serializes the design in the text format accepted by Parse.
func (d *Design) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if d.Name != "" {
		fmt.Fprintf(bw, "design %s\n", d.Name)
	}
	for i := range d.Modules {
		m := &d.Modules[i]
		switch m.Kind {
		case Rigid:
			fmt.Fprintf(bw, "module %s rigid %g %g", m.Name, m.W, m.H)
			if m.Rotatable {
				fmt.Fprint(bw, " rot")
			}
		case Flexible:
			fmt.Fprintf(bw, "module %s flexible %g %g %g", m.Name, m.Area, m.MinAspect, m.MaxAspect)
		}
		if m.PinTotal() > 0 {
			fmt.Fprintf(bw, " pins %d %d %d %d", m.Pins[0], m.Pins[1], m.Pins[2], m.Pins[3])
		}
		fmt.Fprintln(bw)
	}
	for _, n := range d.Nets {
		fmt.Fprintf(bw, "net %s", n.Name)
		if n.Critical {
			fmt.Fprint(bw, " critical")
		}
		if n.Weight != 1 && n.Weight != 0 {
			fmt.Fprintf(bw, " weight %g", n.Weight)
		}
		for _, mi := range n.Modules {
			fmt.Fprintf(bw, " %s", d.Modules[mi].Name)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}
