package netlist

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Bookshelf support: the GSRC/UCLA "bookshelf" floorplanning format
// (.blocks/.nets file pairs) is the de-facto interchange format for the
// MCNC and GSRC benchmark suites the paper's ami33 belongs to. Soft
// rectangular blocks map to Flexible modules, 4-corner hard rectilinear
// blocks to Rigid modules; terminals (pads) are parsed and dropped from
// nets, since this library floorplans core blocks only.

// ParseBookshelf reads a .blocks and a .nets stream and assembles a
// Design.
func ParseBookshelf(name string, blocks, nets io.Reader) (*Design, error) {
	d := &Design{Name: name}
	terminals := map[string]bool{}
	if err := parseBookshelfBlocks(blocks, d, terminals); err != nil {
		return nil, err
	}
	if nets != nil {
		if err := parseBookshelfNets(nets, d, terminals); err != nil {
			return nil, err
		}
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

func bookshelfLines(r io.Reader, visit func(lineNo int, fields []string) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if lineNo == 1 || strings.HasPrefix(line, "UCSC") || strings.HasPrefix(line, "UCLA") {
			// Format header.
			if strings.Contains(line, "blocks") || strings.Contains(line, "nets") || strings.Contains(line, "pl") {
				continue
			}
		}
		if err := visit(lineNo, strings.Fields(line)); err != nil {
			return err
		}
	}
	return sc.Err()
}

// headerCount parses "NumX : N" style lines; returns (n, true) on match.
func headerCount(fields []string, key string) (int, bool) {
	if len(fields) >= 3 && fields[0] == key && fields[1] == ":" {
		n, err := strconv.Atoi(fields[2])
		if err == nil {
			return n, true
		}
	}
	// Also accept "NumX:N" and "NumX: N".
	if len(fields) >= 1 && strings.HasPrefix(fields[0], key) {
		rest := strings.TrimPrefix(fields[0], key)
		rest = strings.TrimPrefix(rest, ":")
		if rest == "" && len(fields) >= 2 {
			rest = strings.TrimPrefix(fields[1], ":")
			if rest == "" && len(fields) >= 3 {
				rest = fields[2]
			}
		}
		if n, err := strconv.Atoi(rest); err == nil {
			return n, true
		}
	}
	return 0, false
}

func parseBookshelfBlocks(r io.Reader, d *Design, terminals map[string]bool) error {
	return bookshelfLines(r, func(lineNo int, f []string) error {
		for _, key := range []string{"NumSoftRectangularBlocks", "NumHardRectilinearBlocks", "NumTerminals"} {
			if _, ok := headerCount(f, key); ok {
				return nil
			}
		}
		if len(f) < 2 {
			return fmt.Errorf("netlist: blocks line %d: too short", lineNo)
		}
		name, kind := f[0], f[1]
		switch kind {
		case "softrectangular":
			if len(f) < 5 {
				return fmt.Errorf("netlist: blocks line %d: softrectangular needs AREA MIN MAX", lineNo)
			}
			area, err1 := strconv.ParseFloat(f[2], 64)
			minA, err2 := strconv.ParseFloat(f[3], 64)
			maxA, err3 := strconv.ParseFloat(f[4], 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return fmt.Errorf("netlist: blocks line %d: bad number", lineNo)
			}
			d.Modules = append(d.Modules, Module{
				Name: name, Kind: Flexible, Area: area, MinAspect: minA, MaxAspect: maxA,
			})
		case "hardrectilinear":
			// NAME hardrectilinear K (x1, y1) (x2, y2) ... — only rectangles
			// (K == 4) are supported.
			if len(f) < 3 {
				return fmt.Errorf("netlist: blocks line %d: hardrectilinear needs corner count", lineNo)
			}
			k, err := strconv.Atoi(f[2])
			if err != nil {
				return fmt.Errorf("netlist: blocks line %d: bad corner count %q", lineNo, f[2])
			}
			if k != 4 {
				return fmt.Errorf("netlist: blocks line %d: block %q has %d corners; only rectangles are supported", lineNo, name, k)
			}
			xs, ys, err := parseCorners(strings.Join(f[3:], " "))
			if err != nil {
				return fmt.Errorf("netlist: blocks line %d: %v", lineNo, err)
			}
			w := maxF(xs) - minF(xs)
			h := maxF(ys) - minF(ys)
			d.Modules = append(d.Modules, Module{
				Name: name, Kind: Rigid, W: w, H: h, Rotatable: true,
			})
		case "terminal":
			terminals[name] = true
		default:
			return fmt.Errorf("netlist: blocks line %d: unknown block kind %q", lineNo, kind)
		}
		return nil
	})
}

// parseCorners parses "(x, y) (x, y) ..." corner lists.
func parseCorners(s string) (xs, ys []float64, err error) {
	s = strings.NewReplacer("(", " ", ")", " ", ",", " ").Replace(s)
	f := strings.Fields(s)
	if len(f)%2 != 0 || len(f) == 0 {
		return nil, nil, fmt.Errorf("bad corner list %q", s)
	}
	for i := 0; i < len(f); i += 2 {
		x, err1 := strconv.ParseFloat(f[i], 64)
		y, err2 := strconv.ParseFloat(f[i+1], 64)
		if err1 != nil || err2 != nil {
			return nil, nil, fmt.Errorf("bad corner coordinates %q %q", f[i], f[i+1])
		}
		xs = append(xs, x)
		ys = append(ys, y)
	}
	return xs, ys, nil
}

func parseBookshelfNets(r io.Reader, d *Design, terminals map[string]bool) error {
	var current *Net
	expect := 0
	netNo := 0
	err := bookshelfLines(r, func(lineNo int, f []string) error {
		if _, ok := headerCount(f, "NumNets"); ok {
			return nil
		}
		if _, ok := headerCount(f, "NumPins"); ok {
			return nil
		}
		if n, ok := headerCount(f, "NetDegree"); ok {
			flushBookshelfNet(d, current)
			netNo++
			name := fmt.Sprintf("n%d", netNo)
			// "NetDegree : K NAME" names the net explicitly.
			if len(f) >= 4 && f[1] == ":" {
				name = f[3]
			}
			current = &Net{Name: name, Weight: 1}
			expect = n
			return nil
		}
		if current == nil {
			return fmt.Errorf("netlist: nets line %d: pin before NetDegree", lineNo)
		}
		pin := f[0]
		if terminals[pin] {
			return nil // pads are dropped; see package comment
		}
		idx := d.ModuleIndex(pin)
		if idx < 0 {
			return fmt.Errorf("netlist: nets line %d: unknown block %q", lineNo, pin)
		}
		for _, m := range current.Modules {
			if m == idx {
				return nil // repeated pin on the same block collapses
			}
		}
		current.Modules = append(current.Modules, idx)
		_ = expect
		return nil
	})
	if err != nil {
		return err
	}
	flushBookshelfNet(d, current)
	return nil
}

func flushBookshelfNet(d *Design, n *Net) {
	if n != nil && len(n.Modules) >= 2 {
		d.Nets = append(d.Nets, *n)
	}
}

// WriteBookshelf writes the design as a .blocks/.nets pair.
func (d *Design) WriteBookshelf(blocks, nets io.Writer) error {
	bw := bufio.NewWriter(blocks)
	fmt.Fprintf(bw, "UCSC blocks 1.0\n\n")
	soft, hard := 0, 0
	for i := range d.Modules {
		if d.Modules[i].Kind == Flexible {
			soft++
		} else {
			hard++
		}
	}
	fmt.Fprintf(bw, "NumSoftRectangularBlocks : %d\n", soft)
	fmt.Fprintf(bw, "NumHardRectilinearBlocks : %d\n", hard)
	fmt.Fprintf(bw, "NumTerminals : 0\n\n")
	for i := range d.Modules {
		m := &d.Modules[i]
		switch m.Kind {
		case Flexible:
			fmt.Fprintf(bw, "%s softrectangular %g %g %g\n", m.Name, m.Area, m.MinAspect, m.MaxAspect)
		default:
			fmt.Fprintf(bw, "%s hardrectilinear 4 (0, 0) (0, %g) (%g, %g) (%g, 0)\n",
				m.Name, m.H, m.W, m.H, m.W)
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}

	nw := bufio.NewWriter(nets)
	fmt.Fprintf(nw, "UCLA nets 1.0\n\n")
	pins := 0
	for _, n := range d.Nets {
		pins += len(n.Modules)
	}
	fmt.Fprintf(nw, "NumNets : %d\n", len(d.Nets))
	fmt.Fprintf(nw, "NumPins : %d\n\n", pins)
	for _, n := range d.Nets {
		fmt.Fprintf(nw, "NetDegree : %d %s\n", len(n.Modules), n.Name)
		for _, mi := range n.Modules {
			fmt.Fprintf(nw, "%s B\n", d.Modules[mi].Name)
		}
	}
	return nw.Flush()
}

func minF(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

func maxF(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
