package netlist

import (
	"fmt"
	"math"
	"math/rand"
)

// AMI33TotalArea is the total module area of the ami33 benchmark reported
// in Section 4 of the paper; the synthetic stand-in below matches it
// exactly so that the paper's chip-utilization percentages are directly
// comparable.
const AMI33TotalArea = 11520.0

// AMI33 builds a deterministic synthetic stand-in for the MCNC Physical
// Design Workshop 1988 "ami33" benchmark: 33 modules whose areas sum to
// exactly 11520, a mix of rigid (rotatable) and flexible shapes, per-side
// pin counts, and 123 locality-biased multi-pin nets of which a handful
// are timing-critical.
//
// The original MCNC file is not redistributable here; the paper's
// evaluation depends on module count, total area, shape mix and
// connectivity structure, all of which this generator reproduces (see
// DESIGN.md, substitutions table).
func AMI33() *Design {
	d := generate("ami33", 33, AMI33TotalArea, 123, 8, rand.New(rand.NewSource(19880501)))
	return d
}

// AMI49TotalArea is the total module area used by the synthetic ami49
// stand-in (49 modules at the ami33-like average block size).
const AMI49TotalArea = 17150.0

// AMI49 builds a deterministic synthetic stand-in for the larger MCNC
// benchmark ami49 (49 modules), used by the scaling extension benchmarks
// beyond the paper's own Table 1 sizes.
func AMI49() *Design {
	return generate("ami49", 49, AMI49TotalArea, 180, 10, rand.New(rand.NewSource(19880502)))
}

// Random builds a deterministic random design with n modules, mirroring
// the randomly generated 15/20/25-module instances of Table 1. Module
// areas average ~350 units (the ami33 average), keeping utilization
// figures comparable across sizes.
func Random(n int, seed int64) *Design {
	rng := rand.New(rand.NewSource(seed))
	nets := 4 * n // ami33-like net-to-module ratio
	return generate(fmt.Sprintf("rand%d", n), n, 349.0*float64(n), nets, n/4, rng)
}

func generate(name string, n int, totalArea float64, nNets, nCritical int, rng *rand.Rand) *Design {
	d := &Design{Name: name}

	// Draw raw area weights with a heavy-ish tail (real designs mix RAMs
	// with small glue blocks), then scale to the exact total.
	weights := make([]float64, n)
	var wSum float64
	for i := range weights {
		w := math.Exp(rng.NormFloat64() * 0.8) // lognormal
		weights[i] = w
		wSum += w
	}
	for i := 0; i < n; i++ {
		area := totalArea * weights[i] / wSum
		m := Module{Name: fmt.Sprintf("m%02d", i+1)}
		if i%3 == 2 {
			// Every third module is flexible with symmetric aspect bounds, the
			// "arbitrary combinations of rigid and flexible modules" the
			// abstract advertises.
			m.Kind = Flexible
			m.Area = area
			m.MinAspect = 0.5
			m.MaxAspect = 2.0
		} else {
			m.Kind = Rigid
			aspect := 0.4 + rng.Float64()*2.1 // w/h in [0.4, 2.5]
			m.W = math.Sqrt(area * aspect)
			m.H = area / m.W
			m.Rotatable = true
		}
		// Pins: 4..13 total, spread over the four sides.
		total := 4 + rng.Intn(10)
		for p := 0; p < total; p++ {
			m.Pins[rng.Intn(4)]++
		}
		d.Modules = append(d.Modules, m)
	}

	// Locality-biased nets: modules with nearby indices are more likely to
	// share nets, giving the linear-ordering heuristic something to exploit.
	for k := 0; k < nNets; k++ {
		size := 2 + rng.Intn(4) // 2..5 pins
		anchor := rng.Intn(n)
		seen := map[int]bool{anchor: true}
		mods := []int{anchor}
		for len(mods) < size {
			// Geometric-ish jump from the anchor.
			off := 1 + rng.Intn(6)
			if rng.Intn(2) == 0 {
				off = -off
			}
			cand := anchor + off
			if rng.Float64() < 0.25 {
				cand = rng.Intn(n) // occasional long-range net
			}
			if cand < 0 || cand >= n || seen[cand] {
				// Fall back to a uniform pick to guarantee progress.
				cand = rng.Intn(n)
				if seen[cand] {
					continue
				}
			}
			seen[cand] = true
			mods = append(mods, cand)
		}
		net := Net{Name: fmt.Sprintf("n%03d", k+1), Modules: mods, Weight: 1}
		if k < nCritical {
			net.Critical = true
		}
		d.Nets = append(d.Nets, net)
	}
	return d
}
