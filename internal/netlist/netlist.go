// Package netlist defines the input data model of the floorplanner:
// modules (rigid or flexible), nets with per-side pin information, and a
// small text format for reading and writing designs. It also provides
// deterministic benchmark generators standing in for the MCNC Physical
// Design Workshop 1988 data used in the paper (see AMI33 and Random).
package netlist

import (
	"fmt"
	"math"
)

// Kind distinguishes rigid modules (fixed dimensions, optionally
// rotatable by 90 degrees) from flexible modules (fixed area, variable
// aspect ratio), following Section 2.2 of the paper.
type Kind int

// Module kinds.
const (
	Rigid Kind = iota
	Flexible
)

func (k Kind) String() string {
	if k == Rigid {
		return "rigid"
	}
	return "flexible"
}

// Side identifies one side of a module for generalized-pin purposes.
// The paper's routing model (Section 3.2) places one generalized pin on
// each side of a module, weighted by the number of real pins there.
type Side int

// Module sides in storage order.
const (
	North Side = iota
	East
	South
	West
)

func (s Side) String() string { return [...]string{"north", "east", "south", "west"}[s] }

// Module is one circuit block to be placed.
type Module struct {
	Name string
	Kind Kind

	// Rigid modules: fixed dimensions and rotation permission.
	W, H      float64
	Rotatable bool

	// Flexible modules: fixed area S = w*h and aspect-ratio bounds
	// MinAspect <= w/h <= MaxAspect (the b_i and a_i of Section 2.2).
	Area      float64
	MinAspect float64
	MaxAspect float64

	// Pins holds the pin count on each side, indexed by Side.
	Pins [4]int
}

// ModuleArea returns the area of the module regardless of kind.
func (m *Module) ModuleArea() float64 {
	if m.Kind == Rigid {
		return m.W * m.H
	}
	return m.Area
}

// WidthRange returns the feasible width interval of the module. For a
// rigid module the range is degenerate (or covers both orientations when
// rotatable); for a flexible module it follows from the aspect bounds:
// w = sqrt(S * aspect).
func (m *Module) WidthRange() (wmin, wmax float64) {
	if m.Kind == Rigid {
		if m.Rotatable {
			return math.Min(m.W, m.H), math.Max(m.W, m.H)
		}
		return m.W, m.W
	}
	return math.Sqrt(m.Area * m.MinAspect), math.Sqrt(m.Area * m.MaxAspect)
}

// HeightFor returns the height of a flexible module at width w.
func (m *Module) HeightFor(w float64) float64 {
	if m.Kind == Rigid {
		return m.H
	}
	return m.Area / w
}

// PinTotal returns the module's total pin count.
func (m *Module) PinTotal() int {
	return m.Pins[North] + m.Pins[East] + m.Pins[South] + m.Pins[West]
}

// Net is a set of modules to be electrically connected. Critical nets are
// routed first by the global router, following [YOU89] as cited in
// Section 3.2 of the paper.
type Net struct {
	Name     string
	Modules  []int // indices into Design.Modules
	Weight   float64
	Critical bool
}

// Design is a complete floorplanning instance.
type Design struct {
	Name    string
	Modules []Module
	Nets    []Net
}

// TotalArea returns the sum of all module areas.
func (d *Design) TotalArea() float64 {
	var s float64
	for i := range d.Modules {
		s += d.Modules[i].ModuleArea()
	}
	return s
}

// Connectivity returns the symmetric matrix c of weighted common-net
// counts: c[i][j] is the sum over nets containing both i and j of the net
// weight (the c_ij of Section 2.2).
func (d *Design) Connectivity() [][]float64 {
	n := len(d.Modules)
	c := make([][]float64, n)
	for i := range c {
		c[i] = make([]float64, n)
	}
	for _, net := range d.Nets {
		w := net.Weight
		if w == 0 {
			w = 1
		}
		for a := 0; a < len(net.Modules); a++ {
			for b := a + 1; b < len(net.Modules); b++ {
				i, j := net.Modules[a], net.Modules[b]
				if i == j {
					continue
				}
				c[i][j] += w
				c[j][i] += w
			}
		}
	}
	return c
}

// ModuleIndex returns the index of the module with the given name, or -1.
func (d *Design) ModuleIndex(name string) int {
	for i := range d.Modules {
		if d.Modules[i].Name == name {
			return i
		}
	}
	return -1
}

// Validate checks structural consistency of the design.
func (d *Design) Validate() error {
	seen := make(map[string]bool, len(d.Modules))
	for i := range d.Modules {
		m := &d.Modules[i]
		if m.Name == "" {
			return fmt.Errorf("netlist: module %d has no name", i)
		}
		if seen[m.Name] {
			return fmt.Errorf("netlist: duplicate module name %q", m.Name)
		}
		seen[m.Name] = true
		switch m.Kind {
		case Rigid:
			if m.W <= 0 || m.H <= 0 {
				return fmt.Errorf("netlist: rigid module %q has non-positive dimensions %gx%g", m.Name, m.W, m.H)
			}
		case Flexible:
			if m.Area <= 0 {
				return fmt.Errorf("netlist: flexible module %q has non-positive area %g", m.Name, m.Area)
			}
			if m.MinAspect <= 0 || m.MaxAspect < m.MinAspect {
				return fmt.Errorf("netlist: flexible module %q has invalid aspect bounds [%g, %g]", m.Name, m.MinAspect, m.MaxAspect)
			}
		default:
			return fmt.Errorf("netlist: module %q has unknown kind %d", m.Name, m.Kind)
		}
		for s, p := range m.Pins {
			if p < 0 {
				return fmt.Errorf("netlist: module %q has negative pin count on side %v", m.Name, Side(s))
			}
		}
	}
	for i, net := range d.Nets {
		if len(net.Modules) < 2 {
			return fmt.Errorf("netlist: net %q (#%d) connects fewer than two modules", net.Name, i)
		}
		if net.Weight < 0 {
			return fmt.Errorf("netlist: net %q has negative weight", net.Name)
		}
		inNet := make(map[int]bool, len(net.Modules))
		for _, mi := range net.Modules {
			if mi < 0 || mi >= len(d.Modules) {
				return fmt.Errorf("netlist: net %q references module index %d out of range", net.Name, mi)
			}
			if inNet[mi] {
				return fmt.Errorf("netlist: net %q references module %d twice", net.Name, mi)
			}
			inNet[mi] = true
		}
	}
	return nil
}
