package netlist

import (
	"bytes"
	"strings"
	"testing"
)

const sampleBlocks = `UCSC blocks 1.0
# a comment

NumSoftRectangularBlocks : 2
NumHardRectilinearBlocks : 2
NumTerminals : 1

sb0 softrectangular 6000 0.5 2.0
sb1 softrectangular 1200 0.333 3.0
bk1 hardrectilinear 4 (0, 0) (0, 133) (336, 133) (336, 0)
bk2 hardrectilinear 4 (0, 0) (0, 10) (20, 10) (20, 0)
p1 terminal
`

const sampleNets = `UCLA nets 1.0

NumNets : 3
NumPins : 7

NetDegree : 3 busA
sb0 B
bk1 B
p1 B
NetDegree : 2
sb1 B
bk2 B
NetDegree : 2
p1 B
bk1 B
`

func TestParseBookshelf(t *testing.T) {
	d, err := ParseBookshelf("demo", strings.NewReader(sampleBlocks), strings.NewReader(sampleNets))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Modules) != 4 {
		t.Fatalf("modules = %d, want 4 (terminal dropped)", len(d.Modules))
	}
	sb0 := d.Modules[d.ModuleIndex("sb0")]
	if sb0.Kind != Flexible || sb0.Area != 6000 || sb0.MinAspect != 0.5 || sb0.MaxAspect != 2 {
		t.Fatalf("sb0 parsed wrong: %+v", sb0)
	}
	bk1 := d.Modules[d.ModuleIndex("bk1")]
	if bk1.Kind != Rigid || bk1.W != 336 || bk1.H != 133 || !bk1.Rotatable {
		t.Fatalf("bk1 parsed wrong: %+v", bk1)
	}
	// Net 1 keeps 2 core pins (terminal dropped); net 3 collapses to one
	// pin and is discarded.
	if len(d.Nets) != 2 {
		t.Fatalf("nets = %d, want 2: %+v", len(d.Nets), d.Nets)
	}
	if d.Nets[0].Name != "busA" || len(d.Nets[0].Modules) != 2 {
		t.Fatalf("busA parsed wrong: %+v", d.Nets[0])
	}
}

func TestParseBookshelfErrors(t *testing.T) {
	cases := []struct{ blocks, nets string }{
		{"b1 hardrectilinear 6 (0,0) (0,1) (1,1) (1,2) (2,2) (2,0)", ""}, // non-rectangle
		{"b1 weird 1 2", ""},                           // unknown kind
		{"b1 softrectangular 10 0.5", ""},              // short soft
		{"b1 hardrectilinear x", ""},                   // bad corner count
		{sampleBlocks, "NetDegree : 2 n\nzz B\nsb0 B"}, // unknown block in net
		{sampleBlocks, "sb0 B"},                        // pin before NetDegree
	}
	for i, c := range cases {
		nets := strings.NewReader(c.nets)
		var netsReader = nets
		_, err := ParseBookshelf("x", strings.NewReader(c.blocks), netsReader)
		if err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestBookshelfRoundTrip(t *testing.T) {
	d := AMI33()
	var blocks, nets bytes.Buffer
	if err := d.WriteBookshelf(&blocks, &nets); err != nil {
		t.Fatal(err)
	}
	d2, err := ParseBookshelf(d.Name, &blocks, &nets)
	if err != nil {
		t.Fatal(err)
	}
	if len(d2.Modules) != len(d.Modules) {
		t.Fatalf("modules %d != %d", len(d2.Modules), len(d.Modules))
	}
	if len(d2.Nets) != len(d.Nets) {
		t.Fatalf("nets %d != %d", len(d2.Nets), len(d.Nets))
	}
	// Areas survive; hard blocks may normalize orientation but keep dims.
	for i := range d.Modules {
		a, b := d.Modules[i].ModuleArea(), d2.Modules[i].ModuleArea()
		if diff := a - b; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("module %d area %v != %v", i, a, b)
		}
	}
	// Net membership survives.
	for i := range d.Nets {
		if len(d.Nets[i].Modules) != len(d2.Nets[i].Modules) {
			t.Fatalf("net %d degree %d != %d", i, len(d.Nets[i].Modules), len(d2.Nets[i].Modules))
		}
	}
}

func TestParseBookshelfBlocksOnly(t *testing.T) {
	d, err := ParseBookshelf("demo", strings.NewReader(sampleBlocks), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Modules) != 4 || len(d.Nets) != 0 {
		t.Fatalf("blocks-only parse: %d modules, %d nets", len(d.Modules), len(d.Nets))
	}
}
