package netlist

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse ensures the text parser never panics and that everything it
// accepts survives a write/parse round trip.
func FuzzParse(f *testing.F) {
	f.Add("design d\nmodule a rigid 1 2\nmodule b flexible 4 0.5 2\nnet n a b\n")
	f.Add("module a rigid 4 5 rot pins 1 2 3 4\n")
	f.Add("# comment only\n")
	f.Add("module a rigid x y\n")
	f.Add("net n a b\n")
	f.Add("design\n")
	f.Add(strings.Repeat("module m rigid 1 1\n", 3))
	f.Fuzz(func(t *testing.T, src string) {
		d, err := Parse(strings.NewReader(src))
		if err != nil {
			return // rejection is fine; panics are not
		}
		var buf bytes.Buffer
		if err := d.Write(&buf); err != nil {
			t.Fatalf("Write failed on accepted design: %v", err)
		}
		d2, err := Parse(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v\n%s", err, buf.String())
		}
		if len(d2.Modules) != len(d.Modules) || len(d2.Nets) != len(d.Nets) {
			t.Fatalf("round trip changed shape: %d/%d modules, %d/%d nets",
				len(d.Modules), len(d2.Modules), len(d.Nets), len(d2.Nets))
		}
	})
}

// FuzzParseBookshelfBlocks ensures the bookshelf blocks parser never
// panics on arbitrary input.
func FuzzParseBookshelfBlocks(f *testing.F) {
	f.Add(sampleBlocks)
	f.Add("b hardrectilinear 4 (0, 0) (0, 1) (1, 1) (1, 0)")
	f.Add("b hardrectilinear 4 (0 0")
	f.Add("b softrectangular 1 2 3")
	f.Add("NumTerminals : -1")
	f.Fuzz(func(t *testing.T, blocks string) {
		d, err := ParseBookshelf("f", strings.NewReader(blocks), nil)
		if err != nil {
			return
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("accepted invalid design: %v", err)
		}
	})
}
