package netlist

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestModuleWidthRange(t *testing.T) {
	rigid := Module{Kind: Rigid, W: 3, H: 7}
	if lo, hi := rigid.WidthRange(); lo != 3 || hi != 3 {
		t.Fatalf("non-rotatable rigid range = [%v, %v]", lo, hi)
	}
	rigid.Rotatable = true
	if lo, hi := rigid.WidthRange(); lo != 3 || hi != 7 {
		t.Fatalf("rotatable rigid range = [%v, %v]", lo, hi)
	}
	flex := Module{Kind: Flexible, Area: 100, MinAspect: 0.25, MaxAspect: 4}
	lo, hi := flex.WidthRange()
	if math.Abs(lo-5) > 1e-9 || math.Abs(hi-20) > 1e-9 {
		t.Fatalf("flexible range = [%v, %v], want [5, 20]", lo, hi)
	}
	// At every width in range, w*h must equal the area.
	for _, w := range []float64{5, 10, 20} {
		if h := flex.HeightFor(w); math.Abs(w*h-100) > 1e-9 {
			t.Fatalf("HeightFor(%v)*%v = %v, want 100", w, w, w*h)
		}
	}
}

func TestModuleAreaAndPins(t *testing.T) {
	m := Module{Kind: Rigid, W: 4, H: 5, Pins: [4]int{1, 2, 3, 4}}
	if m.ModuleArea() != 20 {
		t.Fatalf("area = %v", m.ModuleArea())
	}
	if m.PinTotal() != 10 {
		t.Fatalf("pins = %v", m.PinTotal())
	}
	f := Module{Kind: Flexible, Area: 42}
	if f.ModuleArea() != 42 {
		t.Fatalf("flexible area = %v", f.ModuleArea())
	}
}

func TestConnectivity(t *testing.T) {
	d := &Design{
		Modules: make([]Module, 4),
		Nets: []Net{
			{Name: "a", Modules: []int{0, 1, 2}, Weight: 1},
			{Name: "b", Modules: []int{0, 1}, Weight: 2},
		},
	}
	c := d.Connectivity()
	if c[0][1] != 3 || c[1][0] != 3 {
		t.Fatalf("c01 = %v, want 3", c[0][1])
	}
	if c[0][2] != 1 || c[1][2] != 1 {
		t.Fatalf("c02/c12 = %v/%v, want 1/1", c[0][2], c[1][2])
	}
	if c[0][3] != 0 {
		t.Fatalf("c03 = %v, want 0", c[0][3])
	}
	if c[0][0] != 0 {
		t.Fatalf("diagonal = %v, want 0", c[0][0])
	}
}

func TestConnectivityDefaultWeight(t *testing.T) {
	d := &Design{
		Modules: make([]Module, 2),
		Nets:    []Net{{Name: "a", Modules: []int{0, 1}}}, // weight 0 -> 1
	}
	if c := d.Connectivity(); c[0][1] != 1 {
		t.Fatalf("c01 = %v, want 1", c[0][1])
	}
}

func TestValidate(t *testing.T) {
	good := &Design{
		Modules: []Module{
			{Name: "a", Kind: Rigid, W: 1, H: 1},
			{Name: "b", Kind: Flexible, Area: 2, MinAspect: 0.5, MaxAspect: 2},
		},
		Nets: []Net{{Name: "n", Modules: []int{0, 1}}},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid design rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Design)
	}{
		{"unnamed module", func(d *Design) { d.Modules[0].Name = "" }},
		{"duplicate name", func(d *Design) { d.Modules[1].Name = "a" }},
		{"bad rigid dims", func(d *Design) { d.Modules[0].W = 0 }},
		{"bad flexible area", func(d *Design) { d.Modules[1].Area = -1 }},
		{"bad aspect", func(d *Design) { d.Modules[1].MaxAspect = 0.1 }},
		{"negative pins", func(d *Design) { d.Modules[0].Pins[0] = -1 }},
		{"short net", func(d *Design) { d.Nets[0].Modules = []int{0} }},
		{"net out of range", func(d *Design) { d.Nets[0].Modules = []int{0, 9} }},
		{"net dup module", func(d *Design) { d.Nets[0].Modules = []int{0, 0} }},
		{"negative net weight", func(d *Design) { d.Nets[0].Weight = -1 }},
	}
	for _, tc := range cases {
		d := &Design{
			Modules: append([]Module(nil), good.Modules...),
			Nets:    []Net{{Name: "n", Modules: []int{0, 1}}},
		}
		tc.mut(d)
		if err := d.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

func TestParseWriteRoundTrip(t *testing.T) {
	src := `# test design
design demo
module a rigid 4 5 rot pins 1 2 3 4
module b flexible 36 0.5 2 pins 0 1 0 1
module c rigid 2 2
net n1 critical a b
net n2 weight 2.5 b c
net n3 a b c
`
	d, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "demo" || len(d.Modules) != 3 || len(d.Nets) != 3 {
		t.Fatalf("parsed %q with %d modules, %d nets", d.Name, len(d.Modules), len(d.Nets))
	}
	if !d.Modules[0].Rotatable || d.Modules[0].Pins != [4]int{1, 2, 3, 4} {
		t.Fatalf("module a parsed wrong: %+v", d.Modules[0])
	}
	if d.Modules[1].Kind != Flexible || d.Modules[1].Area != 36 {
		t.Fatalf("module b parsed wrong: %+v", d.Modules[1])
	}
	if !d.Nets[0].Critical || d.Nets[1].Weight != 2.5 {
		t.Fatalf("net flags parsed wrong: %+v %+v", d.Nets[0], d.Nets[1])
	}

	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := Parse(&buf)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, buf.String())
	}
	if !reflect.DeepEqual(d, d2) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", d, d2)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"module a rigid",                 // missing dims
		"module a rigid x 2",             // bad width
		"module a flexible 10 0.5",       // missing aspect
		"module a squishy 1 2",           // unknown kind
		"module a rigid 1 2 pins 1 2",    // short pins
		"bogus directive",                // unknown directive
		"design",                         // missing name
		"module a rigid 1 2\nnet n a",    // one-module net (via Validate)
		"module a rigid 1 2\nnet n a zz", // unknown module in net
		"net n weight x",                 // bad weight
	}
	for _, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestAMI33(t *testing.T) {
	d := AMI33()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(d.Modules) != 33 {
		t.Fatalf("modules = %d, want 33", len(d.Modules))
	}
	if got := d.TotalArea(); math.Abs(got-AMI33TotalArea) > 1e-6 {
		t.Fatalf("total area = %v, want %v", got, AMI33TotalArea)
	}
	if len(d.Nets) != 123 {
		t.Fatalf("nets = %d, want 123", len(d.Nets))
	}
	var crit, flex int
	for _, n := range d.Nets {
		if n.Critical {
			crit++
		}
	}
	for i := range d.Modules {
		if d.Modules[i].Kind == Flexible {
			flex++
		}
	}
	if crit != 8 {
		t.Fatalf("critical nets = %d, want 8", crit)
	}
	if flex == 0 || flex == 33 {
		t.Fatalf("flexible module count = %d, want a mix", flex)
	}
	// Determinism.
	d2 := AMI33()
	if !reflect.DeepEqual(d, d2) {
		t.Fatal("AMI33 not deterministic")
	}
}

func TestAMI49(t *testing.T) {
	d := AMI49()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(d.Modules) != 49 || len(d.Nets) != 180 {
		t.Fatalf("ami49: %d modules, %d nets", len(d.Modules), len(d.Nets))
	}
	if math.Abs(d.TotalArea()-AMI49TotalArea) > 1e-6 {
		t.Fatalf("ami49 area = %v", d.TotalArea())
	}
	if !reflect.DeepEqual(d, AMI49()) {
		t.Fatal("AMI49 not deterministic")
	}
}

func TestRandomGenerator(t *testing.T) {
	for _, n := range []int{15, 20, 25} {
		d := Random(n, 7)
		if err := d.Validate(); err != nil {
			t.Fatalf("Random(%d): %v", n, err)
		}
		if len(d.Modules) != n {
			t.Fatalf("Random(%d) has %d modules", n, len(d.Modules))
		}
		if math.Abs(d.TotalArea()-349*float64(n)) > 1e-6 {
			t.Fatalf("Random(%d) area = %v", n, d.TotalArea())
		}
	}
	if !reflect.DeepEqual(Random(15, 3), Random(15, 3)) {
		t.Fatal("Random not deterministic for equal seeds")
	}
	if reflect.DeepEqual(Random(15, 3), Random(15, 4)) {
		t.Fatal("Random identical across different seeds")
	}
}

func TestKindSideStrings(t *testing.T) {
	if Rigid.String() != "rigid" || Flexible.String() != "flexible" {
		t.Fatal("Kind strings wrong")
	}
	want := []string{"north", "east", "south", "west"}
	for i, w := range want {
		if Side(i).String() != w {
			t.Fatalf("Side(%d) = %q", i, Side(i).String())
		}
	}
}
