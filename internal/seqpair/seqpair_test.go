package seqpair

import (
	"math"
	"math/rand"
	"testing"

	"afp/internal/geom"
	"afp/internal/netlist"
)

func fourSquares() *netlist.Design {
	d := &netlist.Design{Name: "four"}
	for i := 0; i < 4; i++ {
		d.Modules = append(d.Modules,
			netlist.Module{Name: string(rune('a' + i)), Kind: netlist.Rigid, W: 2, H: 2})
	}
	d.Nets = []netlist.Net{{Name: "n", Modules: []int{0, 3}, Weight: 1}}
	return d
}

func TestPlaceNeverOverlaps(t *testing.T) {
	// The sequence-pair theorem: any pair of permutations decodes to a
	// non-overlapping packing. Check it over random states.
	d := netlist.Random(10, 3)
	a := &annealer{
		d: d, cfg: Config{FlexSamples: 4}, shapes: buildShapes(d, 4),
		posP: make([]int, 10), posN: make([]int, 10),
	}
	rng := rand.New(rand.NewSource(9))
	s := a.initial(10)
	for trial := 0; trial < 200; trial++ {
		rng.Shuffle(10, func(i, j int) { s.gp[i], s.gp[j] = s.gp[j], s.gp[i] })
		rng.Shuffle(10, func(i, j int) { s.gn[i], s.gn[j] = s.gn[j], s.gn[i] })
		for m := range s.shp {
			s.shp[m] = rng.Intn(len(a.shapes[m]))
		}
		rects, W, H := a.place(s)
		if i, j, bad := geom.AnyOverlap(rects); bad {
			t.Fatalf("trial %d: modules %d/%d overlap: %v %v", trial, i, j, rects[i], rects[j])
		}
		for _, r := range rects {
			if r.X < -1e-9 || r.Y < -1e-9 || r.X2() > W+1e-9 || r.Y2() > H+1e-9 {
				t.Fatalf("trial %d: %v outside %v x %v", trial, r, W, H)
			}
		}
	}
}

func TestFloorplanFourSquares(t *testing.T) {
	d := fourSquares()
	r, err := Floorplan(d, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.ChipArea()-16) > 1e-9 {
		t.Fatalf("area = %v, want 16", r.ChipArea())
	}
	if v := r.Verify(); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
}

func TestFloorplanDeterministic(t *testing.T) {
	d := fourSquares()
	r1, _ := Floorplan(d, Config{Seed: 4})
	r2, _ := Floorplan(d, Config{Seed: 4})
	if r1.ChipArea() != r2.ChipArea() || r1.HPWL() != r2.HPWL() {
		t.Fatal("not deterministic")
	}
}

func TestFloorplanFlexibleAndRotation(t *testing.T) {
	d := &netlist.Design{
		Modules: []netlist.Module{
			{Name: "f", Kind: netlist.Flexible, Area: 12, MinAspect: 1.0 / 3, MaxAspect: 3},
			{Name: "r", Kind: netlist.Rigid, W: 6, H: 2, Rotatable: true},
			{Name: "s", Kind: netlist.Rigid, W: 2, H: 2},
		},
	}
	r, err := Floorplan(d, Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if v := r.Verify(); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
	// Area 12+12+4 = 28; a decent non-slicing packing stays below 1.35x.
	if r.ChipArea() > 28*1.35 {
		t.Fatalf("area = %v, too loose", r.ChipArea())
	}
}

func TestFloorplanEmptyAndSingle(t *testing.T) {
	r, err := Floorplan(&netlist.Design{}, Config{})
	if err != nil || len(r.Placements) != 0 {
		t.Fatalf("empty: %v %v", r, err)
	}
	d := &netlist.Design{Modules: []netlist.Module{{Name: "a", Kind: netlist.Rigid, W: 3, H: 4}}}
	r, err = Floorplan(d, Config{})
	if err != nil || r.ChipArea() != 12 {
		t.Fatalf("single: area %v, err %v", r.ChipArea(), err)
	}
}

func TestFloorplanAMI33(t *testing.T) {
	if testing.Short() {
		t.Skip("ami33 seqpair in -short mode")
	}
	d := netlist.AMI33()
	r, err := Floorplan(d, Config{Seed: 1, MovesPerTemp: 150})
	if err != nil {
		t.Fatal(err)
	}
	if v := r.Verify(); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
	util := d.TotalArea() / r.ChipArea()
	if util < 0.6 {
		t.Fatalf("utilization %.2f too low", util)
	}
	t.Logf("ami33 sequence-pair: area %.0f, util %.1f%%", r.ChipArea(), 100*util)
}

func TestLambdaPullsConnected(t *testing.T) {
	d := fourSquares()
	plain, _ := Floorplan(d, Config{Seed: 3})
	wired, _ := Floorplan(d, Config{Seed: 3, Lambda: 10})
	if wired.HPWL() > plain.HPWL()+1e-9 {
		t.Fatalf("lambda did not reduce HPWL: %v vs %v", wired.HPWL(), plain.HPWL())
	}
}
