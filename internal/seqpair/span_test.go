package seqpair

import (
	"context"
	"testing"

	"afp/internal/core"
	"afp/internal/netlist"
	"afp/internal/obs"
)

func spanDesign() *netlist.Design {
	d := &netlist.Design{Name: "span"}
	for _, name := range []string{"a", "b", "c", "d"} {
		d.Modules = append(d.Modules, netlist.Module{Name: name, Kind: netlist.Rigid, W: 3, H: 2, Rotatable: true})
	}
	return d
}

// The whole run is wrapped in a paired "seqpair" span and the cooling
// schedule emits anneal.temp events, matching the anneal backend's
// telemetry vocabulary.
func TestSeqpairSpanAndTempEvents(t *testing.T) {
	rec := &obs.Recorder{}
	if _, err := FloorplanCtx(context.Background(), spanDesign(), Config{Seed: 2, Obs: obs.New(rec)}); err != nil {
		t.Fatal(err)
	}
	var starts, ends int
	for _, e := range rec.Events() {
		if e.Name != "seqpair" {
			continue
		}
		switch e.Kind {
		case obs.KindSpanStart:
			starts++
		case obs.KindSpanEnd:
			ends++
		}
	}
	if starts != 1 || ends != 1 {
		t.Fatalf("seqpair span start/end = %d/%d, want 1/1", starts, ends)
	}
	if rec.CountKind(obs.KindAnnealTemp) == 0 {
		t.Fatal("no anneal.temp events recorded")
	}
}

// Cancellation returns the best floorplan so far with ctx.Err(),
// matching the core partial-result convention.
func TestSeqpairCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r, err := FloorplanCtx(ctx, spanDesign(), Config{Seed: 2})
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if r == nil || len(r.Placements) != 4 {
		t.Fatalf("cancelled run returned no floorplan: %+v", r)
	}
}

// Best fires on the initial state and improvements with decoded
// sequence-pair floorplans.
func TestSeqpairBestCallback(t *testing.T) {
	d := spanDesign()
	var count int
	_, err := Floorplan(d, Config{Seed: 2, Best: func(r *core.Result) {
		count++
		if len(r.Placements) != len(d.Modules) || r.Source != "seqpair" {
			t.Fatalf("Best saw %d placements, source %q", len(r.Placements), r.Source)
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if count == 0 {
		t.Fatal("Best never called")
	}
}

// FixedWidth steers general packings inside the chip width.
func TestSeqpairFixedWidthFits(t *testing.T) {
	r, err := Floorplan(spanDesign(), Config{Seed: 2, FixedWidth: 9})
	if err != nil {
		t.Fatal(err)
	}
	if r.ChipWidth > 9+1e-9 {
		t.Fatalf("fixed-width seqpair spilled: width %.4g > 9", r.ChipWidth)
	}
}
