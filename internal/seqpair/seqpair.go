// Package seqpair implements a sequence-pair floorplanner driven by
// simulated annealing (Murata, Fujiyoshi, Nakatake, Kajitani,
// "VLSI Module Placement Based on Rectangle-Packing by the Sequence-Pair",
// 1995/1996). It is a second baseline beside the Wong-Liu slicing
// annealer: like the paper's analytical method — and unlike slicing — the
// sequence-pair represents *general* packings, so it brackets the
// reproduction from the modern metaheuristic side. This post-dates the
// reproduced DAC 1990 paper and is provided as an extension (see
// DESIGN.md).
package seqpair

import (
	"context"
	"math"
	"math/rand"

	"afp/internal/core"
	"afp/internal/geom"
	"afp/internal/netlist"
	"afp/internal/obs"
)

// Config tunes the annealer.
type Config struct {
	// Seed drives all randomness.
	Seed int64
	// Lambda weighs HPWL against area in the cost.
	Lambda float64
	// FlexSamples is the number of width samples per flexible module
	// (default 6).
	FlexSamples int
	// MovesPerTemp is the number of attempted moves per temperature
	// (default 30 * n).
	MovesPerTemp int
	// Alpha is the geometric cooling rate (default 0.85).
	Alpha float64
	// FixedWidth, when positive, anneals against a fixed chip width W:
	// the cost becomes the packing height scaled by a quadratic penalty
	// in the relative width excess (h * max(w/W, 1)^2), mirroring
	// anneal.Config.FixedWidth so portfolio contestants solve the same
	// fixed-width instance.
	FixedWidth float64
	// Best, when set, is invoked with a freshly decoded floorplan every
	// time the search improves its best cost (including the initial
	// state), synchronously on the annealing goroutine.
	Best func(*core.Result)
	// Obs receives one anneal.temp event per temperature step plus a
	// "seqpair" span wrapping the whole run. Nil disables instrumentation
	// at zero cost.
	Obs *obs.Observer
}

// shape is one realizable (w, h) of a module.
type shape struct {
	w, h    float64
	rotated bool
}

// state is one sequence-pair configuration.
type state struct {
	gp, gn []int // Gamma+ and Gamma- permutations (module indices)
	shp    []int // selected shape index per module
}

type annealer struct {
	d      *netlist.Design
	cfg    Config
	rng    *rand.Rand
	shapes [][]shape
	posP   []int // position of each module in gp
	posN   []int // position of each module in gn
}

// Floorplan runs sequence-pair simulated annealing and returns the best
// packing found.
func Floorplan(d *netlist.Design, cfg Config) (*core.Result, error) {
	return FloorplanCtx(context.Background(), d, cfg)
}

// FloorplanCtx is Floorplan under a context. Cancellation stops the
// cooling schedule within a few moves and returns the best floorplan
// found so far together with ctx.Err(), matching core.FloorplanCtx's
// partial-result convention. The whole run is wrapped in a "seqpair"
// span so portfolio traces attribute time per backend.
func FloorplanCtx(ctx context.Context, d *netlist.Design, cfg Config) (res *core.Result, err error) {
	cfg.Obs.Do(ctx, "seqpair", obs.SpanAttrs{Detail: d.Name}, func(ctx context.Context) {
		res, err = floorplanCtx(ctx, d, cfg)
	})
	return res, err
}

func floorplanCtx(ctx context.Context, d *netlist.Design, cfg Config) (*core.Result, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	n := len(d.Modules)
	if n == 0 {
		return &core.Result{Design: d, Source: "seqpair"}, nil
	}
	if cfg.FlexSamples <= 0 {
		cfg.FlexSamples = 6
	}
	if cfg.MovesPerTemp <= 0 {
		cfg.MovesPerTemp = 30 * n
	}
	if cfg.Alpha <= 0 {
		cfg.Alpha = 0.85
	}
	a := &annealer{
		d:      d,
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed + 54321)),
		shapes: buildShapes(d, cfg.FlexSamples),
		posP:   make([]int, n),
		posN:   make([]int, n),
	}

	cur := a.initial(n)
	curCost := a.cost(cur)
	best := cur.clone()
	bestCost := curCost
	if cfg.Best != nil {
		cfg.Best(a.decode(best))
	}

	// Calibrate the starting temperature from the average uphill delta.
	t0 := a.calibrate(cur, curCost)
	done := ctx.Done()
	for T := t0; T > t0*1e-4; T *= cfg.Alpha {
		accepted := 0
		for mv := 0; mv < cfg.MovesPerTemp; mv++ {
			if done != nil && mv&63 == 0 {
				select {
				case <-done:
					return a.decode(best), ctx.Err()
				default:
				}
			}
			next := a.perturb(cur)
			c := a.cost(next)
			if delta := c - curCost; delta <= 0 || a.rng.Float64() < math.Exp(-delta/T) {
				cur, curCost = next, c
				accepted++
				if c < bestCost {
					bestCost = c
					best = cur.clone()
					if cfg.Best != nil {
						cfg.Best(a.decode(best))
					}
				}
			}
		}
		cfg.Obs.Emit(obs.Event{
			Kind: obs.KindAnnealTemp, Temp: T, Accepted: accepted,
			Attempted: cfg.MovesPerTemp, Obj: curCost, Bound: bestCost,
		})
		if accepted == 0 {
			break
		}
	}
	return a.decode(best), nil
}

func buildShapes(d *netlist.Design, samples int) [][]shape {
	out := make([][]shape, len(d.Modules))
	for i := range d.Modules {
		m := &d.Modules[i]
		var ss []shape
		switch m.Kind {
		case netlist.Flexible:
			wmin, wmax := m.WidthRange()
			for k := 0; k < samples; k++ {
				f := float64(k) / float64(samples-1)
				w := wmin + f*(wmax-wmin)
				ss = append(ss, shape{w: w, h: m.Area / w})
			}
		default:
			ss = append(ss, shape{w: m.W, h: m.H})
			// Rotation only yields a distinct shape when the sides differ by
			// more than the geometric tolerance.
			if m.Rotatable && !geom.Eq(m.W, m.H) {
				ss = append(ss, shape{w: m.H, h: m.W, rotated: true})
			}
		}
		out[i] = ss
	}
	return out
}

func (a *annealer) initial(n int) state {
	s := state{gp: make([]int, n), gn: make([]int, n), shp: make([]int, n)}
	for i := 0; i < n; i++ {
		s.gp[i] = i
		s.gn[i] = i
	}
	return s
}

func (s state) clone() state {
	return state{
		gp:  append([]int(nil), s.gp...),
		gn:  append([]int(nil), s.gn...),
		shp: append([]int(nil), s.shp...),
	}
}

func (a *annealer) calibrate(s state, base float64) float64 {
	var up, cnt float64
	cur, curCost := s, base
	for i := 0; i < 50; i++ {
		next := a.perturb(cur)
		c := a.cost(next)
		if d := c - curCost; d > 0 {
			up += d
			cnt++
		}
		cur, curCost = next, c
	}
	if cnt == 0 {
		return 1
	}
	return -(up / cnt) / math.Log(0.85)
}

// perturb applies one of the classic sequence-pair moves: swap two
// modules in Gamma+ only, swap in both sequences, or change one module's
// shape.
func (a *annealer) perturb(s state) state {
	next := s.clone()
	n := len(next.gp)
	if n < 2 {
		return next
	}
	switch a.rng.Intn(3) {
	case 0:
		i, j := a.rng.Intn(n), a.rng.Intn(n)
		next.gp[i], next.gp[j] = next.gp[j], next.gp[i]
	case 1:
		m1, m2 := a.rng.Intn(n), a.rng.Intn(n)
		swapIn(next.gp, m1, m2)
		swapIn(next.gn, m1, m2)
	default:
		m := a.rng.Intn(n)
		if k := len(a.shapes[m]); k > 1 {
			next.shp[m] = (next.shp[m] + 1 + a.rng.Intn(k-1)) % k
		}
	}
	return next
}

// swapIn exchanges the positions of module values m1 and m2 in perm.
func swapIn(perm []int, m1, m2 int) {
	var i1, i2 int
	for i, v := range perm {
		if v == m1 {
			i1 = i
		}
		if v == m2 {
			i2 = i
		}
	}
	perm[i1], perm[i2] = perm[i2], perm[i1]
}

// place computes the packing of a state: the classic O(n^2) longest-path
// evaluation. Module b sits right of a when a precedes b in both
// sequences; above a when a succeeds b in Gamma+ but precedes it in
// Gamma-.
func (a *annealer) place(s state) ([]geom.Rect, float64, float64) {
	n := len(s.gp)
	for i, m := range s.gp {
		a.posP[m] = i
	}
	for i, m := range s.gn {
		a.posN[m] = i
	}
	rects := make([]geom.Rect, n)
	var W, H float64
	// Processing in Gamma- order is a valid topological order for both
	// the left-of and below relations.
	for _, b := range s.gn {
		sb := a.shapes[b][s.shp[b]]
		var x, y float64
		for _, m := range s.gn[:a.posN[b]] {
			sm := a.shapes[m][s.shp[m]]
			if a.posP[m] < a.posP[b] { // m left of b
				if r := rects[m].X + sm.w; r > x {
					x = r
				}
			} else { // m below b
				if t := rects[m].Y + sm.h; t > y {
					y = t
				}
			}
		}
		rects[b] = geom.NewRect(x, y, sb.w, sb.h)
		if x+sb.w > W {
			W = x + sb.w
		}
		if y+sb.h > H {
			H = y + sb.h
		}
	}
	return rects, W, H
}

func (a *annealer) cost(s state) float64 {
	rects, W, H := a.place(s)
	c := W * H
	if fw := a.cfg.FixedWidth; fw > 0 {
		over := math.Max(W/fw, 1)
		c = H * over * over
	}
	if a.cfg.Lambda > 0 {
		c += a.cfg.Lambda * hpwl(a.d, rects)
	}
	return c
}

func hpwl(d *netlist.Design, rects []geom.Rect) float64 {
	var total float64
	for _, net := range d.Nets {
		w := net.Weight
		if w == 0 {
			w = 1
		}
		first := true
		var minX, maxX, minY, maxY float64
		for _, mi := range net.Modules {
			c := rects[mi]
			cx, cy := c.CenterX(), c.CenterY()
			if first {
				minX, maxX, minY, maxY = cx, cx, cy, cy
				first = false
				continue
			}
			minX = math.Min(minX, cx)
			maxX = math.Max(maxX, cx)
			minY = math.Min(minY, cy)
			maxY = math.Max(maxY, cy)
		}
		if !first {
			total += w * ((maxX - minX) + (maxY - minY))
		}
	}
	return total
}

func (a *annealer) decode(s state) *core.Result {
	rects, W, H := a.place(s)
	res := &core.Result{Design: a.d, ChipWidth: W, Height: H, Source: "seqpair"}
	for m, r := range rects {
		res.Placements = append(res.Placements, core.Placement{
			Index: m, Env: r, Mod: r,
			Rotated: a.shapes[m][s.shp[m]].rotated,
		})
	}
	return res
}
