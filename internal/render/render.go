// Package render draws floorplans as SVG and ASCII, reproducing the
// floorplan figures of the paper (Figure 5: the placed ami33 chip,
// Figure 6: the final floorplan with routing space).
package render

import (
	"fmt"
	"io"
	"strings"

	"afp/internal/core"
	"afp/internal/route"
)

// palette cycles fill colors for modules.
var palette = []string{
	"#8dd3c7", "#ffffb3", "#bebada", "#fb8072", "#80b1d3", "#fdb462",
	"#b3de69", "#fccde5", "#d9d9d9", "#bc80bd", "#ccebc5", "#ffed6f",
}

// SVG writes the floorplan as a standalone SVG document. Envelopes are
// drawn as dashed outlines when they differ from the module proper.
func SVG(w io.Writer, r *core.Result) error {
	return SVGWithRoutes(w, r, nil)
}

// SVGWithRoutes writes the floorplan plus, when rt is non-nil, the routed
// channel segments colored by utilization (Figure 6).
func SVGWithRoutes(w io.Writer, r *core.Result, rt *route.Result) error {
	const scale = 6.0
	W := r.ChipWidth * scale
	H := r.Height * scale
	if W <= 0 {
		W = 1
	}
	if H <= 0 {
		H = 1
	}
	// SVG y grows downward; flip so chip y=0 is at the bottom.
	fy := func(y float64) float64 { return H - y*scale }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.2f %.2f">`+"\n", W+2, H+2, W+2, H+2)
	fmt.Fprintf(&b, `<rect x="1" y="1" width="%.2f" height="%.2f" fill="white" stroke="black" stroke-width="1"/>`+"\n", W, H)

	for i, p := range r.Placements {
		color := palette[i%len(palette)]
		m := p.Mod
		fmt.Fprintf(&b, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="%s" stroke="black" stroke-width="0.5"/>`+"\n",
			1+m.X*scale, 1+fy(m.Y2()), m.W*scale, m.H*scale, color)
		if p.Env != p.Mod {
			e := p.Env
			fmt.Fprintf(&b, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="none" stroke="gray" stroke-width="0.4" stroke-dasharray="2,2"/>`+"\n",
				1+e.X*scale, 1+fy(e.Y2()), e.W*scale, e.H*scale)
		}
		name := ""
		if p.Index < len(r.Design.Modules) {
			name = r.Design.Modules[p.Index].Name
		}
		fmt.Fprintf(&b, `<text x="%.2f" y="%.2f" font-size="%.2f" text-anchor="middle" dominant-baseline="middle">%s</text>`+"\n",
			1+m.CenterX()*scale, 1+fy(m.CenterY()), min64(m.W, m.H)*scale*0.35, name)
	}

	if rt != nil {
		for _, e := range rt.Graph.Edges {
			if e.Util == 0 {
				continue
			}
			a, c := rt.Graph.Nodes[e.A], rt.Graph.Nodes[e.B]
			color := "#2b8cbe"
			width := 0.6 + 0.3*float64(e.Util)
			if e.Util > e.Cap {
				color = "#e31a1c" // overflowed channel
			}
			fmt.Fprintf(&b, `<line x1="%.2f" y1="%.2f" x2="%.2f" y2="%.2f" stroke="%s" stroke-width="%.2f" opacity="0.7"/>`+"\n",
				1+a.X*scale, 1+fy(a.Y), 1+c.X*scale, 1+fy(c.Y), color, width)
		}
	}

	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// ASCII renders the floorplan as a character grid of the given width in
// columns; each module is drawn with a letter cycling a-z A-Z.
func ASCII(r *core.Result, cols int) string {
	if cols <= 0 {
		cols = 72
	}
	if r.ChipWidth <= 0 || r.Height <= 0 || len(r.Placements) == 0 {
		return "(empty floorplan)\n"
	}
	sx := float64(cols) / r.ChipWidth
	rows := int(r.Height * sx / 2) // terminal cells are ~2x taller than wide
	if rows < 1 {
		rows = 1
	}
	sy := float64(rows) / r.Height
	grid := make([][]byte, rows)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(".", cols))
	}
	glyphs := "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
	for k, p := range r.Placements {
		g := glyphs[k%len(glyphs)]
		x1 := int(p.Mod.X * sx)
		x2 := int(p.Mod.X2() * sx)
		y1 := int(p.Mod.Y * sy)
		y2 := int(p.Mod.Y2() * sy)
		for y := y1; y < y2 && y < rows; y++ {
			for x := x1; x < x2 && x < cols; x++ {
				grid[rows-1-y][x] = g
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "chip %.1f x %.1f (area %.0f, utilization %.1f%%)\n",
		r.ChipWidth, r.Height, r.ChipArea(), 100*r.Utilization())
	for _, row := range grid {
		b.Write(row)
		b.WriteByte('\n')
	}
	return b.String()
}

func min64(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
