package render

import (
	"bytes"
	"strings"
	"testing"

	"afp/internal/core"
	"afp/internal/geom"
	"afp/internal/netlist"
	"afp/internal/route"
)

func samplePlan() *core.Result {
	d := &netlist.Design{
		Name: "two",
		Modules: []netlist.Module{
			{Name: "a", Kind: netlist.Rigid, W: 4, H: 4},
			{Name: "b", Kind: netlist.Rigid, W: 4, H: 4},
		},
		Nets: []netlist.Net{{Name: "n", Modules: []int{0, 1}}},
	}
	return &core.Result{
		Design:    d,
		ChipWidth: 10,
		Height:    4,
		Placements: []core.Placement{
			{Index: 0, Env: geom.NewRect(0, 0, 4, 4), Mod: geom.NewRect(0, 0, 4, 4)},
			{Index: 1, Env: geom.NewRect(6, 0, 4, 4), Mod: geom.NewRect(6, 0, 4, 4)},
		},
	}
}

func TestSVG(t *testing.T) {
	var buf bytes.Buffer
	if err := SVG(&buf, samplePlan()); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.HasPrefix(s, "<svg") || !strings.Contains(s, "</svg>") {
		t.Fatalf("not an SVG document:\n%s", s)
	}
	for _, name := range []string{">a</text>", ">b</text>"} {
		if !strings.Contains(s, name) {
			t.Fatalf("missing module label %q", name)
		}
	}
}

func TestSVGWithRoutes(t *testing.T) {
	fp := samplePlan()
	rt, err := route.Route(fp, route.Config{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SVGWithRoutes(&buf, fp, rt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<line") {
		t.Fatal("routed SVG contains no channel lines")
	}
}

func TestASCII(t *testing.T) {
	s := ASCII(samplePlan(), 40)
	if !strings.Contains(s, "a") || !strings.Contains(s, "b") {
		t.Fatalf("ASCII missing modules:\n%s", s)
	}
	if !strings.Contains(s, "utilization") {
		t.Fatal("ASCII missing header")
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	for _, l := range lines[1:] {
		if len(l) != 40 {
			t.Fatalf("row width %d, want 40: %q", len(l), l)
		}
	}
}

func TestASCIIEmpty(t *testing.T) {
	s := ASCII(&core.Result{Design: &netlist.Design{}}, 10)
	if !strings.Contains(s, "empty") {
		t.Fatalf("empty render = %q", s)
	}
}
