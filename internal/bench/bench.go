// Package bench contains the experiment harness that regenerates every
// table and figure of the paper's evaluation (Section 4). It is shared by
// cmd/experiments and the repository's testing.B benchmarks; see
// DESIGN.md for the experiment index and EXPERIMENTS.md for recorded
// results.
package bench

import (
	"fmt"
	"io"
	"time"

	"afp/internal/anneal"
	"afp/internal/core"
	"afp/internal/milp"
	"afp/internal/mipmodel"
	"afp/internal/netlist"
	"afp/internal/obs"
	"afp/internal/order"
	"afp/internal/route"
	"afp/internal/seqpair"
)

// metrics receives per-row timing and counter breakdowns from the table
// runs; nil (the default) disables collection. See SetMetrics.
var metrics *obs.Metrics

// SetMetrics installs a collector for per-row timings ("<table>.<row>_ms"
// keys) and counters. cmd/experiments wires this to its -metrics sidecar;
// pass nil to disable again. Not safe to call while tables are running.
func SetMetrics(m *obs.Metrics) { metrics = m }

// Mode selects the effort level of a run.
type Mode int

// Modes.
const (
	// Full uses the settings that produce the recorded EXPERIMENTS.md
	// numbers (larger node budgets).
	Full Mode = iota
	// Quick cuts node budgets for fast smoke runs and unit benchmarks.
	Quick
)

func (m Mode) milpOptions() milp.Options {
	if m == Quick {
		return milp.Options{MaxNodes: 600, TimeLimit: 2 * time.Second}
	}
	return milp.Options{MaxNodes: 15000, TimeLimit: 15 * time.Second}
}

func (m Mode) baseConfig() core.Config {
	return core.Config{
		GroupSize:        3,
		PostOptimize:     true,
		AdjustIterations: 3,
		MILP:             m.milpOptions(),
	}
}

// Table1Row is one row of Table 1: problem size versus chip area, area
// utilization and execution time.
type Table1Row struct {
	Design   string
	Modules  int
	ChipArea float64
	Util     float64 // 0..1
	Time     time.Duration
}

// Table1 reproduces Series 1: randomly generated problems with 15, 20 and
// 25 modules plus the ami33 benchmark, chip area objective; the paper's
// claim is near-linear growth of execution time with problem size.
func Table1(mode Mode) ([]Table1Row, error) {
	designs := []*netlist.Design{
		netlist.Random(15, 1501),
		netlist.Random(20, 2001),
		netlist.Random(25, 2501),
		netlist.AMI33(),
	}
	var rows []Table1Row
	for _, d := range designs {
		cfg := mode.baseConfig()
		start := time.Now()
		r, err := core.Floorplan(d, cfg)
		if err != nil {
			return nil, fmt.Errorf("table1 %s: %w", d.Name, err)
		}
		metrics.Time("table1."+d.Name, time.Since(start))
		rows = append(rows, Table1Row{
			Design:   d.Name,
			Modules:  len(d.Modules),
			ChipArea: r.ChipArea(),
			Util:     r.Utilization(),
			Time:     time.Since(start),
		})
	}
	return rows, nil
}

// FitLinear least-squares-fits time = a + b*modules over Table 1 rows and
// returns the coefficient of determination R^2 — the quantitative form of
// the paper's "execution time grows almost linearly with the problem
// size" claim.
func FitLinear(rows []Table1Row) (a, b, r2 float64) {
	n := float64(len(rows))
	if n < 2 {
		return 0, 0, 0
	}
	var sx, sy, sxx, sxy, syy float64
	for _, r := range rows {
		x := float64(r.Modules)
		y := r.Time.Seconds()
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		syy += y * y
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0, 0
	}
	b = (n*sxy - sx*sy) / den
	a = (sy - b*sx) / n
	ssTot := syy - sy*sy/n
	var ssRes float64
	for _, r := range rows {
		pred := a + b*float64(r.Modules)
		d := r.Time.Seconds() - pred
		ssRes += d * d
	}
	if ssTot <= 0 {
		return a, b, 1
	}
	return a, b, 1 - ssRes/ssTot
}

// Table2Row is one row of Table 2: objective function and module
// selection order versus chip area, utilization and wirelength on ami33
// with over-the-cell routing (no envelopes).
type Table2Row struct {
	Objective string
	Ordering  string
	ChipArea  float64
	Util      float64
	HPWL      float64
	Time      time.Duration
}

// Table2 reproduces Series 2: the ami33 benchmark under the two objective
// functions (chip area; chip area + wirelength) and the two selection
// orders (random; connectivity-based linear ordering).
func Table2(mode Mode) ([]Table2Row, error) {
	d := netlist.AMI33()
	objectives := []struct {
		name string
		obj  mipmodel.Objective
	}{
		{"area", mipmodel.AreaOnly},
		{"area+wire", mipmodel.AreaWire},
	}
	orderings := []struct {
		name string
		ord  []int
	}{
		{"random", order.Random(d, 42)},
		{"linear", order.Linear(d)},
	}
	var rows []Table2Row
	for _, ob := range objectives {
		for _, or := range orderings {
			cfg := mode.baseConfig()
			cfg.Objective = ob.obj
			cfg.WireWeight = 0.02
			cfg.Ordering = or.ord
			start := time.Now()
			r, err := core.Floorplan(d, cfg)
			if err != nil {
				return nil, fmt.Errorf("table2 %s/%s: %w", ob.name, or.name, err)
			}
			metrics.Time("table2."+ob.name+"."+or.name, time.Since(start))
			rows = append(rows, Table2Row{
				Objective: ob.name,
				Ordering:  or.name,
				ChipArea:  r.ChipArea(),
				Util:      r.Utilization(),
				HPWL:      r.HPWL(),
				Time:      time.Since(start),
			})
		}
	}
	return rows, nil
}

// Table3Row is one row of Table 3: around-the-cell routing on ami33,
// with or without envelopes, under the two routing algorithms.
type Table3Row struct {
	Envelopes  bool
	Algorithm  string
	PlacedArea float64
	FinalArea  float64 // after channel-width adjustment
	Wirelength float64 // routed wirelength
	Overflow   int
}

// Table3 reproduces Series 3: floorplan adjustment with and without
// envelopes crossed with shortest-path and weighted-shortest-path global
// routing. The paper's claim: envelopes decrease the final chip size.
func Table3(mode Mode) ([]Table3Row, error) {
	d := netlist.AMI33()
	var rows []Table3Row
	for _, env := range []bool{false, true} {
		cfg := mode.baseConfig()
		cfg.Envelopes = env
		cfg.PitchH, cfg.PitchV = 0.2, 0.2
		start := time.Now()
		fp, err := core.Floorplan(d, cfg)
		if err != nil {
			return nil, fmt.Errorf("table3 env=%v: %w", env, err)
		}
		metrics.Time(fmt.Sprintf("table3.place.env=%v", env), time.Since(start))
		for _, alg := range []route.Algorithm{route.ShortestPath, route.WeightedShortestPath} {
			start := time.Now()
			rr, err := route.Route(fp, route.Config{Algorithm: alg, PitchH: 0.2, PitchV: 0.2})
			if err != nil {
				return nil, fmt.Errorf("table3 env=%v alg=%v: %w", env, alg, err)
			}
			metrics.Time(fmt.Sprintf("table3.route.env=%v.%s", env, alg), time.Since(start))
			metrics.Count(fmt.Sprintf("table3.overflow.env=%v.%s", env, alg), int64(rr.Overflow))
			rows = append(rows, Table3Row{
				Envelopes:  env,
				Algorithm:  alg.String(),
				PlacedArea: fp.ChipArea(),
				FinalArea:  rr.FinalArea(),
				Wirelength: rr.Wirelength,
				Overflow:   rr.Overflow,
			})
		}
	}
	return rows, nil
}

// BaselineRow compares the analytical floorplanner against the Wong-Liu
// simulated-annealing slicing baseline.
type BaselineRow struct {
	Method   string
	ChipArea float64
	Util     float64
	HPWL     float64
	Time     time.Duration
}

// Baseline runs both floorplanners on ami33.
func Baseline(mode Mode) ([]BaselineRow, error) {
	d := netlist.AMI33()
	var rows []BaselineRow

	start := time.Now()
	milpRes, err := core.Floorplan(d, mode.baseConfig())
	if err != nil {
		return nil, err
	}
	metrics.Time("baseline.milp", time.Since(start))
	rows = append(rows, BaselineRow{
		Method: "milp-successive-augmentation", ChipArea: milpRes.ChipArea(),
		Util: milpRes.Utilization(), HPWL: milpRes.HPWL(), Time: time.Since(start),
	})

	if mode == Full {
		// Equal-outline-freedom comparison: let the analytical method pick
		// its best fixed width from a small sweep, as the SA baseline is
		// free to choose any outline.
		start = time.Now()
		swept, _, err := core.FloorplanBestWidth(d, mode.baseConfig(), []float64{0.85, 0.95, 1.05})
		if err != nil {
			return nil, err
		}
		rows = append(rows, BaselineRow{
			Method: "milp-width-sweep", ChipArea: swept.ChipArea(),
			Util: swept.Utilization(), HPWL: swept.HPWL(), Time: time.Since(start),
		})
	}

	moves := 500
	if mode == Quick {
		moves = 120
	}
	start = time.Now()
	saRes, err := anneal.Floorplan(d, anneal.Config{Seed: 1, MovesPerTemp: moves})
	if err != nil {
		return nil, err
	}
	metrics.Time("baseline.sa", time.Since(start))
	rows = append(rows, BaselineRow{
		Method: "wong-liu-slicing-sa", ChipArea: saRes.ChipArea(),
		Util: d.TotalArea() / saRes.ChipArea(), HPWL: saRes.HPWL(), Time: time.Since(start),
	})

	start = time.Now()
	spRes, err := seqpair.Floorplan(d, seqpair.Config{Seed: 1, MovesPerTemp: moves})
	if err != nil {
		return nil, err
	}
	metrics.Time("baseline.seqpair", time.Since(start))
	rows = append(rows, BaselineRow{
		Method: "sequence-pair-sa", ChipArea: spRes.ChipArea(),
		Util: d.TotalArea() / spRes.ChipArea(), HPWL: spRes.HPWL(), Time: time.Since(start),
	})
	return rows, nil
}

// WriteTable1 formats Table 1 like the paper's layout.
func WriteTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintf(w, "Table 1 — problem size vs execution time (objective: chip area)\n")
	fmt.Fprintf(w, "%-8s %8s %12s %12s %12s\n", "design", "modules", "chip area", "util %", "time")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %8d %12.0f %11.1f%% %12v\n",
			r.Design, r.Modules, r.ChipArea, 100*r.Util, r.Time.Round(time.Millisecond))
	}
	if len(rows) >= 2 {
		a, b, r2 := FitLinear(rows)
		fmt.Fprintf(w, "linear fit: time ≈ %.2fs + %.3fs/module (R² = %.3f)\n", a, b, r2)
	}
}

// WriteTable2 formats Table 2.
func WriteTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintf(w, "Table 2 — ami33, over-the-cell routing\n")
	fmt.Fprintf(w, "%-10s %-8s %12s %8s %12s %12s\n", "objective", "order", "chip area", "util %", "wirelength", "time")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %-8s %12.0f %7.1f%% %12.0f %12v\n",
			r.Objective, r.Ordering, r.ChipArea, 100*r.Util, r.HPWL, r.Time.Round(time.Millisecond))
	}
}

// WriteTable3 formats Table 3.
func WriteTable3(w io.Writer, rows []Table3Row) {
	fmt.Fprintf(w, "Table 3 — ami33, around-the-cell routing\n")
	fmt.Fprintf(w, "%-10s %-24s %12s %12s %12s %9s\n", "envelopes", "router", "placed area", "final area", "wirelength", "overflow")
	for _, r := range rows {
		env := "no"
		if r.Envelopes {
			env = "yes"
		}
		fmt.Fprintf(w, "%-10s %-24s %12.0f %12.0f %12.0f %9d\n",
			env, r.Algorithm, r.PlacedArea, r.FinalArea, r.Wirelength, r.Overflow)
	}
}

// WriteBaseline formats the baseline comparison.
func WriteBaseline(w io.Writer, rows []BaselineRow) {
	fmt.Fprintf(w, "Baseline — analytical MILP vs Wong-Liu slicing SA (ami33)\n")
	fmt.Fprintf(w, "%-30s %12s %8s %12s %12s\n", "method", "chip area", "util %", "HPWL", "time")
	for _, r := range rows {
		fmt.Fprintf(w, "%-30s %12.0f %7.1f%% %12.0f %12v\n",
			r.Method, r.ChipArea, 100*r.Util, r.HPWL, r.Time.Round(time.Millisecond))
	}
}
