package bench

import (
	"fmt"
	"io"

	"afp/internal/core"
	"afp/internal/geom"
	"afp/internal/netlist"
	"afp/internal/render"
	"afp/internal/route"
)

// Figure1Point is one sample of the flexible-module linearization plot
// (Figure 1: h = S/w, its tangent about w_max and the secant variant).
type Figure1Point struct {
	W, HTrue, HTangent, HSecant float64
}

// Figure1 samples the linearization of a flexible module with area S and
// aspect bounds [minA, maxA].
func Figure1(s, minA, maxA float64, samples int) []Figure1Point {
	m := netlist.Module{Kind: netlist.Flexible, Area: s, MinAspect: minA, MaxAspect: maxA}
	wmin, wmax := m.WidthRange()
	hmax := s / wmax
	tanSlope := s / (wmax * wmax)
	secSlope := (s/wmin - hmax) / (wmax - wmin)
	var pts []Figure1Point
	for k := 0; k < samples; k++ {
		w := wmin + (wmax-wmin)*float64(k)/float64(samples-1)
		dw := wmax - w
		pts = append(pts, Figure1Point{
			W:        w,
			HTrue:    s / w,
			HTangent: hmax + tanSlope*dw,
			HSecant:  hmax + secSlope*dw,
		})
	}
	return pts
}

// WriteFigure1 prints the Figure 1 samples as a column table.
func WriteFigure1(w io.Writer, pts []Figure1Point) {
	fmt.Fprintf(w, "Figure 1 — linearization of h = S/w about w_max\n")
	fmt.Fprintf(w, "%10s %10s %10s %10s\n", "w", "h true", "h tangent", "h secant")
	for _, p := range pts {
		fmt.Fprintf(w, "%10.3f %10.3f %10.3f %10.3f\n", p.W, p.HTrue, p.HTangent, p.HSecant)
	}
}

// Figure2 runs successive augmentation on ami33 and returns the step
// traces (the process Figure 2/3 illustrates).
func Figure2(mode Mode) (*core.Result, error) {
	return core.Floorplan(netlist.AMI33(), mode.baseConfig())
}

// WriteFigure2 prints one line per augmentation step.
func WriteFigure2(w io.Writer, r *core.Result) {
	fmt.Fprintf(w, "Figure 2/3 — successive augmentation trace (%s)\n", r.Design.Name)
	fmt.Fprintf(w, "%5s %7s %10s %9s %7s %10s %8s\n", "step", "added", "obstacles", "binaries", "nodes", "height", "status")
	for _, s := range r.Steps {
		fmt.Fprintf(w, "%5d %7d %10d %9d %7d %10.1f %8v\n",
			s.Step, len(s.Added), s.Obstacles, s.Binaries, s.Nodes, s.Height, s.Status)
	}
}

// Figure4Data is the covering-rectangle construction of Figure 4.
type Figure4Data struct {
	Modules []geom.Rect
	Outline []geom.Point
	Covers  []geom.Rect
}

// Figure4 builds the staircase partial floorplan of Figure 4(a) and its
// horizontal edge-cut decomposition.
func Figure4() Figure4Data {
	mods := []geom.Rect{
		geom.NewRect(0, 0, 4, 3),
		geom.NewRect(4, 0, 3, 5),
		geom.NewRect(7, 0, 5, 2),
		geom.NewRect(0, 3, 4, 4),
		geom.NewRect(7, 2, 3, 4),
		geom.NewRect(4, 5, 3, 3),
	}
	sl := geom.NewSkyline(mods)
	return Figure4Data{
		Modules: mods,
		Outline: sl.Outline(),
		Covers:  geom.CoveringRectangles(mods),
	}
}

// WriteFigure4 prints the Figure 4 decomposition.
func WriteFigure4(w io.Writer, d Figure4Data) {
	fmt.Fprintf(w, "Figure 4 — covering rectangles for a partial floorplan\n")
	fmt.Fprintf(w, "fixed modules (N=%d):\n", len(d.Modules))
	for _, r := range d.Modules {
		fmt.Fprintf(w, "  %v\n", r)
	}
	fmt.Fprintf(w, "covering polygon outline: %v\n", d.Outline)
	fmt.Fprintf(w, "covering rectangles (N*=%d <= N):\n", len(d.Covers))
	for _, r := range d.Covers {
		fmt.Fprintf(w, "  %v\n", r)
	}
}

// Figure5 renders the placed ami33 floorplan as SVG (plus an ASCII
// preview) into w.
func Figure5(w io.Writer, mode Mode, svg io.Writer) error {
	r, err := core.Floorplan(netlist.AMI33(), mode.baseConfig())
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 5 — ami33 floorplan\n%s", render.ASCII(r, 78))
	if svg != nil {
		return render.SVG(svg, r)
	}
	return nil
}

// Figure6 renders the floorplan with routing space (envelopes plus routed
// channels) as SVG into svg and an ASCII preview into w.
func Figure6(w io.Writer, mode Mode, svg io.Writer) error {
	cfg := mode.baseConfig()
	cfg.Envelopes = true
	r, err := core.Floorplan(netlist.AMI33(), cfg)
	if err != nil {
		return err
	}
	rt, err := route.Route(r, route.Config{Algorithm: route.WeightedShortestPath})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 6 — ami33 floorplan with routing space\n%s", render.ASCII(r, 78))
	fmt.Fprintf(w, "routed wirelength %.0f, overflow %d, final chip %.1f x %.1f\n",
		rt.Wirelength, rt.Overflow, rt.FinalW, rt.FinalH)
	if svg != nil {
		return render.SVGWithRoutes(svg, r, rt)
	}
	return nil
}
