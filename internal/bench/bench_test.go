package bench

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

func TestTable1Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("table run in -short mode")
	}
	rows, err := Table1(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	sizes := []int{15, 20, 25, 33}
	for i, r := range rows {
		if r.Modules != sizes[i] {
			t.Fatalf("row %d modules = %d, want %d", i, r.Modules, sizes[i])
		}
		if r.Util <= 0.4 || r.Util > 1 {
			t.Fatalf("row %d utilization = %v", i, r.Util)
		}
	}
	var buf bytes.Buffer
	WriteTable1(&buf, rows)
	if !strings.Contains(buf.String(), "ami33") {
		t.Fatal("table output missing ami33")
	}
}

func TestTable2Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("table run in -short mode")
	}
	rows, err := Table2(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	var buf bytes.Buffer
	WriteTable2(&buf, rows)
	for _, want := range []string{"area+wire", "linear", "random"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("table 2 output missing %q:\n%s", want, buf.String())
		}
	}
	// Shape regression (soft, Quick mode is noisy): the connectivity-based
	// linear ordering should not lose badly to random under the area
	// objective — the paper's central Table 2 claim.
	if rows[1].ChipArea > rows[0].ChipArea*1.15 {
		t.Errorf("linear ordering area %v much worse than random %v",
			rows[1].ChipArea, rows[0].ChipArea)
	}
}

func TestTable3Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("table run in -short mode")
	}
	rows, err := Table3(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.FinalArea < r.PlacedArea-1e-6 {
			t.Fatalf("final area %v below placed %v", r.FinalArea, r.PlacedArea)
		}
		if r.Wirelength <= 0 {
			t.Fatalf("wirelength = %v", r.Wirelength)
		}
	}
	var buf bytes.Buffer
	WriteTable3(&buf, rows)
	if !strings.Contains(buf.String(), "weighted-shortest-path") {
		t.Fatal("table 3 output incomplete")
	}
	// Shape regressions: rows are [bare/sp, bare/wsp, env/sp, env/wsp].
	// The weighted router must not increase overflow, and the envelope
	// floorplan must not increase it either (the Table 3 mechanisms).
	if rows[1].Overflow > rows[0].Overflow {
		t.Errorf("weighted overflow %d > shortest %d", rows[1].Overflow, rows[0].Overflow)
	}
	if rows[3].Overflow > rows[1].Overflow {
		t.Errorf("envelope overflow %d > bare %d", rows[3].Overflow, rows[1].Overflow)
	}
}

func TestBaselineQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("baseline run in -short mode")
	}
	rows, err := Baseline(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	var buf bytes.Buffer
	WriteBaseline(&buf, rows)
	for _, want := range []string{"wong-liu", "sequence-pair"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("baseline output missing %q", want)
		}
	}
}

func TestFitLinear(t *testing.T) {
	rows := []Table1Row{
		{Modules: 10, Time: 1 * time.Second},
		{Modules: 20, Time: 2 * time.Second},
		{Modules: 30, Time: 3 * time.Second},
	}
	a, b, r2 := FitLinear(rows)
	if math.Abs(a) > 1e-9 || math.Abs(b-0.1) > 1e-9 || math.Abs(r2-1) > 1e-9 {
		t.Fatalf("fit = (%v, %v, %v), want (0, 0.1, 1)", a, b, r2)
	}
	if _, _, r2 := FitLinear(rows[:1]); r2 != 0 {
		t.Fatalf("degenerate fit r2 = %v", r2)
	}
	// Nonlinear data should score below a perfect fit.
	rows[2].Time = 30 * time.Second
	if _, _, r2 := FitLinear(rows); r2 >= 1 {
		t.Fatalf("nonlinear data fit r2 = %v", r2)
	}
}

func TestFigure1(t *testing.T) {
	pts := Figure1(100, 0.25, 4, 11)
	if len(pts) != 11 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		// Tangent below the curve, secant above (both exact at w_max).
		if p.HTangent > p.HTrue+1e-9 {
			t.Fatalf("tangent above curve at w=%v", p.W)
		}
		if p.HSecant < p.HTrue-1e-9 {
			t.Fatalf("secant below curve at w=%v", p.W)
		}
	}
	last := pts[len(pts)-1]
	if last.HTrue != last.HTangent || last.HTrue != last.HSecant {
		t.Fatalf("not exact at w_max: %+v", last)
	}
	var buf bytes.Buffer
	WriteFigure1(&buf, pts)
	if !strings.Contains(buf.String(), "h tangent") {
		t.Fatal("figure 1 output incomplete")
	}
}

func TestFigure4(t *testing.T) {
	d := Figure4()
	if len(d.Covers) >= len(d.Modules) {
		t.Fatalf("N* = %d not below N = %d", len(d.Covers), len(d.Modules))
	}
	var buf bytes.Buffer
	WriteFigure4(&buf, d)
	if !strings.Contains(buf.String(), "covering rectangles") {
		t.Fatal("figure 4 output incomplete")
	}
}

func TestFigures2And5And6(t *testing.T) {
	if testing.Short() {
		t.Skip("figure runs in -short mode")
	}
	r, err := Figure2(Quick)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	WriteFigure2(&buf, r)
	if !strings.Contains(buf.String(), "augmentation") {
		t.Fatal("figure 2 output incomplete")
	}

	var svg5, txt5 bytes.Buffer
	if err := Figure5(&txt5, Quick, &svg5); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(svg5.String(), "<svg") {
		t.Fatal("figure 5 SVG missing")
	}

	var svg6, txt6 bytes.Buffer
	if err := Figure6(&txt6, Quick, &svg6); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt6.String(), "routed wirelength") {
		t.Fatal("figure 6 text incomplete")
	}
}
