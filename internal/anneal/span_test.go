package anneal

import (
	"context"
	"testing"

	"afp/internal/core"
	"afp/internal/netlist"
	"afp/internal/obs"
)

func spanDesign() *netlist.Design {
	d := &netlist.Design{Name: "span"}
	for _, name := range []string{"a", "b", "c", "d"} {
		d.Modules = append(d.Modules, netlist.Module{Name: name, Kind: netlist.Rigid, W: 3, H: 2, Rotatable: true})
	}
	return d
}

// The whole run is wrapped in a paired "anneal" span (the PR 6 span
// vocabulary), so portfolio traces attribute time per backend.
func TestAnnealSpanPaired(t *testing.T) {
	rec := &obs.Recorder{}
	if _, err := FloorplanCtx(context.Background(), spanDesign(), Config{Seed: 2, Obs: obs.New(rec)}); err != nil {
		t.Fatal(err)
	}
	var starts, ends int
	for _, e := range rec.Events() {
		if e.Name != "anneal" {
			continue
		}
		switch e.Kind {
		case obs.KindSpanStart:
			starts++
		case obs.KindSpanEnd:
			ends++
		}
	}
	if starts != 1 || ends != 1 {
		t.Fatalf("anneal span start/end = %d/%d, want 1/1", starts, ends)
	}
	if rec.CountKind(obs.KindAnnealTemp) == 0 {
		t.Fatal("no anneal.temp events recorded")
	}
}

// Best fires on the initial state and on every improvement, each time
// with a fully decoded floorplan.
func TestAnnealBestCallback(t *testing.T) {
	d := spanDesign()
	var best []*core.Result
	_, err := Floorplan(d, Config{Seed: 2, Best: func(r *core.Result) { best = append(best, r) }})
	if err != nil {
		t.Fatal(err)
	}
	if len(best) == 0 {
		t.Fatal("Best never called")
	}
	for _, r := range best {
		if len(r.Placements) != len(d.Modules) {
			t.Fatalf("Best saw a partial floorplan: %d/%d modules", len(r.Placements), len(d.Modules))
		}
		if r.Source != "anneal" {
			t.Fatalf("Best result source = %q", r.Source)
		}
	}
}

// FixedWidth steers the packing inside the chip: the quadratic
// excess-width penalty makes any layout within W strictly preferable to
// one that spills, so a generous fixed width yields a result that fits.
func TestAnnealFixedWidthFits(t *testing.T) {
	d := spanDesign()
	w := 9.0 // three 3-wide modules side by side fit easily
	r, err := Floorplan(d, Config{Seed: 2, FixedWidth: w})
	if err != nil {
		t.Fatal(err)
	}
	if r.ChipWidth > w+1e-9 {
		t.Fatalf("fixed-width anneal spilled: width %.4g > %.4g", r.ChipWidth, w)
	}
}
