package anneal

import (
	"context"
	"errors"
	"testing"
	"time"

	"afp/internal/netlist"
)

func TestFloorplanCtxCancelledReturnsBest(t *testing.T) {
	d := netlist.AMI33()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := FloorplanCtx(ctx, d, Config{Seed: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Annealing always has an incumbent once the initial expression is
	// built, so even a pre-cancelled run returns a full placement.
	if res == nil || len(res.Placements) != len(d.Modules) {
		t.Fatalf("cancelled anneal returned unusable result: %+v", res)
	}
}

func TestFloorplanCtxDeadlineStopsPromptly(t *testing.T) {
	d := netlist.Random(40, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := FloorplanCtx(ctx, d, Config{Seed: 2, MovesPerTemp: 5000})
	elapsed := time.Since(start)
	if err == nil {
		t.Skip("anneal finished inside the deadline; nothing to assert")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("deadline anneal took %v", elapsed)
	}
	if res == nil || len(res.Placements) != len(d.Modules) {
		t.Fatal("deadline anneal returned unusable result")
	}
}
