package anneal

import (
	"context"
	"math"
	"math/rand"

	"afp/internal/core"
	"afp/internal/geom"
	"afp/internal/netlist"
	"afp/internal/obs"
)

// Config tunes the annealer.
type Config struct {
	// Seed drives all randomness; equal seeds give equal results.
	Seed int64
	// Lambda weighs wirelength against area in the cost (cost = area +
	// Lambda * HPWL). Zero routes on area alone.
	Lambda float64
	// FlexSamples is the number of width samples per flexible module.
	// Zero defaults to 6.
	FlexSamples int
	// MovesPerTemp is the number of attempted moves at each temperature.
	// Zero defaults to 30 * n.
	MovesPerTemp int
	// Alpha is the geometric cooling rate. Zero defaults to 0.85.
	Alpha float64
	// MinTemp stops the schedule. Zero defaults to 1e-4 of the initial
	// temperature.
	MinTemp float64
	// FixedWidth, when positive, anneals against a fixed chip width W
	// instead of free bounding area: the cost becomes the packing height
	// scaled by a quadratic penalty in the relative width excess
	// (h * max(w/W, 1)^2), so layouts wider than the chip are steered
	// inside before their height matters. Portfolio races set it so every
	// backend solves the same fixed-width instance.
	FixedWidth float64
	// Best, when set, is invoked with a freshly decoded floorplan every
	// time the search improves its best cost (including the initial
	// expression) — the incremental-best reporting a portfolio racer uses
	// to publish incumbents while the schedule is still cooling. It is
	// called synchronously on the annealing goroutine and must not block
	// for long.
	Best func(*core.Result)
	// Obs receives one anneal.temp event per temperature step (current
	// temperature, acceptance stats, current and best cost). Nil disables
	// instrumentation at zero cost.
	Obs *obs.Observer
}

// Floorplan runs simulated annealing over normalized Polish expressions
// and returns the best floorplan found as a core.Result (ChipWidth is the
// bounding width of the slicing floorplan).
func Floorplan(d *netlist.Design, cfg Config) (*core.Result, error) {
	return FloorplanCtx(context.Background(), d, cfg)
}

// FloorplanCtx is Floorplan under a context. Cancellation (or a context
// deadline) stops the cooling schedule within a few moves; the best
// floorplan found so far is returned together with ctx.Err(), matching
// core.FloorplanCtx's partial-result convention — annealing always has
// an incumbent after the initial expression, so the result is usable.
// The whole run is wrapped in an "anneal" span so portfolio traces
// attribute time per backend.
func FloorplanCtx(ctx context.Context, d *netlist.Design, cfg Config) (res *core.Result, err error) {
	cfg.Obs.Do(ctx, "anneal", obs.SpanAttrs{Detail: d.Name}, func(ctx context.Context) {
		res, err = floorplanCtx(ctx, d, cfg)
	})
	return res, err
}

func floorplanCtx(ctx context.Context, d *netlist.Design, cfg Config) (*core.Result, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	n := len(d.Modules)
	if n == 0 {
		return &core.Result{Design: d, Source: "anneal"}, nil
	}
	if cfg.FlexSamples <= 0 {
		cfg.FlexSamples = 6
	}
	if cfg.MovesPerTemp <= 0 {
		cfg.MovesPerTemp = 30 * n
	}
	if cfg.Alpha <= 0 {
		cfg.Alpha = 0.85
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 12345))

	a := &annealer{d: d, cfg: cfg, rng: rng, leaves: leafCurves(d, cfg.FlexSamples)}
	if n == 1 {
		expr := []int{0}
		return a.decode(expr), nil
	}

	cur := initialExpr(n)
	curCost := a.cost(cur)
	best := append([]int(nil), cur...)
	bestCost := curCost
	if cfg.Best != nil {
		cfg.Best(a.decode(best))
	}

	// Calibrate T0 from the average uphill move.
	t0 := a.calibrate(cur, curCost)
	minT := cfg.MinTemp
	if minT <= 0 {
		minT = t0 * 1e-4
	}

	done := ctx.Done()
	for T := t0; T > minT; T *= cfg.Alpha {
		accepted := 0
		for mv := 0; mv < cfg.MovesPerTemp; mv++ {
			if done != nil && mv&63 == 0 {
				select {
				case <-done:
					return a.decode(best), ctx.Err()
				default:
				}
			}
			next, ok := a.perturb(cur)
			if !ok {
				continue
			}
			c := a.cost(next)
			delta := c - curCost
			if delta <= 0 || rng.Float64() < math.Exp(-delta/T) {
				cur, curCost = next, c
				accepted++
				if c < bestCost {
					bestCost = c
					best = append(best[:0], cur...)
					if cfg.Best != nil {
						cfg.Best(a.decode(best))
					}
				}
			}
		}
		cfg.Obs.Emit(obs.Event{
			Kind: obs.KindAnnealTemp, Temp: T, Accepted: accepted,
			Attempted: cfg.MovesPerTemp, Obj: curCost, Bound: bestCost,
		})
		if accepted == 0 {
			break
		}
	}
	return a.decode(best), nil
}

type annealer struct {
	d      *netlist.Design
	cfg    Config
	rng    *rand.Rand
	leaves [][]shapePoint
}

// leafCurves builds the shape options of each module: both orientations
// for rotatable rigid modules, sampled widths for flexible modules.
func leafCurves(d *netlist.Design, samples int) [][]shapePoint {
	out := make([][]shapePoint, len(d.Modules))
	for i := range d.Modules {
		m := &d.Modules[i]
		var pts []shapePoint
		switch m.Kind {
		case netlist.Flexible:
			wmin, wmax := m.WidthRange()
			for k := 0; k < samples; k++ {
				f := float64(k) / float64(samples-1)
				w := wmin + f*(wmax-wmin)
				pts = append(pts, shapePoint{w: w, h: m.Area / w, li: -1, ri: -1, leafK: k})
			}
		default:
			pts = append(pts, shapePoint{w: m.W, h: m.H, li: -1, ri: -1, leafK: 0})
			// Rotation only yields a distinct shape when the sides differ by
			// more than the geometric tolerance.
			if m.Rotatable && !geom.Eq(m.W, m.H) {
				pts = append(pts, shapePoint{w: m.H, h: m.W, li: -1, ri: -1, leafK: 1})
			}
		}
		out[i] = pareto(pts)
	}
	return out
}

// calibrate estimates an initial temperature from the mean uphill delta
// over a sample of random moves (the standard Wong-Liu recipe).
func (a *annealer) calibrate(expr []int, base float64) float64 {
	var up, cnt float64
	cur := append([]int(nil), expr...)
	curCost := base
	for i := 0; i < 50; i++ {
		next, ok := a.perturb(cur)
		if !ok {
			continue
		}
		c := a.cost(next)
		if dd := c - curCost; dd > 0 {
			up += dd
			cnt++
		}
		cur, curCost = next, c
	}
	if cnt == 0 {
		return 1
	}
	avg := up / cnt
	return -avg / math.Log(0.85) // initial acceptance ratio ~0.85
}

// perturb applies one of the Wong-Liu moves M1 (swap adjacent operands),
// M2 (complement an operator chain) or M3 (swap an operand with an
// adjacent operator), returning a fresh expression.
func (a *annealer) perturb(expr []int) ([]int, bool) {
	next := append([]int(nil), expr...)
	switch a.rng.Intn(3) {
	case 0:
		return next, a.moveM1(next)
	case 1:
		return next, a.moveM2(next)
	default:
		return next, a.moveM3(next)
	}
}

// moveM1 swaps two operands adjacent in the operand subsequence.
func (a *annealer) moveM1(expr []int) bool {
	var opIdx []int
	for i, t := range expr {
		if !isOperator(t) {
			opIdx = append(opIdx, i)
		}
	}
	if len(opIdx) < 2 {
		return false
	}
	k := a.rng.Intn(len(opIdx) - 1)
	i, j := opIdx[k], opIdx[k+1]
	expr[i], expr[j] = expr[j], expr[i]
	return true
}

// moveM2 complements one maximal chain of operators.
func (a *annealer) moveM2(expr []int) bool {
	type chain struct{ s, e int }
	var chains []chain
	for i := 0; i < len(expr); {
		if isOperator(expr[i]) {
			s := i
			for i < len(expr) && isOperator(expr[i]) {
				i++
			}
			chains = append(chains, chain{s, i})
		} else {
			i++
		}
	}
	if len(chains) == 0 {
		return false
	}
	c := chains[a.rng.Intn(len(chains))]
	for i := c.s; i < c.e; i++ {
		if expr[i] == opH {
			expr[i] = opV
		} else {
			expr[i] = opH
		}
	}
	return true
}

// moveM3 swaps one adjacent operand-operator pair, keeping the expression
// a normalized Polish expression.
func (a *annealer) moveM3(expr []int) bool {
	n := (len(expr) + 1) / 2
	// Collect candidate positions and try them in random order.
	perm := a.rng.Perm(len(expr) - 1)
	for _, i := range perm {
		if isOperator(expr[i]) == isOperator(expr[i+1]) {
			continue
		}
		expr[i], expr[i+1] = expr[i+1], expr[i]
		if validExpr(expr, n) == nil {
			return true
		}
		expr[i], expr[i+1] = expr[i+1], expr[i] // undo
	}
	return false
}

// shapeCost scores a bounding shape: area in free-width mode, height
// scaled by a quadratic excess-width penalty in fixed-width mode (see
// Config.FixedWidth).
func (a *annealer) shapeCost(w, h float64) float64 {
	if fw := a.cfg.FixedWidth; fw > 0 {
		over := math.Max(w/fw, 1)
		return h * over * over
	}
	return w * h
}

// cost evaluates the best (shape cost + lambda*HPWL) over the shape
// curve of the expression.
func (a *annealer) cost(expr []int) float64 {
	res := a.decode(expr)
	c := a.shapeCost(res.ChipWidth, res.Height)
	if a.cfg.Lambda > 0 {
		c += a.cfg.Lambda * res.HPWL()
	}
	return c
}

// decode evaluates the expression's shape curve, picks the best final
// shape and extracts module rectangles.
func (a *annealer) decode(expr []int) *core.Result {
	type nodeCurve struct {
		curve []shapePoint
		op    int
		l, r  int // node indices in the eval forest (-1 leaf)
		leaf  int // module index for leaves
	}
	var nodes []nodeCurve
	var stack []int
	for _, t := range expr {
		if !isOperator(t) {
			nodes = append(nodes, nodeCurve{curve: a.leaves[t], l: -1, r: -1, leaf: t})
			stack = append(stack, len(nodes)-1)
			continue
		}
		rIdx := stack[len(stack)-1]
		lIdx := stack[len(stack)-2]
		stack = stack[:len(stack)-2]
		nodes = append(nodes, nodeCurve{
			curve: combine(t, nodes[lIdx].curve, nodes[rIdx].curve),
			op:    t, l: lIdx, r: rIdx,
		})
		stack = append(stack, len(nodes)-1)
	}
	root := stack[0]

	// Choose the best point of the root curve.
	bestK, bestC := 0, math.Inf(1)
	for k, p := range nodes[root].curve {
		c := a.shapeCost(p.w, p.h)
		if c < bestC {
			bestK, bestC = k, c
		}
	}

	res := &core.Result{Design: a.d, Source: "anneal"}
	// Recursive extraction of rectangles.
	var place func(ni, k int, x, y float64)
	place = func(ni, k int, x, y float64) {
		nd := &nodes[ni]
		p := nd.curve[k]
		if nd.l < 0 {
			r := geom.NewRect(x, y, p.w, p.h)
			m := &a.d.Modules[nd.leaf]
			rot := m.Kind == netlist.Rigid && p.leafK == 1
			res.Placements = append(res.Placements, core.Placement{
				Index: nd.leaf, Env: r, Mod: r, Rotated: rot,
			})
			return
		}
		lp := nodes[nd.l].curve[p.li]
		if nd.op == opV {
			place(nd.l, p.li, x, y)
			place(nd.r, p.ri, x+lp.w, y)
		} else {
			place(nd.l, p.li, x, y)
			place(nd.r, p.ri, x, y+lp.h)
		}
	}
	rootPt := nodes[root].curve[bestK]
	place(root, bestK, 0, 0)
	res.ChipWidth = rootPt.w
	res.Height = rootPt.h
	return res
}

// Cost exposes the annealer's cost function for tests and benchmarks.
func Cost(d *netlist.Design, expr []int, cfg Config) (float64, error) {
	if err := validExpr(expr, len(d.Modules)); err != nil {
		return 0, err
	}
	if cfg.FlexSamples <= 0 {
		cfg.FlexSamples = 6
	}
	a := &annealer{d: d, cfg: cfg, leaves: leafCurves(d, cfg.FlexSamples)}
	return a.cost(expr), nil
}
