package anneal

import (
	"math"
	"math/rand"
	"testing"

	"afp/internal/netlist"
)

func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestValidExpr(t *testing.T) {
	good := [][]int{
		{0},
		{0, 1, opV},
		{0, 1, opV, 2, opH},
		{0, 1, opH, 2, 3, opV, opH}, // adjacent different operators ok
	}
	for _, e := range good {
		n := (len(e) + 1) / 2
		if err := validExpr(e, n); err != nil {
			t.Errorf("validExpr(%v) = %v, want nil", e, err)
		}
	}
	bad := []struct {
		e []int
		n int
	}{
		{[]int{0, 1}, 2},                   // missing operator
		{[]int{0, opV, 1}, 2},              // balloting violated
		{[]int{0, 1, opV, 2, opV, opV}, 3}, // wrong length
		{[]int{0, 0, opV}, 2},              // repeated operand
		{[]int{0, 1, opH, 2, opH, 3, 9}, 4},
		{[]int{0, 1, 2, opV, opV}, 3}, // adjacent same operators
	}
	for _, c := range bad {
		if err := validExpr(c.e, c.n); err == nil {
			t.Errorf("validExpr(%v) succeeded, want error", c.e)
		}
	}
}

func TestInitialExpr(t *testing.T) {
	e := initialExpr(4)
	if err := validExpr(e, 4); err != nil {
		t.Fatal(err)
	}
}

func TestParetoFilter(t *testing.T) {
	pts := []shapePoint{{w: 1, h: 5}, {w: 2, h: 3}, {w: 3, h: 3}, {w: 4, h: 1}, {w: 5, h: 1}}
	out := pareto(pts)
	if len(out) != 3 {
		t.Fatalf("pareto kept %d points: %v", len(out), out)
	}
	for i := 1; i < len(out); i++ {
		if out[i].w <= out[i-1].w || out[i].h >= out[i-1].h {
			t.Fatalf("not a strict frontier: %v", out)
		}
	}
}

func TestCombine(t *testing.T) {
	l := []shapePoint{{w: 2, h: 3}}
	r := []shapePoint{{w: 1, h: 4}}
	v := combine(opV, l, r)
	if len(v) != 1 || v[0].w != 3 || v[0].h != 4 {
		t.Fatalf("V combine = %v", v)
	}
	h := combine(opH, l, r)
	if len(h) != 1 || h[0].w != 2 || h[0].h != 7 {
		t.Fatalf("H combine = %v", h)
	}
}

func twoByTwo() *netlist.Design {
	return &netlist.Design{
		Name: "four",
		Modules: []netlist.Module{
			{Name: "a", Kind: netlist.Rigid, W: 2, H: 2},
			{Name: "b", Kind: netlist.Rigid, W: 2, H: 2},
			{Name: "c", Kind: netlist.Rigid, W: 2, H: 2},
			{Name: "d", Kind: netlist.Rigid, W: 2, H: 2},
		},
		Nets: []netlist.Net{{Name: "n", Modules: []int{0, 3}, Weight: 1}},
	}
}

func TestAnnealFourSquares(t *testing.T) {
	d := twoByTwo()
	r, err := Floorplan(d, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Four 2x2 squares pack perfectly into 4x4 = 16 (any slicing of the
	// square achieves it), so SA must find a zero-dead-space floorplan.
	if math.Abs(r.ChipArea()-16) > 1e-9 {
		t.Fatalf("area = %v, want 16", r.ChipArea())
	}
	if r.Overlaps() {
		t.Fatal("slicing floorplan overlaps")
	}
	if len(r.Placements) != 4 {
		t.Fatalf("placed %d modules", len(r.Placements))
	}
}

func TestAnnealDeterministic(t *testing.T) {
	d := twoByTwo()
	r1, _ := Floorplan(d, Config{Seed: 7})
	r2, _ := Floorplan(d, Config{Seed: 7})
	if r1.ChipArea() != r2.ChipArea() || r1.HPWL() != r2.HPWL() {
		t.Fatal("annealer not deterministic for equal seeds")
	}
}

func TestAnnealFlexible(t *testing.T) {
	d := &netlist.Design{
		Modules: []netlist.Module{
			{Name: "f1", Kind: netlist.Flexible, Area: 8, MinAspect: 0.5, MaxAspect: 2},
			{Name: "f2", Kind: netlist.Flexible, Area: 8, MinAspect: 0.5, MaxAspect: 2},
			{Name: "r", Kind: netlist.Rigid, W: 4, H: 2, Rotatable: true},
		},
	}
	r, err := Floorplan(d, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r.Overlaps() {
		t.Fatal("overlapping floorplan")
	}
	// Total area 24; a good slicing packs with little dead space.
	if r.ChipArea() > 24*1.3 {
		t.Fatalf("area = %v, too loose for 24 of module area", r.ChipArea())
	}
	// Flexible placements keep their area.
	for _, p := range r.Placements {
		m := &d.Modules[p.Index]
		if m.Kind == netlist.Flexible && math.Abs(p.Mod.Area()-m.Area) > 1e-6 {
			t.Fatalf("flexible area = %v, want %v", p.Mod.Area(), m.Area)
		}
	}
}

func TestAnnealSingleAndEmpty(t *testing.T) {
	d := &netlist.Design{Modules: []netlist.Module{{Name: "a", Kind: netlist.Rigid, W: 3, H: 5}}}
	r, err := Floorplan(d, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if r.ChipArea() != 15 {
		t.Fatalf("single module area = %v", r.ChipArea())
	}
	empty, err := Floorplan(&netlist.Design{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(empty.Placements) != 0 {
		t.Fatal("empty design placed modules")
	}
}

func TestAnnealWirelengthLambda(t *testing.T) {
	// With a strong lambda, the connected modules 0 and 3 should end up
	// closer than without.
	d := twoByTwo()
	noWire, _ := Floorplan(d, Config{Seed: 2})
	wire, _ := Floorplan(d, Config{Seed: 2, Lambda: 10})
	if wire.HPWL() > noWire.HPWL()+1e-9 {
		t.Fatalf("lambda did not reduce HPWL: %v vs %v", wire.HPWL(), noWire.HPWL())
	}
}

func TestAnnealAMI33(t *testing.T) {
	if testing.Short() {
		t.Skip("ami33 anneal in -short mode")
	}
	d := netlist.AMI33()
	r, err := Floorplan(d, Config{Seed: 1, MovesPerTemp: 200})
	if err != nil {
		t.Fatal(err)
	}
	if r.Overlaps() {
		t.Fatal("ami33 slicing floorplan overlaps")
	}
	util := d.TotalArea() / r.ChipArea()
	if util < 0.6 {
		t.Fatalf("ami33 SA utilization %.2f, too low", util)
	}
	t.Logf("ami33 SA: area %.0f, util %.1f%%", r.ChipArea(), 100*util)
}

func TestMovesPreserveValidity(t *testing.T) {
	d := netlist.Random(12, 4)
	a := &annealer{d: d, cfg: Config{FlexSamples: 4}, leaves: leafCurves(d, 4)}
	a.rng = newRng(9)
	expr := initialExpr(12)
	for i := 0; i < 500; i++ {
		next, ok := a.perturb(expr)
		if !ok {
			continue
		}
		if err := validExpr(next, 12); err != nil {
			t.Fatalf("move %d broke the expression: %v\n%v", i, err, next)
		}
		expr = next
	}
}

func TestCostExported(t *testing.T) {
	d := twoByTwo()
	c, err := Cost(d, initialExpr(4), Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Row of four 2x2: 8x2 = 16.
	if math.Abs(c-16) > 1e-9 {
		t.Fatalf("cost = %v, want 16", c)
	}
	if _, err := Cost(d, []int{0, 1}, Config{}); err == nil {
		t.Fatal("expected error for invalid expression")
	}
}
