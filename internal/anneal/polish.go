// Package anneal implements the slicing-floorplan simulated-annealing
// baseline of Wong and Liu ("A New Algorithm for Floorplan Design", DAC
// 1986) — the state of the art the paper positions its analytical method
// against. Floorplans are normalized Polish expressions over H/V cuts;
// moves M1/M2/M3 perturb the expression; module shapes are combined with
// Stockmeyer-style shape curves.
package anneal

import (
	"fmt"
	"math"
)

// Token values: non-negative ints are operand (module) indices; opH and
// opV are the slicing operators.
const (
	opH = -1 // horizontal cut: left subfloorplan below right (heights add)
	opV = -2 // vertical cut: left subfloorplan left of right (widths add)
)

func isOperator(t int) bool { return t < 0 }

// validExpr checks that expr is a Polish expression over n operands with
// the balloting property, each operand exactly once, and normalization
// (no two adjacent identical operators).
func validExpr(expr []int, n int) error {
	if len(expr) != 2*n-1 {
		return fmt.Errorf("anneal: expression length %d, want %d", len(expr), 2*n-1)
	}
	seen := make([]bool, n)
	operands, operators := 0, 0
	for i, t := range expr {
		if isOperator(t) {
			if t != opH && t != opV {
				return fmt.Errorf("anneal: bad token %d", t)
			}
			operators++
			if operators >= operands {
				return fmt.Errorf("anneal: balloting violated at %d", i)
			}
			if i > 0 && expr[i-1] == t {
				return fmt.Errorf("anneal: not normalized at %d", i)
			}
		} else {
			if t >= n || seen[t] {
				return fmt.Errorf("anneal: operand %d invalid or repeated", t)
			}
			seen[t] = true
			operands++
		}
	}
	if operands != n || operators != n-1 {
		return fmt.Errorf("anneal: %d operands, %d operators", operands, operators)
	}
	return nil
}

// initialExpr returns the canonical starting expression
// 0 1 V 2 V 3 V ... (all modules in one row).
func initialExpr(n int) []int {
	expr := make([]int, 0, 2*n-1)
	expr = append(expr, 0)
	for i := 1; i < n; i++ {
		expr = append(expr, i, opV)
	}
	return expr
}

// shapePoint is one realizable (w, h) of a subfloorplan, with back
// pointers to the child points that realize it.
type shapePoint struct {
	w, h   float64
	li, ri int // child point indices (-1 for leaves)
	leafK  int // leaf option index (orientation / flexible sample)
}

// combine merges two shape curves under an operator, keeping only
// non-dominated points. Curves are kept sorted by increasing width
// (and therefore decreasing height).
func combine(op int, l, r []shapePoint) []shapePoint {
	var out []shapePoint
	if op == opV {
		// Widths add, heights max. For each pair we could emit a point, but
		// the classic O(|l|+|r|) merge over sorted curves suffices for the
		// Pareto set.
		for i := range l {
			for j := range r {
				out = append(out, shapePoint{
					w: l[i].w + r[j].w, h: math.Max(l[i].h, r[j].h), li: i, ri: j,
				})
			}
		}
	} else {
		for i := range l {
			for j := range r {
				out = append(out, shapePoint{
					w: math.Max(l[i].w, r[j].w), h: l[i].h + r[j].h, li: i, ri: j,
				})
			}
		}
	}
	return pareto(out)
}

// pareto filters to the non-dominated frontier, sorted by width.
func pareto(pts []shapePoint) []shapePoint {
	if len(pts) <= 1 {
		return pts
	}
	// Sort by width asc, height asc (insertion into a small slice; curves
	// stay short because of pruning).
	sorted := append([]shapePoint(nil), pts...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && (sorted[j].w < sorted[j-1].w ||
			//vet:allow toleq -- exact lexicographic tie keeps the sort a total order
			(sorted[j].w == sorted[j-1].w && sorted[j].h < sorted[j-1].h)); j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	out := sorted[:0]
	bestH := math.Inf(1)
	for _, p := range sorted {
		if p.h < bestH-1e-12 {
			out = append(out, p)
			bestH = p.h
		}
	}
	return out
}
