package lp

import (
	"math"
	"math/rand"
	"testing"
)

// checkDuality verifies strong duality with bounds and complementary
// slackness for an optimal solution.
func checkDuality(t *testing.T, p *Problem, sol *Solution) {
	t.Helper()
	if sol.Status != StatusOptimal {
		t.Fatalf("status %v", sol.Status)
	}
	if len(sol.Duals) != p.NumConstraints() || len(sol.ReducedCosts) != p.NumVariables() {
		t.Fatalf("duals/reduced sizes %d/%d", len(sol.Duals), len(sol.ReducedCosts))
	}
	// Strong duality: obj = y'b + d'x.
	var rhsPart, redPart float64
	for i := 0; i < p.NumConstraints(); i++ {
		rhsPart += sol.Duals[i] * p.rhs[i]
	}
	for j := 0; j < p.NumVariables(); j++ {
		redPart += sol.ReducedCosts[j] * sol.X[j]
	}
	scale := 1 + math.Abs(sol.Objective)
	if diff := math.Abs(sol.Objective - (rhsPart + redPart)); diff > 1e-6*scale {
		t.Fatalf("strong duality violated: obj %v vs y'b+d'x %v (y'b=%v, d'x=%v)",
			sol.Objective, rhsPart+redPart, rhsPart, redPart)
	}
	// Complementary slackness: nonzero dual -> tight row.
	for i := 0; i < p.NumConstraints(); i++ {
		if math.Abs(sol.Duals[i]) < 1e-7 {
			continue
		}
		var lhs float64
		for _, tm := range p.rows[i] {
			lhs += tm.Coef * sol.X[tm.Var]
		}
		if math.Abs(lhs-p.rhs[i]) > 1e-6*scale {
			t.Fatalf("row %d has dual %v but slack %v", i, sol.Duals[i], lhs-p.rhs[i])
		}
	}
	// Nonzero reduced cost -> variable at a bound.
	for j := 0; j < p.NumVariables(); j++ {
		if math.Abs(sol.ReducedCosts[j]) < 1e-7 {
			continue
		}
		lo, hi := p.Bounds(VarID(j))
		if math.Abs(sol.X[j]-lo) > 1e-6 && math.Abs(sol.X[j]-hi) > 1e-6 {
			t.Fatalf("var %d has reduced cost %v but interior value %v in [%v, %v]",
				j, sol.ReducedCosts[j], sol.X[j], lo, hi)
		}
	}
}

func TestDualsTextbook(t *testing.T) {
	// max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 (optimum 36 at (2,6)).
	// Known duals: y1 = 0, y2 = 3/2, y3 = 1.
	p := NewProblem()
	p.SetMaximize(true)
	x := p.AddVariable("x", 0, math.Inf(1), 3)
	y := p.AddVariable("y", 0, math.Inf(1), 5)
	p.AddConstraint("c1", []Term{{x, 1}}, LE, 4)
	p.AddConstraint("c2", []Term{{y, 2}}, LE, 12)
	p.AddConstraint("c3", []Term{{x, 3}, {y, 2}}, LE, 18)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	checkDuality(t, p, sol)
	want := []float64{0, 1.5, 1}
	for i, w := range want {
		if math.Abs(sol.Duals[i]-w) > 1e-7 {
			t.Fatalf("dual %d = %v, want %v (all: %v)", i, sol.Duals[i], w, sol.Duals)
		}
	}
}

func TestDualsWithEqualities(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", 0, 10, 1)
	y := p.AddVariable("y", 0, 10, 2)
	p.AddConstraint("sum", []Term{{x, 1}, {y, 1}}, EQ, 6)
	p.AddConstraint("cap", []Term{{x, 1}}, LE, 4)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	checkDuality(t, p, sol)
}

func TestDualsWithGEAndBounds(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", 1, 5, 3)
	y := p.AddVariable("y", 0, 4, 1)
	p.AddConstraint("cover", []Term{{x, 2}, {y, 1}}, GE, 7)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	checkDuality(t, p, sol)
}

// Randomized duality check across feasible LPs of mixed row types.
func TestDualsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 120; trial++ {
		nv := 2 + rng.Intn(5)
		p := NewProblem()
		point := make([]float64, nv)
		vars := make([]VarID, nv)
		for j := 0; j < nv; j++ {
			lo := float64(rng.Intn(4)) - 1
			hi := lo + 1 + float64(rng.Intn(8))
			vars[j] = p.AddVariable("v", lo, hi, float64(rng.Intn(9)-4))
			point[j] = lo + (hi-lo)*rng.Float64()
		}
		for i := 0; i < 1+rng.Intn(5); i++ {
			var terms []Term
			lhs := 0.0
			for j := 0; j < nv; j++ {
				c := float64(rng.Intn(7) - 3)
				if c == 0 {
					continue
				}
				terms = append(terms, Term{vars[j], c})
				lhs += c * point[j]
			}
			if len(terms) == 0 {
				continue
			}
			switch rng.Intn(3) {
			case 0:
				p.AddConstraint("c", terms, LE, lhs+rng.Float64()*2)
			case 1:
				p.AddConstraint("c", terms, GE, lhs-rng.Float64()*2)
			default:
				p.AddConstraint("c", terms, EQ, lhs)
			}
		}
		if rng.Intn(2) == 0 {
			p.SetMaximize(true)
		}
		sol, err := p.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != StatusOptimal {
			t.Fatalf("trial %d: %v", trial, sol.Status)
		}
		checkDuality(t, p, sol)
	}
}
