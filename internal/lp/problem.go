// Package lp implements bounded-variable simplex solvers for linear
// programs
//
//	minimize    c'x
//	subject to  a_i'x {<=,>=,=} b_i   for every constraint i
//	            lo <= x <= hi         (hi may be +Inf)
//
// It is the mathematical-programming substrate that stands in for the
// LINDO package used in Sutanthavibul, Shragowitz and Rosen (DAC 1990):
// the floorplanning subproblems of the paper are built as lp.Problem
// instances and the 0-1 variables are handled by the branch-and-bound
// layer in package milp.
//
// Two engines share the Problem model. The primary one is a sparse
// revised simplex (CSC constraint matrix, LU-factorized basis with
// product-form eta updates, BTRAN/FTRAN pricing) running a
// bounded-variable dual simplex from a dual-feasible rest point; it
// serves every problem whose improving columns have finite bounds —
// all floorplanning subproblems — both cold and warm through
// Incremental. Problems outside that class (a negative-cost column
// with an infinite upper bound) fall back to the dense full-tableau
// two-phase primal simplex with Dantzig pricing and a Bland
// anti-cycling guard, which is also the differential-test oracle for
// the sparse kernel (build tag lpdense forces it everywhere). All
// variables must have a finite lower bound, which every floorplanning
// variable naturally has (coordinates and heights are non-negative,
// binaries live in [0,1]).
package lp

import (
	"context"
	"errors"
	"fmt"
	"math"

	"afp/internal/obs"
)

// VarID identifies a variable of a Problem.
type VarID int

// ConID identifies a constraint of a Problem.
type ConID int

// Op is a constraint relation.
type Op int

// Constraint relations.
const (
	LE Op = iota // a'x <= b
	GE           // a'x >= b
	EQ           // a'x == b
)

func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case GE:
		return ">="
	default:
		return "=="
	}
}

// Term is one coefficient of a linear expression.
type Term struct {
	Var  VarID
	Coef float64
}

// Problem is a linear program under construction. The zero value is an
// empty minimization problem ready for use.
type Problem struct {
	names []string
	lo    []float64
	hi    []float64
	obj   []float64

	conNames []string
	rows     [][]Term
	ops      []Op
	rhs      []float64

	maximize bool

	// comp caches the sparse (CSC+CSR) form of the constraint matrix;
	// version is bumped by every structural edit and compVersion records
	// the version comp was built at. Clones share the immutable comp.
	comp        *compiled
	compVersion uint64
	version     uint64
}

// NewProblem returns an empty minimization problem.
func NewProblem() *Problem { return &Problem{} }

// SetMaximize switches the objective sense to maximization (the default is
// minimization).
func (p *Problem) SetMaximize(max bool) { p.maximize = max }

// Maximizing reports the current objective sense.
func (p *Problem) Maximizing() bool { return p.maximize }

// AddVariable adds a variable with bounds [lo, hi] and objective
// coefficient cost, returning its identifier. lo must be finite; hi may be
// math.Inf(1).
func (p *Problem) AddVariable(name string, lo, hi, cost float64) VarID {
	if math.IsInf(lo, 0) || math.IsNaN(lo) {
		panic(fmt.Sprintf("lp: variable %q requires a finite lower bound, got %v", name, lo))
	}
	if hi < lo {
		panic(fmt.Sprintf("lp: variable %q has empty bound range [%v, %v]", name, lo, hi))
	}
	p.names = append(p.names, name)
	p.lo = append(p.lo, lo)
	p.hi = append(p.hi, hi)
	p.obj = append(p.obj, cost)
	p.version++
	return VarID(len(p.names) - 1)
}

// NumVariables returns the number of variables added so far.
func (p *Problem) NumVariables() int { return len(p.names) }

// NumConstraints returns the number of constraints added so far.
func (p *Problem) NumConstraints() int { return len(p.rows) }

// VarName returns the name of variable v.
func (p *Problem) VarName(v VarID) string { return p.names[v] }

// Bounds returns the bounds of variable v.
func (p *Problem) Bounds(v VarID) (lo, hi float64) { return p.lo[v], p.hi[v] }

// SetBounds replaces the bounds of variable v. It is used by the
// branch-and-bound layer to fix binaries along a branch.
func (p *Problem) SetBounds(v VarID, lo, hi float64) {
	if math.IsInf(lo, 0) || math.IsNaN(lo) || hi < lo {
		panic(fmt.Sprintf("lp: invalid bounds [%v, %v] for %q", lo, hi, p.names[v]))
	}
	p.lo[v] = lo
	p.hi[v] = hi
}

// SetObjectiveCoef replaces the objective coefficient of variable v.
func (p *Problem) SetObjectiveCoef(v VarID, cost float64) { p.obj[v] = cost }

// ObjectiveCoef returns the objective coefficient of variable v.
func (p *Problem) ObjectiveCoef(v VarID) float64 { return p.obj[v] }

// AddConstraint adds the constraint sum(terms) op rhs and returns its
// identifier. Terms mentioning the same variable are accumulated.
func (p *Problem) AddConstraint(name string, terms []Term, op Op, rhs float64) ConID {
	for _, t := range terms {
		if int(t.Var) < 0 || int(t.Var) >= len(p.names) {
			panic(fmt.Sprintf("lp: constraint %q references unknown variable %d", name, t.Var))
		}
	}
	own := make([]Term, len(terms))
	copy(own, terms)
	p.conNames = append(p.conNames, name)
	p.rows = append(p.rows, own)
	p.ops = append(p.ops, op)
	p.rhs = append(p.rhs, rhs)
	p.version++
	return ConID(len(p.rows) - 1)
}

// Constraint returns the name, terms, relation and right-hand side of
// constraint c. The terms slice is a copy; mutating it does not affect
// the problem.
func (p *Problem) Constraint(c ConID) (name string, terms []Term, op Op, rhs float64) {
	return p.conNames[c], append([]Term(nil), p.rows[c]...), p.ops[c], p.rhs[c]
}

// SetConstraint replaces the terms, relation and right-hand side of an
// existing constraint, keeping its name. The model auditor's tests use
// it to corrupt well-formed models in controlled ways.
func (p *Problem) SetConstraint(c ConID, terms []Term, op Op, rhs float64) {
	for _, t := range terms {
		if int(t.Var) < 0 || int(t.Var) >= len(p.names) {
			panic(fmt.Sprintf("lp: constraint %q references unknown variable %d", p.conNames[c], t.Var))
		}
	}
	p.rows[c] = append([]Term(nil), terms...)
	p.ops[c] = op
	p.rhs[c] = rhs
	p.version++
}

// Clone returns a deep copy of the problem. Branch-and-bound nodes clone
// the relaxation before tightening variable bounds.
func (p *Problem) Clone() *Problem {
	q := &Problem{
		names:    append([]string(nil), p.names...),
		lo:       append([]float64(nil), p.lo...),
		hi:       append([]float64(nil), p.hi...),
		obj:      append([]float64(nil), p.obj...),
		conNames: append([]string(nil), p.conNames...),
		ops:      append([]Op(nil), p.ops...),
		rhs:      append([]float64(nil), p.rhs...),
		maximize: p.maximize,

		// The compiled matrix is immutable, so the clone shares it until
		// either side makes a structural edit (which bumps version and
		// recompiles lazily on that side only).
		comp:        p.comp,
		compVersion: p.compVersion,
		version:     p.version,
	}
	q.rows = make([][]Term, len(p.rows))
	for i, r := range p.rows {
		q.rows[i] = append([]Term(nil), r...)
	}
	return q
}

// Infeasibilities evaluates every constraint and variable bound at the
// point x (one value per variable, in AddVariable order) and returns a
// human-readable description of each violation exceeding tol. It returns
// nil when x is feasible within tol. Property tests use it to check that
// candidate assignments (e.g. branch-and-bound warm-start hints) satisfy
// the model they are offered to.
func (p *Problem) Infeasibilities(x []float64, tol float64) []string {
	var out []string
	if len(x) != len(p.names) {
		return []string{fmt.Sprintf("lp: point has %d values for %d variables", len(x), len(p.names))}
	}
	for v, xv := range x {
		if xv < p.lo[v]-tol {
			out = append(out, fmt.Sprintf("%s = %.9g below lower bound %.9g", p.names[v], xv, p.lo[v]))
		}
		if xv > p.hi[v]+tol {
			out = append(out, fmt.Sprintf("%s = %.9g above upper bound %.9g", p.names[v], xv, p.hi[v]))
		}
	}
	for i, row := range p.rows {
		var lhs float64
		for _, t := range row {
			lhs += t.Coef * x[t.Var]
		}
		viol := 0.0
		switch p.ops[i] {
		case LE:
			viol = lhs - p.rhs[i]
		case GE:
			viol = p.rhs[i] - lhs
		default:
			viol = math.Abs(lhs - p.rhs[i])
		}
		if viol > tol {
			out = append(out, fmt.Sprintf("%s: %.9g %s %.9g violated by %.3g",
				p.conNames[i], lhs, p.ops[i], p.rhs[i], viol))
		}
	}
	return out
}

// Status reports the outcome of a solve.
type Status int

// Solve outcomes.
const (
	StatusOptimal Status = iota
	StatusInfeasible
	StatusUnbounded
	StatusIterLimit
)

func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	default:
		return "iteration-limit"
	}
}

// Solution is the result of solving a Problem.
type Solution struct {
	Status     Status
	Objective  float64   // in the problem's original sense
	X          []float64 // one value per variable, in AddVariable order
	Iterations int       // simplex pivots performed (both phases)

	// Phase1Iterations is the share of Iterations spent restoring
	// feasibility (zero for warm-started dual-simplex solves).
	Phase1Iterations int
	// DegeneratePivots counts pivots with zero step length.
	DegeneratePivots int
	// BoundFlips counts pivots where the entering variable traversed its
	// whole range without a basis change.
	BoundFlips int
	// DualPivots counts dual simplex pivots (all of Iterations on the
	// sparse revised path; zero on the dense primal path).
	DualPivots int
	// Refactorizations counts basis LU refactorizations performed by the
	// sparse revised simplex during this solve.
	Refactorizations int

	// Duals holds one dual value per constraint (in AddConstraint order)
	// and ReducedCosts one reduced cost per variable, both in the
	// problem's own objective sense and populated only at StatusOptimal.
	// They satisfy strong duality with variable bounds:
	//
	//	Objective == sum_i Duals[i]*rhs_i + sum_j ReducedCosts[j]*X[j]
	//
	// and complementary slackness: a nonzero dual implies a tight row, a
	// nonzero reduced cost implies the variable rests on a bound.
	Duals        []float64
	ReducedCosts []float64
}

// Value returns the solution value of variable v.
func (s *Solution) Value(v VarID) float64 { return s.X[v] }

// Options tunes the solver.
type Options struct {
	// MaxIter bounds the total number of simplex pivots (both phases).
	// Zero means the default of 50000.
	MaxIter int
	// Obs receives one lp.solve event per solve with iteration, pivot and
	// phase-timing telemetry. Nil (the default) disables instrumentation
	// at no cost.
	Obs *obs.Observer
}

// ErrBadModel is returned for structurally invalid problems (no variables).
var ErrBadModel = errors.New("lp: problem has no variables")

// Solve solves the problem with default options.
func (p *Problem) Solve() (*Solution, error) { return p.SolveOpts(Options{}) }

// SolveOpts solves the problem with the given options. The Problem itself
// is not modified.
func (p *Problem) SolveOpts(opt Options) (*Solution, error) {
	//vet:allow ctxsolve -- context-free convenience bridge to SolveCtx
	return p.SolveCtx(context.Background(), opt)
}

// SolveCtx is SolveOpts under a context: the simplex loop polls
// ctx.Done() every few pivots and aborts with ctx.Err() when the context
// is cancelled or its deadline passes. A context without a Done channel
// (context.Background()) costs nothing on the pivot path.
//
// Problems whose improving columns all have finite bounds — every
// floorplanning subproblem — are solved by the sparse revised dual
// simplex; the rest (and all solves under the lpdense build tag) go
// through the dense two-phase primal simplex.
func (p *Problem) SolveCtx(ctx context.Context, opt Options) (*Solution, error) {
	if len(p.names) == 0 {
		return nil, ErrBadModel
	}
	if sparseSolvable(p) {
		if sol, err, ok := solveSparse(ctx, p, opt); ok {
			return sol, err
		}
	}
	return solveSimplex(ctx, p, opt)
}
