package lp

import (
	"math"
	"strings"
	"testing"
)

func TestPropagateBoundsLE(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", 0, 10, 1)
	y := p.AddVariable("y", 0, 10, 1)
	p.AddConstraint("cap", []Term{{Var: x, Coef: 1}, {Var: y, Coef: 1}}, LE, 4)
	tightened, fixed := p.PropagateBounds(nil, 0)
	if tightened != 2 || fixed != 0 {
		t.Fatalf("tightened, fixed = %d, %d, want 2, 0", tightened, fixed)
	}
	for _, v := range []VarID{x, y} {
		if _, hi := p.Bounds(v); math.Abs(hi-4) > 1e-9 {
			t.Fatalf("%s hi = %v, want 4", p.VarName(v), hi)
		}
	}
}

func TestPropagateBoundsIntegerRounding(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", 0, 10, 1)
	p.AddConstraint("half", []Term{{Var: x, Coef: 2}}, LE, 5)
	if _, _ = p.PropagateBounds([]VarID{x}, 0); true {
		if _, hi := p.Bounds(x); hi != 2 {
			t.Fatalf("integer hi = %v, want floor(2.5) = 2", hi)
		}
	}
}

func TestPropagateBoundsGEAndEQ(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", 0, 10, 1)
	y := p.AddVariable("y", 0, 1, 1)
	p.AddConstraint("floor", []Term{{Var: x, Coef: 1}}, GE, 3)
	z := p.AddVariable("z", 0, 10, 1)
	p.AddConstraint("sum", []Term{{Var: z, Coef: 1}, {Var: y, Coef: 1}}, EQ, 4)
	p.PropagateBounds(nil, 0)
	if lo, _ := p.Bounds(x); math.Abs(lo-3) > 1e-9 {
		t.Fatalf("x lo = %v, want 3", lo)
	}
	// z = 4 - y with y in [0, 1], so z in [3, 4].
	if lo, hi := p.Bounds(z); math.Abs(lo-3) > 1e-9 || math.Abs(hi-4) > 1e-9 {
		t.Fatalf("z bounds = [%v, %v], want [3, 4]", lo, hi)
	}
}

func TestPropagateBoundsFixesBinary(t *testing.T) {
	p := NewProblem()
	z := p.AddVariable("z", 0, 1, 1)
	p.AddConstraint("off", []Term{{Var: z, Coef: 1}}, LE, 0.4)
	tightened, fixed := p.PropagateBounds([]VarID{z}, 0)
	if fixed != 1 {
		t.Fatalf("fixed = %d (tightened %d), want 1", fixed, tightened)
	}
	if lo, hi := p.Bounds(z); lo != 0 || hi != 0 {
		t.Fatalf("z bounds = [%v, %v], want [0, 0]", lo, hi)
	}
}

func TestPropagateBoundsInfiniteUpperBound(t *testing.T) {
	// y has no upper bound; the row x + y <= 8 still bounds y through x's
	// lower bound, and x through nothing (y's minimum is finite: 0).
	p := NewProblem()
	x := p.AddVariable("x", 2, math.Inf(1), 1)
	y := p.AddVariable("y", 0, math.Inf(1), 1)
	p.AddConstraint("cap", []Term{{Var: x, Coef: 1}, {Var: y, Coef: 1}}, LE, 8)
	p.PropagateBounds(nil, 0)
	if _, hi := p.Bounds(y); math.Abs(hi-6) > 1e-9 {
		t.Fatalf("y hi = %v, want 6", hi)
	}
	if _, hi := p.Bounds(x); math.Abs(hi-8) > 1e-9 {
		t.Fatalf("x hi = %v, want 8", hi)
	}
}

func TestPropagateBoundsClampsInfeasible(t *testing.T) {
	// x >= 5 and x <= 3 together are infeasible; propagation must clamp
	// the derived bound instead of inverting lo > hi (SetBounds panics on
	// inverted bounds, and branch-and-bound relies on that invariant).
	p := NewProblem()
	x := p.AddVariable("x", 0, 3, 1)
	p.AddConstraint("floor", []Term{{Var: x, Coef: 1}}, GE, 5)
	p.PropagateBounds(nil, 0)
	lo, hi := p.Bounds(x)
	if lo > hi {
		t.Fatalf("bounds inverted: [%v, %v]", lo, hi)
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestPropagateBoundsPreservesOptimum(t *testing.T) {
	// A small LP solved before and after propagation must agree.
	build := func() *Problem {
		p := NewProblem()
		x := p.AddVariable("x", 0, 100, -3)
		y := p.AddVariable("y", 0, 100, -2)
		p.AddConstraint("c1", []Term{{Var: x, Coef: 1}, {Var: y, Coef: 1}}, LE, 4)
		p.AddConstraint("c2", []Term{{Var: x, Coef: 1}, {Var: y, Coef: 3}}, LE, 6)
		return p
	}
	a := build()
	ra, err := a.Solve()
	if err != nil {
		t.Fatal(err)
	}
	b := build()
	b.PropagateBounds(nil, 0)
	rb, err := b.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if ra.Status != StatusOptimal || rb.Status != StatusOptimal {
		t.Fatalf("status %v / %v", ra.Status, rb.Status)
	}
	if math.Abs(ra.Objective-rb.Objective) > 1e-9 {
		t.Fatalf("objective changed by propagation: %v vs %v", ra.Objective, rb.Objective)
	}
}

func TestInfeasibilities(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", 0, 5, 1)
	y := p.AddVariable("y", 0, 5, 1)
	p.AddConstraint("cap", []Term{{Var: x, Coef: 1}, {Var: y, Coef: 1}}, LE, 6)
	p.AddConstraint("eq", []Term{{Var: x, Coef: 1}}, EQ, 2)

	if v := p.Infeasibilities([]float64{2, 3}, 1e-9); v != nil {
		t.Fatalf("feasible point reported violations: %v", v)
	}
	v := p.Infeasibilities([]float64{6, 2}, 1e-9)
	if len(v) != 3 { // x above hi, cap violated, eq violated
		t.Fatalf("violations = %v, want 3 entries", v)
	}
	joined := strings.Join(v, "\n")
	for _, want := range []string{"above upper bound", "cap", "eq"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("violations %q missing %q", joined, want)
		}
	}
	if v := p.Infeasibilities([]float64{2}, 1e-9); len(v) != 1 {
		t.Fatalf("short point: %v", v)
	}
}
