//go:build !lpdense

package lp

// forceDense routes every cold solve through the dense two-phase
// tableau simplex when the lpdense build tag is set. The differential
// tests use the dense solver as the oracle for the sparse revised
// simplex; the tag lets a whole build opt out of the sparse path when
// chasing a suspected kernel bug.
const forceDense = false
