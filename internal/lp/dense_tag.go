//go:build lpdense

package lp

// forceDense: the lpdense build tag pins every cold solve to the dense
// two-phase tableau simplex (the differential-test oracle).
const forceDense = true
