package lp

import (
	"math"
	"math/rand"
	"testing"
)

// buildBoxLP creates a random box-bounded LP plus a feasible anchor point.
func buildBoxLP(rng *rand.Rand) *Problem {
	nv := 2 + rng.Intn(5)
	p := NewProblem()
	point := make([]float64, nv)
	vars := make([]VarID, nv)
	for j := 0; j < nv; j++ {
		lo := float64(rng.Intn(5)) - 2
		hi := lo + 1 + float64(rng.Intn(8))
		vars[j] = p.AddVariable("v", lo, hi, float64(rng.Intn(9)-4))
		point[j] = lo + (hi-lo)*rng.Float64()
	}
	for i := 0; i < 1+rng.Intn(5); i++ {
		var terms []Term
		lhs := 0.0
		for j := 0; j < nv; j++ {
			c := float64(rng.Intn(7) - 3)
			if c == 0 {
				continue
			}
			terms = append(terms, Term{vars[j], c})
			lhs += c * point[j]
		}
		if len(terms) == 0 {
			continue
		}
		switch rng.Intn(3) {
		case 0:
			p.AddConstraint("c", terms, LE, lhs+rng.Float64()*3)
		case 1:
			p.AddConstraint("c", terms, GE, lhs-rng.Float64()*3)
		default:
			p.AddConstraint("c", terms, EQ, lhs)
		}
	}
	if rng.Intn(2) == 0 {
		p.SetMaximize(true)
	}
	return p
}

func TestIncrementalMatchesColdSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 150; trial++ {
		p := buildBoxLP(rng)
		inc, err := NewIncremental(p, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		warm, err := inc.Solve()
		if err != nil {
			t.Fatal(err)
		}
		cold, err := p.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if (warm.Status == StatusOptimal) != (cold.Status == StatusOptimal) {
			t.Fatalf("trial %d: warm %v vs cold %v", trial, warm.Status, cold.Status)
		}
		if warm.Status != StatusOptimal {
			continue
		}
		if math.Abs(warm.Objective-cold.Objective) > 1e-6*(1+math.Abs(cold.Objective)) {
			t.Fatalf("trial %d: warm obj %v != cold %v", trial, warm.Objective, cold.Objective)
		}
		if v := p.MaxViolation(warm.X); v > 1e-6 {
			t.Fatalf("trial %d: warm point violates by %v", trial, v)
		}
	}
}

// The heart of the warm-start claim: after random bound tightenings and
// relaxations, the incremental solver must keep agreeing with cold
// re-solves.
func TestIncrementalBoundChangeSequences(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	for trial := 0; trial < 60; trial++ {
		p := buildBoxLP(rng)
		inc, err := NewIncremental(p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Remember original bounds for re-widening.
		nv := p.NumVariables()
		origLo := make([]float64, nv)
		origHi := make([]float64, nv)
		for j := 0; j < nv; j++ {
			origLo[j], origHi[j] = p.Bounds(VarID(j))
		}
		for step := 0; step < 12; step++ {
			j := VarID(rng.Intn(nv))
			lo, hi := origLo[j], origHi[j]
			switch rng.Intn(3) {
			case 0: // fix near a bound
				if rng.Intn(2) == 0 {
					hi = lo
				} else {
					lo = hi
				}
			case 1: // tighten to a random subrange
				a := lo + (hi-lo)*rng.Float64()
				b := a + (hi-a)*rng.Float64()
				lo, hi = a, b
			default: // restore
			}
			inc.SetBounds(j, lo, hi)
			p.SetBounds(j, lo, hi)

			warm, err := inc.Solve()
			if err != nil {
				t.Fatal(err)
			}
			cold, err := p.Solve()
			if err != nil {
				t.Fatal(err)
			}
			wOpt := warm.Status == StatusOptimal
			cOpt := cold.Status == StatusOptimal
			if wOpt != cOpt {
				t.Fatalf("trial %d step %d: warm %v vs cold %v", trial, step, warm.Status, cold.Status)
			}
			if !wOpt {
				continue
			}
			if math.Abs(warm.Objective-cold.Objective) > 1e-6*(1+math.Abs(cold.Objective)) {
				t.Fatalf("trial %d step %d: warm %v != cold %v", trial, step, warm.Objective, cold.Objective)
			}
			if v := p.MaxViolation(warm.X); v > 1e-6 {
				t.Fatalf("trial %d step %d: violation %v", trial, step, v)
			}
		}
	}
}

func TestIncrementalRejectsUnboundedColumns(t *testing.T) {
	p := NewProblem()
	p.AddVariable("x", 0, math.Inf(1), -1) // improving direction unbounded
	if _, err := NewIncremental(p, Options{}); err == nil {
		t.Fatal("expected ErrUnboundedColumn")
	}
}

func TestIncrementalInfeasibleAfterFixing(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", 0, 4, 1)
	y := p.AddVariable("y", 0, 4, 1)
	p.AddConstraint("sum", []Term{{x, 1}, {y, 1}}, GE, 6)
	inc, err := NewIncremental(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := inc.Solve()
	if err != nil || sol.Status != StatusOptimal {
		t.Fatalf("initial solve: %v %v", sol.Status, err)
	}
	// Fixing both variables low makes the GE row unreachable.
	inc.SetBounds(x, 0, 1)
	inc.SetBounds(y, 0, 1)
	sol, err = inc.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusInfeasible {
		t.Fatalf("status %v, want infeasible", sol.Status)
	}
	// Relaxing again restores optimality.
	inc.SetBounds(x, 0, 4)
	inc.SetBounds(y, 0, 4)
	sol, err = inc.Solve()
	if err != nil || sol.Status != StatusOptimal {
		t.Fatalf("after relax: %v %v", sol.Status, err)
	}
	if math.Abs(sol.Objective-6) > 1e-7 {
		t.Fatalf("objective %v, want 6", sol.Objective)
	}
}

func TestIncrementalWarmIterationsShrink(t *testing.T) {
	// A medium LP: the first solve does real work, a tiny bound nudge
	// should re-solve in far fewer pivots.
	rng := rand.New(rand.NewSource(7))
	p := NewProblem()
	vars := make([]VarID, 30)
	for j := range vars {
		vars[j] = p.AddVariable("v", 0, 10, float64(rng.Intn(9)-4))
	}
	for i := 0; i < 40; i++ {
		var terms []Term
		for j := range vars {
			if rng.Intn(3) == 0 {
				terms = append(terms, Term{vars[j], float64(rng.Intn(7) - 3)})
			}
		}
		if len(terms) == 0 {
			continue
		}
		p.AddConstraint("c", terms, LE, float64(5+rng.Intn(20)))
	}
	inc, err := NewIncremental(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	first, err := inc.Solve()
	if err != nil || first.Status != StatusOptimal {
		t.Fatalf("first solve %v %v", first.Status, err)
	}
	inc.SetBounds(vars[0], 1, 10) // small tightening
	second, err := inc.Solve()
	if err != nil || second.Status != StatusOptimal {
		t.Fatalf("second solve %v %v", second.Status, err)
	}
	if first.Iterations > 0 && second.Iterations > first.Iterations {
		t.Fatalf("warm re-solve took %d pivots vs %d initially", second.Iterations, first.Iterations)
	}
}
