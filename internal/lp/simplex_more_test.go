package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Box LP with no constraints: the optimum sits on the bounds selected by
// the cost signs.
func TestBoxLPProperty(t *testing.T) {
	f := func(costs [5]int8, widths [5]uint8) bool {
		p := NewProblem()
		want := 0.0
		var vars []VarID
		for i := 0; i < 5; i++ {
			lo := float64(i) - 2
			hi := lo + float64(widths[i]%10)
			c := float64(costs[i])
			vars = append(vars, p.AddVariable("v", lo, hi, c))
			if c >= 0 {
				want += c * lo
			} else {
				want += c * hi
			}
		}
		sol, err := p.Solve()
		if err != nil || sol.Status != StatusOptimal {
			return false
		}
		return math.Abs(sol.Objective-want) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// 2-variable LPs cross-checked against explicit vertex enumeration: the
// optimum of a bounded feasible LP lies at a vertex of the polygon formed
// by constraint and bound lines.
func TestTwoVarVertexEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 200; trial++ {
		p := NewProblem()
		loX, hiX := 0.0, float64(1+rng.Intn(10))
		loY, hiY := 0.0, float64(1+rng.Intn(10))
		cx := float64(rng.Intn(11) - 5)
		cy := float64(rng.Intn(11) - 5)
		x := p.AddVariable("x", loX, hiX, cx)
		y := p.AddVariable("y", loY, hiY, cy)

		type line struct{ a, b, c float64 } // a*x + b*y <= c
		var lines []line
		nc := rng.Intn(4)
		// One shared anchor point inside the box keeps the whole system
		// feasible by construction.
		px := loX + rng.Float64()*(hiX-loX)
		py := loY + rng.Float64()*(hiY-loY)
		for i := 0; i < nc; i++ {
			a := float64(rng.Intn(7) - 3)
			b := float64(rng.Intn(7) - 3)
			if a == 0 && b == 0 {
				continue
			}
			c := a*px + b*py + rng.Float64()*4
			lines = append(lines, line{a, b, c})
			p.AddConstraint("c", []Term{{x, a}, {y, b}}, LE, c)
		}

		sol, err := p.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != StatusOptimal {
			t.Fatalf("trial %d: status %v for feasible-by-construction LP", trial, sol.Status)
		}

		// Enumerate candidate vertices: intersections of all pairs of
		// boundary lines (constraints + 4 box sides).
		all := append([]line(nil), lines...)
		all = append(all,
			line{1, 0, hiX}, line{-1, 0, -loX},
			line{0, 1, hiY}, line{0, -1, -loY},
		)
		feasible := func(px, py float64) bool {
			if px < loX-1e-7 || px > hiX+1e-7 || py < loY-1e-7 || py > hiY+1e-7 {
				return false
			}
			for _, l := range lines {
				if l.a*px+l.b*py > l.c+1e-7 {
					return false
				}
			}
			return true
		}
		best := math.Inf(1)
		for i := 0; i < len(all); i++ {
			for j := i + 1; j < len(all); j++ {
				det := all[i].a*all[j].b - all[j].a*all[i].b
				if math.Abs(det) < 1e-9 {
					continue
				}
				px := (all[i].c*all[j].b - all[j].c*all[i].b) / det
				py := (all[i].a*all[j].c - all[j].a*all[i].c) / det
				if feasible(px, py) {
					if v := cx*px + cy*py; v < best {
						best = v
					}
				}
			}
		}
		if math.IsInf(best, 1) {
			// No vertex found (degenerate); skip comparison.
			continue
		}
		if sol.Objective > best+1e-6 {
			t.Fatalf("trial %d: simplex %v worse than vertex optimum %v", trial, sol.Objective, best)
		}
		if sol.Objective < best-1e-6 {
			t.Fatalf("trial %d: simplex %v better than vertex optimum %v (infeasible?) viol=%v",
				trial, sol.Objective, best, p.MaxViolation(sol.X))
		}
	}
}

func TestMaximizeWithPhase1(t *testing.T) {
	// max x + y s.t. x + y >= 2, x + 2y <= 10, x,y in [0, 6].
	// Optimum pushes to the x+2y boundary: x=6, y=2 -> 8.
	p := NewProblem()
	p.SetMaximize(true)
	x := p.AddVariable("x", 0, 6, 1)
	y := p.AddVariable("y", 0, 6, 1)
	p.AddConstraint("lo", []Term{{x, 1}, {y, 1}}, GE, 2)
	p.AddConstraint("hi", []Term{{x, 1}, {y, 2}}, LE, 10)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	requireStatus(t, sol, StatusOptimal)
	almostEq(t, sol.Objective, 8, 1e-7, "objective")
}

func TestAllEqualitySquareSystem(t *testing.T) {
	// x + y = 5, x - y = 1 -> x=3, y=2; objective irrelevant (unique point).
	p := NewProblem()
	x := p.AddVariable("x", -10, 10, 7)
	y := p.AddVariable("y", -10, 10, -3)
	p.AddConstraint("s", []Term{{x, 1}, {y, 1}}, EQ, 5)
	p.AddConstraint("d", []Term{{x, 1}, {y, -1}}, EQ, 1)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	requireStatus(t, sol, StatusOptimal)
	almostEq(t, sol.Value(x), 3, 1e-7, "x")
	almostEq(t, sol.Value(y), 2, 1e-7, "y")
}

func TestResidualAndMaxViolation(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", 0, 10, 1)
	le := p.AddConstraint("le", []Term{{x, 2}}, LE, 6)
	ge := p.AddConstraint("ge", []Term{{x, 1}}, GE, 2)
	eq := p.AddConstraint("eq", []Term{{x, 1}}, EQ, 3)
	pt := []float64{4}
	if r := p.Residual(le, pt); math.Abs(r-2) > 1e-12 { // 8 <= 6 violated by 2
		t.Fatalf("LE residual = %v", r)
	}
	if r := p.Residual(ge, pt); math.Abs(r-(-2)) > 1e-12 { // satisfied by slack 2
		t.Fatalf("GE residual = %v", r)
	}
	if r := p.Residual(eq, pt); math.Abs(r-1) > 1e-12 {
		t.Fatalf("EQ residual = %v", r)
	}
	if v := p.MaxViolation(pt); math.Abs(v-2) > 1e-12 {
		t.Fatalf("max violation = %v", v)
	}
	if v := p.MaxViolation([]float64{12}); math.Abs(v-18) > 1e-12 { // 2x=24 > 6 by 18, bound by 2
		t.Fatalf("bound violation = %v", v)
	}
}

func TestStressManyBoundFlips(t *testing.T) {
	// A problem engineered so the optimum has most variables at their
	// upper bound, exercising the bound-flip path heavily: min -sum(x_i)
	// s.t. sum(x_i) <= n-0.5, x_i in [0, 1].
	const n = 40
	p := NewProblem()
	terms := make([]Term, n)
	for i := 0; i < n; i++ {
		v := p.AddVariable("x", 0, 1, -1)
		terms[i] = Term{Var: v, Coef: 1}
	}
	p.AddConstraint("cap", terms, LE, n-0.5)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	requireStatus(t, sol, StatusOptimal)
	almostEq(t, sol.Objective, -(n - 0.5), 1e-6, "objective")
	if v := p.MaxViolation(sol.X); v > 1e-7 {
		t.Fatalf("violation %v", v)
	}
}

func TestSolutionValueAccessor(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", 2, 2, 0)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Value(x) != 2 {
		t.Fatalf("Value = %v", sol.Value(x))
	}
	if p.VarName(x) != "x" {
		t.Fatalf("VarName = %q", p.VarName(x))
	}
	if lo, hi := p.Bounds(x); lo != 2 || hi != 2 {
		t.Fatalf("Bounds = %v, %v", lo, hi)
	}
	if p.NumVariables() != 1 || p.NumConstraints() != 0 {
		t.Fatal("counts wrong")
	}
	if s := p.String(); s == "" {
		t.Fatal("empty String()")
	}
}
