package lp

import "sort"

// compiled is an immutable sparse snapshot of a Problem's constraint
// matrix in both compressed-sparse-column (CSC) and compressed-sparse-row
// (CSR) form. The revised simplex needs both orientations: FTRAN and
// pricing walk columns, while the dual ratio test scatters one row of
// B^{-1}A from the rows that a nonzero of rho touches.
//
// A compiled snapshot is never mutated after construction, so clones of a
// Problem (and the per-worker solver clones of the branch-and-bound
// layer) share one instance; only structural edits — AddVariable,
// AddConstraint, SetConstraint — invalidate it. Duplicate terms for the
// same variable within a row are accumulated, matching the dense solver.
type compiled struct {
	m, n int

	// CSC: column j's entries are rowIdx/colVal[colPtr[j]:colPtr[j+1]],
	// with row indices strictly increasing within a column.
	colPtr []int32
	rowIdx []int32
	colVal []float64

	// CSR: row i's entries are colIdx/rowVal[rowPtr[i]:rowPtr[i+1]],
	// with column indices strictly increasing within a row.
	rowPtr []int32
	colIdx []int32
	rowVal []float64
}

// Compile builds (or refreshes) the cached sparse form of the constraint
// matrix. Model builders call it once after assembly so that every solver
// clone shares the snapshot instead of re-scanning []Term rows; solves
// compile lazily when the cache is missing or stale.
func (p *Problem) Compile() { p.compiled() }

func (p *Problem) compiled() *compiled {
	if p.comp != nil && p.compVersion == p.version {
		return p.comp
	}
	p.comp = buildCompiled(p)
	p.compVersion = p.version
	return p.comp
}

func buildCompiled(p *Problem) *compiled {
	n := len(p.names)
	m := len(p.rows)
	c := &compiled{m: m, n: n}

	// CSR first: accumulate duplicate terms per row, sort columns.
	acc := make([]float64, n)
	seen := make([]bool, n)
	var cols []int32
	c.rowPtr = make([]int32, m+1)
	for i, row := range p.rows {
		cols = cols[:0]
		for _, t := range row {
			j := int32(t.Var)
			if !seen[j] {
				seen[j] = true
				cols = append(cols, j)
			}
			acc[j] += t.Coef
		}
		sort.Slice(cols, func(a, b int) bool { return cols[a] < cols[b] })
		for _, j := range cols {
			if v := acc[j]; v != 0 {
				c.colIdx = append(c.colIdx, j)
				c.rowVal = append(c.rowVal, v)
			}
			acc[j] = 0
			seen[j] = false
		}
		c.rowPtr[i+1] = int32(len(c.colIdx))
	}

	// Transpose to CSC. Walking rows in order leaves each column's row
	// indices sorted.
	nnz := len(c.colIdx)
	c.colPtr = make([]int32, n+1)
	for _, j := range c.colIdx {
		c.colPtr[j+1]++
	}
	for j := 0; j < n; j++ {
		c.colPtr[j+1] += c.colPtr[j]
	}
	c.rowIdx = make([]int32, nnz)
	c.colVal = make([]float64, nnz)
	next := make([]int32, n)
	copy(next, c.colPtr[:n])
	for i := 0; i < m; i++ {
		for k := c.rowPtr[i]; k < c.rowPtr[i+1]; k++ {
			j := c.colIdx[k]
			at := next[j]
			c.rowIdx[at] = int32(i)
			c.colVal[at] = c.rowVal[k]
			next[j] = at + 1
		}
	}
	return c
}
