package lp

import (
	"context"
	"math"
	"time"

	"afp/internal/obs"
)

// Sparse revised simplex tolerances and policy knobs.
const (
	// dualLeaveTol is the primal infeasibility a basic variable must
	// exceed to be selected for leaving; it bounds the bound violation of
	// any variable at termination.
	dualLeaveTol = 1e-7
	// spikeAgreeTol guards the row/column agreement check: the pivot
	// element computed via BTRAN (alpha) and via FTRAN (spike) must match
	// or the factorization is refreshed and the pivot re-attempted.
	spikeAgreeTol = 1e-7
	// maxEtas bounds the product-form file before a refactorization.
	maxEtas = 64
	// perturbAfterDegen is the run of consecutive degenerate pivots after
	// which deterministic dual-cost perturbation kicks in (on top of the
	// earlier Bland fallback) to break cycling on massively degenerate
	// instances. Perturbations stay far below costTol and are washed out
	// by the next refactorization's exact recompute of the duals.
	perturbAfterDegen = 2000
)

// spxCore is the sparse revised dual simplex over a compiled constraint
// matrix. Columns 0..n-1 are structural (CSC columns of A); columns
// n..n+m-1 are the unit slack columns, one per row, whose bounds encode
// the row relation (LE: [0,inf), GE: (-inf,0], EQ: [0,0]).
//
// The basis is represented by an LU factorization plus a product-form
// eta file instead of a dense B^{-1}A tableau: pricing solves one BTRAN
// per pivot to scatter the leaving row, and one FTRAN for the entering
// spike. All working storage is preallocated at construction so a
// SetBounds+Solve warm cycle runs allocation-free.
type spxCore struct {
	a     *compiled
	m, n  int
	ncols int
	sign  float64   // +1 minimize, -1 maximize (internal sense is minimize)
	cost  []float64 // minimize-sense costs, slacks zero
	rhs   []float64

	lb, ub []float64  // per column
	state  []varState // per column
	xval   []float64  // resting value of every nonbasic column
	basis  []int32    // basis position -> column
	beta   []float64  // basic values, by basis position
	d      []float64  // reduced costs, maintained across pivots

	lu   luFactor
	etas etaFile

	// Preallocated per-pivot scratch.
	rho     []float64 // BTRAN of the leaving unit vector, by original row
	erow    []float64 // unit vector input to BTRAN, by basis position
	spike   []float64 // FTRAN of the entering column, by basis position
	work    []float64 // dense by original row
	alpha   []float64 // leaving row of B^{-1}A, by column; cleared per pivot
	touched []int32   // columns with nonzero alpha this pivot
	amark   []bool    // touched-membership; alpha==0 alone cannot detect it,
	// since partial sums across rows can transiently cancel to exact zero
	// and a duplicate touched entry would double the dual update

	// Counters for the current solve.
	iters        int
	degenPivots  int
	refactors    int
	degenStreak  int
	blandLeft    int
	perturbed    bool
	needRefactor bool

	done      <-chan struct{}
	cancelled bool
}

// newSpxCore builds a core over the compiled matrix with the given
// per-column data already split out by the caller.
func newSpxCore(a *compiled, sign float64, cost, rhs, lb, ub []float64) *spxCore {
	m, n := a.m, a.n
	c := &spxCore{
		a: a, m: m, n: n, ncols: n + m, sign: sign,
		cost: cost, rhs: rhs, lb: lb, ub: ub,
		state: make([]varState, n+m),
		xval:  make([]float64, n+m),
		basis: make([]int32, m),
		beta:  make([]float64, m),
		d:     make([]float64, n+m),

		rho:     make([]float64, m),
		erow:    make([]float64, m),
		spike:   make([]float64, m),
		work:    make([]float64, m),
		alpha:   make([]float64, n+m),
		touched: make([]int32, 0, n+m),
		amark:   make([]bool, n+m),
	}
	c.etas.reset()
	return c
}

// restAll places every column on a dual-feasible finite bound and
// installs the all-slack basis. Returns false when some column with a
// strictly negative cost has no finite upper bound to rest on — the
// caller falls back to the dense two-phase solver.
func (c *spxCore) restAll() bool {
	for j := 0; j < c.ncols; j++ {
		if !c.restColumn(j) {
			return false
		}
	}
	for i := 0; i < c.m; i++ {
		sj := int32(c.n + i)
		c.basis[i] = sj
		c.state[sj] = inBasis
	}
	c.needRefactor = true
	return true
}

// restColumn mirrors the dense solver's dual-feasible rest rule.
func (c *spxCore) restColumn(j int) bool {
	cj := c.cost[j]
	switch {
	case cj >= 0 && !math.IsInf(c.lb[j], -1):
		c.state[j] = atLower
		c.xval[j] = c.lb[j]
	case cj <= 0 && !math.IsInf(c.ub[j], 1):
		c.state[j] = atUpper
		c.xval[j] = c.ub[j]
	default:
		return false
	}
	return true
}

// refactor rebuilds the LU factorization of the current basis, resets
// the eta file and recomputes the reduced costs exactly. A singular
// basis falls back to the all-slack basis (which always factors).
func (c *spxCore) refactor() {
	c.refactors++
	if err := c.lu.factorBasis(c.a, c.basis, c.n); err != nil {
		// Numerically singular basis: drop it entirely and restart from
		// the all-slack basis, re-resting every displaced column. A rest
		// rule failure (negative cost, infinite upper bound on a basic
		// column) cannot happen on the paths that reach here — restAll
		// succeeded at construction — but rest at the finite lower bound
		// as a last resort rather than corrupt the state.
		for i := 0; i < c.m; i++ {
			b := c.basis[i]
			if !c.restColumn(int(b)) {
				c.state[b] = atLower
				c.xval[b] = c.lb[b]
			}
		}
		for i := 0; i < c.m; i++ {
			sj := int32(c.n + i)
			c.basis[i] = sj
			c.state[sj] = inBasis
		}
		if err := c.lu.factorBasis(c.a, c.basis, c.n); err != nil {
			panic("lp: slack basis failed to factor")
		}
	}
	c.etas.reset()
	c.computeDuals()
	c.needRefactor = false
	c.perturbed = false
}

// computeDuals refreshes d from the cost vector through the current
// factorization: y = B^{-T} c_B, d_j = c_j - y'a_j, with d == 0 on basic
// columns. The simplex prices on y via c.work (indexed by original row).
func (c *spxCore) computeDuals() {
	for i := 0; i < c.m; i++ {
		c.erow[i] = c.cost[c.basis[i]]
	}
	c.btranFull(c.erow, c.work)
	y := c.work
	for j := 0; j < c.ncols; j++ {
		if c.state[j] == inBasis {
			c.d[j] = 0
			continue
		}
		if j < c.n {
			dj := c.cost[j]
			for t := c.a.colPtr[j]; t < c.a.colPtr[j+1]; t++ {
				dj -= y[c.a.rowIdx[t]] * c.a.colVal[t]
			}
			c.d[j] = dj
		} else {
			c.d[j] = -y[j-c.n]
		}
	}
}

// computeBeta refreshes the basic values from the resting nonbasic
// point: beta = B^{-1}(rhs - N x_N).
func (c *spxCore) computeBeta() {
	copy(c.work, c.rhs)
	for j := 0; j < c.n; j++ {
		if c.state[j] == inBasis {
			continue
		}
		if v := c.xval[j]; v != 0 {
			for t := c.a.colPtr[j]; t < c.a.colPtr[j+1]; t++ {
				c.work[c.a.rowIdx[t]] -= c.a.colVal[t] * v
			}
		}
	}
	for i := 0; i < c.m; i++ {
		sj := c.n + i
		if c.state[sj] != inBasis {
			if v := c.xval[sj]; v != 0 {
				c.work[i] -= v
			}
		}
	}
	c.ftranFull(c.work, c.beta)
}

// ftranFull solves B z = v through the LU factors and the eta file.
// v (by original row) is destroyed; out is by basis position.
func (c *spxCore) ftranFull(v, out []float64) {
	c.lu.ftran(v, out)
	for e := 0; e < c.etas.count(); e++ {
		c.etas.applyFtran(e, out)
	}
}

// btranFull solves B'y = cvec through the eta file (reverse order) and
// the LU factors. cvec (by basis position) is destroyed; y is by
// original row.
func (c *spxCore) btranFull(cvec, y []float64) {
	for e := c.etas.count() - 1; e >= 0; e-- {
		c.etas.applyBtran(e, cvec)
	}
	c.lu.btran(cvec, y)
}

// scatterColumn writes column j of [A | I] into the dense work vector
// (by original row), which must be zero on entry.
func (c *spxCore) scatterColumn(j int) {
	if j < c.n {
		for t := c.a.colPtr[j]; t < c.a.colPtr[j+1]; t++ {
			c.work[c.a.rowIdx[t]] = c.a.colVal[t]
		}
	} else {
		c.work[j-c.n] = 1
	}
}

// dualLoop pivots until every basic value lies inside its box. It
// assumes beta and d are consistent with the current basis. maxIter
// bounds the pivots of this call.
func (c *spxCore) dualLoop(maxIter int) Status {
	c.iters = 0
	c.degenPivots = 0
	c.cancelled = false
	for {
		if c.iters >= maxIter {
			return StatusIterLimit
		}
		if c.done != nil && c.iters&cancelPollMask == 0 {
			select {
			case <-c.done:
				c.cancelled = true
				return StatusIterLimit
			default:
			}
		}
		if c.etas.count() >= maxEtas {
			c.refactor()
			c.computeBeta()
		}

		// Leaving choice: most violated basic variable.
		leave := -1
		viol := dualLeaveTol
		var needIncrease bool
		for i := 0; i < c.m; i++ {
			b := c.basis[i]
			if dv := c.lb[b] - c.beta[i]; dv > viol {
				viol, leave, needIncrease = dv, i, true
			}
			if dv := c.beta[i] - c.ub[b]; dv > viol {
				viol, leave, needIncrease = dv, i, false
			}
		}
		if leave < 0 {
			return StatusOptimal
		}
		switch c.dualPivot(leave, needIncrease) {
		case pivotOK:
			c.iters++
		case pivotInfeasible:
			return StatusInfeasible
		case pivotRetry:
			// Factorization was refreshed; re-price and try again.
		case pivotStuck:
			return StatusIterLimit
		}
	}
}

type pivotResult int

const (
	pivotOK pivotResult = iota
	pivotInfeasible
	pivotRetry
	pivotStuck
)

// dualPivot performs one dual simplex pivot on basis row r. The ratio
// test is the dense solver's, with the leaving row alpha = rho'A
// scattered from the CSR rows that rho touches instead of read from a
// tableau.
func (c *spxCore) dualPivot(r int, needIncrease bool) pivotResult {
	// rho = B^{-T} e_r, then alpha_j = rho'a_j over nonbasic columns.
	for i := 0; i < c.m; i++ {
		c.erow[i] = 0
	}
	c.erow[r] = 1
	c.btranFull(c.erow, c.rho)

	c.touched = c.touched[:0]
	for i := 0; i < c.m; i++ {
		ri := c.rho[i]
		if ri == 0 {
			continue
		}
		for t := c.a.rowPtr[i]; t < c.a.rowPtr[i+1]; t++ {
			j := c.a.colIdx[t]
			if c.state[j] == inBasis {
				continue
			}
			if !c.amark[j] {
				c.amark[j] = true
				c.touched = append(c.touched, j)
			}
			c.alpha[j] += ri * c.a.rowVal[t]
		}
		sj := int32(c.n + i)
		if c.state[sj] != inBasis {
			if !c.amark[sj] {
				c.amark[sj] = true
				c.touched = append(c.touched, sj)
			}
			c.alpha[sj] += ri
		}
	}

	bland := c.blandLeft > 0
	enter := int32(-1)
	bestRatio := math.Inf(1)
	bestAbs := 0.0
	for _, j := range c.touched {
		a := c.alpha[j]
		if a == 0 {
			continue
		}
		// Fixed columns (EQ slacks, B&B-fixed integers) cannot move off
		// their point, so they can neither repair the violated row nor
		// bound the dual ray; their reduced-cost sign is unconstrained
		// and admitting them corrupts the dual update.
		//vet:allow toleq -- exact fixed-column detection, bounds are set identically
		if c.lb[j] == c.ub[j] {
			continue
		}
		var ok bool
		var ratio float64
		z := c.d[j]
		if c.perturbed {
			z += perturbation(int(j), c.state[j])
		}
		if needIncrease {
			// The basic variable increases when an at-lower nonbasic with
			// alpha<0 rises, or an at-upper nonbasic with alpha>0 falls.
			if c.state[j] == atLower && a < -pivTol {
				ok, ratio = true, z/(-a)
			} else if c.state[j] == atUpper && a > pivTol {
				ok, ratio = true, (-z)/a
			}
		} else {
			if c.state[j] == atLower && a > pivTol {
				ok, ratio = true, z/a
			} else if c.state[j] == atUpper && a < -pivTol {
				ok, ratio = true, (-z)/(-a)
			}
		}
		if !ok {
			continue
		}
		if ratio < -1e-7 {
			// Numerical dual infeasibility; treat as zero ratio.
			ratio = 0
		}
		take := false
		switch {
		case bland:
			take = enter < 0 || j < enter
		case ratio < bestRatio-zeroTol:
			take = true
		case ratio <= bestRatio+zeroTol && (a > bestAbs || -a > bestAbs):
			take = true
		}
		if take {
			enter, bestRatio = j, ratio
			if bestAbs = a; a < 0 {
				bestAbs = -a
			}
		}
	}
	if enter < 0 {
		c.clearAlpha()
		return pivotInfeasible
	}
	alphaE := c.alpha[enter]

	// Entering spike via FTRAN; cross-check the pivot element computed
	// both ways and refresh the factorization on disagreement.
	for i := 0; i < c.m; i++ {
		c.work[i] = 0
	}
	c.scatterColumn(int(enter))
	c.ftranFull(c.work, c.spike)
	diff := c.spike[r] - alphaE
	if diff < 0 {
		diff = -diff
	}
	scale := alphaE
	if scale < 0 {
		scale = -scale
	}
	if diff > spikeAgreeTol*(1+scale) || c.spike[r] == 0 {
		c.clearAlpha()
		if c.etas.count() > 0 {
			c.refactor()
			c.computeBeta()
			return pivotRetry
		}
		// Fresh factors and the two pivot computations still disagree:
		// the basis is too ill-conditioned to continue safely.
		return pivotStuck
	}

	// Degeneracy bookkeeping and anti-cycling escalation.
	if bestRatio < zeroTol {
		c.degenPivots++
		c.degenStreak++
		if c.degenStreak > 200 && c.blandLeft == 0 {
			c.blandLeft = 500
		}
		if c.degenStreak > perturbAfterDegen {
			c.perturbed = true
		}
	} else {
		c.degenStreak = 0
		if c.blandLeft > 0 {
			c.blandLeft--
		}
	}

	// Dual update over the touched columns: theta_d = d_e / alpha_e.
	thetaD := c.d[enter] / alphaE
	if thetaD != 0 {
		for _, j := range c.touched {
			if j == enter || c.state[j] == inBasis {
				continue
			}
			c.d[j] -= thetaD * c.alpha[j]
		}
	}
	b := c.basis[r]
	c.d[b] = -thetaD
	c.d[enter] = 0

	// Primal update: the entering variable moves by theta_p, driving the
	// leaving basic exactly to its violated bound.
	var target float64
	if needIncrease {
		target = c.lb[b]
	} else {
		target = c.ub[b]
	}
	thetaP := (c.beta[r] - target) / c.spike[r]
	for i := 0; i < c.m; i++ {
		if i != r {
			if s := c.spike[i]; s != 0 {
				c.beta[i] -= s * thetaP
			}
		}
	}
	c.beta[r] = c.xval[enter] + thetaP

	if needIncrease {
		c.state[b] = atLower
		c.xval[b] = c.lb[b]
	} else {
		c.state[b] = atUpper
		c.xval[b] = c.ub[b]
	}
	c.state[enter] = inBasis
	c.basis[r] = enter

	c.etas.push(r, c.spike)
	c.clearAlpha()
	return pivotOK
}

func (c *spxCore) clearAlpha() {
	for _, j := range c.touched {
		c.alpha[j] = 0
		c.amark[j] = false
	}
	c.touched = c.touched[:0]
}

// perturbation is a deterministic, column-dependent dual-cost nudge in
// the dual-feasible direction, far below costTol. It only biases pivot
// selection; the next refactorization recomputes d exactly.
func perturbation(j int, st varState) float64 {
	e := 1e-10 * float64(1+j%17)
	if st == atUpper {
		return -e
	}
	return e
}

// extractX writes the primal point into x (length n), clamping tiny
// bound excursions the way the dense solver's extract does.
func (c *spxCore) extractX(x []float64) {
	for j := 0; j < c.n; j++ {
		if c.state[j] != inBasis {
			x[j] = c.xval[j]
		}
	}
	for i := 0; i < c.m; i++ {
		b := c.basis[i]
		if int(b) >= c.n {
			continue
		}
		v := c.beta[i]
		if lo := c.lb[b]; v < lo && v > lo-feasTol {
			v = lo
		}
		if hi := c.ub[b]; v > hi && v < hi+feasTol {
			v = hi
		}
		x[b] = v
	}
}

// sparseSolvable reports whether the problem admits a dual-feasible
// all-nonbasic rest: every column with a strictly negative minimize-
// sense cost needs a finite upper bound (lower bounds are always finite
// in this package).
func sparseSolvable(p *Problem) bool {
	if forceDense {
		return false
	}
	sign := 1.0
	if p.maximize {
		sign = -1
	}
	for j := range p.obj {
		if sign*p.obj[j] < 0 && math.IsInf(p.hi[j], 1) {
			return false
		}
	}
	return true
}

// solveSparse is the cold solve on the revised simplex: rest every
// column dual-feasibly, start from the all-slack basis and run the dual
// simplex to optimality. Returns ok=false when no dual-feasible rest
// exists and the caller should use the dense two-phase solver.
func solveSparse(ctx context.Context, p *Problem, opt Options) (*Solution, error, bool) {
	start := time.Now()
	a := p.compiled()
	sign := 1.0
	if p.maximize {
		sign = -1
	}
	n, m := a.n, a.m
	cost := make([]float64, n+m)
	lb := make([]float64, n+m)
	ub := make([]float64, n+m)
	rhs := make([]float64, m)
	for j := 0; j < n; j++ {
		cost[j] = sign * p.obj[j]
		lb[j] = p.lo[j]
		ub[j] = p.hi[j]
	}
	for i := 0; i < m; i++ {
		rhs[i] = p.rhs[i]
		sj := n + i
		switch p.ops[i] {
		case LE:
			lb[sj], ub[sj] = 0, math.Inf(1)
		case GE:
			lb[sj], ub[sj] = math.Inf(-1), 0
		default:
			lb[sj], ub[sj] = 0, 0
		}
	}
	c := newSpxCore(a, sign, cost, rhs, lb, ub)
	if !c.restAll() {
		return nil, nil, false
	}
	maxIter := opt.MaxIter
	if maxIter <= 0 {
		maxIter = defaultMaxIter
	}
	c.done = ctx.Done()
	if c.done != nil {
		select {
		case <-c.done:
			return nil, ctx.Err(), true
		default:
		}
	}
	c.refactor()
	c.computeBeta()
	st := c.dualLoop(maxIter)
	if c.cancelled {
		return nil, ctx.Err(), true
	}
	sol := &Solution{
		Status:           st,
		Iterations:       c.iters,
		DegeneratePivots: c.degenPivots,
		DualPivots:       c.iters,
		Refactorizations: c.refactors,
	}
	if st == StatusOptimal || st == StatusIterLimit {
		x := make([]float64, n)
		c.extractX(x)
		obj := 0.0
		for j := 0; j < n; j++ {
			obj += p.obj[j] * x[j]
		}
		sol.X = x
		sol.Objective = obj
	}
	if st == StatusOptimal {
		// Exact duals from the final basis: refresh d through the current
		// factors so pivot-to-pivot drift never reaches callers.
		c.computeDuals()
		for i := 0; i < c.m; i++ {
			c.erow[i] = c.cost[c.basis[i]]
		}
		c.btranFull(c.erow, c.work)
		duals := make([]float64, m)
		red := make([]float64, n)
		for i := 0; i < m; i++ {
			duals[i] = sign * c.work[i]
		}
		for j := 0; j < n; j++ {
			if c.state[j] != inBasis {
				red[j] = sign * c.d[j]
			}
		}
		sol.Duals = duals
		sol.ReducedCosts = red
	}
	if opt.Obs.Enabled() {
		opt.Obs.Emit(obs.Event{
			Kind: obs.KindLPSolve, Status: st.String(), Obj: sol.Objective,
			Iters: sol.Iterations, Degenerate: sol.DegeneratePivots,
			DualPivots: sol.DualPivots, Refactors: sol.Refactorizations,
			DurUS: time.Since(start).Microseconds(),
			Span:  obs.SpanID(ctx),
		})
	}
	return sol, nil, true
}
