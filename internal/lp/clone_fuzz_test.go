package lp

import (
	"math"
	"math/rand"
	"testing"
)

// flipState mirrors one variable's current bounds so a plain Problem can
// be kept in lockstep with an Incremental under random flips.
type flipState struct {
	lo, hi float64
}

// TestIncrementalFuzzBoundFlips hammers one Incremental with hundreds of
// random SetBounds flips — the exact write pattern branch and bound
// produces — and checks after every flip that the warm-started solution
// matches a fresh cold Problem.Solve within 1e-6. This is the guard for
// the per-worker basis cloning of the parallel search: each worker's
// Incremental sees an arbitrary interleaving of bound fixes and
// relaxations, and must never drift from the true optimum.
func TestIncrementalFuzzBoundFlips(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 8; trial++ {
		p := buildBoxLP(rng)
		inc, err := NewIncremental(p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		nv := p.NumVariables()
		orig := make([]flipState, nv)
		cur := make([]flipState, nv)
		for j := 0; j < nv; j++ {
			lo, hi := p.Bounds(VarID(j))
			orig[j] = flipState{lo, hi}
			cur[j] = orig[j]
		}
		for flip := 0; flip < 300; flip++ {
			j := rng.Intn(nv)
			lo, hi := orig[j].lo, orig[j].hi
			switch rng.Intn(4) {
			case 0: // fix to lower (a "binary to 0" branch)
				hi = lo
			case 1: // fix to upper (a "binary to 1" branch)
				lo = hi
			case 2: // tighten to a random subrange
				a := lo + (hi-lo)*rng.Float64()
				b := a + (hi-a)*rng.Float64()
				lo, hi = a, b
			default: // backtrack: restore the root box
			}
			cur[j] = flipState{lo, hi}
			inc.SetBounds(VarID(j), lo, hi)
			p.SetBounds(VarID(j), lo, hi)

			// Solving after every flip is too slow for 300 flips x 8 trials;
			// check at irregular strides so solved states still cover the
			// whole flip history.
			if flip%7 != 0 {
				continue
			}
			compareWarmCold(t, trial, flip, inc, p)
		}
	}
}

// TestIncrementalCloneIndependence clones a warmed solver mid-sequence
// and verifies (a) the clone immediately agrees with a cold solve, and
// (b) further flips on either side never leak into the other — the
// property the per-worker bases of the parallel branch and bound rely
// on.
func TestIncrementalCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	for trial := 0; trial < 20; trial++ {
		p := buildBoxLP(rng)
		inc, err := NewIncremental(p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := inc.Solve(); err != nil {
			t.Fatal(err)
		}
		nv := p.NumVariables()

		// Warm the original with a few flips, then clone.
		for k := 0; k < 5; k++ {
			j := VarID(rng.Intn(nv))
			lo, hi := p.Bounds(j)
			mid := lo + (hi-lo)*rng.Float64()
			inc.SetBounds(j, lo, mid)
			p.SetBounds(j, lo, mid)
			if _, err := inc.Solve(); err != nil {
				t.Fatal(err)
			}
		}
		clone := inc.Clone()
		cloneP := p.Clone() // bounds snapshot the clone should keep matching

		// Diverge: mutate only the original.
		for k := 0; k < 6; k++ {
			j := VarID(rng.Intn(nv))
			lo, hi := cloneP.Bounds(j)
			inc.SetBounds(j, lo, lo+(hi-lo)*rng.Float64())
			if _, err := inc.Solve(); err != nil {
				t.Fatal(err)
			}
		}
		// The clone must still solve its own (pre-divergence) bounds state.
		compareWarmCold(t, trial, -1, clone, cloneP)

		// And mutating the clone must not disturb the original: snapshot the
		// original's answer, flip the clone, re-check the original.
		before, err := inc.Solve()
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 4; k++ {
			j := VarID(rng.Intn(nv))
			lo, hi := cloneP.Bounds(j)
			clone.SetBounds(j, lo+(hi-lo)*rng.Float64()/2, hi)
			if _, err := clone.Solve(); err != nil {
				t.Fatal(err)
			}
		}
		after, err := inc.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if before.Status != after.Status {
			t.Fatalf("trial %d: clone mutation changed original status %v -> %v", trial, before.Status, after.Status)
		}
		if before.Status == StatusOptimal && math.Abs(before.Objective-after.Objective) > 1e-9 {
			t.Fatalf("trial %d: clone mutation changed original objective %v -> %v", trial, before.Objective, after.Objective)
		}
	}
}

// compareWarmCold solves both sides and requires agreement on status and
// (at optimality) objective within 1e-6, plus primal feasibility of the
// warm point.
func compareWarmCold(t *testing.T, trial, flip int, inc *Incremental, p *Problem) {
	t.Helper()
	warm, err := inc.Solve()
	if err != nil {
		t.Fatalf("trial %d flip %d: warm solve: %v", trial, flip, err)
	}
	cold, err := p.Solve()
	if err != nil {
		t.Fatalf("trial %d flip %d: cold solve: %v", trial, flip, err)
	}
	wOpt := warm.Status == StatusOptimal
	cOpt := cold.Status == StatusOptimal
	if wOpt != cOpt {
		t.Fatalf("trial %d flip %d: warm %v vs cold %v", trial, flip, warm.Status, cold.Status)
	}
	if !wOpt {
		return
	}
	if math.Abs(warm.Objective-cold.Objective) > 1e-6*(1+math.Abs(cold.Objective)) {
		t.Fatalf("trial %d flip %d: warm obj %v != cold %v", trial, flip, warm.Objective, cold.Objective)
	}
	if v := p.MaxViolation(warm.X); v > 1e-6 {
		t.Fatalf("trial %d flip %d: warm point violates by %v", trial, flip, v)
	}
}
