package lp

import (
	"math"
	"math/rand"
	"testing"
)

func requireStatus(t *testing.T, sol *Solution, want Status) {
	t.Helper()
	if sol.Status != want {
		t.Fatalf("status = %v, want %v (sol=%+v)", sol.Status, want, sol)
	}
}

func almostEq(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s = %v, want %v (tol %v)", what, got, want, tol)
	}
}

// Classic 2-variable LP with a known optimum.
// max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18, x,y >= 0.
// Optimum (2, 6) with objective 36.
func TestSolveTextbookMax(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", 0, math.Inf(1), 3)
	y := p.AddVariable("y", 0, math.Inf(1), 5)
	p.SetMaximize(true)
	p.AddConstraint("c1", []Term{{x, 1}}, LE, 4)
	p.AddConstraint("c2", []Term{{y, 2}}, LE, 12)
	p.AddConstraint("c3", []Term{{x, 3}, {y, 2}}, LE, 18)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	requireStatus(t, sol, StatusOptimal)
	almostEq(t, sol.Objective, 36, 1e-7, "objective")
	almostEq(t, sol.Value(x), 2, 1e-7, "x")
	almostEq(t, sol.Value(y), 6, 1e-7, "y")
}

// Minimization needing phase 1 (>= constraints).
// min 2x + 3y s.t. x + y >= 10, x >= 2, y >= 3. Optimum x=7, y=3, obj 23.
func TestSolvePhase1Min(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", 2, math.Inf(1), 2)
	y := p.AddVariable("y", 3, math.Inf(1), 3)
	p.AddConstraint("cover", []Term{{x, 1}, {y, 1}}, GE, 10)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	requireStatus(t, sol, StatusOptimal)
	almostEq(t, sol.Objective, 23, 1e-7, "objective")
	almostEq(t, sol.Value(x), 7, 1e-7, "x")
	almostEq(t, sol.Value(y), 3, 1e-7, "y")
}

func TestSolveEqualityConstraints(t *testing.T) {
	// min x + 2y + 3z s.t. x+y+z = 6, y - z = 1, all in [0, 10].
	p := NewProblem()
	x := p.AddVariable("x", 0, 10, 1)
	y := p.AddVariable("y", 0, 10, 2)
	z := p.AddVariable("z", 0, 10, 3)
	p.AddConstraint("sum", []Term{{x, 1}, {y, 1}, {z, 1}}, EQ, 6)
	p.AddConstraint("diff", []Term{{y, 1}, {z, -1}}, EQ, 1)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	requireStatus(t, sol, StatusOptimal)
	// Best: make x as large as possible: x=5, y=1, z=0 -> obj 7? Check
	// y - z = 1 with z=0 -> y=1, x=5. obj = 5+2+0 = 7.
	almostEq(t, sol.Objective, 7, 1e-7, "objective")
	if v := p.MaxViolation(sol.X); v > 1e-7 {
		t.Fatalf("solution violates constraints by %v", v)
	}
}

func TestSolveInfeasible(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", 0, 5, 1)
	p.AddConstraint("lo", []Term{{x, 1}}, GE, 10)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	requireStatus(t, sol, StatusInfeasible)
}

func TestSolveInfeasibleContradiction(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", 0, math.Inf(1), 1)
	y := p.AddVariable("y", 0, math.Inf(1), 1)
	p.AddConstraint("a", []Term{{x, 1}, {y, 1}}, LE, 1)
	p.AddConstraint("b", []Term{{x, 1}, {y, 1}}, GE, 2)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	requireStatus(t, sol, StatusInfeasible)
}

func TestSolveUnbounded(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", 0, math.Inf(1), -1)  // min -x, x free upward
	p.AddConstraint("c", []Term{{x, -1}}, LE, 0) // -x <= 0, always true
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	requireStatus(t, sol, StatusUnbounded)
}

func TestSolveBoundedByUpperBounds(t *testing.T) {
	// Same as unbounded case but with a finite upper bound: the solver must
	// use a bound flip rather than declaring unboundedness.
	p := NewProblem()
	x := p.AddVariable("x", 0, 7, -1)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	requireStatus(t, sol, StatusOptimal)
	almostEq(t, sol.Value(x), 7, 1e-9, "x")
	almostEq(t, sol.Objective, -7, 1e-9, "objective")
}

func TestSolveNegativeLowerBounds(t *testing.T) {
	// min x + y with x in [-5, 5], y in [-3, 8], x + y >= -2.
	p := NewProblem()
	x := p.AddVariable("x", -5, 5, 1)
	y := p.AddVariable("y", -3, 8, 1)
	p.AddConstraint("c", []Term{{x, 1}, {y, 1}}, GE, -2)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	requireStatus(t, sol, StatusOptimal)
	almostEq(t, sol.Objective, -2, 1e-7, "objective")
	if v := p.MaxViolation(sol.X); v > 1e-7 {
		t.Fatalf("violation %v", v)
	}
}

func TestSolveDegenerate(t *testing.T) {
	// Beale's classic cycling example: highly degenerate; Dantzig pricing
	// without anti-cycling can loop forever. Known optimum is -0.05.
	p := NewProblem()
	x := p.AddVariable("x", 0, math.Inf(1), -0.75)
	y := p.AddVariable("y", 0, math.Inf(1), 150)
	z := p.AddVariable("z", 0, math.Inf(1), -0.02)
	w := p.AddVariable("w", 0, math.Inf(1), 6)
	p.AddConstraint("r1", []Term{{x, 0.25}, {y, -60}, {z, -0.04}, {w, 9}}, LE, 0)
	p.AddConstraint("r2", []Term{{x, 0.5}, {y, -90}, {z, -0.02}, {w, 3}}, LE, 0)
	p.AddConstraint("r3", []Term{{z, 1}}, LE, 1)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	requireStatus(t, sol, StatusOptimal)
	almostEq(t, sol.Objective, -0.05, 1e-6, "objective")
}

func TestSolveRedundantEqualities(t *testing.T) {
	// Duplicate equality rows produce a redundant row whose artificial
	// stays basic at zero; the solve must still succeed.
	p := NewProblem()
	x := p.AddVariable("x", 0, 10, 1)
	y := p.AddVariable("y", 0, 10, 1)
	p.AddConstraint("e1", []Term{{x, 1}, {y, 1}}, EQ, 4)
	p.AddConstraint("e2", []Term{{x, 2}, {y, 2}}, EQ, 8) // same hyperplane
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	requireStatus(t, sol, StatusOptimal)
	almostEq(t, sol.Objective, 4, 1e-7, "objective")
}

func TestSolveFixedVariable(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", 3, 3, 5) // fixed at 3
	y := p.AddVariable("y", 0, 10, 1)
	p.AddConstraint("c", []Term{{x, 1}, {y, 1}}, GE, 5)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	requireStatus(t, sol, StatusOptimal)
	almostEq(t, sol.Value(x), 3, 1e-9, "x")
	almostEq(t, sol.Value(y), 2, 1e-7, "y")
	almostEq(t, sol.Objective, 17, 1e-7, "objective")
}

func TestSolveDuplicateTermsAccumulate(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", 0, math.Inf(1), 1)
	// x + x <= 6 must behave as 2x <= 6.
	p.AddConstraint("c", []Term{{x, 1}, {x, 1}}, GE, 6)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	requireStatus(t, sol, StatusOptimal)
	almostEq(t, sol.Value(x), 3, 1e-7, "x")
}

func TestSolveEmptyProblem(t *testing.T) {
	p := NewProblem()
	if _, err := p.Solve(); err == nil {
		t.Fatal("expected error for empty problem")
	}
}

func TestSolveNoConstraints(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", 1, 4, 2)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	requireStatus(t, sol, StatusOptimal)
	almostEq(t, sol.Value(x), 1, 1e-9, "x")
}

func TestCloneIndependence(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", 0, 10, 1)
	p.AddConstraint("c", []Term{{x, 1}}, GE, 2)
	q := p.Clone()
	q.SetBounds(x, 5, 10)
	solP, _ := p.Solve()
	solQ, _ := q.Solve()
	almostEq(t, solP.Value(x), 2, 1e-7, "original x")
	almostEq(t, solQ.Value(x), 5, 1e-7, "clone x")
}

func TestIterLimit(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", 0, math.Inf(1), 1)
	y := p.AddVariable("y", 0, math.Inf(1), 1)
	p.AddConstraint("c", []Term{{x, 1}, {y, 1}}, GE, 10)
	sol, err := p.SolveOpts(Options{MaxIter: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusIterLimit && sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
}

func TestBigMDisjunctionShape(t *testing.T) {
	// A miniature of the floorplanning constraint (2): two unit squares on a
	// chip of width 2, minimize height. With the binary relaxed to [0,1] the
	// LP can "cheat", but with the binary fixed to each side, the height is
	// 1 (side by side) or 2 (stacked).
	build := func(zLo, zHi float64) *Problem {
		p := NewProblem()
		const W, H = 2.0, 4.0
		x1 := p.AddVariable("x1", 0, math.Inf(1), 0)
		y1 := p.AddVariable("y1", 0, math.Inf(1), 0)
		x2 := p.AddVariable("x2", 0, math.Inf(1), 0)
		y2 := p.AddVariable("y2", 0, math.Inf(1), 0)
		z := p.AddVariable("z", zLo, zHi, 0) // 0: 1 left of 2; 1: 1 below 2
		h := p.AddVariable("h", 0, math.Inf(1), 1)
		// x1 + 1 <= x2 + W*z
		p.AddConstraint("left", []Term{{x1, 1}, {x2, -1}, {z, -W}}, LE, -1)
		// y1 + 1 <= y2 + H*(1-z)
		p.AddConstraint("below", []Term{{y1, 1}, {y2, -1}, {z, H}}, LE, H-1)
		p.AddConstraint("fit1", []Term{{x1, 1}}, LE, W-1)
		p.AddConstraint("fit2", []Term{{x2, 1}}, LE, W-1)
		p.AddConstraint("h1", []Term{{h, 1}, {y1, -1}}, GE, 1)
		p.AddConstraint("h2", []Term{{h, 1}, {y2, -1}}, GE, 1)
		return p
	}
	for _, tc := range []struct {
		zLo, zHi, want float64
	}{
		{0, 0, 1}, // side by side fits in height 1
		{1, 1, 2}, // stacked needs height 2
	} {
		sol, err := build(tc.zLo, tc.zHi).Solve()
		if err != nil {
			t.Fatal(err)
		}
		requireStatus(t, sol, StatusOptimal)
		almostEq(t, sol.Objective, tc.want, 1e-6, "height")
	}
	// Relaxation must be no worse than either branch.
	sol, err := build(0, 1).Solve()
	if err != nil {
		t.Fatal(err)
	}
	requireStatus(t, sol, StatusOptimal)
	if sol.Objective > 1+1e-6 {
		t.Fatalf("relaxation objective %v exceeds best branch 1", sol.Objective)
	}
}

// Randomized regression: generate feasible-by-construction LPs and verify
// the returned point satisfies all constraints and that the objective is
// no worse than the known feasible point used for construction.
func TestSolveRandomFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		nv := 2 + rng.Intn(6)
		nc := 1 + rng.Intn(8)
		p := NewProblem()
		point := make([]float64, nv)
		vars := make([]VarID, nv)
		for j := 0; j < nv; j++ {
			lo := float64(rng.Intn(5)) - 2
			hi := lo + 1 + float64(rng.Intn(10))
			cost := float64(rng.Intn(11)) - 5
			vars[j] = p.AddVariable("v", lo, hi, cost)
			point[j] = lo + (hi-lo)*rng.Float64()
		}
		for i := 0; i < nc; i++ {
			var terms []Term
			lhs := 0.0
			for j := 0; j < nv; j++ {
				if rng.Float64() < 0.5 {
					continue
				}
				c := float64(rng.Intn(9)) - 4
				terms = append(terms, Term{vars[j], c})
				lhs += c * point[j]
			}
			if len(terms) == 0 {
				continue
			}
			// Make the row satisfied at the construction point.
			if rng.Float64() < 0.5 {
				p.AddConstraint("c", terms, LE, lhs+rng.Float64()*3)
			} else {
				p.AddConstraint("c", terms, GE, lhs-rng.Float64()*3)
			}
		}
		sol, err := p.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != StatusOptimal {
			t.Fatalf("trial %d: status %v for feasible-by-construction LP", trial, sol.Status)
		}
		if v := p.MaxViolation(sol.X); v > 1e-6 {
			t.Fatalf("trial %d: violation %v", trial, v)
		}
		// Optimality sanity: objective <= value at the known feasible point.
		ref := 0.0
		for j := 0; j < nv; j++ {
			ref += p.ObjectiveCoef(vars[j]) * point[j]
		}
		if sol.Objective > ref+1e-6 {
			t.Fatalf("trial %d: objective %v worse than feasible point %v", trial, sol.Objective, ref)
		}
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	p := NewProblem()
	mustPanic(t, func() { p.AddVariable("bad", math.Inf(-1), 0, 0) })
	mustPanic(t, func() { p.AddVariable("bad", 5, 1, 0) })
	x := p.AddVariable("x", 0, 1, 0)
	mustPanic(t, func() { p.AddConstraint("bad", []Term{{VarID(99), 1}}, LE, 0) })
	mustPanic(t, func() { p.SetBounds(x, 2, 1) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestOpAndStatusStrings(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "==" {
		t.Fatal("Op strings wrong")
	}
	for s, want := range map[Status]string{
		StatusOptimal:    "optimal",
		StatusInfeasible: "infeasible",
		StatusUnbounded:  "unbounded",
		StatusIterLimit:  "iteration-limit",
	} {
		if s.String() != want {
			t.Fatalf("Status(%d) = %q, want %q", s, s.String(), want)
		}
	}
}
