package lp

import (
	"context"
	"fmt"
	"math"
	"time"

	"afp/internal/obs"
)

// Numerical tolerances of the simplex engine. Floorplanning models have
// coefficients of magnitude 1..1e4 (big-M terms are chip dimensions), for
// which these defaults are comfortable.
const (
	pivTol  = 1e-9 // smallest acceptable pivot element
	costTol = 1e-7 // reduced-cost optimality tolerance
	feasTol = 1e-6 // phase-1 infeasibility tolerance
	zeroTol = 1e-9 // ratio-test degeneracy tolerance
)

const defaultMaxIter = 50000

// cancelPollMask throttles context polling on the pivot loop: the Done
// channel is inspected every 64 pivots, keeping cancellation latency
// well below a millisecond at floorplanning problem sizes while adding
// nothing measurable to the per-pivot cost.
const cancelPollMask = 63

// varState describes where a nonbasic variable currently rests.
type varState int8

const (
	atLower varState = iota
	atUpper
	inBasis
)

// tableau is the mutable state of one simplex solve.
type tableau struct {
	m, ncols int
	nStruct  int // structural variables (prefix of columns)
	artStart int // first artificial column; ncols if none

	T     [][]float64 // m x ncols, current B^{-1}A
	beta  []float64   // current values of basic variables
	u     []float64   // upper bounds of shifted variables (lower bounds are 0)
	basis []int       // column basic in each row
	state []varState

	zrow []float64 // reduced costs for the active phase
	cost []float64 // active phase cost vector

	iter, maxIter int
	blandLeft     int // remaining forced-Bland pivots after degeneracy streak
	degenStreak   int

	// done, when non-nil, is polled every cancelPollMask+1 pivots;
	// cancelled records that iterate stopped because of it.
	done      <-chan struct{}
	cancelled bool

	// telemetry counters for the lp.solve event / Solution stats
	degen int // degenerate pivots (zero step length)
	flips int // bound flips (no basis change)
}

// solveSimplex runs the two-phase bounded-variable simplex on p. A
// cancelled ctx aborts the pivot loop and surfaces as a nil solution
// with ctx.Err().
func solveSimplex(ctx context.Context, p *Problem, opt Options) (*Solution, error) {
	start := time.Now()
	var spanID int64
	if opt.Obs.Enabled() {
		// Link this solve's lp.solve event to the enclosing span (the
		// branch-and-bound dive or adjustment round that paid for it).
		spanID = obs.SpanID(ctx)
	}
	maxIter := opt.MaxIter
	if maxIter <= 0 {
		maxIter = defaultMaxIter
	}

	n := len(p.names)
	m := len(p.rows)

	// Shifted bounds: x = lo + xt, xt in [0, u].
	u := make([]float64, 0, n+m*2)
	for j := 0; j < n; j++ {
		u = append(u, p.hi[j]-p.lo[j])
	}

	// Count slacks.
	nSlack := 0
	for _, op := range p.ops {
		if op != EQ {
			nSlack++
		}
	}

	// Dense rows over structural+slack columns; artificial columns appended
	// later only for rows that need one.
	ncols := n + nSlack
	T := make([][]float64, m)
	rhs := make([]float64, m)
	slackCol := make([]int, m)
	for i := range slackCol {
		slackCol[i] = -1
	}
	sc := n
	for i := 0; i < m; i++ {
		T[i] = make([]float64, ncols, ncols+m)
		b := p.rhs[i]
		for _, t := range p.rows[i] {
			T[i][t.Var] += t.Coef
			b -= t.Coef * p.lo[t.Var] // shift by lower bounds
		}
		rhs[i] = b
		switch p.ops[i] {
		case LE:
			T[i][sc] = 1
			slackCol[i] = sc
			u = append(u, math.Inf(1))
			sc++
		case GE:
			T[i][sc] = -1
			slackCol[i] = sc
			u = append(u, math.Inf(1))
			sc++
		}
	}

	// Initial basis: use the slack where it yields a feasible unit column,
	// otherwise normalize the row sign and add an artificial.
	basis := make([]int, m)
	beta := make([]float64, m)
	negated := make([]bool, m)
	artCol := make([]int, m)
	for i := range artCol {
		artCol[i] = -1
	}
	artStart := ncols
	nArt := 0
	for i := 0; i < m; i++ {
		op := p.ops[i]
		if op == LE && rhs[i] >= 0 {
			basis[i] = slackCol[i]
			beta[i] = rhs[i]
			continue
		}
		if op == GE && rhs[i] <= 0 {
			negateRow(T[i])
			rhs[i] = -rhs[i]
			negated[i] = true
			basis[i] = slackCol[i]
			beta[i] = rhs[i]
			continue
		}
		if rhs[i] < 0 {
			negateRow(T[i])
			rhs[i] = -rhs[i]
			negated[i] = true
		}
		basis[i] = -1 // placeholder, artificial assigned below
		nArt++
	}
	if nArt > 0 {
		for i := 0; i < m; i++ {
			for len(T[i]) < ncols+nArt {
				T[i] = append(T[i], 0)
			}
		}
		ac := ncols
		for i := 0; i < m; i++ {
			if basis[i] == -1 {
				T[i][ac] = 1
				basis[i] = ac
				beta[i] = rhs[i]
				artCol[i] = ac
				u = append(u, math.Inf(1))
				ac++
			}
		}
		ncols += nArt
	}

	tb := &tableau{
		m: m, ncols: ncols, nStruct: n, artStart: artStart,
		T: T, beta: beta, u: u, basis: basis,
		state:   make([]varState, ncols),
		maxIter: maxIter,
		done:    ctx.Done(),
	}
	for _, b := range basis {
		tb.state[b] = inBasis
	}

	// Phase 1: minimize the sum of artificials.
	var p1Iters int
	var p1Dur time.Duration
	if nArt > 0 {
		cost := make([]float64, ncols)
		for j := artStart; j < ncols; j++ {
			cost[j] = 1
		}
		tb.setPhaseCost(cost)
		st := tb.iterate()
		p1Iters, p1Dur = tb.iter, time.Since(start)
		if tb.cancelled {
			return nil, ctx.Err()
		}
		if st == StatusIterLimit {
			sol := &Solution{Status: StatusIterLimit, X: tb.extract(p), Iterations: tb.iter}
			finishSolve(opt, sol, tb, p1Iters, p1Dur, time.Since(start), spanID)
			return sol, nil
		}
		if tb.phaseObjective() > feasTol*(1+absMax(rhs)) {
			sol := &Solution{Status: StatusInfeasible, X: tb.extract(p), Iterations: tb.iter}
			finishSolve(opt, sol, tb, p1Iters, p1Dur, time.Since(start), spanID)
			return sol, nil
		}
		tb.driveOutArtificials()
		// Lock artificials at zero so they can never re-enter.
		for j := artStart; j < ncols; j++ {
			if tb.state[j] != inBasis {
				tb.u[j] = 0
				tb.state[j] = atLower
			}
		}
	}

	// Phase 2: minimize the shifted original objective.
	cost := make([]float64, ncols)
	sign := 1.0
	if p.maximize {
		sign = -1
	}
	for j := 0; j < n; j++ {
		cost[j] = sign * p.obj[j]
	}
	tb.setPhaseCost(cost)
	st := tb.iterate()
	if tb.cancelled {
		return nil, ctx.Err()
	}

	x := tb.extract(p)
	obj := 0.0
	for j := 0; j < n; j++ {
		obj += p.obj[j] * x[j]
	}
	sol := &Solution{Status: st, Objective: obj, X: x, Iterations: tb.iter}
	if st == StatusOptimal {
		sol.Duals, sol.ReducedCosts = tb.duals(p, slackCol, artCol, negated, sign)
	}
	finishSolve(opt, sol, tb, p1Iters, p1Dur, time.Since(start), spanID)
	return sol, nil
}

// finishSolve copies the tableau's telemetry counters into the solution
// and emits the per-solve lp.solve event when an observer is attached.
func finishSolve(opt Options, sol *Solution, tb *tableau, p1Iters int, p1Dur, total time.Duration, spanID int64) {
	sol.Phase1Iterations = p1Iters
	sol.DegeneratePivots = tb.degen
	sol.BoundFlips = tb.flips
	if opt.Obs.Enabled() {
		opt.Obs.Emit(obs.Event{
			Kind: obs.KindLPSolve, Status: sol.Status.String(), Obj: sol.Objective,
			Iters: sol.Iterations, Phase1Iters: p1Iters,
			Degenerate: tb.degen, BoundFlips: tb.flips,
			DurUS: total.Microseconds(), Phase1US: p1Dur.Microseconds(),
			Span: spanID,
		})
	}
}

// duals recovers constraint duals and structural reduced costs from the
// final phase-2 reduced-cost row. For a row with a slack s the dual is
// read off the slack's reduced cost (the sign of the slack column and any
// row negation cancel, leaving y_i = -d_s for <= rows and y_i = +d_s for
// >= rows); equality rows use their artificial column, whose orientation
// does depend on the recorded row negation. Maximization negates both
// vectors so they live in the caller's objective sense.
func (tb *tableau) duals(p *Problem, slackCol, artCol []int, negated []bool, sign float64) (duals, reduced []float64) {
	duals = make([]float64, tb.m)
	for i := 0; i < tb.m; i++ {
		switch {
		case slackCol[i] >= 0:
			d := tb.zrow[slackCol[i]]
			if p.ops[i] == LE {
				duals[i] = -d
			} else {
				duals[i] = d
			}
		case artCol[i] >= 0:
			d := tb.zrow[artCol[i]]
			if negated[i] {
				duals[i] = d
			} else {
				duals[i] = -d
			}
		}
		duals[i] *= sign
	}
	reduced = make([]float64, tb.nStruct)
	for j := range reduced {
		if tb.state[j] == inBasis {
			continue // basic reduced costs are exactly zero
		}
		reduced[j] = sign * tb.zrow[j]
	}
	return duals, reduced
}

func negateRow(row []float64) {
	for i := range row {
		row[i] = -row[i]
	}
}

func absMax(xs []float64) float64 {
	var m float64
	for _, x := range xs {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// setPhaseCost installs a cost vector and recomputes the reduced-cost row
// from scratch: z_j = c_j - sum_r c_B[r] * T[r][j].
func (tb *tableau) setPhaseCost(cost []float64) {
	tb.cost = cost
	z := make([]float64, tb.ncols)
	copy(z, cost)
	for r := 0; r < tb.m; r++ {
		cb := cost[tb.basis[r]]
		if cb == 0 {
			continue
		}
		row := tb.T[r]
		for j := 0; j < tb.ncols; j++ {
			z[j] -= cb * row[j]
		}
	}
	tb.zrow = z
}

// phaseObjective returns the current value of the active phase cost.
func (tb *tableau) phaseObjective() float64 {
	var v float64
	for r := 0; r < tb.m; r++ {
		v += tb.cost[tb.basis[r]] * tb.beta[r]
	}
	for j := 0; j < tb.ncols; j++ {
		if tb.state[j] == atUpper {
			v += tb.cost[j] * tb.u[j]
		}
	}
	return v
}

// iterate runs simplex pivots until optimality, unboundedness or the
// iteration limit. It returns StatusOptimal when no improving nonbasic
// variable remains.
func (tb *tableau) iterate() Status {
	for {
		if tb.iter >= tb.maxIter {
			return StatusIterLimit
		}
		if tb.done != nil && tb.iter&cancelPollMask == 0 {
			select {
			case <-tb.done:
				tb.cancelled = true
				return StatusIterLimit
			default:
			}
		}
		e, sigma := tb.chooseEntering()
		if e < 0 {
			return StatusOptimal
		}
		if unbounded := tb.pivotOn(e, sigma); unbounded {
			return StatusUnbounded
		}
	}
}

func (tb *tableau) chooseEntering() (col int, sigma float64) {
	bland := tb.blandLeft > 0
	best := -1
	bestViol := costTol
	bestSigma := 1.0
	for j := 0; j < tb.ncols; j++ {
		if tb.state[j] == inBasis || tb.u[j] == 0 {
			continue // basic, or fixed variable that can never move
		}
		var viol, s float64
		switch tb.state[j] {
		case atLower:
			if tb.zrow[j] < -costTol {
				viol, s = -tb.zrow[j], 1
			}
		case atUpper:
			if tb.zrow[j] > costTol {
				viol, s = tb.zrow[j], -1
			}
		default:
			continue
		}
		if viol == 0 {
			continue
		}
		if bland {
			return j, s
		}
		if viol > bestViol {
			bestViol, best, bestSigma = viol, j, s
		}
	}
	return best, bestSigma
}

// pivotOn moves entering variable e in direction sigma (+1 when rising
// from its lower bound, -1 when falling from its upper bound) as far as
// the ratio test allows, then performs a bound flip or a basis change. It
// reports whether the problem is unbounded in that direction.
func (tb *tableau) pivotOn(e int, sigma float64) (unbounded bool) {
	tb.iter++

	// Ratio test. The entering variable may at most traverse its own range;
	// ties between blocking rows are broken by the largest pivot magnitude
	// (stability) or, under Bland's rule, by the lowest basis index.
	tMax := tb.u[e]
	leave := -1
	leaveToUpper := false
	bland := tb.blandLeft > 0
	bestPiv := 0.0
	for r := 0; r < tb.m; r++ {
		coef := sigma * tb.T[r][e]
		var t float64
		var toUpper bool
		switch {
		case coef > pivTol:
			// Basic variable decreases toward 0.
			t = tb.beta[r] / coef
			toUpper = false
		case coef < -pivTol:
			// Basic variable increases toward its upper bound.
			ub := tb.u[tb.basis[r]]
			if math.IsInf(ub, 1) {
				continue
			}
			t = (ub - tb.beta[r]) / (-coef)
			toUpper = true
		default:
			continue
		}
		if t < 0 {
			t = 0
		}
		switch {
		case t < tMax-zeroTol:
			tMax, leave, leaveToUpper, bestPiv = t, r, toUpper, math.Abs(coef)
		case t <= tMax+zeroTol && leave >= 0:
			// Tie between blocking rows.
			take := false
			if bland {
				take = tb.basis[r] < tb.basis[leave]
			} else {
				take = math.Abs(coef) > bestPiv
			}
			if take {
				leave, leaveToUpper, bestPiv = r, toUpper, math.Abs(coef)
			}
		}
	}

	if math.IsInf(tMax, 1) {
		return true
	}

	// Track degeneracy for the Bland fallback.
	if tMax < zeroTol {
		tb.degen++
		tb.degenStreak++
		if tb.degenStreak > 100 && tb.blandLeft == 0 {
			tb.blandLeft = 500
		}
	} else {
		tb.degenStreak = 0
		if tb.blandLeft > 0 {
			tb.blandLeft--
		}
	}

	if leave < 0 {
		// Bound flip: entering traverses its whole range without any basic
		// variable blocking.
		tb.flips++
		for r := 0; r < tb.m; r++ {
			tb.beta[r] -= sigma * tb.T[r][e] * tb.u[e]
		}
		if tb.state[e] == atLower {
			tb.state[e] = atUpper
		} else {
			tb.state[e] = atLower
		}
		return false
	}

	// Update basic values.
	for r := 0; r < tb.m; r++ {
		if r != leave {
			tb.beta[r] -= sigma * tb.T[r][e] * tMax
		}
	}
	var enterVal float64
	if sigma > 0 {
		enterVal = tMax
	} else {
		enterVal = tb.u[e] - tMax
	}

	// Status changes.
	l := tb.basis[leave]
	if leaveToUpper {
		tb.state[l] = atUpper
	} else {
		tb.state[l] = atLower
	}
	tb.state[e] = inBasis
	tb.basis[leave] = e
	tb.beta[leave] = enterVal

	// Gaussian pivot on (leave, e).
	piv := tb.T[leave][e]
	row := tb.T[leave]
	inv := 1 / piv
	for j := 0; j < tb.ncols; j++ {
		row[j] *= inv
	}
	for r := 0; r < tb.m; r++ {
		if r == leave {
			continue
		}
		f := tb.T[r][e]
		if f == 0 {
			continue
		}
		tr := tb.T[r]
		for j := 0; j < tb.ncols; j++ {
			tr[j] -= f * row[j]
		}
		tr[e] = 0 // exact zero for numerical hygiene
	}
	f := tb.zrow[e]
	if f != 0 {
		for j := 0; j < tb.ncols; j++ {
			tb.zrow[j] -= f * row[j]
		}
		tb.zrow[e] = 0
	}
	return false
}

// driveOutArtificials pivots any artificial still basic at zero out of the
// basis where possible. Rows whose non-artificial coefficients are all
// zero are redundant and keep their artificial basic at value zero.
func (tb *tableau) driveOutArtificials() {
	for r := 0; r < tb.m; r++ {
		b := tb.basis[r]
		if b < tb.artStart {
			continue
		}
		// Find a non-artificial, non-fixed column to pivot in.
		pivCol := -1
		for j := 0; j < tb.artStart; j++ {
			if tb.state[j] == inBasis || tb.u[j] == 0 {
				continue
			}
			if math.Abs(tb.T[r][j]) > 1e-7 {
				pivCol = j
				break
			}
		}
		if pivCol < 0 {
			continue // redundant row
		}
		// Degenerate basis exchange: no variable moves. The artificial leaves
		// the basis at value zero and is locked there; the entering variable
		// becomes basic at whichever bound it currently rests on.
		e := pivCol
		l := tb.basis[r]
		enterVal := 0.0
		if tb.state[e] == atUpper {
			enterVal = tb.u[e]
		}
		tb.state[l] = atLower
		tb.u[l] = 0
		tb.state[e] = inBasis
		tb.basis[r] = e
		inv := 1 / tb.T[r][e]
		row := tb.T[r]
		for j := 0; j < tb.ncols; j++ {
			row[j] *= inv
		}
		for rr := 0; rr < tb.m; rr++ {
			if rr == r {
				continue
			}
			f := tb.T[rr][e]
			if f == 0 {
				continue
			}
			tr := tb.T[rr]
			for j := 0; j < tb.ncols; j++ {
				tr[j] -= f * row[j]
			}
			tr[e] = 0
		}
		tb.beta[r] = enterVal
	}
}

// extract maps the shifted tableau solution back to original variable
// values.
func (tb *tableau) extract(p *Problem) []float64 {
	xt := make([]float64, tb.nStruct)
	for j := 0; j < tb.nStruct; j++ {
		switch tb.state[j] {
		case atUpper:
			xt[j] = tb.u[j]
		case atLower:
			xt[j] = 0
		}
	}
	for r := 0; r < tb.m; r++ {
		if b := tb.basis[r]; b < tb.nStruct {
			v := tb.beta[r]
			// Clamp tiny numerical excursions back into the box.
			if v < 0 && v > -1e-6 {
				v = 0
			}
			if ub := tb.u[b]; v > ub && v < ub+1e-6 {
				v = ub
			}
			xt[b] = v
		}
	}
	x := make([]float64, tb.nStruct)
	for j := range x {
		x[j] = p.lo[j] + xt[j]
	}
	return x
}

// Residual returns the violation of constraint i at point x (positive
// means violated), useful for verification in tests.
func (p *Problem) Residual(i ConID, x []float64) float64 {
	var lhs float64
	for _, t := range p.rows[i] {
		lhs += t.Coef * x[t.Var]
	}
	switch p.ops[i] {
	case LE:
		return lhs - p.rhs[i]
	case GE:
		return p.rhs[i] - lhs
	default:
		return math.Abs(lhs - p.rhs[i])
	}
}

// MaxViolation returns the largest constraint or bound violation of x.
func (p *Problem) MaxViolation(x []float64) float64 {
	var worst float64
	for i := range p.rows {
		if r := p.Residual(ConID(i), x); r > worst {
			worst = r
		}
	}
	for j := range p.lo {
		if d := p.lo[j] - x[j]; d > worst {
			worst = d
		}
		if d := x[j] - p.hi[j]; d > worst {
			worst = d
		}
	}
	return worst
}

// String summarizes the problem dimensions.
func (p *Problem) String() string {
	return fmt.Sprintf("lp.Problem{vars: %d, cons: %d, maximize: %v}",
		len(p.names), len(p.rows), p.maximize)
}
