package lp

import "errors"

// luTolerances for the basis factorization. A pivot below luSingularTol
// declares the basis numerically singular; entries below luDropTol are
// not stored.
const (
	luSingularTol = 1e-11
	luDropTol     = 1e-12
)

var errSingularBasis = errors.New("lp: singular basis factorization")

// luFactor is a sparse LU factorization of the current basis matrix B,
// built left-looking with partial pivoting. Columns are processed in
// basis-position order; pivRow maps elimination step k to the original
// row chosen as pivot, rowPos is its inverse.
//
// Storage is columnar and flattened so a refactorization in steady state
// reuses capacity and allocates nothing:
//
//	L column j holds (original row, multiplier) pairs for the rows
//	eliminated by step j; U column k holds (elimination step j < k,
//	value) pairs plus the diagonal udiag[k].
type luFactor struct {
	m      int
	pivRow []int32
	rowPos []int32

	lPtr []int32
	lRow []int32
	lVal []float64

	uPtr  []int32
	uElim []int32
	uVal  []float64
	udiag []float64

	x       []float64 // dense scratch, indexed by original row
	touched []int32
}

// factorBasis rebuilds the factorization for the given basis columns.
// basis[k] < n selects structural CSC column basis[k]; basis[k] >= n is
// the unit slack column of row basis[k]-n. Returns errSingularBasis when
// partial pivoting cannot find a usable pivot.
func (lu *luFactor) factorBasis(a *compiled, basis []int32, n int) error {
	m := len(basis)
	lu.m = m
	lu.pivRow = grow32(lu.pivRow, m)
	lu.rowPos = grow32(lu.rowPos, m)
	lu.lPtr = grow32(lu.lPtr, m+1)
	lu.uPtr = grow32(lu.uPtr, m+1)
	lu.udiag = growF(lu.udiag, m)
	lu.x = growF(lu.x, a.m)
	lu.lRow = lu.lRow[:0]
	lu.lVal = lu.lVal[:0]
	lu.uElim = lu.uElim[:0]
	lu.uVal = lu.uVal[:0]
	for i := range lu.x {
		lu.x[i] = 0
	}
	for i := 0; i < m; i++ {
		lu.rowPos[i] = -1
	}
	lu.lPtr[0] = 0
	lu.uPtr[0] = 0

	for k := 0; k < m; k++ {
		// Scatter basis column k into the dense scratch.
		lu.touched = lu.touched[:0]
		b := basis[k]
		if int(b) < n {
			for t := a.colPtr[b]; t < a.colPtr[b+1]; t++ {
				r := a.rowIdx[t]
				lu.x[r] = a.colVal[t]
				lu.touched = append(lu.touched, r)
			}
		} else {
			r := b - int32(n)
			lu.x[r] = 1
			lu.touched = append(lu.touched, r)
		}

		// Apply prior eliminations in order; u_{jk} is the value at pivot
		// row j after steps 0..j-1.
		for j := 0; j < k; j++ {
			t := lu.x[lu.pivRow[j]]
			if t == 0 {
				continue
			}
			lu.uElim = append(lu.uElim, int32(j))
			lu.uVal = append(lu.uVal, t)
			for e := lu.lPtr[j]; e < lu.lPtr[j+1]; e++ {
				r := lu.lRow[e]
				if lu.x[r] == 0 {
					lu.touched = append(lu.touched, r)
				}
				lu.x[r] -= lu.lVal[e] * t
			}
		}
		lu.uPtr[k+1] = int32(len(lu.uElim))

		// Partial pivoting over the not-yet-pivoted rows.
		pr := int32(-1)
		pv := 0.0
		for _, r := range lu.touched {
			if lu.rowPos[r] >= 0 {
				continue
			}
			if v := lu.x[r]; v > pv || -v > pv {
				if v < 0 {
					pv = -v
				} else {
					pv = v
				}
				pr = r
			}
		}
		if pr < 0 || pv <= luSingularTol {
			// Clean the scratch before reporting failure.
			for _, r := range lu.touched {
				lu.x[r] = 0
			}
			return errSingularBasis
		}
		piv := lu.x[pr]
		lu.udiag[k] = piv
		lu.pivRow[k] = pr
		lu.rowPos[pr] = int32(k)
		for _, r := range lu.touched {
			v := lu.x[r]
			lu.x[r] = 0
			if r == pr || lu.rowPos[r] >= 0 {
				continue
			}
			if v > luDropTol || v < -luDropTol {
				lu.lRow = append(lu.lRow, r)
				lu.lVal = append(lu.lVal, v/piv)
			}
		}
		lu.lPtr[k+1] = int32(len(lu.lRow))
	}
	return nil
}

// ftran solves B z = v. v is dense, indexed by original row, and is
// destroyed; out (length m, indexed by basis position) receives z.
func (lu *luFactor) ftran(v []float64, out []float64) {
	// Forward: apply the eliminations that were applied to the columns.
	for j := 0; j < lu.m; j++ {
		t := v[lu.pivRow[j]]
		if t == 0 {
			continue
		}
		for e := lu.lPtr[j]; e < lu.lPtr[j+1]; e++ {
			v[lu.lRow[e]] -= lu.lVal[e] * t
		}
	}
	// Backward: U out = w with w[k] = v[pivRow[k]].
	for k := lu.m - 1; k >= 0; k-- {
		t := v[lu.pivRow[k]] / lu.udiag[k]
		out[k] = t
		v[lu.pivRow[k]] = 0
		if t == 0 {
			continue
		}
		for e := lu.uPtr[k]; e < lu.uPtr[k+1]; e++ {
			v[lu.pivRow[lu.uElim[e]]] -= lu.uVal[e] * t
		}
	}
}

// btran solves B'y = c. c is dense, indexed by basis position, and is
// destroyed; y (length m, indexed by original row) receives the result.
func (lu *luFactor) btran(c []float64, y []float64) {
	// U' forward, in place in elimination space.
	for k := 0; k < lu.m; k++ {
		t := c[k]
		for e := lu.uPtr[k]; e < lu.uPtr[k+1]; e++ {
			t -= lu.uVal[e] * c[lu.uElim[e]]
		}
		c[k] = t / lu.udiag[k]
	}
	// Scatter to original rows, then L' in reverse elimination order.
	for k := 0; k < lu.m; k++ {
		y[lu.pivRow[k]] = c[k]
		c[k] = 0
	}
	for j := lu.m - 1; j >= 0; j-- {
		t := y[lu.pivRow[j]]
		for e := lu.lPtr[j]; e < lu.lPtr[j+1]; e++ {
			t -= lu.lVal[e] * y[lu.lRow[e]]
		}
		y[lu.pivRow[j]] = t
	}
}

// etaFile is the product-form update file: after pivot t the basis is
// B_t = B_0 · E_1 · ... · E_t where E_i is the identity with column
// pos[i] replaced by the spike d_i = B_{i-1}^{-1} a_enter. Storage is
// flattened and truncate-reset so steady-state refactorization cycles
// allocate nothing.
type etaFile struct {
	ptr  []int32 // per-eta start into idx/val; len = count+1
	idx  []int32 // basis positions i != pos with d_i != 0
	val  []float64
	pos  []int32
	diag []float64 // d_pos per eta
}

func (ef *etaFile) count() int {
	if len(ef.ptr) == 0 {
		return 0
	}
	return len(ef.ptr) - 1
}

func (ef *etaFile) reset() {
	if len(ef.ptr) == 0 {
		ef.ptr = append(ef.ptr, 0)
	}
	ef.ptr = ef.ptr[:1]
	ef.idx = ef.idx[:0]
	ef.val = ef.val[:0]
	ef.pos = ef.pos[:0]
	ef.diag = ef.diag[:0]
}

// push appends an eta from the spike (dense, indexed by basis position).
func (ef *etaFile) push(r int, spike []float64) {
	if len(ef.ptr) == 0 {
		ef.ptr = append(ef.ptr, 0)
	}
	for i, v := range spike {
		if i == r || (v <= luDropTol && v >= -luDropTol) {
			continue
		}
		ef.idx = append(ef.idx, int32(i))
		ef.val = append(ef.val, v)
	}
	ef.ptr = append(ef.ptr, int32(len(ef.idx)))
	ef.pos = append(ef.pos, int32(r))
	ef.diag = append(ef.diag, spike[r])
}

// applyFtran applies one eta inverse: z ← E_e^{-1} z. FTRAN applies the
// etas in creation order after the LU solve.
func (ef *etaFile) applyFtran(e int, z []float64) {
	r := ef.pos[e]
	t := z[r]
	if t == 0 {
		return
	}
	t /= ef.diag[e]
	z[r] = t
	for k := ef.ptr[e]; k < ef.ptr[e+1]; k++ {
		z[ef.idx[k]] -= ef.val[k] * t
	}
}

// applyBtran solves E'w = c in place: every entry except position r is
// unchanged, and c[r] ← (c[r] - sum_i d_i c_i) / d_r over i != r.
func (ef *etaFile) applyBtran(e int, c []float64) {
	r := ef.pos[e]
	t := c[r]
	for k := ef.ptr[e]; k < ef.ptr[e+1]; k++ {
		t -= ef.val[k] * c[ef.idx[k]]
	}
	c[r] = t / ef.diag[e]
}

// grow32 returns s resized to n, reusing capacity.
func grow32(s []int32, n int) []int32 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int32, n)
}

// growF returns s resized to n, reusing capacity.
func growF(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]float64, n)
}
