package lp

import (
	"context"
	"math"
	"math/rand"
	"testing"
)

// TestSparseMatchesDenseFuzz is the differential gate for the revised
// simplex: on random box-bounded LPs the sparse dual solver and the
// dense two-phase primal (the oracle, forced via solveSimplex) must
// agree on status and, when optimal, on the objective value, with the
// sparse point primal feasible.
func TestSparseMatchesDenseFuzz(t *testing.T) {
	ctx := context.Background()
	solved := 0
	// Integer-heavy coefficient corpora make exact transient cancellations
	// in the pricing scatter likely — the failure mode that separates the
	// maintained duals from the truth (caught once by exactly this fuzz
	// across seeds, so keep several).
	for _, seed := range []int64{101, 202, 404, 808} {
		rng := rand.New(rand.NewSource(seed))
		for trial := 0; trial < 300; trial++ {
			p := buildBoxLP(rng)
			if !forceDense && !sparseSolvable(p) {
				t.Fatalf("seed %d trial %d: box LP not sparse-solvable", seed, trial)
			}
			sparse, err, ok := solveSparse(ctx, p, Options{})
			if err != nil || !ok {
				t.Fatalf("seed %d trial %d: sparse solve: ok=%v err=%v", seed, trial, ok, err)
			}
			dense, err := solveSimplex(ctx, p, Options{})
			if err != nil {
				t.Fatalf("seed %d trial %d: dense solve: %v", seed, trial, err)
			}
			if sparse.Status != dense.Status {
				t.Fatalf("seed %d trial %d: sparse %v vs dense %v", seed, trial, sparse.Status, dense.Status)
			}
			if sparse.Status != StatusOptimal {
				continue
			}
			solved++
			if diff := math.Abs(sparse.Objective - dense.Objective); diff > 1e-6*(1+math.Abs(dense.Objective)) {
				t.Fatalf("seed %d trial %d: sparse obj %v vs dense %v", seed, trial, sparse.Objective, dense.Objective)
			}
			if v := p.MaxViolation(sparse.X); v > 1e-6 {
				t.Fatalf("seed %d trial %d: sparse point violates by %v", seed, trial, v)
			}
		}
	}
	if solved < 200 {
		t.Fatalf("only %d optimal instances; fuzz corpus too degenerate", solved)
	}
}

// assignmentLP builds the n x n assignment relaxation: a classic
// massively degenerate instance (every basic solution has 2n-1 basic
// variables but only n of them nonzero). Uniform costs maximize
// ratio-test ties, the worst case for cycling.
func assignmentLP(n int, cost func(i, j int) float64) *Problem {
	p := NewProblem()
	vars := make([][]VarID, n)
	for i := 0; i < n; i++ {
		vars[i] = make([]VarID, n)
		for j := 0; j < n; j++ {
			vars[i][j] = p.AddVariable("x", 0, 1, cost(i, j))
		}
	}
	for i := 0; i < n; i++ {
		row := make([]Term, n)
		col := make([]Term, n)
		for j := 0; j < n; j++ {
			row[j] = Term{vars[i][j], 1}
			col[j] = Term{vars[j][i], 1}
		}
		p.AddConstraint("row", row, EQ, 1)
		p.AddConstraint("col", col, EQ, 1)
	}
	return p
}

// TestDegenerateAssignmentTerminates is the anti-cycling regression for
// both engines: the uniform-cost assignment LP stalls a simplex without
// a cycling guard (every pivot is degenerate past the first few). Both
// the sparse dual solver and the dense primal must terminate at the
// optimum well inside the iteration limit.
func TestDegenerateAssignmentTerminates(t *testing.T) {
	ctx := context.Background()
	for _, tc := range []struct {
		name string
		cost func(i, j int) float64
		want float64
	}{
		// All-ones: any permutation is optimal, every ratio ties.
		{"uniform", func(i, j int) float64 { return 1 }, 10},
		// Few distinct values: heavy but not total degeneracy.
		{"mod3", func(i, j int) float64 { return float64((i + j) % 3) }, 0},
	} {
		p := assignmentLP(10, tc.cost)
		sparse, err, ok := solveSparse(ctx, p, Options{})
		if err != nil || !ok || sparse.Status != StatusOptimal {
			t.Fatalf("%s: sparse: ok=%v status=%v err=%v", tc.name, ok, sparse.Status, err)
		}
		if math.Abs(sparse.Objective-tc.want) > 1e-6 {
			t.Fatalf("%s: sparse objective %v, want %v", tc.name, sparse.Objective, tc.want)
		}
		if sparse.Iterations >= defaultMaxIter {
			t.Fatalf("%s: sparse hit the iteration limit (%d pivots)", tc.name, sparse.Iterations)
		}
		dense, err := solveSimplex(ctx, p, Options{})
		if err != nil || dense.Status != StatusOptimal {
			t.Fatalf("%s: dense: status=%v err=%v", tc.name, dense.Status, err)
		}
		if math.Abs(dense.Objective-tc.want) > 1e-6 {
			t.Fatalf("%s: dense objective %v, want %v", tc.name, dense.Objective, tc.want)
		}
	}
}

// TestDegenerateWarmResolves drives the incremental solver through
// repeated fix/relax cycles on the degenerate assignment instance —
// every re-solve replays the tie-heavy ratio tests — and cross-checks
// each optimum against a cold dense solve.
func TestDegenerateWarmResolves(t *testing.T) {
	p := assignmentLP(6, func(i, j int) float64 { return 1 })
	inc, err := NewIncremental(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for cycle := 0; cycle < 20; cycle++ {
		v := VarID((cycle * 7) % p.NumVariables())
		inc.SetBounds(v, 1, 1) // force the pair into the matching
		p.SetBounds(v, 1, 1)
		warm, err := inc.Solve()
		if err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		cold, err := solveSimplex(ctx, p, Options{})
		if err != nil {
			t.Fatalf("cycle %d: dense: %v", cycle, err)
		}
		if (warm.Status == StatusOptimal) != (cold.Status == StatusOptimal) {
			t.Fatalf("cycle %d: warm %v vs cold %v", cycle, warm.Status, cold.Status)
		}
		if warm.Status == StatusOptimal && math.Abs(warm.Objective-cold.Objective) > 1e-6 {
			t.Fatalf("cycle %d: warm obj %v vs cold %v", cycle, warm.Objective, cold.Objective)
		}
		inc.SetBounds(v, 0, 1)
		p.SetBounds(v, 0, 1)
	}
}

// buildMediumLP is the alloc-test workload: 30 box-bounded variables, 40
// LE rows, mixed-sign costs — representative of a floorplanning node
// relaxation's shape.
func buildMediumLP() (*Problem, []VarID) {
	rng := rand.New(rand.NewSource(11))
	p := NewProblem()
	vars := make([]VarID, 30)
	for j := range vars {
		vars[j] = p.AddVariable("v", 0, 10, float64(rng.Intn(9)-4))
	}
	for i := 0; i < 40; i++ {
		var terms []Term
		for j := range vars {
			if rng.Intn(3) == 0 {
				terms = append(terms, Term{vars[j], float64(rng.Intn(7) - 3)})
			}
		}
		if len(terms) == 0 {
			continue
		}
		p.AddConstraint("c", terms, LE, float64(5+rng.Intn(20)))
	}
	return p, vars
}

// TestWarmResolveZeroAllocs pins the hot-path contract: once scratch
// capacities have stabilized, a SetBounds+SolveCtxReuse cycle — the
// exact per-node sequence branch and bound runs — performs zero heap
// allocations, including across the periodic refactorizations the cycle
// count is chosen to cross (maxEtas pivots accumulate well within it).
func TestWarmResolveZeroAllocs(t *testing.T) {
	p, vars := buildMediumLP()
	inc, err := NewIncremental(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	step := 0
	cycle := func() {
		// Alternate tightening and restoring a rotating pair of bounds so
		// successive solves do real dual pivots, not no-op skips.
		j := vars[step%len(vars)]
		if step%2 == 0 {
			inc.SetBounds(j, 1, 9)
		} else {
			inc.SetBounds(j, 0, 10)
		}
		step++
		if _, err := inc.SolveCtxReuse(ctx); err != nil {
			t.Fatal(err)
		}
	}
	// Warm up until every growable buffer (LU fill, eta file, dirty list)
	// has seen its steady-state high-water mark.
	for i := 0; i < 300; i++ {
		cycle()
	}
	if allocs := testing.AllocsPerRun(100, cycle); allocs != 0 {
		t.Fatalf("warm SetBounds+SolveCtxReuse cycle allocates %v times per run, want 0", allocs)
	}
}
