package lp

import "math"

// propTol is the minimum improvement for a propagated bound to be
// applied; anything smaller is numerical noise not worth a bound update.
const propTol = 1e-7

// PropagateBounds tightens variable bounds in place by interval
// arithmetic over the constraint rows, the classic MIP presolve
// reduction: for a row a'x <= b, each variable's coefficient together
// with the minimum activity of the remaining terms implies a bound on
// that variable. GE rows propagate as their negation and EQ rows as both
// directions. Variables listed in ints additionally have their bounds
// rounded to integers, which is where most fixings come from.
//
// Every derived bound is implied by the rows plus the existing bounds,
// so the feasible set — and any optimum — is unchanged. When a derived
// bound crosses the opposite one the problem is infeasible; the bound is
// clamped (never inverted) and the simplex solve reports infeasibility.
//
// The sweep repeats until a pass changes nothing, up to passes rounds
// (<= 0 means 4). It returns the number of bounds tightened and the
// number of variables newly fixed (lo == hi).
func (p *Problem) PropagateBounds(ints []VarID, passes int) (tightened, fixed int) {
	if passes <= 0 {
		passes = 4
	}
	isInt := make([]bool, len(p.names))
	for _, v := range ints {
		isInt[v] = true
	}
	wasFixed := make([]bool, len(p.names))
	for v := range p.names {
		//vet:allow toleq -- fixed bounds are assigned equal, and exact == is Inf-safe
		wasFixed[v] = p.lo[v] == p.hi[v]
	}

	// apply one direction: row a'x <= b.
	applyLE := func(row []Term, neg bool, b float64) bool {
		// Minimum activity of the row, counting +Inf upper bounds that
		// make a term's minimum -Inf.
		sum := 0.0
		ninf := 0
		infVar := VarID(-1)
		contrib := func(t Term) (float64, bool) {
			c := t.Coef
			if neg {
				c = -c
			}
			if c > 0 {
				return c * p.lo[t.Var], true
			}
			if math.IsInf(p.hi[t.Var], 1) {
				return 0, false
			}
			return c * p.hi[t.Var], true
		}
		for _, t := range row {
			if v, ok := contrib(t); ok {
				sum += v
			} else {
				ninf++
				infVar = t.Var
			}
		}
		if ninf > 1 {
			return false
		}
		changed := false
		for _, t := range row {
			c := t.Coef
			if neg {
				c = -c
			}
			if c == 0 {
				continue
			}
			var others float64
			if ninf == 0 {
				own, _ := contrib(t)
				others = sum - own
			} else if infVar == t.Var {
				others = sum
			} else {
				continue
			}
			limit := (b - others) / c
			if c > 0 {
				if isInt[t.Var] {
					limit = math.Floor(limit + propTol)
				}
				if limit < p.hi[t.Var]-propTol {
					if limit < p.lo[t.Var] {
						limit = p.lo[t.Var] // infeasible row; clamp, never invert
					}
					if limit < p.hi[t.Var]-propTol {
						p.hi[t.Var] = limit
						tightened++
						changed = true
					}
				}
			} else {
				if isInt[t.Var] {
					limit = math.Ceil(limit - propTol)
				}
				if limit > p.lo[t.Var]+propTol {
					if limit > p.hi[t.Var] {
						limit = p.hi[t.Var]
					}
					if limit > p.lo[t.Var]+propTol {
						p.lo[t.Var] = limit
						tightened++
						changed = true
					}
				}
			}
		}
		return changed
	}

	for pass := 0; pass < passes; pass++ {
		changed := false
		for ci, row := range p.rows {
			switch p.ops[ci] {
			case LE:
				changed = applyLE(row, false, p.rhs[ci]) || changed
			case GE:
				changed = applyLE(row, true, -p.rhs[ci]) || changed
			default:
				changed = applyLE(row, false, p.rhs[ci]) || changed
				changed = applyLE(row, true, -p.rhs[ci]) || changed
			}
		}
		if !changed {
			break
		}
	}
	for v := range p.names {
		//vet:allow toleq -- fixed bounds are assigned equal, and exact == is Inf-safe
		if !wasFixed[v] && p.lo[v] == p.hi[v] {
			fixed++
		}
	}
	return tightened, fixed
}
