package lp

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"
)

// bigDenseLP builds an LP large enough that a solve takes many pivots,
// so cancellation can land mid-solve.
func bigDenseLP(rng *rand.Rand, n int) *Problem {
	p := NewProblem()
	vars := make([]VarID, n)
	for j := 0; j < n; j++ {
		vars[j] = p.AddVariable("x", 0, 10, -1-rng.Float64())
	}
	for i := 0; i < n; i++ {
		var terms []Term
		for j := 0; j < n; j++ {
			if rng.Intn(3) == 0 {
				terms = append(terms, Term{Var: vars[j], Coef: 1 + rng.Float64()})
			}
		}
		if len(terms) == 0 {
			terms = append(terms, Term{Var: vars[i], Coef: 1})
		}
		p.AddConstraint("c", terms, LE, 5+rng.Float64()*10)
	}
	return p
}

func TestSolveCtxCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := bigDenseLP(rand.New(rand.NewSource(7)), 20)
	if _, err := p.SolveCtx(ctx, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSolveCtxDeadlineMidSolve(t *testing.T) {
	// A zero-duration deadline must abort within the first poll window
	// rather than running the full solve.
	ctx, cancel := context.WithDeadline(context.Background(), time.Now())
	defer cancel()
	p := bigDenseLP(rand.New(rand.NewSource(11)), 60)
	if _, err := p.SolveCtx(ctx, Options{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestSolveCtxBackgroundMatchesSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		p := bigDenseLP(rng, 15)
		a, err1 := p.Solve()
		b, err2 := p.SolveCtx(context.Background(), Options{})
		if err1 != nil || err2 != nil {
			t.Fatalf("trial %d: %v / %v", trial, err1, err2)
		}
		if a.Status != b.Status || (a.Objective-b.Objective) > 1e-9 || (b.Objective-a.Objective) > 1e-9 {
			t.Fatalf("trial %d: ctx solve differs: %v/%g vs %v/%g",
				trial, a.Status, a.Objective, b.Status, b.Objective)
		}
	}
}

func TestIncrementalSolveCtxCancelled(t *testing.T) {
	p := bigDenseLP(rand.New(rand.NewSource(5)), 20)
	inc, err := NewIncremental(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := inc.SolveCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// A later solve with a live context must recover and agree with the
	// cold solver (the tableau stays consistent across cancellation).
	sol, err := inc.SolveCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	cold, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal || cold.Status != StatusOptimal {
		t.Fatalf("status %v / %v", sol.Status, cold.Status)
	}
	if d := sol.Objective - cold.Objective; d > 1e-7 || d < -1e-7 {
		t.Fatalf("objective after cancelled solve %g != cold %g", sol.Objective, cold.Objective)
	}
}
