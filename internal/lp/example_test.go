package lp_test

import (
	"fmt"
	"math"

	"afp/internal/lp"
)

// ExampleProblem_Solve solves a small production-planning LP and reads
// the primal solution plus the constraint duals.
func ExampleProblem_Solve() {
	p := lp.NewProblem()
	p.SetMaximize(true)
	x := p.AddVariable("x", 0, math.Inf(1), 3)
	y := p.AddVariable("y", 0, math.Inf(1), 5)
	p.AddConstraint("m1", []lp.Term{{Var: x, Coef: 1}}, lp.LE, 4)
	p.AddConstraint("m2", []lp.Term{{Var: y, Coef: 2}}, lp.LE, 12)
	p.AddConstraint("m3", []lp.Term{{Var: x, Coef: 3}, {Var: y, Coef: 2}}, lp.LE, 18)

	sol, err := p.Solve()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("status %v, objective %g at (%g, %g)\n",
		sol.Status, sol.Objective, sol.Value(x), sol.Value(y))
	fmt.Printf("shadow prices: %.1f %.1f %.1f\n", sol.Duals[0], sol.Duals[1], sol.Duals[2])
	// Output:
	// status optimal, objective 36 at (2, 6)
	// shadow prices: 0.0 1.5 1.0
}

// ExampleIncremental shows warm-started re-solves after bound changes —
// the branch-and-bound use case.
func ExampleIncremental() {
	p := lp.NewProblem()
	x := p.AddVariable("x", 0, 5, -1) // maximize x via minimize -x
	y := p.AddVariable("y", 0, 5, -1)
	p.AddConstraint("cap", []lp.Term{{Var: x, Coef: 1}, {Var: y, Coef: 1}}, lp.LE, 7)

	inc, err := lp.NewIncremental(p, lp.Options{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	sol, _ := inc.Solve()
	fmt.Printf("free: %g\n", sol.Objective)

	inc.SetBounds(x, 0, 1) // branch: x <= 1
	sol, _ = inc.Solve()
	fmt.Printf("x<=1: %g\n", sol.Objective)
	// Output:
	// free: -7
	// x<=1: -6
}
