package lp

import (
	"context"
	"fmt"
	"math"
	"time"

	"afp/internal/obs"
)

// Incremental is a warm-startable LP solver for box-bounded problems,
// built on the sparse revised simplex core. It keeps the basis
// factorization alive between solves so that after variable bound
// changes — the only modification branch and bound ever makes — the
// previous optimal basis stays dual feasible and a handful of dual
// simplex pivots restore primal feasibility, instead of a full cold
// solve per node.
//
// All working storage (LU factors, eta file, pivot scratch, the
// returned Solution and its X vector) is preallocated, so a steady-state
// SetBounds+SolveCtxReuse cycle performs zero heap allocations.
//
// Requirements: every variable with a negative objective coefficient (in
// minimize sense) must have a finite upper bound, and every variable with
// a non-negative coefficient a finite lower bound, so that a dual-feasible
// nonbasic point exists. Floorplanning subproblems satisfy this trivially
// (all variables live in finite boxes). NewIncremental returns
// ErrUnboundedColumn otherwise; callers fall back to Problem.SolveOpts.
type Incremental struct {
	p       *Problem
	core    *spxCore
	o       *obs.Observer
	maxIter int
	solves  int

	// sol and xbuf are reused across SolveCtxReuse calls.
	sol  Solution
	xbuf []float64

	// dirty lists the structural columns whose bounds changed since the
	// last solve; refreshDirty re-rests exactly those.
	dirty     []int32
	dirtyMark []bool
}

// ErrUnboundedColumn reports that no dual-feasible starting point exists
// because a favorable column has no finite bound to rest on.
var ErrUnboundedColumn = fmt.Errorf("lp: incremental solver requires finite bounds on improving columns")

// NewIncremental builds an incremental solver over a snapshot of p's
// constraints and current bounds. Later bound changes are applied through
// SetBounds, not through p.
func NewIncremental(p *Problem, opt Options) (*Incremental, error) {
	if len(p.names) == 0 {
		return nil, ErrBadModel
	}
	maxIter := opt.MaxIter
	if maxIter <= 0 {
		maxIter = defaultMaxIter
	}
	a := p.compiled()
	n, m := a.n, a.m
	sign := 1.0
	if p.maximize {
		sign = -1
	}
	cost := make([]float64, n+m)
	lb := make([]float64, n+m)
	ub := make([]float64, n+m)
	rhs := make([]float64, m)
	for j := 0; j < n; j++ {
		cost[j] = sign * p.obj[j]
		lb[j] = p.lo[j]
		ub[j] = p.hi[j]
	}
	for i := 0; i < m; i++ {
		rhs[i] = p.rhs[i]
		sj := n + i
		switch p.ops[i] {
		case LE:
			lb[sj], ub[sj] = 0, math.Inf(1)
		case GE:
			lb[sj], ub[sj] = math.Inf(-1), 0
		default:
			lb[sj], ub[sj] = 0, 0
		}
	}
	core := newSpxCore(a, sign, cost, rhs, lb, ub)
	if !core.restAll() {
		return nil, ErrUnboundedColumn
	}
	core.refactor()
	inc := &Incremental{
		p: p, core: core, o: opt.Obs, maxIter: maxIter,
		xbuf:      make([]float64, n),
		dirty:     make([]int32, 0, n),
		dirtyMark: make([]bool, n),
	}
	return inc, nil
}

// SetBounds changes the bounds of structural variable v. The change is
// recorded on a dirty list and applied at the next solve; unchanged
// bounds are skipped so branch-and-bound's habit of rewriting every
// integer box per node costs nothing for the untouched ones.
func (inc *Incremental) SetBounds(v VarID, lo, hi float64) {
	j := int(v)
	if math.IsInf(lo, 0) || hi < lo {
		panic(fmt.Sprintf("lp: invalid incremental bounds [%v, %v]", lo, hi))
	}
	c := inc.core
	//vet:allow toleq -- exact no-op detection: identical bounds need no re-rest
	if c.lb[j] == lo && c.ub[j] == hi {
		return
	}
	c.lb[j], c.ub[j] = lo, hi
	if !inc.dirtyMark[j] {
		inc.dirtyMark[j] = true
		inc.dirty = append(inc.dirty, int32(j))
	}
}

// refreshDirty re-rests every bound-changed nonbasic column inside its
// new box, preferring the side it already sits on, and flips to the
// opposite finite bound when the maintained reduced cost says the
// current side is dual infeasible. Basic columns just acquire the new
// box; the dual simplex repairs them.
func (inc *Incremental) refreshDirty() {
	c := inc.core
	for _, j := range inc.dirty {
		inc.dirtyMark[j] = false
		if c.state[j] == inBasis {
			continue
		}
		switch c.state[j] {
		case atLower:
			c.xval[j] = c.lb[j]
		case atUpper:
			if math.IsInf(c.ub[j], 1) {
				c.state[j] = atLower
				c.xval[j] = c.lb[j]
			} else {
				c.xval[j] = c.ub[j]
			}
		}
		if c.state[j] == atLower && c.d[j] < -costTol && !math.IsInf(c.ub[j], 1) {
			c.state[j] = atUpper
			c.xval[j] = c.ub[j]
		} else if c.state[j] == atUpper && c.d[j] > costTol {
			c.state[j] = atLower
			c.xval[j] = c.lb[j]
		}
	}
	inc.dirty = inc.dirty[:0]
}

// Clone returns an independent copy of the solver sharing only the
// immutable problem snapshot (compiled matrix, costs, right-hand
// sides). The clone starts from the same basis and bounds — its first
// solve refactorizes — and subsequent SetBounds/Solve calls on either
// side never affect the other, so each branch-and-bound worker can
// carry its own warm basis cloned from one root solver. Clone is not
// safe to call concurrently with Solve or SetBounds on the receiver.
func (inc *Incremental) Clone() *Incremental {
	c := inc.core
	nc := &spxCore{
		a: c.a, m: c.m, n: c.n, ncols: c.ncols, sign: c.sign,
		cost: c.cost, rhs: c.rhs, // shared, never written after construction

		lb:    append([]float64(nil), c.lb...),
		ub:    append([]float64(nil), c.ub...),
		state: append([]varState(nil), c.state...),
		xval:  append([]float64(nil), c.xval...),
		basis: append([]int32(nil), c.basis...),
		beta:  append([]float64(nil), c.beta...),
		d:     append([]float64(nil), c.d...),

		rho:     make([]float64, c.m),
		erow:    make([]float64, c.m),
		spike:   make([]float64, c.m),
		work:    make([]float64, c.m),
		alpha:   make([]float64, c.ncols),
		touched: make([]int32, 0, c.ncols),
		amark:   make([]bool, c.ncols),

		degenStreak:  c.degenStreak,
		blandLeft:    c.blandLeft,
		needRefactor: true,
	}
	nc.etas.reset()
	return &Incremental{
		p: inc.p, core: nc, o: inc.o, maxIter: inc.maxIter, solves: inc.solves,
		xbuf:      make([]float64, c.n),
		dirty:     append(make([]int32, 0, c.n), inc.dirty...),
		dirtyMark: append([]bool(nil), inc.dirtyMark...),
	}
}

// Solve restores primal feasibility by dual simplex pivots and returns
// the optimum. The returned solution shares no state with the solver.
func (inc *Incremental) Solve() (*Solution, error) {
	return inc.SolveCtx(context.Background())
}

// SolveCtx is Solve under a context: the dual simplex loop polls
// ctx.Done() every few pivots and aborts with ctx.Err(). The basis is
// left in a consistent (dual feasible) state, so a later SolveCtx with a
// live context resumes the repair. The returned solution shares no
// state with the solver.
func (inc *Incremental) SolveCtx(ctx context.Context) (*Solution, error) {
	sol, err := inc.SolveCtxReuse(ctx)
	if err != nil {
		return nil, err
	}
	out := new(Solution)
	*out = *sol
	out.X = append([]float64(nil), sol.X...)
	return out, nil
}

// SolveCtxReuse is SolveCtx for the hot path: the returned Solution and
// its X vector are owned by the solver and overwritten by the next
// SolveCtxReuse call. Steady-state calls perform no heap allocations;
// callers that keep values across solves must copy them first.
func (inc *Incremental) SolveCtxReuse(ctx context.Context) (*Solution, error) {
	start := time.Now()
	c := inc.core
	c.done = ctx.Done()
	if c.done != nil {
		select {
		case <-c.done:
			return nil, ctx.Err()
		default:
		}
	}
	inc.solves++
	c.refactors = 0
	if c.needRefactor || c.etas.count() >= maxEtas {
		c.refactor()
	}
	inc.refreshDirty()
	c.computeBeta()
	st := c.dualLoop(inc.maxIter)
	if c.cancelled {
		return nil, ctx.Err()
	}
	sol := &inc.sol
	*sol = Solution{
		Status:           st,
		Iterations:       c.iters,
		DegeneratePivots: c.degenPivots,
		DualPivots:       c.iters,
		Refactorizations: c.refactors,
	}
	if st == StatusOptimal || st == StatusIterLimit {
		c.extractX(inc.xbuf)
		obj := 0.0
		for j := 0; j < c.n; j++ {
			obj += c.sign * c.cost[j] * inc.xbuf[j]
		}
		sol.X = inc.xbuf
		sol.Objective = obj
	}
	if inc.o.Enabled() {
		inc.o.Emit(obs.Event{
			Kind: obs.KindLPSolve, Status: st.String(), Obj: sol.Objective,
			Iters: sol.Iterations, Degenerate: sol.DegeneratePivots,
			DualPivots: sol.DualPivots, Refactors: sol.Refactorizations,
			DurUS: time.Since(start).Microseconds(), Warm: true,
			Span: obs.SpanID(ctx),
		})
	}
	return sol, nil
}
