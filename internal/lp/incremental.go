package lp

import (
	"context"
	"fmt"
	"math"
	"time"

	"afp/internal/obs"
)

// Incremental is a warm-startable LP solver for box-bounded problems. It
// keeps the simplex tableau alive between solves so that after variable
// bound changes — the only modification branch and bound ever makes — the
// previous optimal basis stays dual feasible and a handful of dual
// simplex pivots restore primal feasibility, instead of a full two-phase
// cold solve per node.
//
// Requirements: every variable with a negative objective coefficient (in
// minimize sense) must have a finite upper bound, and every variable with
// a non-negative coefficient a finite lower bound, so that a dual-feasible
// nonbasic point exists. Floorplanning subproblems satisfy this trivially
// (all variables live in finite boxes). NewIncremental returns
// ErrUnboundedColumn otherwise; callers fall back to Problem.SolveOpts.
type Incremental struct {
	p *Problem

	m, n    int // rows, structural columns
	ncols   int // n + m slacks
	sign    float64
	cost    []float64 // minimize-sense objective, structural prefix
	lb, ub  []float64 // per column (structural + slack)
	rowRHS  []float64
	origRow [][]Term // retained for rebuilds

	T     [][]float64 // m x ncols current B^{-1}A
	beta  []float64   // basic variable values
	basis []int
	state []varState
	val   []float64 // current value of every nonbasic column
	zrow  []float64

	iter       int
	solves     int
	maxIter    int
	blandLeft  int
	degenCount int
	solveDegen int // degenerate pivots within the current Solve
	o          *obs.Observer

	// done and cancelled mirror the cold solver's context handling: the
	// channel of the Solve call's context, polled every few pivots.
	done      <-chan struct{}
	cancelled bool
}

// ErrUnboundedColumn reports that no dual-feasible starting point exists
// because a favorable column has no finite bound to rest on.
var ErrUnboundedColumn = fmt.Errorf("lp: incremental solver requires finite bounds on improving columns")

// NewIncremental builds an incremental solver over a snapshot of p's
// constraints and current bounds. Later bound changes are applied through
// SetBounds, not through p.
func NewIncremental(p *Problem, opt Options) (*Incremental, error) {
	if len(p.names) == 0 {
		return nil, ErrBadModel
	}
	maxIter := opt.MaxIter
	if maxIter <= 0 {
		maxIter = defaultMaxIter
	}
	n := len(p.names)
	m := len(p.rows)
	inc := &Incremental{
		p: p, m: m, n: n, ncols: n + m, sign: 1,
		maxIter: maxIter, o: opt.Obs,
	}
	if p.maximize {
		inc.sign = -1
	}
	inc.cost = make([]float64, inc.ncols)
	inc.lb = make([]float64, inc.ncols)
	inc.ub = make([]float64, inc.ncols)
	for j := 0; j < n; j++ {
		inc.cost[j] = inc.sign * p.obj[j]
		inc.lb[j] = p.lo[j]
		inc.ub[j] = p.hi[j]
	}
	// One slack per row: a.x + s = rhs with the slack range encoding the
	// relation.
	inc.rowRHS = make([]float64, m)
	inc.origRow = make([][]Term, m)
	for i := 0; i < m; i++ {
		inc.rowRHS[i] = p.rhs[i]
		inc.origRow[i] = append([]Term(nil), p.rows[i]...)
		sj := n + i
		switch p.ops[i] {
		case LE:
			inc.lb[sj], inc.ub[sj] = 0, math.Inf(1)
		case GE:
			inc.lb[sj], inc.ub[sj] = math.Inf(-1), 0
		default:
			inc.lb[sj], inc.ub[sj] = 0, 0
		}
	}
	if err := inc.rebuild(); err != nil {
		return nil, err
	}
	return inc, nil
}

// rebuild constructs the tableau from scratch with the all-slack basis
// and dual-feasible nonbasic states.
func (inc *Incremental) rebuild() error {
	inc.T = make([][]float64, inc.m)
	for i := 0; i < inc.m; i++ {
		row := make([]float64, inc.ncols)
		for _, t := range inc.origRow[i] {
			row[t.Var] += t.Coef
		}
		row[inc.n+i] = 1
		inc.T[i] = row
	}
	inc.basis = make([]int, inc.m)
	inc.state = make([]varState, inc.ncols)
	inc.val = make([]float64, inc.ncols)
	inc.zrow = append([]float64(nil), inc.cost...)

	for j := 0; j < inc.ncols; j++ {
		if err := inc.restNonbasic(j); err != nil {
			return err
		}
	}
	for i := 0; i < inc.m; i++ {
		sj := inc.n + i
		inc.basis[i] = sj
		inc.state[sj] = inBasis
	}
	inc.recomputeBeta()
	return nil
}

// restNonbasic places column j on a dual-feasible finite bound.
func (inc *Incremental) restNonbasic(j int) error {
	c := inc.cost[j]
	switch {
	case c >= 0 && !math.IsInf(inc.lb[j], -1):
		inc.state[j] = atLower
		inc.val[j] = inc.lb[j]
	case c <= 0 && !math.IsInf(inc.ub[j], 1):
		inc.state[j] = atUpper
		inc.val[j] = inc.ub[j]
	case !math.IsInf(inc.lb[j], -1):
		// c < 0 but only the lower bound is finite: dual infeasible start.
		return ErrUnboundedColumn
	case !math.IsInf(inc.ub[j], 1):
		return ErrUnboundedColumn
	default:
		return ErrUnboundedColumn
	}
	return nil
}

// recomputeBeta refreshes the basic values from the nonbasic point.
// Valid only immediately after rebuild, when T rows are original rows.
func (inc *Incremental) recomputeBeta() {
	inc.beta = make([]float64, inc.m)
	for i := 0; i < inc.m; i++ {
		v := inc.rowRHS[i]
		for j := 0; j < inc.ncols; j++ {
			if inc.state[j] != inBasis && inc.T[i][j] != 0 {
				v -= inc.T[i][j] * inc.val[j]
			}
		}
		inc.beta[i] = v
	}
}

// SetBounds changes the bounds of structural variable v. Nonbasic
// variables resting on a moved bound are shifted (updating the basic
// values); basic variables simply acquire the new box and are repaired by
// the next Solve.
func (inc *Incremental) SetBounds(v VarID, lo, hi float64) {
	j := int(v)
	if math.IsInf(lo, 0) || hi < lo {
		panic(fmt.Sprintf("lp: invalid incremental bounds [%v, %v]", lo, hi))
	}
	inc.lb[j], inc.ub[j] = lo, hi
	if inc.state[j] == inBasis {
		return
	}
	// Re-rest the nonbasic variable inside the new box, preferring the
	// bound it already sits on to minimize perturbation.
	newVal := inc.val[j]
	switch inc.state[j] {
	case atLower:
		newVal = lo
	case atUpper:
		if math.IsInf(hi, 1) {
			inc.state[j] = atLower
			newVal = lo
		} else {
			newVal = hi
		}
	}
	if delta := newVal - inc.val[j]; delta != 0 {
		for i := 0; i < inc.m; i++ {
			if a := inc.T[i][j]; a != 0 {
				inc.beta[i] -= a * delta
			}
		}
		inc.val[j] = newVal
	}
}

// Clone returns an independent copy of the solver sharing only the
// immutable problem snapshot (constraint rows, right-hand sides,
// objective). The clone starts from the same tableau and bounds, and
// subsequent SetBounds/Solve calls on either side never affect the
// other, so each branch-and-bound worker can carry its own warm basis
// cloned from one root solver. Clone is not safe to call concurrently
// with Solve or SetBounds on the receiver.
func (inc *Incremental) Clone() *Incremental {
	c := &Incremental{
		// Shared immutable snapshot: p (objective read-only), cost, rowRHS
		// and origRow are never written after NewIncremental.
		p: inc.p, m: inc.m, n: inc.n, ncols: inc.ncols, sign: inc.sign,
		cost: inc.cost, rowRHS: inc.rowRHS, origRow: inc.origRow,

		lb:    append([]float64(nil), inc.lb...),
		ub:    append([]float64(nil), inc.ub...),
		beta:  append([]float64(nil), inc.beta...),
		basis: append([]int(nil), inc.basis...),
		state: append([]varState(nil), inc.state...),
		val:   append([]float64(nil), inc.val...),
		zrow:  append([]float64(nil), inc.zrow...),

		iter: inc.iter, solves: inc.solves, maxIter: inc.maxIter,
		blandLeft: inc.blandLeft, degenCount: inc.degenCount,
		o: inc.o,
	}
	c.T = make([][]float64, inc.m)
	for i := range inc.T {
		c.T[i] = append([]float64(nil), inc.T[i]...)
	}
	return c
}

// Solve restores primal feasibility by dual simplex pivots and returns
// the optimum. The returned solution shares no state with the solver.
func (inc *Incremental) Solve() (*Solution, error) {
	return inc.SolveCtx(context.Background())
}

// SolveCtx is Solve under a context: the dual simplex loop polls
// ctx.Done() every few pivots and aborts with ctx.Err(). The tableau is
// left in a consistent (dual feasible) state, so a later SolveCtx with a
// live context resumes the repair.
func (inc *Incremental) SolveCtx(ctx context.Context) (*Solution, error) {
	start := time.Now()
	inc.solves++
	inc.solveDegen = 0
	inc.done = ctx.Done()
	inc.cancelled = false
	// Periodic full rebuild bounds numerical drift from long pivot chains.
	if inc.solves%256 == 0 {
		if err := inc.rebuild(); err != nil {
			return nil, err
		}
	}
	iterStart := inc.iter
	st := inc.dualSimplex()
	if inc.cancelled {
		return nil, ctx.Err()
	}
	sol := &Solution{Status: st, Iterations: inc.iter - iterStart, DegeneratePivots: inc.solveDegen}
	if st == StatusOptimal || st == StatusIterLimit {
		x := make([]float64, inc.n)
		for j := 0; j < inc.n; j++ {
			if inc.state[j] == inBasis {
				continue
			}
			x[j] = inc.val[j]
		}
		for i, b := range inc.basis {
			if b < inc.n {
				x[b] = inc.beta[i]
			}
		}
		obj := 0.0
		for j := 0; j < inc.n; j++ {
			obj += inc.p.obj[j] * x[j]
		}
		sol.X = x
		sol.Objective = obj
	}
	if inc.o.Enabled() {
		inc.o.Emit(obs.Event{
			Kind: obs.KindLPSolve, Status: st.String(), Obj: sol.Objective,
			Iters: sol.Iterations, Degenerate: inc.solveDegen,
			DurUS: time.Since(start).Microseconds(), Warm: true,
			Span: obs.SpanID(ctx),
		})
	}
	return sol, nil
}

// dualSimplex pivots until the basic values return inside their boxes.
func (inc *Incremental) dualSimplex() Status {
	iterStart := inc.iter
	for {
		if inc.iter-iterStart >= inc.maxIter {
			return StatusIterLimit
		}
		if inc.done != nil && inc.iter&cancelPollMask == 0 {
			select {
			case <-inc.done:
				inc.cancelled = true
				return StatusIterLimit
			default:
			}
		}
		// Leaving choice: most violated basic.
		leave := -1
		var viol float64
		var needIncrease bool
		for i := 0; i < inc.m; i++ {
			b := inc.basis[i]
			if d := inc.lb[b] - inc.beta[i]; d > viol+zeroTol {
				viol, leave, needIncrease = d, i, true
			}
			if d := inc.beta[i] - inc.ub[b]; d > viol+zeroTol {
				viol, leave, needIncrease = d, i, false
			}
		}
		if leave < 0 {
			return StatusOptimal
		}
		if !inc.dualPivot(leave, needIncrease) {
			return StatusInfeasible
		}
		inc.iter++
	}
}

// dualPivot performs one dual simplex pivot on the given row. When the
// basic variable must increase (below its lower bound), an entering
// nonbasic is sought that can push it up while keeping dual feasibility;
// symmetric for decrease. Returns false when no entering column exists —
// the primal is infeasible.
func (inc *Incremental) dualPivot(r int, needIncrease bool) bool {
	row := inc.T[r]
	bland := inc.blandLeft > 0
	enter := -1
	bestRatio := math.Inf(1)
	bestAbs := 0.0
	for j := 0; j < inc.ncols; j++ {
		if inc.state[j] == inBasis {
			continue
		}
		a := row[j]
		if a == 0 {
			continue
		}
		var ok bool
		var ratio float64
		if needIncrease {
			// Basic increases when an at-lower variable with a<0 rises, or an
			// at-upper variable with a>0 falls.
			if inc.state[j] == atLower && a < -pivTol {
				ok, ratio = true, inc.zrow[j]/(-a)
			} else if inc.state[j] == atUpper && a > pivTol {
				ok, ratio = true, (-inc.zrow[j])/a
			}
		} else {
			if inc.state[j] == atLower && a > pivTol {
				ok, ratio = true, inc.zrow[j]/a
			} else if inc.state[j] == atUpper && a < -pivTol {
				ok, ratio = true, (-inc.zrow[j])/(-a)
			}
		}
		if !ok {
			continue
		}
		if ratio < -1e-7 {
			// Numerical dual infeasibility; treat as zero ratio.
			ratio = 0
		}
		take := false
		switch {
		case bland:
			take = enter < 0 || j < enter
		case ratio < bestRatio-zeroTol:
			take = true
		case ratio <= bestRatio+zeroTol && math.Abs(a) > bestAbs:
			take = true
		}
		if take {
			enter, bestRatio, bestAbs = j, ratio, math.Abs(a)
		}
	}
	if enter < 0 {
		return false
	}
	if bestRatio < zeroTol {
		inc.solveDegen++
		inc.degenCount++
		if inc.degenCount > 200 && inc.blandLeft == 0 {
			inc.blandLeft = 500
		}
	} else {
		inc.degenCount = 0
		if inc.blandLeft > 0 {
			inc.blandLeft--
		}
	}

	b := inc.basis[r]
	var target float64
	if needIncrease {
		target = inc.lb[b]
	} else {
		target = inc.ub[b]
	}
	aE := row[enter]
	deltaE := (inc.beta[r] - target) / aE

	// Move the entering variable; all other basics adjust.
	for i := 0; i < inc.m; i++ {
		if i != r {
			if a := inc.T[i][enter]; a != 0 {
				inc.beta[i] -= a * deltaE
			}
		}
	}
	enterVal := inc.val[enter] + deltaE

	// Leaving variable rests on the violated bound.
	if needIncrease {
		inc.state[b] = atLower
		inc.val[b] = inc.lb[b]
	} else {
		inc.state[b] = atUpper
		inc.val[b] = inc.ub[b]
	}
	inc.state[enter] = inBasis
	inc.basis[r] = enter
	inc.beta[r] = enterVal

	// Gaussian pivot.
	invA := 1 / aE
	for j := 0; j < inc.ncols; j++ {
		row[j] *= invA
	}
	for i := 0; i < inc.m; i++ {
		if i == r {
			continue
		}
		f := inc.T[i][enter]
		if f == 0 {
			continue
		}
		ti := inc.T[i]
		for j := 0; j < inc.ncols; j++ {
			ti[j] -= f * row[j]
		}
		ti[enter] = 0
	}
	if f := inc.zrow[enter]; f != 0 {
		for j := 0; j < inc.ncols; j++ {
			inc.zrow[j] -= f * row[j]
		}
		inc.zrow[enter] = 0
	}
	return true
}
