// Package portfolio races heterogeneous floorplanning backends — the
// paper's exact successive-augmentation MILP, the slicing and
// sequence-pair annealers, and an alternating-projection feasibility
// searcher — concurrently on one instance with a shared incumbent board
// (ROADMAP item 5; algorithm-portfolio bound sharing in the style of
// Huchette, Dey and Vielma). Every contestant solves the same
// fixed-width instance; any backend publishing a *verified* feasible
// height immediately tightens the MILP's branch-and-bound cutoff through
// milp.Options.External, and when the exact backend proves its answer
// (optimality or domination of the incumbent) the losers are
// context-cancelled. Importing the package registers the "portfolio",
// "anneal", "seqpair" and "project" backends with core.Config.Backend.
package portfolio

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"afp/internal/core"
	"afp/internal/geom"
	"afp/internal/netlist"
	"afp/internal/obs"
)

// Options tunes a portfolio race.
type Options struct {
	// Backends names the contestants; empty selects DefaultBackends.
	Backends []string
	// Budget caps individual contestants' wall time by name; missing or
	// zero entries leave only the surrounding context's deadline.
	Budget map[string]time.Duration
	// Seed drives the stochastic contestants.
	Seed int64
	// Obs receives the race telemetry: a "portfolio" root span, one
	// "backend.<name>" child span per contestant, portfolio.incumbent
	// events as the board improves and one portfolio.win event at the
	// end. Nil disables instrumentation.
	Obs *obs.Observer
}

// DefaultBackends is the contestant set of an unconfigured race: the
// exact solver plus every heuristic.
func DefaultBackends() []string { return []string{"milp", "anneal", "seqpair", "project"} }

// BackendResult records one contestant's outcome.
type BackendResult struct {
	Name string
	// Outcome is "optimal" (exact backend finished and proved its
	// answer), "dominated" (exact backend proved the board incumbent
	// unbeatable and conceded), "finished" (heuristic ran its course),
	// "cancelled" (lost the race and was context-cancelled), "budget"
	// (per-backend budget expired) or "error".
	Outcome string
	// Height is the best verified height this backend published to the
	// board (+Inf when it never published).
	Height float64
	// Published counts its verified board publications.
	Published int
	// Nodes sums branch-and-bound nodes across augmentation steps (exact
	// backend only).
	Nodes int
	// Bound is the backend's own proven objective bound, when it proved
	// one (the exact backend's optimal height).
	Bound float64
	// Wall is the contestant's wall time until return.
	Wall time.Duration
	// Err carries the terminal error text for Outcome "error".
	Err string
}

// Result is the outcome of a portfolio race.
type Result struct {
	// Result is the winning floorplan; its Source is
	// "portfolio:<winner>".
	*core.Result
	// Winner names the backend whose floorplan won.
	Winner string
	// TTFF is the time from race start to the first verified feasible
	// incumbent, the portfolio's headline latency metric.
	TTFF time.Duration
	// Bound is the proven lower bound on the achievable height at race
	// end, and BoundSource who established it.
	Bound       float64
	BoundSource string
	// Backends holds one entry per contestant, in Options.Backends order.
	Backends []BackendResult
	// Incumbents is the board's improvement history; heights strictly
	// decrease and bound snapshots never do.
	Incumbents []Incumbent
	// Rejected counts candidates that failed verification.
	Rejected int
	// Elapsed is the whole race's wall time.
	Elapsed time.Duration
}

// Solve races the configured backends on d and returns the best verified
// floorplan together with the per-backend outcome table. The race ends
// when the exact backend proves its answer (remaining contestants are
// cancelled) or when every contestant returns. On context cancellation
// the best floorplan so far rides along with ctx.Err(), matching
// core.FloorplanCtx's partial-result convention.
func Solve(ctx context.Context, d *netlist.Design, cfg core.Config, opts Options) (*Result, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	names := opts.Backends
	if len(names) == 0 {
		names = DefaultBackends()
	}
	bks := make([]backend, 0, len(names))
	for _, name := range names {
		b, err := newBackend(name)
		if err != nil {
			return nil, err
		}
		bks = append(bks, b)
	}
	width := core.ChipWidthFor(d, cfg)
	var (
		out *Result
		err error
	)
	opts.Obs.Do(ctx, "portfolio", obs.SpanAttrs{Detail: d.Name}, func(ctx context.Context) {
		out, err = race(ctx, d, cfg, opts, bks, width)
	})
	return out, err
}

func race(ctx context.Context, d *netlist.Design, cfg core.Config, opts Options, bks []backend, width float64) (*Result, error) {
	start := time.Now()
	board := NewBoard(d, width, opts.Obs)
	raceCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// settled flips before cancel() fires, so losers observing their
	// context's cancellation can tell "lost the race" from an outside
	// cancel (the channel close orders the store before their load).
	var settled atomic.Bool
	outcomes := make([]BackendResult, len(bks))
	finals := make([]*core.Result, len(bks))
	var wg sync.WaitGroup
	for i, b := range bks {
		wg.Add(1)
		go func(i int, b backend) {
			defer wg.Done()
			bctx := raceCtx
			budget := opts.Budget[b.name()]
			if budget > 0 {
				var cancelB context.CancelFunc
				bctx, cancelB = context.WithTimeout(bctx, budget)
				defer cancelB()
			}
			t0 := time.Now()
			res, err := b.run(bctx, d, cfg, opts, board, width)
			br := BackendResult{Name: b.name(), Wall: time.Since(t0), Height: math.Inf(1)}
			if res != nil {
				for _, st := range res.Steps {
					br.Nodes += st.Nodes
				}
			}
			proven := b.exact() && (err == nil || errors.Is(err, core.ErrDominated))
			switch {
			case err == nil && b.exact():
				br.Outcome = "optimal"
				if res != nil {
					br.Bound = res.Height
				}
			case errors.Is(err, core.ErrDominated):
				br.Outcome = "dominated"
			case err == nil:
				br.Outcome = "finished"
			case errors.Is(err, context.DeadlineExceeded) && bctx.Err() != nil && raceCtx.Err() == nil:
				br.Outcome = "budget"
			case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
				br.Outcome = "cancelled"
			default:
				br.Outcome = "error"
				br.Err = err.Error()
			}
			if n, best, ok := board.publishedBy(b.name()); ok {
				br.Published, br.Height = n, best
			}
			outcomes[i] = br
			finals[i] = res
			if proven {
				// The exact backend settled the race: cancel the losers so
				// their workers return to the pool immediately.
				settled.Store(true)
				cancel()
			}
		}(i, b)
	}
	wg.Wait()

	res := &Result{
		Backends:   outcomes,
		Incumbents: board.History(),
		Rejected:   board.Rejected(),
		Elapsed:    time.Since(start),
	}
	res.Bound, res.BoundSource = board.Bound()
	if ttff, ok := board.FirstFeasible(); ok {
		res.TTFF = ttff
	}

	best, bestSrc, ok := board.Snapshot()
	if !ok {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("portfolio: no backend produced a feasible floorplan (%s)", outcomeSummary(outcomes))
	}
	// The exact backend wins ties: if it completed optimally and its
	// height matches the board best, the answer is its (proven) result,
	// steps and all.
	winner, winRes := bestSrc, best
	for i, b := range bks {
		if b.exact() && outcomes[i].Outcome == "optimal" && finals[i] != nil &&
			finals[i].Height <= best.Height+geom.Tol {
			winner, winRes = b.name(), finals[i]
			break
		}
	}
	if len(bks) > 1 {
		winRes.Source = "portfolio:" + winner
	}
	res.Result = winRes
	res.Winner = winner
	res.Result.Elapsed = res.Elapsed

	opts.Obs.Emit(obs.Event{
		Kind: obs.KindPortfolioWin, Detail: winner,
		Height: winRes.Height, Bound: res.Bound,
		DurUS: res.Elapsed.Microseconds(),
	})
	if err := ctx.Err(); err != nil {
		return res, err
	}
	return res, nil
}

func outcomeSummary(outcomes []BackendResult) string {
	parts := make([]string, len(outcomes))
	for i, o := range outcomes {
		s := o.Name + ":" + o.Outcome
		if o.Err != "" {
			s += " " + o.Err
		}
		parts[i] = s
	}
	return strings.Join(parts, ", ")
}

func init() {
	core.RegisterBackend("portfolio", func(ctx context.Context, d *netlist.Design, cfg core.Config) (*core.Result, error) {
		r, err := Solve(ctx, d, cfg, Options{
			Budget: cfg.BackendBudget, Seed: cfg.BackendSeed, Obs: cfg.Obs,
		})
		if r == nil || r.Result == nil {
			return nil, err
		}
		return r.Result, err
	})
	core.RegisterBackend("anneal", singleBackend("anneal"))
	core.RegisterBackend("seqpair", singleBackend("seqpair"))
	core.RegisterBackend("project", singleBackend("project"))
}

// singleBackend adapts one contestant to the core backend contract: a
// race of one, with the same fixed width, verification gate and
// telemetry as a full portfolio.
func singleBackend(name string) core.BackendFunc {
	return func(ctx context.Context, d *netlist.Design, cfg core.Config) (*core.Result, error) {
		r, err := Solve(ctx, d, cfg, Options{
			Backends: []string{name},
			Budget:   cfg.BackendBudget, Seed: cfg.BackendSeed, Obs: cfg.Obs,
		})
		if r == nil || r.Result == nil {
			return nil, err
		}
		return r.Result, err
	}
}
