package portfolio

import (
	"context"
	"math"
	"math/rand"
	"sort"

	"afp/internal/core"
	"afp/internal/geom"
	"afp/internal/netlist"
)

// project is the portfolio's feasibility-seeking contestant, in the
// spirit of projection/superiorization floorplanners (Per-RMAP): instead
// of searching a combinatorial encoding it treats the layout as a point
// in R^2n and alternates projections onto the two constraint families —
// the chip envelope (clamp every box into the W x Hcap window) and
// pairwise non-overlap (push each overlapping pair apart along the axis
// of least penetration, half each). The near-feasible point is then
// legalized by bottom-left packing the boxes in projected (y, x) order,
// the verified result is published to the board, and the target envelope
// Hcap shrinks below the achieved height (the superiorization step)
// before the next round re-samples flexible widths. Deterministic for a
// given seed.
func project(ctx context.Context, d *netlist.Design, seed int64, width float64, board *Board) (*core.Result, error) {
	n := len(d.Modules)
	if n == 0 {
		return &core.Result{Design: d, ChipWidth: width, Source: "project"}, nil
	}
	rng := rand.New(rand.NewSource(seed + 0x9e3779b9))
	area := d.TotalArea()

	var best *core.Result
	// Start with a loose envelope: 40% taller than the perfect packing.
	hcap := 1.4 * area / width
	stale := 0
	for round := 0; stale < 25 && round < 400; round++ {
		select {
		case <-ctx.Done():
			return best, ctx.Err()
		default:
		}
		ws, hs, rot := sampleShapes(d, rng, width)
		res := oneRound(d, rng, ws, hs, rot, width, hcap)
		if best == nil || res.Height < best.Height-geom.Tol {
			best = res
			stale = 0
		} else {
			stale++
		}
		board.Publish("project", res)
		// Superiorize: aim the next envelope below the best height seen,
		// never below the area bound.
		hcap = math.Max(area/width, 0.95*best.Height)
	}
	return best, nil
}

// sampleShapes draws one realization of every module's dimensions:
// flexible modules get a width uniform in their feasible range, rigid
// modules rotate only when they would not fit the chip upright.
func sampleShapes(d *netlist.Design, rng *rand.Rand, width float64) (ws, hs []float64, rot []bool) {
	n := len(d.Modules)
	ws, hs, rot = make([]float64, n), make([]float64, n), make([]bool, n)
	for i := range d.Modules {
		m := &d.Modules[i]
		if m.Kind == netlist.Flexible {
			wmin, wmax := m.WidthRange()
			w := wmin + rng.Float64()*(wmax-wmin)
			if w > width {
				w = math.Min(width, wmax)
			}
			ws[i], hs[i] = w, m.HeightFor(w)
			continue
		}
		ws[i], hs[i] = m.W, m.H
		if ws[i] > width && m.Rotatable {
			ws[i], hs[i], rot[i] = m.H, m.W, true
		}
	}
	return ws, hs, rot
}

// oneRound runs the alternating-projection sweeps from a fresh random
// start and legalizes the result.
func oneRound(d *netlist.Design, rng *rand.Rand, ws, hs []float64, rot []bool, width, hcap float64) *core.Result {
	n := len(ws)
	px, py := make([]float64, n), make([]float64, n)
	for i := 0; i < n; i++ {
		px[i] = rng.Float64() * math.Max(0, width-ws[i])
		py[i] = rng.Float64() * math.Max(0, hcap-hs[i])
	}
	for sweep := 0; sweep < 60; sweep++ {
		moved := false
		// Projection onto pairwise non-overlap: separate each violating
		// pair along the axis of least penetration, half the overlap each.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				ox := math.Min(px[i]+ws[i], px[j]+ws[j]) - math.Max(px[i], px[j])
				oy := math.Min(py[i]+hs[i], py[j]+hs[j]) - math.Max(py[i], py[j])
				if ox <= geom.Tol || oy <= geom.Tol {
					continue
				}
				moved = true
				if ox < oy {
					if px[i] <= px[j] {
						px[i] -= ox / 2
						px[j] += ox / 2
					} else {
						px[j] -= ox / 2
						px[i] += ox / 2
					}
				} else {
					if py[i] <= py[j] {
						py[i] -= oy / 2
						py[j] += oy / 2
					} else {
						py[j] -= oy / 2
						py[i] += oy / 2
					}
				}
			}
		}
		// Projection onto the chip envelope: clamp into [0,W] x [0,Hcap].
		for i := 0; i < n; i++ {
			nx := clamp(px[i], 0, math.Max(0, width-ws[i]))
			ny := clamp(py[i], 0, math.Max(0, hcap-hs[i]))
			if math.Abs(nx-px[i]) > geom.Tol || math.Abs(ny-py[i]) > geom.Tol {
				moved = true
			}
			px[i], py[i] = nx, ny
		}
		if !moved {
			break
		}
	}

	// Legalize: bottom-left pack in the projected row-major order. The
	// packer guarantees no overlap and no width excess, so the published
	// result survives verification whenever every ws[i] <= width.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if math.Abs(py[ia]-py[ib]) > geom.Tol {
			return py[ia] < py[ib]
		}
		return px[ia] < px[ib]
	})
	pw, ph := make([]float64, n), make([]float64, n)
	for k, mi := range order {
		pw[k], ph[k] = ws[mi], hs[mi]
	}
	rects := core.PackBottomLeft(pw, ph, width)

	res := &core.Result{Design: d, ChipWidth: width, Source: "project"}
	var h float64
	for k, mi := range order {
		r := rects[k]
		res.Placements = append(res.Placements, core.Placement{
			Index: mi, Env: r, Mod: r, Rotated: rot[mi],
		})
		if top := r.Y2(); top > h {
			h = top
		}
	}
	res.Height = h
	return res
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
