package portfolio

import (
	"context"
	"fmt"

	"afp/internal/anneal"
	"afp/internal/core"
	"afp/internal/mipmodel"
	"afp/internal/netlist"
	"afp/internal/obs"
	"afp/internal/seqpair"
)

// backend is one portfolio contestant. run solves the design at the
// race's fixed chip width, publishing every improving verified layout to
// the board, and returns its own best floorplan. An exact backend
// finishing without error has *proven* its answer optimal (or proven the
// board incumbent unbeatable, signalled by core.ErrDominated), which
// settles the race; heuristic backends merely finish.
type backend interface {
	name() string
	exact() bool
	run(ctx context.Context, d *netlist.Design, cfg core.Config, opts Options, board *Board, width float64) (*core.Result, error)
}

func newBackend(name string) (backend, error) {
	switch name {
	case "milp":
		return milpBackend{}, nil
	case "anneal":
		return annealBackend{}, nil
	case "seqpair":
		return seqpairBackend{}, nil
	case "project":
		return projectBackend{}, nil
	}
	return nil, fmt.Errorf("portfolio: unknown backend %q (have milp, anneal, seqpair, project)", name)
}

// milpBackend runs the paper's successive augmentation with the board
// wired in as the external bound: every verified heuristic incumbent
// immediately tightens the per-step branch-and-bound cutoff, and when
// the board incumbent dominates everything a step can still reach the
// run concedes with core.ErrDominated instead of grinding on.
type milpBackend struct{}

func (milpBackend) name() string { return "milp" }
func (milpBackend) exact() bool  { return true }

func (milpBackend) run(ctx context.Context, d *netlist.Design, cfg core.Config, opts Options, board *Board, width float64) (res *core.Result, err error) {
	c := cfg
	c.Backend = ""
	c.ChipWidth = width
	c.ExternalBound = board.Best
	c.Obs = opts.Obs
	opts.Obs.Do(ctx, "backend.milp", obs.SpanAttrs{Detail: d.Name}, func(ctx context.Context) {
		res, err = core.FloorplanCtx(ctx, d, c)
	})
	if err == nil && res != nil {
		board.Publish("milp", res)
	}
	return res, err
}

// heuristicLambda maps the core objective onto the heuristics' HPWL
// weight: area-only races compare pure heights.
func heuristicLambda(cfg core.Config) float64 {
	if cfg.Objective == mipmodel.AreaWire {
		return cfg.WireWeight
	}
	return 0
}

// annealBackend races the Wong-Liu slicing annealer at the fixed race
// width, publishing every improvement to the board as it cools.
type annealBackend struct{}

func (annealBackend) name() string { return "anneal" }
func (annealBackend) exact() bool  { return false }

func (annealBackend) run(ctx context.Context, d *netlist.Design, cfg core.Config, opts Options, board *Board, width float64) (res *core.Result, err error) {
	c := anneal.Config{
		Seed:       opts.Seed,
		Lambda:     heuristicLambda(cfg),
		FixedWidth: width,
		Obs:        opts.Obs,
		Best:       func(r *core.Result) { board.Publish("anneal", r) },
	}
	opts.Obs.Do(ctx, "backend.anneal", obs.SpanAttrs{Detail: d.Name}, func(ctx context.Context) {
		res, err = anneal.FloorplanCtx(ctx, d, c)
	})
	if res != nil {
		board.Publish("anneal", res)
	}
	return res, err
}

// seqpairBackend races the sequence-pair annealer, which explores
// general (non-slicing) packings, at the fixed race width.
type seqpairBackend struct{}

func (seqpairBackend) name() string { return "seqpair" }
func (seqpairBackend) exact() bool  { return false }

func (seqpairBackend) run(ctx context.Context, d *netlist.Design, cfg core.Config, opts Options, board *Board, width float64) (res *core.Result, err error) {
	c := seqpair.Config{
		Seed:       opts.Seed,
		Lambda:     heuristicLambda(cfg),
		FixedWidth: width,
		Obs:        opts.Obs,
		Best:       func(r *core.Result) { board.Publish("seqpair", r) },
	}
	opts.Obs.Do(ctx, "backend.seqpair", obs.SpanAttrs{Detail: d.Name}, func(ctx context.Context) {
		res, err = seqpair.FloorplanCtx(ctx, d, c)
	})
	if res != nil {
		board.Publish("seqpair", res)
	}
	return res, err
}

// projectBackend is the alternating-projection feasibility searcher (see
// project.go).
type projectBackend struct{}

func (projectBackend) name() string { return "project" }
func (projectBackend) exact() bool  { return false }

func (projectBackend) run(ctx context.Context, d *netlist.Design, cfg core.Config, opts Options, board *Board, width float64) (res *core.Result, err error) {
	opts.Obs.Do(ctx, "backend.project", obs.SpanAttrs{Detail: d.Name}, func(ctx context.Context) {
		res, err = project(ctx, d, opts.Seed, width, board)
	})
	return res, err
}
