package portfolio

import (
	"math"
	"testing"

	"afp/internal/core"
	"afp/internal/geom"
	"afp/internal/netlist"
	"afp/internal/obs"
)

// boardDesign is a 3-rigid-module fixture; every module is 4x2.
func boardDesign() *netlist.Design {
	d := &netlist.Design{Name: "board"}
	for _, name := range []string{"a", "b", "c"} {
		d.Modules = append(d.Modules, netlist.Module{Name: name, Kind: netlist.Rigid, W: 4, H: 2})
	}
	return d
}

// legalStack places the three modules in a legal stack of the given
// module heights (4 wide, stacked vertically).
func legalStack(d *netlist.Design) *core.Result {
	res := &core.Result{Design: d, ChipWidth: 4, Height: 6, Source: "test"}
	for i := range d.Modules {
		r := geom.NewRect(0, float64(i)*2, 4, 2)
		res.Placements = append(res.Placements, core.Placement{Index: i, Env: r, Mod: r})
	}
	return res
}

func TestBoardPublishVerified(t *testing.T) {
	d := boardDesign()
	b := NewBoard(d, 4, nil)
	if _, _, ok := b.Best(); ok {
		t.Fatal("empty board reports a best")
	}
	if !b.Publish("anneal", legalStack(d)) {
		t.Fatal("legal candidate rejected")
	}
	h, src, ok := b.Best()
	if !ok || math.Abs(h-6) > 1e-9 || src != "portfolio:anneal" {
		t.Fatalf("Best() = %v, %q, %v", h, src, ok)
	}
	if ttff, ok := b.FirstFeasible(); !ok || ttff <= 0 {
		t.Fatalf("FirstFeasible() = %v, %v", ttff, ok)
	}
}

// The satellite regression: a deliberately-overlapping candidate is
// rejected by the shared verify path and never tightens the bound the
// branch and bound sees through Best().
func TestBoardRejectsOverlappingCandidate(t *testing.T) {
	d := boardDesign()
	b := NewBoard(d, 4, nil)
	if !b.Publish("anneal", legalStack(d)) {
		t.Fatal("legal candidate rejected")
	}

	// An "amazing" height-2 floorplan ... with all three modules stacked
	// on top of each other.
	cheat := &core.Result{Design: d, ChipWidth: 4, Height: 2, Source: "cheat"}
	for i := range d.Modules {
		r := geom.NewRect(0, 0, 4, 2)
		cheat.Placements = append(cheat.Placements, core.Placement{Index: i, Env: r, Mod: r})
	}
	if b.Publish("project", cheat) {
		t.Fatal("overlapping candidate accepted as incumbent")
	}
	if h, src, _ := b.Best(); math.Abs(h-6) > 1e-9 || src != "portfolio:anneal" {
		t.Fatalf("overlapping candidate moved the board: Best() = %v, %q", h, src)
	}
	if b.Rejected() != 1 {
		t.Fatalf("Rejected() = %d, want 1", b.Rejected())
	}
	if len(b.History()) != 1 {
		t.Fatalf("history grew on a rejected candidate: %v", b.History())
	}
}

func TestBoardRejectsIncompleteAndTooWide(t *testing.T) {
	d := boardDesign()
	b := NewBoard(d, 4, nil)

	partial := legalStack(d)
	partial.Placements = partial.Placements[:2]
	if b.Publish("x", partial) {
		t.Fatal("incomplete candidate accepted")
	}

	wide := &core.Result{Design: d, ChipWidth: 12, Height: 2, Source: "wide"}
	for i := range d.Modules {
		r := geom.NewRect(float64(i)*4, 0, 4, 2)
		wide.Placements = append(wide.Placements, core.Placement{Index: i, Env: r, Mod: r})
	}
	if b.Publish("x", wide) {
		t.Fatal("candidate wider than the race width accepted")
	}
	if b.Publish("x", nil) {
		t.Fatal("nil candidate accepted")
	}
	if _, _, ok := b.Best(); ok {
		t.Fatal("rejected candidates installed an incumbent")
	}
}

// Bounds only tighten, and a non-improving publish leaves the history
// alone, so incumbent heights are strictly decreasing and their bound
// snapshots monotonically non-decreasing.
func TestBoardBoundMonotoneAndHistoryDecreasing(t *testing.T) {
	d := boardDesign()
	b := NewBoard(d, 4, nil)
	lb, src := b.Bound()
	// Area bound: 24/4 = 6; tallest min module side = 2.
	if math.Abs(lb-6) > 1e-9 || src != "area" {
		t.Fatalf("seed bound = %v (%s), want 6 (area)", lb, src)
	}
	b.PublishBound("milp", 5) // looser: must not regress
	if got, _ := b.Bound(); math.Abs(got-6) > 1e-9 {
		t.Fatalf("bound regressed to %v", got)
	}
	b.PublishBound("milp", 6.5)
	if got, src := b.Bound(); math.Abs(got-6.5) > 1e-9 || src != "milp" {
		t.Fatalf("bound = %v (%s), want 6.5 (milp)", got, src)
	}

	first := legalStack(d)
	first.Height = 8 // a worse chip that still contains the stack
	if !b.Publish("seqpair", first) {
		t.Fatal("first candidate rejected")
	}
	if b.Publish("seqpair", first) {
		t.Fatal("equal-height candidate accepted as an improvement")
	}
	if !b.Publish("anneal", legalStack(d)) {
		t.Fatal("improving candidate rejected")
	}
	hist := b.History()
	if len(hist) != 2 {
		t.Fatalf("history length = %d, want 2", len(hist))
	}
	for i := 1; i < len(hist); i++ {
		if hist[i].Height >= hist[i-1].Height {
			t.Fatalf("incumbent heights not strictly decreasing: %v", hist)
		}
		if hist[i].Bound < hist[i-1].Bound {
			t.Fatalf("bound snapshots decreased: %v", hist)
		}
	}
}

// Incumbent events carry the publish telemetry: source, height, the
// first-feasible flag, and the monotone bound.
func TestBoardEmitsIncumbentEvents(t *testing.T) {
	d := boardDesign()
	rec := &obs.Recorder{}
	b := NewBoard(d, 4, obs.New(rec))
	worse := legalStack(d)
	worse.Height = 8
	b.Publish("project", worse)
	b.Publish("anneal", legalStack(d))

	events := rec.Events()
	var inc []obs.Event
	for _, e := range events {
		if e.Kind == obs.KindPortfolioIncumbent {
			inc = append(inc, e)
		}
	}
	if len(inc) != 2 {
		t.Fatalf("incumbent events = %d, want 2", len(inc))
	}
	if !inc[0].First || inc[0].Detail != "project" {
		t.Fatalf("first event = %+v", inc[0])
	}
	if inc[1].First || inc[1].Detail != "anneal" || inc[1].Height >= inc[0].Height {
		t.Fatalf("second event = %+v", inc[1])
	}
}
