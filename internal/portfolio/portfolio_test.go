package portfolio

import (
	"context"
	"math"
	"strings"
	"testing"
	"time"

	"afp/internal/core"
	"afp/internal/geom"
	"afp/internal/milp"
	"afp/internal/netlist"
	"afp/internal/obs"
)

// flex9 is the 9-module all-flexible design of the presolve/linearize
// benchmarks: the portfolio acceptance instance.
func flex9() *netlist.Design {
	d := &netlist.Design{Name: "flex"}
	for i := 0; i < 9; i++ {
		d.Modules = append(d.Modules, netlist.Module{
			Name: string(rune('a' + i)), Kind: netlist.Flexible,
			Area: 40 + 10*float64(i%3), MinAspect: 0.4, MaxAspect: 2.5,
		})
	}
	return d
}

func flex9Config() core.Config {
	return core.Config{
		GroupSize: 3,
		MILP:      milp.Options{MaxNodes: 50000, TimeLimit: 30 * time.Second},
		Workers:   1,
	}
}

// The race-mode stress test: race all four backends on the 9-module
// flexible design and check the portfolio contract under any
// interleaving — the answer is never worse than milp-alone, a milp win
// reproduces the milp-alone height exactly, the milp contestant never
// visits more nodes than the cold solve, incumbents strictly improve,
// and every contestant ends in a terminal outcome.
func TestRaceStressFlex9(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second race")
	}
	d := flex9()
	cfg := flex9Config()
	alone, err := core.FloorplanCtx(context.Background(), d, cfg)
	if err != nil {
		t.Fatalf("milp-alone: %v", err)
	}
	aloneNodes := 0
	for _, s := range alone.Steps {
		aloneNodes += s.Nodes
	}

	rec := &obs.Recorder{}
	res, err := Solve(context.Background(), d, cfg, Options{Seed: 7, Obs: obs.New(rec)})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if v := res.Result.Verify(); len(v) > 0 {
		t.Fatalf("winning floorplan is illegal: %v", v)
	}

	// (a) The race never loses to milp-alone, and when milp itself wins
	// the heights are identical — same trajectory, same optimum.
	if res.Height > alone.Height+geom.Tol {
		t.Fatalf("race height %.6g worse than milp-alone %.6g", res.Height, alone.Height)
	}
	if res.Winner == "milp" && math.Abs(res.Height-alone.Height) > geom.Tol {
		t.Fatalf("milp won with height %.6g, but milp-alone gives %.6g", res.Height, alone.Height)
	}
	if want := "portfolio:" + res.Winner; res.Result.Source != want {
		t.Fatalf("winner source = %q, want %q", res.Result.Source, want)
	}

	// (b) Proven bound monotone non-decreasing across incumbent
	// injections, and every incumbent strictly improves.
	if len(res.Incumbents) == 0 {
		t.Fatal("no incumbents recorded")
	}
	for i := 1; i < len(res.Incumbents); i++ {
		if res.Incumbents[i].Height >= res.Incumbents[i-1].Height {
			t.Fatalf("incumbent heights not strictly decreasing: %+v", res.Incumbents)
		}
		if res.Incumbents[i].Bound < res.Incumbents[i-1].Bound {
			t.Fatalf("bound snapshots decreased: %+v", res.Incumbents)
		}
	}
	if res.Bound > res.Height+geom.Tol {
		t.Fatalf("proven bound %.6g above the achieved height %.6g", res.Bound, res.Height)
	}
	if res.TTFF <= 0 || res.TTFF > res.Elapsed {
		t.Fatalf("TTFF %v outside (0, %v]", res.TTFF, res.Elapsed)
	}

	// (c) External pruning only removes nodes: the racing milp contestant
	// never visits more than the cold solve. And every backend ended in a
	// terminal outcome (a cancelled loser released its workers — Solve
	// returned, so no goroutine is still holding any).
	terminal := map[string]bool{
		"optimal": true, "dominated": true, "finished": true,
		"cancelled": true, "budget": true, "error": true,
	}
	if len(res.Backends) != 4 {
		t.Fatalf("backend results = %d, want 4", len(res.Backends))
	}
	for _, b := range res.Backends {
		if !terminal[b.Outcome] {
			t.Fatalf("backend %s has non-terminal outcome %q", b.Name, b.Outcome)
		}
		if b.Outcome == "error" {
			t.Fatalf("backend %s errored: %s", b.Name, b.Err)
		}
		if b.Name == "milp" && b.Nodes > aloneNodes {
			t.Fatalf("racing milp visited %d nodes, cold solve only %d", b.Nodes, aloneNodes)
		}
	}

	// The telemetry contract: one portfolio span, one backend span per
	// contestant, one win event naming the winner.
	spans := map[string]int{}
	for _, e := range rec.Events() {
		if e.Kind == obs.KindSpanStart {
			spans[e.Name]++
		}
	}
	if spans["portfolio"] != 1 {
		t.Fatalf("portfolio spans = %d, want 1", spans["portfolio"])
	}
	for _, name := range DefaultBackends() {
		if spans["backend."+name] != 1 {
			t.Fatalf("backend.%s spans = %d, want 1", name, spans["backend."+name])
		}
	}
	win, ok := (&recorderWrap{rec}).lastKind(obs.KindPortfolioWin)
	if !ok || win.Detail != res.Winner {
		t.Fatalf("win event = %+v, want winner %q", win, res.Winner)
	}
}

// recorderWrap adapts Recorder.LastKind through an interface-stable
// helper (keeps the test readable if the Recorder API grows).
type recorderWrap struct{ r *obs.Recorder }

func (w *recorderWrap) lastKind(k obs.Kind) (obs.Event, bool) { return w.r.LastKind(k) }

// A dominated milp contestant is a successful concession, not an error,
// and the step trace of the conceding run labels the external owner.
func TestRaceMilpConcedesToHeuristics(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second race")
	}
	d := flex9()
	cfg := flex9Config()
	res, err := Solve(context.Background(), d, cfg, Options{Seed: 3})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	var milpR *BackendResult
	for i := range res.Backends {
		if res.Backends[i].Name == "milp" {
			milpR = &res.Backends[i]
		}
	}
	if milpR == nil {
		t.Fatal("no milp backend result")
	}
	switch milpR.Outcome {
	case "optimal", "dominated", "cancelled":
	default:
		t.Fatalf("milp outcome = %q", milpR.Outcome)
	}
	if milpR.Outcome == "dominated" && res.Winner == "milp" {
		t.Fatal("dominated milp cannot win the race")
	}
}

// The backend registry: core.Config.Backend dispatches into this
// package for portfolio and the standalone heuristics, and rejects
// unknown names with the available set.
func TestCoreBackendRegistry(t *testing.T) {
	d := flex9()
	for _, name := range []string{"anneal", "seqpair", "project"} {
		cfg := core.Config{Backend: name, BackendSeed: 5}
		r, err := core.FloorplanCtx(context.Background(), d, cfg)
		if err != nil {
			t.Fatalf("backend %s: %v", name, err)
		}
		if r.Source != name {
			t.Fatalf("backend %s: source = %q", name, r.Source)
		}
		if v := r.Verify(); len(v) > 0 {
			t.Fatalf("backend %s: illegal floorplan: %v", name, v)
		}
	}
	_, err := core.FloorplanCtx(context.Background(), d, core.Config{Backend: "nope"})
	if err == nil || !strings.Contains(err.Error(), "unknown backend") {
		t.Fatalf("unknown backend error = %v", err)
	}
	names := core.Backends()
	for _, want := range []string{"milp", "portfolio", "anneal", "seqpair", "project"} {
		found := false
		for _, n := range names {
			found = found || n == want
		}
		if !found {
			t.Fatalf("Backends() = %v, missing %q", names, want)
		}
	}
}

// A race cancelled from outside still returns the best incumbent so far
// alongside ctx.Err(), and unknown contestants fail fast.
func TestSolveCancellationAndValidation(t *testing.T) {
	d := flex9()
	_, err := Solve(context.Background(), d, core.Config{}, Options{Backends: []string{"warp"}})
	if err == nil || !strings.Contains(err.Error(), "unknown backend") {
		t.Fatalf("unknown contestant error = %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	res, err := Solve(ctx, d, flex9Config(), Options{Seed: 11, Backends: []string{"anneal", "project"}})
	if err != nil && res == nil {
		t.Fatalf("cancelled race returned no result: %v", err)
	}
	if res != nil && res.Result != nil {
		if v := res.Result.Verify(); len(v) > 0 {
			t.Fatalf("cancelled race returned illegal floorplan: %v", v)
		}
	}
}

// Per-backend budgets are honored: a microscopic milp budget forces a
// budget outcome while the heuristics still finish.
func TestBackendBudget(t *testing.T) {
	d := flex9()
	res, err := Solve(context.Background(), d, flex9Config(), Options{
		Seed:     1,
		Backends: []string{"milp", "project"},
		Budget:   map[string]time.Duration{"milp": time.Microsecond},
	})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	for _, b := range res.Backends {
		if b.Name == "milp" && b.Outcome != "budget" && b.Outcome != "dominated" {
			t.Fatalf("milp outcome under 1us budget = %q, want budget", b.Outcome)
		}
	}
	if res.Winner != "project" {
		t.Fatalf("winner = %q, want project (milp was starved)", res.Winner)
	}
}
