package portfolio

import (
	"sync"
	"time"

	"afp/internal/core"
	"afp/internal/geom"
	"afp/internal/netlist"
	"afp/internal/obs"
)

// Incumbent is one entry of the board's incumbent history: a verified
// feasible floorplan that improved on everything published before it.
type Incumbent struct {
	// Source is the backend that produced the floorplan.
	Source string
	// Height is the verified chip height.
	Height float64
	// At is the offset from the race start at which it was published.
	At time.Duration
	// Bound is the board's proven lower bound at publish time. Because
	// PublishBound only ever raises the bound, this column is
	// monotonically non-decreasing down the history.
	Bound float64
}

// Board is the shared incumbent board of a portfolio race. Backends
// publish candidate floorplans; the board verifies each one with the
// same core verify path the service uses and keeps the best. The MILP
// contestant polls Best through milp.Options.External, so a verified
// heuristic incumbent immediately tightens the branch-and-bound cutoff
// of every in-flight step — and an illegal candidate can never do so.
//
// Lock discipline: Board.mu is a leaf. No method calls back into any
// solver while holding it, so the B&B pool lock -> Board.mu ordering
// stays acyclic when workers poll Best.
type Board struct {
	design *netlist.Design
	width  float64
	obs    *obs.Observer
	start  time.Time

	mu       sync.Mutex
	best     *core.Result            // guarded by mu
	bestSrc  string                  // guarded by mu
	haveBest bool                    // guarded by mu
	firstAt  time.Duration           // guarded by mu
	bound    float64                 // guarded by mu
	boundSrc string                  // guarded by mu
	history  []Incumbent             // guarded by mu
	rejected int                     // guarded by mu
	stats    map[string]*sourceStats // guarded by mu
}

// sourceStats entries live in Board.stats and are only handed out by
// statsLocked, so the board lock guards every field.
type sourceStats struct {
	published int     // guarded by portfolio.Board.mu
	rejected  int     // guarded by portfolio.Board.mu
	best      float64 // guarded by portfolio.Board.mu
}

// NewBoard creates an incumbent board for racing backends on design d at
// fixed chip width. The proven lower bound is seeded with the area bound
// max(TotalArea/width, tallest minimum module height) — the only bound
// that is sound for every solution paradigm, since the MILP's secant
// linearization overestimates flexible heights and therefore cannot
// bound true packings.
func NewBoard(d *netlist.Design, width float64, o *obs.Observer) *Board {
	b := &Board{
		design: d,
		width:  width,
		obs:    o,
		start:  time.Now(),
		stats:  make(map[string]*sourceStats),
	}
	lb := d.TotalArea() / width
	for i := range d.Modules {
		m := &d.Modules[i]
		var hmin float64
		if m.Kind == netlist.Flexible {
			_, wmax := m.WidthRange()
			hmin = m.HeightFor(wmax)
		} else {
			hmin = m.H
			if m.Rotatable && m.W < hmin {
				hmin = m.W
			}
		}
		if hmin > lb {
			lb = hmin
		}
	}
	b.bound, b.boundSrc = lb, "area"
	return b
}

// Publish offers a candidate floorplan under the given source name. The
// candidate must survive the shared core verify path before it may
// become an incumbent: a missing module, a pairwise overlap, an
// out-of-bounds envelope, a rigid dimension mismatch or a flexible
// area/aspect violation all reject it, so no heuristic layout can
// tighten the B&B cutoff without being a legal floorplan of the full
// design at the race's chip width. Returns whether the candidate became
// the new board best. Safe for concurrent use.
func (b *Board) Publish(source string, res *core.Result) bool {
	if res == nil || len(res.Placements) != len(b.design.Modules) {
		b.reject(source)
		return false
	}
	// Compete at the race width: a packing narrower than W is welcome,
	// one wider is out of bounds.
	cand := *res
	cand.Design = b.design
	if cand.ChipWidth > b.width+geom.Tol {
		b.reject(source)
		return false
	}
	cand.ChipWidth = b.width
	if len(cand.Verify()) > 0 {
		b.reject(source)
		return false
	}

	b.mu.Lock()
	st := b.statsLocked(source)
	st.published++
	if st.published == 1 || cand.Height < st.best {
		st.best = cand.Height
	}
	if b.haveBest && cand.Height >= b.best.Height-geom.Tol {
		b.mu.Unlock()
		return false
	}
	first := !b.haveBest
	at := time.Since(b.start)
	if first {
		b.firstAt = at
	}
	b.best, b.bestSrc, b.haveBest = &cand, source, true
	b.history = append(b.history, Incumbent{Source: source, Height: cand.Height, At: at, Bound: b.bound})
	bound := b.bound
	b.mu.Unlock()

	b.obs.Emit(obs.Event{
		Kind: obs.KindPortfolioIncumbent, Detail: source,
		Height: cand.Height, Bound: bound,
		DurUS: at.Microseconds(), First: first,
	})
	return true
}

func (b *Board) reject(source string) {
	b.mu.Lock()
	b.rejected++
	b.statsLocked(source).rejected++
	b.mu.Unlock()
}

// statsLocked returns the per-source stats entry.
// locked: b.mu
func (b *Board) statsLocked(source string) *sourceStats {
	st := b.stats[source]
	if st == nil {
		st = &sourceStats{}
		b.stats[source] = st
	}
	return st
}

// Best returns the current incumbent height and its portfolio-qualified
// source label. It satisfies both milp.Options.External and
// core.Config.ExternalBound, and is safe to call from B&B workers that
// hold their pool lock (see the lock discipline above).
func (b *Board) Best() (height float64, source string, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.haveBest {
		return 0, "", false
	}
	return b.best.Height, "portfolio:" + b.bestSrc, true
}

// PublishBound raises the proven lower bound on the achievable chip
// height. The board keeps the maximum of everything published, so the
// bound trajectory recorded in the incumbent history is monotonically
// non-decreasing by construction. Callers are responsible for soundness:
// only bounds valid for every solution paradigm (such as the area bound)
// belong here.
func (b *Board) PublishBound(source string, bound float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if bound > b.bound {
		b.bound, b.boundSrc = bound, source
	}
}

// Bound returns the proven lower bound and the source that set it.
func (b *Board) Bound() (float64, string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.bound, b.boundSrc
}

// Snapshot returns a copy of the best verified floorplan and its source.
func (b *Board) Snapshot() (*core.Result, string, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.haveBest {
		return nil, "", false
	}
	cp := *b.best
	return &cp, b.bestSrc, true
}

// History returns the incumbent improvement sequence in publish order.
func (b *Board) History() []Incumbent {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]Incumbent(nil), b.history...)
}

// FirstFeasible returns the offset from the race start at which the
// first verified incumbent landed.
func (b *Board) FirstFeasible() (time.Duration, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.haveBest {
		return 0, false
	}
	return b.firstAt, true
}

// Rejected returns how many candidates failed verification.
func (b *Board) Rejected() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.rejected
}

// published returns (publish count, best height) for one source.
func (b *Board) publishedBy(source string) (int, float64, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.stats[source]
	if st == nil || st.published == 0 {
		return 0, 0, false
	}
	return st.published, st.best, true
}
