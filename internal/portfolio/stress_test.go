package portfolio

import (
	"context"
	"sync"
	"testing"
	"time"

	"afp/internal/core"
	"afp/internal/geom"
	"afp/internal/milp"
	"afp/internal/obs"
)

// TestRaceEightWorkers races all four backends with an 8-worker MILP
// contestant while a pack of readers hammers the board from the side.
// Under -race this exercises the full concurrency surface the analyzer
// suite annotates statically: the B&B pool lock, the shared incumbent
// board, and the per-sink observer locks, all interleaved at once.
func TestRaceEightWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second race")
	}
	d := flex9()
	cfg := core.Config{
		GroupSize: 3,
		MILP:      milp.Options{MaxNodes: 50000, TimeLimit: 30 * time.Second},
		Workers:   8,
	}

	rec := &obs.Recorder{}
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Board readers: Solve owns the board internally, so the external
	// pressure here goes through the recorder sink, which every backend
	// event funnels into concurrently with the assertions below.
	wg.Add(2)
	for i := 0; i < 2; i++ {
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					rec.CountKind(obs.KindPortfolioIncumbent)
					rec.LastKind(obs.KindPortfolioWin)
				}
			}
		}()
	}

	res, err := Solve(context.Background(), d, cfg, Options{Seed: 11, Obs: obs.New(rec)})
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if v := res.Result.Verify(); len(v) > 0 {
		t.Fatalf("winning floorplan is illegal: %v", v)
	}
	if res.Bound > res.Height+geom.Tol {
		t.Fatalf("proven bound %.6g above achieved height %.6g", res.Bound, res.Height)
	}
	for i := 1; i < len(res.Incumbents); i++ {
		if res.Incumbents[i].Height >= res.Incumbents[i-1].Height {
			t.Fatalf("incumbent heights not strictly decreasing: %+v", res.Incumbents)
		}
	}
	if len(res.Backends) != 4 {
		t.Fatalf("backend results = %d, want 4", len(res.Backends))
	}
	for _, b := range res.Backends {
		if b.Outcome == "error" {
			t.Fatalf("backend %s errored: %s", b.Name, b.Err)
		}
	}
}
