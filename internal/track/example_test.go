package track_test

import (
	"fmt"

	"afp/internal/track"
)

// ExampleLeftEdge packs four channel segments into tracks.
func ExampleLeftEdge() {
	segments := []track.Interval{
		{Net: 1, Lo: 0, Hi: 4},
		{Net: 2, Lo: 2, Hi: 6},  // overlaps net 1 -> new track
		{Net: 3, Lo: 5, Hi: 9},  // fits after net 1 on track 0
		{Net: 1, Lo: 7, Hi: 10}, // same net as the first -> may share
	}
	asg := track.LeftEdge(segments)
	fmt.Println("tracks needed:", asg.Tracks)
	fmt.Println("density bound:", track.Density(segments))
	// Output:
	// tracks needed: 2
	// density bound: 2
}
