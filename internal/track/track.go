// Package track implements the classic left-edge algorithm for assigning
// net segments to routing tracks within a channel (Hashimoto-Stevens).
// The paper's final step "adjusts widths of channels to accommodate
// results of the global routing"; the number of tracks a channel really
// needs equals the chromatic number of its segment-interval graph, which
// for intervals is the maximum clique size and is produced exactly by the
// left-edge greedy.
package track

import "sort"

// Interval is one net segment occupying [Lo, Hi] along a channel. Net
// identifies the owning net; segments of the same net may share a track
// even when they touch.
type Interval struct {
	Net    int
	Lo, Hi float64
}

// Assignment is the result of track assignment.
type Assignment struct {
	// Track[i] is the track index (0-based) of the i-th input interval.
	Track []int
	// Tracks is the number of tracks used.
	Tracks int
}

// LeftEdge assigns the intervals to the minimum number of tracks such
// that no two intervals of different nets overlap on a track. Intervals
// of the same net never conflict. The classic greedy is optimal for
// interval graphs: sort by left edge and place each interval on the first
// track whose rightmost occupied point (by another net) is to its left.
func LeftEdge(intervals []Interval) Assignment {
	n := len(intervals)
	asg := Assignment{Track: make([]int, n)}
	if n == 0 {
		return asg
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ia, ib := intervals[idx[a]], intervals[idx[b]]
		//vet:allow toleq -- exact tie keeps the sort a total order; overlap tests use Eps
		if ia.Lo != ib.Lo {
			return ia.Lo < ib.Lo
		}
		return ia.Hi < ib.Hi
	})

	type trackEnd struct {
		hi  float64
		net int
	}
	var tracks []trackEnd
	for _, i := range idx {
		iv := intervals[i]
		placed := false
		for t := range tracks {
			if iv.Lo > tracks[t].hi || (tracks[t].net == iv.Net && iv.Lo >= tracks[t].hi) {
				// Strictly to the right of the previous occupant, or touching
				// a segment of the same net.
				tracks[t] = trackEnd{hi: maxF(tracks[t].hi, iv.Hi), net: iv.Net}
				asg.Track[i] = t
				placed = true
				break
			}
			if tracks[t].net == iv.Net && iv.Lo <= tracks[t].hi {
				// Same-net overlap merges onto the same track.
				tracks[t] = trackEnd{hi: maxF(tracks[t].hi, iv.Hi), net: iv.Net}
				asg.Track[i] = t
				placed = true
				break
			}
		}
		if !placed {
			tracks = append(tracks, trackEnd{hi: iv.Hi, net: iv.Net})
			asg.Track[i] = len(tracks) - 1
		}
	}
	asg.Tracks = len(tracks)
	return asg
}

// Density returns the maximum number of distinct nets crossing any point
// of the channel — the lower bound on the number of tracks. For
// same-net-merged intervals LeftEdge achieves this bound.
func Density(intervals []Interval) int {
	type event struct {
		x     float64
		delta int
	}
	// Merge intervals per net first so a net counts once per crossing.
	merged := MergePerNet(intervals)
	var evs []event
	for _, iv := range merged {
		evs = append(evs, event{iv.Lo, +1}, event{iv.Hi, -1})
	}
	sort.Slice(evs, func(a, b int) bool {
		//vet:allow toleq -- exact tie keeps the sweep-event sort a total order
		if evs[a].x != evs[b].x {
			return evs[a].x < evs[b].x
		}
		// Intervals are closed: openings are processed before closings at
		// the same point, so touching intervals of different nets conflict —
		// the same convention the LeftEdge greedy uses (tracks need a
		// contact gap between different nets).
		return evs[a].delta > evs[b].delta
	})
	cur, best := 0, 0
	for _, e := range evs {
		cur += e.delta
		if cur > best {
			best = cur
		}
	}
	return best
}

// MergePerNet merges overlapping or touching intervals belonging to the
// same net.
func MergePerNet(intervals []Interval) []Interval {
	byNet := map[int][]Interval{}
	var nets []int
	for _, iv := range intervals {
		if _, ok := byNet[iv.Net]; !ok {
			nets = append(nets, iv.Net)
		}
		byNet[iv.Net] = append(byNet[iv.Net], iv)
	}
	sort.Ints(nets)
	var out []Interval
	for _, net := range nets {
		ivs := byNet[net]
		sort.Slice(ivs, func(a, b int) bool { return ivs[a].Lo < ivs[b].Lo })
		cur := ivs[0]
		for _, iv := range ivs[1:] {
			if iv.Lo <= cur.Hi {
				cur.Hi = maxF(cur.Hi, iv.Hi)
				continue
			}
			out = append(out, cur)
			cur = iv
		}
		out = append(out, cur)
	}
	return out
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
