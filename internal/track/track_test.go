package track

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLeftEdgeBasic(t *testing.T) {
	// Three pairwise-overlapping intervals of distinct nets need 3 tracks.
	ivs := []Interval{
		{Net: 1, Lo: 0, Hi: 10},
		{Net: 2, Lo: 2, Hi: 8},
		{Net: 3, Lo: 4, Hi: 6},
	}
	asg := LeftEdge(ivs)
	if asg.Tracks != 3 {
		t.Fatalf("tracks = %d, want 3", asg.Tracks)
	}
}

func TestLeftEdgeChaining(t *testing.T) {
	// Disjoint intervals chain onto one track.
	ivs := []Interval{
		{Net: 1, Lo: 0, Hi: 2},
		{Net: 2, Lo: 3, Hi: 5},
		{Net: 3, Lo: 6, Hi: 9},
	}
	asg := LeftEdge(ivs)
	if asg.Tracks != 1 {
		t.Fatalf("tracks = %d, want 1", asg.Tracks)
	}
}

func TestLeftEdgeTouchingDifferentNets(t *testing.T) {
	// Touching endpoints of different nets may share a track only with a
	// strict gap; exact touch (Lo == prev Hi) conflicts (via contact), so
	// the greedy uses the "strictly to the right" rule.
	ivs := []Interval{
		{Net: 1, Lo: 0, Hi: 3},
		{Net: 2, Lo: 3, Hi: 6},
	}
	asg := LeftEdge(ivs)
	if asg.Tracks != 2 {
		t.Fatalf("tracks = %d, want 2 (touching nets conflict)", asg.Tracks)
	}
}

func TestLeftEdgeSameNetShares(t *testing.T) {
	ivs := []Interval{
		{Net: 1, Lo: 0, Hi: 4},
		{Net: 1, Lo: 2, Hi: 8}, // same net overlap merges
		{Net: 2, Lo: 5, Hi: 6},
	}
	asg := LeftEdge(ivs)
	if asg.Track[0] != asg.Track[1] {
		t.Fatalf("same-net segments on different tracks: %v", asg.Track)
	}
	if asg.Tracks != 2 {
		t.Fatalf("tracks = %d, want 2", asg.Tracks)
	}
}

func TestLeftEdgeEmpty(t *testing.T) {
	asg := LeftEdge(nil)
	if asg.Tracks != 0 || len(asg.Track) != 0 {
		t.Fatalf("empty assignment = %+v", asg)
	}
}

func TestDensity(t *testing.T) {
	ivs := []Interval{
		{Net: 1, Lo: 0, Hi: 10},
		{Net: 2, Lo: 2, Hi: 8},
		{Net: 3, Lo: 4, Hi: 6},
		{Net: 4, Lo: 20, Hi: 30},
	}
	if d := Density(ivs); d != 3 {
		t.Fatalf("density = %d, want 3", d)
	}
	// Same-net segments count once.
	same := []Interval{
		{Net: 1, Lo: 0, Hi: 4},
		{Net: 1, Lo: 2, Hi: 8},
	}
	if d := Density(same); d != 1 {
		t.Fatalf("same-net density = %d, want 1", d)
	}
}

func TestMergePerNet(t *testing.T) {
	ivs := []Interval{
		{Net: 1, Lo: 0, Hi: 2},
		{Net: 1, Lo: 2, Hi: 5}, // touching merges
		{Net: 1, Lo: 7, Hi: 9},
		{Net: 2, Lo: 1, Hi: 3},
	}
	merged := MergePerNet(ivs)
	if len(merged) != 3 {
		t.Fatalf("merged = %v", merged)
	}
}

// Properties: (1) assignment is conflict-free, (2) the track count equals
// the density lower bound (left-edge optimality for interval graphs).
func TestLeftEdgeProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(20)
		ivs := make([]Interval, n)
		for i := range ivs {
			lo := float64(rng.Intn(50))
			ivs[i] = Interval{
				Net: rng.Intn(8),
				Lo:  lo,
				Hi:  lo + 1 + float64(rng.Intn(20)),
			}
		}
		// Merge same-net segments first so optimality applies cleanly.
		merged := MergePerNet(ivs)
		asg := LeftEdge(merged)

		// Conflict-freedom.
		for i := range merged {
			for j := i + 1; j < len(merged); j++ {
				if asg.Track[i] != asg.Track[j] || merged[i].Net == merged[j].Net {
					continue
				}
				if merged[i].Lo <= merged[j].Hi && merged[j].Lo <= merged[i].Hi {
					t.Fatalf("trial %d: conflicting intervals share track %d: %v %v",
						trial, asg.Track[i], merged[i], merged[j])
				}
			}
		}
		// Optimality.
		if d := Density(merged); asg.Tracks != d {
			t.Fatalf("trial %d: tracks %d != density %d\n%v", trial, asg.Tracks, d, merged)
		}
	}
}

// quick.Check property: track indices are always within [0, Tracks).
func TestLeftEdgeTrackRange(t *testing.T) {
	f := func(seeds []uint8) bool {
		var ivs []Interval
		for i, s := range seeds {
			ivs = append(ivs, Interval{
				Net: i % 5,
				Lo:  float64(s % 40),
				Hi:  float64(s%40) + float64(s%7) + 1,
			})
		}
		asg := LeftEdge(ivs)
		for _, tr := range asg.Track {
			if tr < 0 || tr >= asg.Tracks && len(ivs) > 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
