package mipmodel

import (
	"math"
	"testing"

	"afp/internal/geom"
	"afp/internal/milp"
)

func manhattan(a, b geom.Rect) float64 {
	return math.Abs(a.CenterX()-b.CenterX()) + math.Abs(a.CenterY()-b.CenterY())
}

func TestCriticalPairBoundsDistance(t *testing.T) {
	// Three 2x2 modules on a width-6 chip. Without constraints, modules 0
	// and 2 may end up 4 apart; with a critical bound of 2 they must be
	// adjacent.
	mods := []struct{ name string }{{"a"}, {"b"}, {"c"}}
	newMods := make([]NewModule, 3)
	for i := range mods {
		m := rigid(mods[i].name, 2, 2, false)
		newMods[i] = NewModule{Index: i, Mod: &m}
	}
	spec := &Spec{
		ChipWidth: 6,
		New:       newMods,
		Critical:  []CriticalPair{{A: 0, B: 2, MaxLen: 2}},
	}
	b, res := solveSpec(t, spec)
	pls := b.Decode(res.X)
	checkNoOverlap(t, pls, nil)
	if d := manhattan(pls[0].Env, pls[2].Env); d > 2+1e-6 {
		t.Fatalf("critical pair %v apart, bound 2", d)
	}
}

func TestCriticalPairToAnchor(t *testing.T) {
	m := rigid("a", 2, 2, false)
	spec := &Spec{
		ChipWidth: 12,
		Obstacles: []geom.Rect{geom.NewRect(0, 0, 12, 2)},
		Anchors:   []Anchor{{Index: 7, X: 10, Y: 1}},
		New:       []NewModule{{Index: 0, Mod: &m}},
		Critical:  []CriticalPair{{A: 0, B: 7, MaxLen: 3}},
	}
	b, res := solveSpec(t, spec)
	pls := b.Decode(res.X)
	d := math.Abs(pls[0].Env.CenterX()-10) + math.Abs(pls[0].Env.CenterY()-1)
	if d > 3+1e-6 {
		t.Fatalf("anchor-critical module %v away, bound 3", d)
	}
}

func TestCriticalPairInfeasible(t *testing.T) {
	// Two 2x2 modules with centers that can never be closer than 2 (they
	// must not overlap): a bound of 1 is infeasible.
	m1 := rigid("a", 2, 2, false)
	m2 := rigid("b", 2, 2, false)
	spec := &Spec{
		ChipWidth: 8,
		New:       []NewModule{{Index: 0, Mod: &m1}, {Index: 1, Mod: &m2}},
		Critical:  []CriticalPair{{A: 0, B: 1, MaxLen: 1}},
	}
	b, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	res := milp.Solve(b.Model, milp.Options{})
	if res.Status != milp.StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
}

func TestCriticalPairUnknownModulesIgnored(t *testing.T) {
	m := rigid("a", 2, 2, false)
	spec := &Spec{
		ChipWidth: 8,
		New:       []NewModule{{Index: 0, Mod: &m}},
		Critical:  []CriticalPair{{A: 5, B: 9, MaxLen: 1}}, // neither present
	}
	b, res := solveSpec(t, spec)
	if got := b.HeightOf(res.X); math.Abs(got-2) > 1e-6 {
		t.Fatalf("height = %v, want 2", got)
	}
}

func TestCriticalAndWireShareVariables(t *testing.T) {
	// When a pair is both connected and critical, the wire variables are
	// shared: the model should have exactly one dx/dy pair for it.
	m1 := rigid("a", 2, 2, false)
	m2 := rigid("b", 2, 2, false)
	spec := &Spec{
		ChipWidth:  8,
		New:        []NewModule{{Index: 0, Mod: &m1}, {Index: 1, Mod: &m2}},
		Objective:  AreaWire,
		WireWeight: 0.01,
		Conn: func(a, b int) float64 {
			if a != b {
				return 1
			}
			return 0
		},
		Critical: []CriticalPair{{A: 0, B: 1, MaxLen: 2.5}},
	}
	b, res := solveSpec(t, spec)
	if len(b.wires) != 1 {
		t.Fatalf("wire pairs = %d, want 1 (shared)", len(b.wires))
	}
	pls := b.Decode(res.X)
	if d := manhattan(pls[0].Env, pls[1].Env); d > 2.5+1e-6 {
		t.Fatalf("distance %v exceeds bound", d)
	}
}
