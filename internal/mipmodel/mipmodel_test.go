package mipmodel

import (
	"math"
	"testing"

	"afp/internal/geom"
	"afp/internal/milp"
	"afp/internal/netlist"
)

func rigid(name string, w, h float64, rot bool) netlist.Module {
	return netlist.Module{Name: name, Kind: netlist.Rigid, W: w, H: h, Rotatable: rot}
}

func flexible(name string, area, minA, maxA float64) netlist.Module {
	return netlist.Module{Name: name, Kind: netlist.Flexible, Area: area, MinAspect: minA, MaxAspect: maxA}
}

func solveSpec(t *testing.T, spec *Spec) (*Built, *milp.Result) {
	t.Helper()
	b, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	res := milp.Solve(b.Model, milp.Options{})
	if res.Status != milp.StatusOptimal {
		t.Fatalf("milp status = %v", res.Status)
	}
	return b, res
}

func checkNoOverlap(t *testing.T, pls []Placement, obstacles []geom.Rect) {
	t.Helper()
	envs := make([]geom.Rect, len(pls))
	for i, p := range pls {
		envs[i] = p.Env
	}
	if i, j, bad := geom.AnyOverlap(envs); bad {
		t.Fatalf("placements %d and %d overlap: %v %v", i, j, envs[i], envs[j])
	}
	for _, p := range pls {
		for k, o := range obstacles {
			if p.Env.Overlaps(o) {
				t.Fatalf("placement %v overlaps obstacle %d %v", p.Env, k, o)
			}
		}
	}
}

func TestTwoRigidSideBySide(t *testing.T) {
	m1 := rigid("a", 3, 2, false)
	m2 := rigid("b", 4, 2, false)
	spec := &Spec{
		ChipWidth: 8,
		New:       []NewModule{{Index: 0, Mod: &m1}, {Index: 1, Mod: &m2}},
	}
	b, res := solveSpec(t, spec)
	if h := b.HeightOf(res.X); math.Abs(h-2) > 1e-6 {
		t.Fatalf("height = %v, want 2 (side by side)", h)
	}
	pls := b.Decode(res.X)
	checkNoOverlap(t, pls, nil)
}

func TestTwoRigidMustStack(t *testing.T) {
	m1 := rigid("a", 3, 2, false)
	m2 := rigid("b", 4, 2, false)
	spec := &Spec{
		ChipWidth: 5, // too narrow for side-by-side (needs 7)
		New:       []NewModule{{Index: 0, Mod: &m1}, {Index: 1, Mod: &m2}},
	}
	b, res := solveSpec(t, spec)
	if h := b.HeightOf(res.X); math.Abs(h-4) > 1e-6 {
		t.Fatalf("height = %v, want 4 (stacked)", h)
	}
	checkNoOverlap(t, b.Decode(res.X), nil)
}

func TestRotationReducesHeight(t *testing.T) {
	// A 1x6 module on a width-6 chip next to a 5x1: without rotation the
	// tall module forces height 6; rotated it lies flat (6x1) and stacks
	// with the other to height 2.
	tall := rigid("tall", 1, 6, true)
	flat := rigid("flat", 5, 1, false)
	spec := &Spec{
		ChipWidth: 6,
		New:       []NewModule{{Index: 0, Mod: &tall}, {Index: 1, Mod: &flat}},
	}
	b, res := solveSpec(t, spec)
	if h := b.HeightOf(res.X); h > 2+1e-6 {
		t.Fatalf("height = %v, want <= 2 with rotation", h)
	}
	pls := b.Decode(res.X)
	checkNoOverlap(t, pls, nil)
	if !pls[0].Rotated {
		t.Fatal("expected the tall module to be rotated")
	}
	// Non-rotatable control: same problem without rotation permission.
	tall2 := rigid("tall", 1, 6, false)
	spec2 := &Spec{
		ChipWidth: 6,
		New:       []NewModule{{Index: 0, Mod: &tall2}, {Index: 1, Mod: &flat}},
	}
	_, res2 := solveSpec(t, spec2)
	if res2.Objective < 6-1e-6 {
		t.Fatalf("control height = %v, want 6", res2.Objective)
	}
}

func TestFlexibleAdaptsShape(t *testing.T) {
	// A flexible area-8 module (aspect 0.5..2) beside a rigid 4x2 on a
	// width-8 chip: the flexible can become 4x2 and sit beside it, height 2.
	fl := flexible("f", 8, 0.5, 2)
	rg := rigid("r", 4, 2, false)
	spec := &Spec{
		ChipWidth: 8,
		New:       []NewModule{{Index: 0, Mod: &fl}, {Index: 1, Mod: &rg}},
	}
	b, res := solveSpec(t, spec)
	if h := b.HeightOf(res.X); h > 2+1e-6 {
		t.Fatalf("height = %v, want <= 2", h)
	}
	pls := b.Decode(res.X)
	checkNoOverlap(t, pls, nil)
	// The decoded flexible module must conserve its area exactly.
	fp := pls[0]
	if math.Abs(fp.Mod.W*fp.Mod.H-8) > 1e-6 {
		t.Fatalf("flexible area = %v, want 8", fp.Mod.W*fp.Mod.H)
	}
	// Aspect ratio within bounds.
	ar := fp.Mod.W / fp.Mod.H
	if ar < 0.5-1e-6 || ar > 2+1e-6 {
		t.Fatalf("aspect = %v outside [0.5, 2]", ar)
	}
}

func TestSecantOverestimatesTangentUnderestimates(t *testing.T) {
	m := flexible("f", 100, 0.25, 4) // w in [5, 20]
	nm := NewModule{Mod: &m}
	sec, err := moduleDims(&nm, Secant)
	if err != nil {
		t.Fatal(err)
	}
	tan, err := moduleDims(&nm, Tangent)
	if err != nil {
		t.Fatal(err)
	}
	// At the expansion endpoints both are exact.
	hTrue := func(w float64) float64 { return 100 / w }
	hLin := func(d dims, w float64) float64 { return d.hConst + d.hSlope*(20-w) }
	for _, w := range []float64{5, 20} {
		if math.Abs(hLin(sec, w)-hTrue(w)) > 1e-9 && w == 5 {
			t.Fatalf("secant not exact at w=%v: %v vs %v", w, hLin(sec, w), hTrue(w))
		}
	}
	if math.Abs(hLin(tan, 20)-hTrue(20)) > 1e-9 {
		t.Fatal("tangent not exact at expansion point")
	}
	// In the interior: secant above the curve, tangent below.
	for _, w := range []float64{7, 10, 15} {
		if hLin(sec, w) < hTrue(w)-1e-9 {
			t.Fatalf("secant below curve at w=%v: %v < %v", w, hLin(sec, w), hTrue(w))
		}
		if hLin(tan, w) > hTrue(w)+1e-9 {
			t.Fatalf("tangent above curve at w=%v: %v > %v", w, hLin(tan, w), hTrue(w))
		}
	}
}

func TestObstaclesRespected(t *testing.T) {
	// One 3x3 module, chip width 6, an obstacle occupying the left half up
	// to height 4: module fits right of the obstacle at ground level.
	m := rigid("a", 3, 3, false)
	spec := &Spec{
		ChipWidth: 6,
		Obstacles: []geom.Rect{geom.NewRect(0, 0, 3, 4)},
		New:       []NewModule{{Index: 0, Mod: &m}},
	}
	b, res := solveSpec(t, spec)
	// Chip height must still cover the obstacle (floor 4).
	if h := b.HeightOf(res.X); math.Abs(h-4) > 1e-6 {
		t.Fatalf("height = %v, want 4 (obstacle top)", h)
	}
	pls := b.Decode(res.X)
	checkNoOverlap(t, pls, spec.Obstacles)
	if pls[0].Env.X < 3-1e-6 {
		t.Fatalf("module at %v should be right of the obstacle", pls[0].Env)
	}
}

func TestWireObjectivePullsConnectedTogether(t *testing.T) {
	// Three 2x2 modules on a width-6 chip; module 0 and 2 are connected.
	// With AreaOnly any of the 3! side-by-side orders is optimal; with
	// AreaWire modules 0 and 2 must be adjacent.
	mods := []netlist.Module{rigid("a", 2, 2, false), rigid("b", 2, 2, false), rigid("c", 2, 2, false)}
	conn := func(i, j int) float64 {
		if i+j == 2 && i != j { // pair (0,2)
			return 5
		}
		return 0
	}
	spec := &Spec{
		ChipWidth:  6,
		New:        []NewModule{{Index: 0, Mod: &mods[0]}, {Index: 1, Mod: &mods[1]}, {Index: 2, Mod: &mods[2]}},
		Conn:       conn,
		Objective:  AreaWire,
		WireWeight: 0.05,
	}
	b, res := solveSpec(t, spec)
	pls := b.Decode(res.X)
	checkNoOverlap(t, pls, nil)
	if b.HeightOf(res.X) > 2+1e-6 {
		t.Fatalf("height = %v, want 2", b.HeightOf(res.X))
	}
	d02 := math.Abs(pls[0].Env.CenterX() - pls[2].Env.CenterX())
	if d02 > 2+1e-6 {
		t.Fatalf("connected modules %v apart, want adjacent (2)", d02)
	}
}

func TestAnchorsAttractPlacement(t *testing.T) {
	// A single module connected to an anchor on the right side of the
	// chip floor: the optimizer should place it near the anchor.
	m := rigid("a", 2, 2, false)
	spec := &Spec{
		ChipWidth: 10,
		Obstacles: []geom.Rect{geom.NewRect(0, 0, 10, 2)},
		Anchors:   []Anchor{{Index: 1, X: 9, Y: 1}},
		Conn: func(i, j int) float64 {
			if (i == 0 && j == 1) || (i == 1 && j == 0) {
				return 3
			}
			return 0
		},
		Objective:  AreaWire,
		WireWeight: 0.05,
	}
	spec.New = []NewModule{{Index: 0, Mod: &m}}
	b, res := solveSpec(t, spec)
	pls := b.Decode(res.X)
	checkNoOverlap(t, pls, spec.Obstacles)
	if pls[0].Env.CenterX() < 7-1e-6 {
		t.Fatalf("module center %v, want pulled toward anchor x=9", pls[0].Env.CenterX())
	}
}

func TestEnvelopePadding(t *testing.T) {
	m := rigid("a", 4, 2, false)
	m.Pins = [4]int{2, 1, 2, 1} // N E S W
	spec := &Spec{
		ChipWidth: 20,
		New:       []NewModule{{Index: 0, Mod: &m, PadW: 1, PadH: 2}},
	}
	b, res := solveSpec(t, spec)
	pls := b.Decode(res.X)
	if math.Abs(pls[0].Env.W-5) > 1e-6 || math.Abs(pls[0].Env.H-4) > 1e-6 {
		t.Fatalf("envelope = %v, want 5x4", pls[0].Env)
	}
	if math.Abs(pls[0].Mod.W-4) > 1e-6 || math.Abs(pls[0].Mod.H-2) > 1e-6 {
		t.Fatalf("module = %v, want 4x2", pls[0].Mod)
	}
	if !pls[0].Env.ContainsRect(pls[0].Mod) {
		t.Fatal("module not inside envelope")
	}
	if h := b.HeightOf(res.X); math.Abs(h-4) > 1e-6 {
		t.Fatalf("height = %v, want 4 (envelope height)", h)
	}
}

func TestHintIsFeasibleIncumbent(t *testing.T) {
	m1 := rigid("a", 3, 2, false)
	m2 := rigid("b", 4, 2, true)
	fl := flexible("f", 8, 0.5, 2)
	spec := &Spec{
		ChipWidth: 8,
		Obstacles: []geom.Rect{geom.NewRect(0, 0, 8, 3)},
		New: []NewModule{
			{Index: 0, Mod: &m1}, {Index: 1, Mod: &m2}, {Index: 2, Mod: &fl},
		},
	}
	b, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	// A hand-made stacked placement above the obstacle. The flexible module
	// is left at max width (dw = 0): per the secant model that is 4 wide
	// (sqrt(8*2)) and 2 high.
	envs := []geom.Rect{
		geom.NewRect(0, 3, 3, 2),
		geom.NewRect(3, 3, 4, 2),
		geom.NewRect(0, 5, 4, 2),
	}
	hint := b.Hint(envs, []bool{false, false, false}, []float64{0, 0, 0})
	res := milp.Solve(b.Model, milp.Options{MaxNodes: 1, Incumbent: hint})
	if res.Status != milp.StatusFeasible && res.Status != milp.StatusOptimal {
		t.Fatalf("hint did not produce an incumbent: %v", res.Status)
	}
	// The incumbent is at least as good as the hint's height (7).
	if h := b.HeightOf(res.X); h > 7+1e-6 {
		t.Fatalf("height %v worse than hint height 7", h)
	}
	// With a full solve the optimum packs everything in two levels.
	resFull := milp.Solve(b.Model, milp.Options{Incumbent: hint})
	if resFull.Status != milp.StatusOptimal {
		t.Fatalf("full solve status %v", resFull.Status)
	}
	checkNoOverlap(t, b.Decode(resFull.X), spec.Obstacles)
}

func TestBuildErrors(t *testing.T) {
	m := rigid("a", 3, 2, false)
	if _, err := Build(&Spec{ChipWidth: 0, New: []NewModule{{Mod: &m}}}); err == nil {
		t.Fatal("expected error for zero width")
	}
	if _, err := Build(&Spec{ChipWidth: 5}); err == nil {
		t.Fatal("expected error for no modules")
	}
	wide := rigid("w", 9, 1, false)
	if _, err := Build(&Spec{ChipWidth: 5, New: []NewModule{{Mod: &wide}}}); err == nil {
		t.Fatal("expected error for module wider than chip")
	}
	if _, err := Build(&Spec{ChipWidth: 5, New: []NewModule{{Mod: &m}}, Objective: AreaWire}); err == nil {
		t.Fatal("expected error for AreaWire without connectivity")
	}
}

func TestObjectiveLinearizationStrings(t *testing.T) {
	if AreaOnly.String() != "area" || AreaWire.String() != "area+wire" {
		t.Fatal("Objective strings")
	}
	if Secant.String() != "secant" || Tangent.String() != "tangent" {
		t.Fatal("Linearization strings")
	}
}

func TestDegenerateFlexibleRange(t *testing.T) {
	// MinAspect == MaxAspect: flexible collapses to fixed dims.
	m := flexible("f", 16, 1, 1)
	spec := &Spec{ChipWidth: 10, New: []NewModule{{Index: 0, Mod: &m}}}
	b, res := solveSpec(t, spec)
	pls := b.Decode(res.X)
	if math.Abs(pls[0].Env.W-4) > 1e-6 || math.Abs(pls[0].Env.H-4) > 1e-6 {
		t.Fatalf("degenerate flexible = %v, want 4x4", pls[0].Env)
	}
}
