package mipmodel

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"afp/internal/geom"
	"afp/internal/milp"
	"afp/internal/netlist"
)

// Regression for the Tangent decode gap: the tangent linearization lies
// below the h = S/w hyperbola, so the model's envelope height can be
// smaller than the exact module height computed by Decode. The decoded
// envelope must grow to contain the module, never hide part of it.
func TestTangentDecodeClampsEnvelope(t *testing.T) {
	fl := flexible("f", 8, 0.5, 2) // w in [2, 4]
	spec := &Spec{
		ChipWidth: 3, // forces dw >= 1, away from the expansion point
		Linearize: Tangent,
		New:       []NewModule{{Index: 0, Mod: &fl}},
	}
	b, res := solveSpec(t, spec)
	pls := b.Decode(res.X)
	p := pls[0]
	if math.Abs(p.Mod.W-3) > 1e-6 {
		t.Fatalf("module width = %v, want 3 (chip-limited)", p.Mod.W)
	}
	wantH := 8.0 / 3.0
	if math.Abs(p.Mod.H-wantH) > 1e-6 {
		t.Fatalf("module height = %v, want %v (exact area)", p.Mod.H, wantH)
	}
	// The linearized model believes height 2 + 0.5*1 = 2.5; the decode must
	// not trust it.
	if h := b.HeightOf(res.X); math.Abs(h-2.5) > 1e-6 {
		t.Fatalf("model height = %v, want 2.5 (tangent underestimate)", h)
	}
	if p.Env.H < wantH-1e-9 {
		t.Fatalf("envelope height %v below exact module height %v", p.Env.H, wantH)
	}
	if !p.Env.ContainsRect(p.Mod) {
		t.Fatalf("module %v pokes out of its envelope %v", p.Mod, p.Env)
	}
}

func TestObstacleFloorLevels(t *testing.T) {
	// Obstacle fills the left half up to height 4 on a width-6 chip. A 3x3
	// module still has the window right of it (floor level 0); a 4x3 module
	// does not fit in any window clear of the obstacle and must rest on top.
	small := rigid("s", 3, 3, false)
	wide := rigid("w", 4, 3, false)
	spec := &Spec{
		ChipWidth: 6,
		Obstacles: []geom.Rect{geom.NewRect(0, 0, 3, 4)},
		New:       []NewModule{{Index: 0, Mod: &small}, {Index: 1, Mod: &wide}},
	}
	b, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	if b.yLo[0] != 0 {
		t.Fatalf("yLo[small] = %v, want 0 (fits beside the obstacle)", b.yLo[0])
	}
	if b.yLo[1] != 4 {
		t.Fatalf("yLo[wide] = %v, want 4 (must rest on the obstacle)", b.yLo[1])
	}
	// A module taller than the obstacle is tall, not blocked: an obstacle
	// with r.Y >= minh leaves room below it.
	tall := rigid("t", 3, 3, false)
	spec2 := &Spec{
		ChipWidth: 6,
		Obstacles: []geom.Rect{geom.NewRect(0, 3, 6, 2)}, // shelf at height 3
		New:       []NewModule{{Index: 0, Mod: &tall}},
	}
	b2, err := Build(spec2)
	if err != nil {
		t.Fatal(err)
	}
	if b2.yLo[0] != 0 {
		t.Fatalf("yLo[tall] = %v, want 0 (fits under the shelf)", b2.yLo[0])
	}
}

func TestPresolveObstacleForcing(t *testing.T) {
	// A full-width obstacle of height 2: a 3x3 module can only go above it,
	// so presolve must fix both pair binaries and pin y to the obstacle top.
	m := rigid("a", 3, 3, false)
	spec := &Spec{
		ChipWidth: 6,
		Obstacles: []geom.Rect{geom.NewRect(0, 0, 6, 2)},
		New:       []NewModule{{Index: 0, Mod: &m}},
	}
	b, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := b.Presolve()
	if st.FixedBinaries != 2 {
		t.Fatalf("FixedBinaries = %d, want 2 (z and p of the only pair)", st.FixedBinaries)
	}
	if st.TightenedBounds < 2 {
		t.Fatalf("TightenedBounds = %d, want >= 2", st.TightenedBounds)
	}
	if st.MReduction <= 0 {
		t.Fatalf("MReduction = %v, want > 0", st.MReduction)
	}
	if lo, hi := b.Model.P.Bounds(b.Y[0]); lo != 2 || hi != 2 {
		t.Fatalf("y bounds = [%v, %v], want [2, 2] (forced above the obstacle)", lo, hi)
	}
	if lo, _ := b.Model.P.Bounds(b.Height); lo != 5 {
		t.Fatalf("height lower bound = %v, want 5", lo)
	}
	res := milp.Solve(b.Model, milp.Options{Workers: 1})
	if res.Status != milp.StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
	if h := b.HeightOf(res.X); math.Abs(h-5) > 1e-6 {
		t.Fatalf("height = %v, want 5", h)
	}
	checkNoOverlap(t, b.Decode(res.X), spec.Obstacles)
}

func TestPresolveSymmetryPinsIdenticalModules(t *testing.T) {
	mods := []netlist.Module{
		rigid("a", 2, 2, false), rigid("b", 2, 2, false), rigid("c", 2, 2, false),
	}
	spec := &Spec{ChipWidth: 6}
	for i := range mods {
		spec.New = append(spec.New, NewModule{Index: i, Mod: &mods[i]})
	}
	b, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := b.Presolve()
	if len(b.symGroups) != 1 || len(b.symGroups[0]) != 3 {
		t.Fatalf("symGroups = %v, want one group of 3", b.symGroups)
	}
	if st.FixedBinaries != 2 {
		t.Fatalf("FixedBinaries = %d, want 2 (two consecutive pair pins)", st.FixedBinaries)
	}

	// A hint placing the identical modules in scrambled order must still be
	// feasible: Hint reorders the group along the left-of-or-below path so
	// the pinned p = 0 binaries decode consistently.
	envs := []geom.Rect{
		geom.NewRect(4, 0, 2, 2),
		geom.NewRect(0, 0, 2, 2),
		geom.NewRect(2, 0, 2, 2),
	}
	hint := b.Hint(envs, make([]bool, 3), make([]float64, 3))
	if infeas := b.Model.P.Infeasibilities(hint, geom.Tol); infeas != nil {
		t.Fatalf("scrambled hint infeasible after symmetry pinning:\n%v", infeas)
	}
	res := milp.Solve(b.Model, milp.Options{Workers: 1, Incumbent: hint})
	if res.Status != milp.StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
	if h := b.HeightOf(res.X); math.Abs(h-2) > 1e-6 {
		t.Fatalf("height = %v, want 2 (three in a row)", h)
	}
	checkNoOverlap(t, b.Decode(res.X), nil)
}

// randomSpec builds a random small subproblem (rigid, rotatable and
// flexible modules, optional staircase obstacles, optional envelope
// padding) shared by the hint-feasibility and equivalence properties.
func randomSpec(rng *rand.Rand, nNew int) (*Spec, []netlist.Module) {
	mods := make([]netlist.Module, 0, nNew)
	for i := 0; i < nNew; i++ {
		if rng.Intn(3) == 0 {
			mods = append(mods, netlist.Module{
				Name: fmt.Sprintf("f%d", i), Kind: netlist.Flexible,
				Area:      4 + float64(rng.Intn(20)),
				MinAspect: 0.4, MaxAspect: 2.5,
			})
		} else {
			mods = append(mods, netlist.Module{
				Name: fmt.Sprintf("r%d", i), Kind: netlist.Rigid,
				W: 1 + float64(rng.Intn(5)), H: 1 + float64(rng.Intn(5)),
				Rotatable: rng.Intn(2) == 0,
			})
		}
	}
	spec := &Spec{ChipWidth: 12 + float64(rng.Intn(6))}
	for i := range mods {
		spec.New = append(spec.New, NewModule{
			Index: i, Mod: &mods[i],
			PadW: float64(rng.Intn(2)), PadH: float64(rng.Intn(2)),
		})
	}
	if rng.Intn(2) == 0 {
		x := 0.0
		for x < spec.ChipWidth-2 && rng.Intn(3) != 0 {
			w := 2 + float64(rng.Intn(4))
			if x+w > spec.ChipWidth {
				break
			}
			spec.Obstacles = append(spec.Obstacles,
				geom.NewRect(x, 0, w, 1+float64(rng.Intn(4))))
			x += w
		}
	}
	return spec, mods
}

// Property: Built.Hint always produces a point satisfying every row and
// bound of the model, including placements with exactly-touching
// envelopes, both on the fresh model and after Presolve.
func TestHintFeasibilityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 60; trial++ {
		nNew := 2 + rng.Intn(3)
		spec, _ := randomSpec(rng, nNew)
		// Random placements can stack high; give the model explicit
		// headroom so the hint respects the Y and Height bounds.
		spec.MaxHeight = 200
		b, err := Build(spec)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		// Shelf-pack the modules in random configurations, each envelope
		// exactly touching its left neighbor and the shelf below — the
		// boundary case for the big-M rows and relationBits.
		floorY := 0.0
		for _, r := range spec.Obstacles {
			if t2 := r.Y2(); t2 > floorY {
				floorY = t2
			}
		}
		envs := make([]geom.Rect, nNew)
		rotated := make([]bool, nNew)
		dw := make([]float64, nNew)
		x, y, rowH := 0.0, floorY, 0.0
		for i := 0; i < nNew; i++ {
			d := b.ds[i]
			if d.rotatable {
				rotated[i] = rng.Intn(2) == 0
			}
			if d.flexible {
				switch rng.Intn(3) {
				case 0:
					dw[i] = 0
				case 1:
					dw[i] = d.dwMax
				default:
					dw[i] = rng.Float64() * d.dwMax
				}
			}
			weff := d.wConst - dw[i]
			heffv := d.hConst + d.hSlope*dw[i]
			if rotated[i] {
				weff += d.wRot
				heffv += d.hRot
			}
			if x+weff > spec.ChipWidth {
				x, y, rowH = 0, y+rowH, 0
			}
			envs[i] = geom.NewRect(x, y, weff, heffv)
			x += weff
			if heffv > rowH {
				rowH = heffv
			}
		}

		hint := b.Hint(envs, rotated, dw)
		if infeas := b.Model.P.Infeasibilities(hint, geom.Tol); infeas != nil {
			t.Fatalf("trial %d: hint infeasible on fresh model:\n%v", trial, infeas)
		}
		b.Presolve()
		hint2 := b.Hint(envs, rotated, dw)
		if infeas := b.Model.P.Infeasibilities(hint2, geom.Tol); infeas != nil {
			t.Fatalf("trial %d: hint infeasible after presolve:\n%v", trial, infeas)
		}
	}
}

// Property: the tightened formulation plus presolve proves the same
// optimum as the textbook blanket big-M formulation. Secant only: under
// Tangent the area cut is valid only for the tightened model's envelope
// accounting, so the two formulations are not comparable there.
func TestEquivalenceTightenedVsBlanket(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		nNew := 2 + rng.Intn(2)
		spec, mods := randomSpec(rng, nNew)

		blanket := *spec
		blanket.BlanketM = true
		blanket.New = nil
		for i := range mods {
			blanket.New = append(blanket.New, NewModule{
				Index: i, Mod: &mods[i],
				PadW: spec.New[i].PadW, PadH: spec.New[i].PadH,
			})
		}

		bt, err := Build(spec)
		if err != nil {
			t.Fatalf("trial %d: tightened: %v", trial, err)
		}
		bt.Presolve()
		bb, err := Build(&blanket)
		if err != nil {
			t.Fatalf("trial %d: blanket: %v", trial, err)
		}

		rt := milp.Solve(bt.Model, milp.Options{MaxNodes: 50000, Workers: 1, Presolve: true})
		rb := milp.Solve(bb.Model, milp.Options{MaxNodes: 50000, Workers: 1})
		if rt.Status != milp.StatusOptimal || rb.Status != milp.StatusOptimal {
			t.Fatalf("trial %d: status tightened %v, blanket %v", trial, rt.Status, rb.Status)
		}
		if math.Abs(rt.Objective-rb.Objective) > 1e-6 {
			t.Fatalf("trial %d: objective %v (tightened) vs %v (blanket)",
				trial, rt.Objective, rb.Objective)
		}
		if math.Abs(bt.HeightOf(rt.X)-bb.HeightOf(rb.X)) > 1e-6 {
			t.Fatalf("trial %d: height %v (tightened) vs %v (blanket)",
				trial, bt.HeightOf(rt.X), bb.HeightOf(rb.X))
		}
		checkNoOverlap(t, bt.Decode(rt.X), spec.Obstacles)
	}
}
