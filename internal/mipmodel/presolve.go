package mipmodel

import (
	"math"

	"afp/internal/geom"
	"afp/internal/lp"
)

// PresolveStats summarizes what Built.Presolve changed on the model.
type PresolveStats struct {
	// FixedBinaries counts pair binaries pinned to a constant, either
	// because the geometry forces the relation or for symmetry breaking.
	FixedBinaries int
	// TightenedBounds counts variable bounds improved by more than Tol.
	TightenedBounds int
	// MReduction is the fraction of big-M mass removed from the
	// disjunctive rows relative to the blanket W/H formulation
	// (0 when the model was built with Spec.BlanketM).
	MReduction float64
}

// obstacleFloorLevels computes, per new module, a floor level yLo such
// that every placement of the module that clears the obstacles and fits
// the chip width satisfies y >= yLo.
//
// Derivation: a module of width w >= minw placed at x spans at least the
// window (x, x+minw). An obstacle r overlapping that window in x cannot
// be to the module's left or right, and if r.Y < minh the module cannot
// fit below r either (it would need y + h <= r.Y with h >= minh and
// y >= 0), so the module must rest above: y >= r.Y2(). The level of a
// window is therefore the highest such blocking top, and yLo is the
// minimum level over all feasible windows. The minimum over the
// continuum of x positions is attained at a window whose left edge is 0
// or some obstacle's right edge: sliding a window left to the nearest
// such candidate only removes obstacles from it (an obstacle enters on
// the left exactly when x crosses its right edge), so the level cannot
// increase.
func obstacleFloorLevels(spec *Spec, ds []dims) []float64 {
	n := len(ds)
	out := make([]float64, n)
	if len(spec.Obstacles) == 0 {
		return out
	}
	W := spec.ChipWidth
	for i := 0; i < n; i++ {
		minw := ds[i].minWidth()
		minh := ds[i].minHeight()
		best := math.Inf(1)
		scan := func(x float64) {
			if x+minw > W+geom.Tol {
				return
			}
			level := 0.0
			for _, r := range spec.Obstacles {
				if r.X < x+minw-geom.Tol && x < r.X2()-geom.Tol && r.Y < minh-geom.Tol {
					if t := r.Y2(); t > level {
						level = t
					}
				}
			}
			if level < best {
				best = level
			}
		}
		scan(0)
		for _, r := range spec.Obstacles {
			scan(r.X2())
		}
		if math.IsInf(best, 1) {
			best = 0
		}
		out[i] = best
	}
	return out
}

// Presolve tightens the built model in place: variable bounds are pulled
// in against the fixed obstacles and the height cap, pair binaries whose
// relation is geometrically forced are fixed, and the binaries of
// interchangeable identical modules are pinned to break symmetry. Every
// change is a valid cut — it preserves at least one optimal solution and
// the optimal objective value exactly — so solving the presolved model
// yields the same optimum as the original.
//
// Presolve mutates b.Model.P directly, which the branch-and-bound layer
// reads its root bounds from; call it once, after Build and before
// solving. Hints constructed by b.Hint after Presolve automatically
// respect the symmetry pinning (the members of each pinned group are
// reordered to match).
func (b *Built) Presolve() PresolveStats {
	var st PresolveStats
	p := b.Model.P
	spec := b.Spec
	W := spec.ChipWidth
	H := b.bigH

	tightenLo := func(v lp.VarID, lo float64) {
		curLo, curHi := p.Bounds(v)
		if lo <= curLo+geom.Tol {
			return
		}
		if lo > curHi {
			// The instance is infeasible; apply the weaker (still valid)
			// cut and let the LP discover the infeasibility.
			lo = curHi
		}
		p.SetBounds(v, lo, curHi)
		st.TightenedBounds++
	}
	tightenHi := func(v lp.VarID, hi float64) {
		curLo, curHi := p.Bounds(v)
		if hi >= curHi-geom.Tol {
			return
		}
		if hi < curLo {
			hi = curLo
		}
		p.SetBounds(v, curLo, hi)
		st.TightenedBounds++
	}
	fixBin := func(v lp.VarID, val float64) {
		lo, hi := p.Bounds(v)
		if lo > val+0.5 || hi < val-0.5 {
			// An earlier (also valid) fixing disagrees: the instance has no
			// integer-feasible point. Keep the earlier fixing.
			return
		}
		//vet:allow toleq -- fixed bounds are assigned equal; exact == is intentional
		if lo == hi {
			return
		}
		p.SetBounds(v, val, val)
		st.FixedBinaries++
	}

	// Bound tightening against obstacles and the height cap: module i
	// rests at or above its obstacle floor level, and its top must stay
	// below the bounding height.
	heightLo := b.floorY
	for i := range spec.New {
		minh := b.ds[i].minHeight()
		tightenLo(b.Y[i], b.yLo[i])
		tightenHi(b.Y[i], H-minh)
		if t := b.yLo[i] + minh; t > heightLo {
			heightLo = t
		}
	}
	tightenLo(b.Height, heightLo)

	// Geometrically forced pair binaries.
	for _, pr := range b.pairs {
		mwi := b.ds[pr.i].minWidth()
		mhi := b.ds[pr.i].minHeight()
		if pr.kind == pairNewNew {
			// Two modules whose minimum widths exceed W together can never
			// be left/right of each other (x spans within [0, W] cannot be
			// disjoint), so the disjunction collapses to below/above (z=1).
			// Symmetrically for heights against the cap H (z=0).
			if mwi+b.ds[pr.j].minWidth() > W+geom.Tol {
				fixBin(pr.z, 1)
			}
			if mhi+b.ds[pr.j].minHeight() > H+geom.Tol {
				fixBin(pr.z, 0)
			}
			continue
		}
		r := spec.Obstacles[pr.j]
		canL := r.X >= mwi-geom.Tol
		canR := W-r.X2() >= mwi-geom.Tol
		canB := r.Y >= mhi-geom.Tol
		canA := H-r.Y2() >= mhi-geom.Tol
		nOpts := 0
		for _, ok := range []bool{canL, canR, canB, canA} {
			if ok {
				nOpts++
			}
		}
		if nOpts == 0 {
			continue // infeasible instance; leave it to the solver
		}
		// z selects horizontal (0) vs vertical (1), p the side:
		// L=(0,0), R=(0,1), B=(1,0), A=(1,1).
		if !canL && !canR {
			fixBin(pr.z, 1)
		}
		if !canB && !canA {
			fixBin(pr.z, 0)
		}
		if !canL && !canB {
			fixBin(pr.y, 1)
		}
		if !canR && !canA {
			fixBin(pr.y, 0)
		}
		if nOpts == 1 {
			// A single surviving relation also tightens the coordinate
			// bounds directly.
			switch {
			case canL:
				tightenHi(b.X[pr.i], r.X-mwi)
			case canR:
				tightenLo(b.X[pr.i], r.X2())
			case canB:
				tightenHi(b.Y[pr.i], r.Y-mhi)
			case canA:
				tightenLo(b.Y[pr.i], r.Y2())
			}
		}
	}

	b.pinSymmetry(fixBin)

	if b.mBlanketSum > 0 {
		st.MReduction = 1 - b.mTightSum/b.mBlanketSum
	}
	return st
}

// pinSymmetry detects groups of interchangeable modules and pins the p
// binary of each consecutive group pair to 0, forcing "left of or below".
//
// Two modules are interchangeable when they have identical dimension
// models, areas and paddings, the objective is AreaOnly (gravity weights
// are uniform, and there are no per-module wire terms), and neither is
// referenced by a critical-net constraint; swapping their placements then
// maps feasible solutions to feasible solutions of equal objective. For
// any set of pairwise disjoint boxes, "a left of b, or else (b not left
// of a and a below b)" is a tournament relation, and every tournament has
// a Hamiltonian path, so some assignment of the group's modules to its
// boxes satisfies the pinning on consecutive pairs — the optimum is
// preserved. (Pinning all pairs of the group would need transitivity,
// which tournaments do not provide, so only consecutive pairs are
// pinned.) Hint applies the same path ordering, via lobTol, to keep
// geometric warm starts feasible.
func (b *Built) pinSymmetry(fixBin func(lp.VarID, float64)) {
	spec := b.Spec
	if spec.Objective != AreaOnly {
		return
	}
	critical := map[int]bool{}
	for _, cp := range spec.Critical {
		critical[cp.A] = true
		critical[cp.B] = true
	}
	type key struct {
		d          dims
		area       float64
		padW, padH float64
	}
	keyOf := func(i int) key {
		nm := &spec.New[i]
		return key{d: b.ds[i], area: nm.Mod.ModuleArea(), padW: nm.PadW, padH: nm.PadH}
	}
	pairAt := map[[2]int]*pair{}
	for k := range b.pairs {
		pr := &b.pairs[k]
		if pr.kind == pairNewNew {
			pairAt[[2]int{pr.i, pr.j}] = pr
		}
	}
	n := len(spec.New)
	grouped := make([]bool, n)
	for i := 0; i < n; i++ {
		if grouped[i] || critical[spec.New[i].Index] {
			continue
		}
		group := []int{i}
		ki := keyOf(i)
		for j := i + 1; j < n; j++ {
			if grouped[j] || critical[spec.New[j].Index] {
				continue
			}
			if keyOf(j) == ki {
				group = append(group, j)
				grouped[j] = true
			}
		}
		if len(group) < 2 {
			continue
		}
		for t := 0; t+1 < len(group); t++ {
			if pr := pairAt[[2]int{group[t], group[t+1]}]; pr != nil {
				fixBin(pr.y, 0)
			}
		}
		b.symGroups = append(b.symGroups, group)
	}
}
