package mipmodel

import (
	"fmt"
	"math/rand"
	"testing"

	"afp/internal/geom"
	"afp/internal/milp"
	"afp/internal/netlist"
)

// Randomized end-to-end property: build random small subproblems, solve
// them, and assert the decoded placement invariants — no overlaps, inside
// the chip, obstacles respected, flexible areas conserved.
func TestRandomSpecsDecodeLegally(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		nNew := 2 + rng.Intn(3)
		var mods []netlist.Module
		for i := 0; i < nNew; i++ {
			if rng.Intn(3) == 0 {
				mods = append(mods, netlist.Module{
					Name: fmt.Sprintf("f%d", i), Kind: netlist.Flexible,
					Area:      4 + float64(rng.Intn(20)),
					MinAspect: 0.4, MaxAspect: 2.5,
				})
			} else {
				mods = append(mods, netlist.Module{
					Name: fmt.Sprintf("r%d", i), Kind: netlist.Rigid,
					W: 1 + float64(rng.Intn(5)), H: 1 + float64(rng.Intn(5)),
					Rotatable: rng.Intn(2) == 0,
				})
			}
		}
		spec := &Spec{ChipWidth: 10 + float64(rng.Intn(8))}
		for i := range mods {
			spec.New = append(spec.New, NewModule{Index: i, Mod: &mods[i]})
		}
		// Random staircase obstacles on the floor.
		if rng.Intn(2) == 0 {
			x := 0.0
			for x < spec.ChipWidth-2 && rng.Intn(3) != 0 {
				w := 2 + float64(rng.Intn(4))
				if x+w > spec.ChipWidth {
					break
				}
				spec.Obstacles = append(spec.Obstacles,
					geom.NewRect(x, 0, w, 1+float64(rng.Intn(4))))
				x += w
			}
		}

		b, err := Build(spec)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		res := milp.Solve(b.Model, milp.Options{MaxNodes: 3000})
		if res.X == nil {
			t.Fatalf("trial %d: no solution (%v)", trial, res.Status)
		}
		pls := b.Decode(res.X)
		envs := make([]geom.Rect, len(pls))
		for i, p := range pls {
			envs[i] = p.Env
		}
		if i, j, bad := geom.AnyOverlap(envs); bad {
			t.Fatalf("trial %d: modules %d/%d overlap: %v %v", trial, i, j, envs[i], envs[j])
		}
		for i, p := range pls {
			if p.Env.X < -1e-6 || p.Env.X2() > spec.ChipWidth+1e-6 || p.Env.Y < -1e-6 {
				t.Fatalf("trial %d: module %d outside chip: %v", trial, i, p.Env)
			}
			for k, o := range spec.Obstacles {
				if p.Env.Overlaps(o) {
					t.Fatalf("trial %d: module %d overlaps obstacle %d", trial, i, k)
				}
			}
			m := &mods[p.Index]
			if m.Kind == netlist.Flexible {
				if a := p.Mod.Area(); a < m.Area-1e-6 || a > m.Area+1e-6 {
					t.Fatalf("trial %d: flexible area %v, want %v", trial, a, m.Area)
				}
			}
			if b.HeightOf(res.X) < p.Env.Y2()-1e-6 {
				t.Fatalf("trial %d: height %v below module top %v",
					trial, b.HeightOf(res.X), p.Env.Y2())
			}
		}
	}
}
