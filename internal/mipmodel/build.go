package mipmodel

import (
	"fmt"
	"math"

	"afp/internal/geom"
	"afp/internal/lp"
	"afp/internal/milp"
)

// pairKind distinguishes the two families of non-overlap disjunctions.
type pairKind int

const (
	pairNewNew pairKind = iota
	pairNewObstacle
)

// pair records the 0-1 variables of one non-overlap disjunction so that
// integer hints can be constructed from a geometric placement.
type pair struct {
	kind pairKind
	i, j int // new-module slots; j is an obstacle index for pairNewObstacle
	z, y lp.VarID
}

// wireVar records one wirelength auxiliary pair.
type wireVar struct {
	a, b   int // new-module slots; b == -1 means anchor
	anchor int // anchor slice index when b == -1
	dx, dy lp.VarID
}

// Built is a constructed subproblem MILP together with the handles needed
// to decode solutions and build integer hints.
type Built struct {
	Spec  *Spec
	Model *milp.Model

	X, Y   []lp.VarID // lower-left corner per new module
	Rot    []lp.VarID // rotation binary per new module (-1 if not rotatable)
	DW     []lp.VarID // width-decrease variable per flexible module (-1 otherwise)
	Height lp.VarID   // chip height variable y of constraints (3)

	ds     []dims
	pairs  []pair
	wires  []wireVar
	bigH   float64
	floorY float64   // highest obstacle top; lower bound on Height
	yLo    []float64 // per-module obstacle floor level (see presolve.go)

	// mBlanketSum and mTightSum accumulate the big-M mass of the blanket
	// formulation and of the rows actually emitted, so that presolve can
	// report the overall M reduction.
	mBlanketSum, mTightSum float64

	// symGroups lists the slot indices of each interchangeable-module group
	// whose pair binaries Presolve pinned for symmetry breaking; Hint
	// reorders the members of each group so geometric hints stay feasible.
	symGroups [][]int
}

// Build constructs the MILP for the subproblem described by spec.
func Build(spec *Spec) (*Built, error) {
	if spec.ChipWidth <= 0 {
		return nil, fmt.Errorf("mipmodel: chip width must be positive, got %g", spec.ChipWidth)
	}
	if len(spec.New) == 0 {
		return nil, fmt.Errorf("mipmodel: no modules to place")
	}
	n := len(spec.New)
	ds := make([]dims, n)
	for i := range spec.New {
		d, err := moduleDims(&spec.New[i], spec.Linearize)
		if err != nil {
			return nil, err
		}
		if d.minWidth() > spec.ChipWidth+geom.Tol {
			return nil, fmt.Errorf("mipmodel: module %q (min width %g) cannot fit chip width %g",
				spec.New[i].Mod.Name, d.minWidth(), spec.ChipWidth)
		}
		ds[i] = d
	}

	W := spec.ChipWidth
	floorY := 0.0
	for _, r := range spec.Obstacles {
		if t := r.Y2(); t > floorY {
			floorY = t
		}
	}

	// Secondary "gravity" objective weights (see Spec.Gravity). The y pull
	// is an order of magnitude stronger than the x pull so that flatness
	// wins over left-packing. Computed before H because the stacked-skyline
	// bound must account for the gravity share of the objective.
	grav := spec.Gravity
	if grav == 0 {
		grav = 1e-3
	}
	if grav < 0 {
		grav = 0
	}
	gy := grav / float64(n)
	gx := gy / 10

	H := spec.MaxHeight
	if H <= 0 {
		H = spec.defaultMaxHeight(ds)
		if !spec.BlanketM {
			// Stacked-skyline bound (DESIGN.md section 10): the objective
			// value of the explicit "stack everything at x=0" solution caps
			// the optimal objective, and the objective dominates the chip
			// height, so no optimal solution needs y coordinates above it.
			if sb := spec.stackBound(ds, floorY, gy); sb < H {
				H = sb
			}
		}
	}
	if H < floorY {
		H = floorY + 1
	}

	// Per-module obstacle floor levels: any placement of module i that
	// clears the obstacles satisfies y_i >= yLo[i] (see the sliding-window
	// argument in presolve.go). The y-row big-Ms below rely on this.
	yLo := obstacleFloorLevels(spec, ds)

	p := lp.NewProblem()
	m := milp.NewModel(p)
	b := &Built{
		Spec: spec, Model: m, ds: ds, bigH: H, floorY: floorY, yLo: yLo,
		X: make([]lp.VarID, n), Y: make([]lp.VarID, n),
		Rot: make([]lp.VarID, n), DW: make([]lp.VarID, n),
	}

	// Placement variables.
	for i := range spec.New {
		name := spec.New[i].Mod.Name
		xHi := W - ds[i].minWidth()
		if xHi < 0 {
			xHi = 0
		}
		b.X[i] = p.AddVariable("x."+name, 0, xHi, gx)
		b.Y[i] = p.AddVariable("y."+name, 0, H, gy)
		b.Rot[i] = -1
		b.DW[i] = -1
		if ds[i].rotatable {
			b.Rot[i] = m.AddBinary("rot."+name, 0)
		}
		if ds[i].flexible {
			b.DW[i] = p.AddVariable("dw."+name, 0, ds[i].dwMax, 0)
		}
	}
	b.Height = p.AddVariable("chip.height", floorY, H, 1)

	// weff / heff linear expression helpers. scale lets callers halve the
	// expression for center coordinates.
	weff := func(i int, scale float64) (terms []lp.Term, c float64) {
		d := ds[i]
		c = d.wConst * scale
		if d.rotatable {
			terms = append(terms, lp.Term{Var: b.Rot[i], Coef: d.wRot * scale})
		}
		if d.flexible {
			terms = append(terms, lp.Term{Var: b.DW[i], Coef: -1 * scale})
		}
		return terms, c
	}
	heff := func(i int, scale float64) (terms []lp.Term, c float64) {
		d := ds[i]
		c = d.hConst * scale
		if d.rotatable {
			terms = append(terms, lp.Term{Var: b.Rot[i], Coef: d.hRot * scale})
		}
		if d.flexible {
			terms = append(terms, lp.Term{Var: b.DW[i], Coef: d.hSlope * scale})
		}
		return terms, c
	}

	// Chip fit (constraints (3)/(5)) and height definition.
	for i := range spec.New {
		wt, wc := weff(i, 1)
		fit := append([]lp.Term{{Var: b.X[i], Coef: 1}}, wt...)
		p.AddConstraint(fmt.Sprintf("fit.%s", spec.New[i].Mod.Name), fit, lp.LE, W-wc)

		ht, hc := heff(i, 1)
		row := []lp.Term{{Var: b.Height, Coef: 1}, {Var: b.Y[i], Coef: -1}}
		for _, t := range ht {
			row = append(row, lp.Term{Var: t.Var, Coef: -t.Coef})
		}
		p.AddConstraint(fmt.Sprintf("height.%s", spec.New[i].Mod.Name), row, lp.GE, hc)
	}

	// Valid area cut: the occupied region (obstacles plus the disjoint new
	// envelopes) fits inside the W x height chip, so W*height must be at
	// least the total occupied area. The big-M relaxation of (2) is very
	// weak on its own — fractional binaries let modules overlap freely —
	// and this single row gives branch and bound a useful global lower
	// bound. Each envelope contributes the smallest reserved box over all
	// of its configurations (minEnvArea), which keeps the row valid on
	// every branch while counting the routing padding the model actually
	// reserves; BlanketM falls back to the bare module areas of the
	// original formulation.
	{
		// Obstacles may overlap (the Section 3.1 overlapping-covers variant),
		// so their contribution is the exact union area.
		occupied := geom.UnionArea(spec.Obstacles)
		for i := range spec.New {
			if spec.BlanketM {
				occupied += spec.New[i].Mod.ModuleArea()
			} else {
				occupied += ds[i].minEnvArea()
			}
		}
		p.AddConstraint("area.cut", []lp.Term{{Var: b.Height, Coef: W}}, lp.GE, occupied)
	}

	// Non-overlap disjunctions (2) among new modules.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			ni, nj := spec.New[i].Mod.Name, spec.New[j].Mod.Name
			zp := m.AddBinary(fmt.Sprintf("z.%s.%s", ni, nj), 0)
			yp := m.AddBinary(fmt.Sprintf("p.%s.%s", ni, nj), 0)
			b.pairs = append(b.pairs, pair{kind: pairNewNew, i: i, j: j, z: zp, y: yp})

			wti, wci := weff(i, 1)
			wtj, wcj := weff(j, 1)
			hti, hci := heff(i, 1)
			htj, hcj := heff(j, 1)

			// Per-row big-Ms (DESIGN.md section 10). The x rows keep the
			// blanket W: at an integer point with the row inactive the worst
			// case x_i + weff_i - x_j is W - x_j, and x_j may be 0, so
			// nothing tighter is valid in general (W - minw_i - minw_j cuts
			// genuine optima). The y rows exploit that every
			// integer-feasible placement of a module rests at or above its
			// obstacle floor level yLo, so the worst case of
			// y_i + heff_i - y_j is H - yLo[j].
			MB, MA := H-yLo[j], H-yLo[i]
			if spec.BlanketM {
				MB, MA = H, H
			}
			b.mBlanketSum += 2*W + 2*H
			b.mTightSum += 2*W + MB + MA

			// i left of j: x_i + weff_i <= x_j + W(z+p)
			left := append([]lp.Term{{Var: b.X[i], Coef: 1}, {Var: b.X[j], Coef: -1},
				{Var: zp, Coef: -W}, {Var: yp, Coef: -W}}, wti...)
			p.AddConstraint(fmt.Sprintf("L.%s.%s", ni, nj), left, lp.LE, -wci)

			// i right of j: x_j + weff_j <= x_i + W(1+z-p)
			right := append([]lp.Term{{Var: b.X[j], Coef: 1}, {Var: b.X[i], Coef: -1},
				{Var: zp, Coef: -W}, {Var: yp, Coef: W}}, wtj...)
			p.AddConstraint(fmt.Sprintf("R.%s.%s", ni, nj), right, lp.LE, W-wcj)

			// i below j: y_i + heff_i <= y_j + MB(1-z+p)
			below := append([]lp.Term{{Var: b.Y[i], Coef: 1}, {Var: b.Y[j], Coef: -1},
				{Var: zp, Coef: MB}, {Var: yp, Coef: -MB}}, hti...)
			p.AddConstraint(fmt.Sprintf("B.%s.%s", ni, nj), below, lp.LE, MB-hci)

			// i above j: y_j + heff_j <= y_i + MA(2-z-p)
			above := append([]lp.Term{{Var: b.Y[j], Coef: 1}, {Var: b.Y[i], Coef: -1},
				{Var: zp, Coef: MA}, {Var: yp, Coef: MA}}, htj...)
			p.AddConstraint(fmt.Sprintf("A.%s.%s", ni, nj), above, lp.LE, 2*MA-hcj)
		}
	}

	// Non-overlap disjunctions against fixed covering rectangles.
	for i := 0; i < n; i++ {
		for o, r := range spec.Obstacles {
			ni := spec.New[i].Mod.Name
			zp := m.AddBinary(fmt.Sprintf("z.%s.ob%d", ni, o), 0)
			yp := m.AddBinary(fmt.Sprintf("p.%s.ob%d", ni, o), 0)
			b.pairs = append(b.pairs, pair{kind: pairNewObstacle, i: i, j: o, z: zp, y: yp})

			wti, wci := weff(i, 1)
			hti, hci := heff(i, 1)

			// Per-row big-Ms against a fixed rectangle: the obstacle's own
			// coordinates bound the worst inactive-case slack exactly.
			// Negative values are clamped to zero, which turns the row into
			// an always-active valid cut (it only happens when geometry
			// already forces the corresponding relation).
			ML, MR := W-r.X, r.X2()
			MBo, MAo := H-r.Y, r.Y2()-yLo[i]
			if spec.BlanketM {
				ML, MR, MBo, MAo = W, W, H, H
			}
			ML = math.Max(ML, 0)
			MR = math.Max(MR, 0)
			MBo = math.Max(MBo, 0)
			MAo = math.Max(MAo, 0)
			b.mBlanketSum += 2*W + 2*H
			b.mTightSum += ML + MR + MBo + MAo

			// i left of r: x_i + weff_i <= r.X + ML(z+p)
			left := append([]lp.Term{{Var: b.X[i], Coef: 1},
				{Var: zp, Coef: -ML}, {Var: yp, Coef: -ML}}, wti...)
			p.AddConstraint(fmt.Sprintf("L.%s.ob%d", ni, o), left, lp.LE, r.X-wci)

			// i right of r: r.X + r.W <= x_i + MR(1+z-p)
			right := []lp.Term{{Var: b.X[i], Coef: -1}, {Var: zp, Coef: -MR}, {Var: yp, Coef: MR}}
			p.AddConstraint(fmt.Sprintf("R.%s.ob%d", ni, o), right, lp.LE, MR-r.X2())

			// i below r: y_i + heff_i <= r.Y + MBo(1-z+p)
			below := append([]lp.Term{{Var: b.Y[i], Coef: 1},
				{Var: zp, Coef: MBo}, {Var: yp, Coef: -MBo}}, hti...)
			p.AddConstraint(fmt.Sprintf("B.%s.ob%d", ni, o), below, lp.LE, MBo+r.Y-hci)

			// i above r: r.Y + r.H <= y_i + MAo(2-z-p)
			above := []lp.Term{{Var: b.Y[i], Coef: -1}, {Var: zp, Coef: MAo}, {Var: yp, Coef: MAo}}
			p.AddConstraint(fmt.Sprintf("A.%s.ob%d", ni, o), above, lp.LE, 2*MAo-r.Y2())
		}
	}

	// Wirelength auxiliaries. getWire lazily creates the (dx, dy) pair
	// bounding the Manhattan distance between two module centers; it is
	// shared by the AreaWire objective and the critical-net length
	// constraints so that a pair that is both connected and critical uses
	// one set of variables.
	wireIdx := map[[3]int]int{}
	getWire := func(a, bSlot, anchorIdx int) *wireVar {
		key := [3]int{a, bSlot, anchorIdx}
		if i, ok := wireIdx[key]; ok {
			return &b.wires[i]
		}
		var namB string
		if bSlot >= 0 {
			namB = spec.New[bSlot].Mod.Name
		} else {
			namB = fmt.Sprintf("anc%d", anchorIdx)
		}
		dx := p.AddVariable(fmt.Sprintf("dx.%s.%s", spec.New[a].Mod.Name, namB), 0, W, 0)
		dy := p.AddVariable(fmt.Sprintf("dy.%s.%s", spec.New[a].Mod.Name, namB), 0, H, 0)
		b.wires = append(b.wires, wireVar{a: a, b: bSlot, anchor: anchorIdx, dx: dx, dy: dy})
		wireIdx[key] = len(b.wires) - 1

		// Center of a: x_a + weff_a/2; of b: x_b + weff_b/2 or constant.
		cxa, cca := weff(a, 0.5)
		cxa = append(cxa, lp.Term{Var: b.X[a], Coef: 1})
		cya, hca := heff(a, 0.5)
		cya = append(cya, lp.Term{Var: b.Y[a], Coef: 1})

		if bSlot >= 0 {
			cxb, ccb := weff(bSlot, 0.5)
			cxb = append(cxb, lp.Term{Var: b.X[bSlot], Coef: 1})
			cyb, hcb := heff(bSlot, 0.5)
			cyb = append(cyb, lp.Term{Var: b.Y[bSlot], Coef: 1})
			addAbsRows(p, dx, cxa, cca, cxb, ccb)
			addAbsRows(p, dy, cya, hca, cyb, hcb)
		} else {
			an := spec.Anchors[anchorIdx]
			addAbsRows(p, dx, cxa, cca, nil, an.X)
			addAbsRows(p, dy, cya, hca, nil, an.Y)
		}
		return &b.wires[len(b.wires)-1]
	}

	if spec.Objective == AreaWire {
		lambda := spec.WireWeight
		if lambda <= 0 {
			lambda = 0.05
		}
		if spec.Conn == nil {
			return nil, fmt.Errorf("mipmodel: AreaWire objective requires a connectivity function")
		}
		for a := 0; a < n; a++ {
			for bb := a + 1; bb < n; bb++ {
				if c := spec.Conn(spec.New[a].Index, spec.New[bb].Index); c > 0 {
					wv := getWire(a, bb, -1)
					p.SetObjectiveCoef(wv.dx, lambda*c)
					p.SetObjectiveCoef(wv.dy, lambda*c)
				}
			}
			for k := range spec.Anchors {
				if c := spec.Conn(spec.New[a].Index, spec.Anchors[k].Index); c > 0 {
					wv := getWire(a, -1, k)
					p.SetObjectiveCoef(wv.dx, lambda*c)
					p.SetObjectiveCoef(wv.dy, lambda*c)
				}
			}
		}
	}

	// Critical-net length constraints: dx + dy <= MaxLen for each pair
	// resolvable within this subproblem.
	slotOf := make(map[int]int, n)
	for i := range spec.New {
		slotOf[spec.New[i].Index] = i
	}
	anchorIdxOf := make(map[int]int, len(spec.Anchors))
	for k := range spec.Anchors {
		anchorIdxOf[spec.Anchors[k].Index] = k
	}
	for _, cp := range spec.Critical {
		a, aNew := slotOf[cp.A]
		bb, bNew := slotOf[cp.B]
		switch {
		case aNew && bNew:
			if a > bb {
				a, bb = bb, a
			}
			wv := getWire(a, bb, -1)
			p.AddConstraint("crit", []lp.Term{{Var: wv.dx, Coef: 1}, {Var: wv.dy, Coef: 1}}, lp.LE, cp.MaxLen)
		case aNew:
			if k, ok := anchorIdxOf[cp.B]; ok {
				wv := getWire(a, -1, k)
				p.AddConstraint("crit", []lp.Term{{Var: wv.dx, Coef: 1}, {Var: wv.dy, Coef: 1}}, lp.LE, cp.MaxLen)
			}
		case bNew:
			if k, ok := anchorIdxOf[cp.A]; ok {
				wv := getWire(bb, -1, k)
				p.AddConstraint("crit", []lp.Term{{Var: wv.dx, Coef: 1}, {Var: wv.dy, Coef: 1}}, lp.LE, cp.MaxLen)
			}
		}
	}

	// Compile the sparse constraint matrix now, while the model is still
	// single-threaded: branch-and-bound clones share the compiled form, so
	// building it here keeps the per-worker setup allocation-free.
	p.Compile()
	return b, nil
}

// addAbsRows adds d >= (exprA + ca) - (exprB + cb) and the reverse, so
// that d bounds |centerA - centerB| from above. exprB may be nil for a
// constant center cb.
func addAbsRows(p *lp.Problem, d lp.VarID, exprA []lp.Term, ca float64, exprB []lp.Term, cb float64) {
	// d - exprA + exprB >= ca - cb
	row1 := []lp.Term{{Var: d, Coef: 1}}
	for _, t := range exprA {
		row1 = append(row1, lp.Term{Var: t.Var, Coef: -t.Coef})
	}
	for _, t := range exprB {
		row1 = append(row1, lp.Term{Var: t.Var, Coef: t.Coef})
	}
	p.AddConstraint("abs+", row1, lp.GE, ca-cb)

	// d + exprA - exprB >= cb - ca
	row2 := []lp.Term{{Var: d, Coef: 1}}
	for _, t := range exprA {
		row2 = append(row2, lp.Term{Var: t.Var, Coef: t.Coef})
	}
	for _, t := range exprB {
		row2 = append(row2, lp.Term{Var: t.Var, Coef: -t.Coef})
	}
	p.AddConstraint("abs-", row2, lp.GE, cb-ca)
}
