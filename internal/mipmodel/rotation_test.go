package mipmodel

import "testing"

// A rotatable module whose sides coincide within the geometric tolerance
// gains nothing from rotation; the builder must not mint an orientation
// binary (or its paired rows) for it.
func TestNearSquareRotatableHasNoOrientationBinary(t *testing.T) {
	square := rigid("sq", 4, 4+1e-12, true)
	oblong := rigid("ob", 4, 6, true)
	spec := &Spec{
		ChipWidth: 12,
		New: []NewModule{
			{Index: 0, Mod: &square},
			{Index: 1, Mod: &oblong},
		},
	}
	b, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	v := b.View()
	if v.Rot[0] != -1 {
		t.Fatalf("near-square module got orientation binary %v", v.Rot[0])
	}
	if v.Rot[1] == -1 {
		t.Fatal("genuinely oblong module lost its orientation binary")
	}
}
