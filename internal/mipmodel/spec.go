// Package mipmodel builds the mixed integer programming formulation of
// Section 2 of Sutanthavibul, Shragowitz and Rosen (DAC 1990) for one
// floorplanning subproblem: a group of new modules to be placed above a
// partial floorplan represented by fixed covering rectangles.
//
// For every pair of placeable objects the non-overlap disjunction (2) is
// encoded with two 0-1 variables; rigid modules may rotate via the
// orientation binaries of (4)-(5); flexible modules use the linearized
// area model of (6)-(8); and the objective is either the chip height
// (equivalently chip area, the width being fixed) or chip height plus
// estimated wirelength.
package mipmodel

import (
	"fmt"
	"math"
	"sort"

	"afp/internal/geom"
	"afp/internal/netlist"
)

// Objective selects what the subproblem minimizes, matching the two
// objective functions of Table 2.
type Objective int

// Objectives.
const (
	// AreaOnly minimizes the chip height y (the chip width being fixed,
	// this minimizes chip area, constraints (3)).
	AreaOnly Objective = iota
	// AreaWire minimizes chip height plus WireWeight times the estimated
	// total wirelength between connected placeable objects and anchors.
	AreaWire
)

func (o Objective) String() string {
	if o == AreaOnly {
		return "area"
	}
	return "area+wire"
}

// Linearization selects how the h = S/w hyperbola of flexible modules is
// approximated by a line (Figure 1 of the paper).
type Linearization int

// Linearization modes.
const (
	// Secant uses the chord through (w_min, h(w_min)) and (w_max, h(w_max)).
	// Because h is convex, the chord lies above the curve on the whole
	// interval, so the reserved box always contains the true module and the
	// resulting floorplan is guaranteed overlap-free. This is the default.
	Secant Linearization = iota
	// Tangent uses the first-order Taylor expansion about w_max exactly as
	// in the paper's equation (6)/(7). The tangent underestimates the true
	// height away from the expansion point, which the paper compensates for
	// in its final "adjust floorplan" step; callers using Tangent should
	// re-linearize or adjust (see core.Floorplanner).
	Tangent
)

func (l Linearization) String() string {
	if l == Secant {
		return "secant"
	}
	return "tangent"
}

// NewModule is one module to be placed by the subproblem.
type NewModule struct {
	// Index is the module's index in the original design, used for
	// connectivity lookups and reporting.
	Index int
	// Mod is the module description.
	Mod *netlist.Module
	// PadW and PadH are envelope paddings added to the module's width and
	// height in its initial orientation (Section 3.2): PadW accounts for
	// pins on the east+west sides, PadH for pins on the north+south sides.
	// When the module rotates, the paddings follow the dimensions.
	PadW, PadH float64
}

// Anchor is the fixed generalized-pin position of an already-placed
// module, kept for wirelength estimation after the module itself has been
// absorbed into a covering rectangle.
type Anchor struct {
	Index int // design index of the placed module
	X, Y  float64
}

// CriticalPair bounds the estimated Manhattan length between the centers
// of two modules — the "additional constraints on the length of critical
// nets" of Section 2.2 and the timing-delay objectives of the abstract.
// A refers to a new module by design index; B refers either to another
// new module or to an anchor, also by design index.
type CriticalPair struct {
	A, B   int
	MaxLen float64
}

// Spec describes one successive-augmentation subproblem.
type Spec struct {
	// ChipWidth is the fixed chip width W of constraints (3).
	ChipWidth float64
	// MaxHeight is the bounding function H of constraints (2). When zero it
	// defaults to the sum of all placeable heights plus the obstacle tops.
	MaxHeight float64
	// New lists the modules to place.
	New []NewModule
	// Obstacles are the covering rectangles of the partial floorplan.
	Obstacles []geom.Rect
	// Anchors are wirelength attachment points for already-placed modules.
	Anchors []Anchor
	// Conn returns the weighted common-net count between two design
	// indices. May be nil when Objective is AreaOnly.
	Conn func(a, b int) float64
	// Objective selects the cost function.
	Objective Objective
	// WireWeight is the lambda multiplying the wirelength term of the
	// AreaWire objective. Zero defaults to 0.05.
	WireWeight float64
	// Linearize selects the flexible-module approximation.
	Linearize Linearization
	// Gravity adds a tiny secondary objective pulling modules toward the
	// bottom-left corner. Among the many equal-height optima of one
	// augmentation step it selects dense, flat layouts, which matters
	// because the step objective is greedy in the overall height. Zero
	// defaults to 1e-3 (divided across the group); negative disables.
	Gravity float64
	// Critical lists hard bounds on net lengths between module centers
	// (timing constraints). Pairs whose modules are not part of this
	// subproblem are ignored; pairs between a new module and an absorbed
	// placed module require a matching Anchors entry.
	Critical []CriticalPair
	// BlanketM reverts the disjunctive constraints to the textbook blanket
	// big-M coefficients (W and the summed-height H on every row, bare
	// module areas in the area cut). The default is the per-row tightened
	// coefficients of DESIGN.md section 10, which admit exactly the same
	// integer-feasible set and therefore the same optimum; BlanketM exists
	// as an escape hatch and for equivalence testing.
	BlanketM bool
}

// dims captures the linear expression of one placeable object's effective
// width and height:
//
//	weff = wConst + wRot*rot - dw        (dw only for flexible modules)
//	heff = hConst + hRot*rot + hSlope*dw
type dims struct {
	wConst, hConst float64
	wRot, hRot     float64 // coefficient of the rotation binary
	hSlope         float64 // height increase per unit of width decrease
	dwMax          float64 // range of the width-decrease variable
	rotatable      bool
	flexible       bool
}

// moduleDims derives the linear dimension model of a module, including
// envelope padding.
func moduleDims(nm *NewModule, mode Linearization) (dims, error) {
	m := nm.Mod
	var d dims
	switch m.Kind {
	case netlist.Rigid:
		w0 := m.W + nm.PadW
		h0 := m.H + nm.PadH
		d.wConst, d.hConst = w0, h0
		// Rotation only yields a distinct shape when the sides differ by
		// more than the geometric tolerance.
		if m.Rotatable && !geom.Eq(m.W, m.H) {
			// After rotation the horizontal extent is the original height plus
			// the padding that now faces east/west (the former north/south
			// padding), and symmetrically for the vertical extent.
			w1 := m.H + nm.PadH
			h1 := m.W + nm.PadW
			d.wRot = w1 - w0
			d.hRot = h1 - h0
			d.rotatable = true
		}
	case netlist.Flexible:
		wmin, wmax := m.WidthRange()
		if wmax-wmin < 1e-12 {
			d.wConst = wmin + nm.PadW
			d.hConst = m.HeightFor(wmin) + nm.PadH
			break
		}
		d.flexible = true
		d.dwMax = wmax - wmin
		hAtMax := m.Area / wmax
		hAtMin := m.Area / wmin
		d.wConst = wmax + nm.PadW
		d.hConst = hAtMax + nm.PadH
		switch mode {
		case Tangent:
			// Equation (6)/(7): first-order Taylor expansion about w_max.
			d.hSlope = m.Area / (wmax * wmax)
		default:
			// Secant: exact at both interval endpoints, conservative between.
			d.hSlope = (hAtMin - hAtMax) / (wmax - wmin)
		}
	default:
		return d, fmt.Errorf("mipmodel: module %q has unknown kind", m.Name)
	}
	if d.wConst <= 0 || d.hConst <= 0 {
		return d, fmt.Errorf("mipmodel: module %q has non-positive effective dimensions", m.Name)
	}
	return d, nil
}

// maxWidth returns the largest effective width the object can take.
func (d dims) maxWidth() float64 {
	w := d.wConst
	if d.rotatable && d.wRot > 0 {
		w += d.wRot
	}
	return w
}

// minWidth returns the smallest effective width the object can take.
func (d dims) minWidth() float64 {
	w := d.wConst
	if d.rotatable && d.wRot < 0 {
		w += d.wRot
	}
	if d.flexible {
		w -= d.dwMax
	}
	return w
}

// maxHeight returns the largest effective height the object can take.
func (d dims) maxHeight() float64 {
	h := d.hConst
	if d.rotatable && d.hRot > 0 {
		h += d.hRot
	}
	if d.flexible {
		h += d.hSlope * d.dwMax
	}
	return h
}

// minEnvArea returns the smallest envelope area (weff*heff) the object
// can reserve over all of its configurations. The area is linear in the
// rotation binary (two candidates) and concave in dw (the product of a
// decreasing and an increasing linear function), so the minimum is
// attained at a configuration corner.
func (d dims) minEnvArea() float64 {
	a := d.wConst * d.hConst
	if d.rotatable {
		if r := (d.wConst + d.wRot) * (d.hConst + d.hRot); r < a {
			a = r
		}
	}
	if d.flexible {
		if r := (d.wConst - d.dwMax) * (d.hConst + d.hSlope*d.dwMax); r < a {
			a = r
		}
	}
	return a
}

// minHeight returns the smallest effective height the object can take in
// any configuration (ignoring the chip width). Every integer-feasible
// point of the model satisfies heff >= minHeight, which makes it a sound
// constant for big-M derivations and obstacle-window reasoning.
func (d dims) minHeight() float64 {
	h := d.hConst
	if d.rotatable && d.hRot < 0 {
		h += d.hRot
	}
	return h
}

// minHeightFitting returns the smallest effective height among the
// configurations whose effective width fits the chip width W, together
// with that configuration's effective width. It is the height the object
// contributes to the stacked-skyline bound of DESIGN.md section 10. When
// no configuration fits (rejected by Build's fit check) it falls back to
// the unrestricted minimum.
func (d dims) minHeightFitting(W float64) (h, w float64) {
	best := false
	consider := func(hc, wc float64) {
		if wc <= W+geom.Tol && (!best || hc < h) {
			h, w, best = hc, wc, true
		}
	}
	if d.flexible {
		// heff = hConst + hSlope*dw grows with dw, so take the smallest dw
		// that makes the width fit.
		dw := d.wConst - W
		if dw < 0 {
			dw = 0
		}
		if dw > d.dwMax {
			dw = d.dwMax
		}
		consider(d.hConst+d.hSlope*dw, d.wConst-dw)
	} else {
		consider(d.hConst, d.wConst)
		if d.rotatable {
			consider(d.hConst+d.hRot, d.wConst+d.wRot)
		}
	}
	if !best {
		return d.minHeight(), d.minWidth()
	}
	return h, w
}

// stackBound returns the objective value of the explicit feasible
// solution that stacks every module at x = 0 above the obstacle skyline,
// each in its lowest chip-fitting configuration, shortest first. The
// optimum cannot exceed it, and every objective term dominates the chip
// height from above (all terms are nonnegative and Height has unit
// cost), so any solution at least as good as the stack keeps all y
// coordinates below this value. That makes it a valid bounding function
// H for the disjunctions (2) that preserves the optimum exactly — and it
// is typically far below defaultMaxHeight's sum of all heights.
// Critical-net constraints can make the stack infeasible, so the bound
// abstains (+Inf) when any are present.
func (s *Spec) stackBound(ds []dims, floorY, gy float64) float64 {
	if len(s.Critical) > 0 {
		return math.Inf(1)
	}
	n := len(ds)
	type cfg struct{ h, w float64 }
	cfgs := make([]cfg, n)
	order := make([]int, n)
	for i, d := range ds {
		h, w := d.minHeightFitting(s.ChipWidth)
		cfgs[i] = cfg{h: h, w: w}
		order[i] = i
	}
	// Shortest first minimizes the gravity term's sum of y coordinates.
	sort.Slice(order, func(a, b int) bool { return cfgs[order[a]].h < cfgs[order[b]].h })
	y := make([]float64, n)
	top := floorY
	var sumY float64
	for _, i := range order {
		y[i] = top
		sumY += top
		top += cfgs[i].h
	}
	obj := top + gy*sumY
	if s.Objective == AreaWire && s.Conn != nil {
		lambda := s.WireWeight
		if lambda <= 0 {
			lambda = 0.05
		}
		cx := func(i int) float64 { return cfgs[i].w / 2 }
		cy := func(i int) float64 { return y[i] + cfgs[i].h/2 }
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				if c := s.Conn(s.New[a].Index, s.New[b].Index); c > 0 {
					obj += lambda * c * (math.Abs(cx(a)-cx(b)) + math.Abs(cy(a)-cy(b)))
				}
			}
			for k := range s.Anchors {
				if c := s.Conn(s.New[a].Index, s.Anchors[k].Index); c > 0 {
					an := s.Anchors[k]
					obj += lambda * c * (math.Abs(cx(a)-an.X) + math.Abs(cy(a)-an.Y))
				}
			}
		}
	}
	return obj
}

// defaultMaxHeight computes a safe bounding function H for the
// disjunctive constraints when the caller does not supply one.
func (s *Spec) defaultMaxHeight(ds []dims) float64 {
	h := 0.0
	for _, r := range s.Obstacles {
		if t := r.Y2(); t > h {
			h = t
		}
	}
	for _, d := range ds {
		h += d.maxHeight()
	}
	if h <= 0 {
		h = 1
	}
	return h
}
