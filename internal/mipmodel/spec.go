// Package mipmodel builds the mixed integer programming formulation of
// Section 2 of Sutanthavibul, Shragowitz and Rosen (DAC 1990) for one
// floorplanning subproblem: a group of new modules to be placed above a
// partial floorplan represented by fixed covering rectangles.
//
// For every pair of placeable objects the non-overlap disjunction (2) is
// encoded with two 0-1 variables; rigid modules may rotate via the
// orientation binaries of (4)-(5); flexible modules use the linearized
// area model of (6)-(8); and the objective is either the chip height
// (equivalently chip area, the width being fixed) or chip height plus
// estimated wirelength.
package mipmodel

import (
	"fmt"

	"afp/internal/geom"
	"afp/internal/netlist"
)

// Objective selects what the subproblem minimizes, matching the two
// objective functions of Table 2.
type Objective int

// Objectives.
const (
	// AreaOnly minimizes the chip height y (the chip width being fixed,
	// this minimizes chip area, constraints (3)).
	AreaOnly Objective = iota
	// AreaWire minimizes chip height plus WireWeight times the estimated
	// total wirelength between connected placeable objects and anchors.
	AreaWire
)

func (o Objective) String() string {
	if o == AreaOnly {
		return "area"
	}
	return "area+wire"
}

// Linearization selects how the h = S/w hyperbola of flexible modules is
// approximated by a line (Figure 1 of the paper).
type Linearization int

// Linearization modes.
const (
	// Secant uses the chord through (w_min, h(w_min)) and (w_max, h(w_max)).
	// Because h is convex, the chord lies above the curve on the whole
	// interval, so the reserved box always contains the true module and the
	// resulting floorplan is guaranteed overlap-free. This is the default.
	Secant Linearization = iota
	// Tangent uses the first-order Taylor expansion about w_max exactly as
	// in the paper's equation (6)/(7). The tangent underestimates the true
	// height away from the expansion point, which the paper compensates for
	// in its final "adjust floorplan" step; callers using Tangent should
	// re-linearize or adjust (see core.Floorplanner).
	Tangent
)

func (l Linearization) String() string {
	if l == Secant {
		return "secant"
	}
	return "tangent"
}

// NewModule is one module to be placed by the subproblem.
type NewModule struct {
	// Index is the module's index in the original design, used for
	// connectivity lookups and reporting.
	Index int
	// Mod is the module description.
	Mod *netlist.Module
	// PadW and PadH are envelope paddings added to the module's width and
	// height in its initial orientation (Section 3.2): PadW accounts for
	// pins on the east+west sides, PadH for pins on the north+south sides.
	// When the module rotates, the paddings follow the dimensions.
	PadW, PadH float64
}

// Anchor is the fixed generalized-pin position of an already-placed
// module, kept for wirelength estimation after the module itself has been
// absorbed into a covering rectangle.
type Anchor struct {
	Index int // design index of the placed module
	X, Y  float64
}

// CriticalPair bounds the estimated Manhattan length between the centers
// of two modules — the "additional constraints on the length of critical
// nets" of Section 2.2 and the timing-delay objectives of the abstract.
// A refers to a new module by design index; B refers either to another
// new module or to an anchor, also by design index.
type CriticalPair struct {
	A, B   int
	MaxLen float64
}

// Spec describes one successive-augmentation subproblem.
type Spec struct {
	// ChipWidth is the fixed chip width W of constraints (3).
	ChipWidth float64
	// MaxHeight is the bounding function H of constraints (2). When zero it
	// defaults to the sum of all placeable heights plus the obstacle tops.
	MaxHeight float64
	// New lists the modules to place.
	New []NewModule
	// Obstacles are the covering rectangles of the partial floorplan.
	Obstacles []geom.Rect
	// Anchors are wirelength attachment points for already-placed modules.
	Anchors []Anchor
	// Conn returns the weighted common-net count between two design
	// indices. May be nil when Objective is AreaOnly.
	Conn func(a, b int) float64
	// Objective selects the cost function.
	Objective Objective
	// WireWeight is the lambda multiplying the wirelength term of the
	// AreaWire objective. Zero defaults to 0.05.
	WireWeight float64
	// Linearize selects the flexible-module approximation.
	Linearize Linearization
	// Gravity adds a tiny secondary objective pulling modules toward the
	// bottom-left corner. Among the many equal-height optima of one
	// augmentation step it selects dense, flat layouts, which matters
	// because the step objective is greedy in the overall height. Zero
	// defaults to 1e-3 (divided across the group); negative disables.
	Gravity float64
	// Critical lists hard bounds on net lengths between module centers
	// (timing constraints). Pairs whose modules are not part of this
	// subproblem are ignored; pairs between a new module and an absorbed
	// placed module require a matching Anchors entry.
	Critical []CriticalPair
}

// dims captures the linear expression of one placeable object's effective
// width and height:
//
//	weff = wConst + wRot*rot - dw        (dw only for flexible modules)
//	heff = hConst + hRot*rot + hSlope*dw
type dims struct {
	wConst, hConst float64
	wRot, hRot     float64 // coefficient of the rotation binary
	hSlope         float64 // height increase per unit of width decrease
	dwMax          float64 // range of the width-decrease variable
	rotatable      bool
	flexible       bool
}

// moduleDims derives the linear dimension model of a module, including
// envelope padding.
func moduleDims(nm *NewModule, mode Linearization) (dims, error) {
	m := nm.Mod
	var d dims
	switch m.Kind {
	case netlist.Rigid:
		w0 := m.W + nm.PadW
		h0 := m.H + nm.PadH
		d.wConst, d.hConst = w0, h0
		if m.Rotatable && m.W != m.H {
			// After rotation the horizontal extent is the original height plus
			// the padding that now faces east/west (the former north/south
			// padding), and symmetrically for the vertical extent.
			w1 := m.H + nm.PadH
			h1 := m.W + nm.PadW
			d.wRot = w1 - w0
			d.hRot = h1 - h0
			d.rotatable = true
		}
	case netlist.Flexible:
		wmin, wmax := m.WidthRange()
		if wmax-wmin < 1e-12 {
			d.wConst = wmin + nm.PadW
			d.hConst = m.HeightFor(wmin) + nm.PadH
			break
		}
		d.flexible = true
		d.dwMax = wmax - wmin
		hAtMax := m.Area / wmax
		hAtMin := m.Area / wmin
		d.wConst = wmax + nm.PadW
		d.hConst = hAtMax + nm.PadH
		switch mode {
		case Tangent:
			// Equation (6)/(7): first-order Taylor expansion about w_max.
			d.hSlope = m.Area / (wmax * wmax)
		default:
			// Secant: exact at both interval endpoints, conservative between.
			d.hSlope = (hAtMin - hAtMax) / (wmax - wmin)
		}
	default:
		return d, fmt.Errorf("mipmodel: module %q has unknown kind", m.Name)
	}
	if d.wConst <= 0 || d.hConst <= 0 {
		return d, fmt.Errorf("mipmodel: module %q has non-positive effective dimensions", m.Name)
	}
	return d, nil
}

// maxWidth returns the largest effective width the object can take.
func (d dims) maxWidth() float64 {
	w := d.wConst
	if d.rotatable && d.wRot > 0 {
		w += d.wRot
	}
	return w
}

// minWidth returns the smallest effective width the object can take.
func (d dims) minWidth() float64 {
	w := d.wConst
	if d.rotatable && d.wRot < 0 {
		w += d.wRot
	}
	if d.flexible {
		w -= d.dwMax
	}
	return w
}

// maxHeight returns the largest effective height the object can take.
func (d dims) maxHeight() float64 {
	h := d.hConst
	if d.rotatable && d.hRot > 0 {
		h += d.hRot
	}
	if d.flexible {
		h += d.hSlope * d.dwMax
	}
	return h
}

// defaultMaxHeight computes a safe bounding function H for the
// disjunctive constraints when the caller does not supply one.
func (s *Spec) defaultMaxHeight(ds []dims) float64 {
	h := 0.0
	for _, r := range s.Obstacles {
		if t := r.Y2(); t > h {
			h = t
		}
	}
	for _, d := range ds {
		h += d.maxHeight()
	}
	if h <= 0 {
		h = 1
	}
	return h
}
