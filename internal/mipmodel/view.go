package mipmodel

import "afp/internal/lp"

// PairView exposes one non-overlap disjunction of a Built model: the two
// placeable objects it separates and the pair's 0-1 variables. The four
// disjunctive rows themselves are found by scanning the problem for rows
// referencing Z or P.
type PairView struct {
	I        int // new-module slot
	J        int // new-module slot, or Spec.Obstacles index when Obstacle
	Obstacle bool
	Z, P     lp.VarID
}

// FlexView exposes the linearized h = S/w approximation of one flexible
// module, in the exact terms the rows were emitted with: the effective
// height expression is HConst + HSlope*dw for dw in [0, DWMax], standing
// in for Area/(WMax-dw) + PadH.
type FlexView struct {
	Slot    int
	Area    float64 // module area S, without envelope padding
	WMax    float64 // unpadded maximum width (dw measures decrease from it)
	DWMax   float64
	HConst  float64 // padded height at dw = 0
	PadH    float64
	HSlope  float64
	Tangent bool // Tangent linearization (under-approximates); Secant otherwise
}

// ModelView is a read-only structural description of a Built model for
// static auditing (package modelcheck). It exposes the variable handles
// and formulation constants that are otherwise private to the builder.
type ModelView struct {
	Pairs  []PairView
	Flex   []FlexView
	YLo    []float64 // per-slot obstacle floor level (sliding-window lemma)
	X, Y   []lp.VarID
	Rot    []lp.VarID // -1 where not rotatable
	DW     []lp.VarID // -1 where not flexible
	Height lp.VarID
	BigH   float64 // the height horizon H all y big-Ms are measured against
	Width  float64 // chip width W
	NumObs int     // number of fixed obstacle rectangles
}

// View returns the structural description of the built model.
func (b *Built) View() ModelView {
	v := ModelView{
		YLo:    append([]float64(nil), b.yLo...),
		X:      append([]lp.VarID(nil), b.X...),
		Y:      append([]lp.VarID(nil), b.Y...),
		Rot:    append([]lp.VarID(nil), b.Rot...),
		DW:     append([]lp.VarID(nil), b.DW...),
		Height: b.Height,
		BigH:   b.bigH,
		Width:  b.Spec.ChipWidth,
		NumObs: len(b.Spec.Obstacles),
	}
	for _, pr := range b.pairs {
		v.Pairs = append(v.Pairs, PairView{
			I: pr.i, J: pr.j, Obstacle: pr.kind == pairNewObstacle, Z: pr.z, P: pr.y,
		})
	}
	for i, d := range b.ds {
		if !d.flexible {
			continue
		}
		nm := &b.Spec.New[i]
		_, wmax := nm.Mod.WidthRange()
		v.Flex = append(v.Flex, FlexView{
			Slot:    i,
			Area:    nm.Mod.Area,
			WMax:    wmax,
			DWMax:   d.dwMax,
			HConst:  d.hConst,
			PadH:    nm.PadH,
			HSlope:  d.hSlope,
			Tangent: b.Spec.Linearize == Tangent,
		})
	}
	return v
}
