package mipmodel

import (
	"math"

	"afp/internal/geom"
	"afp/internal/netlist"
)

// Placement is the decoded position of one newly placed module.
type Placement struct {
	// Index is the module's index in the original design.
	Index int
	// Env is the occupied box: the module plus its routing envelope. All
	// non-overlap guarantees apply to Env.
	Env geom.Rect
	// Mod is the module proper, centered inside Env.
	Mod geom.Rect
	// Rotated reports whether a rigid module was placed rotated by 90
	// degrees.
	Rotated bool
	// Width is the chosen module width (after rotation, excluding
	// envelope); for flexible modules this is the optimized w_i.
	Width float64
}

// Decode maps a MILP solution vector back to module placements.
func (b *Built) Decode(x []float64) []Placement {
	out := make([]Placement, len(b.Spec.New))
	for i := range b.Spec.New {
		nm := &b.Spec.New[i]
		d := b.ds[i]
		rot := false
		if b.Rot[i] >= 0 && x[b.Rot[i]] > 0.5 {
			rot = true
		}
		dw := 0.0
		if b.DW[i] >= 0 {
			dw = x[b.DW[i]]
		}
		weff := d.wConst - dw
		heffv := d.hConst + d.hSlope*dw
		if rot {
			weff += d.wRot
			heffv += d.hRot
		}
		env := geom.NewRect(x[b.X[i]], x[b.Y[i]], weff, heffv)

		// Inner module rectangle: strip the envelope padding, which follows
		// the orientation.
		padW, padH := nm.PadW, nm.PadH
		if rot {
			padW, padH = padH, padW
		}
		var mw, mh float64
		switch nm.Mod.Kind {
		case netlist.Flexible:
			mw = weff - padW
			mh = nm.Mod.Area / mw
			// Under the Tangent linearization heffv underestimates the true
			// module height away from the expansion point (the tangent lies
			// below the hyperbola), so the exact height mh can poke out of
			// the linearized envelope. Grow the envelope to the truth: the
			// non-overlap guarantee applies to Env, and an Env that hides
			// part of the module would make the decoded placement silently
			// violate it. Verify then sees any resulting overlap, and the
			// adjust step re-legalizes — exactly the paper's compensation
			// for the tangent approximation.
			if mh+padH > env.H {
				env.H = mh + padH
			}
		default:
			mw = weff - padW
			mh = heffv - padH
		}
		mod := geom.NewRect(env.X+padW/2, env.Y+padH/2, mw, mh)
		out[i] = Placement{
			Index:   nm.Index,
			Env:     env,
			Mod:     mod,
			Rotated: rot,
			Width:   mw,
		}
	}
	return out
}

// HeightOf returns the chip-height value of a solution vector.
func (b *Built) HeightOf(x []float64) float64 { return x[b.Height] }

// Hint constructs a full variable assignment from a geometric placement
// of the new modules, for use as a branch-and-bound incumbent seed. envs
// gives the envelope box chosen for each new module (in slot order),
// rotated whether each is rotated, and dw the width decrease of each
// flexible module. The pair binaries are derived from the geometry; the
// caller must ensure the envelope boxes are pairwise non-overlapping and
// clear of all obstacles.
func (b *Built) Hint(envs []geom.Rect, rotated []bool, dw []float64) []float64 {
	if len(b.symGroups) > 0 {
		envs, rotated, dw = b.reorderForSymmetry(envs, rotated, dw)
	}
	x := make([]float64, b.Model.P.NumVariables())
	top := b.floorY
	for i := range b.Spec.New {
		x[b.X[i]] = envs[i].X
		x[b.Y[i]] = envs[i].Y
		if b.Rot[i] >= 0 && rotated[i] {
			x[b.Rot[i]] = 1
		}
		if b.DW[i] >= 0 {
			x[b.DW[i]] = dw[i]
		}
		if t := envs[i].Y2(); t > top {
			top = t
		}
	}
	x[b.Height] = top
	for _, pr := range b.pairs {
		var other geom.Rect
		if pr.kind == pairNewNew {
			other = envs[pr.j]
		} else {
			other = b.Spec.Obstacles[pr.j]
		}
		z, y := relationBits(envs[pr.i], other)
		x[pr.z], x[pr.y] = z, y
	}
	for _, w := range b.wires {
		ca := envs[w.a]
		var cx, cy float64
		if w.b >= 0 {
			cx, cy = envs[w.b].CenterX(), envs[w.b].CenterY()
		} else {
			cx, cy = b.Spec.Anchors[w.anchor].X, b.Spec.Anchors[w.anchor].Y
		}
		x[w.dx] = math.Abs(ca.CenterX() - cx)
		x[w.dy] = math.Abs(ca.CenterY() - cy)
	}
	return x
}

// reorderForSymmetry reassigns the placements of each symmetry-pinned
// group (see Built.Presolve) among the group's interchangeable modules so
// that consecutive group members satisfy the pinned p = 0 relation. The
// caller's slices are not modified.
func (b *Built) reorderForSymmetry(envs []geom.Rect, rotated []bool, dw []float64) ([]geom.Rect, []bool, []float64) {
	envs = append([]geom.Rect(nil), envs...)
	rotated = append([]bool(nil), rotated...)
	dw = append([]float64(nil), dw...)
	for _, group := range b.symGroups {
		// Order the group's boxes along a Hamiltonian path of the lobTol
		// tournament by insertion: place each box before the first path
		// element it "left-of-or-below"s, else append. Every earlier
		// element then relates forward (tournament completeness), so
		// consecutive path pairs always satisfy lobTol.
		var path []int
		for _, slot := range group {
			pos := len(path)
			for k, q := range path {
				if lobTol(envs[slot], envs[q]) {
					pos = k
					break
				}
			}
			path = append(path, 0)
			copy(path[pos+1:], path[pos:])
			path[pos] = slot
		}
		pe := make([]geom.Rect, len(group))
		pr := make([]bool, len(group))
		pd := make([]float64, len(group))
		for t, slot := range path {
			pe[t], pr[t], pd[t] = envs[slot], rotated[slot], dw[slot]
		}
		for t, slot := range group {
			envs[slot], rotated[slot], dw[slot] = pe[t], pr[t], pd[t]
		}
	}
	return envs, rotated, dw
}

// relationBits picks the (z, y) assignment of the disjunction (2) that is
// satisfied by the mutual position of a and o: (0,0) a left of o, (0,1) a
// right of o, (1,0) a below o, (1,1) a above o.
func relationBits(a, o geom.Rect) (z, y float64) {
	switch {
	case a.X2() <= o.X+geom.Tol:
		return 0, 0
	case o.X2() <= a.X+geom.Tol:
		return 0, 1
	case a.Y2() <= o.Y+geom.Tol:
		return 1, 0
	default:
		return 1, 1
	}
}

// lobTol reports whether relationBits(a, o) would yield p = 0, i.e. "a
// left of o, or else a below o". For two disjoint boxes at least one of
// lobTol(a, o) and lobTol(o, a) holds (the relation is a tournament),
// which is what lets Hint order interchangeable modules along a
// Hamiltonian path so that symmetry-pinned pairs decode to p = 0.
func lobTol(a, o geom.Rect) bool {
	if a.X2() <= o.X+geom.Tol {
		return true
	}
	if o.X2() <= a.X+geom.Tol {
		return false
	}
	return a.Y2() <= o.Y+geom.Tol
}
