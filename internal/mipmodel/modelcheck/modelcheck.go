// Package modelcheck statically audits built floorplanning MILPs. It is
// the model-level counterpart of the AST analyzers in internal/analysis:
// instead of trusting that mipmodel.Build emitted the formulation of
// Sutanthavibul, Shragowitz and Rosen (DAC 1990) correctly, Audit
// re-derives the structural invariants from the finished lp.Problem and
// reports every violation as a Finding.
//
// Audit proves, for a well-formed model:
//
//   - every placeable pair is covered by exactly four disjunctive rows
//     (left/right/below/above) whose binary activation patterns are the
//     four distinct assignments of the pair's (z, p) variables;
//   - every 0-1 variable is referenced by at least one row, and no
//     continuous variable dangles (no row, no objective);
//   - every big-M is large enough: a disjunctive row selected inactive by
//     its binaries is implied by the remaining structure, so the
//     tightened Ms of DESIGN.md section 10 never cut an integer-feasible
//     placement;
//   - the flexible-module height rows outer-approximate h = S/w on the
//     width interval in the direction their linearization promises
//     (secant above the hyperbola, tangent below);
//   - all coefficients, bounds and right-hand sides are finite.
//
// The big-M check first bounds each row's continuous part by interval
// arithmetic over the variable bounds (tightened with the obstacle floor
// levels yLo, whose validity presolve's tests establish). Where that is
// too loose — exactly the rows whose tightening exploits structural rows
// such as the chip-height definition — it solves a tiny LP maximizing
// the row's continuous part subject to the model's structural rows (rows
// referencing no pair binaries) over the row's own variables plus the
// chip height. Both bounds are sound upper bounds on the true maximum,
// so a row flagged here genuinely admits an integer assignment that the
// formulation claims to relax but does not.
package modelcheck

import (
	"fmt"
	"math"
	"sort"

	"afp/internal/lp"
	"afp/internal/milp"
	"afp/internal/mipmodel"
)

// Finding is one audit violation.
type Finding struct {
	Rule   string // stable identifier: pair-coverage, activation, bigm, dangling, curve, finite
	Detail string
}

func (f Finding) String() string { return f.Rule + ": " + f.Detail }

// Audit statically verifies a built floorplanning MILP and returns every
// violation found. A nil result certifies the invariants listed in the
// package comment.
func Audit(b *mipmodel.Built) []Finding {
	v := b.View()
	fs := AuditModel(b.Model)
	fs = append(fs, auditPairs(b.Model.P, v)...)
	fs = append(fs, auditFlex(v)...)
	sort.SliceStable(fs, func(i, j int) bool { return fs[i].Rule < fs[j].Rule })
	return fs
}

// AuditModel verifies the generic structural sanity of any MILP: finite
// data, no dangling variables, every integer variable constrained by at
// least one row. It knows nothing about floorplanning and is what
// cmd/mipsolve -audit runs on hand-written models.
func AuditModel(m *milp.Model) []Finding {
	p := m.P
	var fs []Finding
	inRows := make([]bool, p.NumVariables())
	for c := 0; c < p.NumConstraints(); c++ {
		name, terms, _, rhs := p.Constraint(lp.ConID(c))
		if math.IsNaN(rhs) || math.IsInf(rhs, 0) {
			fs = append(fs, Finding{"finite", fmt.Sprintf("constraint %q has non-finite rhs %v", name, rhs)})
		}
		for _, t := range terms {
			if math.IsNaN(t.Coef) || math.IsInf(t.Coef, 0) {
				fs = append(fs, Finding{"finite", fmt.Sprintf("constraint %q has non-finite coefficient on %s", name, p.VarName(t.Var))})
			}
			if t.Coef != 0 {
				inRows[t.Var] = true
			}
		}
	}
	isInt := make([]bool, p.NumVariables())
	for _, v := range m.Ints {
		if int(v) < 0 || int(v) >= p.NumVariables() {
			fs = append(fs, Finding{"dangling", fmt.Sprintf("integer registration references unknown variable %d", v)})
			continue
		}
		isInt[v] = true
	}
	for i := 0; i < p.NumVariables(); i++ {
		v := lp.VarID(i)
		lo, hi := p.Bounds(v)
		if math.IsNaN(lo) || math.IsInf(lo, 0) || math.IsNaN(hi) {
			fs = append(fs, Finding{"finite", fmt.Sprintf("variable %s has invalid bounds [%v, %v]", p.VarName(v), lo, hi)})
		}
		if c := p.ObjectiveCoef(v); math.IsNaN(c) || math.IsInf(c, 0) {
			fs = append(fs, Finding{"finite", fmt.Sprintf("variable %s has non-finite objective coefficient %v", p.VarName(v), c)})
		}
		switch {
		case isInt[i] && !inRows[i]:
			fs = append(fs, Finding{"dangling", fmt.Sprintf("binary %s is referenced by no constraint", p.VarName(v))})
		case !isInt[i] && !inRows[i] && p.ObjectiveCoef(v) == 0:
			fs = append(fs, Finding{"dangling", fmt.Sprintf("variable %s appears in no constraint and has no objective", p.VarName(v))})
		}
	}
	return fs
}

// assignment is one 0-1 valuation of a pair's (z, p) binaries.
type assignment struct{ z, p int }

var allAssignments = [4]assignment{{0, 0}, {0, 1}, {1, 0}, {1, 1}}

// pairRow is one disjunctive row of a pair: the row id plus the z/p
// coefficients split out of the term list.
type pairRow struct {
	id     lp.ConID
	cz, cp float64
}

func auditPairs(p *lp.Problem, v mipmodel.ModelView) []Finding {
	var fs []Finding

	// Index every pair binary, and collect the structural rows: rows that
	// reference (with a nonzero coefficient) no pair binary. They encode
	// unconditional facts — fit, height definition, area cut, wire
	// distances — and are what the LP fallback of the big-M check may use.
	pairBin := map[lp.VarID]bool{}
	for _, pr := range v.Pairs {
		pairBin[pr.Z] = true
		pairBin[pr.P] = true
	}
	rowsOf := map[lp.VarID][]lp.ConID{} // pair binary -> rows mentioning it (any coefficient)
	var structural []lp.ConID
	for c := 0; c < p.NumConstraints(); c++ {
		id := lp.ConID(c)
		_, terms, _, _ := p.Constraint(id)
		hasPairBin := false
		seen := map[lp.VarID]bool{}
		for _, t := range terms {
			if pairBin[t.Var] {
				if t.Coef != 0 {
					hasPairBin = true
				}
				if !seen[t.Var] {
					seen[t.Var] = true
					rowsOf[t.Var] = append(rowsOf[t.Var], id)
				}
			}
		}
		if !hasPairBin {
			structural = append(structural, id)
		}
	}

	// Expected coverage: every new-new pair and every new-obstacle pair
	// appears exactly once in the pair table.
	type key struct {
		i, j int
		ob   bool
	}
	have := map[key]int{}
	for _, pr := range v.Pairs {
		have[key{pr.I, pr.J, pr.Obstacle}]++
	}
	n := len(v.X)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if c := have[key{i, j, false}]; c != 1 {
				fs = append(fs, Finding{"pair-coverage", fmt.Sprintf("module pair (%s, %s) has %d disjunctions, want 1", p.VarName(v.X[i]), p.VarName(v.X[j]), c)})
			}
		}
		for o := 0; o < v.NumObs; o++ {
			if c := have[key{i, o, true}]; c != 1 {
				fs = append(fs, Finding{"pair-coverage", fmt.Sprintf("module %s has %d disjunctions against obstacle %d, want 1", p.VarName(v.X[i]), c, o)})
			}
		}
	}

	for _, pr := range v.Pairs {
		fs = append(fs, auditOnePair(p, v, pr, rowsOf, structural)...)
	}
	return fs
}

// auditOnePair checks one disjunction: four rows, distinct activation
// patterns, and big-M redundancy of every inactive configuration.
func auditOnePair(p *lp.Problem, v mipmodel.ModelView, pr mipmodel.PairView, rowsOf map[lp.VarID][]lp.ConID, structural []lp.ConID) []Finding {
	var fs []Finding
	pairName := fmt.Sprintf("(%s, %s)", p.VarName(pr.Z), p.VarName(pr.P))

	// Union of rows mentioning z or p, preserving model order.
	seen := map[lp.ConID]bool{}
	var rows []pairRow
	for _, bin := range []lp.VarID{pr.Z, pr.P} {
		for _, id := range rowsOf[bin] {
			if seen[id] {
				continue
			}
			seen[id] = true
			_, terms, op, _ := p.Constraint(id)
			row := pairRow{id: id}
			for _, t := range terms {
				switch t.Var {
				case pr.Z:
					row.cz += t.Coef
				case pr.P:
					row.cp += t.Coef
				}
			}
			if op != lp.LE {
				name, _, _, _ := p.Constraint(id)
				fs = append(fs, Finding{"activation", fmt.Sprintf("pair %s row %q is not a <= row", pairName, name)})
			}
			rows = append(rows, row)
		}
	}
	if len(rows) != 4 {
		fs = append(fs, Finding{"pair-coverage", fmt.Sprintf("pair %s is covered by %d disjunctive rows, want 4", pairName, len(rows))})
	}

	// Activation pattern per row: the (z, p) assignment maximizing the
	// binary contribution is the one the row constrains; all others must
	// leave the row redundant. Rows whose binary coefficients are all zero
	// are clamped always-active cuts (geometry already forces the
	// relation) and carry no pattern.
	active := map[assignment]int{}
	for _, row := range rows {
		if row.cz == 0 && row.cp == 0 {
			continue
		}
		best, tie := allAssignments[0], false
		for _, a := range allAssignments[1:] {
			ca := row.cz*float64(a.z) + row.cp*float64(a.p)
			cb := row.cz*float64(best.z) + row.cp*float64(best.p)
			switch {
			case ca > cb:
				best, tie = a, false
			//vet:allow toleq -- the audit detects exactly duplicated activation patterns
			case ca == cb:
				tie = true
			}
		}
		name, _, _, _ := p.Constraint(row.id)
		if tie {
			fs = append(fs, Finding{"activation", fmt.Sprintf("pair %s row %q has no unique activation pattern", pairName, name)})
			continue
		}
		active[best]++
		if active[best] > 1 {
			fs = append(fs, Finding{"activation", fmt.Sprintf("pair %s has multiple rows activated by (z, p) = (%d, %d)", pairName, best.z, best.p)})
		}
		fs = append(fs, auditBigM(p, v, pr, row, best, structural)...)
	}
	return fs
}

// auditBigM proves that row is redundant at every in-bounds (z, p)
// assignment other than its activation pattern.
func auditBigM(p *lp.Problem, v mipmodel.ModelView, pr mipmodel.PairView, row pairRow, active assignment, structural []lp.ConID) []Finding {
	name, terms, _, rhs := p.Constraint(row.id)

	// The continuous part of the row: every nonzero term except this
	// pair's own binaries. Rot binaries land here too; treating a 0-1
	// variable as its [lo, hi] interval only loosens the bound, which
	// keeps the check sound.
	var cont []lp.Term
	for _, t := range terms {
		if t.Var == pr.Z || t.Var == pr.P || t.Coef == 0 {
			continue
		}
		cont = append(cont, t)
	}

	// Worst in-bounds inactive contribution. Presolve may have fixed a
	// binary (symmetry pinning); assignments outside the current bounds
	// are unreachable and exempt from the redundancy requirement.
	zLo, zHi := p.Bounds(pr.Z)
	pLo, pHi := p.Bounds(pr.P)
	inBounds := func(a assignment) bool {
		return float64(a.z) >= zLo-0.5 && float64(a.z) <= zHi+0.5 &&
			float64(a.p) >= pLo-0.5 && float64(a.p) <= pHi+0.5
	}
	worst, any := math.Inf(-1), false
	for _, a := range allAssignments {
		if a == active || !inBounds(a) {
			continue
		}
		if c := row.cz*float64(a.z) + row.cp*float64(a.p); c > worst {
			worst, any = c, true
		}
	}
	if !any {
		return nil
	}

	tol := 1e-6 * (1 + math.Abs(rhs))
	maxCont := intervalMax(p, v, cont)
	if maxCont+worst <= rhs+tol {
		return nil
	}
	// Interval arithmetic ignores the structural rows (chip height
	// definition, fit) that justify the tightened Ms; fall back to an
	// exact LP bound over them.
	if lb, ok := structuralMax(p, v, cont, structural); ok && lb < maxCont {
		maxCont = lb
	}
	if maxCont+worst <= rhs+tol {
		return nil
	}
	return []Finding{{"bigm", fmt.Sprintf(
		"row %q is not redundant when inactive: max lhs %.6g + contribution %.6g exceeds rhs %.6g (big-M too small)",
		name, maxCont, worst, rhs)}}
}

// effBounds returns the bounds of variable x, with y-variable lower
// bounds lifted to the obstacle floor level yLo: every integer-feasible
// placement rests at or above its floor (the sliding-window lemma of
// presolve.go), whether or not presolve has materialized the bound yet.
func effBounds(p *lp.Problem, v mipmodel.ModelView, x lp.VarID) (float64, float64) {
	lo, hi := p.Bounds(x)
	for slot, yv := range v.Y {
		if yv == x && v.YLo[slot] > lo {
			lo = v.YLo[slot]
		}
	}
	return lo, hi
}

// intervalMax bounds the maximum of a linear expression over the
// variable boxes.
func intervalMax(p *lp.Problem, v mipmodel.ModelView, terms []lp.Term) float64 {
	sum := 0.0
	for _, t := range terms {
		lo, hi := effBounds(p, v, t.Var)
		sum += math.Max(t.Coef*lo, t.Coef*hi)
	}
	return sum
}

// structuralMax bounds the maximum of a linear expression subject to the
// structural rows closed over the expression's variables plus the chip
// height. The LP is tiny (a handful of variables and rows); a non-optimal
// outcome falls back to the interval bound.
func structuralMax(p *lp.Problem, v mipmodel.ModelView, terms []lp.Term, structural []lp.ConID) (float64, bool) {
	vars := map[lp.VarID]lp.VarID{}
	sub := lp.NewProblem()
	sub.SetMaximize(true)
	addVar := func(x lp.VarID) lp.VarID {
		if id, ok := vars[x]; ok {
			return id
		}
		lo, hi := effBounds(p, v, x)
		id := sub.AddVariable(p.VarName(x), lo, hi, 0)
		vars[x] = id
		return id
	}
	for _, t := range terms {
		id := addVar(t.Var)
		sub.SetObjectiveCoef(id, sub.ObjectiveCoef(id)+t.Coef)
	}
	addVar(v.Height)

	for _, c := range structural {
		name, rowTerms, op, rhs := p.Constraint(c)
		usable := true
		for _, t := range rowTerms {
			if _, ok := vars[t.Var]; !ok && t.Coef != 0 {
				usable = false
				break
			}
		}
		if !usable {
			continue
		}
		mapped := make([]lp.Term, 0, len(rowTerms))
		for _, t := range rowTerms {
			if t.Coef != 0 {
				mapped = append(mapped, lp.Term{Var: vars[t.Var], Coef: t.Coef})
			}
		}
		sub.AddConstraint(name, mapped, op, rhs)
	}

	sol, err := sub.SolveOpts(lp.Options{MaxIter: 2000})
	if err != nil || sol.Status != lp.StatusOptimal {
		return 0, false
	}
	return sol.Objective, true
}

// auditFlex checks that each flexible module's linearized height bounds
// the true hyperbola h = S/w from the side its linearization promises:
// the secant chord lies on or above the convex curve (a conservative
// over-approximation), the tangent on or below it.
func auditFlex(v mipmodel.ModelView) []Finding {
	var fs []Finding
	const samples = 64
	for _, f := range v.Flex {
		worst := 0.0
		for s := 0; s <= samples; s++ {
			dw := f.DWMax * float64(s) / samples
			w := f.WMax - dw
			if w <= 0 {
				fs = append(fs, Finding{"curve", fmt.Sprintf("flexible slot %d: width range reaches %g", f.Slot, w)})
				break
			}
			truth := f.Area/w + f.PadH
			approx := f.HConst + f.HSlope*dw
			gap := truth - approx // >0: approx below the curve
			if f.Tangent {
				gap = -gap
			}
			if gap > worst {
				worst = gap
			}
		}
		tol := 1e-6 * (1 + f.HConst)
		if worst > tol {
			side := "below"
			if f.Tangent {
				side = "above"
			}
			fs = append(fs, Finding{"curve", fmt.Sprintf(
				"flexible slot %d: linearized height falls %s the S/w curve by %.6g, violating the %s guarantee",
				f.Slot, side, worst, linName(f.Tangent))})
		}
	}
	return fs
}

func linName(tangent bool) string {
	if tangent {
		return "tangent under-approximation"
	}
	return "secant over-approximation"
}
