package modelcheck

import (
	"math"
	"strings"
	"testing"

	"afp/internal/geom"
	"afp/internal/lp"
	"afp/internal/mipmodel"
	"afp/internal/netlist"
)

// specFor wraps a module list into a single-subproblem spec.
func specFor(mods []netlist.Module, width float64) *mipmodel.Spec {
	s := &mipmodel.Spec{ChipWidth: width}
	for i := range mods {
		s.New = append(s.New, mipmodel.NewModule{Index: i, Mod: &mods[i]})
	}
	return s
}

// quickstartModules mirrors examples/quickstart.
func quickstartModules() []netlist.Module {
	return []netlist.Module{
		{Name: "cpu", Kind: netlist.Rigid, W: 8, H: 6, Rotatable: true},
		{Name: "ram", Kind: netlist.Rigid, W: 6, H: 6},
		{Name: "dma", Kind: netlist.Rigid, W: 4, H: 3, Rotatable: true},
		{Name: "rom", Kind: netlist.Flexible, Area: 24, MinAspect: 0.5, MaxAspect: 2},
		{Name: "io", Kind: netlist.Flexible, Area: 18, MinAspect: 0.4, MaxAspect: 2.5},
	}
}

// topologyModules mirrors examples/topology.
func topologyModules() []netlist.Module {
	return []netlist.Module{
		{Name: "a", Kind: netlist.Rigid, W: 6, H: 4},
		{Name: "b", Kind: netlist.Flexible, Area: 24, MinAspect: 0.5, MaxAspect: 2},
		{Name: "c", Kind: netlist.Rigid, W: 4, H: 4},
		{Name: "d", Kind: netlist.Flexible, Area: 16, MinAspect: 0.5, MaxAspect: 2},
	}
}

func mustBuild(t *testing.T, spec *mipmodel.Spec) *mipmodel.Built {
	t.Helper()
	b, err := mipmodel.Build(spec)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return b
}

func wantClean(t *testing.T, b *mipmodel.Built) {
	t.Helper()
	if fs := Audit(b); len(fs) != 0 {
		for _, f := range fs {
			t.Errorf("unexpected finding: %s", f)
		}
	}
}

// designWidth picks a chip width every module of the design fits.
func designWidth(d *netlist.Design) float64 {
	total, maxw := 0.0, 0.0
	for i := range d.Modules {
		m := &d.Modules[i]
		total += m.ModuleArea()
		w := m.W
		if m.Kind == netlist.Flexible {
			w, _ = m.WidthRange()
		}
		if w > maxw {
			maxw = w
		}
	}
	return math.Max(1.3*math.Sqrt(total), maxw+1)
}

// TestAuditExamples audits the MILPs of the designs the examples/
// programs build: every formulation the repository ships must pass.
func TestAuditExamples(t *testing.T) {
	t.Run("quickstart", func(t *testing.T) {
		wantClean(t, mustBuild(t, specFor(quickstartModules(), 12)))
	})
	t.Run("topology", func(t *testing.T) {
		wantClean(t, mustBuild(t, specFor(topologyModules(), 10)))
	})
	t.Run("baseline", func(t *testing.T) {
		d := netlist.Random(20, 7)
		wantClean(t, mustBuild(t, specFor(d.Modules, designWidth(d))))
	})
	t.Run("ami33", func(t *testing.T) {
		// ami33 also backs examples/bookshelf via the format round-trip.
		d := netlist.AMI33()
		wantClean(t, mustBuild(t, specFor(d.Modules, designWidth(d))))
	})
}

// obstacleSpec exercises every row family at once: obstacles, anchors,
// wire objective, critical nets, envelope padding.
func obstacleSpec(lin mipmodel.Linearization, blanket bool) *mipmodel.Spec {
	s := specFor(quickstartModules(), 16)
	s.New[0].PadW, s.New[0].PadH = 1, 0.5
	s.Obstacles = []geom.Rect{geom.NewRect(0, 0, 6, 4), geom.NewRect(9, 0, 5, 3)}
	s.Anchors = []mipmodel.Anchor{{Index: 97, X: 3, Y: 2}}
	s.Objective = mipmodel.AreaWire
	s.Conn = func(a, b int) float64 {
		if a > b {
			a, b = b, a
		}
		if a == 0 && (b == 1 || b == 97) {
			return 1
		}
		return 0
	}
	s.Critical = []mipmodel.CriticalPair{{A: 2, B: 4, MaxLen: 30}, {A: 3, B: 97, MaxLen: 40}}
	s.Linearize = lin
	s.BlanketM = blanket
	return s
}

func TestAuditVariants(t *testing.T) {
	t.Run("obstacles-secant", func(t *testing.T) {
		wantClean(t, mustBuild(t, obstacleSpec(mipmodel.Secant, false)))
	})
	t.Run("obstacles-tangent", func(t *testing.T) {
		wantClean(t, mustBuild(t, obstacleSpec(mipmodel.Tangent, false)))
	})
	t.Run("obstacles-blanket", func(t *testing.T) {
		wantClean(t, mustBuild(t, obstacleSpec(mipmodel.Secant, true)))
	})
	t.Run("after-presolve", func(t *testing.T) {
		b := mustBuild(t, obstacleSpec(mipmodel.Secant, false))
		b.Presolve()
		wantClean(t, b)
	})
}

// findRow locates a constraint by name.
func findRow(t *testing.T, p *lp.Problem, name string) lp.ConID {
	t.Helper()
	for c := 0; c < p.NumConstraints(); c++ {
		if n, _, _, _ := p.Constraint(lp.ConID(c)); n == name {
			return lp.ConID(c)
		}
	}
	t.Fatalf("no constraint named %q", name)
	return 0
}

// wantOneFinding asserts the audit reports exactly one finding with the
// given rule and detail substring.
func wantOneFinding(t *testing.T, b *mipmodel.Built, rule, substr string) {
	t.Helper()
	fs := Audit(b)
	if len(fs) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(fs), fs)
	}
	if fs[0].Rule != rule || !strings.Contains(fs[0].Detail, substr) {
		t.Fatalf("got finding %s, want rule %q containing %q", fs[0], rule, substr)
	}
}

// TestAuditCorruptMissingRow drops the binaries from one disjunctive row,
// leaving the pair with three rows: exactly the bug a typo in the row
// emission loop would introduce.
func TestAuditCorruptMissingRow(t *testing.T) {
	b := mustBuild(t, specFor(topologyModules(), 10))
	p := b.Model.P
	id := findRow(t, p, "L.a.b")
	_, terms, op, rhs := p.Constraint(id)
	var kept []lp.Term
	v := b.View()
	for _, tm := range terms {
		if tm.Var == v.Pairs[0].Z || tm.Var == v.Pairs[0].P {
			continue
		}
		kept = append(kept, tm)
	}
	p.SetConstraint(id, kept, op, rhs)
	wantOneFinding(t, b, "pair-coverage", "3 disjunctive rows")
}

// TestAuditCorruptUndersizedM halves the right-hand side of a below row,
// shrinking the slack the big-M must provide when the row is deselected.
func TestAuditCorruptUndersizedM(t *testing.T) {
	b := mustBuild(t, specFor(topologyModules(), 10))
	p := b.Model.P
	id := findRow(t, p, "B.a.b")
	_, terms, op, rhs := p.Constraint(id)
	p.SetConstraint(id, terms, op, rhs/2)
	wantOneFinding(t, b, "bigm", "big-M too small")
}

// TestAuditCorruptDanglingBinary registers a binary no row references.
func TestAuditCorruptDanglingBinary(t *testing.T) {
	b := mustBuild(t, specFor(topologyModules(), 10))
	b.Model.AddBinary("ghost", 0)
	wantOneFinding(t, b, "dangling", "ghost")
}

// TestAuditModelFinite checks the generic data-sanity rules.
func TestAuditModelFinite(t *testing.T) {
	b := mustBuild(t, specFor(topologyModules(), 10))
	p := b.Model.P
	id := findRow(t, p, "fit.a")
	_, terms, op, _ := p.Constraint(id)
	p.SetConstraint(id, terms, op, math.Inf(1))
	wantOneFinding(t, b, "finite", "non-finite rhs")
}
