package milp

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	"afp/internal/lp"
)

// hardKnapsack builds a correlated knapsack whose branch-and-bound tree
// is large enough that limits and deadlines land mid-search.
func hardKnapsack(n int, seed int64) *Model {
	rng := rand.New(rand.NewSource(seed))
	p := lp.NewProblem()
	p.SetMaximize(true)
	m := NewModel(p)
	var terms []lp.Term
	for i := 0; i < n; i++ {
		w := 10 + rng.Float64()*90
		v := w + 10 // strongly correlated: hard for B&B
		b := m.AddBinary("b", v)
		terms = append(terms, lp.Term{Var: b, Coef: w})
	}
	p.AddConstraint("cap", terms, lp.LE, float64(n)*25)
	return m
}

func TestSolveCtxCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := SolveCtx(ctx, hardKnapsack(20, 1), Options{})
	// No node was fully explored: no incumbent, limit status.
	if res.Status != StatusLimit && res.Status != StatusFeasible {
		t.Fatalf("status = %v, want limit-ish", res.Status)
	}
	if res.Status == StatusLimit && !math.IsInf(res.Gap(), 1) {
		t.Fatalf("gap without incumbent = %g, want +Inf", res.Gap())
	}
}

func TestSolveCtxDeadlinePartialResult(t *testing.T) {
	m := hardKnapsack(40, 2)
	// Verify the instance is genuinely not solvable instantly.
	probe := Solve(m, Options{MaxNodes: 50})
	if probe.Status == StatusOptimal {
		t.Skip("instance too easy to exercise deadlines")
	}

	const deadline = 50 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	start := time.Now()
	res := SolveCtx(ctx, m, Options{Incumbent: nil, RootRounding: true})
	elapsed := time.Since(start)
	if elapsed > 4*deadline {
		t.Fatalf("deadline solve took %v, want <= %v", elapsed, 4*deadline)
	}
	if res.Status != StatusFeasible && res.Status != StatusLimit && res.Status != StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
	if res.Status == StatusFeasible {
		// Partial result carries an incumbent and a meaningful finite or
		// infinite gap, never NaN.
		if res.X == nil {
			t.Fatal("StatusFeasible without incumbent")
		}
		if math.IsNaN(res.Gap()) {
			t.Fatal("gap is NaN")
		}
	}
}

func TestSolveCtxMatchesSolve(t *testing.T) {
	m := hardKnapsack(12, 3)
	a := Solve(m, Options{})
	b := SolveCtx(context.Background(), m, Options{})
	if a.Status != b.Status || math.Abs(a.Objective-b.Objective) > 1e-9 {
		t.Fatalf("ctx solve differs: %v/%g vs %v/%g", a.Status, a.Objective, b.Status, b.Objective)
	}
}

func TestSolveCtxWarmStartCancels(t *testing.T) {
	m := hardKnapsack(40, 4)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	res := SolveCtx(ctx, m, Options{})
	if elapsed := time.Since(start); elapsed > 300*time.Millisecond {
		t.Fatalf("warm-start deadline solve took %v", elapsed)
	}
	if math.IsNaN(res.Gap()) {
		t.Fatal("gap is NaN")
	}
}
