package milp

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"afp/internal/lp"
)

func solveKnapsack(t *testing.T, opt Options) *Result {
	t.Helper()
	// max 10a + 13b + 7c + 5d  s.t. 3a + 4b + 2c + 1d <= 6, binaries.
	// Optimum: a=1, c=1, d=1 -> value 22, weight 6.
	p := lp.NewProblem()
	p.SetMaximize(true)
	m := NewModel(p)
	a := m.AddBinary("a", 10)
	b := m.AddBinary("b", 13)
	c := m.AddBinary("c", 7)
	d := m.AddBinary("d", 5)
	p.AddConstraint("cap", []lp.Term{{Var: a, Coef: 3}, {Var: b, Coef: 4}, {Var: c, Coef: 2}, {Var: d, Coef: 1}}, lp.LE, 6)
	return Solve(m, opt)
}

func TestKnapsack(t *testing.T) {
	res := solveKnapsack(t, Options{})
	if res.Status != StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.Objective-22) > 1e-6 {
		t.Fatalf("objective = %v, want 22", res.Objective)
	}
}

func TestKnapsackPseudoCost(t *testing.T) {
	res := solveKnapsack(t, Options{Branching: PseudoCost})
	if res.Status != StatusOptimal || math.Abs(res.Objective-22) > 1e-6 {
		t.Fatalf("pseudo-cost result = %+v", res)
	}
}

func TestIntegerInfeasible(t *testing.T) {
	// 2x = 1 with x integer in [0, 5] has a feasible LP relaxation but no
	// integer solution.
	p := lp.NewProblem()
	m := NewModel(p)
	x := p.AddVariable("x", 0, 5, 1)
	m.MarkInteger(x)
	p.AddConstraint("odd", []lp.Term{{Var: x, Coef: 2}}, lp.EQ, 1)
	res := Solve(m, Options{})
	if res.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
}

func TestLPInfeasible(t *testing.T) {
	p := lp.NewProblem()
	m := NewModel(p)
	x := m.AddBinary("x", 1)
	p.AddConstraint("imp", []lp.Term{{Var: x, Coef: 1}}, lp.GE, 2)
	res := Solve(m, Options{})
	if res.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := lp.NewProblem()
	m := NewModel(p)
	x := p.AddVariable("x", 0, math.Inf(1), -1)
	z := m.AddBinary("z", 0)
	p.AddConstraint("link", []lp.Term{{Var: z, Coef: 1}}, lp.LE, 1)
	_ = x
	res := Solve(m, Options{})
	if res.Status != StatusUnbounded {
		t.Fatalf("status = %v, want unbounded", res.Status)
	}
}

func TestGeneralInteger(t *testing.T) {
	// min x + y s.t. 5x + 3y >= 17, x,y integer >= 0.
	// LP optimum x=3.4; integer optimum x=1,y=4 (cost 5)? Check: candidates
	// cost 4: (4,0)->20 ok! cost 4 works: x=4,y=0 gives 20>=17. Optimum 4.
	p := lp.NewProblem()
	m := NewModel(p)
	x := p.AddVariable("x", 0, 100, 1)
	y := p.AddVariable("y", 0, 100, 1)
	m.MarkInteger(x)
	m.MarkInteger(y)
	p.AddConstraint("cover", []lp.Term{{Var: x, Coef: 5}, {Var: y, Coef: 3}}, lp.GE, 17)
	res := Solve(m, Options{})
	if res.Status != StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.Objective-4) > 1e-6 {
		t.Fatalf("objective = %v, want 4", res.Objective)
	}
	for _, v := range []lp.VarID{x, y} {
		val := res.X[v]
		if math.Abs(val-math.Round(val)) > 1e-6 {
			t.Fatalf("variable %d not integral: %v", v, val)
		}
	}
}

// The miniature placement disjunction: two unit squares, chip width 2,
// minimize height. Integer optimum places them side by side (height 1);
// the LP relaxation would cheat below 1 without integrality.
func TestPlacementDisjunction(t *testing.T) {
	p := lp.NewProblem()
	m := NewModel(p)
	const W, H = 2.0, 4.0
	x1 := p.AddVariable("x1", 0, W-1, 0)
	x2 := p.AddVariable("x2", 0, W-1, 0)
	y1 := p.AddVariable("y1", 0, math.Inf(1), 0)
	y2 := p.AddVariable("y2", 0, math.Inf(1), 0)
	h := p.AddVariable("h", 0, math.Inf(1), 1)
	zx := m.AddBinary("zx", 0)
	zy := m.AddBinary("zy", 0)
	// Paper eq. (2): one of four relations must hold.
	p.AddConstraint("left", []lp.Term{{Var: x1, Coef: 1}, {Var: x2, Coef: -1}, {Var: zx, Coef: -W}, {Var: zy, Coef: -W}}, lp.LE, -1)
	p.AddConstraint("right", []lp.Term{{Var: x2, Coef: 1}, {Var: x1, Coef: -1}, {Var: zx, Coef: -W}, {Var: zy, Coef: W}}, lp.LE, W-1)
	p.AddConstraint("below", []lp.Term{{Var: y1, Coef: 1}, {Var: y2, Coef: -1}, {Var: zx, Coef: H}, {Var: zy, Coef: -H}}, lp.LE, H-1)
	p.AddConstraint("above", []lp.Term{{Var: y2, Coef: 1}, {Var: y1, Coef: -1}, {Var: zx, Coef: H}, {Var: zy, Coef: H}}, lp.LE, 2*H-1)
	p.AddConstraint("h1", []lp.Term{{Var: h, Coef: 1}, {Var: y1, Coef: -1}}, lp.GE, 1)
	p.AddConstraint("h2", []lp.Term{{Var: h, Coef: 1}, {Var: y2, Coef: -1}}, lp.GE, 1)
	res := Solve(m, Options{})
	if res.Status != StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.Objective-1) > 1e-6 {
		t.Fatalf("height = %v, want 1", res.Objective)
	}
	// Verify non-overlap of the decoded rectangles.
	if overlap1D(res.X[x1], res.X[x1]+1, res.X[x2], res.X[x2]+1) &&
		overlap1D(res.X[y1], res.X[y1]+1, res.X[y2], res.X[y2]+1) {
		t.Fatalf("modules overlap: %v", res.X)
	}
}

func overlap1D(a1, a2, b1, b2 float64) bool {
	return a1 < b2-1e-6 && b1 < a2-1e-6
}

func TestIncumbentHintSeedsSearch(t *testing.T) {
	p := lp.NewProblem()
	p.SetMaximize(true)
	m := NewModel(p)
	a := m.AddBinary("a", 10)
	b := m.AddBinary("b", 13)
	c := m.AddBinary("c", 7)
	d := m.AddBinary("d", 5)
	p.AddConstraint("cap", []lp.Term{{Var: a, Coef: 3}, {Var: b, Coef: 4}, {Var: c, Coef: 2}, {Var: d, Coef: 1}}, lp.LE, 6)
	hint := []float64{1, 0, 1, 1} // the true optimum
	res := Solve(m, Options{Incumbent: hint})
	if res.Status != StatusOptimal || math.Abs(res.Objective-22) > 1e-6 {
		t.Fatalf("result = %+v", res)
	}
}

func TestNodeLimitReturnsFeasible(t *testing.T) {
	// A larger knapsack: with MaxNodes=1 after the hint we should still get
	// a feasible answer (from the hint) with StatusFeasible or better.
	rng := rand.New(rand.NewSource(3))
	p := lp.NewProblem()
	p.SetMaximize(true)
	m := NewModel(p)
	n := 25
	terms := make([]lp.Term, n)
	hint := make([]float64, n)
	for i := 0; i < n; i++ {
		v := m.AddBinary("v", 1+rng.Float64()*10)
		terms[i] = lp.Term{Var: v, Coef: 1 + rng.Float64()*5}
	}
	p.AddConstraint("cap", terms, lp.LE, 20)
	res := Solve(m, Options{MaxNodes: 1, Incumbent: hint}) // all-zero hint is feasible
	if res.Status != StatusFeasible && res.Status != StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
	if res.X == nil {
		t.Fatal("expected an incumbent")
	}
}

func TestTimeLimit(t *testing.T) {
	res := solveKnapsack(t, Options{TimeLimit: time.Hour})
	if res.Status != StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
}

func TestRootRounding(t *testing.T) {
	res := solveKnapsack(t, Options{RootRounding: true})
	if res.Status != StatusOptimal || math.Abs(res.Objective-22) > 1e-6 {
		t.Fatalf("result = %+v", res)
	}
}

// Exhaustive cross-check on random small binary programs: branch and bound
// must match brute-force enumeration.
func TestBruteForceCrossCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		nb := 2 + rng.Intn(6)
		nc := 1 + rng.Intn(4)
		p := lp.NewProblem()
		m := NewModel(p)
		vars := make([]lp.VarID, nb)
		costs := make([]float64, nb)
		for i := range vars {
			costs[i] = float64(rng.Intn(21) - 10)
			vars[i] = m.AddBinary("b", costs[i])
		}
		type row struct {
			coefs []float64
			op    lp.Op
			rhs   float64
		}
		var rowsSpec []row
		for i := 0; i < nc; i++ {
			coefs := make([]float64, nb)
			terms := make([]lp.Term, 0, nb)
			for j := range coefs {
				coefs[j] = float64(rng.Intn(11) - 5)
				if coefs[j] != 0 {
					terms = append(terms, lp.Term{Var: vars[j], Coef: coefs[j]})
				}
			}
			if len(terms) == 0 {
				continue
			}
			op := lp.LE
			if rng.Float64() < 0.4 {
				op = lp.GE
			}
			rhs := float64(rng.Intn(13) - 4)
			rowsSpec = append(rowsSpec, row{coefs, op, rhs})
			p.AddConstraint("c", terms, op, rhs)
		}
		res := Solve(m, Options{ColdStart: true})
		warm := Solve(m, Options{})
		if (res.Status == StatusOptimal) != (warm.Status == StatusOptimal) {
			t.Fatalf("trial %d: cold %v vs warm %v", trial, res.Status, warm.Status)
		}
		if res.Status == StatusOptimal && math.Abs(res.Objective-warm.Objective) > 1e-6 {
			t.Fatalf("trial %d: cold obj %v vs warm %v", trial, res.Objective, warm.Objective)
		}

		// Brute force.
		bestObj := math.Inf(1)
		found := false
		for mask := 0; mask < 1<<nb; mask++ {
			feasible := true
			for _, r := range rowsSpec {
				var lhs float64
				for j := 0; j < nb; j++ {
					if mask>>j&1 == 1 {
						lhs += r.coefs[j]
					}
				}
				if r.op == lp.LE && lhs > r.rhs+1e-9 || r.op == lp.GE && lhs < r.rhs-1e-9 {
					feasible = false
					break
				}
			}
			if !feasible {
				continue
			}
			found = true
			var obj float64
			for j := 0; j < nb; j++ {
				if mask>>j&1 == 1 {
					obj += costs[j]
				}
			}
			if obj < bestObj {
				bestObj = obj
			}
		}

		if !found {
			if res.Status != StatusInfeasible {
				t.Fatalf("trial %d: brute force infeasible but solver says %v", trial, res.Status)
			}
			continue
		}
		if res.Status != StatusOptimal {
			t.Fatalf("trial %d: status %v", trial, res.Status)
		}
		if math.Abs(res.Objective-bestObj) > 1e-6 {
			t.Fatalf("trial %d: objective %v, brute force %v", trial, res.Objective, bestObj)
		}
	}
}

func TestStatusStrings(t *testing.T) {
	for s, want := range map[Status]string{
		StatusOptimal:    "optimal",
		StatusFeasible:   "feasible",
		StatusInfeasible: "infeasible",
		StatusUnbounded:  "unbounded",
		StatusLimit:      "limit",
	} {
		if s.String() != want {
			t.Fatalf("Status(%d) = %q", s, s.String())
		}
	}
}
