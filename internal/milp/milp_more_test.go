package milp

import (
	"math"
	"math/rand"
	"testing"

	"afp/internal/lp"
)

// Maximize-mode brute-force cross-check mirroring the minimize version.
func TestBruteForceCrossCheckMaximize(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		nb := 2 + rng.Intn(5)
		p := lp.NewProblem()
		p.SetMaximize(true)
		m := NewModel(p)
		vars := make([]lp.VarID, nb)
		costs := make([]float64, nb)
		for i := range vars {
			costs[i] = float64(rng.Intn(15) - 5)
			vars[i] = m.AddBinary("b", costs[i])
		}
		coefs := make([]float64, nb)
		terms := make([]lp.Term, 0, nb)
		for j := range coefs {
			coefs[j] = float64(1 + rng.Intn(6))
			terms = append(terms, lp.Term{Var: vars[j], Coef: coefs[j]})
		}
		rhs := float64(2 + rng.Intn(10))
		p.AddConstraint("cap", terms, lp.LE, rhs)

		res := Solve(m, Options{})
		if res.Status != StatusOptimal {
			t.Fatalf("trial %d: status %v", trial, res.Status)
		}
		best := math.Inf(-1)
		for mask := 0; mask < 1<<nb; mask++ {
			var w, v float64
			for j := 0; j < nb; j++ {
				if mask>>j&1 == 1 {
					w += coefs[j]
					v += costs[j]
				}
			}
			if w <= rhs+1e-9 && v > best {
				best = v
			}
		}
		if math.Abs(res.Objective-best) > 1e-6 {
			t.Fatalf("trial %d: objective %v, brute force %v", trial, res.Objective, best)
		}
	}
}

// General integers with small ranges against brute force.
func TestBruteForceGeneralIntegers(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		p := lp.NewProblem()
		m := NewModel(p)
		x := p.AddVariable("x", 0, 4, float64(rng.Intn(7)-3))
		y := p.AddVariable("y", -2, 3, float64(rng.Intn(7)-3))
		m.MarkInteger(x)
		m.MarkInteger(y)
		a := float64(rng.Intn(5) - 2)
		b := float64(rng.Intn(5) - 2)
		rhs := float64(rng.Intn(9) - 2)
		if a != 0 || b != 0 {
			p.AddConstraint("c", []lp.Term{{Var: x, Coef: a}, {Var: y, Coef: b}}, lp.LE, rhs)
		}
		res := Solve(m, Options{})

		best := math.Inf(1)
		found := false
		for xi := 0; xi <= 4; xi++ {
			for yi := -2; yi <= 3; yi++ {
				if (a != 0 || b != 0) && a*float64(xi)+b*float64(yi) > rhs+1e-9 {
					continue
				}
				found = true
				v := p.ObjectiveCoef(x)*float64(xi) + p.ObjectiveCoef(y)*float64(yi)
				if v < best {
					best = v
				}
			}
		}
		if !found {
			if res.Status != StatusInfeasible {
				t.Fatalf("trial %d: want infeasible, got %v", trial, res.Status)
			}
			continue
		}
		if res.Status != StatusOptimal || math.Abs(res.Objective-best) > 1e-6 {
			t.Fatalf("trial %d: got %v (%v), brute force %v", trial, res.Objective, res.Status, best)
		}
		// Integrality of the returned point.
		for _, v := range []lp.VarID{x, y} {
			if math.Abs(res.X[v]-math.Round(res.X[v])) > 1e-6 {
				t.Fatalf("trial %d: non-integral %v", trial, res.X[v])
			}
		}
	}
}

func TestBestBoundAtOptimality(t *testing.T) {
	res := solveKnapsack(t, Options{})
	if math.Abs(res.BestBound-res.Objective) > 1e-5 {
		t.Fatalf("best bound %v != objective %v at optimality", res.BestBound, res.Objective)
	}
}

func TestAbsGapEarlyStop(t *testing.T) {
	// With a huge gap the solver may stop at the first incumbent; it still
	// must report a feasible (possibly optimal) solution.
	res := solveKnapsack(t, Options{AbsGap: 100})
	if res.X == nil {
		t.Fatal("no incumbent with large AbsGap")
	}
	if res.Objective > 22+1e-6 {
		t.Fatalf("objective %v exceeds true optimum", res.Objective)
	}
}

func TestModelHelpers(t *testing.T) {
	p := lp.NewProblem()
	m := NewModel(p)
	v := m.AddBinary("z", 3)
	if lo, hi := p.Bounds(v); lo != 0 || hi != 1 {
		t.Fatalf("binary bounds [%v, %v]", lo, hi)
	}
	if len(m.Ints) != 1 {
		t.Fatalf("ints = %d", len(m.Ints))
	}
	w := p.AddVariable("w", 0, 9, 0)
	m.MarkInteger(w)
	if len(m.Ints) != 2 {
		t.Fatalf("ints = %d", len(m.Ints))
	}
}

func TestBranchingOnAlreadyFixedVariables(t *testing.T) {
	// Fixing a binary via bounds before solving must be respected.
	p := lp.NewProblem()
	p.SetMaximize(true)
	m := NewModel(p)
	a := m.AddBinary("a", 5)
	b := m.AddBinary("b", 3)
	p.SetBounds(a, 0, 0) // forbid a
	p.AddConstraint("cap", []lp.Term{{Var: a, Coef: 1}, {Var: b, Coef: 1}}, lp.LE, 2)
	res := Solve(m, Options{})
	if res.Status != StatusOptimal {
		t.Fatalf("status %v", res.Status)
	}
	if math.Abs(res.Objective-3) > 1e-6 || res.X[a] != 0 {
		t.Fatalf("fixed variable ignored: %+v", res)
	}
}
