package milp

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"afp/internal/lp"
	"afp/internal/obs"
)

// checkNodeAccounting verifies the node-lifecycle invariant over a
// recorded trace: every opened node is eventually closed or pruned, or is
// still on the stack when the search stops (the Open count of the final
// search.done event).
func checkNodeAccounting(t *testing.T, rec *obs.Recorder, res *Result) {
	t.Helper()
	opened := rec.CountKind(obs.KindNodeOpen)
	closed := rec.CountKind(obs.KindNodeClose)
	pruned := rec.CountKind(obs.KindNodePrune)
	done, ok := rec.LastKind(obs.KindSearchDone)
	if !ok {
		t.Fatal("no search.done event recorded")
	}
	if opened != closed+pruned+done.Open {
		t.Errorf("node accounting: opened %d != closed %d + pruned %d + open %d",
			opened, closed, pruned, done.Open)
	}
	if done.Nodes != res.Nodes {
		t.Errorf("search.done Nodes = %d, Result.Nodes = %d", done.Nodes, res.Nodes)
	}
	if done.Iters != res.LPIters {
		t.Errorf("search.done Iters = %d, Result.LPIters = %d", done.Iters, res.LPIters)
	}
	if done.Status != res.Status.String() {
		t.Errorf("search.done Status = %q, Result.Status = %q", done.Status, res.Status)
	}
	// Closed nodes are the ones whose LP was actually solved.
	if closed != res.Nodes {
		t.Errorf("node.close count %d != Result.Nodes %d", closed, res.Nodes)
	}
}

func TestObserverKnapsackNodeAccounting(t *testing.T) {
	rec := &obs.Recorder{}
	res := solveKnapsack(t, Options{Obs: obs.New(rec)})
	if res.Status != StatusOptimal || math.Abs(res.Objective-22) > 1e-6 {
		t.Fatalf("knapsack under observation changed result: %+v", res)
	}
	checkNodeAccounting(t, rec, res)
	if rec.CountKind(obs.KindIncumbent) == 0 {
		t.Error("no incumbent events recorded for a solved knapsack")
	}
}

func TestObserverRandomMIPNodeAccounting(t *testing.T) {
	// Larger random instances exercise bound pruning and (with tight node
	// limits) searches that stop with nodes still open.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		p := lp.NewProblem()
		p.SetMaximize(true)
		m := NewModel(p)
		n := 8 + rng.Intn(5)
		vars := make([]lp.VarID, n)
		var terms []lp.Term
		for i := range vars {
			vars[i] = m.AddBinary("x", 1+rng.Float64()*9)
			terms = append(terms, lp.Term{Var: vars[i], Coef: 1 + rng.Float64()*4})
		}
		p.AddConstraint("cap", terms, lp.LE, float64(n))

		rec := &obs.Recorder{}
		opt := Options{Obs: obs.New(rec)}
		if trial%2 == 1 {
			opt.MaxNodes = 5 // force an early stop with open nodes
		}
		res := Solve(m, opt)
		checkNodeAccounting(t, rec, res)
	}
}

func TestObserverMatchesUnobservedSolve(t *testing.T) {
	// Observation must not perturb the search. Workers: 1 pins the serial
	// path — parallel runs vary node counts run to run by design.
	plain := solveKnapsack(t, Options{Workers: 1})
	rec := &obs.Recorder{}
	observed := solveKnapsack(t, Options{Workers: 1, Obs: obs.New(rec)})
	if plain.Objective != observed.Objective || plain.Nodes != observed.Nodes ||
		plain.LPIters != observed.LPIters || plain.Status != observed.Status {
		t.Errorf("observed solve differs: plain %v/%d/%d, observed %v/%d/%d",
			plain.Status, plain.Nodes, plain.LPIters,
			observed.Status, observed.Nodes, observed.LPIters)
	}
}

func TestResultGap(t *testing.T) {
	res := solveKnapsack(t, Options{})
	if g := res.Gap(); g > 1e-6 {
		t.Errorf("optimal knapsack gap = %g, want ~0", g)
	}
	empty := &Result{Status: StatusInfeasible, BestBound: math.Inf(1)}
	if g := empty.Gap(); !math.IsInf(g, 1) {
		t.Errorf("gap without incumbent = %g, want +inf", g)
	}
}

func TestResultString(t *testing.T) {
	res := solveKnapsack(t, Options{})
	s := res.String()
	for _, want := range []string{"status: optimal", "objective: 22", "gap:", "nodes:"} {
		if !strings.Contains(s, want) {
			t.Errorf("Result.String() = %q missing %q", s, want)
		}
	}
	empty := &Result{Status: StatusInfeasible}
	if s := empty.String(); !strings.Contains(s, "status: infeasible") {
		t.Errorf("empty Result.String() = %q", s)
	}
}
